package topk_test

import (
	"fmt"

	"robustsample/internal/rng"
	"robustsample/sketch"
	"robustsample/topk"
)

// Example solves (alpha, eps) heavy hitters over a string universe per
// Corollary 1.6: every element with density >= alpha is reported, nothing
// with density <= alpha - eps, even against adaptive streams.
func Example() {
	u, err := sketch.NewStringUniverse(
		"checkout", "login", "logout", "search", "view", "wishlist")
	if err != nil {
		panic(err)
	}
	const n = 50000
	s, err := topk.New(u, 0.12, 0.05, n, sketch.WithSeed(6))
	if err != nil {
		panic(err)
	}

	// "view" ~55%, "search" ~25%, the rest splits ~20%.
	r := rng.New(8)
	others := []string{"checkout", "login", "logout", "wishlist"}
	for i := 0; i < n; i++ {
		switch x := r.Float64(); {
		case x < 0.55:
			s.Offer("view")
		case x < 0.80:
			s.Offer("search")
		default:
			s.Offer(others[r.Intn(len(others))])
		}
	}

	heavy, err := s.Report(0.20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("heavy hitters at alpha=0.20: %v\n", heavy)
	d, err := s.EstimateDensity("view")
	if err != nil {
		panic(err)
	}
	fmt.Printf("density(view) ~ %.2f\n", d)
	// Output:
	// heavy hitters at alpha=0.20: [search view]
	// density(view) ~ 0.54
}
