// Package topk is the public heavy-hitters application of Corollary 1.6:
// maintain an (eps/3)-approximation of the stream with respect to the
// singleton set system via a robustly sized reservoir, and report every
// element whose sample density reaches alpha - eps/3. The output then
// contains every element with true density >= alpha and nothing with
// density <= alpha - eps, with probability 1-delta — against any adaptive
// adversary.
//
// Like every sketch in this module, a Summary is generic over its element
// type through a sketch.Universe[T] codec, mergeable (per-site summaries
// fold into a summary of the union stream) and serializable
// (Snapshot/Restore round-trip bit-identically). It implements
// sketch.Sketch[T].
//
// The deterministic baselines (Misra-Gries, SpaceSaving) and sticky
// sampling remain in internal/heavyhitter as experiment comparison points;
// their sentinel validation errors are re-exported here.
package topk

import (
	"fmt"
	"math"
	"slices"

	"robustsample/internal/core"
	"robustsample/internal/heavyhitter"
	"robustsample/internal/snapshot"
	"robustsample/sketch"
)

// Sentinel errors. The heavyhitter sentinels are re-exported so external
// callers can errors.Is against conditions raised on the internal paths the
// public surface wraps.
var (
	// ErrBadParams reports an invalid (eps, delta, n) target.
	ErrBadParams = sketch.ErrBadParams
	// ErrBadMemory reports a counter/sample memory below 1.
	ErrBadMemory = sketch.ErrBadMemory
	// ErrBadEps reports an error parameter outside (0, 1).
	ErrBadEps = heavyhitter.ErrBadEps
	// ErrBadThreshold reports a reporting threshold outside (0, 1].
	ErrBadThreshold = heavyhitter.ErrBadThreshold
	// ErrBadSnapshot reports a corrupt or mismatched snapshot.
	ErrBadSnapshot = sketch.ErrBadSnapshot
	// ErrIncompatible reports a merge between incompatible summaries.
	ErrIncompatible = sketch.ErrIncompatible
)

// Summary is the adversarially robust heavy-hitters summary of Corollary
// 1.6. It implements sketch.Sketch[T].
type Summary[T any] struct {
	res *sketch.Reservoir[T]
	u   sketch.Universe[T]
	eps float64
}

var _ sketch.Sketch[int64] = (*Summary[int64])(nil)

// New returns a summary for (alpha, eps) heavy hitters on streams of length
// up to n: a reservoir sized per Corollary 1.6 (an eps/3-approximation of
// the singleton system over u, k = ReservoirSize(eps/3, delta, ln|U|)).
func New[T any](u sketch.Universe[T], eps, delta float64, n int, opts ...sketch.Option) (*Summary[T], error) {
	if eps <= 0 || eps >= 1 {
		return nil, ErrBadEps
	}
	if !(delta > 0 && delta < 1) || n < 1 {
		return nil, fmt.Errorf("%w: delta=%v n=%d", ErrBadParams, delta, n)
	}
	if u == nil {
		return nil, sketch.ErrNilUniverse
	}
	k := core.HeavyHitterSize(eps, delta, n, u.Size())
	res, err := sketch.NewReservoir(u, k, opts...)
	if err != nil {
		return nil, err
	}
	return &Summary[T]{res: res, u: u, eps: eps}, nil
}

// NewWithMemory returns a summary over an explicitly sized reservoir of k
// elements with reporting error eps, for callers that size memory
// themselves.
func NewWithMemory[T any](u sketch.Universe[T], k int, eps float64, opts ...sketch.Option) (*Summary[T], error) {
	if eps <= 0 || eps >= 1 {
		return nil, ErrBadEps
	}
	res, err := sketch.NewReservoir(u, k, opts...)
	if err != nil {
		return nil, err
	}
	return &Summary[T]{res: res, u: u, eps: eps}, nil
}

// Eps returns the error parameter of the (alpha, eps) contract.
func (s *Summary[T]) Eps() float64 { return s.eps }

// K returns the underlying reservoir capacity.
func (s *Summary[T]) K() int { return s.res.K() }

// Offer implements sketch.Sketch.
func (s *Summary[T]) Offer(x T) (bool, error) { return s.res.Offer(x) }

// OfferBatch implements sketch.Sketch.
func (s *Summary[T]) OfferBatch(xs []T) (int, error) { return s.res.OfferBatch(xs) }

// View implements sketch.Sketch.
func (s *Summary[T]) View() []T { return s.res.View() }

// Len implements sketch.Sketch.
func (s *Summary[T]) Len() int { return s.res.Len() }

// Rounds implements sketch.Sketch.
func (s *Summary[T]) Rounds() int { return s.res.Rounds() }

// Count is Rounds under the name the summary literature uses.
func (s *Summary[T]) Count() int { return s.res.Rounds() }

// Query implements sketch.Sketch.
func (s *Summary[T]) Query(lo, hi T) (float64, error) { return s.res.Query(lo, hi) }

// Report returns every element whose sample density is at least
// alpha - eps/3, in ascending universe order — the Corollary 1.6 decision
// rule. It reports ErrBadThreshold unless 0 < alpha <= 1.
func (s *Summary[T]) Report(alpha float64) ([]T, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, ErrBadThreshold
	}
	sample := s.res.EncodedView()
	if len(sample) == 0 {
		return nil, nil
	}
	counts := make(map[int64]int, len(sample))
	for _, p := range sample {
		counts[p]++
	}
	cut := alpha - s.eps/3
	points := make([]int64, 0, len(counts))
	for p, c := range counts { //robust:nondet the passing points are sorted below; collection order is irrelevant

		if float64(c)/float64(len(sample)) >= cut {
			points = append(points, p)
		}
	}
	slices.Sort(points)
	out := make([]T, len(points))
	for i, p := range points {
		x, err := s.u.Decode(p)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// EstimateDensity returns the sample density of x — the summary's estimate
// of d_x(stream), accurate within eps/3 when robustly sized.
func (s *Summary[T]) EstimateDensity(x T) (float64, error) {
	return s.res.Query(x, x)
}

// MergeFrom implements sketch.Sketch: after the merge the receiver reports
// heavy hitters of the concatenation of both streams.
func (s *Summary[T]) MergeFrom(other sketch.Sketch[T]) error {
	o, ok := other.(*Summary[T])
	if !ok {
		return fmt.Errorf("%w: cannot merge %T into *topk.Summary", ErrIncompatible, other)
	}
	return s.res.MergeFrom(o.res)
}

// Reset implements sketch.Sketch.
func (s *Summary[T]) Reset() { s.res.Reset() }

// Snapshot implements sketch.Sketch: a FrameTopK frame wrapping eps and the
// underlying reservoir snapshot.
func (s *Summary[T]) Snapshot() ([]byte, error) {
	inner, err := s.res.Snapshot()
	if err != nil {
		return nil, err
	}
	buf := sketch.AppendFrameHeader(nil, sketch.FrameTopK)
	buf = snapshot.AppendFloat64(buf, s.eps)
	return append(buf, inner...), nil
}

// Restore implements sketch.Sketch.
func (s *Summary[T]) Restore(data []byte) error {
	r, err := sketch.ReadFrameHeader(data, sketch.FrameTopK)
	if err != nil {
		return err
	}
	eps := r.Float64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("%w: eps %v out of range", ErrBadSnapshot, eps)
	}
	if err := s.res.Restore(r.Rest()); err != nil {
		return err
	}
	s.eps = eps
	return nil
}
