package topk_test

import (
	"bytes"
	"errors"
	"slices"
	"testing"

	"robustsample/internal/rng"
	"robustsample/sketch"
	"robustsample/topk"
)

func mustU[T any](u sketch.Universe[T], err error) sketch.Universe[T] {
	if err != nil {
		panic(err)
	}
	return u
}

func TestValidation(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1 << 10))
	if _, err := topk.New(u, 0, 0.1, 100); !errors.Is(err, topk.ErrBadEps) {
		t.Fatalf("eps=0 err = %v, want ErrBadEps", err)
	}
	if _, err := topk.New(u, 0.1, 0, 100); !errors.Is(err, topk.ErrBadParams) {
		t.Fatalf("delta=0 err = %v, want ErrBadParams", err)
	}
	if _, err := topk.New[int64](nil, 0.1, 0.1, 100); !errors.Is(err, sketch.ErrNilUniverse) {
		t.Fatalf("nil universe err = %v, want ErrNilUniverse", err)
	}
	if _, err := topk.NewWithMemory(u, 0, 0.1); !errors.Is(err, topk.ErrBadMemory) {
		t.Fatalf("k=0 err = %v, want ErrBadMemory", err)
	}
	s, err := topk.New(u, 0.15, 0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Report(0); !errors.Is(err, topk.ErrBadThreshold) {
		t.Fatalf("alpha=0 err = %v, want ErrBadThreshold", err)
	}
	if out, err := s.Report(0.5); err != nil || out != nil {
		t.Fatalf("empty report = %v, %v", out, err)
	}
}

// TestReportContract checks the Corollary 1.6 decision rule on a skewed
// static stream: the heavy element is reported, light ones are not.
func TestReportContract(t *testing.T) {
	const (
		n     = 20000
		alpha = 0.25
		eps   = 0.15
	)
	u := mustU(sketch.NewInt64Universe(1 << 16))
	s, err := topk.New(u, eps, 0.05, n, sketch.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	// Element 42 has density ~0.3 >= alpha; the rest is uniform noise
	// (every noise value has density far below alpha - eps).
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			s.Offer(42)
		} else {
			s.Offer(100 + r.Int63n(60000))
		}
	}
	heavy, err := s.Report(alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(heavy, int64(42)) {
		t.Fatalf("heavy element missing from report %v", heavy)
	}
	for _, x := range heavy {
		if x != 42 {
			t.Fatalf("light element %d reported", x)
		}
	}
	d, err := s.EstimateDensity(42)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.3-eps/3 || d > 0.3+eps/3 {
		t.Fatalf("density estimate %.3f outside eps/3 of 0.3", d)
	}
}

func TestMergeAndSnapshot(t *testing.T) {
	u := mustU(sketch.NewStringUniverse("a", "b", "c", "d", "e"))
	a, err := topk.New(u, 0.2, 0.1, 400, sketch.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := topk.New(u, 0.2, 0.1, 400, sketch.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a.Offer("a")
		b.Offer("b")
	}
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 400 {
		t.Fatalf("merged count %d, want 400", a.Count())
	}
	heavy, err := a.Report(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(heavy, []string{"a", "b"}) {
		t.Fatalf("merged report = %v, want [a b]", heavy)
	}

	s1, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := topk.NewWithMemory(u, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(s1); err != nil {
		t.Fatal(err)
	}
	s2, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("topk snapshot not bit-identical after restore")
	}
	if restored.Eps() != 0.2 {
		t.Fatalf("restored eps %v, want 0.2 (from snapshot)", restored.Eps())
	}
	got, err := restored.Report(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, heavy) {
		t.Fatalf("restored report %v != %v", got, heavy)
	}
}
