package robustsample

// This file holds one benchmark per experiment in DESIGN.md's index
// (E1-E18), each regenerating the corresponding table at a reduced scale
// per iteration, plus end-to-end throughput benchmarks of the public API
// and the sharded engine. Run the full-scale tables with:
//
//	go run ./cmd/robustbench -all
//
// and individual ones with -exp E<n>.

import (
	"fmt"
	"io"
	"testing"

	"robustsample/internal/bench"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/shard"
)

// benchCfg is the per-iteration configuration: small but non-degenerate.
func benchCfg() bench.Config {
	return bench.Config{Seed: 1, Trials: 2, Scale: 0.05}
}

func runExp(b *testing.B, id string) {
	exp, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not found", id)
	}
	cfg := benchCfg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		exp.Run(cfg).Render(io.Discard)
	}
}

func BenchmarkExpE1BernoulliRobustness(b *testing.B)   { runExp(b, "E1") }
func BenchmarkExpE2ReservoirRobustness(b *testing.B)   { runExp(b, "E2") }
func BenchmarkExpE3BernoulliAttack(b *testing.B)       { runExp(b, "E3") }
func BenchmarkExpE4ReservoirAttack(b *testing.B)       { runExp(b, "E4") }
func BenchmarkExpE5ContinuousRobustness(b *testing.B)  { runExp(b, "E5") }
func BenchmarkExpE6QuantileSketches(b *testing.B)      { runExp(b, "E6") }
func BenchmarkExpE7HeavyHitters(b *testing.B)          { runExp(b, "E7") }
func BenchmarkExpE8RangeQueries(b *testing.B)          { runExp(b, "E8") }
func BenchmarkExpE9CenterPoints(b *testing.B)          { runExp(b, "E9") }
func BenchmarkExpE10MedianAttack(b *testing.B)         { runExp(b, "E10") }
func BenchmarkExpE11StaticAdaptiveGap(b *testing.B)    { runExp(b, "E11") }
func BenchmarkExpE12DistributedRouting(b *testing.B)   { runExp(b, "E12") }
func BenchmarkExpE13ClusteringPipeline(b *testing.B)   { runExp(b, "E13") }
func BenchmarkExpE14DeterministicCompare(b *testing.B) { runExp(b, "E14") }
func BenchmarkExpE15MartingaleStructure(b *testing.B)  { runExp(b, "E15") }
func BenchmarkExpE16WeightedReservoir(b *testing.B)    { runExp(b, "E16") }
func BenchmarkExpE17ReservoirAblation(b *testing.B)    { runExp(b, "E17") }
func BenchmarkExpE18ShardedSampling(b *testing.B)      { runExp(b, "E18") }

// Throughput of the public API's robust samplers on a benign stream.

func BenchmarkRobustReservoirOffer(b *testing.B) {
	p := Params{Eps: 0.1, Delta: 0.1, N: 1 << 20}
	res := NewRobustReservoir(p, NewPrefixes(1<<20))
	r := NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Offer(int64(i), r)
	}
}

func BenchmarkRobustBernoulliOffer(b *testing.B) {
	p := Params{Eps: 0.1, Delta: 0.1, N: 1 << 20}
	s := NewRobustBernoulli(p, NewPrefixes(1<<20))
	r := NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(int64(i), r)
	}
}

// End-to-end adaptive game throughput (adversary + sampler + exact verdict).

func BenchmarkAdaptiveGameEndToEnd(b *testing.B) {
	sys := NewPrefixes(1 << 20)
	root := NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunGame(NewReservoir(200), NewStaticUniformAdversary(1<<20), sys, 5000, 0.2, root)
	}
}

// Exact unbounded-universe attack throughput.

func BenchmarkExactBisectionAttack(b *testing.B) {
	root := NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunBisectionAttackReservoir(10000, 20, root)
	}
}

// Sharded-engine ingest throughput vs shard count: one fixed stream routed
// across S shards (uniform routing, per-shard reservoirs), shards ingesting
// in parallel, with a merged checkpoint verdict at the end of every pass.
// SetBytes reports stream bytes so ns/op converts to MB/s; BENCH.md records
// the throughput-vs-S table.

func BenchmarkShardedIngest(b *testing.B) {
	const n = 1 << 18
	const universe = int64(1) << 20
	gen := rng.New(9)
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = 1 + gen.Int63n(universe)
	}
	for _, S := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("S=%d", S), func(b *testing.B) {
			eng := shard.New(shard.Config{
				Shards: S,
				Router: shard.Uniform{},
				System: setsystem.NewPrefixes(universe),
				NewSampler: func(int) game.Sampler {
					return sampler.NewReservoir[int64](2048)
				},
			}, nil)
			root := rng.New(3)
			b.SetBytes(8 * n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.StartGame(root)
				eng.Ingest(stream)
				if eng.Verdict().Err < 0 {
					b.Fatal("impossible verdict")
				}
			}
		})
	}
}
