package farm

import (
	"errors"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/sketch"
)

// refTenant is the ground truth for one tenant: a dedicated standalone
// sampler over the tenant's RNG stream, exactly what the farm multiplexes
// through flat slab state.
type refTenant struct {
	res *sampler.Reservoir[int64]
	ber *sampler.Bernoulli[int64]
	rng *rng.RNG
}

func newRefReservoir(seed uint64, id TenantID, k int) *refTenant {
	return &refTenant{res: &sampler.Reservoir[int64]{K: k}, rng: rng.NewWithStream(seed, uint64(id))}
}

func newRefBernoulli(seed uint64, id TenantID, p float64) *refTenant {
	return &refTenant{ber: &sampler.Bernoulli[int64]{P: p}, rng: rng.NewWithStream(seed, uint64(id))}
}

func (rt *refTenant) offer(pts []int64) int {
	if rt.res != nil {
		return rt.res.OfferBatch(pts, rt.rng)
	}
	return rt.ber.OfferBatch(pts, rt.rng)
}

func (rt *refTenant) view() []int64 {
	if rt.res != nil {
		return rt.res.View()
	}
	return rt.ber.View()
}

func (rt *refTenant) rounds() int {
	if rt.res != nil {
		return rt.res.Rounds()
	}
	return rt.ber.Rounds()
}

func mustU(t testing.TB, n int64) sketch.Universe[int64] {
	t.Helper()
	u, err := sketch.NewInt64Universe(n)
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	return u
}

// driveDifferential feeds an identical random keyed workload to the farm
// and to per-tenant reference samplers, comparing admitted counts on every
// batch and full sample state at the end.
func driveDifferential(t *testing.T, f *Farm[int64], refs map[TenantID]*refTenant, mk func(TenantID) *refTenant, tenants, iters int) {
	t.Helper()
	driver := rng.New(12345)
	for it := 0; it < iters; it++ {
		id := TenantID(driver.Intn(tenants) + 1)
		n := driver.Intn(40)
		batch := make([]int64, n)
		for i := range batch {
			batch[i] = int64(driver.Intn(1000)) + 1
		}
		rt, ok := refs[id]
		if !ok {
			rt = mk(id)
			refs[id] = rt
		}
		got, err := f.OfferBatch(id, batch)
		if err != nil {
			t.Fatalf("iter %d tenant %d: OfferBatch: %v", it, id, err)
		}
		if want := rt.offer(batch); got != want {
			t.Fatalf("iter %d tenant %d: admitted %d, reference %d", it, id, got, want)
		}
	}
	checkAgainstRefs(t, f, refs)
}

func checkAgainstRefs(t *testing.T, f *Farm[int64], refs map[TenantID]*refTenant) {
	t.Helper()
	for id, rt := range refs {
		sample, err := f.Sample(id)
		if err != nil {
			t.Fatalf("tenant %d: Sample: %v", id, err)
		}
		want := rt.view()
		if len(sample) != len(want) {
			t.Fatalf("tenant %d: sample len %d, reference %d", id, len(sample), len(want))
		}
		for i := range want {
			if sample[i] != want[i] {
				t.Fatalf("tenant %d: sample[%d] = %d, reference %d", id, i, sample[i], want[i])
			}
		}
		rounds, err := f.Rounds(id)
		if err != nil {
			t.Fatalf("tenant %d: Rounds: %v", id, err)
		}
		if rounds != rt.rounds() {
			t.Fatalf("tenant %d: rounds %d, reference %d", id, rounds, rt.rounds())
		}
	}
}

// TestFarmReservoirMatchesStandalone pins the tentpole claim: a reservoir
// farm over flat slab state is byte-identical to one standalone Algorithm R
// sampler per tenant, admission bits, sample order and rounds included.
func TestFarmReservoirMatchesStandalone(t *testing.T) {
	const seed, k = 7, 16
	f, err := NewReservoirFarm(mustU(t, 1000), k, WithSeed(seed), WithShards(4))
	if err != nil {
		t.Fatalf("NewReservoirFarm: %v", err)
	}
	defer f.Close()
	refs := make(map[TenantID]*refTenant)
	driveDifferential(t, f, refs, func(id TenantID) *refTenant { return newRefReservoir(seed, id, k) }, 50, 400)
}

// TestFarmBernoulliMatchesStandalone is the Bernoulli analogue, exercising
// slot growth across size classes as samples outgrow their slabs.
func TestFarmBernoulliMatchesStandalone(t *testing.T) {
	const seed = 11
	const p = 0.3
	f, err := NewBernoulliFarm(mustU(t, 1000), p, WithSeed(seed), WithShards(4))
	if err != nil {
		t.Fatalf("NewBernoulliFarm: %v", err)
	}
	defer f.Close()
	refs := make(map[TenantID]*refTenant)
	driveDifferential(t, f, refs, func(id TenantID) *refTenant { return newRefBernoulli(seed, id, p) }, 20, 400)
}

// TestFarmEvictionBitIdentity forces heavy evict/hydrate churn (a hot
// bound far below the tenant count) and requires the exact same final
// state as the standalone reference: cold-tenant round-trips through the
// snapshot payload must be lossless, RNG state included.
func TestFarmEvictionBitIdentity(t *testing.T) {
	const seed, k = 3, 8
	for _, kind := range []string{"reservoir", "bernoulli"} {
		var f *Farm[int64]
		var err error
		var mk func(TenantID) *refTenant
		if kind == "reservoir" {
			f, err = NewReservoirFarm(mustU(t, 1000), k, WithSeed(seed), WithShards(2), WithMaxHotTenants(8))
			mk = func(id TenantID) *refTenant { return newRefReservoir(seed, id, k) }
		} else {
			f, err = NewBernoulliFarm(mustU(t, 1000), 0.25, WithSeed(seed), WithShards(2), WithMaxHotTenants(8))
			mk = func(id TenantID) *refTenant { return newRefBernoulli(seed, id, 0.25) }
		}
		if err != nil {
			t.Fatalf("%s: constructor: %v", kind, err)
		}
		refs := make(map[TenantID]*refTenant)
		driveDifferential(t, f, refs, mk, 60, 500)
		if st := f.Stats(); st.Evictions == 0 || st.Hydrations == 0 {
			t.Fatalf("%s: expected evict/hydrate churn, got %+v", kind, st)
		}
		f.Close()
	}
}

// TestFarmSpillBitIdentity repeats the eviction differential with cold
// tenants spilled to disk segment files.
func TestFarmSpillBitIdentity(t *testing.T) {
	const seed, k = 5, 8
	f, err := NewReservoirFarm(mustU(t, 1000), k,
		WithSeed(seed), WithShards(2), WithMaxHotTenants(6), WithSpillDir(t.TempDir()))
	if err != nil {
		t.Fatalf("NewReservoirFarm: %v", err)
	}
	defer f.Close()
	refs := make(map[TenantID]*refTenant)
	driveDifferential(t, f, refs, func(id TenantID) *refTenant { return newRefReservoir(seed, id, k) }, 60, 500)
	st := f.Stats()
	if st.Spilled == 0 {
		t.Fatalf("expected spilled tenants, got %+v", st)
	}
	if st.SpillBytes == 0 {
		t.Fatalf("expected non-empty spill files, got %+v", st)
	}
}

// TestFarmSpillCorruption flips bits in the spill segment files and
// requires every touched tenant to fail with ErrBadSnapshot — never a
// silently wrong sample.
func TestFarmSpillCorruption(t *testing.T) {
	const seed, k = 9, 8
	f, err := NewReservoirFarm(mustU(t, 1000), k,
		WithSeed(seed), WithShards(2), WithMaxHotTenants(4), WithSpillDir(t.TempDir()))
	if err != nil {
		t.Fatalf("NewReservoirFarm: %v", err)
	}
	defer f.Close()
	driver := rng.New(1)
	for id := TenantID(1); id <= 40; id++ {
		batch := make([]int64, 20)
		for i := range batch {
			batch[i] = int64(driver.Intn(1000)) + 1
		}
		if _, err := f.OfferBatch(id, batch); err != nil {
			t.Fatalf("OfferBatch: %v", err)
		}
	}
	// Corrupt every spilled record in place.
	var spilled []TenantID
	for _, sh := range f.shards {
		sh.mu.Lock()
		for i := range sh.entries {
			e := &sh.entries[i]
			if e.state != stateSpilled {
				continue
			}
			spilled = append(spilled, e.id)
			buf := make([]byte, spillHeader+int(e.spillLen))
			if _, err := sh.spill.f.ReadAt(buf, e.spillOff); err != nil {
				sh.mu.Unlock()
				t.Fatalf("read spill record: %v", err)
			}
			buf[spillHeader] ^= 0xff // corrupt the payload, not just the checksum
			if _, err := sh.spill.f.WriteAt(buf, e.spillOff); err != nil {
				sh.mu.Unlock()
				t.Fatalf("corrupt spill record: %v", err)
			}
		}
		sh.mu.Unlock()
	}
	if len(spilled) == 0 {
		t.Fatal("no spilled tenants to corrupt")
	}
	for _, id := range spilled {
		if _, err := f.Sample(id); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("Sample(%d) after corruption: err = %v, want ErrBadSnapshot", id, err)
		}
		if _, err := f.OfferBatch(id, []int64{1}); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("OfferBatch(%d) after corruption: err = %v, want ErrBadSnapshot", id, err)
		}
	}
}

// TestProducerMatchesDirectOffers pins the keyed batch lane to the direct
// per-tenant path: routing, run grouping and shard fan-out must not change
// any tenant's stream view.
func TestProducerMatchesDirectOffers(t *testing.T) {
	const seed, k = 21, 12
	fa, err := NewReservoirFarm(mustU(t, 1000), k, WithSeed(seed), WithShards(4))
	if err != nil {
		t.Fatalf("farm A: %v", err)
	}
	defer fa.Close()
	fb, err := NewReservoirFarm(mustU(t, 1000), k, WithSeed(seed), WithShards(4))
	if err != nil {
		t.Fatalf("farm B: %v", err)
	}
	defer fb.Close()
	p := fa.NewProducer()
	driver := rng.New(777)
	totalA, totalB := 0, 0
	for batch := 0; batch < 50; batch++ {
		n := driver.Intn(100) + 1
		ids := make([]TenantID, n)
		xs := make([]int64, n)
		for i := range ids {
			ids[i] = TenantID(driver.Intn(30) + 1)
			xs[i] = int64(driver.Intn(1000)) + 1
		}
		adm, err := p.OfferBatch(ids, xs)
		if err != nil {
			t.Fatalf("producer batch %d: %v", batch, err)
		}
		totalA += adm
		// Replay per tenant in order on farm B.
		for i := 0; i < n; {
			j := i + 1
			for j < n && ids[j] == ids[i] {
				j++
			}
			adm, err := fb.OfferBatch(ids[i], xs[i:j])
			if err != nil {
				t.Fatalf("direct batch %d: %v", batch, err)
			}
			totalB += adm
			i = j
		}
	}
	if totalA != totalB {
		t.Fatalf("admitted: producer %d, direct %d", totalA, totalB)
	}
	for id := TenantID(1); id <= 30; id++ {
		sa, errA := fa.Sample(id)
		sb, errB := fb.Sample(id)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("tenant %d: err %v vs %v", id, errA, errB)
		}
		if errA != nil {
			continue
		}
		if len(sa) != len(sb) {
			t.Fatalf("tenant %d: sample len %d vs %d", id, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("tenant %d: sample[%d] %d vs %d", id, i, sa[i], sb[i])
			}
		}
	}
}

// TestFarmLifecycleErrors covers the sentinel contract: unknown tenants,
// tombstones, closed farms, mismatched batches and the memory bound.
func TestFarmLifecycleErrors(t *testing.T) {
	f, err := NewReservoirFarm(mustU(t, 100), 4, WithShards(2))
	if err != nil {
		t.Fatalf("NewReservoirFarm: %v", err)
	}
	if _, err := f.Sample(99); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Sample(unknown): %v", err)
	}
	if err := f.Evict(99); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Evict(unknown): %v", err)
	}
	if _, err := f.OfferBatch(1, []int64{5, 6, 7}); err != nil {
		t.Fatalf("OfferBatch: %v", err)
	}
	if err := f.Drop(1); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if _, err := f.OfferBatch(1, []int64{5}); !errors.Is(err, ErrTenantEvicted) {
		t.Fatalf("OfferBatch(dropped): %v", err)
	}
	if _, err := f.Sample(1); !errors.Is(err, ErrTenantEvicted) {
		t.Fatalf("Sample(dropped): %v", err)
	}
	if err := f.Drop(1); !errors.Is(err, ErrTenantEvicted) {
		t.Fatalf("Drop(dropped): %v", err)
	}
	if _, err := f.OfferBatch(2, []int64{7}); err != nil {
		t.Fatalf("OfferBatch(2): %v", err)
	}
	if _, err := f.OfferBatch(2, []int64{5, 101}); !errors.Is(err, sketch.ErrOutOfUniverse) {
		t.Fatalf("OfferBatch(out of universe): %v", err)
	}
	if got, err := f.Rounds(2); err != nil || got != 1 {
		t.Fatalf("out-of-universe batch was not atomic: rounds %d, err %v", got, err)
	}
	p := f.NewProducer()
	if _, err := p.OfferBatch([]TenantID{1, 2}, []int64{1}); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("mismatched keyed batch: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := f.OfferBatch(2, []int64{5}); !errors.Is(err, ErrFarmClosed) {
		t.Fatalf("OfferBatch(closed): %v", err)
	}
	if _, err := f.Sample(2); !errors.Is(err, ErrFarmClosed) {
		t.Fatalf("Sample(closed): %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestFarmMemoryBound verifies the WithMaxBytes hard bound surfaces as
// ErrFarmFull instead of unbounded growth.
func TestFarmMemoryBound(t *testing.T) {
	f, err := NewReservoirFarm(mustU(t, 1000), 64, WithShards(1), WithMaxBytes(4096))
	if err != nil {
		t.Fatalf("NewReservoirFarm: %v", err)
	}
	defer f.Close()
	var full bool
	for id := TenantID(1); id <= 1000; id++ {
		_, err := f.OfferBatch(id, []int64{1, 2, 3})
		if errors.Is(err, ErrFarmFull) {
			full = true
			break
		}
		if err != nil {
			t.Fatalf("tenant %d: %v", id, err)
		}
	}
	if !full {
		t.Fatal("1000 tenants of k=64 fit in 4096 bytes: MaxBytes not enforced")
	}
}

// TestFarmBadConfig exercises constructor validation.
func TestFarmBadConfig(t *testing.T) {
	u := mustU(t, 10)
	if _, err := NewReservoirFarm[int64](nil, 4); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil universe: %v", err)
	}
	if _, err := NewReservoirFarm(u, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := NewBernoulliFarm(u, 1.5); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("p=1.5: %v", err)
	}
	if _, err := NewReservoirFarm(u, 4, WithShards(0)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("shards=0: %v", err)
	}
	if _, err := NewReservoirFarm(u, 4, WithMaxHotTenants(-1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("maxhot=-1: %v", err)
	}
	if _, err := NewReservoirFarm(u, 4, WithSpillDir("")); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty spill dir: %v", err)
	}
	if _, err := NewReservoirFarm(u, 4, WithVerdicts(System(99))); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad system: %v", err)
	}
}

// TestOfferBatchSteadyStateAllocs pins the zero-alloc claim of the hot
// ingest paths: with every touched tenant hot, neither the single-tenant
// nor the keyed producer lane allocates.
func TestOfferBatchSteadyStateAllocs(t *testing.T) {
	f, err := NewReservoirFarm(mustU(t, 1000), 16, WithShards(4))
	if err != nil {
		t.Fatalf("NewReservoirFarm: %v", err)
	}
	defer f.Close()
	const tenants = 128
	batch := make([]int64, 32)
	for i := range batch {
		batch[i] = int64(i%1000) + 1
	}
	for id := TenantID(1); id <= tenants; id++ {
		if _, err := f.OfferBatch(id, batch); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}
	id := TenantID(1)
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := f.OfferBatch(id, batch); err != nil {
			t.Fatalf("OfferBatch: %v", err)
		}
		id = id%tenants + 1
	}); avg != 0 {
		t.Fatalf("Farm.OfferBatch steady state: %.1f allocs/op, want 0", avg)
	}
	p := f.NewProducer()
	ids := make([]TenantID, 64)
	xs := make([]int64, 64)
	driver := rng.New(4)
	for i := range ids {
		ids[i] = TenantID(driver.Intn(tenants) + 1)
		xs[i] = int64(driver.Intn(1000)) + 1
	}
	if _, err := p.OfferBatch(ids, xs); err != nil {
		t.Fatalf("producer warmup: %v", err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := p.OfferBatch(ids, xs); err != nil {
			t.Fatalf("producer OfferBatch: %v", err)
		}
	}); avg != 0 {
		t.Fatalf("Producer.OfferBatch steady state: %.1f allocs/op, want 0", avg)
	}
}

// TestGlobalQueries covers the cross-tenant fan-in: sample size/rounds
// accounting, determinism across identical farms, quantiles and top-k on
// a known skew, and the discrepancy verdict in the lossless regime.
func TestGlobalQueries(t *testing.T) {
	const seed, k = 13, 16
	build := func() *Farm[int64] {
		f, err := NewReservoirFarm(mustU(t, 1000), k, WithSeed(seed), WithShards(4), WithVerdicts(Prefixes))
		if err != nil {
			t.Fatalf("NewReservoirFarm: %v", err)
		}
		return f
	}
	fa, fb := build(), build()
	defer fa.Close()
	defer fb.Close()
	driver := rng.New(31)
	total := 0
	for it := 0; it < 100; it++ {
		id := TenantID(driver.Intn(20) + 1)
		batch := make([]int64, driver.Intn(10)+1)
		for i := range batch {
			batch[i] = int64(driver.Intn(100)) + 1
		}
		if _, err := fa.OfferBatch(id, batch); err != nil {
			t.Fatalf("farm A: %v", err)
		}
		if _, err := fb.OfferBatch(id, batch); err != nil {
			t.Fatalf("farm B: %v", err)
		}
		total += len(batch)
	}
	sa, ra, err := fa.GlobalSample(nil)
	if err != nil {
		t.Fatalf("GlobalSample A: %v", err)
	}
	sb, rb, err := fb.GlobalSample(nil)
	if err != nil {
		t.Fatalf("GlobalSample B: %v", err)
	}
	if ra != total || rb != total {
		t.Fatalf("global rounds %d/%d, want %d", ra, rb, total)
	}
	if len(sa) != k || len(sb) != k {
		t.Fatalf("global sample len %d/%d, want %d", len(sa), len(sb), k)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("global sample not deterministic: [%d] %d vs %d", i, sa[i], sb[i])
		}
	}
	// A selector restricting to one tenant reproduces that tenant's state.
	one := TenantID(1)
	sel, rounds, err := fa.GlobalSample(func(id TenantID) bool { return id == one })
	if err == nil {
		wantRounds, _ := fa.Rounds(one)
		if rounds != wantRounds {
			t.Fatalf("selector rounds %d, tenant rounds %d", rounds, wantRounds)
		}
		want, _ := fa.Sample(one)
		if len(sel) != len(want) {
			t.Fatalf("selector sample len %d, tenant %d", len(sel), len(want))
		}
	}
	if _, err := fa.GlobalQuantile(2.0, nil); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("quantile 2.0: %v", err)
	}
	if _, err := fa.GlobalTopK(0, nil); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("topk 0: %v", err)
	}
	if _, _, err := fa.GlobalSample(func(TenantID) bool { return false }); err != nil {
		t.Fatalf("empty selection GlobalSample: %v", err)
	}
	if _, err := fa.GlobalQuantile(0.5, func(TenantID) bool { return false }); !errors.Is(err, ErrNoSample) {
		t.Fatalf("empty selection quantile: %v", err)
	}

	// Lossless regime: one tenant, fewer elements than k. The quantiles,
	// top-k and verdict are then exact.
	fl := build()
	defer fl.Close()
	stream := []int64{10, 20, 20, 20, 30, 40, 50, 60, 70, 80}
	if _, err := fl.OfferBatch(1, stream); err != nil {
		t.Fatalf("lossless offer: %v", err)
	}
	med, err := fl.GlobalQuantile(0.5, nil)
	if err != nil {
		t.Fatalf("median: %v", err)
	}
	if med != 30 {
		t.Fatalf("median %d, want 30", med)
	}
	lo, err := fl.GlobalQuantile(0, nil)
	if err != nil || lo != 10 {
		t.Fatalf("q0 %d err %v, want 10", lo, err)
	}
	hi, err := fl.GlobalQuantile(1, nil)
	if err != nil || hi != 80 {
		t.Fatalf("q1 %d err %v, want 80", hi, err)
	}
	top, err := fl.GlobalTopK(2, nil)
	if err != nil {
		t.Fatalf("topk: %v", err)
	}
	if top[0].Value != 20 || top[0].Count != 3 {
		t.Fatalf("top1 %+v, want value 20 count 3", top[0])
	}
	if top[0].Frac < 0.29 || top[0].Frac > 0.31 {
		t.Fatalf("top1 frac %v, want 0.3", top[0].Frac)
	}
	v, err := fl.GlobalVerdict()
	if err != nil {
		t.Fatalf("verdict: %v", err)
	}
	if v.Err != 0 {
		t.Fatalf("lossless verdict err %v, want 0 (sample == stream)", v.Err)
	}
	if v.StreamLen != len(stream) || v.SampleLen != len(stream) {
		t.Fatalf("verdict sizes %d/%d, want %d", v.StreamLen, v.SampleLen, len(stream))
	}
	// Verdicts not configured.
	fn, err := NewReservoirFarm(mustU(t, 1000), 4, WithShards(1))
	if err != nil {
		t.Fatalf("no-verdict farm: %v", err)
	}
	defer fn.Close()
	if _, err := fn.GlobalVerdict(); !errors.Is(err, ErrNoVerdicts) {
		t.Fatalf("GlobalVerdict without WithVerdicts: %v", err)
	}
}

// TestFarmStats sanity-checks the operational counters.
func TestFarmStats(t *testing.T) {
	f, err := NewReservoirFarm(mustU(t, 100), 4, WithShards(2), WithMaxHotTenants(4), WithTTL(2))
	if err != nil {
		t.Fatalf("NewReservoirFarm: %v", err)
	}
	defer f.Close()
	for id := TenantID(1); id <= 20; id++ {
		if _, err := f.OfferBatch(id, []int64{1, 2, 3}); err != nil {
			t.Fatalf("OfferBatch: %v", err)
		}
	}
	st := f.Stats()
	if st.Tenants != 20 {
		t.Fatalf("tenants %d, want 20", st.Tenants)
	}
	if st.Offered != 60 {
		t.Fatalf("offered %d, want 60", st.Offered)
	}
	if st.Hot+st.Cold+st.Spilled != st.Tenants {
		t.Fatalf("lifecycle partition %d+%d+%d != %d", st.Hot, st.Cold, st.Spilled, st.Tenants)
	}
	if st.Hot > 8 {
		t.Fatalf("hot %d exceeds per-shard bound", st.Hot)
	}
	if st.SlabBytes == 0 {
		t.Fatal("slab bytes 0")
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite hot bound")
	}
	// TTL-based background demotion: advance each shard's op clock by
	// touching one tenant per shard, making the other hot entries stale.
	var touch []TenantID
	seen := make(map[int]bool)
	for id := TenantID(1); id <= 20; id++ {
		if s := f.shardOf(id); !seen[s] {
			seen[s] = true
			touch = append(touch, id)
		}
	}
	for i := 0; i < 5; i++ {
		for _, id := range touch {
			if _, err := f.OfferBatch(id, []int64{1}); err != nil {
				t.Fatalf("touch offer: %v", err)
			}
		}
	}
	demoted := f.EvictIdle()
	if demoted == 0 {
		t.Fatal("EvictIdle demoted nothing despite TTL 2 and stale hot tenants")
	}
	if err := f.Evict(1); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if got := f.Tenants(); got != 20 {
		t.Fatalf("Tenants() %d, want 20", got)
	}
}
