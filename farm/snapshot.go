package farm

import (
	"fmt"

	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/slab"
	"robustsample/internal/snapshot"
	"robustsample/sketch"
)

// Farm snapshot layout (frame kind sketch.FrameFarm):
//
//	frame header | codecVersion | universe | seed | kind | k | p |
//	verdicts flag + system | tenant count |
//	per tenant: id, live flag, payload bytes (live only) |
//	verdicts only: accumulator count, per-shard accumulator state
//
// A tenant payload — also the eviction/spill format and the body of
// single-tenant frames (sketch.FrameFarmTenant) — is the tenant's RNG state
// followed by its kind-prefixed sampler state (the PR-4 codecs):
//
//	rngHi | rngLo | sampler.AppendState
//
// Snapshots are checkpoints: Restore replaces the farm's entire tenant
// population. Restored tenants install as cold payloads (validated first),
// so restoring a million-tenant farm costs no slab churn — tenants hydrate
// lazily on their next offer.

// codecVersion versions the farm frame and tenant payload layout.
const codecVersion = 1

// payloadOf serializes a tenant's current state regardless of lifecycle
// tier. Callers hold sh.mu.
func (sh *farmShard) payloadOf(e *entry) ([]byte, error) {
	switch e.state {
	case stateHot:
		return sh.appendTenantPayload(nil, e), nil
	case stateCold:
		return append([]byte(nil), e.cold...), nil
	case stateSpilled:
		return sh.spill.read(e.spillOff, e.spillLen)
	}
	return nil, ErrTenantEvicted
}

// appendTenantPayload appends a hot tenant's payload. Callers hold sh.mu.
func (sh *farmShard) appendTenantPayload(buf []byte, e *entry) []byte {
	return sh.appendPayloadRaw(buf, sh.arena.Items(e.ref), sh.arena.Words(e.ref))
}

// appendPayloadRaw appends a payload from detached flat state: items holds
// the sample, words the slot counter words (RNG state included). The
// decode scratch sampler briefly attaches to serialize through the shared
// sampler codecs, so the payload is byte-identical to a standalone
// sampler's state. Callers hold sh.mu.
func (sh *farmShard) appendPayloadRaw(buf []byte, items []int64, words []uint64) []byte {
	buf = snapshot.AppendUint64(buf, words[0])
	buf = snapshot.AppendUint64(buf, words[1])
	if sh.c.kind == kindReservoir {
		sh.decRes.AttachFlat(items, words[rngWords:])
		buf, _ = sampler.AppendState(buf, &sh.decRes)
		sh.decRes.DetachFlat(words[rngWords:])
	} else {
		sh.decBer.AttachFlat(items, words[rngWords:])
		buf, _ = sampler.AppendState(buf, &sh.decBer)
		sh.decBer.DetachFlat(words[rngWords:])
	}
	return buf
}

// loadTenantPayload decodes and fully validates a tenant payload into the
// shard's decode scratch sampler: codec consistency (via the sampler
// codecs), configuration match, no trailing bytes, and every sample point
// inside the universe. On success the scratch holds the decoded state and
// the tenant's RNG words and sample length are returned. Callers hold
// sh.mu.
func (sh *farmShard) loadTenantPayload(payload []byte) (hi, lo uint64, n int, err error) {
	r := snapshot.NewReader(payload)
	hi = r.Uint64()
	lo = r.Uint64()
	if rerr := r.Err(); rerr != nil {
		return 0, 0, 0, fmt.Errorf("%w: tenant payload: %v", ErrBadSnapshot, rerr)
	}
	var view []int64
	if sh.c.kind == kindReservoir {
		if lerr := sampler.LoadState(r, &sh.decRes); lerr != nil {
			return 0, 0, 0, fmt.Errorf("%w: tenant payload: %v", ErrBadSnapshot, lerr)
		}
		if sh.decRes.K != sh.c.k {
			k := sh.decRes.K
			sh.decRes.K = sh.c.k
			return 0, 0, 0, fmt.Errorf("%w: payload capacity %d, farm capacity %d", ErrBadSnapshot, k, sh.c.k)
		}
		view = sh.decRes.View()
	} else {
		if lerr := sampler.LoadState(r, &sh.decBer); lerr != nil {
			return 0, 0, 0, fmt.Errorf("%w: tenant payload: %v", ErrBadSnapshot, lerr)
		}
		if sh.decBer.P != sh.c.p {
			p := sh.decBer.P
			sh.decBer.P = sh.c.p
			return 0, 0, 0, fmt.Errorf("%w: payload rate %v, farm rate %v", ErrBadSnapshot, p, sh.c.p)
		}
		view = sh.decBer.View()
	}
	if r.Len() != 0 {
		return 0, 0, 0, fmt.Errorf("%w: %d trailing bytes after tenant payload", ErrBadSnapshot, r.Len())
	}
	for _, pt := range view {
		if pt < 1 || pt > sh.c.uSize {
			return 0, 0, 0, fmt.Errorf("%w: sample point %d outside universe [1, %d]", ErrBadSnapshot, pt, sh.c.uSize)
		}
	}
	return hi, lo, len(view), nil
}

// installCold installs a validated payload as a cold tenant, replacing any
// existing state for the id (tombstones included — an explicit restore
// revives a dropped tenant). Callers hold sh.mu.
func (sh *farmShard) installCold(id TenantID, payload []byte) {
	idx, ok := sh.index[id]
	if !ok {
		idx = int32(len(sh.entries))
		sh.entries = append(sh.entries, entry{id: id, hotPos: -1, state: stateCold})
		sh.index[id] = idx
	} else {
		e := &sh.entries[idx]
		switch e.state {
		case stateHot:
			sh.hotRemove(idx)
			sh.arena.Free(e.ref)
		case stateSpilled:
			sh.spill.retire(e.spillLen)
		case stateTombstone:
			sh.dropped--
		}
	}
	e := &sh.entries[idx]
	e.ref = slab.NilRef
	e.spillLen = 0
	e.cold = append([]byte(nil), payload...)
	e.state = stateCold
	e.refBit = false
}

// installTombstone records a dropped tenant from a snapshot. Callers hold
// sh.mu.
func (sh *farmShard) installTombstone(id TenantID) {
	idx, ok := sh.index[id]
	if !ok {
		idx = int32(len(sh.entries))
		sh.entries = append(sh.entries, entry{id: id, hotPos: -1, state: stateTombstone})
		sh.index[id] = idx
		sh.dropped++
		return
	}
	e := &sh.entries[idx]
	switch e.state {
	case stateHot:
		sh.hotRemove(idx)
		sh.arena.Free(e.ref)
	case stateSpilled:
		sh.spill.retire(e.spillLen)
	case stateTombstone:
		return
	}
	e.ref = slab.NilRef
	e.cold = nil
	e.spillLen = 0
	e.state = stateTombstone
	sh.dropped++
}

// SnapshotTenant serializes one tenant's complete state — sample, counters
// and RNG — as a self-describing frame (sketch.FrameFarmTenant), usable to
// migrate a single tenant between farms.
func (f *Farm[T]) SnapshotTenant(id TenantID) ([]byte, error) {
	if f.closed.Load() {
		return nil, ErrFarmClosed
	}
	sh := f.shards[f.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.index[id]
	if !ok {
		return nil, ErrUnknownTenant
	}
	e := &sh.entries[idx]
	if e.state == stateTombstone {
		return nil, ErrTenantEvicted
	}
	payload, err := sh.payloadOf(e)
	if err != nil {
		return nil, err
	}
	buf := sketch.AppendFrameHeader(nil, sketch.FrameFarmTenant)
	buf = append(buf, codecVersion)
	buf = snapshot.AppendInt64(buf, f.c.uSize)
	return append(buf, payload...), nil
}

// RestoreTenant installs a single-tenant frame under the given id,
// replacing any existing state for that tenant (an explicit restore
// revives a dropped tenant). The payload is fully validated before any
// state changes; the tenant installs cold and hydrates on first use.
func (f *Farm[T]) RestoreTenant(id TenantID, data []byte) error {
	if f.closed.Load() {
		return ErrFarmClosed
	}
	r, err := sketch.ReadFrameHeader(data, sketch.FrameFarmTenant)
	if err != nil {
		return err
	}
	version := r.Byte()
	uSize := r.Int64()
	if rerr := r.Err(); rerr != nil {
		return fmt.Errorf("%w: tenant frame: %v", ErrBadSnapshot, rerr)
	}
	if version != codecVersion {
		return fmt.Errorf("%w: farm codec version %d, want %d", ErrBadSnapshot, version, codecVersion)
	}
	if uSize != f.c.uSize {
		return fmt.Errorf("%w: snapshot universe %d, farm universe %d", ErrBadSnapshot, uSize, f.c.uSize)
	}
	payload := r.Rest()
	sh := f.shards[f.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, _, _, err := sh.loadTenantPayload(payload); err != nil {
		return err
	}
	sh.installCold(id, payload)
	return nil
}

// Snapshot serializes the whole farm — every tenant's state, tombstones,
// and (with WithVerdicts) the per-shard discrepancy accumulators — as one
// deterministic frame.
func (f *Farm[T]) Snapshot() ([]byte, error) {
	if f.closed.Load() {
		return nil, ErrFarmClosed
	}
	buf := sketch.AppendFrameHeader(nil, sketch.FrameFarm)
	buf = append(buf, codecVersion)
	buf = snapshot.AppendInt64(buf, f.c.uSize)
	buf = snapshot.AppendUint64(buf, f.c.seed)
	buf = append(buf, byte(f.c.kind))
	buf = snapshot.AppendInt64(buf, int64(f.c.k))
	buf = snapshot.AppendFloat64(buf, f.c.p)
	if f.c.sys != nil {
		buf = append(buf, 1, byte(f.c.system))
	} else {
		buf = append(buf, 0, 0)
	}
	// Serialize each shard under its own lock first, so the tenant count
	// and the records agree even while other shards keep ingesting.
	var records []byte
	var accs []byte
	count := uint64(0)
	for _, sh := range f.shards {
		sh.mu.Lock()
		for i := range sh.entries {
			e := &sh.entries[i]
			records = snapshot.AppendUint64(records, uint64(e.id))
			if e.state == stateTombstone {
				records = snapshot.AppendBool(records, false)
				count++
				continue
			}
			payload, err := sh.payloadOf(e)
			if err != nil {
				sh.mu.Unlock()
				return nil, err
			}
			records = snapshot.AppendBool(records, true)
			records = snapshot.AppendBytes(records, payload)
			count++
		}
		if sh.acc != nil {
			accs = sh.acc.AppendSnapshot(accs)
		}
		sh.mu.Unlock()
	}
	buf = snapshot.AppendUint64(buf, count)
	buf = append(buf, records...)
	if f.c.sys != nil {
		buf = snapshot.AppendUint64(buf, uint64(len(f.shards)))
		buf = append(buf, accs...)
	}
	return buf, nil
}

// Restore replaces the farm's entire tenant population with a snapshot
// produced by a farm of the same kind, configuration and universe. Every
// payload is validated before the current population is discarded; on a
// validation error the farm is unchanged. Restored tenants install cold
// and hydrate lazily, so restore cost is independent of slab geometry.
func (f *Farm[T]) Restore(data []byte) error {
	if f.closed.Load() {
		return ErrFarmClosed
	}
	r, err := sketch.ReadFrameHeader(data, sketch.FrameFarm)
	if err != nil {
		return err
	}
	version := r.Byte()
	uSize := r.Int64()
	seed := r.Uint64()
	kind := r.Byte()
	k := r.Int64()
	p := r.Float64()
	hasVerd := r.Byte()
	system := r.Byte()
	count := r.Uint64()
	if rerr := r.Err(); rerr != nil {
		return fmt.Errorf("%w: farm frame: %v", ErrBadSnapshot, rerr)
	}
	if version != codecVersion {
		return fmt.Errorf("%w: farm codec version %d, want %d", ErrBadSnapshot, version, codecVersion)
	}
	if uSize != f.c.uSize {
		return fmt.Errorf("%w: snapshot universe %d, farm universe %d", ErrBadSnapshot, uSize, f.c.uSize)
	}
	if seed != f.c.seed || int(kind) != f.c.kind || int(k) != f.c.k || p != f.c.p {
		return fmt.Errorf("%w: snapshot is from a differently configured farm", ErrBadSnapshot)
	}
	if (hasVerd == 1) != (f.c.sys != nil) || (hasVerd == 1 && System(system) != f.c.system) {
		return fmt.Errorf("%w: snapshot verdict configuration does not match the farm", ErrBadSnapshot)
	}
	if count > uint64(len(data)) {
		return fmt.Errorf("%w: implausible tenant count %d", ErrBadSnapshot, count)
	}
	// Stage and validate everything before touching farm state.
	type record struct {
		id      TenantID
		live    bool
		payload []byte
	}
	staged := make([]record, 0, count)
	val := f.shards[0]
	val.mu.Lock()
	for i := uint64(0); i < count; i++ {
		id := TenantID(r.Uint64())
		live := r.Bool()
		if rerr := r.Err(); rerr != nil {
			val.mu.Unlock()
			return fmt.Errorf("%w: tenant record %d: %v", ErrBadSnapshot, i, rerr)
		}
		if !live {
			staged = append(staged, record{id: id})
			continue
		}
		payload := r.Bytes()
		if rerr := r.Err(); rerr != nil {
			val.mu.Unlock()
			return fmt.Errorf("%w: tenant record %d: %v", ErrBadSnapshot, i, rerr)
		}
		if _, _, _, err := val.loadTenantPayload(payload); err != nil {
			val.mu.Unlock()
			return fmt.Errorf("tenant %d: %w", uint64(id), err)
		}
		staged = append(staged, record{id: id, live: true, payload: payload})
	}
	val.mu.Unlock()
	var stagedAccs []*setsystem.Accumulator
	if f.c.sys != nil {
		accCount := r.Uint64()
		if rerr := r.Err(); rerr != nil {
			return fmt.Errorf("%w: accumulator count: %v", ErrBadSnapshot, rerr)
		}
		if accCount > uint64(len(data)) {
			return fmt.Errorf("%w: implausible accumulator count %d", ErrBadSnapshot, accCount)
		}
		for i := uint64(0); i < accCount; i++ {
			a := f.c.sys.NewAccumulator()
			if err := a.LoadSnapshot(r); err != nil {
				return fmt.Errorf("%w: accumulator %d: %v", ErrBadSnapshot, i, err)
			}
			stagedAccs = append(stagedAccs, a)
		}
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after farm frame", ErrBadSnapshot, r.Len())
	}
	// Wipe the current population shard by shard.
	for _, sh := range f.shards {
		sh.mu.Lock()
		for i := range sh.entries {
			e := &sh.entries[i]
			switch e.state {
			case stateHot:
				sh.hotRemove(int32(i))
				sh.arena.Free(e.ref)
			case stateSpilled:
				sh.spill.retire(e.spillLen)
			}
		}
		sh.entries = sh.entries[:0]
		sh.index = make(map[TenantID]int32)
		sh.hot = sh.hot[:0]
		sh.hand = 0
		sh.dropped = 0
		if sh.acc != nil {
			sh.acc.Reset()
		}
		sh.mu.Unlock()
	}
	// Install the staged population (validated cold payloads).
	for i := range staged {
		rec := &staged[i]
		sh := f.shards[f.shardOf(rec.id)]
		sh.mu.Lock()
		if rec.live {
			sh.installCold(rec.id, rec.payload)
		} else {
			sh.installTombstone(rec.id)
		}
		sh.mu.Unlock()
	}
	// Install the accumulators. The per-shard split is a lock-sharding
	// detail — GlobalVerdict merges them anyway — so a matching shard
	// count adopts the split verbatim (keeping re-snapshots byte-identical)
	// and any other count folds everything into shard 0.
	if len(stagedAccs) == len(f.shards) {
		for i, sh := range f.shards {
			sh.mu.Lock()
			sh.acc = stagedAccs[i]
			sh.mu.Unlock()
		}
	} else if len(stagedAccs) > 0 {
		sh0 := f.shards[0]
		sh0.mu.Lock()
		for _, a := range stagedAccs {
			sh0.acc.MergeFrom(a)
		}
		sh0.mu.Unlock()
	}
	return nil
}
