package farm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"robustsample/internal/rng"
)

// TestFarmSoak hammers one farm with concurrent producers, queriers and a
// background evictor, with a hot budget far below the tenant count so every
// offer and query races lifecycle churn. Invariants checked:
//
//   - conservation: every element offered was applied exactly once —
//     sum over tenants of Rounds == total offered == Stats().Offered;
//   - eviction never races a live query into corrupt state: decoded
//     samples stay inside the universe, queries never fail except for
//     tenants that do not exist yet;
//   - the race detector sees the full interleaving (CI runs this test
//     under -race).
func TestFarmSoak(t *testing.T) {
	for _, kind := range []string{"reservoir", "bernoulli"} {
		t.Run(kind, func(t *testing.T) {
			soakOne(t, kind)
		})
	}
}

func soakOne(t *testing.T, kind string) {
	const (
		producers = 4
		queriers  = 2
		tenants   = 48
		batches   = 250
		uSize     = 1000
	)
	opts := []Option{
		WithSeed(17), WithShards(8), WithMaxHotTenants(12), WithTTL(200),
		WithSpillDir(t.TempDir()), WithVerdicts(Intervals),
	}
	var f *Farm[int64]
	var err error
	if kind == "reservoir" {
		f, err = NewReservoirFarm(mustU(t, uSize), 16, opts...)
	} else {
		f, err = NewBernoulliFarm(mustU(t, uSize), 0.2, opts...)
	}
	if err != nil {
		t.Fatalf("soak farm: %v", err)
	}
	defer f.Close()

	var offered atomic.Int64
	stop := make(chan struct{})
	var churn sync.WaitGroup
	var produce sync.WaitGroup

	// Background evictor: random explicit demotions plus TTL aging laps.
	churn.Add(1)
	go func() {
		defer churn.Done()
		r := rng.New(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := TenantID(r.Intn(tenants) + 1)
			if err := f.Evict(id); err != nil && !errors.Is(err, ErrUnknownTenant) && !errors.Is(err, ErrTenantEvicted) {
				t.Errorf("evict %d: %v", id, err)
				return
			}
			f.EvictIdle()
		}
	}()

	// Queriers: per-tenant and global reads racing the churn.
	for q := 0; q < queriers; q++ {
		churn.Add(1)
		go func(q int) {
			defer churn.Done()
			r := rng.New(uint64(100 + q))
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				id := TenantID(r.Intn(tenants) + 1)
				pts, err := f.Sample(id)
				if err != nil && !errors.Is(err, ErrUnknownTenant) {
					t.Errorf("sample %d: %v", id, err)
					return
				}
				for _, x := range pts {
					if x < 1 || x > uSize {
						t.Errorf("sample %d: point %d outside universe", id, x)
						return
					}
				}
				if it%64 == 0 {
					if _, _, err := f.GlobalSample(nil); err != nil {
						t.Errorf("global sample: %v", err)
						return
					}
					if _, err := f.GlobalVerdict(); err != nil && !errors.Is(err, ErrNoSample) {
						t.Errorf("global verdict: %v", err)
						return
					}
				}
			}
		}(q)
	}

	// Producers: the last one drives the keyed Producer batch path, the
	// rest per-tenant OfferBatch.
	for pr := 0; pr < producers; pr++ {
		produce.Add(1)
		go func(pr int) {
			defer produce.Done()
			r := rng.New(uint64(1000 + pr))
			if pr == producers-1 {
				p := f.NewProducer()
				ids := make([]TenantID, 16)
				xs := make([]int64, 16)
				for b := 0; b < batches; b++ {
					for i := range ids {
						ids[i] = TenantID(r.Intn(tenants) + 1)
						xs[i] = int64(r.Intn(uSize)) + 1
					}
					if _, err := p.OfferBatch(ids, xs); err != nil {
						t.Errorf("keyed producer: %v", err)
						return
					}
					offered.Add(int64(len(ids)))
				}
				return
			}
			batch := make([]int64, 8)
			for b := 0; b < batches; b++ {
				id := TenantID(r.Intn(tenants) + 1)
				n := r.Intn(8) + 1
				for i := 0; i < n; i++ {
					batch[i] = int64(r.Intn(uSize)) + 1
				}
				if _, err := f.OfferBatch(id, batch[:n]); err != nil {
					t.Errorf("producer %d: %v", pr, err)
					return
				}
				offered.Add(int64(n))
			}
		}(pr)
	}

	produce.Wait()
	close(stop)
	churn.Wait()
	if t.Failed() {
		return
	}

	total := offered.Load()
	st := f.Stats()
	if int64(st.Offered) != total {
		t.Fatalf("Stats().Offered = %d, offered %d", st.Offered, total)
	}
	var rounds int64
	for id := TenantID(1); id <= tenants; id++ {
		n, err := f.Rounds(id)
		if err != nil {
			t.Fatalf("rounds %d: %v", id, err)
		}
		rounds += int64(n)
	}
	if rounds != total {
		t.Fatalf("conservation: sum(Rounds) = %d, offered %d", rounds, total)
	}
	if st.Evictions == 0 || st.Hydrations == 0 {
		t.Fatalf("soak produced no lifecycle churn: %+v", st)
	}
}
