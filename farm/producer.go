package farm

import (
	"robustsample/internal/runtime"
)

// Producer is a reusable keyed-batch ingest lane: it routes a batch of
// (tenant, element) pairs to their shards with the same 8-wide group-hash
// lane as the serving engine (runtime.RouteHashBatch), groups consecutive
// same-tenant runs, and applies each shard's share under one lock
// acquisition. All scratch is owned by the producer, so steady-state
// keyed ingest is allocation-free; a Producer is not safe for concurrent
// use (create one per goroutine — they share the farm safely).
type Producer[T any] struct {
	f    *Farm[T]
	keys []int64
	dst  []int
	pts  []int64
	sids [][]TenantID
	spts [][]int64
}

// NewProducer returns an ingest lane bound to the farm.
func (f *Farm[T]) NewProducer() *Producer[T] {
	return &Producer[T]{
		f:    f,
		sids: make([][]TenantID, len(f.shards)),
		spts: make([][]int64, len(f.shards)),
	}
}

// OfferBatch ingests len(ids) (tenant, element) pairs and returns how many
// elements entered their tenant's sample. Per tenant, elements keep their
// batch order, so results match offering each tenant its subsequence
// directly. Encoding errors reject the whole batch atomically; a
// per-tenant error (ErrTenantEvicted, ErrFarmFull) stops the batch with
// the elements applied so far counted in admitted.
//
//robust:hotpath
func (p *Producer[T]) OfferBatch(ids []TenantID, xs []T) (int, error) {
	if len(ids) != len(xs) {
		return 0, ErrBadBatch
	}
	if p.f.closed.Load() {
		return 0, ErrFarmClosed
	}
	p.pts = p.pts[:0]
	for _, x := range xs {
		pt, err := p.f.u.Encode(x)
		if err != nil {
			return 0, err
		}
		p.pts = append(p.pts, pt)
	}
	p.keys = p.keys[:0]
	for _, id := range ids {
		p.keys = append(p.keys, int64(id))
	}
	if cap(p.dst) < len(ids) {
		p.dst = make([]int, len(ids))
	}
	dst := p.dst[:len(ids)]
	runtime.RouteHashBatch(p.keys, dst, len(p.f.shards))
	for s := range p.sids {
		p.sids[s] = p.sids[s][:0]
		p.spts[s] = p.spts[s][:0]
	}
	for i, s := range dst {
		p.sids[s] = append(p.sids[s], ids[i])
		p.spts[s] = append(p.spts[s], p.pts[i])
	}
	admitted := 0
	for s := range p.sids {
		if len(p.sids[s]) == 0 {
			continue
		}
		adm, err := p.f.shards[s].applyKeyed(p.sids[s], p.spts[s])
		admitted += adm
		if err != nil {
			return admitted, err
		}
	}
	return admitted, nil
}

// applyKeyed ingests a shard's share of a keyed batch, grouping
// consecutive same-tenant runs so a tenant's slot is attached once per
// run rather than once per element.
func (sh *farmShard) applyKeyed(ids []TenantID, pts []int64) (int, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	admitted := 0
	for i := 0; i < len(ids); {
		j := i + 1
		for j < len(ids) && ids[j] == ids[i] {
			j++
		}
		idx, err := sh.lookupOrCreate(ids[i])
		if err != nil {
			return admitted, err
		}
		adm, err := sh.applyRun(idx, pts[i:j])
		admitted += adm
		if err != nil {
			return admitted, err
		}
		i = j
	}
	return admitted, nil
}
