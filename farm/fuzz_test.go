package farm

// Fuzz targets for the farm frame codecs. The invariants:
//
//   - Restore/RestoreTenant never panic, whatever the input.
//   - A rejected frame reports ErrBadSnapshot.
//   - An accepted frame yields a farm whose own snapshots are stable:
//     Snapshot → Restore → Snapshot reproduces the bytes exactly, and the
//     restored tenants survive queries and further offers (hydration of
//     the decoded payload must not trip slab or sampler invariants).

import (
	"bytes"
	"errors"
	"testing"

	"robustsample/internal/rng"
)

func fuzzFarm(tb testing.TB) *Farm[int64] {
	tb.Helper()
	f, err := NewReservoirFarm(mustU(tb, 500), 8,
		WithSeed(41), WithShards(4), WithMaxHotTenants(16), WithVerdicts(Prefixes))
	if err != nil {
		tb.Fatalf("fuzz farm: %v", err)
	}
	return f
}

// fuzzSeedSnapshot builds a populated farm and returns its frames to seed
// the corpus with structurally valid inputs.
func fuzzSeedSnapshot(tb testing.TB) (farmSnap, tenantSnap []byte) {
	tb.Helper()
	f := fuzzFarm(tb)
	defer f.Close()
	driver := rng.New(271828)
	for it := 0; it < 120; it++ {
		id := TenantID(driver.Intn(20) + 1)
		batch := []int64{int64(driver.Intn(500)) + 1, int64(driver.Intn(500)) + 1}
		if _, err := f.OfferBatch(id, batch); err != nil {
			tb.Fatalf("seed offers: %v", err)
		}
	}
	if err := f.Drop(3); err != nil {
		tb.Fatalf("seed drop: %v", err)
	}
	farmSnap, err := f.Snapshot()
	if err != nil {
		tb.Fatalf("seed snapshot: %v", err)
	}
	tenantSnap, err = f.SnapshotTenant(5)
	if err != nil {
		tb.Fatalf("seed tenant snapshot: %v", err)
	}
	return farmSnap, tenantSnap
}

func FuzzFarmRestore(f *testing.F) {
	snap, _ := fuzzSeedSnapshot(f)
	f.Add(snap)
	f.Add(snap[:len(snap)/2])
	mut := append([]byte(nil), snap...)
	mut[len(mut)/3] ^= 0x40
	f.Add(mut)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fz := fuzzFarm(t)
		defer fz.Close()
		if err := fz.Restore(data); err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("Restore error is not ErrBadSnapshot: %v", err)
			}
			return
		}
		snap1, err := fz.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot after accepted restore: %v", err)
		}
		if err := fz.Restore(snap1); err != nil {
			t.Fatalf("own snapshot rejected: %v", err)
		}
		snap2, err := fz.Snapshot()
		if err != nil {
			t.Fatalf("re-Snapshot: %v", err)
		}
		if !bytes.Equal(snap1, snap2) {
			t.Fatal("snapshot round trip is unstable")
		}
		// Restored tenants must survive hydration: an offer pulls the
		// decoded payload through the slab attach/detach path.
		for id := TenantID(1); id <= 20; id++ {
			if _, err := fz.Sample(id); err != nil &&
				!errors.Is(err, ErrUnknownTenant) && !errors.Is(err, ErrTenantEvicted) {
				t.Fatalf("Sample(%d) after restore: %v", id, err)
			}
			if _, err := fz.OfferBatch(id, []int64{1}); err != nil &&
				!errors.Is(err, ErrTenantEvicted) {
				t.Fatalf("OfferBatch(%d) after restore: %v", id, err)
			}
		}
	})
}

func FuzzTenantRestore(f *testing.F) {
	_, tsnap := fuzzSeedSnapshot(f)
	f.Add(tsnap)
	f.Add(tsnap[:len(tsnap)/2])
	mut := append([]byte(nil), tsnap...)
	mut[len(mut)-1] ^= 0x01
	f.Add(mut)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fz := fuzzFarm(t)
		defer fz.Close()
		const id = TenantID(5)
		if err := fz.RestoreTenant(id, data); err != nil {
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("RestoreTenant error is not ErrBadSnapshot: %v", err)
			}
			return
		}
		snap1, err := fz.SnapshotTenant(id)
		if err != nil {
			t.Fatalf("SnapshotTenant after accepted restore: %v", err)
		}
		if err := fz.RestoreTenant(id, snap1); err != nil {
			t.Fatalf("own tenant snapshot rejected: %v", err)
		}
		snap2, err := fz.SnapshotTenant(id)
		if err != nil {
			t.Fatalf("re-SnapshotTenant: %v", err)
		}
		if !bytes.Equal(snap1, snap2) {
			t.Fatal("tenant snapshot round trip is unstable")
		}
		if _, err := fz.Sample(id); err != nil {
			t.Fatalf("Sample after restore: %v", err)
		}
		if _, err := fz.OfferBatch(id, []int64{1}); err != nil {
			t.Fatalf("OfferBatch after restore: %v", err)
		}
	})
}
