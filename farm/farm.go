// Package farm manages on the order of a million concurrent tenant
// sketches in one process — the production shape of the paper's robust
// samplers, where robustness is needed per user or per key rather than for
// one huge stream (the "millions of users" deployment of Section 1.2's
// applications).
//
// The naive shape — one sketch.Sketch per tenant — costs a heap object
// graph per tenant: item slice, delta buffers, RNG, encoder scratch. A
// million tenants means millions of GC-traced pointers and cache-hostile
// layout. The farm instead keeps every tenant's mutable state flat and
// pointer-free in slab arenas (internal/slab): a slot of fixed-capacity
// int64 sample items plus a few uint64 counter words (RNG state included).
// One scratch sampler per shard attaches to a slot, runs the unchanged
// Algorithm R / Bernoulli batch admission (internal/sampler AttachFlat /
// DetachFlat), and detaches — byte-identical behavior to a standalone
// sampler, at a handful of large allocations per process.
//
// Tenant lifecycle is hot ⇄ cold ⇄ spilled. Hot tenants own a slab slot.
// Cold tenants are their versioned snapshot payload (the PR-4 codecs):
// a few dozen bytes in memory, or a checksummed record in a per-shard
// append-only spill file when WithSpillDir is set. Offers hydrate lazily;
// a CLOCK second-chance sweep with optional TTL demotes idle tenants and
// enforces WithMaxHotTenants. Dropped tenants leave a tombstone and fail
// with ErrTenantEvicted.
//
// Ingest is batch-first: Producer.OfferBatch routes (tenant, element)
// pairs to shards with the same 8-wide group-hash lane as the sharded
// serving engine (internal/runtime.RouteHashBatch) and applies run-length
// grouped batches per tenant. The hot path — every touched tenant hot —
// is zero-allocation in steady state; BENCH.md pins it.
//
// Cross-tenant aggregates ride the mergeability the repo already proves:
// GlobalSample folds per-tenant samples with the hypergeometric
// MergeSamples fan-in ([CTW16]), GlobalQuantile/GlobalTopK read the merged
// sample, and GlobalVerdict (WithVerdicts) merges per-shard discrepancy
// accumulators against the union of all tenant samples.
//
// Farms are safe for concurrent use: state is sharded behind per-shard
// locks, so offers to different shards proceed in parallel and eviction
// never races a live query on the same tenant.
package farm

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/slab"
	"robustsample/sketch"
)

// TenantID identifies one tenant sketch within a farm.
type TenantID uint64

// Sentinel errors. Wrapped errors carry context; test with errors.Is.
var (
	// ErrBadConfig reports an invalid constructor or option argument.
	ErrBadConfig = errors.New("farm: invalid configuration")
	// ErrUnknownTenant reports a query for a tenant that was never offered
	// to the farm.
	ErrUnknownTenant = errors.New("farm: unknown tenant")
	// ErrTenantEvicted reports an operation on a tenant removed by Drop;
	// dropped tenants leave a tombstone and never silently restart.
	ErrTenantEvicted = errors.New("farm: tenant dropped")
	// ErrFarmFull reports that hydrating or growing a tenant would exceed
	// the WithMaxBytes slab bound.
	ErrFarmFull = errors.New("farm: memory bound exceeded")
	// ErrFarmClosed reports an operation on a closed farm.
	ErrFarmClosed = errors.New("farm: farm is closed")
	// ErrBadBatch reports a keyed batch whose id and element slices have
	// different lengths.
	ErrBadBatch = errors.New("farm: ids and elements length mismatch")
	// ErrNoSample reports a global query over an empty selection.
	ErrNoSample = errors.New("farm: no selected sample")
	// ErrNoVerdicts reports GlobalVerdict on a farm built without
	// WithVerdicts.
	ErrNoVerdicts = errors.New("farm: verdicts not configured")
	// ErrBadQuery reports an out-of-range query parameter.
	ErrBadQuery = errors.New("farm: invalid query parameter")
	// ErrBadSnapshot reports a corrupt, truncated or mismatched snapshot;
	// it is the sketch package's sentinel, so frames decoded by either
	// package match the same errors.Is test.
	ErrBadSnapshot = sketch.ErrBadSnapshot
)

// System selects the range family GlobalVerdict measures discrepancy
// over, mirroring the sharded engine's enum.
type System int

// The supported set systems (see internal/setsystem).
const (
	// Prefixes is {[1, b]}: VC dimension 1, the system of Theorem 1.3.
	Prefixes System = iota
	// Intervals is {[a, b]}: VC dimension 2.
	Intervals
	// Singletons is {{x}}: additive heavy-hitter error.
	Singletons
	// Suffixes is {[a, N]}: VC dimension 1.
	Suffixes
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case Prefixes:
		return "prefixes"
	case Intervals:
		return "intervals"
	case Singletons:
		return "singletons"
	case Suffixes:
		return "suffixes"
	}
	return "unknown"
}

func (s System) build(n int64) (setsystem.SetSystem, error) {
	switch s {
	case Prefixes:
		return setsystem.NewPrefixes(n), nil
	case Intervals:
		return setsystem.NewIntervals(n), nil
	case Singletons:
		return setsystem.NewSingletons(n), nil
	case Suffixes:
		return setsystem.NewSuffixes(n), nil
	}
	return nil, fmt.Errorf("%w: unknown set system %d", ErrBadConfig, int(s))
}

// options collects the optional configuration.
type options struct {
	seed     uint64
	shards   int
	maxHot   int
	maxBytes int64
	ttl      uint64
	spillDir string
	verdicts bool
	system   System
}

// Option configures a farm.
type Option func(*options) error

// WithSeed sets the deterministic root seed (default sketch.DefaultSeed).
// Tenant t draws from RNG stream t of this seed, so per-tenant randomness
// is independent and reproducible regardless of interleaving.
func WithSeed(seed uint64) Option {
	return func(o *options) error { o.seed = seed; return nil }
}

// WithShards sets the internal shard count (default 8). More shards mean
// more offer parallelism and finer-grained locks.
func WithShards(n int) Option {
	return func(o *options) error {
		if n < 1 || n > 1<<14 {
			return fmt.Errorf("%w: shards %d", ErrBadConfig, n)
		}
		o.shards = n
		return nil
	}
}

// WithMaxHotTenants bounds the number of tenants holding slab slots at
// once (approximately: the bound is enforced per shard). Excess tenants
// are demoted coldest-first by the CLOCK sweep; offers hydrate them back
// on demand. 0 (the default) means unbounded.
func WithMaxHotTenants(n int) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("%w: max hot %d", ErrBadConfig, n)
		}
		o.maxHot = n
		return nil
	}
}

// WithMaxBytes bounds the slab storage of the farm in bytes (split evenly
// across shards). Allocations beyond the bound fail with ErrFarmFull.
// 0 (the default) means unbounded.
func WithMaxBytes(n int64) Option {
	return func(o *options) error {
		if n < 0 {
			return fmt.Errorf("%w: max bytes %d", ErrBadConfig, n)
		}
		o.maxBytes = n
		return nil
	}
}

// WithTTL makes tenants idle for more than n offered batches (measured on
// the tenant's shard's logical op clock) eligible for demotion by EvictIdle
// and the CLOCK sweep. 0 (the default) disables TTL-based demotion.
func WithTTL(n uint64) Option {
	return func(o *options) error { o.ttl = n; return nil }
}

// WithSpillDir redirects evicted tenants' snapshot payloads to checksummed
// per-shard segment files in dir instead of holding the bytes in memory —
// the tier that makes tenants/GB independent of the cold population.
func WithSpillDir(dir string) Option {
	return func(o *options) error {
		if dir == "" {
			return fmt.Errorf("%w: empty spill dir", ErrBadConfig)
		}
		o.spillDir = dir
		return nil
	}
}

// WithVerdicts maintains a per-shard discrepancy accumulator over the
// union stream so GlobalVerdict can certify the farm-wide sample against
// the chosen range family. It costs accumulator work on every offer.
func WithVerdicts(sys System) Option {
	return func(o *options) error {
		if sys < Prefixes || sys > Suffixes {
			return fmt.Errorf("%w: unknown set system %d", ErrBadConfig, int(sys))
		}
		o.verdicts = true
		o.system = sys
		return nil
	}
}

// Sampler kinds.
const (
	kindReservoir = iota
	kindBernoulli
)

// Tenant lifecycle states. The zero value is deliberately not a valid
// state: every entry gets its state set explicitly on creation.
const (
	stateHot = iota + 1
	stateCold
	stateSpilled
	stateTombstone
)

// Flat slot word layout: words 0-1 hold the tenant's PCG RNG state, the
// rest the sampler's flat counters (internal/sampler flat.go).
const rngWords = 2

// bernoulliBaseCap is the item capacity of the smallest Bernoulli size
// class; classes double up to bernoulliMaxCap.
const (
	bernoulliBaseCap = 8
	bernoulliMaxCap  = 1 << 26
)

// core is the shared, shard-independent configuration.
type core struct {
	kind     int
	k        int
	p        float64
	seed     uint64
	ttl      uint64
	maxHotSh int // per-shard hot bound; 0 = unbounded
	uSize    int64
	sys      setsystem.SetSystem // nil unless verdicts
	system   System
	classes  []slab.Class
}

// classFor returns the slot size class for a sample of length n.
func (c *core) classFor(n int) (int, error) {
	if c.kind == kindReservoir {
		return 0, nil
	}
	cap := bernoulliBaseCap
	for i := range c.classes {
		if n <= cap {
			return i, nil
		}
		cap *= 2
	}
	return 0, fmt.Errorf("%w: sample of %d items exceeds the largest size class", ErrFarmFull, n)
}

// entry is one tenant's lifecycle record. Hot state lives in the slab slot
// behind ref; cold state is the snapshot payload (in memory or spilled).
type entry struct {
	id       TenantID
	ref      slab.Ref
	cold     []byte
	spillOff int64
	spillLen int32
	hotPos   int32
	lastOp   uint64
	state    uint8
	refBit   bool
}

// farmShard is one lock domain: an arena, the tenant index, the CLOCK
// list, scratch samplers and RNG, and the optional spill file and
// verdict accumulator. All fields are guarded by mu.
type farmShard struct {
	mu sync.Mutex
	c  *core

	arena   *slab.Arena
	index   map[TenantID]int32
	entries []entry
	hot     []int32
	hand    int
	ops     uint64

	r      *rng.RNG // per-tenant RNG states are swapped through this scratch
	res    sampler.Reservoir[int64]
	ber    sampler.Bernoulli[int64]
	decRes sampler.Reservoir[int64]
	decBer sampler.Bernoulli[int64]

	pts []int64 // encoded-point scratch for single-tenant batches

	spill *spillFile
	acc   *setsystem.Accumulator

	offered    uint64
	hydrations uint64
	evictions  uint64
	dropped    int
	histNs     [histBuckets]uint64 // log2-bucketed hydration stall histogram
}

// Farm is a multi-tenant sketch farm over element type T. All methods are
// safe for concurrent use.
type Farm[T any] struct {
	u      sketch.Universe[T]
	c      *core
	shards []*farmShard
	closed atomic.Bool
}

// NewReservoirFarm builds a farm of per-tenant reservoir samplers
// (Algorithm R) of capacity k over universe u.
func NewReservoirFarm[T any](u sketch.Universe[T], k int, opts ...Option) (*Farm[T], error) {
	if u == nil {
		return nil, fmt.Errorf("%w: nil universe", ErrBadConfig)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: reservoir capacity %d", ErrBadConfig, k)
	}
	return build(u, kindReservoir, k, 0, opts)
}

// NewBernoulliFarm builds a farm of per-tenant Bernoulli(p) samplers over
// universe u.
func NewBernoulliFarm[T any](u sketch.Universe[T], p float64, opts ...Option) (*Farm[T], error) {
	if u == nil {
		return nil, fmt.Errorf("%w: nil universe", ErrBadConfig)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("%w: Bernoulli rate %v", ErrBadConfig, p)
	}
	return build(u, kindBernoulli, 0, p, opts)
}

func build[T any](u sketch.Universe[T], kind, k int, p float64, opts []Option) (*Farm[T], error) {
	o := options{seed: sketch.DefaultSeed, shards: 8}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	c := &core{kind: kind, k: k, p: p, seed: o.seed, ttl: o.ttl, uSize: u.Size(), system: o.system}
	if o.maxHot > 0 {
		c.maxHotSh = o.maxHot / o.shards
		if c.maxHotSh < 1 {
			c.maxHotSh = 1
		}
	}
	if kind == kindReservoir {
		c.classes = []slab.Class{{ItemCap: k, WordCap: rngWords + sampler.ReservoirFlatWords}}
	} else {
		for capI := bernoulliBaseCap; capI <= bernoulliMaxCap; capI *= 2 {
			c.classes = append(c.classes, slab.Class{ItemCap: capI, WordCap: rngWords + sampler.BernoulliFlatWords})
		}
	}
	if o.verdicts {
		sys, err := o.system.build(c.uSize)
		if err != nil {
			return nil, err
		}
		c.sys = sys
	}
	f := &Farm[T]{u: u, c: c, shards: make([]*farmShard, o.shards)}
	perShard := int64(0)
	if o.maxBytes > 0 {
		perShard = o.maxBytes / int64(o.shards)
		if perShard < 1 {
			perShard = 1
		}
	}
	for s := range f.shards {
		arena, err := slab.New(c.classes, slab.Config{MaxBytes: perShard, SlotsPerChunk: 1024})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		sh := &farmShard{
			c:      c,
			arena:  arena,
			index:  make(map[TenantID]int32),
			r:      rng.New(0),
			res:    sampler.Reservoir[int64]{K: k},
			ber:    sampler.Bernoulli[int64]{P: p},
			decRes: sampler.Reservoir[int64]{K: k},
			decBer: sampler.Bernoulli[int64]{P: p},
		}
		if c.sys != nil {
			sh.acc = c.sys.NewAccumulator()
		}
		if o.spillDir != "" {
			sp, err := openSpill(o.spillDir, s)
			if err != nil {
				return nil, fmt.Errorf("%w: spill: %v", ErrBadConfig, err)
			}
			sh.spill = sp
		}
		f.shards[s] = sh
	}
	return f, nil
}

// shardOf routes a tenant to its shard — the same multiplicative hash as
// runtime.RouteHashBatch, so keyed batch routing and point lookups agree.
func (f *Farm[T]) shardOf(id TenantID) int {
	return int(rng.Mix64(uint64(id)) % uint64(len(f.shards)))
}

// Offer processes one element for one tenant, reporting whether it entered
// the tenant's sample.
func (f *Farm[T]) Offer(id TenantID, x T) (bool, error) {
	if f.closed.Load() {
		return false, ErrFarmClosed
	}
	p, err := f.u.Encode(x)
	if err != nil {
		return false, err
	}
	sh := f.shards[f.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, err := sh.lookupOrCreate(id)
	if err != nil {
		return false, err
	}
	sh.pts = append(sh.pts[:0], p)
	adm, err := sh.applyRun(idx, sh.pts)
	return adm > 0, err
}

// OfferBatch processes a run of consecutive elements for one tenant,
// returning how many were admitted. If any element is outside the universe
// the batch is rejected atomically. Results never depend on how a tenant's
// stream is sliced into batches.
//
//robust:hotpath
func (f *Farm[T]) OfferBatch(id TenantID, xs []T) (int, error) {
	if f.closed.Load() {
		return 0, ErrFarmClosed
	}
	sh := f.shards[f.shardOf(id)]
	sh.mu.Lock()
	sh.pts = sh.pts[:0]
	for _, x := range xs {
		p, err := f.u.Encode(x)
		if err != nil {
			sh.mu.Unlock()
			return 0, err
		}
		sh.pts = append(sh.pts, p)
	}
	idx, err := sh.lookupOrCreate(id)
	if err != nil {
		sh.mu.Unlock()
		return 0, err
	}
	adm, err := sh.applyRun(idx, sh.pts)
	sh.mu.Unlock()
	return adm, err
}

// lookupOrCreate resolves a tenant to its entry index, creating a fresh
// hot tenant on first contact. Dropped tenants fail with ErrTenantEvicted.
// Callers hold sh.mu.
func (sh *farmShard) lookupOrCreate(id TenantID) (int32, error) {
	if idx, ok := sh.index[id]; ok {
		if sh.entries[idx].state == stateTombstone {
			return 0, ErrTenantEvicted
		}
		return idx, nil
	}
	sh.makeRoom(-1)
	class, _ := sh.c.classFor(0)
	ref, err := sh.arena.Alloc(class)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrFarmFull, err)
	}
	words := sh.arena.Words(ref)
	hi, lo := rng.NewWithStream(sh.c.seed, uint64(id)).State()
	words[0], words[1] = hi, lo
	idx := int32(len(sh.entries))
	sh.entries = append(sh.entries, entry{id: id, ref: ref, hotPos: -1, state: stateHot})
	sh.index[id] = idx
	sh.hotPush(idx)
	return idx, nil
}

// makeRoom demotes CLOCK victims until the per-shard hot bound has a free
// slot, never touching the protected entry. Callers hold sh.mu.
func (sh *farmShard) makeRoom(protect int32) {
	if sh.c.maxHotSh <= 0 {
		return
	}
	for len(sh.hot) >= sh.c.maxHotSh {
		if !sh.evictOne(protect) {
			return
		}
	}
}

// applyRun offers a run of encoded points to one tenant: hydrate if needed,
// attach the scratch sampler to the tenant's slot, run the unchanged batch
// admission, detach, and save the RNG state back into the slot words.
// Callers hold sh.mu.
func (sh *farmShard) applyRun(idx int32, pts []int64) (int, error) {
	e := &sh.entries[idx]
	if e.state == stateTombstone {
		return 0, ErrTenantEvicted
	}
	if e.state != stateHot {
		sh.makeRoom(idx)
		if err := sh.hydrate(idx); err != nil {
			return 0, err
		}
		e = &sh.entries[idx]
	}
	sh.ops++
	e.lastOp = sh.ops
	e.refBit = true
	items := sh.arena.Items(e.ref)
	words := sh.arena.Words(e.ref)
	sh.r.SetState(words[0], words[1])
	var adm int
	if sh.c.kind == kindReservoir {
		sh.res.AttachFlat(items, words[rngWords:])
		adm = sh.res.OfferBatch(pts, sh.r)
		sh.res.DetachFlat(words[rngWords:])
		hi, lo := sh.r.State()
		words[0], words[1] = hi, lo
	} else {
		sh.ber.AttachFlat(items, words[rngWords:])
		adm = sh.ber.OfferBatch(pts, sh.r)
		out := sh.ber.DetachFlat(words[rngWords:])
		hi, lo := sh.r.State()
		words[0], words[1] = hi, lo
		// migrate must run after the RNG words are saved: it serializes or
		// copies the full slot words and frees the old slot, so no write to
		// words may follow it.
		if len(out) > len(items) {
			if err := sh.migrate(idx, out, words); err != nil {
				return adm, err
			}
		}
	}
	if sh.acc != nil {
		sh.acc.AddStreamBatch(pts)
	}
	sh.offered += uint64(len(pts))
	return adm, nil
}

// migrate moves a Bernoulli sample that outgrew its slot to the next size
// class, carrying the already-updated counter words. If the arena cannot
// grow, the tenant is demoted to cold instead (the sample is already
// complete in out), keeping the farm serving. Callers hold sh.mu.
func (sh *farmShard) migrate(idx int32, out []int64, words []uint64) error {
	e := &sh.entries[idx]
	class, err := sh.c.classFor(len(out))
	if err != nil {
		return err
	}
	ref, allocErr := sh.arena.Alloc(class)
	if allocErr != nil {
		// Demote to cold from the detached state: serialize payload from
		// out + words, then drop the old slot.
		payload := sh.appendPayloadRaw(nil, out, words)
		sh.hotRemove(idx)
		sh.arena.Free(e.ref)
		e.ref = slab.NilRef
		if err := sh.store(e, payload); err != nil {
			return err
		}
		sh.evictions++
		return nil
	}
	nw := sh.arena.Words(ref)
	copy(nw, words)
	copy(sh.arena.Items(ref), out)
	sh.arena.Free(e.ref)
	e.ref = ref
	return nil
}

// hotPush appends an entry to the CLOCK list. Callers hold sh.mu.
func (sh *farmShard) hotPush(idx int32) {
	sh.entries[idx].hotPos = int32(len(sh.hot))
	sh.hot = append(sh.hot, idx)
}

// hotRemove swap-removes an entry from the CLOCK list. Callers hold sh.mu.
func (sh *farmShard) hotRemove(idx int32) {
	pos := sh.entries[idx].hotPos
	last := int32(len(sh.hot) - 1)
	moved := sh.hot[last]
	sh.hot[pos] = moved
	sh.entries[moved].hotPos = pos
	sh.hot = sh.hot[:last]
	sh.entries[idx].hotPos = -1
	if sh.hand > int(last) {
		sh.hand = 0
	}
}

// evictOne runs the CLOCK hand until it demotes one unprotected victim:
// entries with the reference bit set get a second chance (the bit clears),
// TTL-expired entries are demoted regardless. Returns false when nothing
// can be demoted. Callers hold sh.mu.
func (sh *farmShard) evictOne(protect int32) bool {
	if len(sh.hot) == 0 || (len(sh.hot) == 1 && sh.hot[0] == protect) {
		return false
	}
	for sweep := 0; sweep < 2*len(sh.hot)+2; sweep++ {
		if sh.hand >= len(sh.hot) {
			sh.hand = 0
		}
		idx := sh.hot[sh.hand]
		e := &sh.entries[idx]
		expired := sh.c.ttl > 0 && sh.ops-e.lastOp > sh.c.ttl
		if idx != protect && (!e.refBit || expired) {
			sh.evict(idx)
			return true
		}
		e.refBit = false
		sh.hand++
	}
	return false
}

// evict demotes a hot entry to cold or spilled. Callers hold sh.mu.
func (sh *farmShard) evict(idx int32) {
	e := &sh.entries[idx]
	payload := sh.appendTenantPayload(nil, e)
	sh.hotRemove(idx)
	sh.arena.Free(e.ref)
	e.ref = slab.NilRef
	// store can only fail on spill I/O errors, in which case it falls back
	// to in-memory cold bytes and reports nil.
	_ = sh.store(e, payload)
	sh.evictions++
}

// store parks a serialized tenant payload as spilled (preferred when a
// spill file exists) or cold in-memory bytes. Callers hold sh.mu.
func (sh *farmShard) store(e *entry, payload []byte) error {
	if e.state == stateSpilled {
		sh.spill.retire(e.spillLen)
		e.spillLen = 0
	}
	if sh.spill != nil {
		off, n, err := sh.spill.write(payload)
		if err == nil {
			e.spillOff, e.spillLen = off, n
			e.cold = nil
			e.state = stateSpilled
			return nil
		}
	}
	e.cold = payload
	e.state = stateCold
	return nil
}

// hydrate promotes a cold or spilled tenant back into a slab slot,
// validating the payload (checksum, codec consistency, universe range) on
// the way in. Callers hold sh.mu.
func (sh *farmShard) hydrate(idx int32) error {
	start := time.Now()
	e := &sh.entries[idx]
	payload := e.cold
	if e.state == stateSpilled {
		var err error
		payload, err = sh.spill.read(e.spillOff, e.spillLen)
		if err != nil {
			return err
		}
	}
	hi, lo, n, err := sh.loadTenantPayload(payload)
	if err != nil {
		return err
	}
	class, err := sh.c.classFor(n)
	if err != nil {
		return err
	}
	ref, err := sh.arena.Alloc(class)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFarmFull, err)
	}
	words := sh.arena.Words(ref)
	words[0], words[1] = hi, lo
	var out []int64
	if sh.c.kind == kindReservoir {
		out = sh.decRes.DetachFlat(words[rngWords:])
	} else {
		out = sh.decBer.DetachFlat(words[rngWords:])
	}
	copy(sh.arena.Items(ref), out)
	if e.state == stateSpilled {
		sh.spill.retire(e.spillLen)
	}
	e.ref = ref
	e.cold = nil
	e.spillLen = 0
	e.state = stateHot
	sh.hotPush(idx)
	sh.hydrations++
	sh.histNs[histBucket(time.Since(start).Nanoseconds())]++
	return nil
}

// histBuckets is the size of the log2 hydration-stall histogram (covers
// stalls up to ~9 minutes).
const histBuckets = 40

// histBucket maps a nanosecond duration to its log2 histogram bucket.
func histBucket(ns int64) int {
	if ns < 1 {
		return 0
	}
	b := 0
	for ns > 1 {
		ns >>= 1
		b++
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Evict demotes one tenant to cold/spilled storage immediately. It is a
// no-op for tenants that are already cold.
func (f *Farm[T]) Evict(id TenantID) error {
	if f.closed.Load() {
		return ErrFarmClosed
	}
	sh := f.shards[f.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.index[id]
	if !ok {
		return ErrUnknownTenant
	}
	switch sh.entries[idx].state {
	case stateTombstone:
		return ErrTenantEvicted
	case stateHot:
		sh.evict(idx)
	}
	return nil
}

// EvictIdle runs one CLOCK aging lap per shard, demoting TTL-expired
// tenants (WithTTL) and clearing second-chance bits, and returns the
// number of tenants demoted. It is the background-evictor entry point.
func (f *Farm[T]) EvictIdle() int {
	if f.closed.Load() {
		return 0
	}
	demoted := 0
	for _, sh := range f.shards {
		sh.mu.Lock()
		for i := len(sh.hot) - 1; i >= 0; i-- {
			idx := sh.hot[i]
			e := &sh.entries[idx]
			if sh.c.ttl > 0 && sh.ops-e.lastOp > sh.c.ttl {
				sh.evict(idx)
				demoted++
				continue
			}
			e.refBit = false
		}
		sh.mu.Unlock()
	}
	return demoted
}

// Drop removes a tenant permanently: its state is discarded and a
// tombstone keeps later offers and queries failing with ErrTenantEvicted
// (a dropped tenant must not silently restart as a fresh sample).
func (f *Farm[T]) Drop(id TenantID) error {
	if f.closed.Load() {
		return ErrFarmClosed
	}
	sh := f.shards[f.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.index[id]
	if !ok {
		return ErrUnknownTenant
	}
	e := &sh.entries[idx]
	switch e.state {
	case stateTombstone:
		return ErrTenantEvicted
	case stateHot:
		sh.hotRemove(idx)
		sh.arena.Free(e.ref)
		e.ref = slab.NilRef
	case stateSpilled:
		sh.spill.retire(e.spillLen)
	}
	e.cold = nil
	e.spillLen = 0
	e.state = stateTombstone
	sh.dropped++
	return nil
}

// Tenants returns the number of live (non-dropped) tenants.
func (f *Farm[T]) Tenants() int {
	n := 0
	for _, sh := range f.shards {
		sh.mu.Lock()
		n += len(sh.entries) - sh.dropped
		sh.mu.Unlock()
	}
	return n
}

// Close releases the farm's spill files and fails all further operations
// with ErrFarmClosed. It is idempotent.
func (f *Farm[T]) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	var first error
	for _, sh := range f.shards {
		sh.mu.Lock()
		if sh.spill != nil {
			if err := sh.spill.close(); err != nil && first == nil {
				first = err
			}
			sh.spill = nil
		}
		sh.mu.Unlock()
	}
	if first != nil {
		return fmt.Errorf("%w: closing spill: %v", ErrFarmClosed, first)
	}
	return nil
}

// Stats is a point-in-time operational snapshot of a farm.
type Stats struct {
	// Tenants counts live tenants; Hot/Cold/Spilled partition them by
	// lifecycle state. Dropped counts tombstones.
	Tenants, Hot, Cold, Spilled, Dropped int
	// SlabBytes is the flat slot storage reserved across all shards.
	SlabBytes int64
	// SpillBytes is the total size of the spill segment files;
	// SpillDeadBytes the fraction owned by retired records.
	SpillBytes, SpillDeadBytes int64
	// Offered counts elements offered, Hydrations cold-to-hot promotions,
	// Evictions hot-to-cold demotions.
	Offered, Hydrations, Evictions uint64
	// HydrateP99 is the 99th-percentile hydration stall (upper bucket
	// bound of a log2 histogram).
	HydrateP99 time.Duration
}

// Stats aggregates operational counters across shards.
func (f *Farm[T]) Stats() Stats {
	var s Stats
	var hist [histBuckets]uint64
	for _, sh := range f.shards {
		sh.mu.Lock()
		s.Tenants += len(sh.entries) - sh.dropped
		s.Hot += len(sh.hot)
		for i := range sh.entries {
			switch sh.entries[i].state {
			case stateCold:
				s.Cold++
			case stateSpilled:
				s.Spilled++
			}
		}
		s.Dropped += sh.dropped
		s.SlabBytes += sh.arena.Stats().Bytes
		if sh.spill != nil {
			s.SpillBytes += sh.spill.size
			s.SpillDeadBytes += sh.spill.dead
		}
		s.Offered += sh.offered
		s.Hydrations += sh.hydrations
		s.Evictions += sh.evictions
		for b, n := range sh.histNs {
			hist[b] += n
		}
		sh.mu.Unlock()
	}
	s.HydrateP99 = histP99(hist[:])
	return s
}

// histP99 returns the upper bound of the smallest log2 bucket covering the
// 99th percentile.
func histP99(hist []uint64) time.Duration {
	total := uint64(0)
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := total - total/100
	cum := uint64(0)
	for b, n := range hist {
		cum += n
		if cum >= target {
			return time.Duration(int64(1) << uint(b))
		}
	}
	return time.Duration(int64(1) << uint(len(hist)-1))
}
