package farm

import (
	"fmt"
	"os"
	"path/filepath"
)

// spillFile is a per-shard append-only segment file holding evicted
// tenants' snapshot payloads. Records are self-checking — an FNV-1a 64
// checksum prefixes each payload — so a torn write, bit rot or a stale
// offset surfaces as ErrBadSnapshot at hydration instead of corrupting a
// tenant silently. The file is a cache tier, not a durability log: it is
// truncated on open and deleted on close.
type spillFile struct {
	f    *os.File
	path string
	size int64
	live int64
	dead int64
}

// spillHeader is the per-record overhead: an 8-byte checksum.
const spillHeader = 8

// fnv64a is FNV-1a over b (hand-rolled so the checksum stays allocation-
// and dependency-free).
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// openSpill creates the shard's segment file inside dir.
func openSpill(dir string, shard int) (*spillFile, error) {
	path := filepath.Join(dir, fmt.Sprintf("farm-shard-%04d.spill", shard))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, err
	}
	return &spillFile{f: f, path: path}, nil
}

// write appends one checksummed record and returns its offset and length
// (payload length, excluding the header).
func (sp *spillFile) write(payload []byte) (off int64, n int32, err error) {
	rec := make([]byte, spillHeader+len(payload))
	sum := fnv64a(payload)
	for i := 0; i < spillHeader; i++ {
		rec[i] = byte(sum >> (8 * i))
	}
	copy(rec[spillHeader:], payload)
	off = sp.size
	if _, err := sp.f.WriteAt(rec, off); err != nil {
		return 0, 0, err
	}
	sp.size += int64(len(rec))
	sp.live += int64(len(rec))
	return off, int32(len(payload)), nil
}

// read returns the payload of the record at off, verifying its checksum.
// Corrupt or truncated records fail with ErrBadSnapshot.
func (sp *spillFile) read(off int64, n int32) ([]byte, error) {
	rec := make([]byte, spillHeader+int(n))
	if _, err := sp.f.ReadAt(rec, off); err != nil {
		return nil, fmt.Errorf("%w: spill record at %d: %v", ErrBadSnapshot, off, err)
	}
	want := uint64(0)
	for i := 0; i < spillHeader; i++ {
		want |= uint64(rec[i]) << (8 * i)
	}
	payload := rec[spillHeader:]
	if fnv64a(payload) != want {
		return nil, fmt.Errorf("%w: spill record at %d: checksum mismatch", ErrBadSnapshot, off)
	}
	return payload, nil
}

// retire marks the record of payload length n dead. When no live records
// remain the file is truncated, reclaiming the space.
func (sp *spillFile) retire(n int32) {
	rec := int64(spillHeader + int(n))
	sp.live -= rec
	sp.dead += rec
	if sp.live <= 0 && sp.size > 0 {
		if sp.f.Truncate(0) == nil {
			sp.size = 0
			sp.live = 0
			sp.dead = 0
		}
	}
}

// close closes and removes the segment file.
func (sp *spillFile) close() error {
	err := sp.f.Close()
	if rmErr := os.Remove(sp.path); err == nil {
		err = rmErr
	}
	return err
}
