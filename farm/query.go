package farm

import (
	"fmt"
	"math"
	"slices"

	"robustsample/internal/rng"
	"robustsample/internal/sampler"
)

// mergeStream is the RNG stream global queries draw their hypergeometric
// interleaving from; it is disjoint from per-tenant randomness by
// convention (tenant streams are the tenant ids).
const mergeStream = ^uint64(0)

// tenantState returns a live tenant's sample points and round count. Hot
// tenants are read in place from the slab slot; cold and spilled tenants
// decode into the shard's scratch sampler. Either way the returned slice
// is only valid while sh.mu is held — callers copy before unlocking.
func (sh *farmShard) tenantState(idx int32) ([]int64, int, error) {
	e := &sh.entries[idx]
	switch e.state {
	case stateTombstone:
		return nil, 0, ErrTenantEvicted
	case stateHot:
		words := sh.arena.Words(e.ref)
		items := sh.arena.Items(e.ref)
		rounds := int(words[rngWords])
		n := 0
		if sh.c.kind == kindReservoir {
			n = int(words[rngWords+2])
		} else {
			n = int(words[rngWords+3])
		}
		return items[:n], rounds, nil
	}
	payload := e.cold
	if e.state == stateSpilled {
		var err error
		payload, err = sh.spill.read(e.spillOff, e.spillLen)
		if err != nil {
			return nil, 0, err
		}
	}
	if _, _, _, err := sh.loadTenantPayload(payload); err != nil {
		return nil, 0, err
	}
	if sh.c.kind == kindReservoir {
		return sh.decRes.View(), sh.decRes.Rounds(), nil
	}
	return sh.decBer.View(), sh.decBer.Rounds(), nil
}

// decodePoints maps encoded universe points back to element values.
func (f *Farm[T]) decodePoints(pts []int64) ([]T, error) {
	out := make([]T, len(pts))
	for i, p := range pts {
		x, err := f.u.Decode(p)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// Sample returns a copy of one tenant's current sample, decoded. Querying
// never changes the tenant's lifecycle state: cold tenants are decoded in
// scratch, not hydrated.
func (f *Farm[T]) Sample(id TenantID) ([]T, error) {
	if f.closed.Load() {
		return nil, ErrFarmClosed
	}
	sh := f.shards[f.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.index[id]
	if !ok {
		return nil, ErrUnknownTenant
	}
	pts, _, err := sh.tenantState(idx)
	if err != nil {
		return nil, err
	}
	return f.decodePoints(pts)
}

// Rounds returns the number of elements a tenant has been offered.
func (f *Farm[T]) Rounds(id TenantID) (int, error) {
	if f.closed.Load() {
		return 0, ErrFarmClosed
	}
	sh := f.shards[f.shardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	idx, ok := sh.index[id]
	if !ok {
		return 0, ErrUnknownTenant
	}
	_, rounds, err := sh.tenantState(idx)
	return rounds, err
}

// globalPoints folds the selected tenants' samples into one cross-tenant
// sample of encoded points, returning it with the combined stream length.
// Reservoir farms interleave hypergeometrically (sampler.MergeSamples, the
// [CTW16] coordinator fan-in) so the result is a uniform k-sample of the
// selected tenants' union stream; Bernoulli farms take the union, a
// Bernoulli(p) sample of the union stream. The selector runs under shard
// locks and must not call back into the farm.
func (f *Farm[T]) globalPoints(sel func(TenantID) bool) ([]int64, int, error) {
	var merged []int64
	mrounds := 0
	var mr *rng.RNG
	if f.c.kind == kindReservoir {
		mr = rng.NewWithStream(f.c.seed, mergeStream)
	}
	for _, sh := range f.shards {
		sh.mu.Lock()
		for i := range sh.entries {
			e := &sh.entries[i]
			if e.state == stateTombstone {
				continue
			}
			if sel != nil && !sel(e.id) {
				continue
			}
			pts, rounds, err := sh.tenantState(int32(i))
			if err != nil {
				sh.mu.Unlock()
				return nil, 0, err
			}
			if f.c.kind == kindReservoir {
				merged = sampler.MergeSamples(merged, mrounds, pts, rounds, f.c.k, mr)
			} else {
				merged = append(merged, pts...)
			}
			mrounds += rounds
		}
		sh.mu.Unlock()
	}
	return merged, mrounds, nil
}

// GlobalSample returns a cross-tenant sample over every tenant the
// selector accepts (nil selects all), with the combined stream length it
// represents. For a reservoir farm this is a uniform sample of size at
// most k of the selected union stream; for a Bernoulli farm, a
// Bernoulli(p) sample of it.
func (f *Farm[T]) GlobalSample(sel func(TenantID) bool) ([]T, int, error) {
	if f.closed.Load() {
		return nil, 0, ErrFarmClosed
	}
	pts, rounds, err := f.globalPoints(sel)
	if err != nil {
		return nil, 0, err
	}
	out, err := f.decodePoints(pts)
	return out, rounds, err
}

// GlobalQuantile estimates the q-quantile (in universe order) of the
// selected tenants' union stream from the cross-tenant sample.
func (f *Farm[T]) GlobalQuantile(q float64, sel func(TenantID) bool) (T, error) {
	var zero T
	if f.closed.Load() {
		return zero, ErrFarmClosed
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return zero, fmt.Errorf("%w: quantile %v outside [0, 1]", ErrBadQuery, q)
	}
	pts, _, err := f.globalPoints(sel)
	if err != nil {
		return zero, err
	}
	if len(pts) == 0 {
		return zero, ErrNoSample
	}
	slices.Sort(pts)
	idx := int(math.Ceil(q*float64(len(pts)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(pts) {
		idx = len(pts) - 1
	}
	return f.u.Decode(pts[idx])
}

// Heavy is one GlobalTopK entry: a value, its occurrence count in the
// cross-tenant sample, and its sample frequency.
type Heavy[T any] struct {
	Value T
	Count int
	Frac  float64
}

// GlobalTopK returns the m most frequent values of the cross-tenant
// sample, ties broken by universe order — the sample-based heavy-hitter
// estimate over the selected tenants' union stream.
func (f *Farm[T]) GlobalTopK(m int, sel func(TenantID) bool) ([]Heavy[T], error) {
	if f.closed.Load() {
		return nil, ErrFarmClosed
	}
	if m < 1 {
		return nil, fmt.Errorf("%w: top-k size %d", ErrBadQuery, m)
	}
	pts, _, err := f.globalPoints(sel)
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, ErrNoSample
	}
	counts := make(map[int64]int, len(pts))
	for _, p := range pts {
		counts[p]++
	}
	order := make([]int64, 0, len(counts))
	for p := range counts {
		order = append(order, p)
	}
	slices.SortFunc(order, func(a, b int64) int {
		if d := counts[b] - counts[a]; d != 0 {
			return d
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	})
	if m > len(order) {
		m = len(order)
	}
	out := make([]Heavy[T], 0, m)
	for _, p := range order[:m] {
		x, err := f.u.Decode(p)
		if err != nil {
			return nil, err
		}
		out = append(out, Heavy[T]{Value: x, Count: counts[p], Frac: float64(counts[p]) / float64(len(pts))})
	}
	return out, nil
}

// Verdict is a farm-wide discrepancy certificate: the worst range of the
// configured set system, its sample-vs-stream density error, and the
// population sizes behind it. Definition 1.1's guarantee holds per range
// family; the verdict reports the observed maximum over it.
type Verdict[T any] struct {
	// Err is the maximum |sample density - stream density| over the range
	// family; Lo and Hi are the witnessing range's endpoints.
	Err    float64
	Lo, Hi T
	// StreamLen and SampleLen are the union-stream and union-sample sizes
	// the densities were measured over.
	StreamLen, SampleLen int
}

// GlobalVerdict measures the discrepancy of the union of every live
// tenant's current sample against the farm's full offered stream
// (WithVerdicts must be configured). Elements offered to since-dropped
// tenants remain in the stream side: the verdict certifies the farm's
// whole ingest history.
func (f *Farm[T]) GlobalVerdict() (Verdict[T], error) {
	var v Verdict[T]
	if f.closed.Load() {
		return v, ErrFarmClosed
	}
	if f.c.sys == nil {
		return v, ErrNoVerdicts
	}
	scratch := f.c.sys.NewAccumulator()
	for _, sh := range f.shards {
		sh.mu.Lock()
		scratch.MergeFrom(sh.acc)
		for i := range sh.entries {
			if sh.entries[i].state == stateTombstone {
				continue
			}
			pts, _, err := sh.tenantState(int32(i))
			if err != nil {
				sh.mu.Unlock()
				return v, err
			}
			for _, p := range pts {
				scratch.AddSample(p)
			}
		}
		sh.mu.Unlock()
	}
	if scratch.StreamLen() == 0 {
		return v, ErrNoSample
	}
	d := scratch.Max()
	v.Err = d.Err
	v.StreamLen = scratch.StreamLen()
	v.SampleLen = scratch.SampleLen()
	if d.Lo >= 1 && d.Lo <= f.c.uSize {
		if x, err := f.u.Decode(d.Lo); err == nil {
			v.Lo = x
		}
	}
	if d.Hi >= 1 && d.Hi <= f.c.uSize {
		if x, err := f.u.Decode(d.Hi); err == nil {
			v.Hi = x
		}
	}
	return v, nil
}
