package farm

// The three snapshot laws for the farm frame kinds, mirroring the module's
// codec contract (DESIGN.md "Snapshot laws"):
//
//  1. Round trip: Restore(Snapshot()) reproduces the exact farm state —
//     samples, rounds, tombstones, RNG continuity and verdict accumulators.
//  2. Stability: snapshotting a freshly restored farm reproduces the
//     original bytes bit for bit.
//  3. Rejection: corrupt or truncated frames fail with ErrBadSnapshot and
//     leave the receiver unchanged.
//
//robust:codec-version 1

import (
	"bytes"
	"errors"
	"testing"

	"robustsample/internal/rng"
)

// populate drives a deterministic mixed workload: many tenants, eviction
// churn, one explicit eviction and one dropped tenant.
func populate(t *testing.T, f *Farm[int64]) int {
	t.Helper()
	driver := rng.New(271828)
	total := 0
	for it := 0; it < 200; it++ {
		id := TenantID(driver.Intn(30) + 1)
		batch := make([]int64, driver.Intn(8)+1)
		for i := range batch {
			batch[i] = int64(driver.Intn(500)) + 1
		}
		if _, err := f.OfferBatch(id, batch); err != nil {
			t.Fatalf("populate: %v", err)
		}
		total += len(batch)
	}
	if err := f.Evict(1); err != nil {
		t.Fatalf("populate evict: %v", err)
	}
	if err := f.Drop(2); err != nil {
		t.Fatalf("populate drop: %v", err)
	}
	return total
}

func lawFarm(t *testing.T, opts ...Option) *Farm[int64] {
	t.Helper()
	base := []Option{WithSeed(41), WithShards(4), WithMaxHotTenants(16), WithVerdicts(Prefixes)}
	f, err := NewReservoirFarm(mustU(t, 500), 8, append(base, opts...)...)
	if err != nil {
		t.Fatalf("law farm: %v", err)
	}
	return f
}

// TestFarmSnapshotLaws exercises all three laws on the whole-farm frame.
func TestFarmSnapshotLaws(t *testing.T) {
	fa := lawFarm(t)
	defer fa.Close()
	populate(t, fa)

	snap, err := fa.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	fb := lawFarm(t)
	defer fb.Close()
	if err := fb.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// Law 2 first: a restored farm re-snapshots to identical bytes.
	snap2, err := fb.Snapshot()
	if err != nil {
		t.Fatalf("re-Snapshot: %v", err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Fatalf("re-snapshot differs: %d vs %d bytes", len(snap), len(snap2))
	}

	// Law 1: state equality, dropped-tenant tombstones included.
	for id := TenantID(1); id <= 30; id++ {
		sa, errA := fa.Sample(id)
		sb, errB := fb.Sample(id)
		if (errA == nil) != (errB == nil) || errors.Is(errA, ErrTenantEvicted) != errors.Is(errB, ErrTenantEvicted) {
			t.Fatalf("tenant %d: err %v vs %v", id, errA, errB)
		}
		if errA != nil {
			continue
		}
		if len(sa) != len(sb) {
			t.Fatalf("tenant %d: sample len %d vs %d", id, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("tenant %d: sample[%d] %d vs %d", id, i, sa[i], sb[i])
			}
		}
		ra, _ := fa.Rounds(id)
		rb, _ := fb.Rounds(id)
		if ra != rb {
			t.Fatalf("tenant %d: rounds %d vs %d", id, ra, rb)
		}
	}
	if _, err := fb.Sample(2); !errors.Is(err, ErrTenantEvicted) {
		t.Fatalf("restored tombstone: Sample(2) err %v", err)
	}
	va, err := fa.GlobalVerdict()
	if err != nil {
		t.Fatalf("verdict A: %v", err)
	}
	vb, err := fb.GlobalVerdict()
	if err != nil {
		t.Fatalf("verdict B: %v", err)
	}
	if va.Err != vb.Err || va.StreamLen != vb.StreamLen || va.SampleLen != vb.SampleLen {
		t.Fatalf("verdicts diverge: %+v vs %+v", va, vb)
	}

	// RNG continuity: identical further offers keep the farms identical.
	driver := rng.New(99)
	for it := 0; it < 50; it++ {
		id := TenantID(driver.Intn(30) + 1)
		if id == 2 {
			continue
		}
		batch := []int64{int64(driver.Intn(500)) + 1, int64(driver.Intn(500)) + 1}
		admA, errA := fa.OfferBatch(id, batch)
		admB, errB := fb.OfferBatch(id, batch)
		if (errA == nil) != (errB == nil) || admA != admB {
			t.Fatalf("post-restore offer diverges: tenant %d adm %d/%d err %v/%v", id, admA, admB, errA, errB)
		}
	}
	for id := TenantID(1); id <= 30; id++ {
		sa, errA := fa.Sample(id)
		sb, errB := fb.Sample(id)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("tenant %d post-restore: err %v vs %v", id, errA, errB)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("tenant %d post-restore: sample[%d] %d vs %d", id, i, sa[i], sb[i])
			}
		}
	}

	// Law 3: every truncation is rejected and leaves the farm untouched.
	fc := lawFarm(t)
	defer fc.Close()
	populate(t, fc)
	before, err := fc.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot before rejection: %v", err)
	}
	step := len(snap)/97 + 1
	for i := 0; i < len(snap); i += step {
		if err := fc.Restore(snap[:i]); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("Restore(snap[:%d]) err %v, want ErrBadSnapshot", i, err)
		}
	}
	// Header corruptions are rejected too.
	for _, i := range []int{0, 4, 5, 6} {
		bad := append([]byte(nil), snap...)
		bad[i] ^= 0xff
		if err := fc.Restore(bad); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("Restore(corrupt byte %d) err %v, want ErrBadSnapshot", i, err)
		}
	}
	after, err := fc.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot after rejection: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("rejected restores mutated the farm")
	}

	// Mismatched configuration is rejected.
	fd, err := NewReservoirFarm(mustU(t, 500), 9, WithSeed(41), WithShards(4), WithVerdicts(Prefixes))
	if err != nil {
		t.Fatalf("mismatched farm: %v", err)
	}
	defer fd.Close()
	if err := fd.Restore(snap); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("Restore into k=9 farm: err %v, want ErrBadSnapshot", err)
	}
}

// TestTenantSnapshotLaws exercises the laws on the single-tenant frame,
// migrating a tenant between farms.
func TestTenantSnapshotLaws(t *testing.T) {
	fa := lawFarm(t)
	defer fa.Close()
	populate(t, fa)

	const id = TenantID(7)
	snap, err := fa.SnapshotTenant(id)
	if err != nil {
		t.Fatalf("SnapshotTenant: %v", err)
	}
	fb := lawFarm(t)
	defer fb.Close()
	if err := fb.RestoreTenant(id, snap); err != nil {
		t.Fatalf("RestoreTenant: %v", err)
	}
	snap2, err := fb.SnapshotTenant(id)
	if err != nil {
		t.Fatalf("re-SnapshotTenant: %v", err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Fatal("tenant re-snapshot differs")
	}
	sa, _ := fa.Sample(id)
	sb, err := fb.Sample(id)
	if err != nil {
		t.Fatalf("Sample after restore: %v", err)
	}
	if len(sa) != len(sb) {
		t.Fatalf("sample len %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sample[%d] %d vs %d", i, sa[i], sb[i])
		}
	}
	// Continued offers stay identical (RNG continuity through the frame).
	for it := 0; it < 20; it++ {
		batch := []int64{int64(it%500) + 1}
		admA, errA := fa.OfferBatch(id, batch)
		admB, errB := fb.OfferBatch(id, batch)
		if admA != admB || (errA == nil) != (errB == nil) {
			t.Fatalf("offer %d diverges: %d/%d %v/%v", it, admA, admB, errA, errB)
		}
	}

	// A restore revives a dropped tenant — explicitly, never silently.
	if err := fb.Drop(id); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if _, err := fb.Sample(id); !errors.Is(err, ErrTenantEvicted) {
		t.Fatalf("dropped Sample err %v", err)
	}
	if err := fb.RestoreTenant(id, snap); err != nil {
		t.Fatalf("revive: %v", err)
	}
	if _, err := fb.Sample(id); err != nil {
		t.Fatalf("Sample after revive: %v", err)
	}

	// Rejection: truncations and corrupt payload bytes.
	for i := 0; i < len(snap); i += 3 {
		if err := fb.RestoreTenant(id, snap[:i]); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("RestoreTenant(snap[:%d]) err %v, want ErrBadSnapshot", i, err)
		}
	}
	bad := append([]byte(nil), snap...)
	bad[len(bad)-1] ^= 0x01 // corrupt the sample tail
	if err := fb.RestoreTenant(id, bad); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("RestoreTenant(corrupt) err %v, want ErrBadSnapshot", err)
	}
}
