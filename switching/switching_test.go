package switching_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"robustsample/sketch"
	"robustsample/switching"
)

const testUniverse = int64(4096)

func testU(t testing.TB) sketch.Universe[int64] {
	t.Helper()
	u, err := sketch.NewInt64Universe(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// builders covers every sampler type the public surface exposes; the
// differential law must hold for each of them.
func builders() map[string]switching.Builder[int64] {
	return map[string]switching.Builder[int64]{
		"reservoir": func(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
			return sketch.NewReservoir(u, 32, sketch.WithSeed(seed))
		},
		"reservoirL": func(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
			return sketch.NewReservoirL(u, 32, sketch.WithSeed(seed))
		},
		"bernoulli": func(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
			return sketch.NewBernoulli(u, 0.05, sketch.WithSeed(seed))
		},
		"weighted": func(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
			return sketch.NewWeighted(u, 32, sketch.WithSeed(seed))
		},
	}
}

var builderOrder = []string{"reservoir", "reservoirL", "bernoulli", "weighted"}

// testStream is a fixed pseudo-random stream over [1, testUniverse],
// deterministic without consuming any sketch RNG.
func testStream(n int, salt uint64) []int64 {
	xs := make([]int64, n)
	state := salt*0x9e3779b97f4a7c15 + 1
	for i := range xs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		xs[i] = 1 + int64(state%uint64(testUniverse))
	}
	return xs
}

// feedChunked offers xs in fixed-size batches — the same chunking must be
// used on both sides of a differential comparison, because Bernoulli's
// batch path draws randomness differently from per-element offers.
func feedChunked(t testing.TB, s sketch.Sketch[int64], xs []int64, chunk int) {
	t.Helper()
	for len(xs) > 0 {
		m := min(chunk, len(xs))
		if _, err := s.OfferBatch(xs[:m]); err != nil {
			t.Fatalf("OfferBatch: %v", err)
		}
		xs = xs[m:]
	}
}

// epochBounds splits n rounds into g contiguous epochs.
func epochBounds(n, g int) [][2]int {
	out := make([][2]int, g)
	per := n / g
	for i := range out {
		lo := i * per
		hi := lo + per
		if i == g-1 {
			hi = n
		}
		out[i] = [2]int{lo, hi}
	}
	return out
}

// queryLadder is the verdict table the differential test pins: prefix
// ranges at every 1/8 of the universe.
func queryLadder() [][2]int64 {
	var out [][2]int64
	for i := int64(1); i <= 8; i++ {
		out = append(out, [2]int64{1, i * testUniverse / 8})
	}
	return out
}

// TestDifferentialSerial pins the meta-sketch in deterministic mode
// bit-identical to G independent serial sketches fed the same
// epoch-partitioned stream: per-copy samples, the union view, and the
// whole query ladder (verdict table) must agree exactly, for every sampler
// type and G in {1, 2, 4, 8}.
func TestDifferentialSerial(t *testing.T) {
	u := testU(t)
	const seed, n, chunk = 42, 4000, 137
	for _, name := range builderOrder {
		build := builders()[name]
		for _, g := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/G=%d", name, g), func(t *testing.T) {
				stream := testStream(n, uint64(g))
				epochs := epochBounds(n, g)

				sw, err := switching.New(u, g, build, switching.WithSeed(seed))
				if err != nil {
					t.Fatal(err)
				}
				serial := make([]sketch.Sketch[int64], g)
				for i := range serial {
					serial[i], err = build(u, switching.DeriveSeed(seed, i))
					if err != nil {
						t.Fatal(err)
					}
				}

				for e, b := range epochs {
					xs := stream[b[0]:b[1]]
					feedChunked(t, sw, xs, chunk)
					feedChunked(t, serial[e], xs, chunk)
					if e < g-1 {
						if !sw.Advance() {
							t.Fatalf("Advance exhausted at epoch %d of %d", e, g)
						}
					}
				}

				// Per-copy samples bit-identical to the standalone sketches.
				var union []int64
				for i := 0; i < g; i++ {
					got, err := sw.CopyView(i)
					if err != nil {
						t.Fatal(err)
					}
					want := serial[i].View()
					if !equalInt64(got, want) {
						t.Fatalf("copy %d sample diverged:\n got %v\nwant %v", i, got, want)
					}
					r, err := sw.CopyRounds(i)
					if err != nil {
						t.Fatal(err)
					}
					if r != serial[i].Rounds() {
						t.Fatalf("copy %d rounds %d, serial %d", i, r, serial[i].Rounds())
					}
					union = append(union, want...)
				}

				// Union view, length and total rounds.
				if got := sw.View(); !equalInt64(got, union) {
					t.Fatalf("union view diverged:\n got %v\nwant %v", got, union)
				}
				if sw.Len() != len(union) {
					t.Fatalf("Len %d, want %d", sw.Len(), len(union))
				}
				if sw.Rounds() != n {
					t.Fatalf("Rounds %d, want %d", sw.Rounds(), n)
				}

				// Verdict table: the query ladder must match the density of
				// the manually assembled union, exactly.
				for _, q := range queryLadder() {
					got, err := sw.Query(q[0], q[1])
					if len(union) == 0 {
						if !errors.Is(err, sketch.ErrEmpty) {
							t.Fatalf("Query on empty union: %v", err)
						}
						continue
					}
					if err != nil {
						t.Fatal(err)
					}
					want := densityOf(union, q[0], q[1])
					if got != want {
						t.Fatalf("Query[%d,%d] = %v, want %v", q[0], q[1], got, want)
					}
				}
			})
		}
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func densityOf(sample []int64, lo, hi int64) float64 {
	in := 0
	for _, x := range sample {
		if x >= lo && x <= hi {
			in++
		}
	}
	return float64(in) / float64(len(sample))
}

func TestNewValidation(t *testing.T) {
	u := testU(t)
	build := builders()["reservoir"]
	if _, err := switching.New[int64](nil, 2, build); !errors.Is(err, sketch.ErrNilUniverse) {
		t.Fatalf("nil universe: %v", err)
	}
	if _, err := switching.New(u, 0, build); !errors.Is(err, switching.ErrBadCopies) {
		t.Fatalf("G=0: %v", err)
	}
	if _, err := switching.New(u, 2, nil); !errors.Is(err, switching.ErrNilBuilder) {
		t.Fatalf("nil builder: %v", err)
	}
	if _, err := switching.New(u, 2, build, switching.WithMode(switching.Mode(42))); err == nil {
		t.Fatal("bad mode accepted")
	}
	failing := func(sketch.Universe[int64], uint64) (sketch.Sketch[int64], error) {
		return nil, errors.New("boom")
	}
	if _, err := switching.New(u, 2, failing); err == nil {
		t.Fatal("failing builder accepted")
	}
	nilBuild := func(sketch.Universe[int64], uint64) (sketch.Sketch[int64], error) {
		return nil, nil
	}
	if _, err := switching.New(u, 2, nilBuild); !errors.Is(err, sketch.ErrNilSketch) {
		t.Fatalf("nil-returning builder: %v", err)
	}
	// A nil option is skipped, matching the sketch package's tolerance.
	if _, err := switching.New(u, 2, build, nil, switching.WithSeed(7)); err != nil {
		t.Fatalf("nil option: %v", err)
	}
}

// TestPublishedFreeze pins the feedback-denial contract: the published
// output never changes between Advances, no matter how much the active
// copy's live sample moves.
func TestPublishedFreeze(t *testing.T) {
	u := testU(t)
	sw, err := switching.New(u, 3, builders()["reservoir"], switching.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.Published(); len(got) != 0 {
		t.Fatalf("published non-empty before first Advance: %v", got)
	}
	if _, err := sw.QueryPublished(1, testUniverse); !errors.Is(err, sketch.ErrEmpty) {
		t.Fatalf("QueryPublished before first Advance: %v", err)
	}

	feedChunked(t, sw, testStream(500, 1), 100)
	if got := sw.Published(); len(got) != 0 {
		t.Fatal("published moved without an Advance")
	}
	if !sw.Advance() {
		t.Fatal("first Advance had no fresh copy")
	}
	frozen := sw.Published()
	if len(frozen) == 0 {
		t.Fatal("published empty after Advance over a fed copy")
	}
	d, err := sw.QueryPublished(1, testUniverse)
	if err != nil || d != 1 {
		t.Fatalf("QueryPublished full range = %v, %v", d, err)
	}

	feedChunked(t, sw, testStream(500, 2), 100)
	if !equalInt64(sw.Published(), frozen) {
		t.Fatal("published changed between Advances")
	}

	// Exhaustion: G=3 gives two fresh advances, then it stays on the last
	// copy but keeps re-publishing.
	if !sw.Advance() {
		t.Fatal("second Advance had no fresh copy")
	}
	if sw.Remaining() != 0 || sw.Active() != 2 {
		t.Fatalf("after 2 advances: active %d remaining %d", sw.Active(), sw.Remaining())
	}
	feedChunked(t, sw, testStream(500, 3), 100)
	if sw.Advance() {
		t.Fatal("Advance past the last copy claimed a fresh one")
	}
	if sw.Active() != 2 {
		t.Fatalf("active moved past the last copy: %d", sw.Active())
	}
	if equalInt64(sw.Published(), frozen) {
		t.Fatal("exhausted Advance did not re-publish")
	}
	if sw.G() != 3 || sw.Seed() != 7 || sw.Mode() != switching.ModeUnion {
		t.Fatalf("accessors: G=%d seed=%d mode=%d", sw.G(), sw.Seed(), sw.Mode())
	}
}

func TestModeActive(t *testing.T) {
	u := testU(t)
	sw, err := switching.New(u, 3, builders()["reservoir"], switching.WithSeed(9),
		switching.WithMode(switching.ModeActive))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Mode() != switching.ModeActive {
		t.Fatalf("mode %d", sw.Mode())
	}
	feedChunked(t, sw, testStream(200, 4), 50)
	sw.Advance()
	feedChunked(t, sw, testStream(300, 5), 50)

	active, err := sw.CopyView(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.View(); !equalInt64(got, active) {
		t.Fatalf("ModeActive view is not the active copy's:\n got %v\nwant %v", got, active)
	}
	if sw.Len() != len(active) {
		t.Fatalf("ModeActive Len %d, want %d", sw.Len(), len(active))
	}
	// Rounds still counts the whole stream across copies.
	if sw.Rounds() != 500 {
		t.Fatalf("Rounds %d, want 500", sw.Rounds())
	}
	d, err := sw.Query(1, testUniverse)
	if err != nil || d != 1 {
		t.Fatalf("Query full range = %v, %v", d, err)
	}
	// Published in active mode freezes the active copy's sample.
	sw.Advance()
	pub := sw.Published()
	want, _ := sw.CopyView(1)
	if !equalInt64(pub, want) {
		t.Fatalf("ModeActive published:\n got %v\nwant %v", pub, want)
	}
}

func TestQueryErrors(t *testing.T) {
	u := testU(t)
	sw, err := switching.New(u, 2, builders()["reservoir"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Query(1, testUniverse); !errors.Is(err, sketch.ErrEmpty) {
		t.Fatalf("empty query: %v", err)
	}
	if _, err := sw.Query(5, 2); !errors.Is(err, sketch.ErrBadRange) {
		t.Fatalf("inverted range: %v", err)
	}
	if _, err := sw.Query(0, 5); !errors.Is(err, sketch.ErrOutOfUniverse) {
		t.Fatalf("out of universe: %v", err)
	}
	if _, err := sw.QueryPublished(5, 2); !errors.Is(err, sketch.ErrBadRange) {
		t.Fatalf("published inverted range: %v", err)
	}
	if _, err := sw.Offer(0); !errors.Is(err, sketch.ErrOutOfUniverse) {
		t.Fatalf("offer out of universe: %v", err)
	}
	if _, err := sw.CopyView(2); !errors.Is(err, switching.ErrBadCopyIndex) {
		t.Fatalf("CopyView(2): %v", err)
	}
	if _, err := sw.CopyRounds(-1); !errors.Is(err, switching.ErrBadCopyIndex) {
		t.Fatalf("CopyRounds(-1): %v", err)
	}
}

func TestMergeFrom(t *testing.T) {
	u := testU(t)
	build := builders()["reservoir"]
	mk := func(seed uint64) *switching.Sketch[int64] {
		sw, err := switching.New(u, 3, build, switching.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}

	a, b := mk(1), mk(2)
	feedChunked(t, a, testStream(400, 10), 100)
	a.Advance()
	feedChunked(t, a, testStream(400, 11), 100)
	feedChunked(t, b, testStream(400, 12), 100)
	b.Advance()
	feedChunked(t, b, testStream(400, 13), 100)
	b.Advance()
	feedChunked(t, b, testStream(400, 14), 100)

	wantRounds := a.Rounds() + b.Rounds()
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Rounds() != wantRounds {
		t.Fatalf("merged rounds %d, want %d", a.Rounds(), wantRounds)
	}
	// Active advances to the later of the two.
	if a.Active() != 2 {
		t.Fatalf("merged active %d, want 2", a.Active())
	}
	// A merge re-publishes: the frozen output equals the merged view.
	if !equalInt64(a.Published(), a.View()) {
		t.Fatal("merge did not refresh the published output")
	}

	// Error cases.
	plain, err := sketch.NewReservoir(u, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeFrom(plain); !errors.Is(err, sketch.ErrIncompatible) {
		t.Fatalf("cross-type merge: %v", err)
	}
	if err := a.MergeFrom(a); !errors.Is(err, sketch.ErrIncompatible) {
		t.Fatalf("self merge: %v", err)
	}
	g2, err := switching.New(u, 2, build)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeFrom(g2); !errors.Is(err, sketch.ErrIncompatible) {
		t.Fatalf("G mismatch: %v", err)
	}
	mActive, err := switching.New(u, 3, build, switching.WithMode(switching.ModeActive))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeFrom(mActive); !errors.Is(err, sketch.ErrIncompatible) {
		t.Fatalf("mode mismatch: %v", err)
	}
	small, err := sketch.NewInt64Universe(16)
	if err != nil {
		t.Fatal(err)
	}
	other, err := switching.New(small, 3, func(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
		return sketch.NewReservoir(u, 32, sketch.WithSeed(seed))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeFrom(other); !errors.Is(err, sketch.ErrIncompatible) {
		t.Fatalf("universe mismatch: %v", err)
	}

	// A wrapped type that cannot merge surfaces its sentinel.
	l1, err := switching.New(u, 2, builders()["reservoirL"])
	if err != nil {
		t.Fatal(err)
	}
	l2, err := switching.New(u, 2, builders()["reservoirL"])
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.MergeFrom(l2); !errors.Is(err, sketch.ErrUnsupportedMerge) {
		t.Fatalf("reservoirL merge: %v", err)
	}
}

// TestResetDeterminism pins Reset + refeed bit-identical to a fresh
// meta-sketch — the reproducibility contract of the whole repository.
func TestResetDeterminism(t *testing.T) {
	u := testU(t)
	build := builders()["reservoir"]
	sw, err := switching.New(u, 4, build, switching.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	stream := testStream(1000, 20)
	feedChunked(t, sw, stream, 100)
	sw.Advance()
	feedChunked(t, sw, stream, 100)
	sw.Reset()
	if sw.Rounds() != 0 || sw.Active() != 0 || sw.PublishedLen() != 0 || sw.Len() != 0 {
		t.Fatalf("reset left state: rounds=%d active=%d published=%d len=%d",
			sw.Rounds(), sw.Active(), sw.PublishedLen(), sw.Len())
	}

	fresh, err := switching.New(u, 4, build, switching.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	feedChunked(t, sw, stream, 100)
	feedChunked(t, fresh, stream, 100)
	if !equalInt64(sw.View(), fresh.View()) {
		t.Fatal("reset meta-sketch diverged from a fresh one on the same stream")
	}
	s1, err := sw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fresh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("reset and fresh meta-sketches serialize differently")
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for root := uint64(0); root < 4; root++ {
		for i := 0; i < 16; i++ {
			s := switching.DeriveSeed(root, i)
			if seen[s] {
				t.Fatalf("DeriveSeed collision at root=%d i=%d", root, i)
			}
			seen[s] = true
		}
	}
}

func TestRotator(t *testing.T) {
	var fired int
	rot := switching.Rotator(2, func() { fired++ })
	rot(1)
	rot(1) // duplicate sequence: deduped
	rot(2)
	if fired != 1 {
		t.Fatalf("every=2 after seqs 1,1,2: fired %d, want 1", fired)
	}
	rot(3)
	rot(4)
	if fired != 2 {
		t.Fatalf("after seqs ..3,4: fired %d, want 2", fired)
	}

	// every < 1 selects 1: fires on every distinct sequence.
	fired = 0
	rot = switching.Rotator(0, func() { fired++ })
	rot(7)
	rot(7)
	rot(9)
	if fired != 2 {
		t.Fatalf("every=0 after seqs 7,7,9: fired %d, want 2", fired)
	}
}
