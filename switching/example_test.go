package switching_test

import (
	"fmt"

	"robustsample/sketch"
	"robustsample/switching"
)

// Example demonstrates the sketch-switching discipline: ingest an epoch
// into the active copy, Advance at each checkpoint to freeze the published
// output, and serve adaptive clients from Published while the analyst
// reads the live union.
func Example() {
	u, _ := sketch.NewInt64Universe(1000)
	sw, _ := switching.New(u, 4, func(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
		return sketch.NewReservoir(u, 8, sketch.WithSeed(seed))
	}, switching.WithSeed(1))

	for epoch := int64(0); epoch < 4; epoch++ {
		for x := int64(1); x <= 250; x++ {
			if _, err := sw.Offer(epoch*250 + x); err != nil {
				fmt.Println("offer:", err)
				return
			}
		}
		sw.Advance() // checkpoint: freeze output, move to a fresh copy
	}

	fmt.Println("copies:", sw.G())
	fmt.Println("stream length:", sw.Rounds())
	fmt.Println("union sample size:", sw.Len())
	fmt.Println("published size:", sw.PublishedLen())
	density, _ := sw.QueryPublished(1, 500)
	fmt.Printf("published density of [1,500]: %.2f\n", density)
	// Output:
	// copies: 4
	// stream length: 1000
	// union sample size: 32
	// published size: 32
	// published density of [1,500]: 0.50
}
