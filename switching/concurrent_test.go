package switching_test

import (
	"errors"
	"testing"
	"time"

	"robustsample/sketch"
	"robustsample/switching"
)

func concSwitching(t *testing.T, seed uint64) (*switching.Sketch[int64], *sketch.Concurrent[int64]) {
	t.Helper()
	u := testU(t)
	sw, err := switching.New(u, 3, builders()["reservoir"], switching.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	c, err := sketch.NewConcurrent[int64](sw)
	if err != nil {
		t.Fatal(err)
	}
	return sw, c
}

// TestConcurrentSwitchingSelfMerge is the double-lock audit for
// sketch.Concurrent wrapping a switching.Sketch, mirroring the Concurrent
// self-merge guard: merging the wrapper into itself, and merging the
// wrapper's own inner meta-sketch into the wrapper, must both report
// ErrIncompatible without deadlocking — the first is caught by
// Concurrent's pointer guard, the second by the meta-sketch's own
// self-merge guard while the wrapper's write lock is held.
func TestConcurrentSwitchingSelfMerge(t *testing.T) {
	sw, c := concSwitching(t, 3)
	feedChunked(t, c, testStream(200, 40), 50)

	check := func(name string, fn func() error) {
		t.Helper()
		done := make(chan error, 1)
		go func() { done <- fn() }()
		select {
		case err := <-done:
			if !errors.Is(err, sketch.ErrIncompatible) {
				t.Fatalf("%s: err = %v, want ErrIncompatible", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: deadlocked", name)
		}
	}
	check("wrapper into itself", func() error { return c.MergeFrom(c) })
	check("inner into its own wrapper", func() error { return c.MergeFrom(sw) })

	// The guards must not have corrupted state: a legitimate merge and
	// rotation still work through the wrapper.
	sw2, c2 := concSwitching(t, 4)
	feedChunked(t, c2, testStream(200, 41), 50)
	before := c.Rounds()
	if err := c.MergeFrom(c2); err != nil {
		t.Fatalf("legitimate merge: %v", err)
	}
	if got := c.Rounds(); got != before+c2.Rounds() {
		t.Fatalf("merged rounds %d, want %d", got, before+c2.Rounds())
	}
	c.Do(func(sketch.Sketch[int64]) {
		if !sw.Advance() {
			t.Error("Advance through the wrapper found no fresh copy")
		}
	})
	_ = sw2
}

// TestConcurrentSwitchingSnapshot pins that snapshot bytes taken through
// the wrapper restore into a bare meta-sketch and vice versa — Concurrent
// adds synchronization only, never framing.
func TestConcurrentSwitchingSnapshot(t *testing.T) {
	sw, c := concSwitching(t, 5)
	feedChunked(t, c, testStream(300, 42), 50)
	c.Do(func(sketch.Sketch[int64]) { sw.Advance() })

	viaWrapper, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bare, err := sw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(viaWrapper) != string(bare) {
		t.Fatal("wrapper snapshot differs from the bare meta-sketch's")
	}
	fresh, c3 := concSwitching(t, 6)
	if err := c3.Restore(viaWrapper); err != nil {
		t.Fatal(err)
	}
	if !equalInt64(fresh.View(), sw.View()) {
		t.Fatal("restore through the wrapper diverged")
	}
}
