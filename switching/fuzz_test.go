package switching_test

import (
	"bytes"
	"errors"
	"testing"

	"robustsample/sketch"
	"robustsample/switching"
)

// fuzzBuild is the copy builder the fuzz target restores through; the
// receiver's G deliberately differs from most corpus snapshots, because
// Restore adopts the snapshot's copy count.
func fuzzBuild(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
	return sketch.NewReservoir(u, 16, sketch.WithSeed(seed))
}

func fuzzSketch(t testing.TB) *switching.Sketch[int64] {
	t.Helper()
	u, err := sketch.NewInt64Universe(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := switching.New(u, 3, fuzzBuild, switching.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// corpusSnapshots returns valid snapshots in several states: empty, fed,
// rotated, exhausted, and a G different from the receiver's.
func corpusSnapshots(t testing.TB) [][]byte {
	t.Helper()
	u, err := sketch.NewInt64Universe(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	snap := func(sw *switching.Sketch[int64]) {
		b, err := sw.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	sw := fuzzSketch(t)
	snap(sw)
	feedChunked(t, sw, testStream(300, 31), 64)
	snap(sw)
	sw.Advance()
	feedChunked(t, sw, testStream(300, 32), 64)
	snap(sw)
	sw.Advance()
	sw.Advance() // exhausted
	snap(sw)
	g5, err := switching.New(u, 5, fuzzBuild, switching.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	feedChunked(t, g5, testStream(100, 33), 64)
	snap(g5)
	return out
}

// FuzzSwitchingSnapshot fuzzes Restore with arbitrary bytes and checks the
// codec laws on every accepted input: re-snapshot bit-identity, state
// equality between two restores of the same bytes, and continuation
// bit-identity (both restores evolve identically). Inputs that are not
// FrameSwitching frames — including valid snapshots of other sketch types
// — must be rejected, and nothing may panic.
func FuzzSwitchingSnapshot(f *testing.F) {
	for _, b := range corpusSnapshots(f) {
		f.Add(b)
		if len(b) > 10 {
			f.Add(b[:len(b)-7]) // truncated
			mut := bytes.Clone(b)
			mut[len(mut)/2] ^= 0x41 // corrupt
			f.Add(mut)
		}
	}
	// Cross-type: a plain reservoir snapshot must be rejected by kind.
	u, err := sketch.NewInt64Universe(testUniverse)
	if err != nil {
		f.Fatal(err)
	}
	res, err := sketch.NewReservoir(u, 16)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := res.OfferBatch(testStream(50, 34)); err != nil {
		f.Fatal(err)
	}
	crossType, err := res.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(crossType)

	f.Fuzz(func(t *testing.T, data []byte) {
		sw := fuzzSketch(t)
		if err := sw.Restore(data); err != nil {
			if !errors.Is(err, sketch.ErrBadSnapshot) && !errors.Is(err, sketch.ErrIncompatible) {
				t.Fatalf("Restore failed with a non-codec error: %v", err)
			}
			return
		}
		if kind, err := sketch.FrameKind(data); err != nil || kind != sketch.FrameSwitching {
			t.Fatalf("accepted a non-switching frame: kind=%d err=%v", kind, err)
		}

		// Law 1: re-snapshot bit-identity.
		snap1, err := sw.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot after Restore: %v", err)
		}
		tw := fuzzSketch(t)
		if err := tw.Restore(snap1); err != nil {
			t.Fatalf("Restore of re-snapshot: %v", err)
		}
		snap2, err := tw.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap1, snap2) {
			t.Fatal("re-snapshot is not bit-identical")
		}

		// Law 2: state equality between the two restores.
		if sw.G() != tw.G() || sw.Active() != tw.Active() || sw.Mode() != tw.Mode() ||
			sw.Rounds() != tw.Rounds() || !equalInt64(sw.View(), tw.View()) ||
			!equalInt64(sw.Published(), tw.Published()) {
			t.Fatal("two restores of the same snapshot disagree")
		}

		// Law 3: continuation bit-identity — both restores must evolve
		// identically on the same suffix stream, including a rotation.
		suffix := testStream(200, 35)
		feedChunked(t, sw, suffix, 64)
		feedChunked(t, tw, suffix, 64)
		sw.Advance()
		tw.Advance()
		if !equalInt64(sw.View(), tw.View()) || !equalInt64(sw.Published(), tw.Published()) {
			t.Fatal("restored meta-sketches diverged on the same continuation")
		}
		c1, err := sw.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		c2, err := tw.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c1, c2) {
			t.Fatal("continuation snapshots are not bit-identical")
		}
	})
}

// TestSnapshotRoundTrip pins the directed cases the fuzz target explores:
// a full round trip through every state in the corpus, including a
// receiver whose configured G differs from the snapshot's.
func TestSnapshotRoundTrip(t *testing.T) {
	for i, snap := range corpusSnapshots(t) {
		sw := fuzzSketch(t)
		if err := sw.Restore(snap); err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		again, err := sw.Snapshot()
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		if !bytes.Equal(snap, again) {
			t.Fatalf("corpus %d: restore/snapshot not bit-identical", i)
		}
	}
}

// TestRestoreRejections covers the validation matrix: cross-type frames,
// truncation, corrupt fields, oversized counts and trailing garbage must
// all fail with ErrBadSnapshot and leave the receiver untouched.
func TestRestoreRejections(t *testing.T) {
	sw := fuzzSketch(t)
	feedChunked(t, sw, testStream(100, 36), 64)
	sw.Advance()
	before, err := sw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	good, err := sw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	u, err := sketch.NewInt64Universe(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sketch.NewReservoir(u, 8)
	if err != nil {
		t.Fatal(err)
	}
	crossType, err := res.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	small, err := sketch.NewInt64Universe(7)
	if err != nil {
		t.Fatal(err)
	}
	smallSw, err := switching.New(small, 2, fuzzBuild)
	if err != nil {
		t.Fatal(err)
	}
	wrongUniverse, err := smallSw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":          nil,
		"bad-magic":      []byte("NOPE!!"),
		"cross-type":     crossType,
		"wrong-universe": wrongUniverse,
		"truncated":      good[:len(good)-5],
		"header-only":    good[:6],
		"trailing":       append(bytes.Clone(good), 0xFF),
	}
	// Field-level corruption: mode, G, active and a published point.
	// Offsets: header(6) + size(8) + seed(8) = 22; mode at 22, G at 30,
	// active at 38, published length at 46, first published point at 54.
	for name, off := range map[string]int{"mode": 22, "copies": 30, "active": 38, "published-point": 54} { //robust:nondet corruption-case table; each case is independent of order

		mut := bytes.Clone(good)
		for i := 0; i < 8 && off+i < len(mut); i++ {
			mut[off+i] = 0xEE
		}
		cases["corrupt-"+name] = mut
	}

	for name, data := range cases { //robust:nondet rejection-case table; each case is independent of order

		if err := sw.Restore(data); !errors.Is(err, sketch.ErrBadSnapshot) {
			t.Errorf("%s: Restore = %v, want ErrBadSnapshot", name, err)
		}
	}

	// Atomicity: every rejected restore left the receiver unchanged.
	after, err := sw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("a rejected Restore mutated the receiver")
	}

	// A builder that fails during Restore surfaces its error (not a codec
	// sentinel) and still leaves the receiver unchanged.
	calls := 0
	flaky, err := switching.New(u, 3, func(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
		calls++
		if calls > 4 { // survive New's 3 calls, fail inside Restore
			return nil, errors.New("builder down")
		}
		return fuzzBuild(u, seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := flaky.Restore(good); err == nil {
		t.Fatal("Restore with a failing builder succeeded")
	}
}
