package switching_test

import (
	"sync"
	"testing"

	"robustsample/shard"
	"robustsample/sketch"
	"robustsample/switching"
)

// TestServingRotationProperty is the epoch-rotation property test under
// the serving runtime: concurrent producers feed both a served shard
// engine and a Concurrent-guarded switching sketch, every Flush barrier
// drives one rotation through shard.PipelineConfig.OnEpoch + Rotator, and
// concurrent queriers assert two properties throughout:
//
//   - conservation: at every atomic observation (and at the end), the
//     elements offered so far equal the elements applied across all
//     copies, and the per-copy rounds sum to the total;
//   - no half-rotated views: the active index only moves forward, and
//     while it is unchanged (and fresh copies remain) the published
//     output is frozen bit-for-bit — a torn rotation would violate one
//     of the two.
//
// CI runs the package under -race, which additionally checks the locking.
func TestServingRotationProperty(t *testing.T) {
	const (
		producers = 4
		perLane   = 2048
		flushEach = 256
		copies    = 8
	)
	u, err := sketch.NewInt64Universe(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := switching.New(u, copies, func(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
		return sketch.NewReservoir(u, 64, sketch.WithSeed(seed))
	}, switching.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	conc, err := sketch.NewConcurrent[int64](sw)
	if err != nil {
		t.Fatal(err)
	}
	rot := switching.Rotator(1, func() {
		conc.Do(func(sketch.Sketch[int64]) { sw.Advance() })
	})

	eng, err := shard.New(u,
		shard.WithShards(2),
		shard.WithReservoir(64),
		shard.WithPipeline(shard.PipelineConfig{
			Producers: producers,
			OnEpoch:   func(ep shard.Epoch) { rot(ep.Seq) },
		}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := eng.Serve(nil)
	if err != nil {
		t.Fatal(err)
	}

	var offered sync.WaitGroup
	done := make(chan struct{})

	// Queriers: atomic observations through Concurrent.Do.
	var queriers sync.WaitGroup
	for q := 0; q < 2; q++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			lastActive := -1
			var lastPub []int64
			for {
				select {
				case <-done:
					return
				default:
				}
				var active, rounds, copySum int
				var pub []int64
				var remaining int
				conc.Do(func(sketch.Sketch[int64]) {
					active = sw.Active()
					remaining = sw.Remaining()
					rounds = sw.Rounds()
					pub = append([]int64(nil), sw.Published()...)
					for i := 0; i < sw.G(); i++ {
						r, err := sw.CopyRounds(i)
						if err != nil {
							t.Errorf("CopyRounds(%d): %v", i, err)
							return
						}
						copySum += r
					}
				})
				if copySum != rounds {
					t.Errorf("conservation violated: copy rounds sum %d, Rounds %d", copySum, rounds)
					return
				}
				if active < lastActive {
					t.Errorf("active index went backwards: %d -> %d", lastActive, active)
					return
				}
				if active == lastActive && remaining > 0 && !equalInt64(pub, lastPub) {
					t.Errorf("published output moved without a rotation (active %d)", active)
					return
				}
				for _, p := range pub {
					if p < 1 || p > testUniverse {
						t.Errorf("published holds torn point %d", p)
						return
					}
				}
				lastActive, lastPub = active, pub
			}
		}()
	}

	// Producers: every element goes to both the served engine and the
	// meta-sketch; each lane takes a Flush barrier (= one rotation)
	// every flushEach elements.
	for lane := 0; lane < producers; lane++ {
		offered.Add(1)
		go func(lane int) {
			defer offered.Done()
			pr, err := srv.Producer(lane)
			if err != nil {
				t.Error(err)
				return
			}
			xs := testStream(perLane, uint64(100+lane))
			for i, x := range xs {
				if err := pr.Offer(x); err != nil {
					t.Errorf("lane %d: serve offer: %v", lane, err)
					return
				}
				if _, err := conc.Offer(x); err != nil {
					t.Errorf("lane %d: sketch offer: %v", lane, err)
					return
				}
				if (i+1)%flushEach == 0 {
					srv.Flush()
				}
			}
			pr.Close()
		}(lane)
	}

	offered.Wait()
	srv.Flush()
	srv.Close()
	close(done)
	queriers.Wait()

	// Final conservation: everything offered was applied across the copies.
	total := producers * perLane
	if got := conc.Rounds(); got != total {
		t.Fatalf("offered %d elements, copies applied %d", total, got)
	}
	sum := 0
	for i := 0; i < sw.G(); i++ {
		r, err := sw.CopyRounds(i)
		if err != nil {
			t.Fatal(err)
		}
		sum += r
	}
	if sum != total {
		t.Fatalf("per-copy rounds sum %d, offered %d", sum, total)
	}
	// With far more barriers than copies, rotation must have exhausted
	// the ladder — proof the OnEpoch hook actually drove Advance.
	if sw.Active() != copies-1 {
		t.Fatalf("rotation did not run: active %d, want %d", sw.Active(), copies-1)
	}
	if sw.PublishedLen() == 0 {
		t.Fatal("no output was ever published")
	}
}
