// Package switching implements the sketch-switching meta-sketch of
// "A Framework for Adversarially Robust Streaming Algorithms" (Ben-Eliezer,
// Jayaram, Woodruff & Yogev, PODS 2020) — the generic robustness mechanism
// that is the companion to the oversampling approach of "The Adversarial
// Robustness of Sampling" (Ben-Eliezer & Yogev, PODS 2020).
//
// Where oversampling buys robustness by growing one sample until union
// bounds absorb every adaptive query, sketch-switching buys it by feedback
// denial: the meta-sketch keeps G independent copies of an arbitrary
// static sketch, feeds the stream to one copy at a time, and freezes its
// published output between epoch switches. Within an epoch the adversary
// learns nothing new — the output it observes never moves — so an adaptive
// attack degrades to an oblivious one against each copy, and a static
// (VC-dimension sized) sketch per epoch suffices. The price is space:
// G copies cost G x the static size, against oversampling's single
// ln|R|-sized sample. Experiment E21 races the two mechanisms under the
// repository's attack zoo.
//
// Sketch[T] implements sketch.Sketch[T], so everything built on that
// interface — sketch.Concurrent, snapshots through the versioned codec
// layer, coordinator fan-in — composes with it. Rotation is driven either
// directly (Advance) or from the serving runtime's epoch-stamped barriers
// via shard.PipelineConfig.OnEpoch and the Rotator adapter.
package switching

import (
	"errors"
	"fmt"
	"sync"

	"robustsample/internal/rng"
	"robustsample/internal/snapshot"
	"robustsample/sketch"
)

// Sentinel errors specific to the meta-sketch; codec and compatibility
// failures reuse the sketch package's sentinels (sketch.ErrBadSnapshot,
// sketch.ErrIncompatible, ...). Test with errors.Is.
var (
	// ErrBadCopies reports a copy count G below 1.
	ErrBadCopies = errors.New("switching: copy count G must be >= 1")
	// ErrNilBuilder reports a nil copy builder.
	ErrNilBuilder = errors.New("switching: builder must be non-nil")
	// ErrBadCopyIndex reports a copy index outside [0, G).
	ErrBadCopyIndex = errors.New("switching: copy index out of range")
	// ErrBadMode reports an unknown query mode; the wrapping error carries
	// the rejected value.
	ErrBadMode = errors.New("switching: unknown mode")
)

// Mode selects what View, Len and Query report.
type Mode int

const (
	// ModeUnion serves queries from the union of all copies in copy order
	// — the analyst's end-of-stream estimate, each epoch represented by
	// its own copy's sample ([BJWY20]'s robustness composition).
	ModeUnion Mode = iota
	// ModeActive serves queries from the active copy only — the flip-style
	// variant where each epoch answers from the copy currently ingesting.
	ModeActive
)

// Builder constructs one copy of the wrapped sketch over universe u, seeded
// with seed. New and Restore call it once per copy with split-RNG derived
// seeds (DeriveSeed); the builder must honor both arguments — in particular
// it must pass seed through sketch.WithSeed — for the determinism and
// snapshot contracts to hold.
type Builder[T any] func(u sketch.Universe[T], seed uint64) (sketch.Sketch[T], error)

type config struct {
	seed uint64
	mode Mode
}

// Option configures New.
type Option func(*config) error

// WithSeed sets the root seed the per-copy seeds derive from (default
// sketch.DefaultSeed). Two meta-sketches with equal configuration, root
// seed and input are bit-identical.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithMode selects the query mode (default ModeUnion).
func WithMode(m Mode) Option {
	return func(c *config) error {
		if m != ModeUnion && m != ModeActive {
			return fmt.Errorf("%w %d", ErrBadMode, m)
		}
		c.mode = m
		return nil
	}
}

// DeriveSeed returns the seed of copy i under root seed root. It is
// exported so differential tests (and distributed deployments splitting
// copies across processes) can construct standalone sketches bit-identical
// to the meta-sketch's copies.
func DeriveSeed(root uint64, i int) uint64 {
	// Golden-ratio stride plus a splitmix finalizer: the same split
	// discipline rng.Split uses, without consuming the sketch RNG streams.
	return rng.Mix64(root + 0x9e3779b97f4a7c15*uint64(i+1))
}

// Sketch is the sketch-switching meta-sketch: G independent copies of a
// wrapped sketch, one active at a time. Offer and OfferBatch feed the
// active copy; Advance freezes the published output and moves ingest to
// the next fresh copy. Like every sketch.Sketch it is deterministic given
// its seed and input and not safe for concurrent use — wrap it in
// sketch.NewConcurrent to share it across goroutines.
type Sketch[T any] struct {
	u         sketch.Universe[T]
	build     Builder[T]
	seed      uint64
	mode      Mode
	copies    []sketch.Sketch[T]
	active    int
	published []int64
}

var _ sketch.Sketch[int64] = (*Sketch[int64])(nil)

// New returns a meta-sketch of g copies built by build over u. Copy i is
// seeded DeriveSeed(seed, i) from the root seed (WithSeed).
func New[T any](u sketch.Universe[T], g int, build Builder[T], opts ...Option) (*Sketch[T], error) {
	if u == nil {
		return nil, sketch.ErrNilUniverse
	}
	if u.Size() < 1 {
		return nil, fmt.Errorf("%w: size %d", sketch.ErrBadUniverse, u.Size())
	}
	if g < 1 {
		return nil, fmt.Errorf("%w: G=%d", ErrBadCopies, g)
	}
	if build == nil {
		return nil, ErrNilBuilder
	}
	c := config{seed: sketch.DefaultSeed, mode: ModeUnion}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	s := &Sketch[T]{u: u, build: build, mode: c.mode}
	copies, err := s.buildCopies(g, c.seed)
	if err != nil {
		return nil, err
	}
	s.copies, s.seed = copies, c.seed
	return s, nil
}

// buildCopies constructs g fresh copies under root seed seed.
func (s *Sketch[T]) buildCopies(g int, seed uint64) ([]sketch.Sketch[T], error) {
	copies := make([]sketch.Sketch[T], g)
	for i := range copies {
		c, err := s.build(s.u, DeriveSeed(seed, i))
		if err != nil {
			return nil, fmt.Errorf("switching: building copy %d: %w", i, err)
		}
		if c == nil {
			return nil, fmt.Errorf("%w: builder returned nil for copy %d", sketch.ErrNilSketch, i)
		}
		copies[i] = c
	}
	return copies, nil
}

// G returns the copy count.
func (s *Sketch[T]) G() int { return len(s.copies) }

// Active returns the index of the copy currently receiving the stream.
func (s *Sketch[T]) Active() int { return s.active }

// Remaining returns how many fresh copies are left after the active one.
func (s *Sketch[T]) Remaining() int { return len(s.copies) - 1 - s.active }

// Mode returns the query mode.
func (s *Sketch[T]) Mode() Mode { return s.mode }

// Seed returns the root seed the per-copy seeds derive from.
func (s *Sketch[T]) Seed() uint64 { return s.seed }

// Offer implements sketch.Sketch, feeding the active copy. The admission
// bit refers to the active copy's sample; robustness against adaptive
// adversaries additionally requires that they observe only Published —
// the [BJWY20] model hides within-epoch feedback, unlike the oversampling
// model, which tolerates full disclosure.
func (s *Sketch[T]) Offer(x T) (bool, error) { return s.copies[s.active].Offer(x) }

// OfferBatch implements sketch.Sketch, feeding the active copy. The batch
// is atomic against encoding errors, inherited from the wrapped sketch.
//
//robust:hotpath
func (s *Sketch[T]) OfferBatch(xs []T) (int, error) { return s.copies[s.active].OfferBatch(xs) }

// Advance freezes the published output at the current state and moves
// ingest to the next fresh copy. It reports whether a fresh copy was
// available: once all G copies are spent the meta-sketch stays on the last
// copy (still re-publishing on every call) and returns false — size G to
// the number of epochs ([BJWY20] Theorem: G = number of output changes).
func (s *Sketch[T]) Advance() bool {
	s.publish()
	if s.active+1 < len(s.copies) {
		s.active++
		return true
	}
	return false
}

// publish recaptures the frozen output from the current query view.
func (s *Sketch[T]) publish() { s.published = s.encodedView(nil) }

// encodedView appends the mode-selected sample as universe points.
func (s *Sketch[T]) encodedView(buf []int64) []int64 {
	if s.mode == ModeActive {
		return s.appendEncoded(buf, s.copies[s.active])
	}
	for _, c := range s.copies {
		buf = s.appendEncoded(buf, c)
	}
	return buf
}

func (s *Sketch[T]) appendEncoded(buf []int64, c sketch.Sketch[T]) []int64 {
	for _, x := range c.View() {
		p, err := s.u.Encode(x)
		if err != nil {
			panic(fmt.Sprintf("switching: sample holds unencodable element: %v", err))
		}
		buf = append(buf, p)
	}
	return buf
}

// decodeAll decodes universe points produced by Encode.
func (s *Sketch[T]) decodeAll(ps []int64) []T {
	out := make([]T, len(ps))
	for i, p := range ps {
		x, err := s.u.Decode(p)
		if err != nil {
			panic(fmt.Sprintf("switching: sample holds undecodable point %d: %v", p, err))
		}
		out[i] = x
	}
	return out
}

// Published returns the frozen output: the sample as of the last Advance
// (nil before the first). Between Advances it never changes — the property
// that denies adaptive adversaries within-epoch feedback.
func (s *Sketch[T]) Published() []T { return s.decodeAll(s.published) }

// PublishedLen returns the frozen output's size without decoding it.
func (s *Sketch[T]) PublishedLen() int { return len(s.published) }

// QueryPublished returns the density of [lo, hi] in the frozen output,
// sketch.ErrEmpty before the first Advance — the query surface to expose
// to untrusted/adaptive clients.
func (s *Sketch[T]) QueryPublished(lo, hi T) (float64, error) {
	elo, ehi, err := s.encodedRange(lo, hi)
	if err != nil {
		return 0, err
	}
	return rangeDensity(s.published, elo, ehi)
}

// View implements sketch.Sketch: the union of all copies' samples in copy
// order (ModeUnion) or the active copy's sample (ModeActive). This is the
// live analyst view; adaptive clients should see Published instead.
func (s *Sketch[T]) View() []T { return s.decodeAll(s.encodedView(nil)) }

// CopyView returns copy i's current sample.
func (s *Sketch[T]) CopyView(i int) ([]T, error) {
	if i < 0 || i >= len(s.copies) {
		return nil, fmt.Errorf("%w: %d of G=%d", ErrBadCopyIndex, i, len(s.copies))
	}
	return s.copies[i].View(), nil
}

// CopyRounds returns how many elements copy i has ingested.
func (s *Sketch[T]) CopyRounds(i int) (int, error) {
	if i < 0 || i >= len(s.copies) {
		return 0, fmt.Errorf("%w: %d of G=%d", ErrBadCopyIndex, i, len(s.copies))
	}
	return s.copies[i].Rounds(), nil
}

// Len implements sketch.Sketch for the mode-selected view.
func (s *Sketch[T]) Len() int {
	if s.mode == ModeActive {
		return s.copies[s.active].Len()
	}
	n := 0
	for _, c := range s.copies {
		n += c.Len()
	}
	return n
}

// Rounds implements sketch.Sketch: the total elements offered across all
// copies (the whole stream, regardless of mode).
func (s *Sketch[T]) Rounds() int {
	n := 0
	for _, c := range s.copies {
		n += c.Rounds()
	}
	return n
}

func (s *Sketch[T]) encodedRange(lo, hi T) (elo, ehi int64, err error) {
	elo, err = s.u.Encode(lo)
	if err != nil {
		return 0, 0, err
	}
	ehi, err = s.u.Encode(hi)
	if err != nil {
		return 0, 0, err
	}
	if elo > ehi {
		return 0, 0, fmt.Errorf("%w: lo sorts after hi", sketch.ErrBadRange)
	}
	return elo, ehi, nil
}

func rangeDensity(sample []int64, elo, ehi int64) (float64, error) {
	if len(sample) == 0 {
		return 0, sketch.ErrEmpty
	}
	in := 0
	for _, p := range sample {
		if p >= elo && p <= ehi {
			in++
		}
	}
	return float64(in) / float64(len(sample)), nil
}

// Query implements sketch.Sketch over the mode-selected live view.
func (s *Sketch[T]) Query(lo, hi T) (float64, error) {
	elo, ehi, err := s.encodedRange(lo, hi)
	if err != nil {
		return 0, err
	}
	return rangeDensity(s.encodedView(nil), elo, ehi)
}

// MergeFrom implements sketch.Sketch: copy-wise fan-in of another
// meta-sketch with the same G, mode and universe size — copy i absorbs the
// other's copy i under the wrapped sketch's own merge semantics, the
// active index advances to the later of the two, and the published output
// is refreshed (a merge is a coordinator epoch event). Merging a
// meta-sketch into itself reports ErrIncompatible. On a mid-merge error
// from a wrapped copy the receiver is partially merged; Reset recovers a
// usable empty meta-sketch.
func (s *Sketch[T]) MergeFrom(other sketch.Sketch[T]) error {
	o, ok := other.(*Sketch[T])
	if !ok {
		return fmt.Errorf("%w: cannot merge %T into *switching.Sketch", sketch.ErrIncompatible, other)
	}
	if o == s {
		return fmt.Errorf("%w: cannot merge a meta-sketch into itself", sketch.ErrIncompatible)
	}
	if s.u.Size() != o.u.Size() {
		return fmt.Errorf("%w: universe sizes %d and %d", sketch.ErrIncompatible, s.u.Size(), o.u.Size())
	}
	if len(s.copies) != len(o.copies) {
		return fmt.Errorf("%w: copy counts %d and %d", sketch.ErrIncompatible, len(s.copies), len(o.copies))
	}
	if s.mode != o.mode {
		return fmt.Errorf("%w: modes %d and %d", sketch.ErrIncompatible, s.mode, o.mode)
	}
	for i := range s.copies {
		if err := s.copies[i].MergeFrom(o.copies[i]); err != nil {
			return fmt.Errorf("switching: merging copy %d: %w", i, err)
		}
	}
	if o.active > s.active {
		s.active = o.active
	}
	s.publish()
	return nil
}

// Reset implements sketch.Sketch: every copy resets to its derived seed,
// ingest returns to copy 0, and the published output clears.
func (s *Sketch[T]) Reset() {
	for _, c := range s.copies {
		c.Reset()
	}
	s.active = 0
	s.published = nil
}

// Snapshot implements sketch.Sketch: a FrameSwitching frame holding the
// root seed, mode, copy count, active index, the frozen output and each
// copy's own versioned snapshot, length-prefixed. Deterministic: equal
// states serialize to equal bytes.
func (s *Sketch[T]) Snapshot() ([]byte, error) {
	buf := sketch.AppendFrameHeader(nil, sketch.FrameSwitching)
	buf = snapshot.AppendInt64(buf, s.u.Size())
	buf = snapshot.AppendUint64(buf, s.seed)
	buf = snapshot.AppendUint64(buf, uint64(s.mode))
	buf = snapshot.AppendUint64(buf, uint64(len(s.copies)))
	buf = snapshot.AppendUint64(buf, uint64(s.active))
	buf = snapshot.AppendInt64Slice(buf, s.published)
	for i, c := range s.copies {
		inner, err := c.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("switching: snapshotting copy %d: %w", i, err)
		}
		buf = snapshot.AppendBytes(buf, inner)
	}
	return buf, nil
}

// Restore implements sketch.Sketch. The snapshot's configuration (root
// seed, mode, copy count, active index) replaces the receiver's; copies
// are rebuilt through the builder and restored from their embedded
// snapshots, so a snapshot taken with a different G restores cleanly.
// Restore is atomic: on any error the receiver is unchanged.
func (s *Sketch[T]) Restore(data []byte) error {
	r, err := sketch.ReadFrameHeader(data, sketch.FrameSwitching)
	if err != nil {
		return err
	}
	size := r.Int64()
	seed := r.Uint64()
	mode := r.Uint64()
	g := r.Uint64()
	active := r.Uint64()
	published := r.Int64Slice()
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", sketch.ErrBadSnapshot, err)
	}
	if size != s.u.Size() {
		return fmt.Errorf("%w: snapshot universe size %d, sketch has %d", sketch.ErrBadSnapshot, size, s.u.Size())
	}
	if mode != uint64(ModeUnion) && mode != uint64(ModeActive) {
		return fmt.Errorf("%w: unknown mode %d", sketch.ErrBadSnapshot, mode)
	}
	// Each copy snapshot is at least a length prefix; an implausibly large
	// G against the remaining bytes is corruption, not an allocation order.
	if g < 1 || g > uint64(r.Len()/8)+1 {
		return fmt.Errorf("%w: copy count %d", sketch.ErrBadSnapshot, g)
	}
	if active >= g {
		return fmt.Errorf("%w: active copy %d of %d", sketch.ErrBadSnapshot, active, g)
	}
	for _, p := range published {
		if p < 1 || p > size {
			return fmt.Errorf("%w: published point %d outside universe [1, %d]", sketch.ErrBadSnapshot, p, size)
		}
	}
	copies := make([]sketch.Sketch[T], g)
	for i := range copies {
		blob := r.Bytes()
		if err := r.Err(); err != nil {
			return fmt.Errorf("%w: copy %d: %v", sketch.ErrBadSnapshot, i, err)
		}
		c, err := s.build(s.u, DeriveSeed(seed, i))
		if err != nil {
			return fmt.Errorf("switching: rebuilding copy %d: %w", i, err)
		}
		if c == nil {
			return fmt.Errorf("%w: builder returned nil for copy %d", sketch.ErrNilSketch, i)
		}
		// The wrapped Restore validates its own frame kind, so a snapshot
		// whose copies came from a different sketch type is rejected here.
		if err := c.Restore(blob); err != nil {
			return fmt.Errorf("switching: restoring copy %d: %w", i, err)
		}
		copies[i] = c
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", sketch.ErrBadSnapshot, r.Len())
	}
	s.copies, s.seed, s.mode, s.active, s.published = copies, seed, Mode(mode), int(active), published
	return nil
}

// Rotator adapts Advance-style rotation to the serving runtime's
// epoch-stamped barriers: the returned hook calls advance once per `every`
// distinct barrier sequence numbers it observes (every < 1 selects 1).
// Wire it as
//
//	rot := switching.Rotator(1, func() { c.Do(func(sketch.Sketch[T]) { sw.Advance() }) })
//	shard.WithPipeline(shard.PipelineConfig{OnEpoch: func(ep shard.Epoch) { rot(ep.Seq) }})
//
// where c is a sketch.Concurrent guarding sw. The hook is safe for
// concurrent use (barriers may be taken from many goroutines) and dedupes
// repeated sequence numbers, so idempotent barriers (Close after Flush)
// do not double-rotate.
func Rotator(every uint64, advance func()) func(seq uint64) {
	if every < 1 {
		every = 1
	}
	var (
		mu      sync.Mutex
		started bool
		lastSeq uint64
		seen    uint64
	)
	return func(seq uint64) {
		mu.Lock()
		defer mu.Unlock()
		if started && seq == lastSeq {
			return
		}
		started = true
		lastSeq = seq
		seen++
		if seen%every == 0 {
			advance()
		}
	}
}
