package sketch_test

import (
	"fmt"

	"robustsample/sketch"
)

// Example maintains a robust sample of a string-typed stream: the paper's
// guarantees are statements about an abstract ordered universe, so a
// vocabulary universe is exactly as robust as an integer one.
func Example() {
	u, err := sketch.NewStringUniverse("get", "put", "delete", "scan", "batch")
	if err != nil {
		panic(err)
	}
	s, err := sketch.NewReservoir(u, 64, sketch.WithSeed(42))
	if err != nil {
		panic(err)
	}

	ops := []string{"get", "get", "put", "get", "scan", "get", "put", "delete"}
	for i := 0; i < 8; i++ {
		if _, err := s.OfferBatch(ops); err != nil {
			panic(err)
		}
	}

	// Capacity exceeds the stream here, so densities are exact.
	d, err := s.Query("get", "get")
	if err != nil {
		panic(err)
	}
	fmt.Printf("rounds=%d sample=%d density(get)=%.3f\n", s.Rounds(), s.Len(), d)

	// Out-of-vocabulary values are rejected with a sentinel, not a panic.
	_, err = s.Offer("drop")
	fmt.Println("offer(drop):", err != nil)
	// Output:
	// rounds=64 sample=64 density(get)=0.500
	// offer(drop): true
}

// ExampleSketch_snapshot checkpoints a sketch mid-stream and resumes the
// restored copy: the RNG state travels with the snapshot, so the copy
// continues bit-identically.
func ExampleSketch_snapshot() {
	u, _ := sketch.NewInt64Universe(1 << 20)
	s, _ := sketch.NewReservoir(u, 8, sketch.WithSeed(7))
	for x := int64(1); x <= 1000; x++ {
		s.Offer(x)
	}

	snap, _ := s.Snapshot()
	restored, _ := sketch.NewReservoir(u, 8) // configuration comes from the snapshot
	if err := restored.Restore(snap); err != nil {
		panic(err)
	}

	for x := int64(1001); x <= 2000; x++ {
		a, _ := s.Offer(x)
		b, _ := restored.Offer(x)
		if a != b {
			panic("diverged")
		}
	}
	same := fmt.Sprint(s.View()) == fmt.Sprint(restored.View())
	fmt.Printf("snapshot=%dB identical-continuation=%v\n", len(snap), same)
	// Output:
	// snapshot=126B identical-continuation=true
}

// ExampleReservoir_MergeFrom fans two per-site samples into one sample of
// the union stream — the [CTW16] coordinator primitive behind distributed
// robust sampling.
func ExampleReservoir_MergeFrom() {
	u, _ := sketch.NewInt64Universe(1 << 16)
	siteA, _ := sketch.NewReservoir(u, 16, sketch.WithSeed(3))
	siteB, _ := sketch.NewReservoir(u, 16, sketch.WithSeed(4))
	for x := int64(1); x <= 3000; x++ {
		siteA.Offer(x)        // site A sees low values
		siteB.Offer(x + 3000) // site B sees high values
	}

	if err := siteA.MergeFrom(siteB); err != nil {
		panic(err)
	}
	low := 0
	for _, x := range siteA.View() {
		if x <= 3000 {
			low++
		}
	}
	fmt.Printf("union rounds=%d sample=%d low-site share=%d/16\n",
		siteA.Rounds(), siteA.Len(), low)
	// Output:
	// union rounds=6000 sample=16 low-site share=8/16
}
