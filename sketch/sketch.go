// Package sketch is the unified public surface for the adversarially robust
// samplers of "The Adversarial Robustness of Sampling" (Ben-Eliezer &
// Yogev, PODS 2020): one generic, mergeable, serializable Sketch[T]
// interface over every sampling algorithm the paper analyzes.
//
// A sketch is generic over its element type T through a Universe[T] codec
// that maps values onto the ordered integer universe [1, N] of the paper's
// analysis — robustness theorems transfer verbatim, because they are
// statements about the encoded order, not about int64. Four implementations
// are provided:
//
//   - Reservoir[T]   — Vitter's Algorithm R, the paper's ReservoirSample.
//   - ReservoirL[T]  — Vitter's Algorithm L: same sample distribution,
//     O(k log(n/k)) random draws (the high-throughput variant).
//   - Bernoulli[T]   — BernoulliSample: independent rate-p admission.
//   - Weighted[T]    — Efraimidis-Spirakis A-Res weighted reservoir
//     (Section 1.3).
//
// Every sketch is:
//
//   - Mergeable: MergeFrom folds another sketch's state in, implementing
//     the [CTW16]/[CMYZ12] coordinator fan-in (uniform merge for
//     reservoirs, union for Bernoulli, key-union for weighted).
//   - Serializable: Snapshot/Restore round-trip the complete state —
//     sample, counters and RNG — through a versioned deterministic binary
//     encoding, so a sketch can be checkpointed, migrated across processes
//     and merged at a coordinator. Snapshotting a restored sketch
//     reproduces the original bytes bit for bit.
//   - Validated: constructors return sentinel errors (ErrBadMemory,
//     ErrBadRate, ...) instead of panicking.
//
// Randomness is owned by the sketch: constructors seed a deterministic
// splittable RNG (WithSeed), so equal seeds and equal streams produce equal
// samples — the reproducibility contract the rest of the repository keeps.
//
// The packages robustsample/quantile, robustsample/topk and
// robustsample/shard build the paper's applications (Corollary 1.5,
// Corollary 1.6, distributed sampling) on top of this interface.
package sketch

import (
	"errors"
	"fmt"

	"robustsample/internal/snapshot"
)

// Sentinel errors returned by constructors, offers and codecs. Wrapped
// errors carry context; test with errors.Is.
var (
	// ErrNilUniverse reports a nil Universe.
	ErrNilUniverse = errors.New("sketch: universe must be non-nil")
	// ErrNilSketch reports a nil Sketch where one is required (NewConcurrent).
	ErrNilSketch = errors.New("sketch: wrapped sketch must be non-nil")
	// ErrBadUniverse reports an unusable universe definition.
	ErrBadUniverse = errors.New("sketch: invalid universe")
	// ErrBadMemory reports a sample capacity below 1.
	ErrBadMemory = errors.New("sketch: memory k must be >= 1")
	// ErrBadRate reports a Bernoulli rate outside [0, 1].
	ErrBadRate = errors.New("sketch: Bernoulli rate must be in [0, 1]")
	// ErrBadParams reports an invalid (eps, delta, n) robustness target.
	ErrBadParams = errors.New("sketch: need 0 < eps < 1, 0 < delta < 1 and n >= 1")
	// ErrOutOfUniverse reports a value or point outside the universe.
	ErrOutOfUniverse = errors.New("sketch: value outside the universe")
	// ErrBadRange reports a Query range whose lo sorts after hi.
	ErrBadRange = errors.New("sketch: invalid query range")
	// ErrIncompatible reports a merge or restore between sketches with
	// different types or configurations.
	ErrIncompatible = errors.New("sketch: incompatible sketches")
	// ErrUnsupportedMerge reports a sketch type that cannot merge without
	// bias (Algorithm L's skip state is not mergeable).
	ErrUnsupportedMerge = errors.New("sketch: sketch type does not support MergeFrom")
	// ErrBadSnapshot reports a corrupt, truncated or mismatched snapshot.
	ErrBadSnapshot = errors.New("sketch: corrupt or incompatible snapshot")
	// ErrEmpty reports a query that needs a non-empty sketch.
	ErrEmpty = errors.New("sketch: empty sketch")
)

// Sketch is the unified streaming-sample interface. All implementations in
// this module are deterministic given their seed and input, not safe for
// concurrent use, and O(1) amortized per offered element.
type Sketch[T any] interface {
	// Offer processes the next stream element, reporting whether it
	// entered the sample. The admission bit is precisely what the paper's
	// adaptive adversary observes, so exposing it costs nothing in the
	// adversarial model — the robustness guarantees already assume the
	// adversary sees the whole sample.
	Offer(x T) (admitted bool, err error)
	// OfferBatch processes a run of consecutive elements, returning how
	// many were admitted. Results never depend on how a stream is sliced
	// into batches. If any element is outside the universe the batch is
	// rejected atomically: no element is ingested.
	OfferBatch(xs []T) (admitted int, err error)
	// View returns the current sample, decoded. The slice is freshly
	// allocated; mutating it does not affect the sketch.
	View() []T
	// Len returns the current sample size.
	Len() int
	// Rounds returns the number of elements offered so far (after a
	// merge: the combined stream length the sample represents).
	Rounds() int
	// Query returns the sample density of the closed range [lo, hi] in
	// universe order — the quantity d_R(S) that Definition 1.1 guarantees
	// tracks the stream density within eps for a robustly sized sketch.
	Query(lo, hi T) (float64, error)
	// MergeFrom folds other's state into the receiver, after which the
	// receiver represents the concatenation of both streams ([CTW16]
	// fan-in). The argument must be the same concrete type over the same
	// universe; it is not modified.
	MergeFrom(other Sketch[T]) error
	// Reset clears the sketch for a fresh stream and reseeds its RNG from
	// the configured seed.
	Reset()
	// Snapshot serializes the complete sketch state (sample, counters,
	// RNG) as a versioned deterministic byte string.
	Snapshot() ([]byte, error)
	// Restore replaces the sketch's state with a snapshot produced by the
	// same sketch type over a same-size universe. Configuration carried
	// in the snapshot (capacity, rate) replaces the receiver's.
	Restore(data []byte) error
}

// DefaultSeed seeds sketches built without WithSeed.
const DefaultSeed uint64 = 1

type config struct {
	seed uint64
}

// Option configures a sketch constructor.
type Option func(*config) error

// WithSeed sets the deterministic RNG seed (default DefaultSeed). Two
// sketches with equal configuration, seed and input streams hold identical
// samples.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

func applyOptions(opts []Option) (config, error) {
	c := config{seed: DefaultSeed}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&c); err != nil {
			return c, err
		}
	}
	return c, nil
}

// Snapshot frame layout shared by every codec in the public surface:
// 4 magic bytes, 1 version byte, 1 kind byte, then the universe size and
// the type-specific payload.
const (
	snapVersion = 1

	kindBernoulli  = 1
	kindReservoir  = 2
	kindReservoirL = 3
	kindWeighted   = 5
)

// Frame kinds 16+ are claimed by the application packages layering on top
// of this one, so every snapshot frame in the module is self-describing.
const (
	// FrameQuantile tags robustsample/quantile snapshots.
	FrameQuantile byte = 16
	// FrameTopK tags robustsample/topk snapshots.
	FrameTopK byte = 17
	// FrameShard tags robustsample/shard engine snapshots.
	FrameShard byte = 18
	// FrameSwitching tags robustsample/switching meta-sketch snapshots.
	FrameSwitching byte = 19
	// FrameFarm tags robustsample/farm whole-farm snapshots.
	FrameFarm byte = 20
	// FrameFarmTenant tags robustsample/farm single-tenant snapshots.
	FrameFarmTenant byte = 21
)

var snapMagic = [4]byte{'R', 'S', 'K', 'T'}

// AppendFrameHeader appends the shared snapshot frame header. It is exported
// for the application packages (quantile, topk, shard) that extend the
// format; ordinary users never call it.
func AppendFrameHeader(buf []byte, kind byte) []byte {
	buf = append(buf, snapMagic[:]...)
	return append(buf, snapVersion, kind)
}

// ReadFrameHeader validates the shared frame header and returns a reader
// positioned at the payload. Like AppendFrameHeader it exists for the
// application packages.
func ReadFrameHeader(data []byte, wantKind byte) (*snapshot.Reader, error) {
	if len(data) < 6 || [4]byte(data[:4]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if data[4] != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, data[4])
	}
	if data[5] != wantKind {
		return nil, fmt.Errorf("%w: snapshot kind %d, want %d", ErrBadSnapshot, data[5], wantKind)
	}
	return snapshot.NewReader(data[6:]), nil
}

// FrameKind reports the kind byte of a snapshot without decoding it, so
// dispatchers can route frames to the right sketch type.
func FrameKind(data []byte) (byte, error) {
	if len(data) < 6 || [4]byte(data[:4]) != snapMagic {
		return 0, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	return data[5], nil
}
