package sketch

import (
	"fmt"
	"math"

	"robustsample/internal/core"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/snapshot"
)

// base carries what every sketch shares: the universe codec, the owned RNG
// and the seed it Resets to, plus a reusable encode buffer for batches.
type base[T any] struct {
	u      Universe[T]
	seed   uint64
	rng    *rng.RNG
	encBuf []int64
}

func newBase[T any](u Universe[T], opts []Option) (base[T], error) {
	var b base[T]
	if u == nil {
		return b, ErrNilUniverse
	}
	if u.Size() < 1 {
		return b, fmt.Errorf("%w: size %d", ErrBadUniverse, u.Size())
	}
	c, err := applyOptions(opts)
	if err != nil {
		return b, err
	}
	return base[T]{u: u, seed: c.seed, rng: rng.New(c.seed)}, nil
}

func (b *base[T]) reset() { b.rng = rng.New(b.seed) }

// encodeBatch encodes xs into a buffer reused across calls; it fails before
// any ingest if any element is outside the universe (atomic batches).
func (b *base[T]) encodeBatch(xs []T) ([]int64, error) {
	buf := b.encBuf[:0]
	for _, x := range xs {
		p, err := b.u.Encode(x)
		if err != nil {
			return nil, err
		}
		buf = append(buf, p)
	}
	b.encBuf = buf
	return buf, nil
}

// decodeAll decodes a sample of encoded points. Points in a sample were
// produced by Encode, so Decode failing is an invariant violation.
func (b *base[T]) decodeAll(ps []int64) []T {
	out := make([]T, len(ps))
	for i, p := range ps {
		x, err := b.u.Decode(p)
		if err != nil {
			panic(fmt.Sprintf("sketch: sample holds undecodable point %d: %v", p, err))
		}
		out[i] = x
	}
	return out
}

// encodedRange validates and encodes a query range.
func (b *base[T]) encodedRange(lo, hi T) (elo, ehi int64, err error) {
	elo, err = b.u.Encode(lo)
	if err != nil {
		return 0, 0, err
	}
	ehi, err = b.u.Encode(hi)
	if err != nil {
		return 0, 0, err
	}
	if elo > ehi {
		return 0, 0, fmt.Errorf("%w: lo sorts after hi", ErrBadRange)
	}
	return elo, ehi, nil
}

// rangeDensity returns the fraction of sample points in [elo, ehi].
func rangeDensity(sample []int64, elo, ehi int64) (float64, error) {
	if len(sample) == 0 {
		return 0, ErrEmpty
	}
	in := 0
	for _, p := range sample {
		if p >= elo && p <= ehi {
			in++
		}
	}
	return float64(in) / float64(len(sample)), nil
}

// appendSnapHeader appends the frame header, universe size and RNG state.
func (b *base[T]) appendSnapHeader(buf []byte, kind byte) []byte {
	buf = AppendFrameHeader(buf, kind)
	buf = snapshot.AppendInt64(buf, b.u.Size())
	hi, lo := b.rng.State()
	buf = snapshot.AppendUint64(buf, hi)
	return snapshot.AppendUint64(buf, lo)
}

// readSnapHeader validates the header and returns the payload reader plus
// the snapshotted RNG state, which the caller applies only after the
// payload decodes.
func (b *base[T]) readSnapHeader(data []byte, kind byte) (r *snapshot.Reader, hi, lo uint64, err error) {
	r, err = ReadFrameHeader(data, kind)
	if err != nil {
		return nil, 0, 0, err
	}
	size := r.Int64()
	hi = r.Uint64()
	lo = r.Uint64()
	if err := r.Err(); err != nil {
		return nil, 0, 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if size != b.u.Size() {
		return nil, 0, 0, fmt.Errorf("%w: snapshot universe size %d, sketch has %d", ErrBadSnapshot, size, b.u.Size())
	}
	return r, hi, lo, nil
}

// finishRestore validates the restored sample against the universe,
// applies the RNG state and rejects trailing bytes. Point validation is
// load-bearing: a corrupt snapshot whose counters decode cleanly can still
// carry sample points no Decode can invert, and without this check the
// corruption would surface later as a View panic instead of an
// ErrBadSnapshot at the restore boundary (found by FuzzSwitchingSnapshot).
//
//robust:universe-check
func (b *base[T]) finishRestore(r *snapshot.Reader, hi, lo uint64, sample []int64) error {
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, r.Len())
	}
	for _, p := range sample {
		if p < 1 || p > b.u.Size() {
			return fmt.Errorf("%w: sample point %d outside universe [1, %d]", ErrBadSnapshot, p, b.u.Size())
		}
	}
	b.rng.SetState(hi, lo)
	return nil
}

func validateParams(eps, delta float64, n int) error {
	if !(eps > 0 && eps < 1) || !(delta > 0 && delta < 1) || n < 1 {
		return fmt.Errorf("%w: eps=%v delta=%v n=%d", ErrBadParams, eps, delta, n)
	}
	return nil
}

// sameUniverse gates merges: sketches must agree on the universe size (the
// codec itself is caller-supplied and cannot be compared structurally; size
// equality catches every accidental mismatch the encoding can detect).
func sameUniverse[T any](a, b *base[T]) error {
	if a.u.Size() != b.u.Size() {
		return fmt.Errorf("%w: universe sizes %d and %d", ErrIncompatible, a.u.Size(), b.u.Size())
	}
	return nil
}

// ---------------------------------------------------------------------------
// Reservoir (Algorithm R)

// Reservoir is the paper's ReservoirSample (Vitter's Algorithm R) over an
// arbitrary ordered universe: a uniform without-replacement sample of fixed
// capacity. Sized per Theorem 1.2 (NewRobustReservoir) it is an
// (eps, delta)-approximation against fully adaptive adversaries.
type Reservoir[T any] struct {
	base  base[T]
	inner *sampler.Reservoir[int64]
}

var _ Sketch[int64] = (*Reservoir[int64])(nil)

// NewReservoir returns a reservoir sketch of capacity k over u.
func NewReservoir[T any](u Universe[T], k int, opts ...Option) (*Reservoir[T], error) {
	b, err := newBase(u, opts)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadMemory, k)
	}
	return &Reservoir[T]{base: b, inner: sampler.NewReservoir[int64](k)}, nil
}

// NewRobustReservoir returns a reservoir sized per Theorem 1.2 for the
// prefix system over u — k = ceil(2 (ln|U| + ln(2/delta)) / eps^2) — the
// size at which the sample is an (eps, delta)-approximation of any
// adaptively chosen stream of length n (and the sizing of the quantile
// application, Corollary 1.5).
func NewRobustReservoir[T any](u Universe[T], eps, delta float64, n int, opts ...Option) (*Reservoir[T], error) {
	if err := validateParams(eps, delta, n); err != nil {
		return nil, err
	}
	if u == nil {
		return nil, ErrNilUniverse
	}
	k := core.ReservoirSize(core.Params{Eps: eps, Delta: delta, N: n}, math.Log(float64(u.Size())))
	return NewReservoir(u, k, opts...)
}

// NewContinuousRobustReservoir sizes the reservoir per Theorem 1.4, making
// the sample an eps-approximation at every prefix of the stream
// simultaneously (with probability 1-delta).
func NewContinuousRobustReservoir[T any](u Universe[T], eps, delta float64, n int, opts ...Option) (*Reservoir[T], error) {
	if err := validateParams(eps, delta, n); err != nil {
		return nil, err
	}
	if u == nil {
		return nil, ErrNilUniverse
	}
	k := core.ContinuousReservoirSize(core.Params{Eps: eps, Delta: delta, N: n}, math.Log(float64(u.Size())))
	return NewReservoir(u, k, opts...)
}

// K returns the reservoir capacity.
func (s *Reservoir[T]) K() int { return s.inner.K }

// TotalAdmitted returns k', the number of elements ever admitted (Section 5
// bounds E[k'] <= 2k ln n under any adaptive attack).
func (s *Reservoir[T]) TotalAdmitted() int { return s.inner.TotalAdmitted() }

// Offer implements Sketch.
func (s *Reservoir[T]) Offer(x T) (bool, error) {
	p, err := s.base.u.Encode(x)
	if err != nil {
		return false, err
	}
	return s.inner.Offer(p, s.base.rng), nil
}

// OfferBatch implements Sketch; the batch draws randomness bit-identically
// to per-element Offers.
func (s *Reservoir[T]) OfferBatch(xs []T) (int, error) {
	ps, err := s.base.encodeBatch(xs)
	if err != nil {
		return 0, err
	}
	return s.inner.OfferBatch(ps, s.base.rng), nil
}

// View implements Sketch.
func (s *Reservoir[T]) View() []T { return s.base.decodeAll(s.inner.View()) }

// EncodedView returns the sample as universe points without copying;
// callers must not mutate it. This is what the discrepancy engines consume.
func (s *Reservoir[T]) EncodedView() []int64 { return s.inner.View() }

// Len implements Sketch.
func (s *Reservoir[T]) Len() int { return s.inner.Len() }

// Rounds implements Sketch.
func (s *Reservoir[T]) Rounds() int { return s.inner.Rounds() }

// Query implements Sketch.
func (s *Reservoir[T]) Query(lo, hi T) (float64, error) {
	elo, ehi, err := s.base.encodedRange(lo, hi)
	if err != nil {
		return 0, err
	}
	return rangeDensity(s.inner.View(), elo, ehi)
}

// MergeFrom implements Sketch: the receiver becomes a uniform sample of the
// concatenated streams, drawn from the two samples alone by
// population-weighted interleaving (sampler.MergeSamples, the
// [CTW16]/[CMYZ12] coordinator primitive).
//
// The two samples must together supply min(K, combined rounds) elements —
// otherwise the merged reservoir would sit under-full against an
// over-full round count and admit subsequent offers with the wrong
// probability; such a merge (the donor's capacity was too small for its
// stream) reports ErrIncompatible and leaves the receiver unchanged.
func (s *Reservoir[T]) MergeFrom(other Sketch[T]) error {
	o, ok := other.(*Reservoir[T])
	if !ok {
		return fmt.Errorf("%w: cannot merge %T into *Reservoir", ErrIncompatible, other)
	}
	if err := sameUniverse(&s.base, &o.base); err != nil {
		return err
	}
	rounds := s.inner.Rounds() + o.inner.Rounds()
	k := min(s.inner.K, rounds)
	if s.inner.Len()+o.inner.Len() < k {
		return fmt.Errorf("%w: samples supply %d elements, need %d (merge a reservoir of capacity >= %d)",
			ErrIncompatible, s.inner.Len()+o.inner.Len(), k, s.inner.K)
	}
	merged := sampler.MergeSamples(s.inner.View(), s.inner.Rounds(), o.inner.View(), o.inner.Rounds(), k, s.base.rng)
	s.inner.SetMergedState(merged, rounds, s.inner.TotalAdmitted()+o.inner.TotalAdmitted())
	return nil
}

// Reset implements Sketch.
func (s *Reservoir[T]) Reset() {
	s.inner.Reset()
	s.base.reset()
}

// Snapshot implements Sketch.
func (s *Reservoir[T]) Snapshot() ([]byte, error) {
	buf := s.base.appendSnapHeader(nil, kindReservoir)
	return sampler.AppendReservoirState(buf, s.inner), nil
}

// Restore implements Sketch. On error the sketch state is unspecified;
// Reset recovers a usable empty sketch.
func (s *Reservoir[T]) Restore(data []byte) error {
	r, hi, lo, err := s.base.readSnapHeader(data, kindReservoir)
	if err != nil {
		return err
	}
	if err := sampler.LoadReservoirState(r, s.inner); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return s.base.finishRestore(r, hi, lo, s.inner.View())
}

// ---------------------------------------------------------------------------
// ReservoirL (Algorithm L)

// ReservoirL is Vitter's Algorithm L: the same sample distribution (and the
// same adversarial robustness — admissions are value-oblivious) as
// Reservoir at O(k log(n/k)) expected random draws, the variant to deploy
// on high-throughput streams. Its skip state is not mergeable without bias,
// so MergeFrom reports ErrUnsupportedMerge; snapshots fully round-trip.
type ReservoirL[T any] struct {
	base  base[T]
	inner *sampler.ReservoirL[int64]
}

var _ Sketch[int64] = (*ReservoirL[int64])(nil)

// NewReservoirL returns an Algorithm L reservoir sketch of capacity k.
func NewReservoirL[T any](u Universe[T], k int, opts ...Option) (*ReservoirL[T], error) {
	b, err := newBase(u, opts)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadMemory, k)
	}
	return &ReservoirL[T]{base: b, inner: sampler.NewReservoirL[int64](k)}, nil
}

// K returns the reservoir capacity.
func (s *ReservoirL[T]) K() int { return s.inner.K }

// Offer implements Sketch.
func (s *ReservoirL[T]) Offer(x T) (bool, error) {
	p, err := s.base.u.Encode(x)
	if err != nil {
		return false, err
	}
	return s.inner.Offer(p, s.base.rng), nil
}

// OfferBatch implements Sketch; pending skips are consumed in one jump, so
// long rejected stretches cost O(1) per batch.
func (s *ReservoirL[T]) OfferBatch(xs []T) (int, error) {
	ps, err := s.base.encodeBatch(xs)
	if err != nil {
		return 0, err
	}
	return s.inner.OfferBatch(ps, s.base.rng), nil
}

// View implements Sketch.
func (s *ReservoirL[T]) View() []T { return s.base.decodeAll(s.inner.View()) }

// EncodedView returns the sample as universe points without copying;
// callers must not mutate it.
func (s *ReservoirL[T]) EncodedView() []int64 { return s.inner.View() }

// Len implements Sketch.
func (s *ReservoirL[T]) Len() int { return s.inner.Len() }

// Rounds implements Sketch.
func (s *ReservoirL[T]) Rounds() int { return s.inner.Rounds() }

// Query implements Sketch.
func (s *ReservoirL[T]) Query(lo, hi T) (float64, error) {
	elo, ehi, err := s.base.encodedRange(lo, hi)
	if err != nil {
		return 0, err
	}
	return rangeDensity(s.inner.View(), elo, ehi)
}

// MergeFrom implements Sketch by reporting ErrUnsupportedMerge: Algorithm
// L's pre-drawn skip schedule cannot absorb another sample without biasing
// future admissions. Use Reservoir when fan-in is needed.
func (s *ReservoirL[T]) MergeFrom(Sketch[T]) error { return ErrUnsupportedMerge }

// Reset implements Sketch.
func (s *ReservoirL[T]) Reset() {
	s.inner.Reset()
	s.base.reset()
}

// Snapshot implements Sketch; the Algorithm L skip machinery is included,
// so a restored sketch continues the exact skip sequence.
func (s *ReservoirL[T]) Snapshot() ([]byte, error) {
	buf := s.base.appendSnapHeader(nil, kindReservoirL)
	return sampler.AppendReservoirLState(buf, s.inner), nil
}

// Restore implements Sketch.
func (s *ReservoirL[T]) Restore(data []byte) error {
	r, hi, lo, err := s.base.readSnapHeader(data, kindReservoirL)
	if err != nil {
		return err
	}
	if err := sampler.LoadReservoirLState(r, s.inner); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return s.base.finishRestore(r, hi, lo, s.inner.View())
}

// ---------------------------------------------------------------------------
// Bernoulli

// Bernoulli is the paper's BernoulliSample: every element admitted
// independently with probability P. Sized per Theorem 1.2
// (NewRobustBernoulli) it is (eps, delta)-robust against adaptive
// adversaries; unlike the reservoirs its memory grows with the stream.
type Bernoulli[T any] struct {
	base  base[T]
	inner *sampler.Bernoulli[int64]
}

var _ Sketch[int64] = (*Bernoulli[int64])(nil)

// NewBernoulli returns a Bernoulli sketch with rate p in [0, 1].
func NewBernoulli[T any](u Universe[T], p float64, opts ...Option) (*Bernoulli[T], error) {
	b, err := newBase(u, opts)
	if err != nil {
		return nil, err
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("%w: p=%v", ErrBadRate, p)
	}
	return &Bernoulli[T]{base: b, inner: sampler.NewBernoulli[int64](p)}, nil
}

// NewRobustBernoulli returns a Bernoulli sketch with the Theorem 1.2 rate
// for the prefix system over u: p = 10 (ln|U| + ln(4/delta)) / (eps^2 n).
func NewRobustBernoulli[T any](u Universe[T], eps, delta float64, n int, opts ...Option) (*Bernoulli[T], error) {
	if err := validateParams(eps, delta, n); err != nil {
		return nil, err
	}
	if u == nil {
		return nil, ErrNilUniverse
	}
	p := core.BernoulliRate(core.Params{Eps: eps, Delta: delta, N: n}, math.Log(float64(u.Size())))
	return NewBernoulli(u, p, opts...)
}

// P returns the admission rate.
func (s *Bernoulli[T]) P() float64 { return s.inner.P }

// Offer implements Sketch.
func (s *Bernoulli[T]) Offer(x T) (bool, error) {
	p, err := s.base.u.Encode(x)
	if err != nil {
		return false, err
	}
	return s.inner.Offer(p, s.base.rng), nil
}

// OfferBatch implements Sketch. The batch path gap-skips rejected
// stretches with one geometric draw per admitted element — O(P·n) RNG work
// — selecting an equally distributed (not bit-identical) sample versus
// per-element Offers.
func (s *Bernoulli[T]) OfferBatch(xs []T) (int, error) {
	ps, err := s.base.encodeBatch(xs)
	if err != nil {
		return 0, err
	}
	return s.inner.OfferBatch(ps, s.base.rng), nil
}

// View implements Sketch.
func (s *Bernoulli[T]) View() []T { return s.base.decodeAll(s.inner.View()) }

// EncodedView returns the sample as universe points without copying;
// callers must not mutate it.
func (s *Bernoulli[T]) EncodedView() []int64 { return s.inner.View() }

// Len implements Sketch.
func (s *Bernoulli[T]) Len() int { return s.inner.Len() }

// Rounds implements Sketch.
func (s *Bernoulli[T]) Rounds() int { return s.inner.Rounds() }

// Query implements Sketch.
func (s *Bernoulli[T]) Query(lo, hi T) (float64, error) {
	elo, ehi, err := s.base.encodedRange(lo, hi)
	if err != nil {
		return 0, err
	}
	return rangeDensity(s.inner.View(), elo, ehi)
}

// MergeFrom implements Sketch. Both sketches must share the admission rate;
// the union of two Bernoulli(p) samples over disjoint streams is exactly a
// Bernoulli(p) sample of the concatenation, so merging is lossless.
func (s *Bernoulli[T]) MergeFrom(other Sketch[T]) error {
	o, ok := other.(*Bernoulli[T])
	if !ok {
		return fmt.Errorf("%w: cannot merge %T into *Bernoulli", ErrIncompatible, other)
	}
	if err := sameUniverse(&s.base, &o.base); err != nil {
		return err
	}
	if s.inner.P != o.inner.P {
		return fmt.Errorf("%w: rates %v and %v", ErrIncompatible, s.inner.P, o.inner.P)
	}
	merged := append(append([]int64(nil), s.inner.View()...), o.inner.View()...)
	s.inner.SetMergedState(merged, s.inner.Rounds()+o.inner.Rounds())
	return nil
}

// Reset implements Sketch.
func (s *Bernoulli[T]) Reset() {
	s.inner.Reset()
	s.base.reset()
}

// Snapshot implements Sketch.
func (s *Bernoulli[T]) Snapshot() ([]byte, error) {
	buf := s.base.appendSnapHeader(nil, kindBernoulli)
	return sampler.AppendBernoulliState(buf, s.inner), nil
}

// Restore implements Sketch.
func (s *Bernoulli[T]) Restore(data []byte) error {
	r, hi, lo, err := s.base.readSnapHeader(data, kindBernoulli)
	if err != nil {
		return err
	}
	if err := sampler.LoadBernoulliState(r, s.inner); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return s.base.finishRestore(r, hi, lo, s.inner.View())
}

// ---------------------------------------------------------------------------
// Weighted (Efraimidis-Spirakis A-Res)

// Weighted is the Efraimidis-Spirakis weighted reservoir of Section 1.3:
// each element receives key u^(1/w) and the K largest keys are kept, so
// inclusion probability grows with weight. Offer uses weight 1; use
// OfferWeighted for explicit weights.
type Weighted[T any] struct {
	base  base[T]
	inner *sampler.WeightedReservoir[int64]
}

var _ Sketch[int64] = (*Weighted[int64])(nil)

// NewWeighted returns a weighted reservoir sketch of capacity k.
func NewWeighted[T any](u Universe[T], k int, opts ...Option) (*Weighted[T], error) {
	b, err := newBase(u, opts)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrBadMemory, k)
	}
	return &Weighted[T]{base: b, inner: sampler.NewWeightedReservoir[int64](k)}, nil
}

// K returns the reservoir capacity.
func (s *Weighted[T]) K() int { return s.inner.K }

// OfferWeighted processes an element with the given weight. Non-positive or
// NaN weights are never admitted (matching [ES06]); no error is reported
// for them, mirroring the internal sampler's contract.
func (s *Weighted[T]) OfferWeighted(x T, weight float64) (bool, error) {
	p, err := s.base.u.Encode(x)
	if err != nil {
		return false, err
	}
	return s.inner.Offer(p, weight, s.base.rng), nil
}

// Offer implements Sketch with weight 1 (uniform sampling).
func (s *Weighted[T]) Offer(x T) (bool, error) { return s.OfferWeighted(x, 1) }

// OfferBatch implements Sketch with weight 1 per element.
func (s *Weighted[T]) OfferBatch(xs []T) (int, error) {
	ps, err := s.base.encodeBatch(xs)
	if err != nil {
		return 0, err
	}
	admitted := 0
	for _, p := range ps {
		if s.inner.Offer(p, 1, s.base.rng) {
			admitted++
		}
	}
	return admitted, nil
}

// View implements Sketch; the order is heap order, not insertion order.
func (s *Weighted[T]) View() []T { return s.base.decodeAll(s.inner.View()) }

// EncodedView returns the sample as universe points without copying;
// callers must not mutate it.
func (s *Weighted[T]) EncodedView() []int64 { return s.inner.View() }

// Len implements Sketch.
func (s *Weighted[T]) Len() int { return s.inner.Len() }

// Rounds implements Sketch.
func (s *Weighted[T]) Rounds() int { return s.inner.Rounds() }

// Query implements Sketch.
func (s *Weighted[T]) Query(lo, hi T) (float64, error) {
	elo, ehi, err := s.base.encodedRange(lo, hi)
	if err != nil {
		return 0, err
	}
	return rangeDensity(s.inner.View(), elo, ehi)
}

// MergeFrom implements Sketch. A-Res keys are independent per element, so
// the top-K keys of the union of two key sets are exactly the A-Res sample
// of the concatenated weighted stream — merging keeps the K largest keys
// across both sketches, losslessly.
//
// Losslessness needs the donor to have retained every candidate for the
// receiver's top K, i.e. a donor capacity >= K: a smaller donor may have
// evicted elements that belong in the merged sample, silently biasing it
// toward the receiver's stream. Such merges report ErrIncompatible.
func (s *Weighted[T]) MergeFrom(other Sketch[T]) error {
	o, ok := other.(*Weighted[T])
	if !ok {
		return fmt.Errorf("%w: cannot merge %T into *Weighted", ErrIncompatible, other)
	}
	if err := sameUniverse(&s.base, &o.base); err != nil {
		return err
	}
	if o.inner.K < s.inner.K {
		return fmt.Errorf("%w: donor capacity %d < receiver capacity %d (donor may have evicted merged-sample candidates)",
			ErrIncompatible, o.inner.K, s.inner.K)
	}
	s.inner.MergeFrom(o.inner)
	return nil
}

// Reset implements Sketch.
func (s *Weighted[T]) Reset() {
	s.inner.Reset()
	s.base.reset()
}

// Snapshot implements Sketch; keys are stored in heap order, which
// round-trips exactly.
func (s *Weighted[T]) Snapshot() ([]byte, error) {
	buf := s.base.appendSnapHeader(nil, kindWeighted)
	return sampler.AppendWeightedState(buf, s.inner), nil
}

// Restore implements Sketch.
func (s *Weighted[T]) Restore(data []byte) error {
	r, hi, lo, err := s.base.readSnapHeader(data, kindWeighted)
	if err != nil {
		return err
	}
	if err := sampler.LoadWeightedState(r, s.inner); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return s.base.finishRestore(r, hi, lo, s.inner.View())
}
