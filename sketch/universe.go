package sketch

import (
	"fmt"
	"slices"
)

// Universe maps values of an arbitrary element type T onto the well-ordered
// integer universe U = {1, ..., Size()} the paper's analysis (and every
// engine in this repository) works over. The mapping must be a strictly
// order-preserving bijection between the representable values and [1, N]:
// range queries, quantiles and discrepancy witnesses are all statements
// about the encoded order.
//
// Encode reports ErrOutOfUniverse (wrapped) for values outside the
// universe; Decode reports it for points outside [1, Size()].
type Universe[T any] interface {
	// Size returns N, the number of points in the universe.
	Size() int64
	// Encode maps a value to its point in [1, Size()].
	Encode(x T) (int64, error)
	// Decode inverts Encode.
	Decode(p int64) (T, error)
}

// int64Range is the identity-shifted universe over [lo, hi].
type int64Range struct {
	lo, hi int64
}

// NewInt64Universe returns the identity universe over [1, n]: values encode
// as themselves. This is the universe the deprecated facade implicitly
// fixed for every application.
func NewInt64Universe(n int64) (Universe[int64], error) {
	return NewInt64Range(1, n)
}

// NewInt64Range returns the universe of integers in [lo, hi], encoded by
// shifting to [1, hi-lo+1]. It reports ErrBadUniverse unless lo <= hi and
// the range has fewer than 2^63 points.
func NewInt64Range(lo, hi int64) (Universe[int64], error) {
	if lo > hi {
		return nil, fmt.Errorf("%w: empty range [%d, %d]", ErrBadUniverse, lo, hi)
	}
	if size := uint64(hi) - uint64(lo) + 1; size == 0 || size > 1<<62 {
		return nil, fmt.Errorf("%w: range [%d, %d] too large", ErrBadUniverse, lo, hi)
	}
	return int64Range{lo: lo, hi: hi}, nil
}

func (u int64Range) Size() int64 { return u.hi - u.lo + 1 }

func (u int64Range) Encode(x int64) (int64, error) {
	if x < u.lo || x > u.hi {
		return 0, fmt.Errorf("%w: %d not in [%d, %d]", ErrOutOfUniverse, x, u.lo, u.hi)
	}
	return x - u.lo + 1, nil
}

func (u int64Range) Decode(p int64) (int64, error) {
	if p < 1 || p > u.Size() {
		return 0, fmt.Errorf("%w: point %d not in [1, %d]", ErrOutOfUniverse, p, u.Size())
	}
	return u.lo + p - 1, nil
}

// stringUniverse orders a fixed vocabulary lexicographically.
type stringUniverse struct {
	vocab []string // sorted, deduplicated
}

// NewStringUniverse returns the universe of the given vocabulary, ordered
// lexicographically (duplicates are removed). Every theorem in the paper is
// stated for an abstract ordered universe, so a robust sketch over strings
// is exactly as robust as one over integers; this universe is the proof by
// construction. It reports ErrBadUniverse for an empty vocabulary.
func NewStringUniverse(vocab ...string) (Universe[string], error) {
	if len(vocab) == 0 {
		return nil, fmt.Errorf("%w: empty vocabulary", ErrBadUniverse)
	}
	sorted := slices.Clone(vocab)
	slices.Sort(sorted)
	sorted = slices.Compact(sorted)
	return stringUniverse{vocab: sorted}, nil
}

func (u stringUniverse) Size() int64 { return int64(len(u.vocab)) }

func (u stringUniverse) Encode(x string) (int64, error) {
	i, ok := slices.BinarySearch(u.vocab, x)
	if !ok {
		return 0, fmt.Errorf("%w: %q not in vocabulary", ErrOutOfUniverse, x)
	}
	return int64(i) + 1, nil
}

func (u stringUniverse) Decode(p int64) (string, error) {
	if p < 1 || p > u.Size() {
		return "", fmt.Errorf("%w: point %d not in [1, %d]", ErrOutOfUniverse, p, u.Size())
	}
	return u.vocab[p-1], nil
}
