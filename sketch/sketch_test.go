package sketch_test

import (
	"bytes"
	"errors"
	"slices"
	"testing"

	"robustsample"
	"robustsample/sketch"
)

func mustU[T any](u sketch.Universe[T], err error) sketch.Universe[T] {
	if err != nil {
		panic(err)
	}
	return u
}

func testStream(n int, universe int64, seed uint64) []int64 {
	r := robustsample.NewRNG(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 + r.Int63n(universe)
	}
	return out
}

func TestConstructorValidation(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1000))
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"nil universe", errOnly(sketch.NewReservoir[int64](nil, 4)), sketch.ErrNilUniverse},
		{"k=0", errOnly(sketch.NewReservoir(u, 0)), sketch.ErrBadMemory},
		{"L k=0", errOnly(sketch.NewReservoirL(u, 0)), sketch.ErrBadMemory},
		{"weighted k=0", errOnly(sketch.NewWeighted(u, 0)), sketch.ErrBadMemory},
		{"p=-1", errOnly(sketch.NewBernoulli(u, -1)), sketch.ErrBadRate},
		{"p=2", errOnly(sketch.NewBernoulli(u, 2)), sketch.ErrBadRate},
		{"robust eps=0", errOnly(sketch.NewRobustReservoir(u, 0, 0.1, 100)), sketch.ErrBadParams},
		{"robust delta=1", errOnly(sketch.NewRobustReservoir(u, 0.1, 1, 100)), sketch.ErrBadParams},
		{"robust n=0", errOnly(sketch.NewRobustBernoulli(u, 0.1, 0.1, 0)), sketch.ErrBadParams},
		{"continuous eps=1", errOnly(sketch.NewContinuousRobustReservoir(u, 1, 0.1, 100)), sketch.ErrBadParams},
		{"empty range", errOnly(sketch.NewInt64Range(5, 4)), sketch.ErrBadUniverse},
		{"empty vocab", errOnlyS(sketch.NewStringUniverse()), sketch.ErrBadUniverse},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, c.err, c.want)
		}
	}
}

func errOnly[T any](_ T, err error) error  { return err }
func errOnlyS[T any](_ T, err error) error { return err }

func TestOfferOutOfUniverse(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(100))
	s, err := sketch.NewReservoir(u, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Offer(101); !errors.Is(err, sketch.ErrOutOfUniverse) {
		t.Fatalf("Offer(101) err = %v, want ErrOutOfUniverse", err)
	}
	if _, err := s.Offer(0); !errors.Is(err, sketch.ErrOutOfUniverse) {
		t.Fatalf("Offer(0) err = %v, want ErrOutOfUniverse", err)
	}
	// Atomic batches: one bad element rejects the whole batch.
	if _, err := s.OfferBatch([]int64{1, 2, 999}); !errors.Is(err, sketch.ErrOutOfUniverse) {
		t.Fatalf("OfferBatch err = %v, want ErrOutOfUniverse", err)
	}
	if s.Rounds() != 0 || s.Len() != 0 {
		t.Fatalf("failed offers ingested elements: rounds=%d len=%d", s.Rounds(), s.Len())
	}
	if n, err := s.OfferBatch([]int64{1, 2}); err != nil || n != 2 {
		t.Fatalf("valid batch = %d, %v", n, err)
	}
	if s.Rounds() != 2 || s.Len() != 2 {
		t.Fatalf("after valid batch: rounds=%d len=%d", s.Rounds(), s.Len())
	}
}

// TestFacadeDifferential proves the deprecated facade and the new Sketch[T]
// surface are the same machine: same seed, same stream, per-element offers
// => byte-identical samples AND byte-identical verdict tables (error and
// witness at every checkpoint).
func TestFacadeDifferential(t *testing.T) {
	const (
		n        = 4000
		universe = int64(1 << 14)
		k        = 64
		seed     = 1234
	)
	stream := testStream(n, universe, 99)

	// Deprecated facade path: external RNG, int64 alias sampler.
	facade := robustsample.NewReservoir(k)
	fr := robustsample.NewRNG(seed)

	// New surface: identity universe, sketch-owned RNG with the same seed.
	u := mustU(sketch.NewInt64Universe(universe))
	s, err := sketch.NewReservoir(u, k, sketch.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}

	sys := robustsample.NewPrefixes(universe)
	checkpoints := map[int]bool{500: true, 1000: true, 2000: true, n: true}
	for i, x := range stream {
		fAdmit := facade.Offer(x, fr)
		sAdmit, err := s.Offer(x)
		if err != nil {
			t.Fatal(err)
		}
		if fAdmit != sAdmit {
			t.Fatalf("round %d: admission bits differ (facade %v, sketch %v)", i+1, fAdmit, sAdmit)
		}
		if checkpoints[i+1] {
			if !slices.Equal(facade.View(), s.EncodedView()) {
				t.Fatalf("round %d: samples differ", i+1)
			}
			df := sys.MaxDiscrepancy(stream[:i+1], facade.View())
			ds := sys.MaxDiscrepancy(stream[:i+1], s.EncodedView())
			if df != ds {
				t.Fatalf("round %d: verdict tables differ: facade %v, sketch %v", i+1, df, ds)
			}
		}
	}
}

func roundTripSketch(t *testing.T, name string, mk func() sketch.Sketch[int64]) {
	t.Helper()
	orig := mk()
	stream := testStream(2000, 1000, 7)
	if _, err := orig.OfferBatch(stream[:1000]); err != nil {
		t.Fatal(err)
	}
	s1, err := orig.Snapshot()
	if err != nil {
		t.Fatalf("%s: snapshot: %v", name, err)
	}
	restored := mk()
	if err := restored.Restore(s1); err != nil {
		t.Fatalf("%s: restore: %v", name, err)
	}
	s2, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatalf("%s: snapshot not bit-identical after restore", name)
	}
	if !slices.Equal(orig.View(), restored.View()) {
		t.Fatalf("%s: restored sample differs", name)
	}
	// Continuation: the RNG state travels with the snapshot, so both
	// sketches draw identical randomness from here on.
	for _, x := range stream[1000:] {
		a, err1 := orig.Offer(x)
		b, err2 := restored.Offer(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("%s: continuation admission diverged", name)
		}
	}
	if !slices.Equal(orig.View(), restored.View()) {
		t.Fatalf("%s: continuation samples diverged", name)
	}

	// Restoring into a differently configured sketch adopts the
	// snapshot's configuration.
	if err := restored.Restore(s1); err != nil {
		t.Fatalf("%s: re-restore: %v", name, err)
	}
}

func TestSnapshotRoundTripAllSketches(t *testing.T) {
	u, err := sketch.NewInt64Universe(1000)
	if err != nil {
		t.Fatal(err)
	}
	mkOpts := []sketch.Option{sketch.WithSeed(5)}
	cases := []struct {
		name string
		mk   func() sketch.Sketch[int64]
	}{
		{"reservoir", func() sketch.Sketch[int64] {
			s, err := sketch.NewReservoir(u, 32, mkOpts...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"reservoirL", func() sketch.Sketch[int64] {
			s, err := sketch.NewReservoirL(u, 32, mkOpts...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"bernoulli", func() sketch.Sketch[int64] {
			s, err := sketch.NewBernoulli(u, 0.15, mkOpts...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
		{"weighted", func() sketch.Sketch[int64] {
			s, err := sketch.NewWeighted(u, 32, mkOpts...)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { roundTripSketch(t, c.name, c.mk) })
	}
}

func TestSnapshotKindAndUniverseMismatch(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1000))
	res, _ := sketch.NewReservoir(u, 8)
	res.Offer(5)
	snap, err := res.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := sketch.FrameKind(snap); err != nil || kind == 0 {
		t.Fatalf("FrameKind = %d, %v", kind, err)
	}
	// Wrong sketch type.
	lres, _ := sketch.NewReservoirL(u, 8)
	if err := lres.Restore(snap); !errors.Is(err, sketch.ErrBadSnapshot) {
		t.Fatalf("cross-type restore err = %v, want ErrBadSnapshot", err)
	}
	// Wrong universe size.
	u2 := mustU(sketch.NewInt64Universe(999))
	res2, _ := sketch.NewReservoir(u2, 8)
	if err := res2.Restore(snap); !errors.Is(err, sketch.ErrBadSnapshot) {
		t.Fatalf("cross-universe restore err = %v, want ErrBadSnapshot", err)
	}
	// Corrupt header and truncations.
	bad := slices.Clone(snap)
	bad[0] ^= 0xFF
	if err := res.Restore(bad); !errors.Is(err, sketch.ErrBadSnapshot) {
		t.Fatalf("bad magic err = %v, want ErrBadSnapshot", err)
	}
	for _, cut := range []int{0, 5, len(snap) - 1} {
		if err := res.Restore(snap[:cut]); !errors.Is(err, sketch.ErrBadSnapshot) {
			t.Fatalf("truncation at %d: err = %v, want ErrBadSnapshot", cut, err)
		}
	}
}

// TestRestoreRejectsOutOfUniverseSample pins the fuzz-found hardening:
// a snapshot whose counters decode cleanly but whose sample holds a point
// outside [1, |U|] must fail Restore with ErrBadSnapshot instead of
// deferring the corruption to a decode panic in View.
func TestRestoreRejectsOutOfUniverseSample(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1000))
	res, _ := sketch.NewReservoir(u, 8)
	// A distinctive point so its little-endian encoding appears exactly
	// once in the snapshot bytes (counters here are all small: k=8,
	// rounds=1, len=1).
	const point = int64(777)
	if _, err := res.Offer(point); err != nil {
		t.Fatal(err)
	}
	snap, err := res.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var want, evil [8]byte
	for i := range want {
		want[i] = byte(uint64(point) >> (8 * i))
		evil[i] = byte(uint64(5000) >> (8 * i)) // outside [1, 1000]
	}
	at := bytes.Index(snap, want[:])
	if at < 0 || bytes.Index(snap[at+1:], want[:]) >= 0 {
		t.Fatalf("sample point encoding not unique in snapshot")
	}
	bad := slices.Clone(snap)
	copy(bad[at:], evil[:])
	if err := res.Restore(bad); !errors.Is(err, sketch.ErrBadSnapshot) {
		t.Fatalf("out-of-universe sample restore err = %v, want ErrBadSnapshot", err)
	}
	// The untampered snapshot still restores, and View stays panic-free.
	if err := res.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := res.View(); len(got) != 1 || got[0] != point {
		t.Fatalf("View after restore = %v, want [%d]", got, point)
	}
}

func TestReservoirMergeFrom(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1 << 12))
	a, _ := sketch.NewReservoir(u, 32, sketch.WithSeed(1))
	b, _ := sketch.NewReservoir(u, 32, sketch.WithSeed(2))
	streamA := testStream(1500, 1<<12, 3)
	streamB := testStream(900, 1<<12, 4)
	a.OfferBatch(streamA)
	b.OfferBatch(streamB)

	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Rounds() != 2400 {
		t.Fatalf("merged rounds %d, want 2400", a.Rounds())
	}
	if a.Len() != 32 {
		t.Fatalf("merged size %d, want 32", a.Len())
	}
	// Every merged element came from one of the two streams.
	all := map[int64]bool{}
	for _, x := range streamA {
		all[x] = true
	}
	for _, x := range streamB {
		all[x] = true
	}
	for _, x := range a.View() {
		if !all[x] {
			t.Fatalf("merged sample holds foreign element %d", x)
		}
	}
	// The merged sketch remains offerable.
	if _, err := a.Offer(1); err != nil {
		t.Fatal(err)
	}

	// Incompatibilities.
	bern, _ := sketch.NewBernoulli(u, 0.5)
	if err := a.MergeFrom(bern); !errors.Is(err, sketch.ErrIncompatible) {
		t.Fatalf("cross-type merge err = %v, want ErrIncompatible", err)
	}
	u2 := mustU(sketch.NewInt64Universe(7))
	c, _ := sketch.NewReservoir(u2, 4)
	if err := a.MergeFrom(c); !errors.Is(err, sketch.ErrIncompatible) {
		t.Fatalf("cross-universe merge err = %v, want ErrIncompatible", err)
	}
}

// TestReservoirMergeInsufficientSample: merging from a donor whose small
// capacity cannot supply min(K, combined rounds) elements must fail —
// otherwise the merged reservoir would sit under-full against an over-full
// round count and admit the next offers with probability 1.
func TestReservoirMergeInsufficientSample(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1 << 20))
	big, _ := sketch.NewReservoir(u, 100, sketch.WithSeed(1))
	small, _ := sketch.NewReservoir(u, 10, sketch.WithSeed(2))
	for x := int64(1); x <= 50; x++ {
		big.Offer(x)
	}
	for x := int64(1); x <= 100000; x++ {
		small.Offer(x)
	}
	if err := big.MergeFrom(small); !errors.Is(err, sketch.ErrIncompatible) {
		t.Fatalf("under-supplied merge err = %v, want ErrIncompatible", err)
	}
	// Failed merge leaves the receiver untouched and fully usable.
	if big.Rounds() != 50 || big.Len() != 50 {
		t.Fatalf("failed merge mutated receiver: rounds=%d len=%d", big.Rounds(), big.Len())
	}
	// A donor with adequate capacity merges fine even mid-fill.
	ok, _ := sketch.NewReservoir(u, 100, sketch.WithSeed(3))
	for x := int64(1); x <= 100000; x++ {
		ok.Offer(x)
	}
	if err := big.MergeFrom(ok); err != nil {
		t.Fatal(err)
	}
	if big.Len() != 100 || big.Rounds() != 100050 {
		t.Fatalf("merged state: len=%d rounds=%d", big.Len(), big.Rounds())
	}
}

// TestWeightedMergeSmallDonorRejected: a donor with smaller capacity may
// have evicted elements that belong in the merged top-K, so the merge must
// refuse instead of silently biasing the sample.
func TestWeightedMergeSmallDonorRejected(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1000))
	s, _ := sketch.NewWeighted(u, 100, sketch.WithSeed(1))
	small, _ := sketch.NewWeighted(u, 10, sketch.WithSeed(2))
	for i := int64(1); i <= 500; i++ {
		s.Offer(1 + i%1000)
		small.Offer(1 + i%1000)
	}
	if err := s.MergeFrom(small); !errors.Is(err, sketch.ErrIncompatible) {
		t.Fatalf("small-donor merge err = %v, want ErrIncompatible", err)
	}
	// The asymmetric direction is sound: a big donor into a small receiver.
	if err := small.MergeFrom(s); err != nil {
		t.Fatal(err)
	}
	if small.Rounds() != 1000 {
		t.Fatalf("merged rounds %d, want 1000", small.Rounds())
	}
}

func TestBernoulliMergeFromIsUnion(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1 << 12))
	a, _ := sketch.NewBernoulli(u, 0.2, sketch.WithSeed(1))
	b, _ := sketch.NewBernoulli(u, 0.2, sketch.WithSeed(2))
	a.OfferBatch(testStream(800, 1<<12, 5))
	b.OfferBatch(testStream(700, 1<<12, 6))
	want := append(a.View(), b.View()...)
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(a.View(), want) {
		t.Fatal("Bernoulli merge is not the concatenated union")
	}
	if a.Rounds() != 1500 {
		t.Fatalf("merged rounds %d, want 1500", a.Rounds())
	}
	// Different rates cannot merge.
	c, _ := sketch.NewBernoulli(u, 0.3)
	if err := a.MergeFrom(c); !errors.Is(err, sketch.ErrIncompatible) {
		t.Fatalf("rate mismatch err = %v, want ErrIncompatible", err)
	}
}

func TestReservoirLMergeUnsupported(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(100))
	a, _ := sketch.NewReservoirL(u, 8)
	b, _ := sketch.NewReservoirL(u, 8)
	if err := a.MergeFrom(b); !errors.Is(err, sketch.ErrUnsupportedMerge) {
		t.Fatalf("err = %v, want ErrUnsupportedMerge", err)
	}
}

func TestQueryAndReset(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(100))
	s, err := sketch.NewReservoir(u, 100, sketch.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(1, 50); !errors.Is(err, sketch.ErrEmpty) {
		t.Fatalf("empty query err = %v, want ErrEmpty", err)
	}
	for i := int64(1); i <= 100; i++ {
		s.Offer(i)
	}
	d, err := s.Query(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0.5 {
		t.Fatalf("Query(1,50) = %v, want 0.5 (k >= n keeps everything)", d)
	}
	if _, err := s.Query(50, 1); !errors.Is(err, sketch.ErrBadRange) {
		t.Fatalf("inverted range err = %v, want ErrBadRange", err)
	}

	// Reset reseeds: a replay is bit-identical.
	first := slices.Clone(s.EncodedView())
	s.Reset()
	if s.Len() != 0 || s.Rounds() != 0 {
		t.Fatal("Reset did not clear")
	}
	for i := int64(1); i <= 100; i++ {
		s.Offer(i)
	}
	if !slices.Equal(first, s.EncodedView()) {
		t.Fatal("replay after Reset not bit-identical")
	}
}

func TestStringUniverseSketch(t *testing.T) {
	u, err := sketch.NewStringUniverse("ant", "bee", "cat", "dog", "eel", "fox")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sketch.NewReservoir(u, 100, sketch.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"cat", "dog", "ant", "cat", "eel", "cat", "bee", "dog"}
	if n, err := s.OfferBatch(words); err != nil || n != len(words) {
		t.Fatalf("OfferBatch = %d, %v", n, err)
	}
	if _, err := s.Offer("zebra"); !errors.Is(err, sketch.ErrOutOfUniverse) {
		t.Fatalf("out-of-vocabulary err = %v, want ErrOutOfUniverse", err)
	}
	// k >= n: the sample is the stream, so densities are exact.
	d, err := s.Query("cat", "cat")
	if err != nil {
		t.Fatal(err)
	}
	if d != 3.0/8 {
		t.Fatalf("Query(cat) = %v, want 0.375", d)
	}
	// Range in vocabulary order: [ant, cat] covers ant, bee, cat.
	d, err = s.Query("ant", "cat")
	if err != nil {
		t.Fatal(err)
	}
	if d != 5.0/8 {
		t.Fatalf("Query(ant..cat) = %v, want 0.625", d)
	}
	// Snapshot round-trips decode back to strings.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := sketch.NewReservoir(u, 1)
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := s2.View()
	slices.Sort(got)
	want := slices.Clone(words)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatalf("restored string sample = %v, want %v", got, want)
	}
}

// TestBatchChunkingInvariance: reservoir-family batch results must not
// depend on how the stream is sliced.
func TestBatchChunkingInvariance(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1 << 10))
	stream := testStream(3000, 1<<10, 12)
	whole, _ := sketch.NewReservoir(u, 24, sketch.WithSeed(9))
	whole.OfferBatch(stream)
	chunked, _ := sketch.NewReservoir(u, 24, sketch.WithSeed(9))
	for i := 0; i < len(stream); i += 17 {
		chunked.OfferBatch(stream[i:min(i+17, len(stream))])
	}
	if !slices.Equal(whole.EncodedView(), chunked.EncodedView()) {
		t.Fatal("reservoir batch results depend on chunking")
	}
}

func TestWeightedSketch(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1000))
	s, err := sketch.NewWeighted(u, 10, sketch.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	// Heavily weighted element should essentially always be present.
	if _, err := s.OfferWeighted(7, 1e9); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 500; i++ {
		if _, err := s.OfferWeighted(1+i%1000, 1); err != nil {
			t.Fatal(err)
		}
	}
	if !slices.Contains(s.View(), int64(7)) {
		t.Fatal("heavily weighted element evicted")
	}
	// Merge: union of key sets.
	o, _ := sketch.NewWeighted(u, 10, sketch.WithSeed(5))
	for i := int64(1); i <= 100; i++ {
		o.Offer(i)
	}
	preRounds := s.Rounds() + o.Rounds()
	if err := s.MergeFrom(o); err != nil {
		t.Fatal(err)
	}
	if s.Rounds() != preRounds {
		t.Fatalf("merged rounds %d, want %d", s.Rounds(), preRounds)
	}
	if s.Len() != 10 {
		t.Fatalf("merged size %d, want 10", s.Len())
	}
}
