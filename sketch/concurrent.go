package sketch

import (
	"fmt"
	"sync"
)

// Concurrent lifts any Sketch[T] into a goroutine-safe one: offers, merges
// and restores serialize behind a write lock while reads (View, Len,
// Rounds, Query, Snapshot) share a read lock, so monitors can query a
// sketch that other goroutines are feeding. Semantics, determinism and
// snapshot bytes are exactly the wrapped sketch's — Concurrent adds only
// the synchronization.
//
// For sharded, pipelined ingest at higher throughput use
// robustsample/shard's Engine.Serve, which avoids a global lock entirely;
// Concurrent is the right tool when one sketch is shared by a handful of
// goroutines and simplicity wins.
type Concurrent[T any] struct {
	mu    sync.RWMutex
	inner Sketch[T]
}

var _ Sketch[int64] = (*Concurrent[int64])(nil)

// NewConcurrent wraps s. The caller must not use s directly afterwards
// (reach it through Do when single-sketch operations are not enough).
func NewConcurrent[T any](s Sketch[T]) (*Concurrent[T], error) {
	if s == nil {
		return nil, ErrNilSketch
	}
	return &Concurrent[T]{inner: s}, nil
}

// Do runs fn with exclusive access to the wrapped sketch, for compound
// operations that must be atomic (e.g. a query after a conditional merge).
// fn must not retain the sketch.
func (c *Concurrent[T]) Do(fn func(Sketch[T])) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn(c.inner)
}

// Offer implements Sketch.
func (c *Concurrent[T]) Offer(x T) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Offer(x)
}

// OfferBatch implements Sketch; the batch is applied atomically with
// respect to every other method.
func (c *Concurrent[T]) OfferBatch(xs []T) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.OfferBatch(xs)
}

// View implements Sketch.
func (c *Concurrent[T]) View() []T {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inner.View()
}

// Len implements Sketch.
func (c *Concurrent[T]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inner.Len()
}

// Rounds implements Sketch.
func (c *Concurrent[T]) Rounds() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inner.Rounds()
}

// Query implements Sketch.
func (c *Concurrent[T]) Query(lo, hi T) (float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inner.Query(lo, hi)
}

// MergeFrom implements Sketch. When other is itself a *Concurrent, its read
// lock is taken after the receiver's write lock; two sketches merging from
// each other simultaneously can therefore deadlock — order such mutual
// fan-ins externally. Merging a sketch into itself reports ErrIncompatible
// (it would self-deadlock on the receiver's own lock).
func (c *Concurrent[T]) MergeFrom(other Sketch[T]) error {
	oc, isConc := other.(*Concurrent[T])
	if isConc && oc == c {
		return fmt.Errorf("%w: cannot merge a sketch into itself", ErrIncompatible)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if isConc {
		oc.mu.RLock()
		defer oc.mu.RUnlock()
		return c.inner.MergeFrom(oc.inner)
	}
	return c.inner.MergeFrom(other)
}

// Reset implements Sketch.
func (c *Concurrent[T]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inner.Reset()
}

// Snapshot implements Sketch; the bytes are the wrapped sketch's, so a
// snapshot taken through Concurrent restores into the bare type and vice
// versa.
func (c *Concurrent[T]) Snapshot() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.inner.Snapshot()
}

// Restore implements Sketch.
func (c *Concurrent[T]) Restore(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Restore(data)
}
