package sketch_test

import (
	"errors"
	"slices"
	"sync"
	"testing"
	"time"

	"robustsample/sketch"
)

func TestConcurrentMatchesBare(t *testing.T) {
	u, err := sketch.NewInt64Range(1, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := sketch.NewReservoir(u, 32, sketch.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	inner, err := sketch.NewReservoir(u, 32, sketch.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	c, err := sketch.NewConcurrent[int64](inner)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5000; i++ {
		if _, err := bare.Offer(i%1000 + 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Offer(i%1000 + 1); err != nil {
			t.Fatal(err)
		}
	}
	if !slices.Equal(bare.View(), c.View()) {
		t.Fatal("Concurrent wrapper changed the sample")
	}
	if bare.Rounds() != c.Rounds() || bare.Len() != c.Len() {
		t.Fatal("Concurrent wrapper changed the counters")
	}
	bs, err := bare.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(bs, cs) {
		t.Fatal("Concurrent snapshot bytes differ from the bare sketch's")
	}
}

func TestConcurrentNilInner(t *testing.T) {
	if _, err := sketch.NewConcurrent[int64](nil); err == nil {
		t.Fatal("NewConcurrent accepted a nil sketch")
	}
}

// TestConcurrentParallelOfferAndQuery hammers one wrapped sketch from
// several offering and querying goroutines; correctness here is "no race,
// no panic, and conservation of the round counter".
func TestConcurrentParallelOfferAndQuery(t *testing.T) {
	u, err := sketch.NewInt64Range(1, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := sketch.NewBernoulli(u, 0.1, sketch.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	c, err := sketch.NewConcurrent[int64](inner)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.View()
				_ = c.Len()
				if _, err := c.Query(1, 1<<15); err != nil && err != sketch.ErrEmpty {
					t.Errorf("Query: %v", err)
					return
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			batch := make([]int64, 0, 64)
			for i := 0; i < perWriter; i++ {
				batch = append(batch, int64(w*perWriter+i)%5000+1)
				if len(batch) == cap(batch) {
					if _, err := c.OfferBatch(batch); err != nil {
						t.Errorf("OfferBatch: %v", err)
						return
					}
					batch = batch[:0]
				}
			}
			if _, err := c.OfferBatch(batch); err != nil {
				t.Errorf("OfferBatch: %v", err)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := c.Rounds(); got != writers*perWriter {
		t.Fatalf("Rounds = %d, want %d (offers lost)", got, writers*perWriter)
	}
}

// TestConcurrentMergeFrom merges a concurrent-wrapped donor into a
// concurrent-wrapped receiver.
func TestConcurrentMergeFrom(t *testing.T) {
	u, err := sketch.NewInt64Range(1, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed uint64) *sketch.Concurrent[int64] {
		inner, err := sketch.NewBernoulli(u, 0.2, sketch.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		c, err := sketch.NewConcurrent[int64](inner)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(1), mk(2)
	for i := int64(1); i <= 1000; i++ {
		a.Offer(i)
		b.Offer(i + 1000)
	}
	if err := a.MergeFrom(b); err != nil {
		t.Fatalf("MergeFrom(concurrent): %v", err)
	}
	if got := a.Rounds(); got != 2000 {
		t.Fatalf("merged Rounds = %d, want 2000", got)
	}
	// Merging the bare inner type also works through the wrapper.
	inner, err := sketch.NewBernoulli(u, 0.2, sketch.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	inner.Offer(7)
	if err := a.MergeFrom(inner); err != nil {
		t.Fatalf("MergeFrom(bare): %v", err)
	}
	if got := a.Rounds(); got != 2001 {
		t.Fatalf("merged Rounds = %d, want 2001", got)
	}
}

// TestConcurrentSelfMerge pins the self-merge guard: merging a Concurrent
// into itself reports ErrIncompatible instead of self-deadlocking on its
// own lock.
func TestConcurrentSelfMerge(t *testing.T) {
	u, err := sketch.NewInt64Range(1, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := sketch.NewReservoir(u, 8, sketch.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	c, err := sketch.NewConcurrent[int64](inner)
	if err != nil {
		t.Fatal(err)
	}
	c.Offer(5)
	done := make(chan error, 1)
	go func() { done <- c.MergeFrom(c) }()
	select {
	case err := <-done:
		if !errors.Is(err, sketch.ErrIncompatible) {
			t.Fatalf("self MergeFrom = %v, want ErrIncompatible", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("self MergeFrom deadlocked")
	}
	// The sketch is still usable afterwards.
	if _, err := c.Offer(6); err != nil {
		t.Fatal(err)
	}
	if got := c.Rounds(); got != 2 {
		t.Fatalf("Rounds = %d, want 2", got)
	}
}
