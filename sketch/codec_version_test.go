package sketch

import "testing"

// TestCodecVersionPinned pins the snapshot codec version. The robustlint
// snapshotframe analyzer requires the //robust:codec-version directive below
// to match snapVersion, so bumping the codec version forces an edit here —
// next to the statement of what a bump owes: the round-trip, rejection and
// atomicity laws in sketch_test.go must be revisited for the new layout, and
// a compatibility decision (accept-old or reject-old) must be made
// explicitly in ReadFrameHeader.
//
//robust:codec-version 1
func TestCodecVersionPinned(t *testing.T) {
	if snapVersion != 1 {
		t.Fatalf("snapVersion = %d; update the //robust:codec-version pin and revisit the snapshot laws before bumping", snapVersion)
	}
}
