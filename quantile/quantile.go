// Package quantile is the public quantile-estimation application of
// Corollary 1.5: a robustly sized reservoir sample answers EVERY rank and
// quantile query within eps·n simultaneously, with probability 1-delta,
// even when the stream is chosen by an adaptive adversary watching the
// sketch.
//
// The sketch is generic over its element type through a sketch.Universe[T]
// codec (rank is a statement about the encoded order), mergeable
// (MergeFrom implements the [CTW16] coordinator fan-in, so per-site
// sketches combine into a sketch of the union stream) and serializable
// (Snapshot/Restore round-trip the full state bit-identically).
//
// The deterministic Greenwald-Khanna and randomized KLL baselines the
// experiments compare against remain in internal/quantile; they are
// comparison points, not part of the supported surface.
package quantile

import (
	"errors"
	"fmt"
	"slices"

	"robustsample/internal/snapshot"
	"robustsample/sketch"
)

// Sentinel errors, shared with the sketch package where the condition is
// the same (errors.Is works across both).
var (
	// ErrBadParams reports an invalid (eps, delta, n) target.
	ErrBadParams = sketch.ErrBadParams
	// ErrBadQuantile reports a quantile outside [0, 1].
	ErrBadQuantile = errors.New("quantile: q must be in [0, 1]")
	// ErrEmpty reports a query against an empty sketch.
	ErrEmpty = sketch.ErrEmpty
	// ErrBadSnapshot reports a corrupt or mismatched snapshot.
	ErrBadSnapshot = sketch.ErrBadSnapshot
	// ErrIncompatible reports a merge between incompatible sketches.
	ErrIncompatible = sketch.ErrIncompatible
)

// Sketch answers rank and quantile queries over a stream of T from a
// maintained robust sample. It implements sketch.Sketch[T].
type Sketch[T any] struct {
	res *sketch.Reservoir[T]
	u   sketch.Universe[T]
	eps float64
}

var _ sketch.Sketch[int64] = (*Sketch[int64])(nil)

// New returns a quantile sketch sized per Corollary 1.5 for streams of
// length up to n: a reservoir of k = ceil(2 (ln|U| + ln(2/delta)) / eps^2)
// elements, making every rank estimate eps·n-accurate with probability
// 1-delta against any adaptive stream.
func New[T any](u sketch.Universe[T], eps, delta float64, n int, opts ...sketch.Option) (*Sketch[T], error) {
	res, err := sketch.NewRobustReservoir(u, eps, delta, n, opts...)
	if err != nil {
		return nil, err
	}
	return &Sketch[T]{res: res, u: u, eps: eps}, nil
}

// NewWithMemory returns a quantile sketch over an explicitly sized
// reservoir (k elements), for callers that size memory themselves.
func NewWithMemory[T any](u sketch.Universe[T], k int, opts ...sketch.Option) (*Sketch[T], error) {
	res, err := sketch.NewReservoir(u, k, opts...)
	if err != nil {
		return nil, err
	}
	return &Sketch[T]{res: res, u: u}, nil
}

// Eps returns the rank-error target the sketch was sized for (0 when built
// with NewWithMemory).
func (s *Sketch[T]) Eps() float64 { return s.eps }

// K returns the underlying reservoir capacity.
func (s *Sketch[T]) K() int { return s.res.K() }

// Offer implements sketch.Sketch.
func (s *Sketch[T]) Offer(x T) (bool, error) { return s.res.Offer(x) }

// OfferBatch implements sketch.Sketch.
func (s *Sketch[T]) OfferBatch(xs []T) (int, error) { return s.res.OfferBatch(xs) }

// View implements sketch.Sketch.
func (s *Sketch[T]) View() []T { return s.res.View() }

// Len implements sketch.Sketch (the stored sample size).
func (s *Sketch[T]) Len() int { return s.res.Len() }

// Rounds implements sketch.Sketch (the stream length so far).
func (s *Sketch[T]) Rounds() int { return s.res.Rounds() }

// Count is Rounds under the name the sketch literature uses.
func (s *Sketch[T]) Count() int { return s.res.Rounds() }

// Query implements sketch.Sketch: the sample density of [lo, hi].
func (s *Sketch[T]) Query(lo, hi T) (float64, error) { return s.res.Query(lo, hi) }

// Rank estimates |{ j : x_j <= x }| over the stream so far. With the
// Corollary 1.5 sizing the estimate is within eps·n of the exact rank for
// every x simultaneously, with probability 1-delta.
func (s *Sketch[T]) Rank(x T) (float64, error) {
	ex, err := s.u.Encode(x)
	if err != nil {
		return 0, err
	}
	sample := s.res.EncodedView()
	if len(sample) == 0 {
		return 0, ErrEmpty
	}
	below := 0
	for _, v := range sample {
		if v <= ex {
			below++
		}
	}
	return float64(below) / float64(len(sample)) * float64(s.res.Rounds()), nil
}

// Quantile returns an element of the sample whose rank is approximately
// q·n, for q in [0, 1].
func (s *Sketch[T]) Quantile(q float64) (T, error) {
	var zero T
	if q < 0 || q > 1 {
		return zero, ErrBadQuantile
	}
	sample := slices.Clone(s.res.EncodedView())
	if len(sample) == 0 {
		return zero, ErrEmpty
	}
	slices.Sort(sample)
	idx := int(q*float64(len(sample))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sample) {
		idx = len(sample) - 1
	}
	x, err := s.u.Decode(sample[idx])
	if err != nil {
		return zero, err
	}
	return x, nil
}

// MergeFrom implements sketch.Sketch: after the merge the receiver answers
// rank/quantile queries for the concatenation of both streams. The
// argument must be a *Sketch[T] over a same-size universe.
func (s *Sketch[T]) MergeFrom(other sketch.Sketch[T]) error {
	o, ok := other.(*Sketch[T])
	if !ok {
		return fmt.Errorf("%w: cannot merge %T into *quantile.Sketch", ErrIncompatible, other)
	}
	return s.res.MergeFrom(o.res)
}

// Reset implements sketch.Sketch.
func (s *Sketch[T]) Reset() { s.res.Reset() }

// Snapshot implements sketch.Sketch: a FrameQuantile frame wrapping the
// sizing target and the underlying reservoir snapshot.
func (s *Sketch[T]) Snapshot() ([]byte, error) {
	inner, err := s.res.Snapshot()
	if err != nil {
		return nil, err
	}
	buf := sketch.AppendFrameHeader(nil, sketch.FrameQuantile)
	buf = snapshot.AppendFloat64(buf, s.eps)
	return append(buf, inner...), nil
}

// Restore implements sketch.Sketch.
func (s *Sketch[T]) Restore(data []byte) error {
	r, err := sketch.ReadFrameHeader(data, sketch.FrameQuantile)
	if err != nil {
		return err
	}
	eps := r.Float64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if err := s.res.Restore(r.Rest()); err != nil {
		return err
	}
	s.eps = eps
	return nil
}
