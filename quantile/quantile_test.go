package quantile_test

import (
	"bytes"
	"errors"
	"math"
	"slices"
	"testing"

	"robustsample/internal/rng"
	"robustsample/quantile"
	"robustsample/sketch"
)

func mustU[T any](u sketch.Universe[T], err error) sketch.Universe[T] {
	if err != nil {
		panic(err)
	}
	return u
}

func TestValidation(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1 << 10))
	if _, err := quantile.New(u, 0, 0.1, 100); !errors.Is(err, quantile.ErrBadParams) {
		t.Fatalf("eps=0 err = %v, want ErrBadParams", err)
	}
	if _, err := quantile.New[int64](nil, 0.1, 0.1, 100); !errors.Is(err, sketch.ErrNilUniverse) {
		t.Fatalf("nil universe err = %v, want ErrNilUniverse", err)
	}
	if _, err := quantile.NewWithMemory(u, 0); !errors.Is(err, sketch.ErrBadMemory) {
		t.Fatalf("k=0 err = %v, want ErrBadMemory", err)
	}
	s, err := quantile.New(u, 0.1, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Quantile(1.5); !errors.Is(err, quantile.ErrBadQuantile) {
		t.Fatalf("q=1.5 err = %v, want ErrBadQuantile", err)
	}
	if _, err := s.Quantile(0.5); !errors.Is(err, quantile.ErrEmpty) {
		t.Fatalf("empty quantile err = %v, want ErrEmpty", err)
	}
	if _, err := s.Rank(5); !errors.Is(err, quantile.ErrEmpty) {
		t.Fatalf("empty rank err = %v, want ErrEmpty", err)
	}
}

// TestRankAccuracy checks the Corollary 1.5 contract empirically on a
// static stream: every rank estimate within eps*n (the probabilistic
// guarantee holds with delta slack; the fixed seed keeps the test stable).
func TestRankAccuracy(t *testing.T) {
	const (
		n        = 20000
		universe = int64(1 << 16)
		eps      = 0.05
	)
	u := mustU(sketch.NewInt64Universe(universe))
	s, err := quantile.New(u, eps, 0.05, n, sketch.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = 1 + r.Int63n(universe)
	}
	if _, err := s.OfferBatch(stream); err != nil {
		t.Fatal(err)
	}
	if s.Count() != n {
		t.Fatalf("Count = %d, want %d", s.Count(), n)
	}

	sorted := slices.Clone(stream)
	slices.Sort(sorted)
	worst := 0.0
	for i := 0; i < len(sorted); i += 97 {
		x := sorted[i]
		exact := float64(sort64(sorted, x))
		got, err := s.Rank(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got-exact) / n; d > worst {
			worst = d
		}
	}
	if worst > eps {
		t.Fatalf("max rank error %.4f exceeds eps %.2f", worst, eps)
	}

	// Quantiles come back in order.
	prev := int64(math.MinInt64)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		v, err := s.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("quantiles not monotone at q=%v", q)
		}
		prev = v
	}
}

// sort64 returns |{j : sorted[j] <= x}| for an ascending slice.
func sort64(sorted []int64, x int64) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func TestMergeFrom(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1 << 10))
	a, _ := quantile.New(u, 0.1, 0.1, 2000, sketch.WithSeed(1))
	b, _ := quantile.New(u, 0.1, 0.1, 2000, sketch.WithSeed(2))
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		a.Offer(1 + r.Int63n(512))       // low half
		b.Offer(512 + r.Int63n(512) + 1) // high half
	}
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2000 {
		t.Fatalf("merged count %d, want 2000", a.Count())
	}
	// The median of the union must sit near the halves' boundary.
	med, err := a.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med < 300 || med > 750 {
		t.Fatalf("merged median %d implausible for a low/high union", med)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1 << 10))
	s, _ := quantile.New(u, 0.1, 0.1, 5000, sketch.WithSeed(4))
	r := rng.New(5)
	for i := 0; i < 2000; i++ {
		s.Offer(1 + r.Int63n(1<<10))
	}
	s1, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, _ := quantile.NewWithMemory(u, 1) // config comes from the snapshot
	if err := restored.Restore(s1); err != nil {
		t.Fatal(err)
	}
	s2, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("quantile snapshot not bit-identical after restore")
	}
	if restored.Eps() != s.Eps() || restored.Count() != s.Count() {
		t.Fatal("restored config/count differs")
	}
	ra, _ := s.Rank(500)
	rb, _ := restored.Rank(500)
	if ra != rb {
		t.Fatalf("restored rank %v != %v", rb, ra)
	}
	// Cross-kind rejection: a raw reservoir snapshot is not a quantile one.
	res, _ := sketch.NewReservoir(u, 8)
	raw, _ := res.Snapshot()
	if err := restored.Restore(raw); !errors.Is(err, quantile.ErrBadSnapshot) {
		t.Fatalf("cross-kind restore err = %v, want ErrBadSnapshot", err)
	}
}
