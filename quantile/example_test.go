package quantile_test

import (
	"fmt"

	"robustsample/quantile"
	"robustsample/sketch"
)

// Example answers quantile queries from a Corollary 1.5 robust sketch: the
// estimates stay within eps·n of the exact ranks for ALL quantiles
// simultaneously, even against an adaptive stream.
func Example() {
	u, err := sketch.NewInt64Universe(1 << 20)
	if err != nil {
		panic(err)
	}
	const n = 100000
	s, err := quantile.New(u, 0.05, 0.05, n, sketch.WithSeed(20200614))
	if err != nil {
		panic(err)
	}

	// A shifted ramp: value i carries rank information directly, so exact
	// quantiles are known in closed form.
	for i := int64(1); i <= n; i++ {
		if _, err := s.Offer(i * 10); err != nil {
			panic(err)
		}
	}

	fmt.Printf("k=%d elements for eps=0.05 over |U|=2^20\n", s.K())
	for _, q := range []float64{0.25, 0.5, 0.9} {
		v, err := s.Quantile(q)
		if err != nil {
			panic(err)
		}
		exact := int64(q*n) * 10
		off := float64(v-exact) / 10 / n
		fmt.Printf("q=%.2f estimate=%-7d exact=%-7d rank error=%+.3f (|err| <= 0.05)\n",
			q, v, exact, off)
	}
	// Output:
	// k=14042 elements for eps=0.05 over |U|=2^20
	// q=0.25 estimate=245470  exact=250000  rank error=-0.005 (|err| <= 0.05)
	// q=0.50 estimate=492150  exact=500000  rank error=-0.008 (|err| <= 0.05)
	// q=0.90 estimate=898230  exact=900000  rank error=-0.002 (|err| <= 0.05)
}
