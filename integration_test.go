package robustsample

// Integration tests exercising full pipelines across modules: parameter
// selection -> adaptive game -> exact verdict, and the end-to-end shapes of
// the paper's headline claims at reduced scale. Statistical assertions use
// fixed seeds and generous slack so they are deterministic and non-flaky.

import (
	"math"
	"testing"
)

// TestTheorem12EndToEnd plays the full adaptive game at the Theorem 1.2
// reservoir size against every public adversary and checks the failure rate
// stays near delta.
func TestTheorem12EndToEnd(t *testing.T) {
	const n = 3000
	universe := int64(1) << 18
	p := Params{Eps: 0.25, Delta: 0.15, N: n}
	sys := NewPrefixes(universe)
	k := ReservoirSize(p, sys.LogCardinality())

	for _, mkAdv := range []func() Adversary{
		func() Adversary { return NewStaticUniformAdversary(universe) },
		func() Adversary { return NewBisectionAttack(universe, math.Log(float64(n))/float64(n)) },
	} {
		est := EstimateRobustness(
			func() Sampler { return NewReservoir(k) },
			mkAdv, sys, p, 20, NewRNG(101),
		)
		if est.Failure.Rate() > p.Delta+0.2 {
			t.Fatalf("robust reservoir failed %v of games vs %s",
				est.Failure.Rate(), mkAdv().Name())
		}
	}
}

// TestTheorem13EndToEnd verifies the attack's exact law: the prefix error
// equals 1 - |S|/n when the sample is non-empty.
func TestTheorem13EndToEnd(t *testing.T) {
	const n = 3000
	r := NewRNG(202)
	for trial := 0; trial < 10; trial++ {
		res := RunBisectionAttackBernoulli(n, 0.01, r)
		if len(res.Sample) == 0 {
			continue
		}
		d := NewPrefixes(int64(n)).MaxDiscrepancy(res.Stream, res.Sample)
		want := 1 - float64(len(res.Sample))/float64(n)
		if math.Abs(d.Err-want) > 1e-9 {
			t.Fatalf("attack error %v, exact law predicts %v", d.Err, want)
		}
	}
}

// TestTheorem14EndToEnd checks the continuous game at the Theorem 1.4 size:
// every checkpoint prefix must be an eps-approximation in most trials.
func TestTheorem14EndToEnd(t *testing.T) {
	const n = 2000
	universe := int64(1) << 16
	p := Params{Eps: 0.3, Delta: 0.15, N: n}
	sys := NewPrefixes(universe)
	k := ContinuousReservoirSize(p, sys.LogCardinality())
	cps := Checkpoints(k, n, p.Eps/4)

	fails := 0
	root := NewRNG(303)
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		res := RunContinuousGame(NewReservoir(k), NewStaticUniformAdversary(universe),
			sys, n, p.Eps, cps, root)
		if !res.OK {
			fails++
		}
		// The trajectory must include the final round.
		last := res.PrefixErrors[len(res.PrefixErrors)-1]
		if last.Round != n {
			t.Fatalf("final round missing from trajectory")
		}
	}
	if float64(fails)/trials > p.Delta+0.25 {
		t.Fatalf("continuous robustness failed %d/%d trials", fails, trials)
	}
}

// TestCrossoverShape reproduces the E11 crossover at small scale: under the
// unbounded attack, the sample lies among the k' ~ k(1+ln(n/k)) smallest
// elements, so a reservoir with k(1+ln(n/k)) << n/2 is broken while one
// with k(1+ln(n/k)) >> n/2 is not.
func TestCrossoverShape(t *testing.T) {
	const n = 4000
	// Solve k(1+ln(n/k)) = n/2 by scan.
	crossover := 1.0
	for k := 1.0; k < n; k++ {
		if k*(1+math.Log(n/k)) >= n/2 {
			crossover = k
			break
		}
	}
	small := int(crossover / 4)
	large := int(crossover * 4)
	if large > n {
		large = n
	}
	root := NewRNG(404)
	meanErr := func(k int) float64 {
		sum := 0.0
		const trials = 8
		for i := 0; i < trials; i++ {
			res := RunBisectionAttackReservoir(n, k, root)
			d := NewPrefixes(int64(n)).MaxDiscrepancy(res.Stream, res.Sample)
			sum += d.Err
		}
		return sum / trials
	}
	if e := meanErr(small); e < 0.5 {
		t.Fatalf("below-crossover k=%d should be broken, mean err %v", small, e)
	}
	if e := meanErr(large); e > 0.5 {
		t.Fatalf("above-crossover k=%d should survive, mean err %v", large, e)
	}
}

// TestSampleSizeMonotonicity: robust sizes behave monotonically in their
// arguments across the public calculators.
func TestSampleSizeMonotonicity(t *testing.T) {
	base := Params{Eps: 0.1, Delta: 0.1, N: 1 << 30}
	logR := 20.0
	if ReservoirSize(Params{Eps: 0.05, Delta: 0.1, N: base.N}, logR) <= ReservoirSize(base, logR) {
		t.Fatal("smaller eps must need larger k")
	}
	if ReservoirSize(Params{Eps: 0.1, Delta: 0.01, N: base.N}, logR) <= ReservoirSize(base, logR) {
		t.Fatal("smaller delta must need larger k")
	}
	if ReservoirSize(base, 40) <= ReservoirSize(base, logR) {
		t.Fatal("larger ln|R| must need larger k")
	}
	if BernoulliRate(base, 40) <= BernoulliRate(base, logR) {
		t.Fatal("larger ln|R| must need larger p")
	}
	if ContinuousReservoirSize(base, logR) <= ReservoirSize(base, logR) {
		t.Fatal("continuous robustness must cost more")
	}
}

// TestGameAdversaryCannotCheatVerdict: whatever the adversary does, the
// verdict is computed on the true stream — check the stream recorded by the
// game matches what the verdict used via the exact law of densities.
func TestGameVerdictConsistency(t *testing.T) {
	universe := int64(1 << 14)
	res := RunGame(NewReservoir(64), NewStaticUniformAdversary(universe),
		NewIntervals(universe), 1500, 0.4, NewRNG(505))
	// Recompute the witness density gap by hand.
	streamIn, sampleIn := 0, 0
	for _, x := range res.Stream {
		if x >= res.Discrepancy.Lo && x <= res.Discrepancy.Hi {
			streamIn++
		}
	}
	for _, x := range res.Sample {
		if x >= res.Discrepancy.Lo && x <= res.Discrepancy.Hi {
			sampleIn++
		}
	}
	got := math.Abs(float64(streamIn)/float64(len(res.Stream)) -
		float64(sampleIn)/float64(len(res.Sample)))
	if math.Abs(got-res.Discrepancy.Err) > 1e-9 {
		t.Fatalf("witness gap %v != reported %v", got, res.Discrepancy.Err)
	}
}

// TestBernoulliVsReservoirAgreement: at matched expected sample sizes, the
// two samplers achieve comparable approximation errors on the same
// workload.
func TestBernoulliVsReservoirAgreement(t *testing.T) {
	const n = 10000
	universe := int64(1 << 16)
	sys := NewPrefixes(universe)
	root := NewRNG(606)
	k := 1000
	p := float64(k) / n

	errOf := func(mk func() Sampler) float64 {
		sum := 0.0
		const trials = 10
		for i := 0; i < trials; i++ {
			res := RunGame(mk(), NewStaticUniformAdversary(universe), sys, n, 1, root)
			sum += res.Discrepancy.Err
		}
		return sum / trials
	}
	be := errOf(func() Sampler { return NewBernoulli(p) })
	re := errOf(func() Sampler { return NewReservoir(k) })
	if be > 3*re+0.02 || re > 3*be+0.02 {
		t.Fatalf("samplers disagree widely: bernoulli %v vs reservoir %v", be, re)
	}
}
