// The public serving surface: Engine.Serve lifts a sharded engine into a
// concurrent ingest session — many producer goroutines offering elements
// through lock-free per-shard rings while monitors run live checkpoint
// queries (Verdict, ShardVerdict, Sample, GlobalSample, Snapshot) behind
// epoch-stamped read barriers, without ever stopping the stream.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"robustsample/internal/runtime"
	ishard "robustsample/internal/shard"
)

// PipelineConfig sizes the concurrent ingest pipeline behind Serve.
// The zero value is usable: one producer lane, live routing, default ring
// and chunk sizes.
type PipelineConfig struct {
	// Producers is the number of ingest lanes; <= 0 selects 1. Each lane
	// must be driven by at most one goroutine at a time; distinct lanes
	// are fully independent.
	Producers int
	// RingSize bounds each lock-free ring (rounded up to a power of two);
	// it is the backpressure mechanism — producers that outrun ingest
	// block until consumers catch up. <= 0 selects 1024.
	RingSize int
	// ChunkCap caps how many elements a consumer applies per shard-lock
	// hold; smaller values shorten query stalls, larger ones amortize
	// locking. Results never depend on it. <= 0 selects 512.
	ChunkCap int
	// Deterministic selects sequenced routing: a router goroutine merges
	// the lanes in round-robin order (lane 0's first element, lane 1's
	// first, ..., lane 0's second, ...) and draws routing decisions
	// serially — the exact serial-ingest code path — so a stream striped
	// across lanes (lane p takes elements p, p+P, ...) yields
	// byte-identical samples and verdicts to serial OfferBatch, for every
	// producer count. Live mode (the default) maximizes throughput
	// instead: producers route their own elements lock-free, and the
	// ingested interleaving is whatever concurrency produced.
	Deterministic bool
	// CheckpointEvery enables crash supervision: each shard snapshots its
	// state roughly every CheckpointEvery applied elements, and a
	// panicking consumer restores the shard from its latest checkpoint
	// and retries instead of killing the process. Deterministic sessions
	// additionally replay a redo journal, so recovery is bit-identical
	// and loses nothing; live sessions lose at most one checkpoint
	// interval per crash, reconciled in the session's round counters.
	// 0 (the default) disables supervision — a consumer panic then
	// propagates and kills the process, exactly as before.
	CheckpointEvery int
	// RetryLimit is how many times a failing chunk is retried from the
	// restored checkpoint before being dropped (its elements count as
	// lost rounds); <= 0 selects 2. Only meaningful with supervision.
	RetryLimit int
	// QueryWait bounds how long the degraded reads (VerdictCovered,
	// SampleCovered, GlobalSampleCovered) wait per shard lock before
	// skipping the shard; <= 0 selects 5ms.
	QueryWait time.Duration
	// OnEpoch, when non-nil, is invoked synchronously with the completed
	// epoch after every epoch-stamped barrier the session takes: each
	// Flush, each Snapshot freeze, and the final drain of the first Close.
	// It runs on the barrier caller's goroutine and must be safe for
	// concurrent use when barriers are taken concurrently. Meta-sketches
	// layered above the engine use it to drive rotation from the serving
	// runtime — see robustsample/switching's Rotator.
	OnEpoch func(Epoch)
}

// WithPipeline configures the pipeline Serve starts (default: a one-lane
// live pipeline).
func WithPipeline(cfg PipelineConfig) Option {
	return func(c *config) error {
		if cfg.Producers < 0 {
			return fmt.Errorf("%w: negative producer count %d", ErrBadConfig, cfg.Producers)
		}
		if cfg.CheckpointEvery < 0 {
			return fmt.Errorf("%w: negative checkpoint interval %d", ErrBadConfig, cfg.CheckpointEvery)
		}
		c.pipeline = cfg
		return nil
	}
}

// Epoch stamps a serving read barrier: Seq increases with every barrier
// taken, and Applied counts the elements applied to shard state when the
// barrier completed.
type Epoch struct {
	Seq     uint64
	Applied uint64
}

func fromRuntimeEpoch(e runtime.Epoch) Epoch { return Epoch{Seq: e.Seq, Applied: e.Applied} }

// Serving is a live concurrent ingest session over an Engine. Feed it
// through Producer lanes; every query method is safe for concurrent use
// and runs against the session's read barriers while ingest continues.
// Close drains the pipeline and returns the engine to serial use.
type Serving[T any] struct {
	e       *Engine[T]
	inner   *ishard.Serving
	prods   []*Producer[T]
	onEpoch func(Epoch)
	qmu     sync.Mutex // guards coordRNG for GlobalSample and Snapshot
	done    chan struct{}
	once    sync.Once
	closeEp runtime.Epoch
}

// Producer is one ingest lane of a Serving session, owned by one goroutine
// at a time.
type Producer[T any] struct {
	s     *Serving[T]
	inner *runtime.Producer
	buf   []int64
}

// Serve starts a concurrent ingest session configured by WithPipeline.
// While the session is open the engine's mutating methods (Offer,
// OfferBatch/Ingest, MergeFrom, Restore; Reset is ignored) report
// ErrServing, and its read methods (Verdict, ShardVerdict, Sample, Query,
// GlobalSample, Snapshot, Rounds, ...) delegate to the session's read
// barriers — so code holding the engine as a sketch.Sketch[T] keeps
// working, live. Cancelling ctx closes the session in the background,
// after which producers get ErrServingClosed. A closed session cannot be
// restarted — call Serve again for a new one.
func (e *Engine[T]) Serve(ctx context.Context) (*Serving[T], error) {
	// Serialize Serve calls: a concurrent loser must not have started a
	// second pipeline over the same shards.
	e.serveMu.Lock()
	defer e.serveMu.Unlock()
	if e.srv.Load() != nil {
		return nil, ErrServing
	}
	pcfg := e.cfg.pipeline
	if pcfg.Producers <= 0 {
		pcfg.Producers = 1
	}
	inner, err := e.inner.Serve(ishard.ServeConfig{
		Producers:       pcfg.Producers,
		RingSize:        pcfg.RingSize,
		ChunkCap:        pcfg.ChunkCap,
		Deterministic:   pcfg.Deterministic,
		CheckpointEvery: pcfg.CheckpointEvery,
		RetryLimit:      pcfg.RetryLimit,
		QueryWait:       pcfg.QueryWait,
	})
	if err != nil {
		return nil, err
	}
	s := &Serving[T]{e: e, inner: inner, onEpoch: pcfg.OnEpoch, done: make(chan struct{})}
	s.prods = make([]*Producer[T], pcfg.Producers)
	for i := range s.prods {
		s.prods[i] = &Producer[T]{s: s, inner: inner.Producer(i)}
	}
	e.srv.Store(s)
	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.done:
			}
		}()
	}
	return s, nil
}

// Producer returns ingest lane i in [0, NumProducers).
func (s *Serving[T]) Producer(i int) (*Producer[T], error) {
	if i < 0 || i >= len(s.prods) {
		return nil, ErrBadProducer
	}
	return s.prods[i], nil
}

// NumProducers returns the lane count.
func (s *Serving[T]) NumProducers() int { return len(s.prods) }

// mapServeErr translates the internal pipeline's sentinels to the public
// ones: a closed pipeline reports ErrServingClosed; backpressure timeouts
// (already matching both ErrBackpressure and the ctx error) pass through.
func mapServeErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, runtime.ErrClosed) {
		return ErrServingClosed
	}
	return err
}

// Offer submits one element on this lane, blocking under backpressure
// until accepted. After the session closes it reports ErrServingClosed.
func (p *Producer[T]) Offer(x T) error {
	v, err := p.s.e.u.Encode(x)
	if err != nil {
		return err
	}
	return mapServeErr(p.inner.Offer(v))
}

// OfferContext is Offer with bounded waiting: if the element cannot be
// accepted before ctx is done (consumers not keeping up), it gives up and
// returns an error matching both ErrBackpressure and the ctx error.
// Backpressure waits use jittered exponential backoff, so stalled lanes do
// not spin.
func (p *Producer[T]) OfferContext(ctx context.Context, x T) error {
	v, err := p.s.e.u.Encode(x)
	if err != nil {
		return err
	}
	return mapServeErr(p.inner.OfferCtx(ctx, v))
}

// OfferBatch submits a run of consecutive elements on this lane. The batch
// is atomic against encoding errors: if any element is outside the
// universe, nothing is submitted.
func (p *Producer[T]) OfferBatch(xs []T) error {
	buf, err := p.encode(xs)
	if err != nil {
		return err
	}
	return mapServeErr(p.inner.OfferBatch(buf))
}

// OfferBatchContext is OfferBatch with bounded waiting: it submits as much
// of the batch as backpressure allows before ctx is done and returns how
// many elements were accepted, with an error matching both ErrBackpressure
// and the ctx error if it could not finish. Encoding errors are still
// atomic: if any element is outside the universe, nothing is submitted.
func (p *Producer[T]) OfferBatchContext(ctx context.Context, xs []T) (int, error) {
	buf, err := p.encode(xs)
	if err != nil {
		return 0, err
	}
	n, err := p.inner.OfferBatchCtx(ctx, buf)
	return n, mapServeErr(err)
}

func (p *Producer[T]) encode(xs []T) ([]int64, error) {
	buf := p.buf[:0]
	for _, x := range xs {
		v, err := p.s.e.u.Encode(x)
		if err != nil {
			return nil, err
		}
		buf = append(buf, v)
	}
	p.buf = buf
	return buf, nil
}

// Close marks the lane done. In deterministic mode this removes it from
// the sequencing rotation once drained; always close finished lanes so
// Flush barriers cannot wait on them.
func (p *Producer[T]) Close() { p.inner.Close() }

// Flush is the drain barrier: it returns once every element offered before
// the call has been applied to shard state.
//
// In deterministic mode the sequencer can only order elements lane by lane
// in rotation, so Flush completes once the rotation can cover everything
// offered — close lanes that are finished, or keep lanes evenly fed.
func (s *Serving[T]) Flush() Epoch {
	ep := fromRuntimeEpoch(s.inner.Flush())
	s.notifyEpoch(ep)
	return ep
}

// notifyEpoch delivers a completed barrier epoch to the configured hook.
func (s *Serving[T]) notifyEpoch(ep Epoch) {
	if s.onEpoch != nil {
		s.onEpoch(ep)
	}
}

// Rounds returns the number of elements accepted so far (applied or still
// in flight).
func (s *Serving[T]) Rounds() int { return s.inner.Rounds() }

// AppliedRounds returns the number of elements already applied to shard
// state — the cut the live queries see.
func (s *Serving[T]) AppliedRounds() int { return s.inner.AppliedRounds() }

// Verdict returns the exact discrepancy of the union of the applied
// substreams against the union sample, concurrently with ingest: per-shard
// histograms merge behind each shard's read barrier, so each shard's
// (substream, sample) pair is internally consistent, with shards cut at
// slightly different points of the in-flight stream. Flush first for a cut
// covering everything offered.
func (s *Serving[T]) Verdict() (Verdict[T], error) {
	return s.e.decodeVerdict(s.inner.Verdict())
}

// ShardVerdict returns shard i's local discrepancy: the shard is locked
// only long enough to copy its histograms; the scan runs on the copy.
func (s *Serving[T]) ShardVerdict(i int) (Verdict[T], error) {
	if i < 0 || i >= s.e.inner.NumShards() {
		return Verdict[T]{}, ErrBadShardIndex
	}
	return s.e.decodeVerdict(s.inner.ShardVerdict(i))
}

// Sample returns a copy of the union sample, decoded, each shard read
// behind its barrier.
//
//robust:panics retained points were validated on admission; an undecodable point is internal corruption, not caller error
func (s *Serving[T]) Sample() []T {
	ps := s.inner.Sample()
	out := make([]T, len(ps))
	for i, p := range ps {
		x, err := s.e.u.Decode(p)
		if err != nil {
			panic(fmt.Sprintf("shard: sample holds undecodable point %d: %v", p, err))
		}
		out[i] = x
	}
	return out
}

// SampleLen returns the union sample size.
func (s *Serving[T]) SampleLen() int { return s.inner.SampleLen() }

// GlobalSample draws a uniform size-k sample of the union of the applied
// substreams from the per-shard samples alone ([CTW16] fan-in), clamped to
// the available elements. Safe for concurrent use; coordinator randomness
// is serialized on the engine's query stream.
func (s *Serving[T]) GlobalSample(k int) ([]T, error) {
	if k < 1 {
		return nil, ErrBadSample
	}
	s.qmu.Lock()
	ps := s.inner.GlobalSample(k, s.e.coordRNG)
	s.qmu.Unlock()
	out := make([]T, len(ps))
	for i, p := range ps {
		x, err := s.e.u.Decode(p)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// Snapshot serializes the engine under a freeze: a single
// cross-shard-consistent cut of the applied state, in exactly the format
// of Engine.Snapshot. For a checkpoint covering everything offered — and,
// in deterministic mode, a routing stream that replays bit-exactly — Flush
// first and keep producers quiescent across the call.
//
//robust:codec-pair emits the Engine codec; Engine.Restore is the paired decoder
func (s *Serving[T]) Snapshot() ([]byte, error) {
	s.qmu.Lock()
	hi, lo := s.e.coordRNG.State()
	s.qmu.Unlock()
	out, ep, err := s.inner.AppendState(s.e.snapPreamble(hi, lo))
	if err != nil {
		return nil, err
	}
	s.notifyEpoch(fromRuntimeEpoch(ep))
	return out, nil
}

// Close drains everything offered, stops the pipeline, and returns the
// engine to serial use. It is idempotent; the drain epoch of the first
// close is returned every time.
func (s *Serving[T]) Close() Epoch {
	s.once.Do(func() {
		s.closeEp = s.inner.Close()
		s.e.srv.Store(nil)
		close(s.done)
		s.notifyEpoch(fromRuntimeEpoch(s.closeEp))
	})
	return fromRuntimeEpoch(s.closeEp)
}
