package shard_test

import (
	"context"
	"errors"
	"slices"
	"sync"
	"testing"

	"robustsample/shard"
	"robustsample/sketch"
)

func servingUniverse(t *testing.T) sketch.Universe[int64] {
	t.Helper()
	u, err := sketch.NewInt64Range(1, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func servingValues(n int) []int64 {
	xs := make([]int64, n)
	v := int64(12345)
	for i := range xs {
		v = (v*6364136223846793005 + 1442695040888963407) >> 1
		if v < 0 {
			v = -v
		}
		xs[i] = v%(1<<14) + 1
		if v == 0 {
			v = 1
		}
	}
	return xs
}

// TestServeDeterministicMatchesSerial strides one stream across P public
// producer lanes in deterministic mode and checks byte-identical samples
// and verdicts against serial OfferBatch.
func TestServeDeterministicMatchesSerial(t *testing.T) {
	u := servingUniverse(t)
	stream := servingValues(4000)
	for _, P := range []int{1, 2, 4} {
		mk := func(pipe shard.PipelineConfig) *shard.Engine[int64] {
			e, err := shard.New(u,
				shard.WithShards(3), shard.WithReservoir(32), shard.WithSeed(42),
				shard.WithWorkers(1), shard.WithPipeline(pipe))
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		serial := mk(shard.PipelineConfig{})
		if _, err := serial.OfferBatch(stream); err != nil {
			t.Fatal(err)
		}
		wantV, err := serial.Verdict()
		if err != nil {
			t.Fatal(err)
		}
		wantSample := serial.Sample()

		eng := mk(shard.PipelineConfig{Producers: P, Deterministic: true})
		srv, err := eng.Serve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(P)
		for lane := 0; lane < P; lane++ {
			go func(lane int) {
				defer wg.Done()
				pr, err := srv.Producer(lane)
				if err != nil {
					t.Error(err)
					return
				}
				for g := lane; g < len(stream); g += P {
					if err := pr.Offer(stream[g]); err != nil {
						t.Errorf("lane %d: %v", lane, err)
						return
					}
				}
				pr.Close()
			}(lane)
		}
		wg.Wait()
		srv.Flush()
		gotV, err := srv.Verdict()
		if err != nil {
			t.Fatalf("P=%d: live Verdict: %v", P, err)
		}
		gotSample := srv.Sample()
		srv.Close()
		if gotV != wantV {
			t.Fatalf("P=%d: serving verdict %+v, serial %+v", P, gotV, wantV)
		}
		if !slices.Equal(gotSample, wantSample) {
			t.Fatalf("P=%d: serving sample diverged from serial", P)
		}
		// After Close, direct engine use resumes and sees the same state.
		postV, err := eng.Verdict()
		if err != nil {
			t.Fatalf("P=%d: post-Close Verdict: %v", P, err)
		}
		if postV != wantV {
			t.Fatalf("P=%d: post-Close verdict %+v, want %+v", P, postV, wantV)
		}
	}
}

// TestServeGuardsDirectUse pins the direct-engine contract while a session
// is open: mutating methods report ErrServing, read methods delegate to
// the live session's barriers, and everything recovers after Close.
func TestServeGuardsDirectUse(t *testing.T) {
	u := servingUniverse(t)
	e, err := shard.New(u, shard.WithShards(2), shard.WithReservoir(8))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := e.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Offer(1); !errors.Is(err, shard.ErrServing) {
		t.Errorf("Offer while serving: %v, want ErrServing", err)
	}
	if _, err := e.OfferBatch([]int64{1}); !errors.Is(err, shard.ErrServing) {
		t.Errorf("OfferBatch while serving: %v, want ErrServing", err)
	}
	if err := e.Restore(nil); !errors.Is(err, shard.ErrServing) {
		t.Errorf("Restore while serving: %v, want ErrServing", err)
	}
	if _, err := e.Serve(context.Background()); !errors.Is(err, shard.ErrServing) {
		t.Errorf("second Serve: %v, want ErrServing", err)
	}

	// Reads delegate to the live session while producers run.
	pr, err := srv.Producer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.OfferBatch(servingValues(300)); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	if _, err := e.Verdict(); err != nil {
		t.Errorf("Verdict while serving (live delegate): %v", err)
	}
	if _, err := e.GlobalSample(4); err != nil {
		t.Errorf("GlobalSample while serving (live delegate): %v", err)
	}
	if got := e.Rounds(); got != 300 {
		t.Errorf("Rounds while serving = %d, want 300", got)
	}
	if got, want := e.SampleLen(), len(e.Sample()); got != want {
		t.Errorf("SampleLen %d != len(Sample) %d while serving", got, want)
	}
	if _, err := e.Query(1, 1<<14); err != nil {
		t.Errorf("Query while serving (live delegate): %v", err)
	}
	srv.Close()
	if _, err := e.Offer(1); err != nil {
		t.Errorf("Offer after Close: %v", err)
	}
}

// TestServeContextCancel closes the session via context; producers then get
// ErrServingClosed and nothing accepted is lost.
func TestServeContextCancel(t *testing.T) {
	u := servingUniverse(t)
	e, err := shard.New(u, shard.WithShards(2), shard.WithReservoir(8),
		shard.WithPipeline(shard.PipelineConfig{Producers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := e.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := srv.Producer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.OfferBatch(servingValues(500)); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The watcher closes asynchronously; wait for the rejection to appear.
	for i := 0; ; i++ {
		if err := pr.Offer(1); err != nil {
			if !errors.Is(err, shard.ErrServingClosed) {
				t.Fatalf("post-cancel Offer error = %v, want ErrServingClosed", err)
			}
			break
		}
		if i > 1_000_000 {
			t.Fatal("producer never observed the cancelled session")
		}
	}
	srv.Close() // idempotent with the watcher's close
	if got := e.Rounds(); got < 500 {
		t.Fatalf("engine lost accepted elements: rounds %d, want >= 500", got)
	}
}

// TestServeSnapshotMatchesSerial takes a snapshot through the live session
// at a flush barrier and checks it restores into an engine identical to
// one built serially.
func TestServeSnapshotMatchesSerial(t *testing.T) {
	u := servingUniverse(t)
	stream := servingValues(3000)
	opts := []shard.Option{shard.WithShards(2), shard.WithReservoir(16), shard.WithSeed(7), shard.WithWorkers(1)}

	serial, err := shard.New(u, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serial.OfferBatch(stream); err != nil {
		t.Fatal(err)
	}
	want, err := serial.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	live, err := shard.New(u, append(opts, shard.WithPipeline(shard.PipelineConfig{Deterministic: true}))...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := live.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := srv.Producer(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.OfferBatch(stream); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	got, err := srv.Snapshot() // via the session's freeze barrier
	if err != nil {
		t.Fatal(err)
	}
	if gotDirect, err := live.Snapshot(); err != nil || !slices.Equal(got, gotDirect) {
		t.Fatalf("Engine.Snapshot while serving diverged from Serving.Snapshot (err=%v)", err)
	}
	srv.Close()
	if !slices.Equal(got, want) {
		t.Fatal("snapshot through the live session differs from the serial engine's")
	}
}

// TestEngineMergeFrom checks the public engine fan-in and its
// compatibility gates.
func TestEngineMergeFrom(t *testing.T) {
	u := servingUniverse(t)
	mk := func(seed uint64, opts ...shard.Option) *shard.Engine[int64] {
		e, err := shard.New(u, append([]shard.Option{shard.WithShards(2), shard.WithSeed(seed), shard.WithWorkers(1)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := mk(1, shard.WithReservoir(24))
	b := mk(2, shard.WithReservoir(24))
	sa, sb := servingValues(2000), servingValues(1500)
	if _, err := a.OfferBatch(sa); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OfferBatch(sb); err != nil {
		t.Fatal(err)
	}
	if err := a.MergeFrom(b); err != nil {
		t.Fatalf("MergeFrom: %v", err)
	}
	if got, want := a.Rounds(), len(sa)+len(sb); got != want {
		t.Errorf("merged Rounds = %d, want %d", got, want)
	}
	if _, err := a.Verdict(); err != nil {
		t.Errorf("merged Verdict: %v", err)
	}

	// Gates.
	c := mk(3, shard.WithReservoir(8))
	d := mk(4, shard.WithBernoulli(0.1))
	if err := c.MergeFrom(d); !errors.Is(err, sketch.ErrIncompatible) {
		t.Errorf("mixed-sampler merge: %v, want ErrIncompatible", err)
	}
	l1 := mk(5, shard.WithReservoirL(8))
	l2 := mk(6, shard.WithReservoirL(8))
	if err := l1.MergeFrom(l2); !errors.Is(err, sketch.ErrUnsupportedMerge) {
		t.Errorf("Algorithm L merge: %v, want ErrUnsupportedMerge", err)
	}
	var sk sketch.Sketch[int64]
	sk, err := sketch.NewReservoir(u, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MergeFrom(sk); !errors.Is(err, sketch.ErrIncompatible) {
		t.Errorf("foreign-type merge: %v, want ErrIncompatible", err)
	}
}

// TestEngineIsASketch drives the engine through the sketch.Sketch
// interface alone.
func TestEngineIsASketch(t *testing.T) {
	u := servingUniverse(t)
	e, err := shard.New(u, shard.WithShards(3), shard.WithReservoir(16), shard.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	var s sketch.Sketch[int64] = e
	if _, err := s.Offer(7); err != nil {
		t.Fatal(err)
	}
	admitted, err := s.OfferBatch(servingValues(400))
	if err != nil {
		t.Fatal(err)
	}
	if admitted < 1 {
		t.Errorf("OfferBatch admitted %d, want >= 1", admitted)
	}
	if s.Rounds() != 401 {
		t.Errorf("Rounds = %d, want 401", s.Rounds())
	}
	if got := s.Len(); got != len(s.View()) {
		t.Errorf("Len %d != len(View) %d", got, len(s.View()))
	}
	den, err := s.Query(1, 1<<14)
	if err != nil || den != 1 {
		t.Errorf("Query(full universe) = %v, %v; want 1, nil", den, err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Rounds() != 0 {
		t.Error("Reset did not clear rounds")
	}
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s.Rounds() != 401 {
		t.Errorf("restored Rounds = %d, want 401", s.Rounds())
	}
}
