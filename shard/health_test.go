package shard_test

import (
	"context"
	"errors"
	"slices"
	"testing"
	"time"

	"robustsample/shard"
)

// TestServeSupervisedHealth runs a supervised public session (checkpoints
// on, no faults) and pins the health and coverage surface: checkpoint
// counters advance, round accounting is exact, and the covered query
// variants agree with the blocking ones under full coverage.
func TestServeSupervisedHealth(t *testing.T) {
	u := servingUniverse(t)
	const S, n = 4, 3000
	e, err := shard.New(u,
		shard.WithShards(S), shard.WithReservoir(32), shard.WithSeed(7),
		shard.WithWorkers(1),
		shard.WithPipeline(shard.PipelineConfig{
			Producers: 2, CheckpointEvery: 128, QueryWait: time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := e.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stream := servingValues(n)
	for lane := 0; lane < 2; lane++ {
		pr, err := srv.Producer(lane)
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.OfferBatch(stream[lane*n/2 : (lane+1)*n/2]); err != nil {
			t.Fatal(err)
		}
	}
	srv.Flush()

	h := srv.Health()
	if !h.Supervised || h.Degraded() {
		t.Fatalf("health = %+v, want supervised and healthy", h)
	}
	if h.Crashes != 0 || h.Restores != 0 || h.LostRounds != 0 {
		t.Fatalf("fault-free run reports crashes/restores/losses: %+v", h)
	}
	if h.Checkpoints < uint64(S) {
		t.Fatalf("checkpoints = %d, want at least the %d baselines", h.Checkpoints, S)
	}
	rounds := 0
	for i, sh := range h.Shards {
		if sh.Status != shard.Healthy {
			t.Fatalf("shard %d status %v", i, sh.Status)
		}
		rounds += sh.Rounds
	}
	if rounds != n {
		t.Fatalf("health rounds sum %d, want %d", rounds, n)
	}

	wantV, err := srv.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	gotV, cov, err := srv.VerdictCovered()
	if err != nil {
		t.Fatal(err)
	}
	if !cov.Complete() || cov.Covered != n || cov.Routed != n || len(cov.Stalled) != 0 {
		t.Fatalf("quiescent coverage = %+v, want complete over %d rounds", cov, n)
	}
	if gotV != wantV {
		t.Fatalf("VerdictCovered %+v under full coverage, Verdict %+v", gotV, wantV)
	}
	wantSample := srv.Sample()
	gotSample, cov2, err := srv.SampleCovered()
	if err != nil {
		t.Fatal(err)
	}
	if !cov2.Complete() || !slices.Equal(gotSample, wantSample) {
		t.Fatalf("SampleCovered diverged from Sample under full coverage")
	}
	gs, cov3, err := srv.GlobalSampleCovered(16)
	if err != nil {
		t.Fatal(err)
	}
	if !cov3.Complete() || len(gs) != 16 {
		t.Fatalf("GlobalSampleCovered = %d elements, coverage %+v", len(gs), cov3)
	}
	if _, _, err := srv.GlobalSampleCovered(0); !errors.Is(err, shard.ErrBadSample) {
		t.Fatalf("GlobalSampleCovered(0) = %v, want ErrBadSample", err)
	}
	srv.Close()
	if got := e.Rounds(); got != n {
		t.Fatalf("post-Close rounds %d, want %d", got, n)
	}
}

// TestServeUnsupervisedHealth pins the health view without supervision:
// still available, with exact per-shard rounds and no recovery counters.
func TestServeUnsupervisedHealth(t *testing.T) {
	u := servingUniverse(t)
	e, err := shard.New(u, shard.WithShards(2), shard.WithReservoir(8), shard.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := e.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := srv.Producer(0)
	if err := pr.OfferBatch(servingValues(500)); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	h := srv.Health()
	if h.Supervised {
		t.Fatalf("unsupervised session reports Supervised")
	}
	rounds := 0
	for _, sh := range h.Shards {
		rounds += sh.Rounds
	}
	if rounds != 500 || h.Degraded() {
		t.Fatalf("health = %+v, want 500 healthy rounds", h)
	}
	srv.Close()
}

// TestServeContextOffers pins the ctx-aware producer surface: the context
// variants behave like the blocking ones when backpressure clears, and
// every variant reports ErrServingClosed after Close.
func TestServeContextOffers(t *testing.T) {
	u := servingUniverse(t)
	e, err := shard.New(u, shard.WithShards(2), shard.WithReservoir(8), shard.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := e.Serve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := srv.Producer(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := pr.OfferContext(ctx, 11); err != nil {
		t.Fatal(err)
	}
	if n, err := pr.OfferBatchContext(ctx, servingValues(100)); err != nil || n != 100 {
		t.Fatalf("OfferBatchContext = (%d, %v), want (100, nil)", n, err)
	}
	// Encoding errors stay atomic: nothing submitted, error is the codec's.
	if _, err := pr.OfferBatchContext(ctx, []int64{5, 1 << 20}); err == nil {
		t.Fatal("OfferBatchContext accepted an out-of-universe element")
	}
	srv.Flush()
	if got := srv.Rounds(); got != 101 {
		t.Fatalf("rounds = %d, want 101", got)
	}
	srv.Close()
	if err := pr.Offer(3); !errors.Is(err, shard.ErrServingClosed) {
		t.Fatalf("Offer after Close = %v, want ErrServingClosed", err)
	}
	if err := pr.OfferContext(ctx, 3); !errors.Is(err, shard.ErrServingClosed) {
		t.Fatalf("OfferContext after Close = %v, want ErrServingClosed", err)
	}
	if err := pr.OfferBatch([]int64{3}); !errors.Is(err, shard.ErrServingClosed) {
		t.Fatalf("OfferBatch after Close = %v, want ErrServingClosed", err)
	}
	if n, err := pr.OfferBatchContext(ctx, []int64{3}); n != 0 || !errors.Is(err, shard.ErrServingClosed) {
		t.Fatalf("OfferBatchContext after Close = (%d, %v), want (0, ErrServingClosed)", n, err)
	}
}

// TestServeCloseContext pins the public drain-deadline surface on the
// happy path: CloseContext drains, closes the session, and agrees with the
// idempotent Close.
func TestServeCloseContext(t *testing.T) {
	u := servingUniverse(t)
	e, err := shard.New(u, shard.WithShards(2), shard.WithReservoir(8), shard.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := e.Serve(nil)
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := srv.Producer(0)
	if err := pr.OfferBatch(servingValues(300)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ep, err := srv.CloseContext(ctx)
	if err != nil {
		t.Fatalf("CloseContext: %v", err)
	}
	if ep.Applied != 300 {
		t.Fatalf("drain epoch applied %d, want 300", ep.Applied)
	}
	if again := srv.Close(); again != ep {
		t.Fatalf("Close after CloseContext = %+v, want the same epoch %+v", again, ep)
	}
	// The engine is back to serial use.
	if _, err := e.OfferBatch(servingValues(10)); err != nil {
		t.Fatalf("serial OfferBatch after CloseContext: %v", err)
	}
	if got := e.Rounds(); got != 310 {
		t.Fatalf("rounds = %d, want 310", got)
	}
}

// TestWithPipelineValidation pins option validation for the new knobs.
func TestWithPipelineValidation(t *testing.T) {
	u := servingUniverse(t)
	if _, err := shard.New(u, shard.WithReservoir(8),
		shard.WithPipeline(shard.PipelineConfig{CheckpointEvery: -1})); err == nil {
		t.Fatal("New accepted a negative checkpoint interval")
	}
}
