package shard_test

import (
	"context"
	"fmt"
	"sync"

	"robustsample/internal/rng"
	"robustsample/shard"
	"robustsample/sketch"
)

// Example routes one stream across four shards and answers coordinator
// queries from per-shard state alone: the merged verdict is bit-identical
// to a one-shot check of the union stream, and GlobalSample draws a
// uniform sample of the union from the per-shard samples ([CTW16]).
func Example() {
	u, err := sketch.NewInt64Universe(1 << 16)
	if err != nil {
		panic(err)
	}
	e, err := shard.New(u,
		shard.WithShards(4),
		shard.WithRouter(shard.RouterUniform),
		shard.WithSystem(shard.Prefixes),
		shard.WithReservoir(512),
		shard.WithSeed(20200614),
	)
	if err != nil {
		panic(err)
	}

	r := rng.New(1)
	batch := make([]int64, 20000)
	for i := range batch {
		batch[i] = 1 + r.Int63n(1<<16)
	}
	if err := e.Ingest(batch); err != nil {
		panic(err)
	}

	v, err := e.Verdict()
	if err != nil {
		panic(err)
	}
	global, err := e.GlobalSample(100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("shards=%d rounds=%d union sample=%d\n", e.NumShards(), e.Rounds(), e.SampleLen())
	fmt.Printf("global KS error=%.4f witness=[%d,%d] global sample k=%d\n", v.Err, v.Lo, v.Hi, len(global))
	// Output:
	// shards=4 rounds=20000 union sample=2048
	// global KS error=0.0085 witness=[1,31553] global sample k=100
}

// ExampleEngine_Serve lifts the engine into a concurrent serving session:
// two producer goroutines stripe a stream across lanes while the verdict
// is queried live. Deterministic mode sequences the lanes, so the result
// is byte-identical to serial ingest of the same stream — whatever the
// goroutine scheduling was.
func ExampleEngine_Serve() {
	u, err := sketch.NewInt64Universe(1 << 16)
	if err != nil {
		panic(err)
	}
	e, err := shard.New(u,
		shard.WithShards(4),
		shard.WithReservoir(512),
		shard.WithSeed(20200614),
		shard.WithPipeline(shard.PipelineConfig{Producers: 2, Deterministic: true}),
	)
	if err != nil {
		panic(err)
	}

	r := rng.New(1)
	stream := make([]int64, 20000)
	for i := range stream {
		stream[i] = 1 + r.Int63n(1<<16)
	}

	srv, err := e.Serve(context.Background())
	if err != nil {
		panic(err)
	}
	var wg sync.WaitGroup
	for lane := 0; lane < 2; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			pr, err := srv.Producer(lane)
			if err != nil {
				panic(err)
			}
			for g := lane; g < len(stream); g += 2 {
				if err := pr.Offer(stream[g]); err != nil {
					panic(err)
				}
			}
			pr.Close() // done: drop out of the sequencing rotation
		}(lane)
	}
	wg.Wait()

	ep := srv.Flush() // barrier: everything offered is now applied
	v, err := srv.Verdict()
	if err != nil {
		panic(err)
	}
	srv.Close()
	fmt.Printf("applied=%d rounds=%d union sample=%d\n", ep.Applied, e.Rounds(), e.SampleLen())
	fmt.Printf("live KS error=%.4f witness=[%d,%d]\n", v.Err, v.Lo, v.Hi)
	// Output:
	// applied=20000 rounds=20000 union sample=2048
	// live KS error=0.0085 witness=[1,31553]
}
