package shard_test

import (
	"fmt"

	"robustsample/internal/rng"
	"robustsample/shard"
	"robustsample/sketch"
)

// Example routes one stream across four shards and answers coordinator
// queries from per-shard state alone: the merged verdict is bit-identical
// to a one-shot check of the union stream, and GlobalSample draws a
// uniform sample of the union from the per-shard samples ([CTW16]).
func Example() {
	u, err := sketch.NewInt64Universe(1 << 16)
	if err != nil {
		panic(err)
	}
	e, err := shard.New(u,
		shard.WithShards(4),
		shard.WithRouter(shard.RouterUniform),
		shard.WithSystem(shard.Prefixes),
		shard.WithReservoir(512),
		shard.WithSeed(20200614),
	)
	if err != nil {
		panic(err)
	}

	r := rng.New(1)
	batch := make([]int64, 20000)
	for i := range batch {
		batch[i] = 1 + r.Int63n(1<<16)
	}
	if err := e.Ingest(batch); err != nil {
		panic(err)
	}

	v, err := e.Verdict()
	if err != nil {
		panic(err)
	}
	global, err := e.GlobalSample(100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("shards=%d rounds=%d union sample=%d\n", e.NumShards(), e.Rounds(), e.SampleLen())
	fmt.Printf("global KS error=%.4f witness=[%d,%d] global sample k=%d\n", v.Err, v.Lo, v.Hi, len(global))
	// Output:
	// shards=4 rounds=20000 union sample=2048
	// global KS error=0.0085 witness=[1,31553] global sample k=100
}
