package shard_test

import (
	"bytes"
	"errors"
	"slices"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/setsystem"
	"robustsample/shard"
	"robustsample/sketch"
)

func mustU[T any](u sketch.Universe[T], err error) sketch.Universe[T] {
	if err != nil {
		panic(err)
	}
	return u
}

func testStream(n int, universe int64, seed uint64) []int64 {
	r := rng.New(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 + r.Int63n(universe)
	}
	return out
}

func TestValidation(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1 << 10))
	cases := []struct {
		name string
		opts []shard.Option
		want error
	}{
		{"no sampler", nil, shard.ErrNoSampler},
		{"two samplers", []shard.Option{shard.WithReservoir(4), shard.WithBernoulli(0.5)}, shard.ErrNoSampler},
		{"bad shards", []shard.Option{shard.WithShards(0), shard.WithReservoir(4)}, shard.ErrBadShards},
		{"bad memory", []shard.Option{shard.WithReservoir(0)}, shard.ErrBadMemory},
		{"bad rate", []shard.Option{shard.WithBernoulli(1.5)}, shard.ErrBadRate},
	}
	for _, c := range cases {
		if _, err := shard.New(u, c.opts...); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	if _, err := shard.New[int64](nil, shard.WithReservoir(4)); !errors.Is(err, sketch.ErrNilUniverse) {
		t.Fatalf("nil universe err = %v, want ErrNilUniverse", err)
	}

	e, err := shard.New(u, shard.WithShards(2), shard.WithReservoir(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ShardVerdict(5); !errors.Is(err, shard.ErrBadShardIndex) {
		t.Fatalf("shard index err = %v, want ErrBadShardIndex", err)
	}
	if _, err := e.GlobalSample(0); !errors.Is(err, shard.ErrBadSample) {
		t.Fatalf("k=0 err = %v, want ErrBadSample", err)
	}
	if _, _, err := e.OfferRouted(0); !errors.Is(err, sketch.ErrOutOfUniverse) {
		t.Fatalf("OfferRouted(0) err = %v, want ErrOutOfUniverse", err)
	}
	if err := e.Ingest([]int64{1, 2, 2000}); !errors.Is(err, sketch.ErrOutOfUniverse) {
		t.Fatalf("Ingest err = %v, want ErrOutOfUniverse", err)
	}
	if e.Rounds() != 0 {
		t.Fatal("failed ingest routed elements")
	}
}

// TestVerdictMatchesOneShot: the public engine's merged verdict must be
// bit-identical to a one-shot discrepancy on the union stream and union
// sample, for every router.
func TestVerdictMatchesOneShot(t *testing.T) {
	const universe = int64(1 << 12)
	stream := testStream(5000, universe, 21)
	for _, router := range []shard.RouterKind{shard.RouterUniform, shard.RouterHash, shard.RouterRoundRobin} {
		t.Run(router.String(), func(t *testing.T) {
			u := mustU(sketch.NewInt64Universe(universe))
			e, err := shard.New(u,
				shard.WithShards(4),
				shard.WithRouter(router),
				shard.WithSystem(shard.Intervals),
				shard.WithReservoir(32),
				shard.WithSeed(77))
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Ingest(stream); err != nil {
				t.Fatal(err)
			}
			got, err := e.Verdict()
			if err != nil {
				t.Fatal(err)
			}
			sys := setsystem.NewIntervals(universe)
			want := sys.MaxDiscrepancy(stream, e.Sample())
			if got.Err != want.Err || !got.HasWitness || got.Lo != want.Lo || got.Hi != want.Hi {
				t.Fatalf("verdict %+v != one-shot %v", got, want)
			}
		})
	}
}

// TestWorkerAndChunkInvariance: worker-pool size and ingest slicing must
// not change any observable state.
func TestWorkerAndChunkInvariance(t *testing.T) {
	const universe = int64(1 << 12)
	stream := testStream(4000, universe, 33)
	u := mustU(sketch.NewInt64Universe(universe))
	build := func(workers int) *shard.Engine[int64] {
		e, err := shard.New(u,
			shard.WithShards(3),
			shard.WithReservoir(16),
			shard.WithWorkers(workers),
			shard.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ref := build(1)
	if err := ref.Ingest(stream); err != nil {
		t.Fatal(err)
	}
	refVerdict, _ := ref.Verdict()

	parallel := build(4)
	for i := 0; i < len(stream); i += 113 {
		if err := parallel.Ingest(stream[i:min(i+113, len(stream))]); err != nil {
			t.Fatal(err)
		}
	}
	gotVerdict, _ := parallel.Verdict()
	if gotVerdict != refVerdict {
		t.Fatalf("verdict depends on workers/chunking: %+v != %+v", gotVerdict, refVerdict)
	}
	if !slices.Equal(ref.Sample(), parallel.Sample()) {
		t.Fatal("union sample depends on workers/chunking")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	const universe = int64(1 << 12)
	u := mustU(sketch.NewInt64Universe(universe))
	build := func(seed uint64) *shard.Engine[int64] {
		e, err := shard.New(u,
			shard.WithShards(3),
			shard.WithRouter(shard.RouterUniform),
			shard.WithReservoir(16),
			shard.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	stream := testStream(3000, universe, 41)
	e := build(7)
	if err := e.Ingest(stream[:2000]); err != nil {
		t.Fatal(err)
	}
	before, _ := e.Verdict()

	s1, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Restore into an engine with a different seed: all state, including
	// every RNG stream, must come from the snapshot.
	f := build(12345)
	if err := f.Restore(s1); err != nil {
		t.Fatal(err)
	}
	s2, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("engine snapshot not bit-identical after restore")
	}
	after, _ := f.Verdict()
	if after != before {
		t.Fatalf("restored verdict %+v != %+v", after, before)
	}

	// Continuation is bit-identical: same traffic, same verdicts, same
	// coordinator samples.
	if err := e.Ingest(stream[2000:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Ingest(stream[2000:]); err != nil {
		t.Fatal(err)
	}
	ve, _ := e.Verdict()
	vf, _ := f.Verdict()
	if ve != vf {
		t.Fatalf("continuation verdicts diverged: %+v != %+v", vf, ve)
	}
	ge, err := e.GlobalSample(10)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := f.GlobalSample(10)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(ge, gf) {
		t.Fatal("coordinator GlobalSample diverged after restore")
	}

	// Mismatched configuration is rejected.
	other, err := shard.New(u, shard.WithShards(2), shard.WithReservoir(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(s1); !errors.Is(err, shard.ErrBadSnapshot) {
		t.Fatalf("shard-count mismatch err = %v, want ErrBadSnapshot", err)
	}
}

func TestResetReplaysIdentically(t *testing.T) {
	u := mustU(sketch.NewInt64Universe(1 << 10))
	e, err := shard.New(u, shard.WithShards(2), shard.WithReservoir(8), shard.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	stream := testStream(1000, 1<<10, 9)
	if err := e.Ingest(stream); err != nil {
		t.Fatal(err)
	}
	v1, _ := e.Verdict()
	sample1 := e.Sample()
	e.Reset()
	if e.Rounds() != 0 || e.SampleLen() != 0 {
		t.Fatal("Reset did not clear")
	}
	if err := e.Ingest(stream); err != nil {
		t.Fatal(err)
	}
	v2, _ := e.Verdict()
	if v1 != v2 || !slices.Equal(sample1, e.Sample()) {
		t.Fatal("replay after Reset not bit-identical")
	}
}

func TestStringShardEngine(t *testing.T) {
	u, err := sketch.NewStringUniverse("apple", "banana", "cherry", "date", "elder")
	if err != nil {
		t.Fatal(err)
	}
	e, err := shard.New(u, shard.WithShards(2), shard.WithReservoir(100), shard.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"apple", "banana", "apple", "cherry", "apple", "date"}
	if err := e.Ingest(words); err != nil {
		t.Fatal(err)
	}
	v, err := e.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	// Capacity exceeds the stream: the union sample IS the stream, so the
	// discrepancy is exactly zero and no witness exists.
	if v.Err != 0 || v.HasWitness {
		t.Fatalf("full-capacity verdict = %+v, want zero", v)
	}
	got := e.Sample()
	slices.Sort(got)
	want := slices.Clone(words)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatalf("union sample %v != stream %v", got, want)
	}
}
