// Package shard is the public sharded continuous-sampling engine: one
// stream of T routed across S shards, each maintaining its own robust
// sampler and incremental discrepancy accumulator, with coordinator
// queries that never touch raw substreams (Section 1.3 of the paper;
// Chung-Tirthapura-Woodruff [CTW16] and Cormode et al. [CMYZ12]):
//
//   - Verdict merges per-shard histograms into the exact discrepancy of
//     the union stream against the union sample — bit-identical to a
//     one-shot verdict on the concatenated stream, at a cost proportional
//     to distinct values, not traffic.
//   - GlobalSample draws a uniform sample of the union stream from the
//     per-shard samples alone (the [CTW16] coordinator primitive).
//   - Snapshot/Restore serialize the complete engine — every shard's
//     sampler, accumulator and RNG stream — through the same versioned
//     deterministic encoding as the rest of the module, so a deployment
//     can checkpoint, migrate or fan-in engines across processes.
//
// The engine is generic over its element type through a
// sketch.Universe[T] codec and is configured with functional options
// (WithShards, WithRouter, WithReservoir, WithWorkers, ...). It is
// deterministic given its seed: results are byte-identical for every
// worker count, and batch ingest is invariant to how the stream is sliced.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/runtime"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	ishard "robustsample/internal/shard"
	"robustsample/internal/snapshot"
	"robustsample/sketch"
)

// Sentinel errors.
var (
	// ErrBadShards reports a shard count below 1.
	ErrBadShards = errors.New("shard: shard count must be >= 1")
	// ErrBadMemory reports a per-shard sample capacity below 1.
	ErrBadMemory = sketch.ErrBadMemory
	// ErrBadRate reports a Bernoulli rate outside [0, 1].
	ErrBadRate = sketch.ErrBadRate
	// ErrNoSampler reports an engine built without a sampler option.
	ErrNoSampler = errors.New("shard: exactly one of WithReservoir, WithReservoirL or WithBernoulli is required")
	// ErrBadShardIndex reports a shard index outside [0, NumShards).
	ErrBadShardIndex = errors.New("shard: shard index out of range")
	// ErrBadSnapshot reports a corrupt or mismatched snapshot.
	ErrBadSnapshot = sketch.ErrBadSnapshot
	// ErrBadSample reports a non-positive GlobalSample size.
	ErrBadSample = errors.New("shard: global sample size must be >= 1")
	// ErrServing reports a direct engine operation while a Serving session
	// is open; Close the Serving first.
	ErrServing = errors.New("shard: engine is serving; close the Serving handle first")
	// ErrServingClosed reports an operation on a closed Serving session.
	ErrServingClosed = errors.New("shard: serving session is closed")
	// ErrBadProducer reports a producer lane index outside [0, Producers).
	ErrBadProducer = errors.New("shard: producer lane index out of range")
	// ErrBadConfig reports an out-of-range option value (negative worker,
	// producer or checkpoint counts); the wrapping error names the field.
	ErrBadConfig = errors.New("shard: invalid configuration")
	// ErrBackpressure reports an OfferContext/OfferBatchContext whose ctx
	// expired while the pipeline was applying backpressure (consumers not
	// keeping up); the returned error also matches the ctx error.
	ErrBackpressure = runtime.ErrBackpressure
	// ErrDrainTimeout reports a CloseContext whose ctx expired before the
	// shutdown drain finished; the drain continues in the background and
	// the returned error also matches the ctx error.
	ErrDrainTimeout = runtime.ErrDrainTimeout
)

// RouterKind selects how elements are routed to shards.
type RouterKind int

const (
	// RouterUniform routes each element to an independently uniform shard
	// (the load-balancing model of Section 1.2's distributed database).
	RouterUniform RouterKind = iota
	// RouterHash routes by a multiplicative hash of the value, so equal
	// values land on the same shard (sharded aggregation).
	RouterHash
	// RouterRoundRobin routes element i to shard (i-1) mod S — the
	// deterministic even-load baseline.
	RouterRoundRobin
)

func (k RouterKind) String() string {
	switch k {
	case RouterUniform:
		return "uniform"
	case RouterHash:
		return "hash"
	case RouterRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("RouterKind(%d)", int(k))
	}
}

func (k RouterKind) router() (ishard.Router, error) {
	switch k {
	case RouterUniform:
		return ishard.Uniform{}, nil
	case RouterHash:
		return ishard.HashByValue{}, nil
	case RouterRoundRobin:
		return ishard.RoundRobin{}, nil
	default:
		return nil, fmt.Errorf("shard: unknown router kind %d", int(k))
	}
}

// System selects the set system coordinator verdicts are computed against.
type System int

const (
	// Prefixes is {[1,b]}: verdicts are the Kolmogorov-Smirnov distance
	// (the quantile guarantee, Corollary 1.5). The default.
	Prefixes System = iota
	// Intervals is {[a,b]}: all two-sided range densities.
	Intervals
	// Singletons is {{a}}: per-value densities (heavy hitters).
	Singletons
	// Suffixes is {[b,N]}.
	Suffixes
)

func (s System) String() string {
	switch s {
	case Prefixes:
		return "prefixes"
	case Intervals:
		return "intervals"
	case Singletons:
		return "singletons"
	case Suffixes:
		return "suffixes"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

func (s System) build(n int64) (setsystem.SetSystem, error) {
	switch s {
	case Prefixes:
		return setsystem.NewPrefixes(n), nil
	case Intervals:
		return setsystem.NewIntervals(n), nil
	case Singletons:
		return setsystem.NewSingletons(n), nil
	case Suffixes:
		return setsystem.NewSuffixes(n), nil
	default:
		return nil, fmt.Errorf("shard: unknown system %d", int(s))
	}
}

type samplerKind int

const (
	samplerNone samplerKind = iota
	samplerReservoir
	samplerReservoirL
	samplerBernoulli
)

type config struct {
	shards      int
	router      RouterKind
	system      System
	workers     int
	seed        uint64
	sampler     samplerKind
	memory      int
	rate        float64
	samplerOpts int // how many sampler options were applied
	pipeline    PipelineConfig
}

// Option configures New.
type Option func(*config) error

// WithShards sets S, the number of shards (default 1).
func WithShards(s int) Option {
	return func(c *config) error {
		if s < 1 {
			return ErrBadShards
		}
		c.shards = s
		return nil
	}
}

// WithRouter selects the routing mode (default RouterUniform).
func WithRouter(k RouterKind) Option {
	return func(c *config) error {
		if _, err := k.router(); err != nil {
			return err
		}
		c.router = k
		return nil
	}
}

// WithSystem selects the verdict set system (default Prefixes).
func WithSystem(s System) Option {
	return func(c *config) error {
		if _, err := s.build(1); err != nil {
			return err
		}
		c.system = s
		return nil
	}
}

// WithWorkers sizes the worker pool for parallel shard ingest: 0 (default)
// uses all CPUs, 1 runs inline. Results are byte-identical for every value.
func WithWorkers(w int) Option {
	return func(c *config) error {
		if w < 0 {
			return fmt.Errorf("%w: negative worker count %d", ErrBadConfig, w)
		}
		c.workers = w
		return nil
	}
}

// WithSeed sets the deterministic root seed (default sketch.DefaultSeed).
// The routing stream and every shard's private sampling stream are split
// from it.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithReservoir gives every shard a Reservoir (Algorithm R) sampler of
// capacity k.
func WithReservoir(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("%w: k=%d", ErrBadMemory, k)
		}
		c.sampler = samplerReservoir
		c.memory = k
		c.samplerOpts++
		return nil
	}
}

// WithReservoirL gives every shard an Algorithm L reservoir of capacity k
// (identical sample law to WithReservoir at O(k log(n/k)) random draws).
func WithReservoirL(k int) Option {
	return func(c *config) error {
		if k < 1 {
			return fmt.Errorf("%w: k=%d", ErrBadMemory, k)
		}
		c.sampler = samplerReservoirL
		c.memory = k
		c.samplerOpts++
		return nil
	}
}

// WithBernoulli gives every shard a Bernoulli(p) sampler.
func WithBernoulli(p float64) Option {
	return func(c *config) error {
		if p < 0 || p > 1 || p != p {
			return fmt.Errorf("%w: p=%v", ErrBadRate, p)
		}
		c.sampler = samplerBernoulli
		c.rate = p
		c.samplerOpts++
		return nil
	}
}

// Verdict is a decoded discrepancy: the exact maximal density deviation
// between the union stream and the union sample, with a witnessing range
// when one exists (HasWitness is false only for a zero-deviation verdict).
type Verdict[T any] struct {
	Err        float64
	Lo, Hi     T
	HasWitness bool
}

// Engine routes one stream of T across shards and answers global queries
// by merging per-shard state. Build it with New; it is not safe for
// concurrent use directly (parallelism is internal, across shards) — for
// concurrent producers and live queries, lift it into a serving session
// with Serve.
//
// Engine implements sketch.Sketch[T]: Offer/OfferBatch feed the routed
// stream, View/Len/Query read the union sample, and MergeFrom folds
// another engine's shards in ([CTW16] fan-in, shard by shard).
type Engine[T any] struct {
	u        sketch.Universe[T]
	cfg      config
	inner    *ishard.Engine
	coordRNG *rng.RNG // coordinator queries (GlobalSample) draw here
	encBuf   []int64
	srv      atomic.Pointer[Serving[T]] // non-nil while a serving session is open
	serveMu  sync.Mutex                 // serializes Serve calls
}

var _ sketch.Sketch[int64] = (*Engine[int64])(nil)

// New builds a sharded engine over u. Exactly one sampler option is
// required; every other option has a default.
func New[T any](u sketch.Universe[T], opts ...Option) (*Engine[T], error) {
	if u == nil {
		return nil, sketch.ErrNilUniverse
	}
	if u.Size() < 1 {
		return nil, fmt.Errorf("%w: size %d", sketch.ErrBadUniverse, u.Size())
	}
	c := config{shards: 1, seed: sketch.DefaultSeed}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	if c.samplerOpts == 0 {
		return nil, ErrNoSampler
	}
	if c.samplerOpts > 1 {
		return nil, fmt.Errorf("%w (got %d sampler options)", ErrNoSampler, c.samplerOpts)
	}
	router, err := c.router.router()
	if err != nil {
		return nil, err
	}
	sys, err := c.system.build(u.Size())
	if err != nil {
		return nil, err
	}
	e := &Engine[T]{u: u, cfg: c}
	e.inner = ishard.New(ishard.Config{
		Shards: c.shards,
		Router: router,
		System: sys,
		NewSampler: func(int) game.Sampler {
			switch c.sampler {
			case samplerReservoirL:
				return sampler.NewReservoirL[int64](c.memory)
			case samplerBernoulli:
				return sampler.NewBernoulli[int64](c.rate)
			default:
				return sampler.NewReservoir[int64](c.memory)
			}
		},
		Workers: c.workers,
	}, nil)
	e.seed()
	return e, nil
}

// seed (re)derives the engine's RNG tree from the configured seed: the
// coordinator query stream first, then the internal engine's routing and
// per-shard streams.
func (e *Engine[T]) seed() {
	root := rng.New(e.cfg.seed)
	e.coordRNG = root.Split()
	e.inner.StartGame(root)
}

// NumShards returns S.
func (e *Engine[T]) NumShards() int { return e.inner.NumShards() }

// Rounds returns the number of elements routed so far. While a Serving
// session is open it delegates to the session (elements accepted by the
// pipeline, applied or not), like every other read method.
func (e *Engine[T]) Rounds() int {
	if s := e.srv.Load(); s != nil {
		return s.Rounds()
	}
	return e.inner.Rounds()
}

// ShardRounds returns the length of shard i's substream (behind the
// session's read barrier while serving).
func (e *Engine[T]) ShardRounds(i int) (int, error) {
	if i < 0 || i >= e.inner.NumShards() {
		return 0, ErrBadShardIndex
	}
	if s := e.srv.Load(); s != nil {
		return s.inner.ShardRounds(i), nil
	}
	return e.inner.ShardRounds(i), nil
}

// Offer routes one element to its shard, reporting whether that shard's
// sampler admitted it (the sketch.Sketch contract). Use OfferRouted when
// the destination shard matters.
func (e *Engine[T]) Offer(x T) (admitted bool, err error) {
	_, admitted, err = e.OfferRouted(x)
	return admitted, err
}

// OfferRouted is Offer additionally reporting the destination shard — the
// adaptive path, where a client sees both before choosing its next
// element.
func (e *Engine[T]) OfferRouted(x T) (shardIdx int, admitted bool, err error) {
	if e.srv.Load() != nil {
		return 0, false, ErrServing
	}
	p, err := e.u.Encode(x)
	if err != nil {
		return 0, false, err
	}
	shardIdx, admitted = e.inner.Offer(p)
	return shardIdx, admitted, nil
}

// OfferBatch routes a run of consecutive elements, fanning per-shard
// ingest across the worker pool, and reports how many entered some shard's
// sample. The result is byte-identical for every worker count and
// invariant to how the stream is sliced into batches. The batch is atomic:
// if any element is outside the universe, nothing is ingested.
func (e *Engine[T]) OfferBatch(xs []T) (int, error) {
	if e.srv.Load() != nil {
		return 0, ErrServing
	}
	buf := e.encBuf[:0]
	for _, x := range xs {
		p, err := e.u.Encode(x)
		if err != nil {
			return 0, err
		}
		buf = append(buf, p)
	}
	e.encBuf = buf
	return e.inner.OfferBatch(buf), nil
}

// Ingest routes a run of consecutive elements.
//
// Deprecated: Ingest is OfferBatch without the admitted count; it remains
// as a thin alias for source compatibility.
func (e *Engine[T]) Ingest(xs []T) error {
	_, err := e.OfferBatch(xs)
	return err
}

// decodeVerdict maps an internal discrepancy to the decoded form.
func (e *Engine[T]) decodeVerdict(d setsystem.Discrepancy) (Verdict[T], error) {
	v := Verdict[T]{Err: d.Err}
	if d.Lo < 1 || d.Hi < 1 {
		return v, nil
	}
	lo, err := e.u.Decode(d.Lo)
	if err != nil {
		return v, err
	}
	hi, err := e.u.Decode(d.Hi)
	if err != nil {
		return v, err
	}
	v.Lo, v.Hi, v.HasWitness = lo, hi, true
	return v, nil
}

// Verdict returns the exact global discrepancy of the union stream against
// the union of the per-shard samples, computed by folding per-shard
// histograms (no raw substream is re-read). It is bit-identical to a
// one-shot verdict on the concatenated stream, for every routing mode,
// shard count and worker count.
func (e *Engine[T]) Verdict() (Verdict[T], error) {
	if s := e.srv.Load(); s != nil {
		// Reads delegate to the live session's barriers.
		return s.Verdict()
	}
	return e.decodeVerdict(e.inner.Verdict())
}

// ShardVerdict returns shard i's local discrepancy: its substream against
// its own sample. A shard can be locally representative while the union is
// not, and vice versa.
func (e *Engine[T]) ShardVerdict(i int) (Verdict[T], error) {
	if s := e.srv.Load(); s != nil {
		return s.ShardVerdict(i)
	}
	if i < 0 || i >= e.inner.NumShards() {
		return Verdict[T]{}, ErrBadShardIndex
	}
	return e.decodeVerdict(e.inner.ShardVerdict(i))
}

// Sample returns the union of the per-shard samples, decoded, in shard
// order (behind the session's read barriers while serving).
//
//robust:panics retained points were validated on admission; an undecodable point is internal corruption, not caller error
func (e *Engine[T]) Sample() []T {
	var ps []int64
	if s := e.srv.Load(); s != nil {
		ps = s.inner.Sample()
	} else {
		ps = e.inner.SampleView()
	}
	out := make([]T, len(ps))
	for i, p := range ps {
		x, err := e.u.Decode(p)
		if err != nil {
			panic(fmt.Sprintf("shard: sample holds undecodable point %d: %v", p, err))
		}
		out[i] = x
	}
	return out
}

// SampleLen returns the union sample size.
func (e *Engine[T]) SampleLen() int {
	if s := e.srv.Load(); s != nil {
		return s.SampleLen()
	}
	return e.inner.SampleLen()
}

// View implements sketch.Sketch: the union sample, decoded (an alias of
// Sample under the unified interface's name).
func (e *Engine[T]) View() []T { return e.Sample() }

// Len implements sketch.Sketch: the union sample size.
func (e *Engine[T]) Len() int { return e.SampleLen() }

// Query implements sketch.Sketch: the union sample's density on the closed
// range [lo, hi] in universe order — the quantity the robustness theorems
// bound against the union stream's density.
func (e *Engine[T]) Query(lo, hi T) (float64, error) {
	elo, err := e.u.Encode(lo)
	if err != nil {
		return 0, err
	}
	ehi, err := e.u.Encode(hi)
	if err != nil {
		return 0, err
	}
	if elo > ehi {
		return 0, fmt.Errorf("%w: lo sorts after hi", sketch.ErrBadRange)
	}
	var view []int64
	if s := e.srv.Load(); s != nil {
		view = s.inner.Sample()
	} else {
		view = e.inner.SampleView()
	}
	if len(view) == 0 {
		return 0, sketch.ErrEmpty
	}
	in := 0
	for _, p := range view {
		if p >= elo && p <= ehi {
			in++
		}
	}
	return float64(in) / float64(len(view)), nil
}

// MergeFrom implements sketch.Sketch: it folds another engine's complete
// state into the receiver, shard by shard — the [CTW16] coordinator fan-in
// lifted to whole engines, so two engines that sampled disjoint streams
// (two processes, two data centers) collapse into one whose verdicts and
// samples describe the union traffic. Shard i of the donor merges into
// shard i of the receiver: reservoirs by population-weighted interleave,
// Bernoulli samplers by union; Algorithm L reservoirs cannot merge without
// bias and report ErrUnsupportedMerge. Both engines must share the shard
// count, sampler shape, set system and universe size (routing may differ);
// the donor is not modified.
func (e *Engine[T]) MergeFrom(other sketch.Sketch[T]) error {
	o, ok := other.(*Engine[T])
	if !ok {
		return fmt.Errorf("%w: cannot merge %T into *Engine", sketch.ErrIncompatible, other)
	}
	if e.srv.Load() != nil || o.srv.Load() != nil {
		return ErrServing
	}
	if e.u.Size() != o.u.Size() {
		return fmt.Errorf("%w: universe sizes %d and %d", sketch.ErrIncompatible, e.u.Size(), o.u.Size())
	}
	if e.cfg.sampler == samplerReservoirL {
		return fmt.Errorf("%w: Algorithm L skip state is not mergeable", sketch.ErrUnsupportedMerge)
	}
	if e.cfg.shards != o.cfg.shards || e.cfg.system != o.cfg.system ||
		e.cfg.sampler != o.cfg.sampler || e.cfg.memory != o.cfg.memory || e.cfg.rate != o.cfg.rate {
		return fmt.Errorf("%w: engine configurations differ", sketch.ErrIncompatible)
	}
	if err := e.inner.MergeFromEngine(o.inner); err != nil {
		return fmt.Errorf("%w: %v", sketch.ErrIncompatible, err)
	}
	return nil
}

// GlobalSample draws a uniform without-replacement sample of size k of the
// union stream from the per-shard samples alone ([CTW16] fan-in), clamped
// to the available sampled elements. Coordinator queries draw from their
// own RNG stream, so they never perturb routing or sampling.
func (e *Engine[T]) GlobalSample(k int) ([]T, error) {
	if s := e.srv.Load(); s != nil {
		return s.GlobalSample(k)
	}
	if k < 1 {
		return nil, ErrBadSample
	}
	ps := e.inner.GlobalSample(k, e.coordRNG)
	out := make([]T, len(ps))
	for i, p := range ps {
		x, err := e.u.Decode(p)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// Reset clears the engine for a fresh stream and re-derives its RNG tree
// from the configured seed, so a Reset engine replays identically. While a
// Serving session is open Reset is ignored — close the session first.
func (e *Engine[T]) Reset() {
	if e.srv.Load() != nil {
		return
	}
	e.seed()
}

// Snapshot serializes the complete engine state — coordinator counters and
// RNG, and every shard's RNG, sampler and accumulator — as a versioned
// deterministic byte string. Snapshotting a restored engine reproduces the
// bytes bit for bit.
func (e *Engine[T]) Snapshot() ([]byte, error) {
	if s := e.srv.Load(); s != nil {
		// A live session snapshots through its own read barrier.
		return s.Snapshot()
	}
	hi, lo := e.coordRNG.State()
	out, err := ishard.AppendState(e.snapPreamble(hi, lo), e.inner)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// snapPreamble builds the snapshot preamble — frame header, universe size,
// coordinator RNG state — shared byte-for-byte by the serial path above and
// the serving session's frozen Snapshot, so the two formats cannot drift.
func (e *Engine[T]) snapPreamble(hi, lo uint64) []byte {
	buf := sketch.AppendFrameHeader(nil, sketch.FrameShard)
	buf = snapshot.AppendInt64(buf, e.u.Size())
	buf = snapshot.AppendUint64(buf, hi)
	return snapshot.AppendUint64(buf, lo)
}

// Restore replaces the engine's state with a snapshot produced by an
// engine with the same configuration (shard count, sampler shape, set
// system, universe size — verified structurally). On error the engine
// state is unspecified; Reset recovers a usable empty engine.
func (e *Engine[T]) Restore(data []byte) error {
	if e.srv.Load() != nil {
		return ErrServing
	}
	r, err := sketch.ReadFrameHeader(data, sketch.FrameShard)
	if err != nil {
		return err
	}
	size := r.Int64()
	hi := r.Uint64()
	lo := r.Uint64()
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if size != e.u.Size() {
		return fmt.Errorf("%w: snapshot universe size %d, engine has %d", ErrBadSnapshot, size, e.u.Size())
	}
	if err := ishard.LoadState(r, e.inner); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, r.Len())
	}
	e.coordRNG.SetState(hi, lo)
	return nil
}
