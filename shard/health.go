// Public health and degraded-read surface of the serving session: the
// lock-free Health report, the per-query Coverage report, and the covered
// query variants that answer over the healthy subset of shards instead of
// blocking behind a wedged consumer. See the internal package's failure
// model: supervision (PipelineConfig.CheckpointEvery) checkpoints each
// shard periodically and restores it after a consumer panic; deterministic
// sessions replay their redo journal and lose nothing, live sessions lose
// at most one checkpoint interval per crash, reconciled in the round
// counters.
package shard

import (
	"context"

	"robustsample/internal/runtime"
	ishard "robustsample/internal/shard"
)

// ShardStatus is one shard's recovery state.
type ShardStatus int

const (
	// Healthy means the shard is applying normally.
	Healthy ShardStatus = iota
	// Degraded means the shard crashed and has been restored from its
	// latest checkpoint but has not yet completed a clean apply.
	Degraded
)

func (s ShardStatus) String() string {
	if s == Healthy {
		return "healthy"
	}
	return "degraded"
}

// ShardHealth is one shard's health entry.
type ShardHealth struct {
	// Status is the shard's current recovery state.
	Status ShardStatus
	// Crashes counts apply panics recovered on this shard.
	Crashes uint64
	// Restores counts checkpoint restores performed on this shard.
	Restores uint64
	// Checkpoints counts checkpoints taken (including the baseline).
	Checkpoints uint64
	// LostRounds counts elements lost on this shard: live-mode rollbacks
	// plus elements in chunks dropped after the retry limit.
	LostRounds uint64
	// Rounds is the shard's applied substream length.
	Rounds int
}

// Health is a point-in-time view of the serving session built entirely
// from atomic counters: reading it never touches a shard lock, so it is
// always available, including while a shard consumer is wedged mid-apply.
type Health struct {
	// Shards holds one entry per shard, in shard order.
	Shards []ShardHealth
	// Crashes, Restores, Checkpoints and LostRounds aggregate the
	// per-shard counters.
	Crashes     uint64
	Restores    uint64
	Checkpoints uint64
	LostRounds  uint64
	// Supervised reports whether crash recovery is active
	// (PipelineConfig.CheckpointEvery > 0).
	Supervised bool
}

// Degraded reports whether any shard is currently mid-recovery.
func (h Health) Degraded() bool {
	for _, sh := range h.Shards {
		if sh.Status != Healthy {
			return true
		}
	}
	return false
}

// Coverage reports what a degraded read actually answered over: which
// shards were reachable within the query's wait bound, and the rounds the
// answer reflects versus the rounds the session has accepted.
type Coverage struct {
	// Shards is the total shard count.
	Shards int
	// Included is how many shards answered within the wait bound.
	Included int
	// Stalled lists the shards skipped because their lock could not be
	// taken in time (a consumer wedged mid-apply), in shard order.
	Stalled []int
	// Covered is the sum of the included shards' applied substream
	// lengths — the rounds the answer actually reflects.
	Covered int
	// Routed is the session's accepted round count at query time
	// (everything offered, applied or not).
	Routed int
}

// Complete reports whether every shard was included.
func (c Coverage) Complete() bool { return c.Included == c.Shards }

func fromInnerStatus(s ishard.ShardStatus) ShardStatus {
	if s == ishard.Healthy {
		return Healthy
	}
	return Degraded
}

func fromInnerHealth(h ishard.Health) Health {
	out := Health{
		Shards:      make([]ShardHealth, len(h.Shards)),
		Crashes:     h.Crashes,
		Restores:    h.Restores,
		Checkpoints: h.Checkpoints,
		LostRounds:  h.LostRounds,
		Supervised:  h.Supervised,
	}
	for i, sh := range h.Shards {
		out.Shards[i] = ShardHealth{
			Status:      fromInnerStatus(sh.Status),
			Crashes:     sh.Crashes,
			Restores:    sh.Restores,
			Checkpoints: sh.Checkpoints,
			LostRounds:  sh.LostRounds,
			Rounds:      sh.Rounds,
		}
	}
	return out
}

func fromInnerCoverage(c ishard.Coverage) Coverage {
	return Coverage{
		Shards:   c.Shards,
		Included: c.Included,
		Stalled:  append([]int(nil), c.Stalled...),
		Covered:  c.Covered,
		Routed:   c.Routed,
	}
}

// Health returns the session's health report without taking any lock.
func (s *Serving[T]) Health() Health { return fromInnerHealth(s.inner.Health()) }

// VerdictCovered is Verdict with graceful degradation: shards whose lock
// cannot be taken within the session's QueryWait (a consumer wedged
// mid-apply) are skipped instead of blocked on, and the verdict is the
// exact discrepancy over the covered subset — each included shard's
// (substream, sample) pair is still internally consistent, which is what
// the [CTW16] merged read path needs. The coverage report says exactly
// what the answer reflects.
func (s *Serving[T]) VerdictCovered() (Verdict[T], Coverage, error) {
	d, cov := s.inner.VerdictCovered()
	v, err := s.e.decodeVerdict(d)
	return v, fromInnerCoverage(cov), err
}

// SampleCovered is Sample with graceful degradation: the union sample over
// the shards reachable within QueryWait, with the coverage report.
func (s *Serving[T]) SampleCovered() ([]T, Coverage, error) {
	ps, cov := s.inner.SampleCovered()
	out := make([]T, len(ps))
	for i, p := range ps {
		x, err := s.e.u.Decode(p)
		if err != nil {
			return nil, fromInnerCoverage(cov), err
		}
		out[i] = x
	}
	return out, fromInnerCoverage(cov), nil
}

// GlobalSampleCovered is GlobalSample with graceful degradation: a uniform
// size-k sample of the union of the covered substreams ([CTW16] fan-in
// over the healthy subset), with the coverage report.
func (s *Serving[T]) GlobalSampleCovered(k int) ([]T, Coverage, error) {
	if k < 1 {
		return nil, Coverage{}, ErrBadSample
	}
	s.qmu.Lock()
	ps, cov := s.inner.GlobalSampleCovered(k, s.e.coordRNG)
	s.qmu.Unlock()
	out := make([]T, len(ps))
	for i, p := range ps {
		x, err := s.e.u.Decode(p)
		if err != nil {
			return nil, fromInnerCoverage(cov), err
		}
		out[i] = x
	}
	return out, fromInnerCoverage(cov), nil
}

// CloseContext is Close with a drain deadline: it starts the shutdown
// drain and waits for it until ctx is done. On timeout it returns an error
// matching both ErrDrainTimeout and the ctx error; the drain keeps running
// in the background — the session is NOT closed, and a later Close or
// CloseContext waits for the same drain. Producers wedged on a full ring
// unblock as consumers keep applying.
func (s *Serving[T]) CloseContext(ctx context.Context) (Epoch, error) {
	ep, err := s.inner.CloseCtx(ctx)
	if err != nil {
		return fromRuntimeEpoch(ep), err
	}
	s.once.Do(func() {
		s.closeEp = runtime.Epoch{Seq: ep.Seq, Applied: ep.Applied}
		s.e.srv.Store(nil)
		close(s.done)
	})
	return fromRuntimeEpoch(s.closeEp), nil
}
