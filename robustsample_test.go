package robustsample

import (
	"math"
	"testing"
)

func TestQuickstartPipeline(t *testing.T) {
	params := Params{Eps: 0.2, Delta: 0.1, N: 5000}
	sys := NewPrefixes(1 << 20)
	res := NewRobustReservoir(params, sys)
	r := NewRNG(42)
	stream := make([]int64, params.N)
	for i := range stream {
		stream[i] = 1 + r.Int63n(1<<20)
		res.Offer(stream[i], r)
	}
	d := sys.MaxDiscrepancy(stream, res.View())
	if d.Err > params.Eps {
		t.Fatalf("robust reservoir error %v exceeds eps %v", d.Err, params.Eps)
	}
	if !IsEpsApproximation(sys, stream, res.View(), params.Eps) {
		t.Fatal("IsEpsApproximation disagrees with MaxDiscrepancy")
	}
}

func TestFacadeConstructors(t *testing.T) {
	if NewBernoulli(0.5).P != 0.5 {
		t.Fatal("NewBernoulli")
	}
	if NewReservoir(7).K != 7 {
		t.Fatal("NewReservoir")
	}
	if NewWeightedReservoir(3).K != 3 {
		t.Fatal("NewWeightedReservoir")
	}
	for _, sys := range []SetSystem{NewPrefixes(10), NewIntervals(10), NewSingletons(10), NewSuffixes(10)} {
		if sys.UniverseSize() != 10 {
			t.Fatalf("%s universe wrong", sys.Name())
		}
	}
}

func TestSizeCalculatorsConsistent(t *testing.T) {
	p := Params{Eps: 0.1, Delta: 0.1, N: 100000}
	sys := NewPrefixes(1 << 20)
	if NewRobustReservoir(p, sys).K != ReservoirSize(p, sys.LogCardinality()) {
		t.Fatal("robust reservoir size mismatch")
	}
	if NewRobustBernoulli(p, sys).P != BernoulliRate(p, sys.LogCardinality()) {
		t.Fatal("robust bernoulli rate mismatch")
	}
	if NewContinuousRobustReservoir(p, sys).K != ContinuousReservoirSize(p, sys.LogCardinality()) {
		t.Fatal("continuous size mismatch")
	}
	if StaticReservoirSize(p, sys.VCDim()) >= ReservoirSize(p, sys.LogCardinality()) {
		t.Fatal("static size should be smaller than adaptive size")
	}
	if QuantileSketchSize(p, 1<<20) != ReservoirSize(p, math.Log(1<<20)) {
		t.Fatal("quantile size mismatch")
	}
	if HeavyHitterSize(0.3, 0.1, 100000, 1<<20) <= 0 {
		t.Fatal("HH size")
	}
}

func TestRunGameThroughFacade(t *testing.T) {
	r := NewRNG(1)
	res := RunGame(NewReservoir(50), NewStaticUniformAdversary(1<<16), NewPrefixes(1<<16), 2000, 0.5, r)
	if len(res.Stream) != 2000 {
		t.Fatal("stream length")
	}
	if !res.OK {
		t.Fatalf("benign game failed: %v", res)
	}
}

func TestRunContinuousGameThroughFacade(t *testing.T) {
	r := NewRNG(2)
	cps := Checkpoints(50, 1000, 0.1)
	res := RunContinuousGame(NewReservoir(200), NewStaticUniformAdversary(1<<16), NewPrefixes(1<<16), 1000, 0.5, cps, r)
	if len(res.PrefixErrors) == 0 {
		t.Fatal("no checkpoints evaluated")
	}
}

func TestAttackThroughFacade(t *testing.T) {
	r := NewRNG(3)
	res := RunBisectionAttackBernoulli(2000, 0.01, r)
	if len(res.Stream) != 2000 {
		t.Fatal("attack stream length")
	}
	if !res.SampleIsPrefixOfAdmitted {
		t.Fatal("attack invariant")
	}
	rres := RunBisectionAttackReservoir(2000, 5, r)
	if len(rres.Sample) != 5 {
		t.Fatal("reservoir attack sample size")
	}
}

func TestBisectionAdversaryThroughGame(t *testing.T) {
	r := NewRNG(4)
	adv := NewBisectionAttack(1<<62, 0.02)
	res := RunGame(NewBernoulli(0.02), adv, NewPrefixes(1<<62), 300, 0.5, r)
	if len(res.Stream) != 300 {
		t.Fatal("stream length")
	}
}

func TestEstimateRobustnessThroughFacade(t *testing.T) {
	p := Params{Eps: 0.3, Delta: 0.2, N: 500}
	est := EstimateRobustness(
		func() Sampler { return NewReservoir(60) },
		func() Adversary { return NewStaticUniformAdversary(1 << 16) },
		NewPrefixes(1<<16), p, 5, NewRNG(5),
	)
	if est.Failure.Trials != 5 {
		t.Fatal("trial count")
	}
}

func TestAlgorithmLFacade(t *testing.T) {
	r := NewRNG(9)
	v := NewReservoirL(25)
	if v.K != 25 {
		t.Fatal("capacity")
	}
	res := RunGame(v, NewStaticUniformAdversary(1<<16), NewPrefixes(1<<16), 2000, 0.9, r)
	if !res.OK || len(res.Sample) != 25 {
		t.Fatalf("Algorithm L through the game: %v", res)
	}
}

func TestStaticContinuousFacade(t *testing.T) {
	p := Params{Eps: 0.1, Delta: 0.1, N: 1 << 20}
	if StaticContinuousReservoirSize(p, 1) >= ContinuousReservoirSize(p, math.Log(1<<40)) {
		t.Fatal("static continuous size should undercut adaptive continuous size")
	}
}
