// Heavy hitters: Corollary 1.6 under an adaptive adversary.
//
// A robust-size reservoir sample solves (alpha, eps) heavy hitters in the
// adversarial model: report every element whose sample density is at least
// alpha - eps/3. This example runs many independent trials of an adaptive
// workload — a Zipf background (which contains a genuine heavy hitter)
// plus an inflation adversary that pushes a light target element whenever
// the sample under-represents it — and compares the contract-violation
// rate of a tiny sample against the Corollary 1.6 size.
//
// Run: go run ./examples/heavyhitters
package main

import (
	"fmt"

	"robustsample/internal/core"
	"robustsample/internal/heavyhitter"
	"robustsample/internal/rng"
)

func main() {
	const (
		n        = 20000
		universe = int64(100000)
		alpha    = 0.20
		eps      = 0.15
		delta    = 0.05
		target   = int64(7)
		trials   = 40
	)

	robustK := core.HeavyHitterSize(eps, delta, n, universe)
	fmt.Printf("Corollary 1.6 sample size: k = %d (alpha=%.2f eps=%.2f delta=%.2f)\n\n",
		robustK, alpha, eps, delta)

	root := rng.New(11)
	for _, k := range []int{20, robustK} {
		violations, fps, fns := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			r := root.Split()
			summary := heavyhitter.NewSampleHH(k, eps, r.Split())
			z := rng.NewZipf(universe, 1.3) // value 1 has density ~0.25: a true heavy hitter
			budget := int(float64(n) * (alpha - eps) * 0.8)
			sent := 0
			var stream []int64
			for i := 0; i < n; i++ {
				var x int64
				// Adaptive inflation: push the light target whenever the
				// sample under-represents it, within a light budget.
				if sent < budget && summary.EstimateDensity(target) < alpha {
					x = target
					sent++
				} else {
					x = z.Draw(r)
				}
				stream = append(stream, x)
				summary.Insert(x)
			}
			ev := heavyhitter.Evaluate(stream, summary.Report(alpha), alpha, eps)
			if !ev.Correct() {
				violations++
			}
			fps += ev.FalsePositives
			fns += ev.FalseNegatives
		}
		fmt.Printf("k=%-6d contract violations: %d/%d (FP total %d, FN total %d)\n",
			k, violations, trials, fps, fns)
	}
	fmt.Printf("\nexpected: the tiny sample misses true heavy hitters and/or reports the\n")
	fmt.Printf("inflated target in a noticeable fraction of trials; the Corollary 1.6\n")
	fmt.Printf("size violates the (alpha, eps) contract with probability <= delta=%.2f.\n", delta)
}
