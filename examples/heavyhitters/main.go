// Heavy hitters: Corollary 1.6 under an adaptive adversary, through the
// public robustsample/topk surface.
//
// A robust-size reservoir sample solves (alpha, eps) heavy hitters in the
// adversarial model: report every element whose sample density is at least
// alpha - eps/3. This example runs many independent trials of an adaptive
// workload — a Zipf background (which contains a genuine heavy hitter)
// plus an inflation adversary that pushes a light target element whenever
// the summary under-represents it — and compares the contract-violation
// rate of a tiny summary against the Corollary 1.6 size.
//
// Run: go run ./examples/heavyhitters
package main

import (
	"fmt"

	"robustsample/internal/heavyhitter"
	"robustsample/internal/rng"
	"robustsample/sketch"
	"robustsample/topk"
)

func main() {
	const (
		n        = 20000
		universe = int64(100000)
		alpha    = 0.20
		eps      = 0.15
		delta    = 0.05
		target   = int64(7)
		trials   = 40
	)
	u, err := sketch.NewInt64Universe(universe)
	if err != nil {
		panic(err)
	}
	robust, err := topk.New(u, eps, delta, n)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Corollary 1.6 sample size: k = %d (alpha=%.2f eps=%.2f delta=%.2f)\n\n",
		robust.K(), alpha, eps, delta)

	root := rng.New(11)
	for _, k := range []int{20, robust.K()} {
		violations, fps, fns := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			r := root.Split()
			summary, err := topk.NewWithMemory(u, k, eps, sketch.WithSeed(r.Uint64()))
			if err != nil {
				panic(err)
			}
			z := rng.NewZipf(universe, 1.3) // value 1 has density ~0.25: a true heavy hitter
			budget := int(float64(n) * (alpha - eps) * 0.8)
			sent := 0
			var stream []int64
			for i := 0; i < n; i++ {
				var x int64
				// Adaptive inflation: push the light target whenever the
				// summary under-represents it, within a light budget.
				// (ErrEmpty can only occur before the first admission;
				// the zero density is the right reading there.)
				d, _ := summary.EstimateDensity(target)
				if sent < budget && d < alpha {
					x = target
					sent++
				} else {
					x = z.Draw(r)
				}
				stream = append(stream, x)
				if _, err := summary.Offer(x); err != nil {
					panic(err)
				}
			}
			reported, err := summary.Report(alpha)
			if err != nil {
				panic(err)
			}
			ev := heavyhitter.Evaluate(stream, reported, alpha, eps)
			if !ev.Correct() {
				violations++
			}
			fps += ev.FalsePositives
			fns += ev.FalseNegatives
		}
		fmt.Printf("k=%-6d contract violations: %d/%d (FP total %d, FN total %d)\n",
			k, violations, trials, fps, fns)
	}
	fmt.Printf("\nexpected: the tiny sample misses true heavy hitters and/or reports the\n")
	fmt.Printf("inflated target in a noticeable fraction of trials; the Corollary 1.6\n")
	fmt.Printf("size violates the (alpha, eps) contract with probability <= delta=%.2f.\n", delta)
}
