// Attack: the Section 1 / Section 5 median attack, end to end.
//
// An adversary that sees the sample after every round runs the Figure-3
// bisection strategy: submit the split point of a working range, and move
// the range up when the element is sampled, down when it is not. The final
// sample consists of exactly the smallest |S| stream elements, so its
// median sits near the stream's minimum instead of its middle.
//
// The attack needs a universe exponentially larger than int64 permits
// (Theorem 1.3 requires |R| up to 2^(n/2)); this example uses the exact
// unbounded-universe simulation and reports how large the universe would
// have needed to be.
//
// Run: go run ./examples/attack
package main

import (
	"fmt"
	"math"
	"robustsample"
	"slices"
)

func main() {
	const n = 20000
	p := 4 * math.Log(float64(n)) / float64(n) // far below the Thm 1.2 rate

	r := robustsample.NewRNG(7)
	res := robustsample.RunBisectionAttackBernoulli(n, p, r)

	sys := robustsample.NewPrefixes(int64(n))
	d := sys.MaxDiscrepancy(res.Stream, res.Sample)

	fmt.Printf("stream length n = %d, Bernoulli rate p = %.5f\n", n, p)
	fmt.Printf("sample size |S| = %d\n", len(res.Sample))
	fmt.Printf("all sampled elements are the smallest in the stream: %v\n",
		res.SampleIsPrefixOfAdmitted)

	sorted := append([]int64(nil), res.Sample...)
	slices.Sort(sorted)
	if len(sorted) > 0 {
		med := sorted[len(sorted)/2]
		fmt.Printf("sample median has stream rank %d of %d (unattacked: ~%d)\n",
			med, n, n/2)
	}
	fmt.Printf("prefix approximation error = %.4f (Theorem 1.3: > 1/2 whp)\n", d.Err)

	// Contrast: the same sampler sized per Theorem 1.2 cannot be broken,
	// because within any realistic (bounded) universe the attack runs out
	// of precision. Demonstrate with a bounded-universe adaptive game.
	universe := int64(1) << 20
	params := robustsample.Params{Eps: 0.2, Delta: 0.1, N: n}
	bsys := robustsample.NewPrefixes(universe)
	robust := robustsample.NewRobustBernoulli(params, bsys)
	adv := robustsample.NewBisectionAttack(universe, math.Log(float64(n))/float64(n))
	out := robustsample.RunGame(robust, adv, bsys, n, params.Eps, r)
	fmt.Printf("\nsame attack vs Theorem 1.2-sized sampler on U = [2^20]:\n")
	fmt.Printf("approximation error = %.4f (target eps = %.2f) ok=%v\n",
		out.Discrepancy.Err, params.Eps, out.OK)
}
