// Distributed: the Section 1.2 distributed-database illustration.
//
// Queries are load-balanced uniformly across K servers, so each server sees
// a Bernoulli(1/K) sample of the workload. Is that sample representative —
// even when the workload drifts, or when an adaptive client deliberately
// tries to skew what one server sees?
//
// The example measures each server's Kolmogorov-Smirnov distance from the
// full stream under four workloads and compares against the Theorem 1.2
// prediction. The punchline: the only workload that breaks a server needs
// query precision beyond any bounded universe — with realistic
// (hash-discretized) queries, Theorem 1.2 caps the damage.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"math"

	"robustsample/internal/distsim"
	"robustsample/internal/rng"
)

func main() {
	const (
		k        = 8
		n        = 40000
		universe = int64(1) << 20
	)
	predicted := distsim.PredictedEps(k, n, math.Log(float64(universe)), 0.1)
	fmt.Printf("K=%d servers, n=%d queries, universe=2^20\n", k, n)
	fmt.Printf("Theorem 1.2 prediction (p=1/K): per-server KS <= %.4f whp\n\n", predicted)

	root := rng.New(3)
	runs := []struct {
		name string
		out  distsim.Outcome
	}{
		{"uniform workload   ", distsim.RunUniform(k, n, universe, root.Split())},
		{"drifting workload  ", distsim.RunDrift(k, n, universe, root.Split())},
		{"adaptive, unbounded", distsim.RunAdaptiveAttack(k, n, root.Split())},
		{"adaptive, bounded U", distsim.RunBoundedAdaptiveAttack(k, n, universe, root.Split())},
	}
	fmt.Printf("%-22s %-12s %-12s\n", "workload", "server0 KS", "max KS")
	for _, r := range runs {
		fmt.Printf("%-22s %-12.4f %-12.4f\n", r.name, r.out.TargetKS, r.out.MaxKS)
	}
	fmt.Printf("\nunbounded adaptive client approaches KS = 1 - 1/K = %.3f;\n", 1-1.0/k)
	fmt.Println("bounded-universe rows stay within the Theorem 1.2 prediction.")
}
