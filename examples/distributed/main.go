// Distributed: continuous sharded sampling with coordinator queries,
// through the public robustsample/shard surface (Section 1.3; [CTW16],
// [CMYZ12]).
//
// One stream is routed across S shards; each shard keeps its own robust
// sampler and discrepancy histogram. The coordinator answers global
// questions from per-shard state alone: the merged Verdict is bit-identical
// to a one-shot check of the union stream, and GlobalSample draws a
// uniform sample of the union from the per-shard samples. The engine
// checkpoint (Snapshot/Restore) migrates the whole deployment — every
// shard's sampler, histogram and RNG stream — between processes.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"

	"robustsample/internal/rng"
	"robustsample/shard"
	"robustsample/sketch"
)

func main() {
	const (
		shards   = 8
		n        = 40000
		universe = int64(1) << 20
	)
	u, err := sketch.NewInt64Universe(universe)
	if err != nil {
		panic(err)
	}
	engine, err := shard.New(u,
		shard.WithShards(shards),
		shard.WithRouter(shard.RouterUniform),
		shard.WithSystem(shard.Prefixes),
		shard.WithReservoir(1024),
		shard.WithSeed(3),
	)
	if err != nil {
		panic(err)
	}

	// A drifting workload: the value distribution shifts mid-stream.
	r := rng.New(9)
	stream := make([]int64, n)
	for i := range stream {
		if i < n/2 {
			stream[i] = 1 + r.Int63n(universe/4)
		} else {
			stream[i] = universe/2 + r.Int63n(universe/2)
		}
	}
	if err := engine.Ingest(stream[:n/2]); err != nil {
		panic(err)
	}

	// Checkpoint mid-stream and continue in a "new process".
	snap, err := engine.Snapshot()
	if err != nil {
		panic(err)
	}
	migrated, err := shard.New(u,
		shard.WithShards(shards),
		shard.WithRouter(shard.RouterUniform),
		shard.WithSystem(shard.Prefixes),
		shard.WithReservoir(1024),
		shard.WithSeed(999), // every RNG stream comes from the snapshot
	)
	if err != nil {
		panic(err)
	}
	if err := migrated.Restore(snap); err != nil {
		panic(err)
	}
	if err := migrated.Ingest(stream[n/2:]); err != nil {
		panic(err)
	}

	v, err := migrated.Verdict()
	if err != nil {
		panic(err)
	}
	fmt.Printf("S=%d shards, n=%d routed (checkpointed at %d: %d-byte snapshot)\n",
		migrated.NumShards(), migrated.Rounds(), n/2, len(snap))
	fmt.Printf("global KS error of union sample = %.4f (witness [%d, %d])\n", v.Err, v.Lo, v.Hi)
	for i := 0; i < shards; i += 4 {
		sv, err := migrated.ShardVerdict(i)
		if err != nil {
			panic(err)
		}
		rounds, _ := migrated.ShardRounds(i)
		fmt.Printf("  shard %d: substream=%d local KS=%.4f\n", i, rounds, sv.Err)
	}
	global, err := migrated.GlobalSample(200)
	if err != nil {
		panic(err)
	}
	fmt.Printf("coordinator GlobalSample(200) -> %d elements of the union stream\n", len(global))
}
