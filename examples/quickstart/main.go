// Quickstart: maintain an adversarially robust sample of a stream.
//
// This example sizes a reservoir per Theorem 1.2 of "The Adversarial
// Robustness of Sampling" (Ben-Eliezer & Yogev, PODS 2020), feeds it a
// stream, and verifies the sample is an eps-approximation of the stream
// with respect to all prefix ranges — the guarantee that would hold (with
// probability 1-delta) even if every element had been chosen by an
// adversary watching the sample.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"robustsample"
)

func main() {
	const (
		n        = 50000
		universe = int64(1) << 20
	)
	params := robustsample.Params{Eps: 0.05, Delta: 0.01, N: n}
	sys := robustsample.NewPrefixes(universe)

	// Theorem 1.2: k = 2 (ln|R| + ln(2/delta)) / eps^2.
	res := robustsample.NewRobustReservoir(params, sys)
	fmt.Printf("robust reservoir size k = %d (Theorem 1.2, ln|R| = %.1f)\n",
		res.K, sys.LogCardinality())

	// Feed a stream. Here it is a skewed static workload; the guarantee
	// would be the same against any adaptive choice.
	r := robustsample.NewRNG(42)
	stream := make([]int64, n)
	for i := range stream {
		// Mixture: mostly low values, occasional high spikes.
		if r.Bernoulli(0.8) {
			stream[i] = 1 + r.Int63n(universe/8)
		} else {
			stream[i] = universe/2 + r.Int63n(universe/2)
		}
		res.Offer(stream[i], r)
	}

	d := sys.MaxDiscrepancy(stream, res.View())
	fmt.Printf("sample size |S| = %d\n", res.Len())
	fmt.Printf("exact approximation error = %.4f (target eps = %.2f)\n", d.Err, params.Eps)
	fmt.Printf("worst range = [%d, %d]\n", d.Lo, d.Hi)
	if robustsample.IsEpsApproximation(sys, stream, res.View(), params.Eps) {
		fmt.Println("sample IS an eps-approximation of the stream ✓")
	} else {
		fmt.Println("sample is NOT an eps-approximation (probability <= delta)")
	}
}
