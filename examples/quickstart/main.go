// Quickstart: maintain an adversarially robust sample of a stream through
// the public Sketch[T] surface.
//
// This example sizes a reservoir per Theorem 1.2 of "The Adversarial
// Robustness of Sampling" (Ben-Eliezer & Yogev, PODS 2020) via
// sketch.NewRobustReservoir, feeds it a stream, and verifies the sample is
// an eps-approximation of the stream with respect to all prefix ranges —
// the guarantee that would hold (with probability 1-delta) even if every
// element had been chosen by an adversary watching the sample.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"robustsample"
	"robustsample/sketch"
)

func main() {
	const (
		n        = 50000
		universe = int64(1) << 20
		eps      = 0.05
		delta    = 0.01
	)
	u, err := sketch.NewInt64Universe(universe)
	if err != nil {
		panic(err)
	}

	// Theorem 1.2: k = 2 (ln|U| + ln(2/delta)) / eps^2. Constructors
	// return errors instead of panicking; the sketch owns its RNG.
	res, err := sketch.NewRobustReservoir(u, eps, delta, n, sketch.WithSeed(42))
	if err != nil {
		panic(err)
	}
	fmt.Printf("robust reservoir size k = %d (Theorem 1.2)\n", res.K())

	// Feed a stream. Here it is a skewed static workload; the guarantee
	// would be the same against any adaptive choice.
	r := robustsample.NewRNG(42)
	stream := make([]int64, n)
	for i := range stream {
		// Mixture: mostly low values, occasional high spikes.
		if r.Bernoulli(0.8) {
			stream[i] = 1 + r.Int63n(universe/8)
		} else {
			stream[i] = universe/2 + r.Int63n(universe/2)
		}
	}
	if _, err := res.OfferBatch(stream); err != nil {
		panic(err)
	}

	// Exact verdict via the facade's set system against the encoded view
	// (the identity universe encodes values as themselves).
	sys := robustsample.NewPrefixes(universe)
	d := sys.MaxDiscrepancy(stream, res.EncodedView())
	fmt.Printf("sample size |S| = %d\n", res.Len())
	fmt.Printf("exact approximation error = %.4f (target eps = %.2f)\n", d.Err, eps)
	fmt.Printf("worst range = [%d, %d]\n", d.Lo, d.Hi)
	if d.Err <= eps {
		fmt.Println("sample IS an eps-approximation of the stream ✓")
	} else {
		fmt.Println("sample is NOT an eps-approximation (probability <= delta)")
	}

	// The sketch is serializable: checkpoint and resume bit-identically.
	snap, err := res.Snapshot()
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshot: %d bytes (Restore resumes bit-identically)\n", len(snap))
}
