// Quantiles: Corollary 1.5 robust quantile estimation through the public
// robustsample/quantile surface.
//
// A reservoir sample of size k = 2 (ln|U| + ln(2/delta)) / eps^2 answers
// every rank/quantile query within eps*n, simultaneously, with probability
// 1-delta — even on adversarially chosen streams. This example compares
// the robust sketch against the deterministic Greenwald-Khanna summary and
// the (static-optimal) KLL sketch on a heavy-tailed stream, then merges
// two per-site sketches into one for the union ([CTW16] fan-in).
//
// Run: go run ./examples/quantiles
package main

import (
	"fmt"

	iq "robustsample/internal/quantile"
	"robustsample/internal/rng"
	"robustsample/quantile"
	"robustsample/sketch"
)

func main() {
	const (
		n        = 100000
		universe = int64(1) << 20
		eps      = 0.02
		delta    = 0.05
	)
	u, err := sketch.NewInt64Universe(universe)
	if err != nil {
		panic(err)
	}
	robust, err := quantile.New(u, eps, delta, n, sketch.WithSeed(5))
	if err != nil {
		panic(err)
	}
	fmt.Printf("Corollary 1.5 reservoir size k = %d (eps=%.2f delta=%.2f |U|=2^20)\n\n",
		robust.K(), eps, delta)

	// Baselines from the experiment harness (comparison points only).
	root := rng.New(5)
	gk := iq.NewGK(eps)
	kll := iq.NewKLL(500, root.Split())
	exact := iq.NewExact()

	// Heavy-tailed workload: Zipf ranks mapped across the universe.
	z := rng.NewZipf(1<<20, 1.1)
	r := root.Split()
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = z.Draw(r)
		exact.Insert(stream[i])
		gk.Insert(stream[i])
		kll.Insert(stream[i])
		if _, err := robust.Offer(stream[i]); err != nil {
			panic(err)
		}
	}

	fmt.Printf("%-10s %10s %18s %18s %18s\n", "quantile", "exact", "robust-sample", gk.Name(), kll.Name())
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		fmt.Printf("%-10.2f %10d", q, exact.Quantile(q))
		rv, err := robust.Quantile(q)
		if err != nil {
			panic(err)
		}
		fmt.Printf(" %12d(%+.3f)", rv, (exact.Rank(rv)-q*float64(n))/float64(n))
		for _, s := range []iq.Sketch{gk, kll} {
			v := s.Quantile(q)
			fmt.Printf(" %12d(%+.3f)", v, (exact.Rank(v)-q*float64(n))/float64(n))
		}
		fmt.Println()
	}

	// Mergeable: two half-stream sketches fold into one for the union.
	a, err := quantile.New(u, eps, delta, n, sketch.WithSeed(6))
	if err != nil {
		panic(err)
	}
	b, err := quantile.New(u, eps, delta, n, sketch.WithSeed(7))
	if err != nil {
		panic(err)
	}
	if _, err := a.OfferBatch(stream[:n/2]); err != nil {
		panic(err)
	}
	if _, err := b.OfferBatch(stream[n/2:]); err != nil {
		panic(err)
	}
	if err := a.MergeFrom(b); err != nil {
		panic(err)
	}
	mv, err := a.Quantile(0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nmerged half-stream sketches: count=%d median=%d (rank error %+.3f)\n",
		a.Count(), mv, (exact.Rank(mv)-0.5*float64(n))/float64(n))
}
