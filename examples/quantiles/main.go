// Quantiles: Corollary 1.5 robust quantile estimation.
//
// A reservoir sample of size k = 2 (ln|U| + ln(2/delta)) / eps^2 answers
// every rank/quantile query within eps*n, simultaneously, with probability
// 1-delta — even on adversarially chosen streams. This example compares
// the robust sample against the deterministic Greenwald-Khanna summary and
// the (static-optimal) KLL sketch on a heavy-tailed stream.
//
// Run: go run ./examples/quantiles
package main

import (
	"fmt"

	"robustsample/internal/core"
	"robustsample/internal/quantile"
	"robustsample/internal/rng"
)

func main() {
	const (
		n        = 100000
		universe = int64(1) << 20
		eps      = 0.02
		delta    = 0.05
	)
	k := core.QuantileSketchSize(core.Params{Eps: eps, Delta: delta, N: n}, universe)
	fmt.Printf("Corollary 1.5 reservoir size k = %d (eps=%.2f delta=%.2f |U|=2^20)\n\n", k, eps, delta)

	root := rng.New(5)
	sketches := []quantile.Sketch{
		quantile.NewReservoirSketch(k, root.Split()),
		quantile.NewGK(eps),
		quantile.NewKLL(500, root.Split()),
	}
	exact := quantile.NewExact()

	// Heavy-tailed workload: Zipf ranks mapped across the universe.
	z := rng.NewZipf(1<<20, 1.1)
	r := root.Split()
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = z.Draw(r)
		exact.Insert(stream[i])
		for _, s := range sketches {
			s.Insert(stream[i])
		}
	}

	fmt.Printf("%-10s %10s %18s %18s %18s\n", "quantile", "exact", sketches[0].Name(), sketches[1].Name(), sketches[2].Name())
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		fmt.Printf("%-10.2f %10d", q, exact.Quantile(q))
		for _, s := range sketches {
			v := s.Quantile(q)
			displ := (exact.Rank(v) - q*float64(n)) / float64(n)
			fmt.Printf(" %12d(%+.3f)", v, displ)
		}
		fmt.Println()
	}

	fmt.Printf("\nall-quantiles max rank error (target eps=%.3f):\n", eps)
	for _, s := range sketches {
		fmt.Printf("  %-18s err=%.4f space=%d\n", s.Name(), quantile.MaxRankError(s, stream), s.Size())
	}
}
