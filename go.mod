module robustsample

go 1.22
