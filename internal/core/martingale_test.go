package core

import (
	"math"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/sampler"
)

func inHalf(x int64) bool { return x <= 500 }

func TestBernoulliMartingaleStepsRespectBounds(t *testing.T) {
	r := rng.New(1)
	const n = 2000
	p := 0.05
	m := NewBernoulliMartingale(n, p, inHalf)
	for i := 0; i < n; i++ {
		x := 1 + r.Int63n(1000)
		m.Observe(x, r.Bernoulli(p))
	}
	if v := m.MaxStepViolation(); v > 1e-9 {
		t.Fatalf("Claim 4.2 step bound violated by %v", v)
	}
	if len(m.Steps()) != n {
		t.Fatalf("recorded %d steps", len(m.Steps()))
	}
}

func TestBernoulliMartingaleOutOfRangeStepsAreZero(t *testing.T) {
	r := rng.New(2)
	m := NewBernoulliMartingale(100, 0.5, func(x int64) bool { return false })
	for i := 0; i < 100; i++ {
		m.Observe(int64(i), r.Bernoulli(0.5))
	}
	if m.Z() != 0 {
		t.Fatalf("Z moved without in-range elements: %v", m.Z())
	}
	if m.VarianceBudget() != 0 {
		t.Fatal("variance accumulated without in-range elements")
	}
}

func TestBernoulliMartingaleDriftNearZero(t *testing.T) {
	// Claim 4.2: E[Z_n] = 0 for any fixed stream. Use an adversarially
	// skewed fixed stream and many replays.
	r := rng.New(3)
	const n = 500
	stream := make([]int64, n)
	for i := range stream {
		// Heavy concentration inside R to maximize variance.
		stream[i] = 1 + r.Int63n(600)
	}
	p := 0.1
	drift := EmpiricalDrift(stream, p, inHalf, 4000, rng.New(4))
	// SD of Z_n is ~ sqrt(n_R (1-p) / (n^2 p)) <= sqrt(1/(n p)) ~ 0.14;
	// the mean over 4000 trials has SD ~ 0.0023.
	if math.Abs(drift) > 0.01 {
		t.Fatalf("empirical drift %v too large for a martingale", drift)
	}
}

func TestBernoulliMartingaleExactIncrements(t *testing.T) {
	// Verify the algebra of eq. (1) directly on a tiny example.
	m := NewBernoulliMartingale(4, 0.5, inHalf)
	m.Observe(1, true) // in R, admitted: Z = 1/(np) - 1/n = 1/2 - 1/4
	want := 1/(4*0.5) - 1.0/4
	if math.Abs(m.Z()-want) > 1e-12 {
		t.Fatalf("Z = %v, want %v", m.Z(), want)
	}
	m.Observe(2, false) // in R, rejected: Z -= 1/n
	want -= 1.0 / 4
	if math.Abs(m.Z()-want) > 1e-12 {
		t.Fatalf("Z = %v, want %v", m.Z(), want)
	}
	m.Observe(900, true) // not in R: Z unchanged
	if math.Abs(m.Z()-want) > 1e-12 {
		t.Fatalf("Z = %v changed on out-of-range element", m.Z())
	}
}

func TestBernoulliMartingaleFreedman(t *testing.T) {
	m := NewBernoulliMartingale(1000, 0.1, inHalf)
	r := rng.New(5)
	for i := 0; i < 1000; i++ {
		m.Observe(1+r.Int63n(1000), r.Bernoulli(0.1))
	}
	if tail := m.FreedmanTail(0); tail != 1 {
		t.Fatal("lambda=0 tail must be 1")
	}
	t1 := m.FreedmanTail(0.05)
	t2 := m.FreedmanTail(0.5)
	if t2 >= t1 {
		t.Fatal("Freedman tail not decreasing in lambda")
	}
}

func TestBernoulliMartingaleValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBernoulliMartingale(0, 0.5, inHalf) },
		func() { NewBernoulliMartingale(10, 0, inHalf) },
		func() { NewBernoulliMartingale(10, 1.5, inHalf) },
		func() { NewBernoulliMartingale(10, 0.5, nil) },
		func() { NewReservoirMartingale(0, inHalf) },
		func() { NewReservoirMartingale(5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestReservoirMartingaleStepsRespectBounds(t *testing.T) {
	r := rng.New(6)
	const n, k = 2000, 20
	res := sampler.NewReservoir[int64](k)
	m := NewReservoirMartingale(k, inHalf)
	for i := 0; i < n; i++ {
		x := 1 + r.Int63n(1000)
		adm := res.Offer(x, r)
		m.Observe(x, adm, res.View())
	}
	if v := m.MaxStepViolation(); v > 1e-9 {
		t.Fatalf("Claim 4.3 step bound violated by %v", v)
	}
}

func TestReservoirMartingaleFillPhaseZero(t *testing.T) {
	// While i <= k, A_i = B_i so Z = 0 exactly.
	r := rng.New(7)
	const k = 10
	res := sampler.NewReservoir[int64](k)
	m := NewReservoirMartingale(k, inHalf)
	for i := 0; i < k; i++ {
		x := 1 + r.Int63n(1000)
		adm := res.Offer(x, r)
		m.Observe(x, adm, res.View())
		if m.Z() != 0 {
			t.Fatalf("Z = %v during fill phase", m.Z())
		}
	}
}

func TestReservoirMartingaleDriftNearZero(t *testing.T) {
	// Replay a fixed skewed stream many times; mean Z_n must be ~0.
	root := rng.New(8)
	const n, k, trials = 400, 10, 3000
	stream := make([]int64, n)
	gen := rng.New(9)
	for i := range stream {
		stream[i] = 1 + gen.Int63n(700)
	}
	sum := 0.0
	sumAbs := 0.0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		res := sampler.NewReservoir[int64](k)
		m := NewReservoirMartingale(k, inHalf)
		for _, x := range stream {
			adm := res.Offer(x, r)
			m.Observe(x, adm, res.View())
		}
		sum += m.Z()
		sumAbs += math.Abs(m.Z())
	}
	mean := sum / trials
	meanAbs := sumAbs / trials
	// |Z_n| is on the order of n/sqrt(k) here; the drift must be a tiny
	// fraction of the typical magnitude.
	if meanAbs > 0 && math.Abs(mean) > 0.15*meanAbs {
		t.Fatalf("drift %v is large relative to mean |Z| = %v", mean, meanAbs)
	}
}

func TestReservoirMartingaleFreedman(t *testing.T) {
	r := rng.New(10)
	const n, k = 500, 10
	res := sampler.NewReservoir[int64](k)
	m := NewReservoirMartingale(k, inHalf)
	for i := 0; i < n; i++ {
		x := 1 + r.Int63n(1000)
		adm := res.Offer(x, r)
		m.Observe(x, adm, res.View())
	}
	// Variance budget = sum_{i=k+1}^{n} i/k, per Claim 4.3.
	want := 0.0
	for i := k + 1; i <= n; i++ {
		want += float64(i) / float64(k)
	}
	if math.Abs(m.VarianceBudget()-want) > 1e-9 {
		t.Fatalf("variance budget %v, want %v", m.VarianceBudget(), want)
	}
	if m.FreedmanTail(0.1) <= m.FreedmanTail(float64(n)) {
		t.Fatal("Freedman tail not decreasing")
	}
}

func TestEmpiricalDriftPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EmpiricalDrift([]int64{1}, 0.5, inHalf, 0, rng.New(1))
}

func BenchmarkBernoulliMartingaleObserve(b *testing.B) {
	r := rng.New(1)
	m := NewBernoulliMartingale(b.N+1, 0.1, inHalf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(int64(i%1000)+1, r.Bernoulli(0.1))
	}
}
