// Deterministic parallel Monte-Carlo trials.
//
// Every robustness number the experiment harness reports is an average over
// independent adaptive games, and the games of one estimate share no state:
// each trial owns its own sampler, adversary and RNG stream. The trial loop
// is therefore embarrassingly parallel — PROVIDED determinism is preserved.
// The rule that makes parallel output byte-identical to the historical
// serial loop is:
//
//  1. split the per-trial RNGs sequentially from the root, in trial order,
//     exactly as the serial loop did (samplers and adversaries are built by
//     their factories inside the workers — factories never touch the root,
//     so construction order cannot affect results); then
//  2. fan the game-playing out across workers, with every trial writing only
//     to its own index of the result slices; then
//  3. reduce the indexed results in trial order.
//
// Nothing about the arithmetic changes — only wall-clock time.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEachTrial runs fn(trial) for trial = 0..trials-1 across a worker pool.
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 runs inline with
// no goroutines. fn must be safe to call concurrently and should write its
// results to per-trial storage; ForEachTrial returns once every trial has
// completed.
func ForEachTrial(trials, workers int, fn func(trial int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		for i := 0; i < trials; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= trials {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
