// Deterministic parallel Monte-Carlo trials.
//
// Every robustness number the experiment harness reports is an average over
// independent adaptive games, and the games of one estimate share no state:
// each trial owns its own sampler, adversary and RNG stream. The trial loop
// is therefore embarrassingly parallel — PROVIDED determinism is preserved.
// The rule that makes parallel output byte-identical to the historical
// serial loop is:
//
//  1. split the per-trial RNGs sequentially from the root, in trial order,
//     exactly as the serial loop did (samplers and adversaries are built by
//     their factories inside the workers — factories never touch the root,
//     so construction order cannot affect results); then
//  2. fan the game-playing out across workers, with every trial writing only
//     to its own index of the result slices; then
//  3. reduce the indexed results in trial order.
//
// Nothing about the arithmetic changes — only wall-clock time.
package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEachTrial runs fn(trial) for trial = 0..trials-1 across a worker pool.
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 runs inline with
// no goroutines. fn must be safe to call concurrently and should write its
// results to per-trial storage; ForEachTrial returns once every trial has
// completed.
func ForEachTrial(trials, workers int, fn func(trial int)) {
	ForEachTrialOnWorker(trials, workers, func(_, trial int) { fn(trial) })
}

// ForEachTrialOnWorker is ForEachTrial with the worker's identity (0 <=
// worker < effective pool size) passed alongside the trial index. Trial
// loops use it to reuse per-worker scratch state — samplers, adversaries,
// incremental accumulators — across the games a worker plays: each game
// fully Resets the state, so results stay byte-identical to fresh
// construction while the allocation cost is paid once per worker instead of
// once per trial.
func ForEachTrialOnWorker(trials, workers int, fn func(worker, trial int)) {
	workers = WorkerCount(trials, workers)
	if workers <= 1 {
		for i := 0; i < trials; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= trials {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// WorkerCount resolves the effective pool size ForEachTrialOnWorker will
// use, so callers can pre-size per-worker state.
func WorkerCount(trials, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
