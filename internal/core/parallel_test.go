package core

import (
	"reflect"
	"sync/atomic"
	"testing"

	"robustsample/internal/adversary"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

func TestForEachTrialCoversEveryTrial(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		var hits [37]atomic.Int32
		ForEachTrial(len(hits), workers, func(trial int) {
			hits[trial].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: trial %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestEstimateRobustnessParallelDeterminism is the determinism contract of
// the parallel Monte-Carlo engine: the estimate must be identical — every
// field, bit for bit — for any worker count, matching the serial loop.
func TestEstimateRobustnessParallelDeterminism(t *testing.T) {
	sys := setsystem.NewPrefixes(1 << 12)
	p := Params{Eps: 0.2, Delta: 0.1, N: 400}
	mkS := func() game.Sampler { return sampler.NewReservoir[int64](40) }
	mkA := func() game.Adversary { return adversary.NewStaticUniform(1 << 12) }

	serial := EstimateRobustnessWorkers(mkS, mkA, sys, p, 17, 1, rng.New(5))
	for _, workers := range []int{0, 2, 8} {
		par := EstimateRobustnessWorkers(mkS, mkA, sys, p, 17, workers, rng.New(5))
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d estimate differs from serial:\n%+v\nvs\n%+v", workers, par, serial)
		}
	}
	// The convenience wrapper (GOMAXPROCS pool) must agree too.
	wrapped := EstimateRobustness(mkS, mkA, sys, p, 17, rng.New(5))
	if !reflect.DeepEqual(serial, wrapped) {
		t.Fatalf("EstimateRobustness differs from serial:\n%+v\nvs\n%+v", wrapped, serial)
	}
}

func TestEstimateContinuousRobustnessParallelDeterminism(t *testing.T) {
	sys := setsystem.NewPrefixes(1 << 12)
	p := Params{Eps: 0.3, Delta: 0.1, N: 300}
	mkS := func() game.Sampler { return sampler.NewReservoir[int64](30) }
	mkA := func() game.Adversary { return adversary.NewStaticUniform(1 << 12) }

	serial := EstimateContinuousRobustnessWorkers(mkS, mkA, sys, p, 30, 11, 1, rng.New(9))
	for _, workers := range []int{0, 4} {
		par := EstimateContinuousRobustnessWorkers(mkS, mkA, sys, p, 30, 11, workers, rng.New(9))
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d estimate differs from serial:\n%+v\nvs\n%+v", workers, par, serial)
		}
	}
}
