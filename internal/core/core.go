// Package core packages the paper's main contribution as a reusable
// library: given an approximation target (eps, delta), a stream length n,
// and a set system (U, R), it computes the sample-size parameters that make
// Bernoulli and reservoir sampling adversarially robust (Theorems 1.2 and
// 1.4), constructs samplers so parameterized, and estimates robustness
// empirically by Monte-Carlo over adversarial games.
//
// It also exposes the martingale construction of Section 4 — the sequence
// Z_i^R = B_i^R - A_i^R for a fixed range R — as an instrumented tracker, so
// experiments can verify the martingale property and the Freedman-bound
// tightness that drive the upper-bound proofs.
package core

import (
	"fmt"
	"math"
	"sync"

	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/stats"
)

// pooledAcc pairs a reusable incremental engine with the set system it was
// built for; engines are only valid for their own system.
type pooledAcc struct {
	sys setsystem.SetSystem
	acc *setsystem.Accumulator
}

var accPool sync.Pool

// acquireAccumulator returns an incremental engine for sys, reusing a
// pooled one when its system matches (the usual case: one experiment
// estimates many rows over the same system, and an engine's compression
// tables are its dominant allocation). Pooling is restricted to the four
// in-repo set-system types, which are comparable values; a pooled engine
// for a different system is simply dropped.
func acquireAccumulator(sys setsystem.SetSystem) *setsystem.Accumulator {
	switch sys.(type) {
	case setsystem.Prefixes, setsystem.Intervals, setsystem.Singletons, setsystem.Suffixes:
	default:
		return sys.NewAccumulator()
	}
	if v := accPool.Get(); v != nil {
		if p := v.(*pooledAcc); p.sys == sys {
			return p.acc
		}
	}
	return sys.NewAccumulator()
}

// releaseAccumulator returns an engine to the pool for the next estimate.
func releaseAccumulator(sys setsystem.SetSystem, acc *setsystem.Accumulator) {
	if acc == nil {
		return
	}
	switch sys.(type) {
	case setsystem.Prefixes, setsystem.Intervals, setsystem.Singletons, setsystem.Suffixes:
		accPool.Put(&pooledAcc{sys: sys, acc: acc})
	}
}

// Params bundles an approximation target for a stream of known length.
type Params struct {
	// Eps is the approximation parameter of Definition 1.1.
	Eps float64
	// Delta is the allowed failure probability.
	Delta float64
	// N is the stream length.
	N int
}

func (p Params) validate() {
	if p.Eps <= 0 || p.Eps >= 1 {
		panic("core: need 0 < eps < 1")
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		panic("core: need 0 < delta < 1")
	}
	if p.N < 1 {
		panic("core: need n >= 1")
	}
}

// BernoulliRate returns the Theorem 1.2 sampling rate for BernoulliSample:
//
//	p = 10 * (ln|R| + ln(4/delta)) / (eps^2 n),
//
// clamped to 1. With this rate the sampler is (eps, delta)-robust against
// any adaptive adversary.
func BernoulliRate(p Params, logCardinality float64) float64 {
	p.validate()
	rate := 10 * (logCardinality + math.Log(4/p.Delta)) / (p.Eps * p.Eps * float64(p.N))
	if rate > 1 {
		return 1
	}
	return rate
}

// ReservoirSize returns the Theorem 1.2 memory size for ReservoirSample:
//
//	k = ceil( 2 * (ln|R| + ln(2/delta)) / eps^2 ),
//
// capped at n (a reservoir of size n stores the whole stream). With this k
// the sampler is (eps, delta)-robust against any adaptive adversary.
func ReservoirSize(p Params, logCardinality float64) int {
	p.validate()
	k := int(math.Ceil(2 * (logCardinality + math.Log(2/p.Delta)) / (p.Eps * p.Eps)))
	if k < 1 {
		k = 1
	}
	if k > p.N {
		k = p.N
	}
	return k
}

// StaticBernoulliRate returns the classical non-adaptive rate, in which the
// cardinality term ln|R| of Theorem 1.2 is replaced by the VC-dimension d
// ([VC71, Tal94, LLS01]; constant chosen to match the paper's form):
//
//	p = c * (d + ln(1/delta)) / (eps^2 n), with c = 10.
//
// Against an adaptive adversary this rate is NOT sufficient in general
// (Theorem 1.3); experiment E11 demonstrates the gap.
func StaticBernoulliRate(p Params, vcDim int) float64 {
	p.validate()
	rate := 10 * (float64(vcDim) + math.Log(1/p.Delta)) / (p.Eps * p.Eps * float64(p.N))
	if rate > 1 {
		return 1
	}
	return rate
}

// StaticReservoirSize is the reservoir analogue of StaticBernoulliRate:
// k = ceil(c (d + ln 1/delta) / eps^2) with c = 2.
func StaticReservoirSize(p Params, vcDim int) int {
	p.validate()
	k := int(math.Ceil(2 * (float64(vcDim) + math.Log(1/p.Delta)) / (p.Eps * p.Eps)))
	if k < 1 {
		k = 1
	}
	if k > p.N {
		k = p.N
	}
	return k
}

// ContinuousCheckpointCount returns t, the number of geometric checkpoints
// i_1 < ... < i_t used by the Theorem 1.4 proof: consecutive points grow by
// (1 + eps/4), so t = O(eps^-1 ln n).
func ContinuousCheckpointCount(p Params) int {
	p.validate()
	t := int(math.Ceil(math.Log(float64(p.N))/math.Log1p(p.Eps/4))) + 1
	if t < 1 {
		t = 1
	}
	return t
}

// ContinuousReservoirSize returns the Theorem 1.4 memory size making
// ReservoirSample (eps, delta)-continuously robust. Following the proof, the
// reservoir must (a) be an (eps/4)-approximation at each of t checkpoints
// with per-checkpoint budget delta/2t, and (b) admit at most eps*k/2
// elements between consecutive checkpoints except with probability
// delta/2t, which needs k >= (4/eps) ln(2t/delta). The result is
//
//	k = max( 2*(ln|R| + ln(4t/delta)) / (eps/4)^2,  (4/eps) ln(2t/delta) ),
//
// capped at n.
func ContinuousReservoirSize(p Params, logCardinality float64) int {
	p.validate()
	t := float64(ContinuousCheckpointCount(p))
	approx := 2 * (logCardinality + math.Log(4*t/p.Delta)) / ((p.Eps / 4) * (p.Eps / 4))
	admit := 4 / p.Eps * math.Log(2*t/p.Delta)
	k := int(math.Ceil(math.Max(approx, admit)))
	if k < 1 {
		k = 1
	}
	if k > p.N {
		k = p.N
	}
	return k
}

// StaticContinuousReservoirSize is the "Moreover" clause of Theorem 1.4:
// for continuous robustness against a static (non-adaptive) adversary only,
// the ln|R| term can be replaced with the VC-dimension of the set system.
func StaticContinuousReservoirSize(p Params, vcDim int) int {
	p.validate()
	t := float64(ContinuousCheckpointCount(p))
	approx := 2 * (float64(vcDim) + math.Log(4*t/p.Delta)) / ((p.Eps / 4) * (p.Eps / 4))
	admit := 4 / p.Eps * math.Log(2*t/p.Delta)
	k := int(math.Ceil(math.Max(approx, admit)))
	if k < 1 {
		k = 1
	}
	if k > p.N {
		k = p.N
	}
	return k
}

// QuantileSketchSize returns the Corollary 1.5 reservoir size for an
// (eps, delta)-robust quantile sketch over a well-ordered universe of size
// universeSize: the prefix system has |R| = |U|.
func QuantileSketchSize(p Params, universeSize int64) int {
	return ReservoirSize(p, math.Log(float64(universeSize)))
}

// HeavyHitterSize returns the Corollary 1.6 reservoir size for solving
// (alpha, eps) heavy hitters in the adversarial model: an eps/3
// approximation over the singleton system with |R| = |U|.
func HeavyHitterSize(eps, delta float64, n int, universeSize int64) int {
	return ReservoirSize(Params{Eps: eps / 3, Delta: delta, N: n}, math.Log(float64(universeSize)))
}

// NewRobustBernoulli constructs a Bernoulli sampler parameterized per
// Theorem 1.2 for the given set system.
func NewRobustBernoulli(p Params, sys setsystem.SetSystem) *sampler.Bernoulli[int64] {
	return sampler.NewBernoulli[int64](BernoulliRate(p, sys.LogCardinality()))
}

// NewRobustReservoir constructs a reservoir sampler parameterized per
// Theorem 1.2 for the given set system.
func NewRobustReservoir(p Params, sys setsystem.SetSystem) *sampler.Reservoir[int64] {
	return sampler.NewReservoir[int64](ReservoirSize(p, sys.LogCardinality()))
}

// NewContinuousRobustReservoir constructs a reservoir sampler parameterized
// per Theorem 1.4 for the given set system.
func NewContinuousRobustReservoir(p Params, sys setsystem.SetSystem) *sampler.Reservoir[int64] {
	return sampler.NewReservoir[int64](ContinuousReservoirSize(p, sys.LogCardinality()))
}

// RobustnessEstimate summarizes a Monte-Carlo robustness measurement.
type RobustnessEstimate struct {
	// Failure counts games whose final sample was not an
	// eps-approximation.
	Failure stats.FailureRate
	// Errors summarizes the exact discrepancy across games.
	Errors stats.Summary
	// TheoryDelta is the failure probability Theorem 1.2 guarantees the
	// measurement must not exceed (up to Monte-Carlo noise).
	TheoryDelta float64
}

func (e RobustnessEstimate) String() string {
	return fmt.Sprintf("fail=%v errs{%v} theory<=%.3g", e.Failure, e.Errors, e.TheoryDelta)
}

// SamplerFactory builds a fresh sampler per game; Monte-Carlo estimation
// runs many games and samplers are stateful. Estimation fans trials out
// across a worker pool, so factories may be invoked concurrently and must
// be safe for that (stateless constructor closures are).
type SamplerFactory func() game.Sampler

// AdversaryFactory builds a fresh adversary per game. Like SamplerFactory,
// it may be invoked concurrently.
type AdversaryFactory func() game.Adversary

// EstimateRobustness plays `trials` independent adaptive games and measures
// the empirical failure rate of the eps-approximation verdict, alongside the
// distribution of exact discrepancies. The root RNG is split per trial, so
// results are deterministic given the root. Trials are fanned out across
// runtime.GOMAXPROCS workers; use EstimateRobustnessWorkers to control the
// pool size.
func EstimateRobustness(mkSampler SamplerFactory, mkAdv AdversaryFactory, sys setsystem.SetSystem, p Params, trials int, root *rng.RNG) RobustnessEstimate {
	return EstimateRobustnessWorkers(mkSampler, mkAdv, sys, p, trials, 0, root)
}

// EstimateRobustnessWorkers is EstimateRobustness over an explicit worker
// pool: workers <= 0 selects runtime.GOMAXPROCS(0), workers == 1 forces a
// serial loop. The per-trial RNGs are split sequentially from root before
// the fan-out, so the estimate is byte-identical for every worker count.
// The factories are invoked once per worker (each game fully Resets the
// players, so reuse across a worker's trials changes nothing) from worker
// goroutines, and must be safe for concurrent calls; plain constructor
// closures, like every factory in this repository, are.
func EstimateRobustnessWorkers(mkSampler SamplerFactory, mkAdv AdversaryFactory, sys setsystem.SetSystem, p Params, trials, workers int, root *rng.RNG) RobustnessEstimate {
	p.validate()
	if trials < 1 {
		panic("core: trials must be >= 1")
	}
	rngs := make([]*rng.RNG, trials)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	errs := make([]float64, trials)
	failed := make([]bool, trials)
	samplers := make([]game.Sampler, WorkerCount(trials, workers))
	advs := make([]game.Adversary, len(samplers))
	ForEachTrialOnWorker(trials, workers, func(worker, trial int) {
		if samplers[worker] == nil {
			samplers[worker] = mkSampler()
			advs[worker] = mkAdv()
		}
		res := game.Run(samplers[worker], advs[worker], sys, p.N, p.Eps, rngs[trial])
		failed[trial] = !res.OK
		errs[trial] = res.Discrepancy.Err
	})
	failures := 0
	for _, f := range failed {
		if f {
			failures++
		}
	}
	return RobustnessEstimate{
		Failure:     stats.FailureRate{Failures: failures, Trials: trials},
		Errors:      stats.Summarize(errs),
		TheoryDelta: p.Delta,
	}
}

// EstimateContinuousRobustness is the continuous-game analogue of
// EstimateRobustness: a trial fails if any checkpoint prefix violates the
// eps-approximation. The checkpoint schedule is the Theorem 1.4 geometric
// grid starting at the sampler's first full round. Trials run on a
// runtime.GOMAXPROCS worker pool; use EstimateContinuousRobustnessWorkers
// to control the pool size.
func EstimateContinuousRobustness(mkSampler SamplerFactory, mkAdv AdversaryFactory, sys setsystem.SetSystem, p Params, start, trials int, root *rng.RNG) RobustnessEstimate {
	return EstimateContinuousRobustnessWorkers(mkSampler, mkAdv, sys, p, start, trials, 0, root)
}

// EstimateContinuousRobustnessWorkers is EstimateContinuousRobustness over
// an explicit worker pool, with the same determinism guarantee as
// EstimateRobustnessWorkers: output is byte-identical for every worker
// count. Each worker reuses one sampler, one adversary and one incremental
// discrepancy engine across its trials (every game fully Resets them), so
// the table-driving hot loop allocates per worker, not per game.
func EstimateContinuousRobustnessWorkers(mkSampler SamplerFactory, mkAdv AdversaryFactory, sys setsystem.SetSystem, p Params, start, trials, workers int, root *rng.RNG) RobustnessEstimate {
	p.validate()
	if trials < 1 {
		panic("core: trials must be >= 1")
	}
	checkpoints := game.MustCheckpoints(start, p.N, p.Eps/4)
	rngs := make([]*rng.RNG, trials)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	errs := make([]float64, trials)
	failed := make([]bool, trials)
	samplers := make([]game.Sampler, WorkerCount(trials, workers))
	advs := make([]game.Adversary, len(samplers))
	accs := make([]*setsystem.Accumulator, len(samplers))
	ForEachTrialOnWorker(trials, workers, func(worker, trial int) {
		if samplers[worker] == nil {
			samplers[worker] = mkSampler()
			advs[worker] = mkAdv()
			accs[worker] = acquireAccumulator(sys)
		}
		res := game.RunContinuousWith(samplers[worker], advs[worker], sys, p.N, p.Eps, checkpoints, rngs[trial], accs[worker])
		failed[trial] = !res.OK
		errs[trial] = res.MaxPrefixErr
	})
	for _, acc := range accs {
		releaseAccumulator(sys, acc)
	}
	failures := 0
	for _, f := range failed {
		if f {
			failures++
		}
	}
	return RobustnessEstimate{
		Failure:     stats.FailureRate{Failures: failures, Trials: trials},
		Errors:      stats.Summarize(errs),
		TheoryDelta: p.Delta,
	}
}
