package core

import (
	"math"

	"robustsample/internal/rng"
)

// This file implements the martingale constructions of Section 4 as
// instrumented trackers. For a fixed range R, the paper defines
//
//	Bernoulli (Section 4.1, eq. (1)):
//	  A_i = |R ∩ X_i| / n,   B_i = |R ∩ S_i| / (n p),   Z_i = B_i - A_i
//
//	Reservoir (Section 4.2), for i > k:
//	  A_i = |R ∩ X_i|,       B_i = (i/k) |R ∩ S_i|,     Z_i = B_i - A_i
//	  (A_i = B_i = |R ∩ X_i| while i <= k)
//
// Claim 4.2 / Claim 4.3 prove these are martingales with bounded conditional
// variance (1/(n^2 p) and i/k respectively) and bounded steps (1/(n p) and
// i/k). The trackers record the realized trajectory, per-step increments,
// and the theoretical variance budget, so experiment E15 can (a) verify the
// empirical drift is ~0, (b) confirm every step respects the claimed bound,
// and (c) compare the realized deviation to the Freedman bound.

// MartingaleStep records one realized increment of Z.
type MartingaleStep struct {
	// Round is the 1-based round index.
	Round int
	// InR reports whether the submitted element was in R.
	InR bool
	// Admitted reports whether the element entered the sample.
	Admitted bool
	// Z is the value of Z after the round.
	Z float64
	// StepBound is the maximal |Z_i - Z_{i-1}| Claim 4.2/4.3 allows for
	// this round.
	StepBound float64
	// VarBound is the conditional variance bound for this round.
	VarBound float64
}

// BernoulliMartingale tracks Z_i for Bernoulli sampling with rate P over a
// stream of length N, for a fixed range predicate.
type BernoulliMartingale struct {
	// N is the stream length, P the sampling rate.
	N int
	P float64
	// InR decides membership of an element in the fixed range R.
	InR func(x int64) bool

	round     int
	inRStream int // |R ∩ X_i|
	inRSample int // |R ∩ S_i|
	steps     []MartingaleStep
}

// NewBernoulliMartingale constructs a tracker. It panics on invalid
// parameters.
func NewBernoulliMartingale(n int, p float64, inR func(x int64) bool) *BernoulliMartingale {
	if n < 1 {
		panic("core: martingale needs n >= 1")
	}
	if p <= 0 || p > 1 {
		panic("core: martingale needs 0 < p <= 1")
	}
	if inR == nil {
		panic("core: martingale needs a range predicate")
	}
	return &BernoulliMartingale{N: n, P: p, InR: inR}
}

// Observe folds in round i: the element x and whether the sampler admitted
// it. It must be called exactly once per round, in order.
func (m *BernoulliMartingale) Observe(x int64, admitted bool) {
	m.round++
	in := m.InR(x)
	if in {
		m.inRStream++
		if admitted {
			m.inRSample++
		}
	}
	nf := float64(m.N)
	a := float64(m.inRStream) / nf
	b := float64(m.inRSample) / (nf * m.P)
	stepBound := 0.0
	varBound := 0.0
	if in {
		// Claim 4.2: |step| <= 1/(np); Var <= 1/(n^2 p).
		stepBound = 1 / (nf * m.P)
		varBound = 1 / (nf * nf * m.P)
	}
	m.steps = append(m.steps, MartingaleStep{
		Round:     m.round,
		InR:       in,
		Admitted:  admitted,
		Z:         b - a,
		StepBound: stepBound,
		VarBound:  varBound,
	})
}

// Z returns the current value of the martingale (0 before any round).
func (m *BernoulliMartingale) Z() float64 {
	if len(m.steps) == 0 {
		return 0
	}
	return m.steps[len(m.steps)-1].Z
}

// Steps returns the recorded trajectory.
func (m *BernoulliMartingale) Steps() []MartingaleStep { return m.steps }

// MaxStepViolation returns the largest amount by which any realized step
// exceeded its Claim 4.2 bound (0 if none did; tolerance for float noise is
// the caller's concern).
func (m *BernoulliMartingale) MaxStepViolation() float64 {
	return maxStepViolation(m.steps)
}

// VarianceBudget returns the sum of conditional variance bounds, the
// denominator in the Freedman bound.
func (m *BernoulliMartingale) VarianceBudget() float64 {
	return varianceBudget(m.steps)
}

// FreedmanTail bounds Pr[|Z_n| >= lambda] per Lemma 3.3 with the realized
// variance budget and the worst-case step bound 1/(np).
func (m *BernoulliMartingale) FreedmanTail(lambda float64) float64 {
	return freedmanTail(lambda, m.VarianceBudget(), 1/(float64(m.N)*m.P))
}

// ReservoirMartingale tracks Z_i for reservoir sampling with memory K, for a
// fixed range predicate. Because B_i depends on the full sample composition,
// the tracker observes |R ∩ S_i| directly rather than incrementally.
type ReservoirMartingale struct {
	// K is the reservoir memory size.
	K int
	// InR decides membership of an element in the fixed range R.
	InR func(x int64) bool

	round     int
	inRStream int
	steps     []MartingaleStep
}

// NewReservoirMartingale constructs a tracker. It panics on invalid
// parameters.
func NewReservoirMartingale(k int, inR func(x int64) bool) *ReservoirMartingale {
	if k < 1 {
		panic("core: martingale needs k >= 1")
	}
	if inR == nil {
		panic("core: martingale needs a range predicate")
	}
	return &ReservoirMartingale{K: k, InR: inR}
}

// Observe folds in round i: the element x, whether it was admitted, and the
// sampler's current sample view (after the update).
func (m *ReservoirMartingale) Observe(x int64, admitted bool, sample []int64) {
	m.round++
	in := m.InR(x)
	if in {
		m.inRStream++
	}
	inRSample := 0
	for _, v := range sample {
		if m.InR(v) {
			inRSample++
		}
	}
	var a, b float64
	i := float64(m.round)
	k := float64(m.K)
	if m.round <= m.K {
		// Paper's convention: A_i = B_i = |R ∩ X_i| while the
		// reservoir is filling.
		a = float64(m.inRStream)
		b = a
	} else {
		a = float64(m.inRStream)
		b = i / k * float64(inRSample)
	}
	stepBound := 0.0
	varBound := 0.0
	if m.round > m.K {
		// Claim 4.3: |step| <= i/k and Var <= i/k.
		stepBound = i / k
		varBound = i / k
	}
	m.steps = append(m.steps, MartingaleStep{
		Round:     m.round,
		InR:       in,
		Admitted:  admitted,
		Z:         b - a,
		StepBound: stepBound,
		VarBound:  varBound,
	})
}

// Z returns the current value of the martingale (0 before any round).
func (m *ReservoirMartingale) Z() float64 {
	if len(m.steps) == 0 {
		return 0
	}
	return m.steps[len(m.steps)-1].Z
}

// Steps returns the recorded trajectory.
func (m *ReservoirMartingale) Steps() []MartingaleStep { return m.steps }

// MaxStepViolation returns the largest amount by which any realized step
// exceeded its Claim 4.3 bound.
func (m *ReservoirMartingale) MaxStepViolation() float64 {
	return maxStepViolation(m.steps)
}

// VarianceBudget returns the sum of conditional variance bounds.
func (m *ReservoirMartingale) VarianceBudget() float64 {
	return varianceBudget(m.steps)
}

// FreedmanTail bounds Pr[|Z_n| >= lambda] per Lemma 3.3 with the realized
// variance budget and step bound n/k.
func (m *ReservoirMartingale) FreedmanTail(lambda float64) float64 {
	return freedmanTail(lambda, m.VarianceBudget(), float64(m.round)/float64(m.K))
}

func maxStepViolation(steps []MartingaleStep) float64 {
	worst := 0.0
	prev := 0.0
	for _, s := range steps {
		diff := math.Abs(s.Z - prev)
		if excess := diff - s.StepBound; excess > worst {
			worst = excess
		}
		prev = s.Z
	}
	return worst
}

func varianceBudget(steps []MartingaleStep) float64 {
	sum := 0.0
	for _, s := range steps {
		sum += s.VarBound
	}
	return sum
}

func freedmanTail(lambda, sumVar, m float64) float64 {
	if lambda <= 0 {
		return 1
	}
	b := 2 * math.Exp(-lambda*lambda/(2*sumVar+m*lambda/3))
	if b > 1 {
		return 1
	}
	return b
}

// EmpiricalDrift estimates E[Z_i - Z_{i-1} | history] averaged over many
// independent replays of a fixed adversary schedule; for a true martingale
// it converges to 0. It replays `trials` Bernoulli(p) sampling runs over the
// fixed stream, tracking the mean final Z. Used by tests to validate Claim
// 4.2 empirically.
func EmpiricalDrift(stream []int64, p float64, inR func(int64) bool, trials int, root *rng.RNG) float64 {
	if trials < 1 {
		panic("core: trials must be >= 1")
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		r := root.Split()
		m := NewBernoulliMartingale(len(stream), p, inR)
		for _, x := range stream {
			m.Observe(x, r.Bernoulli(p))
		}
		sum += m.Z()
	}
	return sum / float64(trials)
}
