package core

import (
	"math"
	"testing"

	"robustsample/internal/adversary"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

func TestBernoulliRateFormula(t *testing.T) {
	p := Params{Eps: 0.1, Delta: 0.1, N: 100000}
	logR := math.Log(1 << 20)
	got := BernoulliRate(p, logR)
	want := 10 * (logR + math.Log(40)) / (0.01 * 100000)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("rate %v, want %v", got, want)
	}
}

func TestBernoulliRateClamps(t *testing.T) {
	p := Params{Eps: 0.01, Delta: 0.01, N: 10}
	if got := BernoulliRate(p, 100); got != 1 {
		t.Fatalf("rate should clamp to 1, got %v", got)
	}
}

func TestReservoirSizeFormula(t *testing.T) {
	p := Params{Eps: 0.1, Delta: 0.1, N: 1 << 30}
	logR := math.Log(1 << 20)
	got := ReservoirSize(p, logR)
	want := int(math.Ceil(2 * (logR + math.Log(20)) / 0.01))
	if got != want {
		t.Fatalf("k = %d, want %d", got, want)
	}
}

func TestReservoirSizeCapsAtN(t *testing.T) {
	p := Params{Eps: 0.05, Delta: 0.01, N: 50}
	if got := ReservoirSize(p, 20); got != 50 {
		t.Fatalf("k should cap at n=50, got %d", got)
	}
}

func TestStaticBoundsSmallerThanAdaptive(t *testing.T) {
	// For a prefix system over a large universe, ln|R| >> d = 1, so the
	// static bound must be much smaller — that gap is the paper's point.
	p := Params{Eps: 0.1, Delta: 0.1, N: 1 << 30}
	sys := setsystem.NewPrefixes(1 << 40)
	adaptive := ReservoirSize(p, sys.LogCardinality())
	static := StaticReservoirSize(p, sys.VCDim())
	if static >= adaptive {
		t.Fatalf("static k=%d should be < adaptive k=%d", static, adaptive)
	}
	if ratio := float64(adaptive) / float64(static); ratio < 3 {
		t.Fatalf("expected a substantial gap, ratio %v", ratio)
	}
	aRate := BernoulliRate(p, sys.LogCardinality())
	sRate := StaticBernoulliRate(p, sys.VCDim())
	if sRate >= aRate {
		t.Fatalf("static rate %v should be < adaptive rate %v", sRate, aRate)
	}
}

func TestContinuousSizeLargerThanPlain(t *testing.T) {
	p := Params{Eps: 0.1, Delta: 0.1, N: 100000}
	logR := math.Log(1 << 20)
	plain := ReservoirSize(p, logR)
	cont := ContinuousReservoirSize(p, logR)
	if cont <= plain {
		t.Fatalf("continuous k=%d must exceed plain k=%d", cont, plain)
	}
	// But only by the ln(1/eps) + ln ln n overhead, not astronomically:
	// the eps/4 in the proof costs a factor ~16-32 overall.
	if cont > 64*plain {
		t.Fatalf("continuous k=%d unreasonably large vs %d", cont, plain)
	}
}

func TestContinuousCheckpointCount(t *testing.T) {
	p := Params{Eps: 0.2, Delta: 0.1, N: 100000}
	town := ContinuousCheckpointCount(p)
	want := int(math.Ceil(math.Log(100000)/math.Log1p(0.05))) + 1
	if town != want {
		t.Fatalf("t = %d, want %d", town, want)
	}
}

func TestQuantileAndHHConvenience(t *testing.T) {
	p := Params{Eps: 0.1, Delta: 0.1, N: 100000}
	q := QuantileSketchSize(p, 1<<20)
	if q != ReservoirSize(p, math.Log(1<<20)) {
		t.Fatal("quantile size must match prefix-system reservoir size")
	}
	hh := HeavyHitterSize(0.3, 0.1, 100000, 1<<20)
	if hh != ReservoirSize(Params{Eps: 0.1, Delta: 0.1, N: 100000}, math.Log(1<<20)) {
		t.Fatal("HH size must match eps/3 singleton-system size")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Eps: 0, Delta: 0.1, N: 10},
		{Eps: 1, Delta: 0.1, N: 10},
		{Eps: 0.1, Delta: 0, N: 10},
		{Eps: 0.1, Delta: 1, N: 10},
		{Eps: 0.1, Delta: 0.1, N: 0},
	}
	for _, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("params %+v did not panic", p)
				}
			}()
			BernoulliRate(p, 1)
		}()
	}
}

func TestNewRobustSamplers(t *testing.T) {
	p := Params{Eps: 0.2, Delta: 0.1, N: 10000}
	sys := setsystem.NewPrefixes(1 << 16)
	b := NewRobustBernoulli(p, sys)
	if b.P != BernoulliRate(p, sys.LogCardinality()) {
		t.Fatal("robust Bernoulli rate mismatch")
	}
	v := NewRobustReservoir(p, sys)
	if v.K != ReservoirSize(p, sys.LogCardinality()) {
		t.Fatal("robust reservoir size mismatch")
	}
	c := NewContinuousRobustReservoir(p, sys)
	if c.K != ContinuousReservoirSize(p, sys.LogCardinality()) {
		t.Fatal("continuous robust reservoir size mismatch")
	}
}

func TestRobustReservoirSurvivesBisection(t *testing.T) {
	// Theorem 1.2 integration check: at the robust k, the bisection
	// attack must fail to break the eps-approximation in (almost) all
	// trials.
	p := Params{Eps: 0.25, Delta: 0.2, N: 3000}
	universe := int64(1) << 62
	sys := setsystem.NewPrefixes(universe)
	k := ReservoirSize(p, sys.LogCardinality())
	root := rng.New(1)
	est := EstimateRobustness(
		func() game.Sampler { return sampler.NewReservoir[int64](k) },
		func() game.Adversary { return adversary.NewBisectionReservoir(universe, p.N, k) },
		sys, p, 30, root,
	)
	// Allow Monte-Carlo slack above delta.
	if est.Failure.Rate() > p.Delta+0.15 {
		t.Fatalf("robust reservoir failed too often: %v", est.Failure)
	}
}

func TestTinyReservoirBreaksUnderExactAttack(t *testing.T) {
	// Complement of the above: far below the bound, the attack wins.
	root := rng.New(2)
	const n, k = 4000, 5
	broken := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		res := adversary.RunExactBisectionReservoir(n, k, r)
		d := setsystem.NewPrefixes(int64(n)).MaxDiscrepancy(res.Stream, res.Sample)
		if d.Err > 0.5 {
			broken++
		}
	}
	if broken < trials*3/4 {
		t.Fatalf("tiny reservoir broken in only %d/%d trials", broken, trials)
	}
}

func TestEstimateRobustnessDeterministic(t *testing.T) {
	p := Params{Eps: 0.3, Delta: 0.2, N: 500}
	sys := setsystem.NewPrefixes(1 << 16)
	mk := func() RobustnessEstimate {
		return EstimateRobustness(
			func() game.Sampler { return sampler.NewReservoir[int64](50) },
			func() game.Adversary { return adversary.NewStaticUniform(1 << 16) },
			sys, p, 10, rng.New(7),
		)
	}
	a, b := mk(), mk()
	if a.Failure != b.Failure || a.Errors.Mean != b.Errors.Mean {
		t.Fatal("estimate not deterministic under fixed seed")
	}
}

func TestEstimateRobustnessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for trials=0")
		}
	}()
	EstimateRobustness(
		func() game.Sampler { return sampler.NewReservoir[int64](5) },
		func() game.Adversary { return adversary.NewStaticUniform(10) },
		setsystem.NewPrefixes(10), Params{Eps: 0.1, Delta: 0.1, N: 10}, 0, rng.New(1),
	)
}

func TestEstimateContinuousRobustness(t *testing.T) {
	p := Params{Eps: 0.3, Delta: 0.2, N: 800}
	sys := setsystem.NewPrefixes(1 << 16)
	k := ContinuousReservoirSize(p, sys.LogCardinality())
	root := rng.New(3)
	est := EstimateContinuousRobustness(
		func() game.Sampler { return sampler.NewReservoir[int64](k) },
		func() game.Adversary { return adversary.NewStaticUniform(1 << 16) },
		sys, p, k, 10, root,
	)
	if est.Failure.Rate() > p.Delta+0.2 {
		t.Fatalf("continuous robust reservoir failed too often: %v", est.Failure)
	}
	if est.Errors.N != 10 {
		t.Fatal("trial count mismatch")
	}
}

func TestRobustnessEstimateString(t *testing.T) {
	if (RobustnessEstimate{}).String() == "" {
		t.Fatal("empty string")
	}
}

func TestStaticContinuousSmallerThanAdaptive(t *testing.T) {
	// Theorem 1.4 "Moreover": static continuous robustness needs only
	// the VC term, which for prefix systems over large universes is far
	// below ln|R|.
	p := Params{Eps: 0.1, Delta: 0.1, N: 1 << 30}
	sys := setsystem.NewPrefixes(1 << 40)
	static := StaticContinuousReservoirSize(p, sys.VCDim())
	adaptive := ContinuousReservoirSize(p, sys.LogCardinality())
	if static >= adaptive {
		t.Fatalf("static continuous k=%d should be < adaptive k=%d", static, adaptive)
	}
	// And it still exceeds the plain static (non-continuous) size.
	if static <= StaticReservoirSize(p, sys.VCDim()) {
		t.Fatal("continuous static should cost more than plain static")
	}
}

func TestStaticContinuousCapsAtN(t *testing.T) {
	p := Params{Eps: 0.05, Delta: 0.01, N: 100}
	if got := StaticContinuousReservoirSize(p, 1); got != 100 {
		t.Fatalf("should cap at n, got %d", got)
	}
}
