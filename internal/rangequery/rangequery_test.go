package rangequery

import (
	"math"
	"testing"
	"testing/quick"

	"robustsample/internal/rng"
	"robustsample/internal/sampler"
)

func TestGridValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewGrid(0, 1) },
		func() { NewGrid(5, 0) },
		func() { NewGrid(5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGridLogCardinality(t *testing.T) {
	g := NewGrid(10, 2)
	want := 2 * math.Log(55)
	if math.Abs(g.LogCardinality()-want) > 1e-12 {
		t.Fatalf("logCard = %v, want %v", g.LogCardinality(), want)
	}
	if g.VCDim() != 4 {
		t.Fatalf("VC dim = %d, want 4", g.VCDim())
	}
}

func TestCounterMatchesBruteForce1D(t *testing.T) {
	g := NewGrid(10, 1)
	c := NewCounter(g)
	r := rng.New(1)
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = g.RandomPoint(r)
		c.Add(pts[i])
	}
	for lo := int64(1); lo <= 10; lo++ {
		for hi := lo; hi <= 10; hi++ {
			b := Box{Lo: Point{lo}, Hi: Point{hi}}
			want := int64(0)
			for _, p := range pts {
				if b.Contains(p, 1) {
					want++
				}
			}
			if got := c.CountBox(b); got != want {
				t.Fatalf("1D box [%d,%d]: got %d, want %d", lo, hi, got, want)
			}
		}
	}
}

func TestCounterMatchesBruteForce2D(t *testing.T) {
	g := NewGrid(8, 2)
	c := NewCounter(g)
	r := rng.New(2)
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = g.RandomPoint(r)
		c.Add(pts[i])
	}
	for trial := 0; trial < 200; trial++ {
		var b Box
		for j := 0; j < 2; j++ {
			a := 1 + r.Int63n(8)
			z := 1 + r.Int63n(8)
			if a > z {
				a, z = z, a
			}
			b.Lo[j], b.Hi[j] = a, z
		}
		want := int64(0)
		for _, p := range pts {
			if b.Contains(p, 2) {
				want++
			}
		}
		if got := c.CountBox(b); got != want {
			t.Fatalf("2D box %+v: got %d, want %d", b, got, want)
		}
	}
}

func TestCounterMatchesBruteForce3D(t *testing.T) {
	g := NewGrid(6, 3)
	c := NewCounter(g)
	r := rng.New(3)
	pts := make([]Point, 400)
	for i := range pts {
		pts[i] = g.RandomPoint(r)
		c.Add(pts[i])
	}
	for trial := 0; trial < 200; trial++ {
		var b Box
		for j := 0; j < 3; j++ {
			a := 1 + r.Int63n(6)
			z := 1 + r.Int63n(6)
			if a > z {
				a, z = z, a
			}
			b.Lo[j], b.Hi[j] = a, z
		}
		want := int64(0)
		for _, p := range pts {
			if b.Contains(p, 3) {
				want++
			}
		}
		if got := c.CountBox(b); got != want {
			t.Fatalf("3D box %+v: got %d, want %d", b, got, want)
		}
	}
}

func TestCounterClampsAndEmptyBoxes(t *testing.T) {
	g := NewGrid(5, 2)
	c := NewCounter(g)
	c.Add(Point{3, 3})
	// Box covering everything, specified beyond grid bounds.
	b := Box{Lo: Point{-10, -10}, Hi: Point{99, 99}}
	if c.CountBox(b) != 1 {
		t.Fatal("clamped box should count the point")
	}
	// Inverted box.
	b = Box{Lo: Point{4, 4}, Hi: Point{2, 2}}
	if c.CountBox(b) != 0 {
		t.Fatal("inverted box should count zero")
	}
}

func TestCounterRejectsOutOfGrid(t *testing.T) {
	g := NewGrid(5, 2)
	c := NewCounter(g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Add(Point{6, 1})
}

func TestCounterRejectsHugeGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCounter(NewGrid(1<<20, 3))
}

func TestCounterIncrementalAddAfterQuery(t *testing.T) {
	g := NewGrid(4, 1)
	c := NewCounter(g)
	c.Add(Point{1})
	all := Box{Lo: Point{1}, Hi: Point{4}}
	if c.CountBox(all) != 1 {
		t.Fatal("first count wrong")
	}
	c.Add(Point{4})
	if c.CountBox(all) != 2 {
		t.Fatal("count after re-add wrong; prefix sums stale")
	}
}

func TestEstimatorAccuracyUniform(t *testing.T) {
	g := NewGrid(16, 2)
	r := rng.New(4)
	const n = 20000
	stream := make([]Point, n)
	res := sampler.NewReservoir[Point](3000)
	for i := range stream {
		stream[i] = g.RandomPoint(r)
		res.Offer(stream[i], r)
	}
	est := NewEstimator(g, res.View(), n)
	exact := NewCounter(g)
	for _, p := range stream {
		exact.Add(p)
	}
	for trial := 0; trial < 100; trial++ {
		var b Box
		for j := 0; j < 2; j++ {
			a := 1 + r.Int63n(16)
			z := 1 + r.Int63n(16)
			if a > z {
				a, z = z, a
			}
			b.Lo[j], b.Hi[j] = a, z
		}
		got := est.EstimateBox(b)
		want := float64(exact.CountBox(b))
		if math.Abs(got-want) > 0.1*n {
			t.Fatalf("box %+v: estimate %v vs exact %v", b, got, want)
		}
	}
}

func TestEstimatorEmptySample(t *testing.T) {
	g := NewGrid(4, 1)
	est := NewEstimator(g, nil, 100)
	if est.EstimateBox(Box{Lo: Point{1}, Hi: Point{4}}) != 0 {
		t.Fatal("empty sample estimate should be 0")
	}
}

func TestMaxBoxDiscrepancyPerfectSample(t *testing.T) {
	g := NewGrid(6, 2)
	r := rng.New(5)
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = g.RandomPoint(r)
	}
	err, _ := MaxBoxDiscrepancy(g, pts, pts)
	if err != 0 {
		t.Fatalf("identical sample discrepancy %v", err)
	}
}

func TestMaxBoxDiscrepancyEmptySample(t *testing.T) {
	g := NewGrid(4, 1)
	pts := []Point{{1}, {2}}
	err, box := MaxBoxDiscrepancy(g, pts, nil)
	if err != 1 {
		t.Fatalf("empty sample discrepancy %v, want 1", err)
	}
	if !box.Contains(Point{1}, 1) || !box.Contains(Point{2}, 1) {
		t.Fatalf("witness box %+v misses the mass", box)
	}
}

func TestMaxBoxDiscrepancyEmptyStream(t *testing.T) {
	g := NewGrid(4, 1)
	err, _ := MaxBoxDiscrepancy(g, nil, nil)
	if err != 0 {
		t.Fatal("empty stream discrepancy should be 0")
	}
}

func TestMaxBoxDiscrepancyWitnessAchieves(t *testing.T) {
	g := NewGrid(5, 2)
	r := rng.New(6)
	stream := make([]Point, 60)
	for i := range stream {
		stream[i] = g.RandomPoint(r)
	}
	sample := stream[:10]
	err, box := MaxBoxDiscrepancy(g, stream, sample)
	inStream, inSample := 0, 0
	for _, p := range stream {
		if box.Contains(p, 2) {
			inStream++
		}
	}
	for _, p := range sample {
		if box.Contains(p, 2) {
			inSample++
		}
	}
	got := math.Abs(float64(inStream)/float64(len(stream)) - float64(inSample)/float64(len(sample)))
	if math.Abs(got-err) > 1e-12 {
		t.Fatalf("witness achieves %v, reported %v", got, err)
	}
}

func TestMaxBoxDiscrepancyBounded(t *testing.T) {
	g := NewGrid(4, 2)
	r := rng.New(7)
	f := func(nRaw, sRaw uint8) bool {
		n := int(nRaw%30) + 1
		s := int(sRaw%10) + 1
		stream := make([]Point, n)
		for i := range stream {
			stream[i] = g.RandomPoint(r)
		}
		sample := make([]Point, s)
		for i := range sample {
			sample[i] = g.RandomPoint(r)
		}
		err, _ := MaxBoxDiscrepancy(g, stream, sample)
		return err >= 0 && err <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCornerStufferTargetsCorners(t *testing.T) {
	g := NewGrid(8, 2)
	cs := NewCornerStuffer(g)
	r := rng.New(8)
	corners := map[Point]bool{}
	for _, c := range cornerCells(g) {
		corners[c] = true
	}
	for i := 0; i < 100; i++ {
		p := cs.Next(nil, r)
		if !corners[p] {
			t.Fatalf("corner stuffer emitted non-corner %v", p)
		}
	}
}

func TestCornerStufferBoundedByTheorem(t *testing.T) {
	// Theorem 1.2 over the box system: at sample size
	// k = 2(ln|R| + ln(2/delta))/eps^2, even the adaptive corner stuffer
	// must leave the discrepancy at or below eps. Also check the error
	// shrinks as k grows (by roughly sqrt scaling).
	g := NewGrid(8, 2)
	root := rng.New(9)
	run := func(k int) float64 {
		r := root.Split()
		cs := NewCornerStuffer(g)
		res := sampler.NewReservoir[Point](k)
		var stream []Point
		const n = 3000
		for i := 0; i < n; i++ {
			p := cs.Next(res.View(), r)
			stream = append(stream, p)
			res.Offer(p, r)
		}
		err, _ := MaxBoxDiscrepancy(g, stream, res.View())
		return err
	}
	const trials = 5
	mean := func(k int) float64 {
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += run(k)
		}
		return sum / trials
	}
	small, large := mean(16), mean(1024)
	// Theorem 1.2 eps at k=1024, delta=0.1.
	eps := math.Sqrt(2 * (g.LogCardinality() + math.Log(20)) / 1024)
	if large > eps {
		t.Fatalf("robust-size sample error %v exceeds theory eps %v", large, eps)
	}
	if large >= small {
		t.Fatalf("error did not shrink with k: k=16 -> %v, k=1024 -> %v", small, large)
	}
}

func TestCornerStufferReset(t *testing.T) {
	g := NewGrid(4, 1)
	cs := NewCornerStuffer(g)
	r := rng.New(10)
	cs.Next(nil, r)
	cs.Reset()
	if cs.streamC.N() != 0 {
		t.Fatal("reset did not clear stream history")
	}
}

func TestCornerCellCount(t *testing.T) {
	if len(cornerCells(NewGrid(5, 1))) != 2 {
		t.Fatal("1D should have 2 corners")
	}
	if len(cornerCells(NewGrid(5, 2))) != 4 {
		t.Fatal("2D should have 4 corners")
	}
	if len(cornerCells(NewGrid(5, 3))) != 8 {
		t.Fatal("3D should have 8 corners")
	}
}

func BenchmarkCountBox2D(b *testing.B) {
	g := NewGrid(32, 2)
	c := NewCounter(g)
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		c.Add(g.RandomPoint(r))
	}
	box := Box{Lo: Point{5, 5}, Hi: Point{20, 20}}
	c.CountBox(box) // force build
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CountBox(box)
	}
}

func BenchmarkMaxBoxDiscrepancy2D(b *testing.B) {
	g := NewGrid(16, 2)
	r := rng.New(1)
	stream := make([]Point, 5000)
	for i := range stream {
		stream[i] = g.RandomPoint(r)
	}
	sample := stream[:500]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxBoxDiscrepancy(g, stream, sample)
	}
}
