// Package rangequery implements the range-query application of Section 1.2:
// streams of points over the grid universe U = [m]^d (d <= 3) queried with
// axis-aligned boxes. An eps-approximation of the point stream answers every
// box-count query within eps*n, and the robust sample size from Theorem 1.2
// uses ln|R| = d * ln(m(m+1)/2), i.e. O(d ln m) as the paper states.
//
// Exact counting (ground truth and exact discrepancy over *all* boxes) is
// done with d-dimensional prefix sums over the grid, so the experiment
// verdicts are exact rather than sampled.
package rangequery

import (
	"math"

	"robustsample/internal/rng"
)

// MaxDim is the largest supported dimension.
const MaxDim = 3

// Point is a point in [1, m]^d; coordinates beyond the dimension are
// ignored (and should be left zero).
type Point [MaxDim]int64

// Box is an axis-aligned box [Lo[j], Hi[j]] per coordinate.
type Box struct {
	Lo, Hi Point
}

// Contains reports whether p lies inside the box in the first d coords.
func (b Box) Contains(p Point, d int) bool {
	for j := 0; j < d; j++ {
		if p[j] < b.Lo[j] || p[j] > b.Hi[j] {
			return false
		}
	}
	return true
}

// Grid describes the universe [1, M]^D.
type Grid struct {
	// M is the side length.
	M int64
	// D is the dimension, 1..MaxDim.
	D int
}

// NewGrid returns the grid universe [1, m]^d. It panics on invalid sizes.
func NewGrid(m int64, d int) Grid {
	if m < 1 {
		panic("rangequery: side length must be >= 1")
	}
	if d < 1 || d > MaxDim {
		panic("rangequery: dimension must be in 1..3")
	}
	return Grid{M: m, D: d}
}

// LogCardinality returns ln|R| for the axis-aligned box system:
// |R| = (m(m+1)/2)^d.
func (g Grid) LogCardinality() float64 {
	m := float64(g.M)
	return float64(g.D) * math.Log(m*(m+1)/2)
}

// VCDim returns the VC-dimension of axis-aligned boxes in d dimensions, 2d.
func (g Grid) VCDim() int { return 2 * g.D }

// Valid reports whether p lies in the grid.
func (g Grid) Valid(p Point) bool {
	for j := 0; j < g.D; j++ {
		if p[j] < 1 || p[j] > g.M {
			return false
		}
	}
	return true
}

// RandomPoint draws a uniform grid point.
func (g Grid) RandomPoint(r *rng.RNG) Point {
	var p Point
	for j := 0; j < g.D; j++ {
		p[j] = 1 + r.Int63n(g.M)
	}
	return p
}

// Counter maintains exact counts of points with d-dimensional prefix sums,
// supporting O(2^d) box-count queries after an O(m^d) build.
type Counter struct {
	grid   Grid
	raw    []int64 // m^d cell counts
	prefix []int64 // inclusive prefix sums, built lazily
	n      int
	dirty  bool
}

// NewCounter returns an empty counter over the grid. It panics if the grid
// would need more than ~64M cells.
func NewCounter(g Grid) *Counter {
	cells := int64(1)
	for j := 0; j < g.D; j++ {
		cells *= g.M
		if cells > 1<<26 {
			panic("rangequery: grid too large for exact counting")
		}
	}
	return &Counter{
		grid:   g,
		raw:    make([]int64, cells),
		prefix: make([]int64, cells),
	}
}

// Grid returns the counter's universe.
func (c *Counter) Grid() Grid { return c.grid }

// Add records one point. It panics if the point is outside the grid.
func (c *Counter) Add(p Point) {
	if !c.grid.Valid(p) {
		panic("rangequery: point outside grid")
	}
	c.raw[c.index(p)]++
	c.n++
	c.dirty = true
}

// N returns the number of recorded points.
func (c *Counter) N() int { return c.n }

func (c *Counter) index(p Point) int64 {
	idx := int64(0)
	for j := 0; j < c.grid.D; j++ {
		idx = idx*c.grid.M + (p[j] - 1)
	}
	return idx
}

// build recomputes prefix sums: prefix[p] = #points with coord <= p
// coordinate-wise, via one sweep per dimension.
func (c *Counter) build() {
	copy(c.prefix, c.raw)
	m := c.grid.M
	d := c.grid.D
	// Strides: dimension j has stride m^(d-1-j).
	for j := d - 1; j >= 0; j-- {
		stride := int64(1)
		for t := j + 1; t < d; t++ {
			stride *= m
		}
		total := int64(len(c.prefix))
		for i := int64(0); i < total; i++ {
			// Coordinate of dim j at flat index i.
			coord := (i / stride) % m
			if coord > 0 {
				c.prefix[i] += c.prefix[i-stride]
			}
		}
	}
	c.dirty = false
}

// CountBox returns the exact number of recorded points inside the box,
// clamped to the grid. Empty (inverted) boxes count zero.
func (c *Counter) CountBox(b Box) int64 {
	if c.dirty {
		c.build()
	}
	d := c.grid.D
	// Inclusion-exclusion over the 2^d corners.
	var lo, hi [MaxDim]int64
	for j := 0; j < d; j++ {
		lo[j] = b.Lo[j]
		hi[j] = b.Hi[j]
		if lo[j] < 1 {
			lo[j] = 1
		}
		if hi[j] > c.grid.M {
			hi[j] = c.grid.M
		}
		if lo[j] > hi[j] {
			return 0
		}
	}
	total := int64(0)
	for mask := 0; mask < 1<<d; mask++ {
		var corner Point
		sign := int64(1)
		ok := true
		for j := 0; j < d; j++ {
			if mask&(1<<j) != 0 {
				corner[j] = lo[j] - 1
				sign = -sign
				if corner[j] < 1 {
					ok = false
					break
				}
			} else {
				corner[j] = hi[j]
			}
		}
		if !ok {
			if sign < 0 {
				continue // the lo-1 < 1 term is zero
			}
			continue
		}
		total += sign * c.prefix[c.index(corner)]
	}
	return total
}

// Estimator answers box-count queries from a sample of the stream:
// estimate = d_B(sample) * n. With a Theorem 1.2-sized sample this is the
// paper's robust range-query structure.
type Estimator struct {
	grid    Grid
	sample  *Counter
	streamN int
}

// NewEstimator builds an estimator from a sample of a stream with n points.
func NewEstimator(g Grid, sample []Point, streamN int) *Estimator {
	c := NewCounter(g)
	for _, p := range sample {
		c.Add(p)
	}
	return &Estimator{grid: g, sample: c, streamN: streamN}
}

// EstimateBox returns the estimated number of stream points in the box.
func (e *Estimator) EstimateBox(b Box) float64 {
	if e.sample.N() == 0 {
		return 0
	}
	return float64(e.sample.CountBox(b)) / float64(e.sample.N()) * float64(e.streamN)
}

// MaxBoxDiscrepancy computes the exact epsilon-approximation error of the
// sample against the stream over ALL axis-aligned boxes, by enumerating
// every box via prefix sums. Cost is O((m(m+1)/2)^d) queries; keep m modest
// (the experiments use m <= 32 for d = 2 and m <= 12 for d = 3). It also
// returns a witnessing box.
func MaxBoxDiscrepancy(g Grid, stream, sample []Point) (float64, Box) {
	if len(stream) == 0 {
		return 0, Box{}
	}
	sc := NewCounter(g)
	for _, p := range stream {
		sc.Add(p)
	}
	var smp *Counter
	if len(sample) > 0 {
		smp = NewCounter(g)
		for _, p := range sample {
			smp.Add(p)
		}
	}
	nx := float64(len(stream))
	ns := float64(len(sample))

	var best float64
	var bestBox Box
	var rec func(dim int, box Box)
	rec = func(dim int, box Box) {
		if dim == g.D {
			dx := float64(sc.CountBox(box)) / nx
			ds := 0.0
			if smp != nil {
				ds = float64(smp.CountBox(box)) / ns
			}
			if d := math.Abs(dx - ds); d > best {
				best = d
				bestBox = box
			}
			return
		}
		for lo := int64(1); lo <= g.M; lo++ {
			for hi := lo; hi <= g.M; hi++ {
				box.Lo[dim], box.Hi[dim] = lo, hi
				rec(dim+1, box)
			}
		}
	}
	rec(0, Box{})
	return best, bestBox
}

// CornerStuffer is an adaptive point-stream adversary: each round it
// evaluates which corner cell of the grid the current sample most
// underrepresents relative to the stream so far, and submits a point there.
// It is the d-dimensional cousin of the heavy-hitter inflation attack and
// drives experiment E8's adversarial row.
type CornerStuffer struct {
	grid    Grid
	streamC *Counter
}

// NewCornerStuffer returns a corner-stuffing adversary over the grid.
func NewCornerStuffer(g Grid) *CornerStuffer {
	return &CornerStuffer{grid: g, streamC: NewCounter(g)}
}

// Reset clears the stream history.
func (cs *CornerStuffer) Reset() {
	cs.streamC = NewCounter(cs.grid)
}

// Next chooses the next point given the current sample, then records it.
func (cs *CornerStuffer) Next(sample []Point, r *rng.RNG) Point {
	g := cs.grid
	corners := cornerCells(g)
	// Count the sample per corner.
	sampleCount := make([]int, len(corners))
	for _, p := range sample {
		for ci, corner := range corners {
			if p == corner {
				sampleCount[ci]++
			}
		}
	}
	// Pick the corner maximizing stream density minus sample density
	// (most underrepresented); break ties randomly.
	bestGap := math.Inf(-1)
	bestIdx := 0
	n := cs.streamC.N()
	for ci, corner := range corners {
		var streamD, sampleD float64
		if n > 0 {
			streamD = float64(cs.streamC.CountBox(Box{Lo: corner, Hi: corner})) / float64(n)
		}
		if len(sample) > 0 {
			sampleD = float64(sampleCount[ci]) / float64(len(sample))
		}
		gap := streamD - sampleD
		if gap > bestGap || (gap == bestGap && r.Bernoulli(0.5)) {
			bestGap = gap
			bestIdx = ci
		}
	}
	p := corners[bestIdx]
	cs.streamC.Add(p)
	return p
}

// cornerCells returns the 2^d corner cells of the grid.
func cornerCells(g Grid) []Point {
	out := make([]Point, 0, 1<<g.D)
	for mask := 0; mask < 1<<g.D; mask++ {
		var p Point
		for j := 0; j < g.D; j++ {
			if mask&(1<<j) != 0 {
				p[j] = g.M
			} else {
				p[j] = 1
			}
		}
		out = append(out, p)
	}
	return out
}
