package shard

import (
	"fmt"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/setsystem"
)

// stripeRouter is a Router the liveRouter switch does not recognize, so it
// exercises the locked fallback path (scalar and batch).
type stripeRouter struct{}

func (stripeRouter) Name() string { return "stripe" }
func (stripeRouter) Reset()       {}
func (stripeRouter) Route(x int64, round int, shards int, _ *rng.RNG) int {
	return int((uint64(x) + uint64(round)) % uint64(shards))
}

// TestLiveRouterBatchMatchesScalar pins the batch routing contract: for
// every router, RouteLiveBatch over any chunking of a lane's stream must
// produce exactly the destinations that per-element RouteLive calls on the
// same lane would. For Uniform this doubles as a test of the exact-drain
// bulk-RNG discipline (the batch path consumes the lane's stream
// draw-for-draw like scalar Intn).
func TestLiveRouterBatchMatchesScalar(t *testing.T) {
	const n = 1000
	stream := servingStream(n, 17)
	sys := setsystem.NewPrefixes(servingUniverse)
	chunks := []int{1, 7, 8, 64, 123, 256}
	routers := append(Routers(), stripeRouter{})
	for _, router := range routers {
		for _, S := range []int{1, 3, 4} {
			name := fmt.Sprintf("%s/S=%d", router.Name(), S)
			cfg := Config{Shards: S, Router: router, System: sys, Workers: 1}
			// Two identically seeded engines: one routed per element, one
			// in chunks. Their routing state (lane RNG splits, tickets,
			// fallback round counters) must evolve identically.
			ea := New(cfg, rng.New(5))
			eb := New(cfg, rng.New(5))
			scalar, _ := ea.liveRouter(&Serving{e: ea}, 1)
			_, batch := eb.liveRouter(&Serving{e: eb}, 1)

			want := make([]int, n)
			for i, x := range stream {
				want[i] = scalar(0, x)
			}
			got := make([]int, 0, n)
			dst := make([]int, chunks[len(chunks)-1])
			for i, c := 0, 0; i < n; c++ {
				k := min(chunks[c%len(chunks)], n-i)
				batch(0, stream[i:i+k], dst[:k])
				got = append(got, dst[:k]...)
				i += k
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: element %d routed to %d by batch, %d by scalar", name, i, got[i], want[i])
				}
			}
		}
	}
}
