package shard

import (
	"errors"
	"fmt"
	"slices"

	"robustsample/internal/sampler"
	"robustsample/internal/snapshot"
)

// ErrUnsnapshottable is returned when an engine configuration cannot be
// serialized: stream-recording engines (their state is the raw traffic, not
// a summary) and engines whose samplers have no snapshot codec.
var ErrUnsnapshottable = errors.New("shard: engine configuration has no snapshot codec")

// AppendState appends the engine's full dynamic state: coordinator rounds,
// the routing RNG, and per shard the private RNG, substream length, sampler
// state and accumulator state. Configuration (shard count, router, set
// system, worker pool) is NOT serialized — a snapshot restores into an
// engine built with the same Config, which is verified structurally on
// load. All in-repo routers are stateless given their inputs, so no router
// state is needed.
func AppendState(buf []byte, e *Engine) ([]byte, error) {
	if e.cfg.RecordStreams {
		return nil, fmt.Errorf("%w: RecordStreams engines", ErrUnsnapshottable)
	}
	if e.routerRNG == nil {
		return nil, fmt.Errorf("shard: engine not seeded (call StartGame before snapshotting)")
	}
	buf = snapshot.AppendInt64(buf, int64(e.rounds))
	buf = snapshot.AppendUint64(buf, uint64(len(e.shards)))
	hi, lo := e.routerRNG.State()
	buf = snapshot.AppendUint64(buf, hi)
	buf = snapshot.AppendUint64(buf, lo)
	for _, sh := range e.shards {
		var err error
		buf, err = appendShardBlock(buf, sh)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// appendShardBlock appends one shard's dynamic state — its private RNG,
// substream length, sampler state and accumulator state. It is the
// per-shard unit of both the full engine snapshot and the serving runtime's
// per-shard crash checkpoints (a block restores independently of the other
// shards, which is what makes single-shard recovery possible).
func appendShardBlock(buf []byte, sh *shardState) ([]byte, error) {
	if len(sh.pending) != 0 {
		return nil, fmt.Errorf("shard: snapshot with pending un-ingested elements")
	}
	hi, lo := sh.rng.State()
	buf = snapshot.AppendUint64(buf, hi)
	buf = snapshot.AppendUint64(buf, lo)
	buf = snapshot.AppendInt64(buf, int64(sh.rounds))
	buf = snapshot.AppendBool(buf, sh.sampler != nil)
	if sh.sampler == nil {
		return buf, nil
	}
	var err error
	buf, err = sampler.AppendState(buf, sh.sampler)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsnapshottable, err)
	}
	return sh.acc.AppendSnapshot(buf), nil
}

// LoadState restores state written by AppendState into e, which must have
// been built with an equivalent Config (same shard count, same sampler
// shapes, same set system) and seeded at least once. On success the engine
// behaves exactly as the snapshotted one would for any subsequent traffic.
func LoadState(r *snapshot.Reader, e *Engine) error {
	if e.cfg.RecordStreams {
		return fmt.Errorf("%w: RecordStreams engines", ErrUnsnapshottable)
	}
	if e.routerRNG == nil {
		return fmt.Errorf("shard: engine not seeded (call StartGame before restoring)")
	}
	rounds := r.Int64()
	nShards := r.Uint64()
	routerHi := r.Uint64()
	routerLo := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	if rounds < 0 || nShards != uint64(len(e.shards)) {
		return fmt.Errorf("shard: snapshot has %d shards, engine has %d: %w", nShards, len(e.shards), snapshot.ErrCorrupt)
	}
	e.rounds = int(rounds)
	e.routerRNG.SetState(routerHi, routerLo)
	e.router.Reset()
	for _, sh := range e.shards {
		if err := loadShardBlock(r, sh); err != nil {
			return err
		}
	}
	return nil
}

// loadShardBlock restores one shard from a block written by
// appendShardBlock; the shard must have the same sampler layout.
func loadShardBlock(r *snapshot.Reader, sh *shardState) error {
	hi := r.Uint64()
	lo := r.Uint64()
	shRounds := r.Int64()
	hasSampler := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if shRounds < 0 || hasSampler != (sh.sampler != nil) {
		return fmt.Errorf("shard: snapshot sampler layout does not match engine config: %w", snapshot.ErrCorrupt)
	}
	sh.rng.SetState(hi, lo)
	sh.rounds = int(shRounds)
	sh.pending = sh.pending[:0]
	if sh.sampler == nil {
		return nil
	}
	if err := sampler.LoadState(r, sh.sampler); err != nil {
		return err
	}
	if err := sh.acc.LoadSnapshot(r); err != nil {
		return err
	}
	// Cross-validate the two independently-decoded halves: the accumulator
	// mirrors the sampler element by element on the ingest path, so a
	// snapshot whose sample multiset disagrees with the sampler's retained
	// items (or whose stream length disagrees with the round count) would
	// desynchronize them and panic on the first eviction of a phantom
	// element. Each half validates internally; only the pair check catches
	// bytes corrupted in just one of them.
	if int64(sh.acc.StreamLen()) != shRounds {
		return fmt.Errorf("shard: snapshot accumulator stream length %d does not match %d rounds: %w",
			sh.acc.StreamLen(), shRounds, snapshot.ErrCorrupt)
	}
	items := sh.sampler.View()
	if sh.acc.SampleLen() != len(items) {
		return fmt.Errorf("shard: snapshot accumulator holds %d sample elements, sampler retains %d: %w",
			sh.acc.SampleLen(), len(items), snapshot.ErrCorrupt)
	}
	sorted := slices.Clone(items)
	slices.Sort(sorted)
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		if sh.acc.SampleCount(sorted[i]) != int64(j-i) {
			return fmt.Errorf("shard: snapshot sample multiset disagrees with sampler items at value %d: %w",
				sorted[i], snapshot.ErrCorrupt)
		}
		i = j
	}
	return nil
}
