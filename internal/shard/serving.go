// The serving runtime: Engine.Serve lifts a sharded engine into a
// concurrent ingest pipeline (internal/runtime) where many producer
// goroutines offer elements while per-shard consumers drain them into the
// existing sampler + accumulator batch paths, and coordinator queries —
// Verdict, ShardVerdict, Sample, GlobalSample — run live against
// epoch-stamped read barriers instead of stopping the stream.
//
// Two modes:
//
//   - Live (default): producers route their own elements (per-lane RNG
//     streams for Uniform, the pure hash for HashByValue, an atomic ticket
//     for RoundRobin) and push lock-free into per-shard rings. Maximum
//     throughput; the ingested interleaving is whatever the scheduler made
//     it, so samples are valid but not bit-reproducible.
//   - Deterministic: a router goroutine merges the producer lanes in
//     round-robin order and draws routing decisions serially from the
//     engine's routing RNG — exactly the serial Ingest code path — so a
//     stream striped across lanes (lane p takes elements p, p+P, ...)
//     yields byte-identical samples and verdict tables to serial ingest,
//     for every producer count. The differential tests pin this.
//
// Queries lock one shard at a time (Freeze: all of them) only against the
// consumers' bounded apply chunks; the offer hot path never blocks on a
// query. ShardVerdict additionally copies the shard's accumulator behind
// the lock (setsystem.CopyFrom, the read-barrier copy hook) and runs the
// discrepancy scan on the copy outside it.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"robustsample/internal/faults"
	"robustsample/internal/rng"
	"robustsample/internal/runtime"
	"robustsample/internal/setsystem"
)

// ErrServeUnsupported reports an engine configuration Serve cannot run
// concurrently (stream recording needs a global element order, which a
// concurrent ingest has only in deterministic mode — and there the recorded
// order would duplicate what the producers already hold).
var ErrServeUnsupported = errors.New("shard: engine configuration does not support serving")

// ServeConfig sizes the ingest pipeline.
type ServeConfig struct {
	// Producers is the number of producer lanes; <= 0 selects 1. Each lane
	// is owned by one goroutine at a time.
	Producers int
	// RingSize is the per-ring capacity (backpressure bound); <= 0 selects
	// the runtime default.
	RingSize int
	// ChunkCap caps elements applied per shard-lock hold; <= 0 selects the
	// runtime default.
	ChunkCap int
	// Deterministic selects sequenced routing (see package comment).
	Deterministic bool
	// CheckpointEvery enables crash supervision: each shard snapshots its
	// state (appendShardBlock) roughly every CheckpointEvery applied
	// elements, and a panicking consumer restores the shard from its
	// latest checkpoint instead of killing the process (see health.go for
	// the recovery contract). 0 disables supervision unless Faults is set,
	// in which case the default interval is 4096. Requires a snapshot
	// codec (Serve fails fast otherwise).
	CheckpointEvery int
	// RetryLimit is how many times a failing chunk is retried from the
	// restored checkpoint before being dropped (its elements count as
	// lost); <= 0 selects 2.
	RetryLimit int
	// Faults injects a deterministic, seeded fault plan into the apply
	// path for chaos runs; the plan must have been built for this engine's
	// shard count. Setting it implies supervision.
	Faults *faults.Plan
	// QueryWait bounds how long the degraded reads (VerdictCovered,
	// SampleCovered, GlobalSampleCovered) wait per shard lock before
	// skipping the shard; <= 0 selects 5ms.
	QueryWait time.Duration
}

// Serving is a running concurrent ingest session over an Engine. All its
// methods are safe for concurrent use (Producer lanes by one goroutine
// each); the underlying Engine must not be used directly until Close.
type Serving struct {
	e   *Engine
	pl  *runtime.Pipeline
	sup *supervisor // nil when supervision is off

	qmu     sync.Mutex             // serializes queries (shared scratch accumulators)
	scratch *setsystem.Accumulator // ShardVerdict copy target

	routeMu     sync.Mutex // serializes routing state against Freeze (deterministic / fallback routers)
	startRounds int
	startShard  []int         // per-shard rounds at Serve time (Health resolution without supervision)
	queryWait   time.Duration // degraded reads' per-shard lock wait bound
	liveRound   atomic.Int64  // live RoundRobin ticket
	fallback    int           // fallback router round counter, under routeMu
}

// Serve starts a concurrent ingest pipeline over the engine. The engine
// must be seeded (StartGame) and must not record streams; it must not be
// touched directly — including by its own Ingest/Offer/Verdict — until the
// returned Serving is Closed, which drains the pipeline and syncs the
// engine's counters so serial use can resume.
func (e *Engine) Serve(cfg ServeConfig) (*Serving, error) {
	if e.cfg.RecordStreams {
		return nil, fmt.Errorf("%w: RecordStreams engines ingest serially", ErrServeUnsupported)
	}
	if e.routerRNG == nil {
		return nil, fmt.Errorf("%w: engine is not seeded (StartGame first)", ErrServeUnsupported)
	}
	if cfg.Producers <= 0 {
		cfg.Producers = 1
	}
	if cfg.Faults != nil && cfg.Faults.Shards() != len(e.shards) {
		return nil, fmt.Errorf("shard: fault plan built for %d shards, engine has %d", cfg.Faults.Shards(), len(e.shards))
	}
	if cfg.Faults != nil && cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 4096
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = 2
	}
	if cfg.QueryWait <= 0 {
		cfg.QueryWait = 5 * time.Millisecond
	}
	s := &Serving{e: e, startRounds: e.rounds, queryWait: cfg.QueryWait}
	s.startShard = make([]int, len(e.shards))
	for i, sh := range e.shards {
		s.startShard[i] = sh.rounds
	}
	rcfg := runtime.Config{
		Shards:        len(e.shards),
		Producers:     cfg.Producers,
		RingSize:      cfg.RingSize,
		ChunkCap:      cfg.ChunkCap,
		Deterministic: cfg.Deterministic,
		Apply: func(si int, xs []int64) {
			e.applyShard(e.shards[si], xs)
		},
	}
	if cfg.CheckpointEvery > 0 {
		sup, err := newSupervisor(e, cfg.Deterministic, cfg.CheckpointEvery, cfg.RetryLimit, cfg.Faults)
		if err != nil {
			return nil, err
		}
		s.sup = sup
		rcfg.Apply = func(si int, xs []int64) { sup.apply(si, xs) }
		rcfg.OnApplyPanic = sup.onPanic
		if sup.plan != nil {
			rcfg.BeforeApply = sup.inject
		}
	}
	if cfg.Deterministic {
		round := e.rounds
		rcfg.RouteSerial = func(x int64) int {
			s.routeMu.Lock()
			round++
			si := e.router.Route(x, round, len(e.shards), e.routerRNG)
			s.routeMu.Unlock()
			if si < 0 || si >= len(e.shards) {
				panic("shard: router returned out-of-range shard")
			}
			return si
		}
	} else {
		rcfg.RouteLive, rcfg.RouteLiveBatch = e.liveRouter(s, cfg.Producers)
	}
	pl, err := runtime.Start(rcfg)
	if err != nil {
		return nil, err
	}
	s.pl = pl
	return s, nil
}

// routeBulk is the per-lane bulk-uniform scratch size for batch routing.
const routeBulk = 256

// uniformLane is one producer lane's routing state for the Uniform router:
// a private RNG stream plus a bulk-draw scratch, both owned by the lane's
// driving goroutine.
type uniformLane struct {
	r    *rng.RNG
	ubuf [routeBulk]uint64
}

// liveRouter builds the producer-side routing functions for live mode —
// the per-element one and the batch one, sharing routing state so a lane
// may mix Offer and OfferBatch freely. The three in-repo routers route
// without shared mutable state (per-lane RNG streams split from the
// engine's routing stream for Uniform, a pure hash, an atomic ticket for
// RoundRobin); unknown Router implementations fall back to a lock around
// the serial routing path, taken once per batch on the batch side.
//
// The batch variants are where the per-element routing overhead goes away:
// HashByValue hashes in unrolled groups of 8 with one bounds check per
// group, RoundRobin claims a whole run of tickets with one atomic add, and
// Uniform draws its uniforms in bulk (FillUniform64 with the same
// exact-drain discipline as the samplers, so batch and scalar routing
// consume the lane's stream identically).
func (e *Engine) liveRouter(s *Serving, producers int) (func(int, int64) int, func(int, []int64, []int)) {
	S := len(e.shards)
	switch r := e.router.(type) {
	case Uniform:
		lanes := make([]*uniformLane, producers)
		for i := range lanes {
			lanes[i] = &uniformLane{r: e.routerRNG.Split()}
		}
		scalar := func(lane int, _ int64) int { return lanes[lane].r.Intn(S) }
		m := uint64(S)
		thresh := (-m) % m // Lemire rejection threshold, hoisted for the whole session
		//robust:hotpath
		batch := func(lane int, xs []int64, dst []int) {
			l := lanes[lane]
			n := len(dst)
			bi, bn := 0, 0
			for i := range dst {
				if bi == bn {
					bn = min(n-i, routeBulk)
					l.r.FillUniform64(l.ubuf[:bn])
					bi = 0
				}
				// Inlined r.Intn: same accept condition and redraw order,
				// uniforms from the scratch (exact-drain: every element
				// consumes at least one).
				hi, lo := bits.Mul64(l.ubuf[bi], m)
				bi++
				for lo < thresh {
					if bi == bn {
						bn = min(n-i, routeBulk)
						l.r.FillUniform64(l.ubuf[:bn])
						bi = 0
					}
					hi, lo = bits.Mul64(l.ubuf[bi], m)
					bi++
				}
				dst[i] = int(hi)
			}
		}
		return scalar, batch
	case HashByValue:
		scalar := func(_ int, x int64) int { return r.Route(x, 0, S, nil) }
		//robust:hotpath
		batch := func(_ int, xs []int64, dst []int) {
			// The shared 8-wide group-hash lane; its modulo matches
			// Route's exactly, so batch destinations are the scalar
			// route's.
			runtime.RouteHashBatch(xs, dst, S)
		}
		return scalar, batch
	case RoundRobin:
		scalar := func(_ int, _ int64) int {
			return int((s.liveRound.Add(1) - 1) % int64(S))
		}
		//robust:hotpath
		batch := func(_ int, xs []int64, dst []int) {
			// One atomic add claims the whole ticket run.
			n := int64(len(dst))
			start := s.liveRound.Add(n) - n
			for i := range dst {
				dst[i] = int((start + int64(i)) % int64(S))
			}
		}
		return scalar, batch
	default:
		route := func(x int64) int {
			s.fallback++
			si := e.router.Route(x, s.fallback, S, e.routerRNG)
			if si < 0 || si >= S {
				panic("shard: router returned out-of-range shard")
			}
			return si
		}
		scalar := func(_ int, x int64) int {
			s.routeMu.Lock()
			defer s.routeMu.Unlock()
			return route(x)
		}
		batch := func(_ int, xs []int64, dst []int) {
			s.routeMu.Lock()
			defer s.routeMu.Unlock()
			for i, x := range xs {
				dst[i] = route(x)
			}
		}
		return scalar, batch
	}
}

// Producer returns ingest lane i in [0, NumProducers).
func (s *Serving) Producer(i int) *runtime.Producer { return s.pl.Producer(i) }

// NumProducers returns the producer lane count.
func (s *Serving) NumProducers() int { return s.pl.NumProducers() }

// Rounds returns the number of elements accepted so far (offered into the
// pipeline, applied or not).
func (s *Serving) Rounds() int { return s.startRounds + int(s.pl.Offered()) }

// AppliedRounds returns the number of elements currently reflected in shard
// state — what the live queries see. Elements lost to crash recovery
// (rolled back or dropped; see Health) are excluded.
func (s *Serving) AppliedRounds() int {
	return s.startRounds + int(s.pl.Applied()) - int(s.lostRounds())
}

// Flush is the drain barrier: it returns once everything offered before the
// call is applied to shard state, with the epoch stamping the moment.
func (s *Serving) Flush() runtime.Epoch { return s.pl.Flush() }

// Verdict returns the exact discrepancy of the union of the applied
// substreams against the union of the per-shard samples, merging per-shard
// histograms behind each shard's read barrier. It runs concurrently with
// ingest: each shard's (substream, sample) pair is internally consistent,
// with shards cut at slightly different points of the in-flight stream —
// Flush first (or quiesce producers) for a cut covering everything offered.
func (s *Serving) Verdict() setsystem.Discrepancy {
	e := s.e
	if e.cfg.NewSampler == nil {
		panic("shard: Verdict requires samplers (routing-only engine)")
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if e.global == nil {
		e.global = e.cfg.System.NewAccumulator()
	}
	e.global.Reset()
	for i, sh := range e.shards {
		s.pl.WithShard(i, func() {
			e.withSampleSynced(sh, func() { e.global.MergeFrom(sh.acc) })
		})
	}
	return e.global.Max()
}

// ShardVerdict returns shard i's local discrepancy. The shard is locked
// only for a histogram copy (CopyFrom); the discrepancy scan runs on the
// copy, outside the lock, so slow verdicts never stall that shard's ingest.
func (s *Serving) ShardVerdict(i int) setsystem.Discrepancy {
	e := s.e
	sh := e.shards[i]
	if sh.sampler == nil {
		panic("shard: ShardVerdict requires samplers (routing-only engine)")
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.scratch == nil {
		s.scratch = e.cfg.System.NewAccumulator()
	}
	s.pl.WithShard(i, func() {
		e.withSampleSynced(sh, func() { s.scratch.CopyFrom(sh.acc) })
	})
	return s.scratch.Max()
}

// Sample returns a copy of the union of the per-shard samples, in shard
// order, each shard read behind its barrier.
func (s *Serving) Sample() []int64 {
	var out []int64
	for i, sh := range s.e.shards {
		if sh.sampler == nil {
			continue
		}
		s.pl.WithShard(i, func() { out = append(out, sh.sampler.View()...) })
	}
	return out
}

// SampleLen returns the union sample size.
func (s *Serving) SampleLen() int {
	n := 0
	for i, sh := range s.e.shards {
		if sh.sampler == nil {
			continue
		}
		s.pl.WithShard(i, func() { n += sh.sampler.Len() })
	}
	return n
}

// ShardRounds returns the applied substream length of shard i.
func (s *Serving) ShardRounds(i int) int {
	n := 0
	s.pl.WithShard(i, func() { n = s.e.shards[i].rounds })
	return n
}

// GlobalSample draws a uniform size-k sample of the union of the applied
// substreams from the per-shard samples alone ([CTW16] fan-in): per-shard
// views and populations are copied behind the read barriers and merged
// outside every lock. The caller owns r (pass a query-side RNG; the public
// layer serializes it).
func (s *Serving) GlobalSample(k int, r *rng.RNG) []int64 {
	e := s.e
	if e.cfg.NewSampler == nil {
		panic("shard: GlobalSample requires samplers (routing-only engine)")
	}
	views := make([][]int64, len(e.shards))
	pops := make([]int, len(e.shards))
	for i, sh := range e.shards {
		s.pl.WithShard(i, func() {
			views[i] = append([]int64(nil), sh.sampler.View()...)
			pops[i] = sh.rounds
		})
	}
	return MergeGlobalSample(views, pops, k, r)
}

// Freeze runs fn with every shard lock held and routing paused: a single
// cross-shard-consistent cut of the applied state. Offered-but-unapplied
// elements wait in the rings and are excluded from the cut.
func (s *Serving) Freeze(fn func()) runtime.Epoch {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	return s.pl.Freeze(fn)
}

// AppendState serializes the engine under a freeze (per-shard samplers,
// accumulators and RNG streams, and the routing stream), first syncing the
// engine's round counter to the applied count. For a cut that includes
// everything offered — and, in deterministic mode, a routing-RNG state that
// replays bit-exactly — Flush first and keep producers quiescent across the
// call, the usual checkpoint sequence.
func (s *Serving) AppendState(buf []byte) ([]byte, runtime.Epoch, error) {
	var err error
	out := buf
	ep := s.Freeze(func() {
		s.syncRounds()
		out, err = AppendState(out, s.e)
	})
	return out, ep, err
}

// syncRounds re-derives the engine's coordinator round counter from the
// pipeline's counters, excluding rounds lost to crash recovery so the
// e.rounds == sum(shard rounds) invariant survives rollbacks and drops.
func (s *Serving) syncRounds() {
	s.e.rounds = s.startRounds + int(s.pl.Applied()) - int(s.lostRounds())
}

// Close drains everything offered, stops the pipeline goroutines, and
// syncs the engine's counters; afterwards the engine is safe for direct
// serial use again. Close is idempotent. Producers racing with Close get
// runtime.ErrClosed from their offers; accepted elements are never lost.
func (s *Serving) Close() runtime.Epoch {
	ep := s.pl.Close()
	s.syncRounds()
	return ep
}

// CloseCtx is Close with a drain deadline: a wedged consumer cannot hang
// shutdown past ctx. On timeout it returns an error matching both
// runtime.ErrDrainTimeout and the ctx error; the drain keeps running in the
// background, the engine's counters are NOT yet synced (the session is
// still draining), and a later Close/CloseCtx waits for the same drain.
func (s *Serving) CloseCtx(ctx context.Context) (runtime.Epoch, error) {
	ep, err := s.pl.CloseCtx(ctx)
	if err != nil {
		return ep, err
	}
	s.syncRounds()
	return ep, nil
}
