// Package shard implements the sharded continuous-sampling engine connecting
// the paper's adversarial-robustness results to continuous distributed
// sampling (Section 1.3; Chung-Tirthapura-Woodruff [CTW16] and Cormode et
// al. [CMYZ12]): one (possibly adaptive) stream is routed across S shards,
// each shard maintains its own sampler over its substream with a private
// split-RNG stream plus an incremental discrepancy accumulator, and a
// coordinator answers global checkpoint queries without ever touching raw
// substreams:
//
//   - Verdict merges the per-shard histograms through the setsystem
//     Accumulator's MergeFrom path, yielding the exact discrepancy of the
//     union stream against the union sample — bit-identical (error AND
//     witness) to a one-shot MaxDiscrepancy on the concatenated stream — at
//     a cost proportional to distinct values, not stream length.
//   - GlobalSample draws a uniform size-k sample of the union stream from
//     the per-shard samples alone via sampler.MergeSamples, the [CTW16]
//     coordinator primitive.
//
// Routing is pluggable (Router: uniform-random, hash-by-value, round-robin)
// and always runs serially on the coordinator, while shard ingest fans out
// across the core worker pool. The determinism contract matches the rest of
// the repository: routing decisions are drawn in element order from the
// coordinator's RNG before the fan-out, per-shard sampler RNGs are split
// sequentially at seeding time, each shard touches only its own state, and
// verdicts merge in shard order — so every result is byte-identical for any
// worker count, and batch ingest is invariant to how the stream is chunked.
package shard

import (
	"robustsample/internal/core"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

// Config describes a sharded engine.
type Config struct {
	// Shards is S, the number of shards. It must be >= 1.
	Shards int
	// Router selects the routing mode; nil defaults to Uniform.
	Router Router
	// System is the set system global and per-shard verdicts are computed
	// against. It is required unless NewSampler is nil (a routing-only
	// engine, e.g. the distsim cluster).
	System setsystem.SetSystem
	// NewSampler builds shard i's sampler. It is called once per shard at
	// engine construction; samplers are Reset (never rebuilt) on
	// StartGame. nil gives a routing/recording-only engine with no
	// samplers and no verdicts.
	NewSampler func(shard int) game.Sampler
	// Workers sizes the worker pool for parallel shard ingest: 0 uses all
	// CPUs, 1 runs inline. Results are byte-identical for every value.
	Workers int
	// RecordStreams keeps the full stream and each shard's raw substream
	// in memory (needed by representativeness measurements and the
	// differential tests; verdicts never read them).
	RecordStreams bool
}

// shardState is one shard: a sampler fed from a private RNG stream plus the
// incremental accumulator tracking (substream, local sample) exactly.
type shardState struct {
	sampler game.Sampler
	batch   game.BatchSampler        // non-nil when the sampler supports bulk ingest
	deltas  game.SampleDeltaReporter // non-nil when the sampler reports deltas
	acc     *setsystem.Accumulator
	rng     *rng.RNG
	stream  []int64 // raw substream when Config.RecordStreams
	rounds  int     // substream length (the shard's local population size)
	pending []int64 // elements routed here but not yet ingested
}

// Engine routes one stream across shards and answers global queries by
// merging per-shard state. It is not safe for concurrent use; the
// parallelism is internal (shard ingest).
type Engine struct {
	cfg       Config
	router    Router
	routerRNG *rng.RNG
	shards    []*shardState
	global    *setsystem.Accumulator // scratch for merged verdicts
	stream    []int64                // full routed stream when RecordStreams
	rounds    int
	unionBuf  []int64 // reused by SampleView
	admitBuf  []int   // reused by OfferBatch's per-shard admitted counts
}

// New builds an engine from cfg, seeding it from root when root is non-nil.
// With a nil root the engine must be seeded by StartGame before use (the
// sharded game does this, so per-worker engines can be built once and
// re-seeded per trial).
func New(cfg Config, root *rng.RNG) *Engine {
	if cfg.Shards < 1 {
		panic("shard: need at least 1 shard")
	}
	if cfg.NewSampler != nil && cfg.System == nil {
		panic("shard: samplers need a set system for their accumulators")
	}
	if cfg.Router == nil {
		cfg.Router = Uniform{}
	}
	e := &Engine{cfg: cfg, router: cfg.Router}
	e.shards = make([]*shardState, cfg.Shards)
	for i := range e.shards {
		sh := &shardState{}
		if cfg.NewSampler != nil {
			sh.sampler = cfg.NewSampler(i)
			sh.batch, _ = sh.sampler.(game.BatchSampler)
			sh.deltas, _ = sh.sampler.(game.SampleDeltaReporter)
			sh.acc = cfg.System.NewAccumulator()
		}
		e.shards[i] = sh
	}
	if root != nil {
		e.StartGame(root)
	}
	return e
}

// StartGame resets the engine for a fresh stream and re-seeds its RNG
// streams from r: the coordinator's routing stream first, then one private
// stream per shard, split sequentially in shard order. All subsequent
// behaviour is a deterministic function of r, the routed elements, and the
// configuration — never of the worker count.
func (e *Engine) StartGame(r *rng.RNG) {
	e.routerRNG = r.Split()
	e.router.Reset()
	for _, sh := range e.shards {
		sh.rng = r.Split()
		if sh.sampler != nil {
			sh.sampler.Reset()
			sh.acc.Reset()
		}
		sh.stream = sh.stream[:0]
		sh.rounds = 0
		sh.pending = sh.pending[:0]
	}
	e.stream = e.stream[:0]
	e.rounds = 0
}

// NumShards returns S.
func (e *Engine) NumShards() int { return len(e.shards) }

// Rounds returns the number of elements routed so far.
func (e *Engine) Rounds() int { return e.rounds }

// Offer routes one element and feeds it to its shard's sampler, returning
// the destination shard and whether that shard's sampler admitted the
// element. This is the adaptive path: the caller sees both before choosing
// the next element.
func (e *Engine) Offer(x int64) (shardIdx int, admitted bool) {
	e.rounds++
	si := e.router.Route(x, e.rounds, len(e.shards), e.routerRNG)
	if si < 0 || si >= len(e.shards) {
		panic("shard: router returned out-of-range shard")
	}
	if e.cfg.RecordStreams {
		e.stream = append(e.stream, x)
	}
	return si, e.offerTo(e.shards[si], x)
}

// RouteTo feeds one element to an explicit shard, bypassing the router —
// for callers that produce routing decisions externally (e.g. replaying a
// recorded attack). It returns whether the shard's sampler admitted the
// element.
func (e *Engine) RouteTo(x int64, shardIdx int) bool {
	if shardIdx < 0 || shardIdx >= len(e.shards) {
		panic("shard: shard index out of range")
	}
	e.rounds++
	if e.cfg.RecordStreams {
		e.stream = append(e.stream, x)
	}
	return e.offerTo(e.shards[shardIdx], x)
}

// offerTo is the per-element shard ingest step: substream bookkeeping, one
// sampler Offer, and the accumulator sync from the sampler's delta.
func (e *Engine) offerTo(sh *shardState, x int64) bool {
	sh.rounds++
	if e.cfg.RecordStreams {
		sh.stream = append(sh.stream, x)
	}
	if sh.sampler == nil {
		return false
	}
	admitted := sh.sampler.Offer(x, sh.rng)
	sh.acc.AddStream(x)
	if sh.deltas != nil {
		added, removed := sh.deltas.LastDelta()
		for _, a := range added {
			sh.acc.AddSample(a)
		}
		for _, v := range removed {
			sh.acc.RemoveSample(v)
		}
	}
	return admitted
}

// Ingest routes a run of consecutive elements and ingests each shard's share
// in parallel on the core worker pool. Routing decisions are drawn serially
// in element order before the fan-out and each shard mutates only its own
// state, so the result is byte-identical for every worker count — and,
// because the samplers' batch paths and the accumulator are
// chunking-invariant, identical no matter how the stream is sliced across
// Ingest calls.
func (e *Engine) Ingest(xs []int64) { e.OfferBatch(xs) }

// OfferBatch is Ingest reporting how many elements entered some shard's
// sample — the canonical bulk-ingest name, matching the public Sketch
// contract.
//
//robust:hotpath
func (e *Engine) OfferBatch(xs []int64) int {
	for _, x := range xs {
		e.rounds++
		si := e.router.Route(x, e.rounds, len(e.shards), e.routerRNG)
		if si < 0 || si >= len(e.shards) {
			panic("shard: router returned out-of-range shard")
		}
		e.shards[si].pending = append(e.shards[si].pending, x)
	}
	if e.cfg.RecordStreams {
		e.stream = append(e.stream, xs...)
	}
	if cap(e.admitBuf) < len(e.shards) {
		e.admitBuf = make([]int, len(e.shards))
	}
	admitted := e.admitBuf[:len(e.shards)]
	//robust:alloc one closure per batch for the worker fan-out, amortized over the whole run
	core.ForEachTrial(len(e.shards), e.cfg.Workers, func(i int) {
		admitted[i] = e.flush(e.shards[i])
	})
	total := 0
	for _, n := range admitted {
		total += n
	}
	return total
}

// flush ingests a shard's pending elements through applyShard and reports
// how many were admitted.
func (e *Engine) flush(sh *shardState) int {
	n := e.applyShard(sh, sh.pending)
	sh.pending = sh.pending[:0]
	return n
}

// applyShard is the single-shard ingest step shared by the serial batch
// path and the serving pipeline's consumer goroutines: the bulk path
// (game.IngestBatchSynced — the same batch-delta sync the batched
// continuous game uses, fused pass included) when the sampler supports it,
// the per-element path otherwise. It mutates only sh, so distinct shards
// may be applied concurrently; results are invariant to how the shard's
// routed substream is chunked across calls.
func (e *Engine) applyShard(sh *shardState, xs []int64) int {
	if len(xs) == 0 {
		return 0
	}
	if sh.sampler == nil || sh.batch == nil || sh.deltas == nil {
		n := 0
		for _, x := range xs {
			if e.offerTo(sh, x) {
				n++
			}
		}
		return n
	}
	sh.rounds += len(xs)
	if e.cfg.RecordStreams {
		sh.stream = append(sh.stream, xs...)
	}
	return game.IngestBatchSynced(sh.batch, sh.deltas, sh.acc, xs, sh.rng)
}

// Verdict returns the exact global discrepancy of the union stream against
// the union of the per-shard samples, by folding every shard's accumulator
// into one engine via MergeFrom — no raw substream is re-read, so the cost
// is proportional to distinct values, not to traffic since the last
// checkpoint. The result is bit-identical (error AND witness) to
// System.MaxDiscrepancy on the concatenated stream and concatenated shard
// samples, for every routing mode, shard count and worker count.
func (e *Engine) Verdict() setsystem.Discrepancy {
	if e.cfg.NewSampler == nil {
		panic("shard: Verdict requires samplers (routing-only engine)")
	}
	if e.global == nil {
		e.global = e.cfg.System.NewAccumulator()
	}
	e.global.Reset()
	for _, sh := range e.shards {
		e.withSampleSynced(sh, func() { e.global.MergeFrom(sh.acc) })
	}
	return e.global.Max()
}

// ShardVerdict returns shard i's local discrepancy: its substream against
// its own sample. Per-shard and global verdicts answer different questions —
// a shard can be locally representative while the union sample is not (and
// vice versa); the shard experiments report both.
func (e *Engine) ShardVerdict(i int) setsystem.Discrepancy {
	sh := e.shards[i]
	if sh.sampler == nil {
		panic("shard: ShardVerdict requires samplers (routing-only engine)")
	}
	var d setsystem.Discrepancy
	e.withSampleSynced(sh, func() { d = sh.acc.Max() })
	return d
}

// withSampleSynced runs fn with sh.acc's sample side guaranteed to match the
// sampler. Delta-reporting samplers (all in-repo ones) are always in sync;
// for foreign samplers the sample histogram is rebuilt from View around fn.
func (e *Engine) withSampleSynced(sh *shardState, fn func()) {
	if sh.deltas != nil {
		fn()
		return
	}
	view := sh.sampler.View()
	for _, v := range view {
		sh.acc.AddSample(v)
	}
	fn()
	for _, v := range view {
		sh.acc.RemoveSample(v)
	}
}

// SampleView returns the union of the per-shard samples, concatenated in
// shard order into a buffer reused across calls: this is the coordinator's
// view of σ_i for the sharded game's Observation. Callers must not mutate or
// retain it across engine operations.
func (e *Engine) SampleView() []int64 {
	e.unionBuf = e.unionBuf[:0]
	for _, sh := range e.shards {
		if sh.sampler != nil {
			e.unionBuf = append(e.unionBuf, sh.sampler.View()...)
		}
	}
	return e.unionBuf
}

// Sample returns a copy of the union of the per-shard samples, in shard
// order.
func (e *Engine) Sample() []int64 {
	return append([]int64(nil), e.SampleView()...)
}

// SampleLen returns the union sample size.
func (e *Engine) SampleLen() int {
	n := 0
	for _, sh := range e.shards {
		if sh.sampler != nil {
			n += sh.sampler.Len()
		}
	}
	return n
}

// ShardSampler returns shard i's sampler (nil on a routing-only engine).
func (e *Engine) ShardSampler(i int) game.Sampler { return e.shards[i].sampler }

// ShardRounds returns the length of shard i's substream.
func (e *Engine) ShardRounds(i int) int { return e.shards[i].rounds }

// Stream returns the full routed stream. It panics unless the engine was
// built with RecordStreams.
func (e *Engine) Stream() []int64 {
	if !e.cfg.RecordStreams {
		panic("shard: Stream requires RecordStreams")
	}
	return e.stream
}

// Substream returns shard i's raw substream. It panics unless the engine
// was built with RecordStreams.
func (e *Engine) Substream(i int) []int64 {
	if !e.cfg.RecordStreams {
		panic("shard: Substream requires RecordStreams")
	}
	return e.shards[i].stream
}

// GlobalSample draws a uniform without-replacement sample of size k of the
// union stream from the per-shard samples alone, by population-weighted
// pairwise merging (sampler.MergeSamples, the [CTW16]/[CMYZ12] coordinator
// primitive). Randomness comes from r, so coordinator queries never perturb
// the shards' sampling streams. If the shards cannot supply k elements the
// result is clamped.
func (e *Engine) GlobalSample(k int, r *rng.RNG) []int64 {
	if e.cfg.NewSampler == nil {
		panic("shard: GlobalSample requires samplers (routing-only engine)")
	}
	views := make([][]int64, len(e.shards))
	pops := make([]int, len(e.shards))
	for i, sh := range e.shards {
		views[i] = sh.sampler.View()
		pops[i] = sh.rounds
	}
	return MergeGlobalSample(views, pops, k, r)
}

// MergeGlobalSample is the coordinator fan-in step of GlobalSample over
// explicit per-shard (sample view, substream length) pairs: a uniform
// without-replacement size-k sample of the union stream, clamped to the
// available elements. The serving runtime calls it on copies taken behind
// its read barriers, so the merge itself runs outside any shard lock. The
// first view is consumed as the running merge's seed and must be mutable
// (pass a copy of a live sampler view).
func MergeGlobalSample(views [][]int64, pops []int, k int, r *rng.RNG) []int64 {
	merged := append([]int64(nil), views[0]...)
	pop := pops[0]
	for i := 1; i < len(views); i++ {
		// Keep the running merge as large as its sources allow so later
		// merges retain enough represented mass.
		want := len(merged) + len(views[i])
		merged = sampler.MergeSamples(merged, pop, views[i], pops[i], want, r)
		pop += pops[i]
	}
	if k > len(merged) {
		k = len(merged)
	}
	r.Shuffle(len(merged), func(i, j int) { merged[i], merged[j] = merged[j], merged[i] })
	return merged[:k]
}
