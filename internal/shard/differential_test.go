package shard

import (
	"fmt"
	"reflect"
	"testing"

	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

// systemsUnder returns all four set systems over [1, u].
func systemsUnder(u int64) []setsystem.SetSystem {
	return []setsystem.SetSystem{
		setsystem.NewPrefixes(u),
		setsystem.NewIntervals(u),
		setsystem.NewSingletons(u),
		setsystem.NewSuffixes(u),
	}
}

// TestGlobalVerdictMatchesOneShotMaxDiscrepancy is the differential test of
// the mergeable-verdict path: for every set system, routing mode, shard
// count and worker count, the engine's merged global verdict must equal —
// bit for bit, error AND witness — the one-shot MaxDiscrepancy on the
// concatenated stream against the union of the per-shard samples.
func TestGlobalVerdictMatchesOneShotMaxDiscrepancy(t *testing.T) {
	const universe = 512
	const n = 3000
	for _, sys := range systemsUnder(universe) {
		for _, router := range Routers() {
			for _, shards := range []int{1, 2, 3, 5, 8} {
				for _, workers := range []int{1, 0, 7} {
					name := fmt.Sprintf("%s/%s/S=%d/workers=%d", sys.Name(), router.Name(), shards, workers)
					t.Run(name, func(t *testing.T) {
						root := rng.New(99)
						eng := New(Config{
							Shards: shards,
							Router: router,
							System: sys,
							NewSampler: func(int) game.Sampler {
								return sampler.NewReservoir[int64](40)
							},
							Workers:       workers,
							RecordStreams: true,
						}, root)
						gen := rng.New(7)
						stream := make([]int64, n)
						for i := range stream {
							stream[i] = 1 + gen.Int63n(universe)
						}
						// Mix bulk ingest, odd chunk sizes, and adaptive
						// single offers; check the verdict at several
						// prefixes, not just the end.
						checkAt := map[int]bool{1: true, 37: true, 1024: true, n: true}
						played := 0
						for _, step := range []int{1, 36, 400, 587, n} {
							for played < step {
								j := min(played+211, step)
								eng.Ingest(stream[played:j])
								played = j
							}
							if played < n {
								eng.Offer(stream[played])
								played++
							}
							if checkAt[played] {
								compareVerdict(t, sys, eng)
							}
						}
						for played < n {
							eng.Ingest(stream[played:min(played+997, n)])
							played = min(played+997, n)
						}
						compareVerdict(t, sys, eng)
					})
				}
			}
		}
	}
}

func compareVerdict(t *testing.T, sys setsystem.SetSystem, eng *Engine) {
	t.Helper()
	got := eng.Verdict()
	want := sys.MaxDiscrepancy(eng.Stream(), eng.Sample())
	if got != want {
		t.Fatalf("merged verdict %+v differs from one-shot %+v at round %d", got, want, eng.Rounds())
	}
}

// TestEngineByteIdenticalAcrossWorkerCounts runs the same seeded game on
// worker pools of different sizes and requires identical samples, verdicts,
// and substreams: shard ingest parallelism must never leak into results.
func TestEngineByteIdenticalAcrossWorkerCounts(t *testing.T) {
	const universe = 1 << 20
	sys := setsystem.NewIntervals(universe)
	run := func(workers int) ([]int64, [][]int64, setsystem.Discrepancy) {
		eng := New(Config{
			Shards: 6,
			Router: Uniform{},
			System: sys,
			NewSampler: func(i int) game.Sampler {
				if i%2 == 0 {
					return sampler.NewReservoir[int64](25)
				}
				return sampler.NewBernoulli[int64](0.01)
			},
			Workers:       workers,
			RecordStreams: true,
		}, rng.New(5))
		gen := rng.New(11)
		for i := 0; i < 40; i++ {
			xs := make([]int64, 500)
			for j := range xs {
				xs[j] = 1 + gen.Int63n(universe)
			}
			eng.Ingest(xs)
		}
		subs := make([][]int64, eng.NumShards())
		for i := range subs {
			subs[i] = append([]int64(nil), eng.Substream(i)...)
		}
		return eng.Sample(), subs, eng.Verdict()
	}
	baseSample, baseSubs, baseVerdict := run(1)
	for _, workers := range []int{0, 3, 16} {
		s, subs, v := run(workers)
		if !reflect.DeepEqual(s, baseSample) {
			t.Fatalf("workers=%d: sample differs from serial", workers)
		}
		if !reflect.DeepEqual(subs, baseSubs) {
			t.Fatalf("workers=%d: substreams differ from serial", workers)
		}
		if v != baseVerdict {
			t.Fatalf("workers=%d: verdict %+v differs from serial %+v", workers, v, baseVerdict)
		}
	}
}

// TestEngineChunkingInvariance ingests the same stream in wildly different
// batch slicings and requires identical end states: routing and the shard
// samplers' batch paths depend only on element order, never on batch
// boundaries.
func TestEngineChunkingInvariance(t *testing.T) {
	const universe = 4096
	sys := setsystem.NewPrefixes(universe)
	stream := make([]int64, 5000)
	gen := rng.New(3)
	for i := range stream {
		stream[i] = 1 + gen.Int63n(universe)
	}
	run := func(chunks []int) ([]int64, setsystem.Discrepancy) {
		eng := New(Config{
			Shards: 4,
			Router: RoundRobin{},
			System: sys,
			NewSampler: func(int) game.Sampler {
				return sampler.NewReservoir[int64](30)
			},
			Workers: 1,
		}, rng.New(21))
		played := 0
		ci := 0
		for played < len(stream) {
			c := chunks[ci%len(chunks)]
			ci++
			j := min(played+c, len(stream))
			if c == 1 {
				eng.Offer(stream[played])
				j = played + 1
			} else {
				eng.Ingest(stream[played:j])
			}
			played = j
		}
		return eng.Sample(), eng.Verdict()
	}
	baseSample, baseVerdict := run([]int{len(stream)})
	for _, chunks := range [][]int{{1}, {7}, {1, 997, 3}, {211, 1, 1, 4096}} {
		s, v := run(chunks)
		if !reflect.DeepEqual(s, baseSample) {
			t.Fatalf("chunks %v: sample differs from one-shot ingest", chunks)
		}
		if v != baseVerdict {
			t.Fatalf("chunks %v: verdict %+v differs from one-shot %+v", chunks, v, baseVerdict)
		}
	}
}
