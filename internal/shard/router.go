package shard

import "robustsample/internal/rng"

// Router decides which shard receives each element of the routed stream.
// Implementations must be deterministic given their inputs: randomized
// routers draw only from the RNG the engine passes (the coordinator's
// routing stream), deterministic routers ignore it. Routing always happens
// serially in element order on the coordinator, so router state needs no
// synchronization.
type Router interface {
	// Name identifies the routing mode in experiment tables.
	Name() string
	// Route returns the destination shard in [0, shards) for element x
	// submitted in the given 1-based round.
	Route(x int64, round int, shards int, r *rng.RNG) int
	// Reset prepares the router for a fresh stream.
	Reset()
}

// Uniform routes each element to an independently uniform shard — the
// load-balancing model of the paper's Section 1.2 distributed-database
// illustration, where each shard's substream is a Bernoulli(1/S) sample of
// the full stream.
type Uniform struct{}

// Name implements Router.
func (Uniform) Name() string { return "uniform" }

// Route implements Router.
func (Uniform) Route(_ int64, _ int, shards int, r *rng.RNG) int { return r.Intn(shards) }

// Reset implements Router.
func (Uniform) Reset() {}

// HashByValue routes deterministically by a multiplicative hash of the
// element value, so equal values always land on the same shard (the
// partitioning used by sharded aggregation systems). An adaptive client that
// knows the hash can steer traffic to one shard, which is exactly the
// scenario the targeted-attack experiments probe.
type HashByValue struct{}

// Name implements Router.
func (HashByValue) Name() string { return "hash" }

// Route implements Router.
func (HashByValue) Route(x int64, _ int, shards int, _ *rng.RNG) int {
	// SplitMix64: full avalanche, so consecutive values spread uniformly
	// across shards.
	return int(rng.Mix64(uint64(x)) % uint64(shards))
}

// Reset implements Router.
func (HashByValue) Reset() {}

// RoundRobin routes element i to shard (i-1) mod S — the deterministic
// even-load baseline. Unlike Uniform it leaks no randomness to the
// adversary, and unlike HashByValue it cannot be steered by value choice.
type RoundRobin struct{}

// Name implements Router.
func (RoundRobin) Name() string { return "round-robin" }

// Route implements Router.
func (RoundRobin) Route(_ int64, round int, shards int, _ *rng.RNG) int {
	return (round - 1) % shards
}

// Reset implements Router.
func (RoundRobin) Reset() {}

// Routers returns one instance of every routing mode, in table order.
func Routers() []Router {
	return []Router{Uniform{}, HashByValue{}, RoundRobin{}}
}
