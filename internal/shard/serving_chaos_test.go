package shard

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"robustsample/internal/faults"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/runtime"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

// chaosEngine builds the standard chaos-test engine: S shards, reservoir
// samplers (snapshot-codec capable), prefix system, given router.
func chaosEngine(S int, router Router, seed uint64) *Engine {
	return New(Config{
		Shards: S, Router: router, System: setsystem.NewPrefixes(servingUniverse),
		NewSampler: func(int) game.Sampler { return sampler.NewReservoir[int64](64) },
		Workers:    1,
	}, rng.New(seed))
}

// TestServingChaosDeterministicBitIdentical is the deterministic-mode half
// of the rejoin contract: with every shard crashed at least once (scheduled
// ordinals) plus probabilistic crashes, corrupt batches and delays, the
// recovered session's samples and verdict tables must be bit-identical to
// plain serial Ingest of the same stream — crash, restore, journal replay
// and retry must leave no trace. Runs under -race in CI's chaos smoke.
func TestServingChaosDeterministicBitIdentical(t *testing.T) {
	const (
		S = 4
		P = 2
		n = 6000
	)
	stream := servingStream(n, 1234)

	// Serial reference.
	serial := chaosEngine(S, RoundRobin{}, 7)
	serial.Ingest(stream)
	want := observe(serial.Verdict(), serial)

	for _, tc := range []struct {
		name string
		spec faults.Spec
	}{
		{"checkpoint-only", faults.Spec{}}, // supervision on, no faults injected
		{"crash-every-shard", faults.Spec{
			Seed:          9,
			CrashOrdinals: [][]uint64{{2, 5}, {1}, {3, 7}, {4}},
			CrashProb:     0.02,
			CorruptProb:   0.05,
			DelayProb:     0.05,
			DelayFor:      50 * time.Microsecond,
		}},
	} {
		eng := chaosEngine(S, RoundRobin{}, 7)
		var plan *faults.Plan
		scfg := ServeConfig{
			Producers: P, Deterministic: true,
			RingSize: 64, ChunkCap: 32, CheckpointEvery: 256,
		}
		injecting := tc.spec.CrashOrdinals != nil
		if injecting {
			plan = faults.MustPlan(tc.spec, S)
			scfg.Faults = plan
		}
		srv, err := eng.Serve(scfg)
		if err != nil {
			t.Fatalf("%s: Serve: %v", tc.name, err)
		}
		offerStriped(t, srv, stream, 0, n, P)
		srv.Flush()
		got := observe(srv.Verdict(), servingView{srv, S})
		h := srv.Health()
		srv.Close()

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: recovered trajectory diverged from serial Ingest\n got: %+v\nwant: %+v", tc.name, got, want)
		}
		if fin := observe(eng.Verdict(), eng); !reflect.DeepEqual(fin, want) {
			t.Fatalf("%s: post-Close engine state diverged", tc.name)
		}
		if h.LostRounds != 0 {
			t.Fatalf("%s: deterministic mode lost %d rounds, want 0 (journal replay)", tc.name, h.LostRounds)
		}
		if !h.Supervised {
			t.Fatalf("%s: Health reports unsupervised", tc.name)
		}
		if injecting {
			if crashes := plan.Count(faults.Crash); crashes < S {
				t.Fatalf("%s: only %d crashes injected, want >= %d (every shard at least once)", tc.name, crashes, S)
			}
			for i, sh := range h.Shards {
				if sh.Crashes < 1 {
					t.Fatalf("%s: shard %d never crashed (crash ordinals missed)", tc.name, i)
				}
				if sh.Restores != sh.Crashes {
					t.Fatalf("%s: shard %d: %d restores for %d crashes", tc.name, i, sh.Restores, sh.Crashes)
				}
				if sh.Status != Healthy {
					t.Fatalf("%s: shard %d still %v after recovery", tc.name, i, sh.Status)
				}
			}
			if h.Crashes == 0 || h.Restores != h.Crashes {
				t.Fatalf("%s: aggregate crash/restore counters inconsistent: %+v", tc.name, h)
			}
		}
		if h.Checkpoints < uint64(S) {
			t.Fatalf("%s: %d checkpoints, want at least the %d baselines", tc.name, h.Checkpoints, S)
		}
	}
}

// TestServingChaosLiveBoundedLoss is the live-mode half of the rejoin
// contract: crashes roll shards back to their latest checkpoint, and the
// round counters must reconcile exactly — offered == covered + lost — with
// the loss bounded by one checkpoint interval (plus one dropped chunk) per
// crash. Queries run concurrently throughout and must stay in range.
func TestServingChaosLiveBoundedLoss(t *testing.T) {
	const (
		S       = 3
		P       = 4
		perLane = 8000
		every   = 512
		chunk   = 48
	)
	eng := chaosEngine(S, Uniform{}, 21)
	plan := faults.MustPlan(faults.Spec{
		Seed:          31,
		CrashOrdinals: [][]uint64{{2, 40}, {3}, {5, 60}},
		CrashProb:     0.01,
		CorruptProb:   0.02,
	}, S)
	srv, err := eng.Serve(ServeConfig{
		Producers: P, RingSize: 256, ChunkCap: chunk,
		CheckpointEvery: every, Faults: plan, QueryWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		qr := rng.New(77)
		for {
			select {
			case <-stop:
				return
			default:
			}
			d, cov := srv.VerdictCovered()
			if d.Err < 0 || d.Err > 1 {
				t.Errorf("VerdictCovered out of range: %v", d)
				return
			}
			if cov.Included < 0 || cov.Included > S || cov.Covered > cov.Routed {
				t.Errorf("bad coverage: %+v", cov)
				return
			}
			if gs, _ := srv.GlobalSampleCovered(16, qr); len(gs) > 0 {
				for _, x := range gs {
					if x < 1 || x > servingUniverse {
						t.Errorf("GlobalSampleCovered out-of-universe %d", x)
						return
					}
				}
			}
			h := srv.Health()
			for _, sh := range h.Shards {
				if sh.Status != Healthy && sh.Status != Degraded {
					t.Errorf("invalid shard status %v", sh.Status)
					return
				}
			}
		}
	}()

	var pwg sync.WaitGroup
	pwg.Add(P)
	for lane := 0; lane < P; lane++ {
		go func(lane int) {
			defer pwg.Done()
			pr := srv.Producer(lane)
			xs := servingStream(perLane, uint64(9000+lane))
			for len(xs) > 0 {
				m := min(53, len(xs))
				if err := pr.OfferBatch(xs[:m]); err != nil {
					t.Errorf("lane %d: %v", lane, err)
					return
				}
				xs = xs[m:]
			}
		}(lane)
	}
	pwg.Wait()
	srv.Flush()
	close(stop)
	qwg.Wait()
	h := srv.Health()
	srv.Close()

	const offered = P * perLane
	covered := 0
	for i := 0; i < S; i++ {
		covered += eng.ShardRounds(i)
	}
	if got := covered + int(h.LostRounds); got != offered {
		t.Fatalf("conservation broken: covered %d + lost %d = %d, offered %d",
			covered, h.LostRounds, got, offered)
	}
	if eng.Rounds() != offered-int(h.LostRounds) {
		t.Fatalf("engine rounds %d, want offered - lost = %d", eng.Rounds(), offered-int(h.LostRounds))
	}
	for i, sh := range h.Shards {
		if sh.Crashes < 1 {
			t.Fatalf("shard %d never crashed", i)
		}
	}
	if bound := h.Crashes * uint64(every+chunk); h.LostRounds > bound {
		t.Fatalf("lost %d rounds over %d crashes, bound is %d (one checkpoint interval + one chunk per crash)",
			h.LostRounds, h.Crashes, bound)
	}
	// The drained engine keeps working serially.
	if d := eng.Verdict(); d.Err < 0 || d.Err > 1 {
		t.Fatalf("post-chaos Verdict out of range: %v", d)
	}
}

// TestServingChaosQueriesNeverBlock pins the degraded-read promise: with
// every consumer wedged in a long injected stall (holding its shard lock),
// VerdictCovered/SampleCovered return within their wait bound over the
// healthy subset, and Health answers lock-free — nothing blocks for the
// stall's duration.
//
//robust:nondet wall-clock soak deadlines and latency bounds; none reach sampler or verdict state
func TestServingChaosQueriesNeverBlock(t *testing.T) {
	const stall = 300 * time.Millisecond
	eng := chaosEngine(2, RoundRobin{}, 5)
	plan := faults.MustPlan(faults.Spec{
		Seed: 3, StallProb: 1, StallFor: stall, MaxPerShard: 3,
	}, 2)
	srv, err := eng.Serve(ServeConfig{
		Producers: 1, RingSize: 64, ChunkCap: 16,
		CheckpointEvery: 64, Faults: plan, QueryWait: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Offer from a background goroutine: the ring backs up behind the
	// stalled consumers, so the producer blocks while we query.
	done := make(chan error, 1)
	go func() { done <- srv.Producer(0).OfferBatch(servingStream(200, 42)) }()

	// Catch at least one consumer provably wedged mid-stall: the query
	// must return fast and report the wedged shard as skipped.
	sawStall := false
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		start := time.Now()
		_, cov := srv.VerdictCovered()
		if took := time.Since(start); took > stall/2 {
			t.Fatalf("VerdictCovered took %v during a %v stall — degraded read blocked", took, stall)
		}
		_ = srv.Health() // must never block (lock-free)
		if !cov.Complete() {
			sawStall = true
			if len(cov.Stalled)+cov.Included != cov.Shards {
				t.Fatalf("inconsistent coverage report: %+v", cov)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !sawStall {
		t.Fatal("never observed a stalled shard being skipped (injection did not wedge a consumer)")
	}
	start := time.Now()
	_, cov := srv.SampleCovered()
	if took := time.Since(start); took > stall/2 {
		t.Fatalf("SampleCovered took %v during the stall", took)
	}
	if cov.Covered > cov.Routed {
		t.Fatalf("coverage claims more rounds than routed: %+v", cov)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	srv.Flush() // stalls end; everything applies
	if _, cov := srv.VerdictCovered(); !cov.Complete() {
		t.Fatalf("post-flush coverage incomplete: %+v", cov)
	}
	srv.Close()
	if got := eng.Rounds(); got != 200 {
		t.Fatalf("post-Close rounds %d, want 200 (stalls lose nothing)", got)
	}
}

// TestServingChaosCloseCtxDeadline pins the serving-level drain deadline: a
// consumer wedged in a long stall cannot hang CloseCtx past its context,
// and the engine's counters are synced only once the drain really ends.
func TestServingChaosCloseCtxDeadline(t *testing.T) {
	eng := chaosEngine(1, RoundRobin{}, 5)
	plan := faults.MustPlan(faults.Spec{
		Seed: 3, StallProb: 1, StallFor: 500 * time.Millisecond, MaxPerShard: 1,
	}, 1)
	srv, err := eng.Serve(ServeConfig{
		Producers: 1, RingSize: 64, ChunkCap: 256,
		CheckpointEvery: 1024, Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Producer(0).OfferBatch(servingStream(128, 6)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := srv.CloseCtx(ctx); !errors.Is(err, runtime.ErrDrainTimeout) {
		t.Fatalf("CloseCtx during stall = %v, want ErrDrainTimeout", err)
	}
	srv.Close() // waits out the stall; the same drain completes
	if got := eng.Rounds(); got != 128 {
		t.Fatalf("post-drain rounds %d, want 128", got)
	}
	if err := srv.Producer(0).Offer(1); !errors.Is(err, runtime.ErrClosed) {
		t.Fatalf("Offer after Close = %v, want ErrClosed", err)
	}
}

// TestServingChaosHardCorruptDrops pins the bounded-loss path for
// unrecoverable chunks: a poison-pill batch that fails every retry is
// dropped after RetryLimit, its elements are counted as lost, and the
// session keeps serving.
func TestServingChaosHardCorruptDrops(t *testing.T) {
	const n = 512
	eng := chaosEngine(1, RoundRobin{}, 5)
	plan := faults.MustPlan(faults.Spec{
		Seed: 3, HardCorruptProb: 1, MaxPerShard: 1,
	}, 1)
	srv, err := eng.Serve(ServeConfig{
		Producers: 1, RingSize: 64, ChunkCap: 32,
		CheckpointEvery: 64, Faults: plan, RetryLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Producer(0).OfferBatch(servingStream(n, 8)); err != nil {
		t.Fatal(err)
	}
	srv.Flush() // must not hang on the dropped chunk
	h := srv.Health()
	srv.Close()
	if h.LostRounds == 0 || h.LostRounds > 32 {
		t.Fatalf("lost %d rounds, want 1..32 (exactly one dropped chunk)", h.LostRounds)
	}
	if h.Shards[0].Crashes != 3 {
		t.Fatalf("crashes = %d, want 3 (attempts 0..2 all poisoned)", h.Shards[0].Crashes)
	}
	if got, want := eng.Rounds(), n-int(h.LostRounds); got != want {
		t.Fatalf("rounds %d, want %d", got, want)
	}
	if plan.Count(faults.HardCorrupt) != 3 {
		t.Fatalf("hard-corrupt injections = %d, want 3", plan.Count(faults.HardCorrupt))
	}
}

// TestServeFaultPlanValidation pins Serve's supervision preconditions.
func TestServeFaultPlanValidation(t *testing.T) {
	eng := chaosEngine(2, RoundRobin{}, 5)
	if _, err := eng.Serve(ServeConfig{Faults: faults.MustPlan(faults.Spec{}, 3)}); err == nil {
		t.Fatal("Serve accepted a fault plan with the wrong shard count")
	}
	// Supervision needs a snapshot codec; a custom sampler type has none.
	engC := New(Config{
		Shards: 1, System: setsystem.NewPrefixes(servingUniverse),
		NewSampler: func(int) game.Sampler { return &noCodecSampler{sampler.NewReservoir[int64](8)} },
		Workers:    1,
	}, rng.New(1))
	if _, err := engC.Serve(ServeConfig{CheckpointEvery: 128}); err == nil {
		t.Fatal("Serve accepted supervision for an unsnapshottable sampler")
	}
	// Without supervision the same engine serves fine.
	if srv, err := engC.Serve(ServeConfig{}); err != nil {
		t.Fatalf("unsupervised Serve of codec-less engine: %v", err)
	} else {
		srv.Close()
	}
}

// noCodecSampler is a game.Sampler with no snapshot codec (the sampler
// package's AppendState does not know the type).
type noCodecSampler struct{ *sampler.Reservoir[int64] }
