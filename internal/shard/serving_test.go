package shard

import (
	"fmt"
	"reflect"
	"slices"
	"sync"
	"testing"

	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/snapshot"
)

const servingUniverse = int64(1 << 14)

// servingStream returns a deterministic pseudo-random stream over the test
// universe.
func servingStream(n int, seed uint64) []int64 {
	r := rng.New(seed)
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = 1 + r.Int63n(servingUniverse)
	}
	return xs
}

type servingSamplerCase struct {
	name string
	mk   func(int) game.Sampler
}

func servingSamplerCases(k int, p float64) []servingSamplerCase {
	return []servingSamplerCase{
		{"reservoir", func(int) game.Sampler { return sampler.NewReservoir[int64](k) }},
		{"reservoirL", func(int) game.Sampler { return sampler.NewReservoirL[int64](k) }},
		{"bernoulli", func(int) game.Sampler { return sampler.NewBernoulli[int64](p) }},
	}
}

// checkpointState is everything a checkpoint query can observe: the global
// verdict, the per-shard verdict table, the union sample, and per-shard
// substream lengths.
type checkpointState struct {
	Global      setsystem.Discrepancy
	PerShard    []setsystem.Discrepancy
	Sample      []int64
	ShardRounds []int
	Rounds      int
}

// TestServingDeterministicMatchesSerial is the differential proof of the
// deterministic pipeline mode: a stream striped across P producer lanes
// (lane p takes elements p, p+P, ...) must yield byte-identical samples AND
// verdict tables to serial Ingest of the original stream — at every
// checkpoint, for every sampler type, router, shard count and producer
// count.
func TestServingDeterministicMatchesSerial(t *testing.T) {
	const n = 4096
	checkpoints := []int{1024, 2048, 4096} // phase lengths divisible by every P below
	stream := servingStream(n, 99)
	sys := setsystem.NewPrefixes(servingUniverse)

	for _, sc := range servingSamplerCases(64, 0.02) {
		for _, router := range Routers() {
			for _, S := range []int{1, 3} {
				cfg := Config{Shards: S, Router: router, System: sys, NewSampler: sc.mk, Workers: 1}

				// Serial reference trajectory.
				serial := New(cfg, rng.New(7))
				var want []checkpointState
				prev := 0
				for _, cp := range checkpoints {
					serial.Ingest(stream[prev:cp])
					prev = cp
					want = append(want, observe(serial.Verdict(), serial))
				}

				for _, P := range []int{1, 2, 4} {
					name := fmt.Sprintf("%s/%s/S=%d/P=%d", sc.name, router.Name(), S, P)
					eng := New(cfg, rng.New(7))
					srv, err := eng.Serve(ServeConfig{Producers: P, Deterministic: true, RingSize: 64, ChunkCap: 48})
					if err != nil {
						t.Fatalf("%s: Serve: %v", name, err)
					}
					var got []checkpointState
					prev = 0
					for _, cp := range checkpoints {
						offerStriped(t, srv, stream, prev, cp, P)
						prev = cp
						srv.Flush()
						got = append(got, observe(srv.Verdict(), servingView{srv, S}))
					}
					srv.Close()
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: pipeline trajectory diverged from serial Ingest\n got: %+v\nwant: %+v", name, got, want)
					}
					// After Close the engine is serially usable and must
					// hold the identical final state.
					if fin := observe(eng.Verdict(), eng); !reflect.DeepEqual(fin, want[len(want)-1]) {
						t.Fatalf("%s: post-Close engine state diverged\n got: %+v\nwant: %+v", name, fin, want[len(want)-1])
					}
				}
			}
		}
	}
}

// offerStriped offers stream[from:to) across the serving's P lanes with
// lane = globalIndex mod P, one goroutine per lane.
func offerStriped(t *testing.T, srv *Serving, stream []int64, from, to, P int) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(P)
	for lane := 0; lane < P; lane++ {
		go func(lane int) {
			defer wg.Done()
			pr := srv.Producer(lane)
			for g := from; g < to; g++ {
				if g%P != lane {
					continue
				}
				if err := pr.Offer(stream[g]); err != nil {
					t.Errorf("lane %d: Offer: %v", lane, err)
					return
				}
			}
		}(lane)
	}
	wg.Wait()
}

// engineView unifies the serial engine and the serving handle for
// trajectory capture.
type engineView interface {
	ShardVerdict(i int) setsystem.Discrepancy
	Sample() []int64
	ShardRounds(i int) int
	Rounds() int
}

type servingView struct {
	s *Serving
	S int
}

func (v servingView) ShardVerdict(i int) setsystem.Discrepancy { return v.s.ShardVerdict(i) }
func (v servingView) Sample() []int64                          { return v.s.Sample() }
func (v servingView) ShardRounds(i int) int                    { return v.s.ShardRounds(i) }
func (v servingView) Rounds() int                              { return v.s.Rounds() }

func numShards(v engineView) int {
	if e, ok := v.(*Engine); ok {
		return e.NumShards()
	}
	return v.(servingView).S
}

func observe(global setsystem.Discrepancy, v engineView) checkpointState {
	st := checkpointState{Global: global, Sample: v.Sample(), Rounds: v.Rounds()}
	for i := 0; i < numShards(v); i++ {
		st.PerShard = append(st.PerShard, v.ShardVerdict(i))
		st.ShardRounds = append(st.ShardRounds, v.ShardRounds(i))
	}
	return st
}

// TestServingLiveStress runs N producer goroutines against M live query
// goroutines in live mode and checks conservation (no element lost or
// duplicated: round counters reconcile after Flush) and verdict validity
// under load.
func TestServingLiveStress(t *testing.T) {
	const (
		P       = 4
		perLane = 10000
		S       = 3
		queries = 2
	)
	sys := setsystem.NewPrefixes(servingUniverse)
	for _, router := range Routers() {
		eng := New(Config{
			Shards: S, Router: router, System: sys,
			NewSampler: func(int) game.Sampler { return sampler.NewReservoir[int64](128) },
			Workers:    1,
		}, rng.New(11))
		srv, err := eng.Serve(ServeConfig{Producers: P, RingSize: 256})
		if err != nil {
			t.Fatalf("%s: Serve: %v", router.Name(), err)
		}

		var wg sync.WaitGroup
		stop := make(chan struct{})
		queryRNG := make([]*rng.RNG, queries)
		for q := 0; q < queries; q++ {
			queryRNG[q] = rng.New(uint64(100 + q))
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					d := srv.Verdict()
					if d.Err < 0 || d.Err > 1 {
						t.Errorf("live Verdict out of range: %v", d)
						return
					}
					for i := 0; i < S; i++ {
						sd := srv.ShardVerdict(i)
						if sd.Err < 0 || sd.Err > 1 {
							t.Errorf("live ShardVerdict(%d) out of range: %v", i, sd)
							return
						}
					}
					if gs := srv.GlobalSample(32, queryRNG[q]); len(gs) > 0 {
						for _, x := range gs {
							if x < 1 || x > servingUniverse {
								t.Errorf("GlobalSample returned out-of-universe %d", x)
								return
							}
						}
					}
					_ = srv.Sample()
					_ = srv.SampleLen()
				}
			}(q)
		}

		var pwg sync.WaitGroup
		pwg.Add(P)
		for lane := 0; lane < P; lane++ {
			go func(lane int) {
				defer pwg.Done()
				pr := srv.Producer(lane)
				xs := servingStream(perLane, uint64(1000+lane))
				for len(xs) > 0 {
					m := min(37, len(xs))
					if err := pr.OfferBatch(xs[:m]); err != nil {
						t.Errorf("lane %d: %v", lane, err)
						return
					}
					xs = xs[m:]
				}
			}(lane)
		}
		pwg.Wait()
		ep := srv.Flush()
		close(stop)
		wg.Wait()

		if ep.Applied != P*perLane {
			t.Errorf("%s: flush applied %d, want %d", router.Name(), ep.Applied, P*perLane)
		}
		totalShardRounds := 0
		for i := 0; i < S; i++ {
			totalShardRounds += srv.ShardRounds(i)
		}
		if totalShardRounds != P*perLane {
			t.Errorf("%s: shard rounds sum to %d, want %d (lost or duplicated elements)",
				router.Name(), totalShardRounds, P*perLane)
		}
		if got := srv.Rounds(); got != P*perLane {
			t.Errorf("%s: Rounds = %d, want %d", router.Name(), got, P*perLane)
		}
		srv.Close()
		if eng.Rounds() != P*perLane {
			t.Errorf("%s: post-Close engine Rounds = %d, want %d", router.Name(), eng.Rounds(), P*perLane)
		}
		// The drained engine must answer serial queries and keep ingesting.
		d := eng.Verdict()
		if d.Err < 0 || d.Err > 1 {
			t.Errorf("%s: post-Close Verdict out of range: %v", router.Name(), d)
		}
		eng.Ingest(servingStream(100, 5))
		if eng.Rounds() != P*perLane+100 {
			t.Errorf("%s: post-Close serial ingest broken: rounds %d", router.Name(), eng.Rounds())
		}
	}
}

// TestServingSnapshotRoundTrip checkpoints a quiesced deterministic serving
// session and proves the three snapshot laws still hold through the
// concurrent path: a restored engine continues bit-identically to the one
// that kept running.
func TestServingSnapshotRoundTrip(t *testing.T) {
	sys := setsystem.NewPrefixes(servingUniverse)
	cfg := Config{
		Shards: 3, Router: Uniform{}, System: sys,
		NewSampler: func(int) game.Sampler { return sampler.NewReservoir[int64](32) },
		Workers:    1,
	}
	stream := servingStream(3000, 21)

	eng := New(cfg, rng.New(5))
	srv, err := eng.Serve(ServeConfig{Producers: 2, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	offerStriped(t, srv, stream, 0, 2000, 2)
	srv.Flush()
	state, _, err := srv.AppendState(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The running session continues with the rest of the stream.
	offerStriped(t, srv, stream, 2000, 3000, 2)
	srv.Close()

	// A restored twin replays the same tail serially; deterministic mode
	// striping reconstructs the identical global order, so the states must
	// match bit for bit.
	twin := New(cfg, rng.New(999)) // seed is irrelevant; LoadState overwrites every stream
	if err := LoadState(snapshot.NewReader(state), twin); err != nil {
		t.Fatal(err)
	}
	twin.Ingest(stream[2000:])
	if got, want := twin.Verdict(), eng.Verdict(); got != want {
		t.Fatalf("restored engine verdict %v, original %v", got, want)
	}
	if got, want := twin.Sample(), eng.Sample(); !slices.Equal(got, want) {
		t.Fatalf("restored engine sample diverged")
	}
}

// TestMergeFromEngine checks the engine-level [CTW16] fan-in: after merging
// engine B into engine A, A's merged verdict must equal a one-shot
// MaxDiscrepancy of the concatenated streams against A's union sample, and
// the round accounting must cover both streams.
func TestMergeFromEngine(t *testing.T) {
	sys := setsystem.NewPrefixes(servingUniverse)
	mkRes := func(int) game.Sampler { return sampler.NewReservoir[int64](48) }
	mkBer := func(int) game.Sampler { return sampler.NewBernoulli[int64](0.05) }
	for _, tc := range []struct {
		name string
		mk   func(int) game.Sampler
	}{{"reservoir", mkRes}, {"bernoulli", mkBer}} {
		cfg := Config{Shards: 2, Router: HashByValue{}, System: sys, NewSampler: tc.mk, Workers: 1}
		a := New(cfg, rng.New(1))
		b := New(cfg, rng.New(2))
		sa := servingStream(2500, 31)
		sb := servingStream(1800, 32)
		a.Ingest(sa)
		b.Ingest(sb)
		if err := a.MergeFromEngine(b); err != nil {
			t.Fatalf("%s: MergeFromEngine: %v", tc.name, err)
		}
		if got, want := a.Rounds(), len(sa)+len(sb); got != want {
			t.Errorf("%s: merged rounds %d, want %d", tc.name, got, want)
		}
		union := append(append([]int64(nil), sa...), sb...)
		want := sys.MaxDiscrepancy(union, a.Sample())
		if got := a.Verdict(); got != want {
			t.Errorf("%s: merged verdict %v, want one-shot %v", tc.name, got, want)
		}
	}

	// Algorithm L cannot merge.
	cfgL := Config{Shards: 2, Router: HashByValue{}, System: sys,
		NewSampler: func(int) game.Sampler { return sampler.NewReservoirL[int64](16) }, Workers: 1}
	a := New(cfgL, rng.New(1))
	b := New(cfgL, rng.New(2))
	a.Ingest(servingStream(200, 41))
	b.Ingest(servingStream(200, 42))
	if err := a.MergeFromEngine(b); err == nil {
		t.Error("Algorithm L engines merged; want ErrMergeSampler")
	}

	// Mismatched shard structure.
	c := New(Config{Shards: 3, Router: HashByValue{}, System: sys, NewSampler: mkRes, Workers: 1}, rng.New(3))
	d := New(Config{Shards: 2, Router: HashByValue{}, System: sys, NewSampler: mkRes, Workers: 1}, rng.New(4))
	if err := c.MergeFromEngine(d); err == nil {
		t.Error("engines with different shard counts merged; want ErrMergeShape")
	}
}

// TestServingRejectsRecordedStreams pins the Serve precondition.
func TestServingRejectsRecordedStreams(t *testing.T) {
	sys := setsystem.NewPrefixes(servingUniverse)
	e := New(Config{
		Shards: 1, System: sys, RecordStreams: true,
		NewSampler: func(int) game.Sampler { return sampler.NewReservoir[int64](8) },
	}, rng.New(1))
	if _, err := e.Serve(ServeConfig{}); err == nil {
		t.Fatal("Serve accepted a RecordStreams engine")
	}
}
