// Engine-to-engine merge: the [CTW16] coordinator fan-in lifted to whole
// sharded engines, so two engines that sampled disjoint streams (e.g. two
// processes, later fanned in) collapse into one whose verdicts and samples
// describe the union traffic. Shard i of the donor merges into shard i of
// the receiver: samplers merge by their type's lossless law (uniform
// population-weighted interleave for reservoirs, union for Bernoulli) and
// accumulators merge histograms via setsystem.MergeFrom, with the sample
// side re-pointed at the merged sample so subsequent verdicts stay exact.
package shard

import (
	"errors"
	"fmt"

	"robustsample/internal/sampler"
)

// Merge error sentinels, surfaced (wrapped) by the public shard package.
var (
	// ErrMergeShape reports engines whose shard structure cannot merge.
	ErrMergeShape = errors.New("shard: engines have incompatible shard structure")
	// ErrMergeSampler reports a per-shard sampler pair with no lossless
	// merge law (mismatched types, or Algorithm L's skip state).
	ErrMergeSampler = errors.New("shard: shard samplers do not support merging")
	// ErrMergeUnderfull reports a reservoir merge whose two samples cannot
	// supply the merged sample size (the donor was undersized for its
	// stream, so a lossless merge law does not exist).
	ErrMergeUnderfull = errors.New("shard: shard samples cannot supply the merged reservoir")
)

// MergeFromEngine folds other's complete state into e, shard by shard:
// afterwards e's union sample and merged verdicts describe the
// concatenation of both engines' routed streams. other is not modified.
// Randomness for the reservoir interleave comes from the receiver's
// per-shard RNG streams, so merging is deterministic given the receiver's
// seed. On error the receiver may be partially merged (the public surface
// validates configurations up front, making the checks here invariants).
//
// Engines recording streams cannot merge (there is no meaningful global
// order for the union), and both engines must carry samplers.
func (e *Engine) MergeFromEngine(other *Engine) error {
	if len(e.shards) != len(other.shards) {
		return fmt.Errorf("%w: %d vs %d shards", ErrMergeShape, len(e.shards), len(other.shards))
	}
	if e.cfg.RecordStreams || other.cfg.RecordStreams {
		return fmt.Errorf("%w: stream-recording engines cannot merge", ErrMergeShape)
	}
	if e.cfg.NewSampler == nil || other.cfg.NewSampler == nil {
		return fmt.Errorf("%w: routing-only engines cannot merge", ErrMergeShape)
	}
	for i, sh := range e.shards {
		if err := e.mergeShard(sh, other.shards[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	e.rounds += other.rounds
	return nil
}

// mergeShard merges one donor shard into its receiver: sampler by the
// type's lossless law, accumulator by histogram fold plus a sample-side
// rewrite from (receiver sample + donor sample) to the merged sample.
func (e *Engine) mergeShard(sh, od *shardState) error {
	switch a := sh.sampler.(type) {
	case *sampler.Reservoir[int64]:
		b, ok := od.sampler.(*sampler.Reservoir[int64])
		if !ok {
			return fmt.Errorf("%w: %T vs %T", ErrMergeSampler, sh.sampler, od.sampler)
		}
		rounds := a.Rounds() + b.Rounds()
		k := min(a.K, rounds)
		if a.Len()+b.Len() < k {
			return fmt.Errorf("%w: %d+%d elements for size %d", ErrMergeUnderfull, a.Len(), b.Len(), k)
		}
		oldView := append([]int64(nil), a.View()...)
		merged := sampler.MergeSamples(oldView, a.Rounds(), b.View(), b.Rounds(), k, sh.rng)
		// Histogram fold: stream side becomes the union; the sample side
		// (now receiver sample + donor sample) is rewritten to the merged
		// sample.
		sh.acc.MergeFrom(od.acc)
		for _, v := range oldView {
			sh.acc.RemoveSample(v)
		}
		for _, v := range b.View() {
			sh.acc.RemoveSample(v)
		}
		for _, v := range merged {
			sh.acc.AddSample(v)
		}
		a.SetMergedState(merged, rounds, a.TotalAdmitted()+b.TotalAdmitted())
	case *sampler.Bernoulli[int64]:
		b, ok := od.sampler.(*sampler.Bernoulli[int64])
		if !ok {
			return fmt.Errorf("%w: %T vs %T", ErrMergeSampler, sh.sampler, od.sampler)
		}
		if a.P != b.P {
			return fmt.Errorf("%w: Bernoulli rates %v vs %v", ErrMergeSampler, a.P, b.P)
		}
		// The union of two Bernoulli(p) samples over disjoint streams is a
		// Bernoulli(p) sample of the concatenation, and the histogram fold
		// already produces exactly that union on the sample side.
		merged := append(append([]int64(nil), a.View()...), b.View()...)
		sh.acc.MergeFrom(od.acc)
		a.SetMergedState(merged, a.Rounds()+b.Rounds())
	default:
		return fmt.Errorf("%w: %T", ErrMergeSampler, sh.sampler)
	}
	sh.rounds += od.rounds
	return nil
}
