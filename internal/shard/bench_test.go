package shard

import (
	"fmt"
	"math/bits"
	"testing"

	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

// BenchmarkMergedVerdict measures one global checkpoint on a loaded engine:
// Reset + MergeFrom over every shard's accumulator + Max. Cost is
// O(S * distinct values), independent of how much raw traffic the shards
// absorbed; BENCH.md compares it against re-ingesting the concatenated
// stream.
func BenchmarkMergedVerdict(b *testing.B) {
	const n = 1 << 18
	for _, universe := range []int64{1 << 20, 1 << 12} {
		for _, S := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("U=2^%d/S=%d", bits.Len64(uint64(universe))-1, S), func(b *testing.B) {
				eng := New(Config{
					Shards: S,
					Router: Uniform{},
					System: setsystem.NewPrefixes(universe),
					NewSampler: func(int) game.Sampler {
						return sampler.NewReservoir[int64](2048)
					},
					Workers: 1,
				}, rng.New(1))
				gen := rng.New(2)
				stream := make([]int64, n)
				for i := range stream {
					stream[i] = 1 + gen.Int63n(universe)
				}
				eng.Ingest(stream)
				eng.Verdict() // warm the scratch engine's tables
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if eng.Verdict().Err < 0 {
						b.Fatal("impossible verdict")
					}
				}
			})
		}
	}
}

// BenchmarkVerdictByReingest is the baseline MergedVerdict replaces: an
// accumulator rebuilt from the concatenated raw stream and union sample at
// every checkpoint.
func BenchmarkVerdictByReingest(b *testing.B) {
	const n = 1 << 18
	for _, universe := range []int64{1 << 20, 1 << 12} {
		b.Run(fmt.Sprintf("U=2^%d", bits.Len64(uint64(universe))-1), func(b *testing.B) {
			benchReingest(b, n, universe)
		})
	}
}

func benchReingest(b *testing.B, n int, universe int64) {
	sys := setsystem.NewPrefixes(universe)
	eng := New(Config{
		Shards: 4,
		Router: Uniform{},
		System: sys,
		NewSampler: func(int) game.Sampler {
			return sampler.NewReservoir[int64](2048)
		},
		Workers:       1,
		RecordStreams: true,
	}, rng.New(1))
	gen := rng.New(2)
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = 1 + gen.Int63n(universe)
	}
	eng.Ingest(stream)
	acc := sys.NewAccumulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		acc.AddStreamBatch(eng.Stream())
		for _, v := range eng.SampleView() {
			acc.AddSample(v)
		}
		if acc.Max().Err < 0 {
			b.Fatal("impossible verdict")
		}
	}
}
