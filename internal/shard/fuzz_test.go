package shard

import (
	"bytes"
	"testing"

	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/snapshot"
)

func fuzzEngine() *Engine {
	// Small universe and sample so each fuzz exec (two restores, two
	// ingests, two verdicts) stays cheap enough for real throughput.
	e := New(Config{
		Shards:     3,
		Router:     Uniform{},
		System:     setsystem.NewIntervals(1 << 8),
		NewSampler: func(int) game.Sampler { return sampler.NewReservoir[int64](8) },
		Workers:    1,
	}, rng.New(5))
	e.StartGame(rng.New(5))
	return e
}

// FuzzEngineSnapshotRestore fuzzes LoadState with arbitrary bytes — seeded
// with valid, truncated and bit-flipped engine snapshots — and checks the
// codec laws on every accepted input: nothing panics, re-snapshot is
// bit-identical, and two restores of the same bytes evolve identically
// under further routed traffic. This is the PR 8 fuzz-crasher class
// (malformed frames reaching state construction) kept under standing fuzz
// pressure at the engine layer.
func FuzzEngineSnapshotRestore(f *testing.F) {
	seed := fuzzEngine()
	src := rng.New(31)
	stream := make([]int64, 600)
	for i := range stream {
		stream[i] = 1 + src.Int63n(1<<8)
	}
	seed.Ingest(stream)
	valid, err := AppendState(nil, seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	mut := bytes.Clone(valid)
	mut[len(mut)/3] ^= 0x41 // corrupted
	f.Add(mut)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		e := fuzzEngine()
		if err := LoadState(snapshot.NewReader(data), e); err != nil {
			return // rejected: fine, as long as nothing panicked
		}

		// Law 1: re-snapshot bit-identity.
		s1, err := AppendState(nil, e)
		if err != nil {
			t.Fatalf("AppendState after accepted restore: %v", err)
		}
		g := fuzzEngine()
		if err := LoadState(snapshot.NewReader(s1), g); err != nil {
			t.Fatalf("Restore of re-snapshot: %v", err)
		}
		s2, err := AppendState(nil, g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1, s2) {
			t.Fatal("re-snapshot is not bit-identical")
		}

		// Law 2: continuation determinism — both restores must evolve
		// identically on the same suffix and agree on the verdict.
		suffix := make([]int64, 200)
		sfx := rng.New(77)
		for i := range suffix {
			suffix[i] = 1 + sfx.Int63n(1<<8)
		}
		e.Ingest(suffix)
		g.Ingest(suffix)
		ve, vg := e.Verdict(), g.Verdict()
		if ve != vg {
			t.Fatalf("restored engines diverge: %+v vs %+v", ve, vg)
		}
	})
}
