package shard

import (
	"bytes"
	"slices"
	"testing"

	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/snapshot"
)

func snapTestConfig(newSampler func(int) game.Sampler) Config {
	return Config{
		Shards:     4,
		Router:     Uniform{},
		System:     setsystem.NewIntervals(1 << 16),
		NewSampler: newSampler,
		Workers:    1,
	}
}

// TestEngineSnapshotRoundTrip checks the snapshot laws on the full engine:
// re-snapshot bit-identity, verdict bit-identity, and continuation
// bit-identity under further routed traffic.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	samplers := []struct {
		name string
		mk   func(int) game.Sampler
	}{
		{"reservoir", func(int) game.Sampler { return sampler.NewReservoir[int64](16) }},
		{"reservoirL", func(int) game.Sampler { return sampler.NewReservoirL[int64](16) }},
		{"bernoulli", func(int) game.Sampler { return sampler.NewBernoulli[int64](0.1) }},
	}
	for _, tc := range samplers {
		t.Run(tc.name, func(t *testing.T) {
			e := New(snapTestConfig(tc.mk), rng.New(5))
			src := rng.New(31)
			stream := make([]int64, 3000)
			for i := range stream {
				stream[i] = 1 + src.Int63n(1<<12)
			}
			e.Ingest(stream[:2000])
			before := e.Verdict()

			s1, err := AppendState(nil, e)
			if err != nil {
				t.Fatal(err)
			}
			// Restore into an engine with the same config but a different
			// seed: every RNG stream must come from the snapshot.
			f := New(snapTestConfig(tc.mk), rng.New(999))
			if err := LoadState(snapshot.NewReader(s1), f); err != nil {
				t.Fatal(err)
			}
			s2, err := AppendState(nil, f)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(s1, s2) {
				t.Fatal("engine snapshot not bit-identical after restore")
			}
			if got := f.Verdict(); got != before {
				t.Fatalf("restored verdict %v != original %v", got, before)
			}
			if !slices.Equal(e.Sample(), f.Sample()) {
				t.Fatal("restored union sample differs")
			}

			// Continuation: same traffic through both engines (mixing
			// Ingest and the adaptive Offer path) stays bit-identical.
			for _, x := range stream[2000:2100] {
				se, ae := e.Offer(x)
				sf, af := f.Offer(x)
				if se != sf || ae != af {
					t.Fatal("per-element continuation diverged after restore")
				}
			}
			e.Ingest(stream[2100:])
			f.Ingest(stream[2100:])
			if got, want := f.Verdict(), e.Verdict(); got != want {
				t.Fatalf("continuation verdict %v != %v", got, want)
			}
			if !slices.Equal(e.Sample(), f.Sample()) {
				t.Fatal("continuation samples diverged")
			}
		})
	}
}

func TestEngineSnapshotStructuralMismatch(t *testing.T) {
	e := New(snapTestConfig(func(int) game.Sampler { return sampler.NewReservoir[int64](8) }), rng.New(1))
	e.Ingest([]int64{1, 2, 3, 4, 5})
	snap, err := AppendState(nil, e)
	if err != nil {
		t.Fatal(err)
	}

	// Different shard count.
	cfg := snapTestConfig(func(int) game.Sampler { return sampler.NewReservoir[int64](8) })
	cfg.Shards = 2
	if err := LoadState(snapshot.NewReader(snap), New(cfg, rng.New(1))); err == nil {
		t.Fatal("shard-count mismatch not detected")
	}
	// Different sampler type.
	other := New(snapTestConfig(func(int) game.Sampler { return sampler.NewBernoulli[int64](0.5) }), rng.New(1))
	if err := LoadState(snapshot.NewReader(snap), other); err == nil {
		t.Fatal("sampler-type mismatch not detected")
	}
	// Different set system.
	cfg2 := snapTestConfig(func(int) game.Sampler { return sampler.NewReservoir[int64](8) })
	cfg2.System = setsystem.NewPrefixes(1 << 16)
	if err := LoadState(snapshot.NewReader(snap), New(cfg2, rng.New(1))); err == nil {
		t.Fatal("set-system mismatch not detected")
	}
}

func TestEngineSnapshotRecordStreamsUnsupported(t *testing.T) {
	cfg := snapTestConfig(func(int) game.Sampler { return sampler.NewReservoir[int64](8) })
	cfg.RecordStreams = true
	e := New(cfg, rng.New(1))
	if _, err := AppendState(nil, e); err == nil {
		t.Fatal("RecordStreams engines must refuse to snapshot")
	}
}
