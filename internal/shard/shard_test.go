package shard

import (
	"slices"
	"testing"

	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	rr := RoundRobin{}
	counts := make([]int, 3)
	for round := 1; round <= 300; round++ {
		counts[rr.Route(42, round, 3, nil)]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("shard %d received %d of 300", i, c)
		}
	}
}

func TestHashByValueIsConsistentAndSpread(t *testing.T) {
	h := HashByValue{}
	counts := make([]int, 4)
	for x := int64(0); x < 4000; x++ {
		a := h.Route(x, 1, 4, nil)
		b := h.Route(x, 999, 4, nil)
		if a != b {
			t.Fatalf("hash routing of %d depends on round", x)
		}
		counts[a]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("hash shard %d received %d of 4000 (poor spread)", i, c)
		}
	}
}

func TestUniformRoutesInRange(t *testing.T) {
	u := Uniform{}
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		s := u.Route(int64(i), i+1, 5, r)
		if s < 0 || s >= 5 {
			t.Fatalf("uniform routed out of range: %d", s)
		}
	}
}

func newTestEngine(shards, k int, router Router, seed uint64) *Engine {
	return New(Config{
		Shards: shards,
		Router: router,
		System: setsystem.NewPrefixes(1 << 16),
		NewSampler: func(int) game.Sampler {
			return sampler.NewReservoir[int64](k)
		},
		Workers:       1,
		RecordStreams: true,
	}, rng.New(seed))
}

// TestSubstreamsPartitionStream checks the routing bookkeeping: the shard
// substreams partition the full stream (as multisets, sizes and contents),
// under every router.
func TestSubstreamsPartitionStream(t *testing.T) {
	for _, router := range Routers() {
		eng := newTestEngine(4, 10, router, 8)
		gen := rng.New(2)
		xs := make([]int64, 2000)
		for i := range xs {
			xs[i] = 1 + gen.Int63n(1<<16)
		}
		eng.Ingest(xs[:1500])
		for _, x := range xs[1500:] {
			eng.Offer(x)
		}
		if eng.Rounds() != len(xs) {
			t.Fatalf("%s: rounds %d, want %d", router.Name(), eng.Rounds(), len(xs))
		}
		var union []int64
		total := 0
		for i := 0; i < eng.NumShards(); i++ {
			union = append(union, eng.Substream(i)...)
			total += eng.ShardRounds(i)
		}
		if total != len(xs) {
			t.Fatalf("%s: shard rounds sum to %d, want %d", router.Name(), total, len(xs))
		}
		slices.Sort(union)
		full := append([]int64(nil), eng.Stream()...)
		slices.Sort(full)
		if !slices.Equal(union, full) {
			t.Fatalf("%s: substreams do not partition the stream", router.Name())
		}
	}
}

func TestRouteToRecordsAtExplicitShard(t *testing.T) {
	eng := newTestEngine(3, 5, Uniform{}, 9)
	eng.RouteTo(7, 2)
	eng.RouteTo(8, 2)
	eng.RouteTo(9, 0)
	if got := eng.Substream(2); !slices.Equal(got, []int64{7, 8}) {
		t.Fatalf("substream 2 = %v", got)
	}
	if eng.ShardRounds(0) != 1 || eng.ShardRounds(1) != 0 {
		t.Fatalf("shard rounds: %d %d", eng.ShardRounds(0), eng.ShardRounds(1))
	}
}

// TestShardVerdictMatchesLocalOneShot checks per-shard verdicts against the
// one-shot oracle on the shard's own substream and sample.
func TestShardVerdictMatchesLocalOneShot(t *testing.T) {
	sys := setsystem.NewPrefixes(1 << 16)
	eng := newTestEngine(3, 12, HashByValue{}, 10)
	gen := rng.New(4)
	for i := 0; i < 5; i++ {
		xs := make([]int64, 700)
		for j := range xs {
			xs[j] = 1 + gen.Int63n(1<<16)
		}
		eng.Ingest(xs)
	}
	for i := 0; i < eng.NumShards(); i++ {
		got := eng.ShardVerdict(i)
		want := sys.MaxDiscrepancy(eng.Substream(i), eng.ShardSampler(i).View())
		if got != want {
			t.Fatalf("shard %d verdict %+v, one-shot %+v", i, got, want)
		}
	}
}

func TestGlobalSampleDrawsFromUnion(t *testing.T) {
	eng := newTestEngine(4, 50, Uniform{}, 11)
	gen := rng.New(5)
	xs := make([]int64, 4000)
	for i := range xs {
		xs[i] = 1 + gen.Int63n(1<<16)
	}
	eng.Ingest(xs)
	union := map[int64]int{}
	for _, v := range eng.SampleView() {
		union[v]++
	}
	if eng.SampleLen() != len(eng.SampleView()) {
		t.Fatalf("SampleLen %d != union view length %d", eng.SampleLen(), len(eng.SampleView()))
	}
	got := eng.GlobalSample(60, rng.New(6))
	if len(got) != 60 {
		t.Fatalf("global sample size %d, want 60", len(got))
	}
	for _, v := range got {
		if union[v] == 0 {
			t.Fatalf("global sample drew %d, not present in any shard sample", v)
		}
		union[v]--
	}
}

func TestStartGameReproducesRuns(t *testing.T) {
	eng := newTestEngine(4, 10, Uniform{}, 12)
	play := func() ([]int64, setsystem.Discrepancy) {
		eng.StartGame(rng.New(77))
		gen := rng.New(3)
		xs := make([]int64, 1200)
		for i := range xs {
			xs[i] = 1 + gen.Int63n(1<<16)
		}
		eng.Ingest(xs)
		return eng.Sample(), eng.Verdict()
	}
	s1, v1 := play()
	s2, v2 := play()
	if !slices.Equal(s1, s2) || v1 != v2 {
		t.Fatal("StartGame with equal seeds did not reproduce the run")
	}
}

func TestRoutingOnlyEngine(t *testing.T) {
	eng := New(Config{Shards: 3, RecordStreams: true}, rng.New(1))
	for i := int64(0); i < 300; i++ {
		if _, admitted := eng.Offer(i); admitted {
			t.Fatal("routing-only engine admitted an element")
		}
	}
	total := 0
	for i := 0; i < 3; i++ {
		total += len(eng.Substream(i))
	}
	if total != 300 {
		t.Fatalf("recorded %d of 300", total)
	}
	for _, f := range []func(){
		func() { eng.Verdict() },
		func() { eng.ShardVerdict(0) },
		func() { eng.GlobalSample(5, rng.New(2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on verdict/sample of routing-only engine")
				}
			}()
			f()
		}()
	}
}

func TestConfigValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(Config{Shards: 0}, rng.New(1)) },
		func() {
			New(Config{Shards: 2, NewSampler: func(int) game.Sampler {
				return sampler.NewReservoir[int64](4)
			}}, rng.New(1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected construction panic")
				}
			}()
			f()
		}()
	}
}

// TestTargetedBisectionPoisonsTargetShard runs the unbounded
// distributed-bisection arm and checks its qualitative shape: the target
// shard's sample becomes far less representative of the full stream than
// the merged coordinator sample, which the untargeted shards dilute.
func TestTargetedBisectionPoisonsTargetShard(t *testing.T) {
	const n = 6000
	out := RunTargetedBisectionUnbounded(4, n, 0.05, rng.New(42))
	if out.S != 4 || out.N != n {
		t.Fatalf("outcome labels: %+v", out)
	}
	if out.TargetSampleLen == 0 {
		t.Fatal("empty target sample; attack produced nothing to poison")
	}
	if out.TargetVsStream < 0.5 {
		t.Fatalf("attack too weak: target-vs-stream KS %v, want > 0.5", out.TargetVsStream)
	}
	if out.GlobalErr >= out.TargetVsStream {
		t.Fatalf("merged verdict (%v) should beat the poisoned target shard (%v)",
			out.GlobalErr, out.TargetVsStream)
	}
}

// TestTargetedBisectionBoundedUniverseIsCapped runs the bounded-universe
// defense row on the live engine: with hash-discretized queries the attack
// exhausts its precision (Theorem 1.2 with rate p/S caps the damage), so
// the target shard stays far more representative than under the unbounded
// attack.
func TestTargetedBisectionBoundedUniverseIsCapped(t *testing.T) {
	const n = 6000
	unbounded := RunTargetedBisectionUnbounded(4, n, 0.05, rng.New(42))
	sys := setsystem.NewPrefixes(int64(1) << 40)
	bounded := RunTargetedBisection(4, n, 0.05, sys, rng.New(42))
	if bounded.TargetVsStream >= unbounded.TargetVsStream/2 {
		t.Fatalf("bounded attack KS %v not clearly capped vs unbounded %v",
			bounded.TargetVsStream, unbounded.TargetVsStream)
	}
}
