// The self-healing half of the serving runtime: per-shard crash
// checkpoints, panic supervision with restore-and-rejoin, health reporting,
// and degraded reads that answer from the healthy subset instead of
// blocking behind a wedged shard.
//
// Recovery contract (proved by the chaos tests):
//
//   - Deterministic mode: each shard keeps, besides its latest checkpoint
//     (an appendShardBlock snapshot), a redo journal of every chunk applied
//     since that checkpoint. A crashed shard restores the checkpoint,
//     replays the journal, and retries the failing chunk — the rebuilt
//     state is bit-identical to an uninterrupted run (samplers consume
//     their RNG streams identically on replay), and nothing is lost.
//   - Live mode: no journal; a crashed shard rolls back to its latest
//     checkpoint and the rolled-back rounds are counted as lost — at most
//     one checkpoint interval per crash, reconciled exactly through the
//     round counters (offered == covered + lost after a flush). A chunk
//     that keeps failing past the retry limit is dropped and its elements
//     are counted as lost too (at most ChunkCap more per crash).
//
// Checkpoints are taken under the shard's lock at the apply boundary — the
// per-shard read barrier — so each checkpoint is a consistent cut of that
// shard, at a cost proportional to the sampler + accumulator state size
// (never the stream).
package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"robustsample/internal/faults"
	"robustsample/internal/rng"
	"robustsample/internal/runtime"
	"robustsample/internal/setsystem"
	"robustsample/internal/snapshot"
)

// ShardStatus is one shard's serving state.
type ShardStatus uint8

const (
	// Healthy: the shard is applying normally.
	Healthy ShardStatus = iota
	// Degraded: the shard crashed and is inside its recovery window
	// (restore + retry); it rejoins as Healthy at its next clean apply.
	Degraded
)

func (s ShardStatus) String() string {
	if s == Healthy {
		return "healthy"
	}
	return "degraded"
}

// ShardHealth is one shard's health counters.
type ShardHealth struct {
	// Status is Healthy, or Degraded while the shard is mid-recovery.
	Status ShardStatus
	// Crashes counts apply panics recovered on this shard.
	Crashes uint64
	// Restores counts checkpoint restores performed on this shard.
	Restores uint64
	// Checkpoints counts checkpoints taken (including the baseline).
	Checkpoints uint64
	// LostRounds counts elements lost on this shard: live-mode rollbacks
	// plus elements in chunks dropped after the retry limit.
	LostRounds uint64
	// Rounds is the shard's applied substream length.
	Rounds int
}

// Health is a point-in-time, lock-free view of the serving session: reading
// it never touches a shard lock, so it is always available — including
// while a shard is wedged mid-apply.
type Health struct {
	// Shards holds one entry per shard, in shard order.
	Shards []ShardHealth
	// Crashes/Restores/Checkpoints/LostRounds aggregate the per-shard
	// counters.
	Crashes     uint64
	Restores    uint64
	Checkpoints uint64
	LostRounds  uint64
	// Supervised reports whether crash recovery is active (CheckpointEvery
	// or a fault plan was configured on Serve).
	Supervised bool
}

// Degraded reports whether any shard is currently mid-recovery.
func (h Health) Degraded() bool {
	for _, sh := range h.Shards {
		if sh.Status != Healthy {
			return true
		}
	}
	return false
}

// Coverage reports what a degraded read actually answered over: which
// shards were included within the query's wait bound, and the rounds
// covered versus routed. A complete coverage after a flush has Covered ==
// Routed - lost rounds.
type Coverage struct {
	// Shards is the total shard count.
	Shards int
	// Included is how many shards answered within the wait bound.
	Included int
	// Stalled lists the shards skipped because their lock could not be
	// taken in time (a consumer wedged mid-apply), in shard order.
	Stalled []int
	// Covered is the sum of the included shards' applied substream
	// lengths — the rounds the answer actually reflects.
	Covered int
	// Routed is the session's accepted round count at query time
	// (everything offered, applied or not).
	Routed int
}

// Complete reports whether every shard was included.
func (c Coverage) Complete() bool { return c.Included == c.Shards }

// supShard is one shard's supervision state. The atomic counters feed the
// lock-free Health view; everything else is touched only under the shard's
// lock (apply, checkpoint, restore all run there).
type supShard struct {
	status      atomic.Uint32
	crashes     atomic.Uint64
	restores    atomic.Uint64
	checkpoints atomic.Uint64
	lost        atomic.Uint64 // live-mode rollback losses (dropped chunks are counted by the pipeline)
	rounds      atomic.Int64  // mirror of shardState.rounds for lock-free Health

	ckpt       []byte    // latest checkpoint (appendShardBlock bytes)
	ckptRounds int       // shard rounds at that checkpoint
	sinceCkpt  int       // elements applied since
	journal    [][]int64 // deterministic mode: chunks applied since the checkpoint
}

// supervisor is the serving session's crash-recovery state: it owns the
// pipeline's BeforeApply/OnApplyPanic hooks and the supervised Apply path.
type supervisor struct {
	e          *Engine
	det        bool
	every      int
	retryLimit int
	plan       *faults.Plan // nil when no fault injection
	shards     []*supShard
}

// newSupervisor takes the baseline checkpoint of every shard (failing fast
// for configurations with no snapshot codec) before any consumer runs.
func newSupervisor(e *Engine, det bool, every, retryLimit int, plan *faults.Plan) (*supervisor, error) {
	sup := &supervisor{e: e, det: det, every: every, retryLimit: retryLimit, plan: plan}
	sup.shards = make([]*supShard, len(e.shards))
	for i, sh := range e.shards {
		ss := &supShard{}
		buf, err := appendShardBlock(nil, sh)
		if err != nil {
			return nil, fmt.Errorf("shard: cannot supervise: %w", err)
		}
		ss.ckpt = buf
		ss.ckptRounds = sh.rounds
		ss.rounds.Store(int64(sh.rounds))
		ss.checkpoints.Store(1)
		sup.shards[i] = ss
	}
	return sup, nil
}

// inject is the pipeline's BeforeApply hook: it asks the fault plan for
// this (shard, attempt)'s decision and acts it out — panic, sleep, or
// in-place corruption (the pipeline restores the pristine chunk before
// retries, so corruption never outlives the attempt it was injected into).
func (sup *supervisor) inject(si, attempt int, xs []int64) {
	switch d := sup.plan.Decide(si, attempt); d.Op {
	case faults.Crash:
		panic(faults.ErrInjectedCrash)
	case faults.Stall, faults.Delay:
		time.Sleep(d.Sleep)
	case faults.Corrupt, faults.HardCorrupt:
		faults.PoisonChunk(xs)
	}
}

// apply is the supervised Apply path, run under the shard's lock: validate
// (fault plans can poison chunks), ingest, journal (deterministic mode),
// and checkpoint when the interval fills. A clean apply also completes a
// recovery: the shard rejoins as Healthy.
func (sup *supervisor) apply(si int, xs []int64) {
	sh := sup.e.shards[si]
	ss := sup.shards[si]
	if sup.plan != nil && faults.Poisoned(xs) {
		panic(faults.ErrPoisonedBatch)
	}
	sup.e.applyShard(sh, xs)
	if sup.det {
		ss.journal = append(ss.journal, append([]int64(nil), xs...))
	}
	ss.rounds.Store(int64(sh.rounds))
	ss.sinceCkpt += len(xs)
	if ss.sinceCkpt >= sup.every {
		sup.checkpoint(si)
	}
	if ss.status.Load() != uint32(Healthy) {
		ss.status.Store(uint32(Healthy))
	}
}

// checkpoint snapshots shard si in place (under its held lock) and resets
// the interval and journal.
func (sup *supervisor) checkpoint(si int) {
	sh := sup.e.shards[si]
	ss := sup.shards[si]
	buf, err := appendShardBlock(ss.ckpt[:0], sh)
	if err != nil {
		// Unreachable after the baseline proved the codec (serving keeps
		// pending empty); keep the previous checkpoint and retry at the
		// next interval rather than wedging the consumer.
		ss.sinceCkpt = 0
		return
	}
	ss.ckpt = buf
	ss.ckptRounds = sh.rounds
	ss.sinceCkpt = 0
	ss.journal = ss.journal[:0]
	ss.checkpoints.Add(1)
}

// onPanic is the pipeline's OnApplyPanic hook: mark the shard Degraded,
// restore it from its latest checkpoint (replaying the journal in
// deterministic mode), and retry the chunk until the retry limit, then drop
// it. Runs under the shard's lock.
func (sup *supervisor) onPanic(si int, v any, xs []int64, attempt int) runtime.Disposition {
	ss := sup.shards[si]
	ss.status.Store(uint32(Degraded))
	ss.crashes.Add(1)
	sup.restore(si)
	if attempt >= sup.retryLimit {
		return runtime.Drop // the pipeline counts the chunk's elements as lost
	}
	return runtime.Retry
}

// restore rewinds shard si to its latest checkpoint. Deterministic mode
// then replays the redo journal, rebuilding the pre-crash state bit for bit
// (zero loss); live mode counts the rolled-back rounds as lost.
func (sup *supervisor) restore(si int) {
	sh := sup.e.shards[si]
	ss := sup.shards[si]
	pre := sh.rounds
	if err := loadShardBlock(snapshot.NewReader(ss.ckpt), sh); err != nil {
		// The checkpoint bytes are ours and immutable; failing to reload
		// them means memory corruption — propagate (the supervisor's own
		// panic is not recovered, by design).
		panic(fmt.Sprintf("shard: checkpoint restore failed: %v", err))
	}
	ss.restores.Add(1)
	ss.sinceCkpt = 0
	if sup.det {
		for _, chunk := range ss.journal {
			sup.e.applyShard(sh, chunk)
			ss.sinceCkpt += len(chunk)
		}
	} else if lost := pre - sh.rounds; lost > 0 {
		ss.lost.Add(uint64(lost))
	}
	ss.rounds.Store(int64(sh.rounds))
}

// lostRounds returns the session's total lost elements: live-mode rollbacks
// plus chunks dropped by the pipeline after the retry limit.
func (s *Serving) lostRounds() uint64 {
	n := s.pl.Lost()
	if s.sup != nil {
		for _, ss := range s.sup.shards {
			n += ss.lost.Load()
		}
	}
	return n
}

// Health returns the session's health report without taking any lock: it
// is built entirely from atomic counters, so it answers even while a shard
// consumer is wedged mid-apply holding its shard lock.
func (s *Serving) Health() Health {
	h := Health{Shards: make([]ShardHealth, len(s.e.shards)), Supervised: s.sup != nil}
	for i := range h.Shards {
		var sh ShardHealth
		if s.sup != nil {
			ss := s.sup.shards[i]
			sh = ShardHealth{
				Status:      ShardStatus(ss.status.Load()),
				Crashes:     ss.crashes.Load(),
				Restores:    ss.restores.Load(),
				Checkpoints: ss.checkpoints.Load(),
				LostRounds:  ss.lost.Load(),
				Rounds:      int(ss.rounds.Load()),
			}
		} else {
			sh = ShardHealth{Rounds: s.startShard[i] + int(s.pl.ShardApplied(i))}
		}
		sh.LostRounds += s.pl.ShardLost(i)
		h.Shards[i] = sh
		h.Crashes += sh.Crashes
		h.Restores += sh.Restores
		h.Checkpoints += sh.Checkpoints
		h.LostRounds += sh.LostRounds
	}
	return h
}

// coveredShards visits every shard under its lock with a bounded wait,
// calling fn for the shards whose lock was acquired, and returns the
// coverage report. The wait bound is the session's QueryWait.
func (s *Serving) coveredShards(fn func(i int, sh *shardState)) Coverage {
	cov := Coverage{Shards: len(s.e.shards), Routed: s.Rounds()}
	for i, sh := range s.e.shards {
		ok := s.pl.TryWithShard(i, s.queryWait, func() {
			fn(i, sh)
			cov.Covered += sh.rounds
		})
		if ok {
			cov.Included++
		} else {
			cov.Stalled = append(cov.Stalled, i)
		}
	}
	return cov
}

// VerdictCovered is Verdict with graceful degradation: shards whose lock
// cannot be taken within the session's QueryWait (a consumer wedged
// mid-apply) are skipped instead of blocked on, and the verdict is the
// exact discrepancy over the covered subset — each included shard's
// (substream, sample) pair is still internally consistent, which is what
// the [CTW16] merged read path needs. The coverage report says exactly
// what the answer reflects.
func (s *Serving) VerdictCovered() (setsystem.Discrepancy, Coverage) {
	e := s.e
	if e.cfg.NewSampler == nil {
		panic("shard: Verdict requires samplers (routing-only engine)")
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if e.global == nil {
		e.global = e.cfg.System.NewAccumulator()
	}
	e.global.Reset()
	cov := s.coveredShards(func(i int, sh *shardState) {
		e.withSampleSynced(sh, func() { e.global.MergeFrom(sh.acc) })
	})
	return e.global.Max(), cov
}

// SampleCovered is Sample with graceful degradation: the union sample over
// the shards reachable within QueryWait, with the coverage report.
func (s *Serving) SampleCovered() ([]int64, Coverage) {
	var out []int64
	cov := s.coveredShards(func(i int, sh *shardState) {
		if sh.sampler != nil {
			out = append(out, sh.sampler.View()...)
		}
	})
	return out, cov
}

// GlobalSampleCovered is GlobalSample with graceful degradation: a uniform
// size-k sample of the union of the covered substreams ([CTW16] fan-in over
// the healthy subset). The caller owns r.
func (s *Serving) GlobalSampleCovered(k int, r *rng.RNG) ([]int64, Coverage) {
	e := s.e
	if e.cfg.NewSampler == nil {
		panic("shard: GlobalSample requires samplers (routing-only engine)")
	}
	views := make([][]int64, 0, len(e.shards))
	pops := make([]int, 0, len(e.shards))
	cov := s.coveredShards(func(i int, sh *shardState) {
		views = append(views, append([]int64(nil), sh.sampler.View()...))
		pops = append(pops, sh.rounds)
	})
	return MergeGlobalSample(views, pops, k, r), cov
}
