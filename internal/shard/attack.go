// The distributed-bisection adversary arm: the Figure-3 attack retargeted
// at ONE shard of a sharded engine. The adaptive client observes a single
// bit per round — "did my query enter the target shard's sample?" — which
// composes the routing draw (probability 1/S under uniform routing) with the
// shard sampler's admission draw, i.e. a Bernoulli(p/S) admission channel.
// Running Figure 3 against that channel sorts all target-admitted elements
// below all others, making the target shard's local sample maximally
// unrepresentative of the global stream, while the coordinator's merged
// verdict stays an order of magnitude healthier: the other S-1 shards dilute
// the poisoned sample. The shard experiment (E18) reports both numbers.
package shard

import (
	"math"

	"robustsample/internal/adversary"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/stats"
)

// TargetedOutcome reports one distributed-bisection attack run.
type TargetedOutcome struct {
	// S is the shard count, N the stream length.
	S, N int
	// TargetVsStream is the prefix (KS) discrepancy between the target
	// shard's local sample and the FULL routed stream — the quantity the
	// attack maximizes.
	TargetVsStream float64
	// TargetLocal is the target shard's local verdict (its sample vs its
	// own substream).
	TargetLocal float64
	// GlobalErr is the coordinator's merged verdict: union stream vs
	// union sample.
	GlobalErr float64
	// TargetSampleLen is the size the target's sample reached.
	TargetSampleLen int
}

// RunTargetedBisectionUnbounded plays the attack over an UNBOUNDED ordered
// universe, where Theorem 1.3 says bisection must win: the composed channel
// "routed to shard 0 (probability 1/S) and admitted by its Bernoulli(p)
// sampler" is value-independent, so the exact attack simulation of Section 5
// (adversary.RunExactBisectionFunc) applies verbatim, drawing each round's
// routing and admission coins up front. All elements ever admitted to the
// target end up below all other stream elements, driving the target shard's
// sample-vs-stream KS distance toward 1, while the union sample — the other
// S-1 shards are untouched Bernoulli samples of their substreams — keeps the
// coordinator's merged verdict far healthier. The bounded-universe
// counterpart below is the defense row.
func RunTargetedBisectionUnbounded(shards, n int, p float64, root *rng.RNG) TargetedOutcome {
	if shards < 1 {
		panic("shard: need at least 1 shard")
	}
	if n < 1 {
		panic("shard: attack needs n >= 1")
	}
	routes := make([]int, n)
	adms := make([]bool, n)
	res := adversary.RunExactBisectionFunc(n, func(round int) bool {
		s := root.Intn(shards)
		a := root.Bernoulli(p)
		routes[round-1] = s
		adms[round-1] = a
		return s == 0 && a
	})
	var targetSub, targetSample, union []int64
	for i, x := range res.Stream {
		if adms[i] {
			union = append(union, x)
		}
		if routes[i] == 0 {
			targetSub = append(targetSub, x)
			if adms[i] {
				targetSample = append(targetSample, x)
			}
		}
	}
	return TargetedOutcome{
		S:               shards,
		N:               n,
		TargetVsStream:  stats.KSDistanceInt64(res.Stream, targetSample),
		TargetLocal:     stats.KSDistanceInt64(targetSub, targetSample),
		GlobalErr:       stats.KSDistanceInt64(res.Stream, union),
		TargetSampleLen: len(targetSample),
	}
}

// RunTargetedBisection plays the Figure-3 bisection attack against shard 0
// of an S-shard engine with uniform routing and per-shard Bernoulli(p)
// samplers over the universe [1, sys.UniverseSize()]. The attacker's
// admission bit is "routed to shard 0 AND admitted there", so the attack's
// p' is max(p/S, ln n / n), the composed admission rate — exactly how
// Figure 3 prescribes p' for a Bernoulli-like channel.
func RunTargetedBisection(shards, n int, p float64, sys setsystem.SetSystem, root *rng.RNG) TargetedOutcome {
	if shards < 1 {
		panic("shard: need at least 1 shard")
	}
	if n < 1 {
		panic("shard: attack needs n >= 1")
	}
	eng := New(Config{
		Shards: shards,
		Router: Uniform{},
		System: sys,
		NewSampler: func(int) game.Sampler {
			return sampler.NewBernoulli[int64](p)
		},
		Workers:       1,
		RecordStreams: true,
	}, root)
	advRNG := root.Split()

	pp := math.Max(p/float64(shards), math.Log(float64(n))/float64(n))
	if pp >= 1 {
		pp = 0.5
	}
	bi := adversary.NewBisection(sys.UniverseSize(), pp)
	bi.Reset()

	history := make([]int64, 0, n)
	lastAdmitted := false
	for i := 1; i <= n; i++ {
		obs := game.Observation{
			Round:        i,
			N:            n,
			Sample:       eng.ShardSampler(0).View(),
			LastAdmitted: lastAdmitted,
			History:      history,
		}
		x := bi.Next(obs, advRNG)
		history = append(history, x)
		si, adm := eng.Offer(x)
		lastAdmitted = si == 0 && adm
	}

	target := eng.ShardSampler(0)
	return TargetedOutcome{
		S:               shards,
		N:               n,
		TargetVsStream:  sys.MaxDiscrepancy(eng.Stream(), target.View()).Err,
		TargetLocal:     eng.ShardVerdict(0).Err,
		GlobalErr:       eng.Verdict().Err,
		TargetSampleLen: target.Len(),
	}
}
