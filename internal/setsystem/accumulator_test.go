package setsystem

import (
	"fmt"
	"testing"

	"robustsample/internal/rng"
)

func allSystems(n int64) []SetSystem {
	return []SetSystem{NewPrefixes(n), NewIntervals(n), NewSingletons(n), NewSuffixes(n)}
}

// requireEqual asserts bit-exact parity between the incremental and one-shot
// discrepancy results: error AND witness.
func requireEqual(t *testing.T, sys SetSystem, got, want Discrepancy, stream, sample []int64) {
	t.Helper()
	if got != want {
		t.Fatalf("%s: accumulator %v != one-shot %v (stream=%v sample=%v)",
			sys.Name(), got, want, stream, sample)
	}
}

// TestAccumulatorMatchesOneShot is the differential test of the incremental
// engine: randomized streams and samples, including sample removals driven
// like reservoir evictions, must agree bit-for-bit with MaxDiscrepancy for
// all four set systems at every step.
func TestAccumulatorMatchesOneShot(t *testing.T) {
	const universe = 64
	r := rng.New(42)
	for _, sys := range allSystems(universe) {
		for trial := 0; trial < 30; trial++ {
			acc := sys.NewAccumulator()
			var stream, sample []int64
			steps := 30 + r.Intn(60)
			for step := 0; step < steps; step++ {
				x := 1 + r.Int63n(universe)
				stream = append(stream, x)
				acc.AddStream(x)

				// Mimic a reservoir: sometimes admit, sometimes admit
				// with eviction of a random current sample element.
				if r.Float64() < 0.5 {
					if len(sample) > 4 && r.Float64() < 0.6 {
						j := r.Intn(len(sample))
						acc.RemoveSample(sample[j])
						sample[j] = sample[len(sample)-1]
						sample = sample[:len(sample)-1]
					}
					acc.AddSample(x)
					sample = append(sample, x)
				}

				// Evaluate at random checkpoints and always at the end.
				if r.Float64() < 0.3 || step == steps-1 {
					requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, sample), stream, sample)
				}
			}
			if acc.StreamLen() != len(stream) || acc.SampleLen() != len(sample) {
				t.Fatalf("%s: lengths %d/%d, want %d/%d",
					sys.Name(), acc.StreamLen(), acc.SampleLen(), len(stream), len(sample))
			}
		}
	}
}

// TestAccumulatorEmptySample checks the empty-sample special cases (error 1
// with the system-specific witness), including a sample that was drained
// back to empty by removals.
func TestAccumulatorEmptySample(t *testing.T) {
	for _, sys := range allSystems(16) {
		acc := sys.NewAccumulator()
		stream := []int64{3, 9, 9, 14}
		for _, x := range stream {
			acc.AddStream(x)
		}
		requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, nil), stream, nil)

		// Drain an added-then-removed sample: must match again.
		acc.AddSample(9)
		acc.AddSample(3)
		acc.RemoveSample(9)
		acc.RemoveSample(3)
		requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, nil), stream, nil)
	}
}

func TestAccumulatorEmptyStream(t *testing.T) {
	for _, sys := range allSystems(16) {
		acc := sys.NewAccumulator()
		if d := acc.Max(); d != (Discrepancy{}) {
			t.Fatalf("%s: empty accumulator discrepancy %v, want zero", sys.Name(), d)
		}
		acc.AddSample(5)
		if d := acc.Max(); d != (Discrepancy{}) {
			t.Fatalf("%s: empty stream discrepancy %v, want zero", sys.Name(), d)
		}
	}
}

func TestAccumulatorPerfectSampleZero(t *testing.T) {
	for _, sys := range allSystems(16) {
		acc := sys.NewAccumulator()
		for _, x := range []int64{2, 5, 5, 11} {
			acc.AddStream(x)
			acc.AddSample(x)
		}
		if d := acc.Max(); d.Err != 0 {
			t.Fatalf("%s: perfect sample error %v, want 0", sys.Name(), d.Err)
		}
	}
}

func TestAccumulatorRemoveAbsentPanics(t *testing.T) {
	acc := NewPrefixes(8).NewAccumulator()
	acc.AddStream(3)
	acc.AddSample(3)
	acc.RemoveSample(3)
	for _, x := range []int64{3, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RemoveSample(%d) of absent element should panic", x)
				}
			}()
			acc.RemoveSample(x)
		}()
	}
}

// TestAccumulatorReset checks that a reset accumulator behaves like a fresh
// one, including its lazily merged sorted order.
func TestAccumulatorReset(t *testing.T) {
	sys := NewIntervals(32)
	acc := sys.NewAccumulator()
	for _, x := range []int64{7, 7, 20, 3} {
		acc.AddStream(x)
	}
	acc.AddSample(20)
	acc.Max()
	acc.Reset()
	if acc.StreamLen() != 0 || acc.SampleLen() != 0 {
		t.Fatal("reset accumulator not empty")
	}
	stream := []int64{4, 8, 8}
	sample := []int64{8}
	for _, x := range stream {
		acc.AddStream(x)
	}
	for _, x := range sample {
		acc.AddSample(x)
	}
	requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, sample), stream, sample)
}

// TestAccumulatorInterleavedMax verifies that calling Max between every
// update (forcing incremental pending merges of size one) agrees with a
// single batch evaluation.
func TestAccumulatorInterleavedMax(t *testing.T) {
	r := rng.New(7)
	for _, sys := range allSystems(20) {
		acc := sys.NewAccumulator()
		var stream, sample []int64
		for i := 0; i < 50; i++ {
			x := 1 + r.Int63n(20)
			stream = append(stream, x)
			acc.AddStream(x)
			if i%3 == 0 {
				sample = append(sample, x)
				acc.AddSample(x)
			}
			requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, sample), stream, sample)
		}
	}
}

// TestAccumulatorMultiBlockParity forces small blocks (so the sqrt
// decomposition, offset pass, hull queries, block splitting and witness
// rescans are all exercised across many blocks) and demands bit-exact
// parity with the one-shot on randomized eviction-heavy histories.
func TestAccumulatorMultiBlockParity(t *testing.T) {
	const universe = 4096
	r := rng.New(1234)
	for _, sys := range allSystems(universe) {
		for trial := 0; trial < 8; trial++ {
			acc := sys.NewAccumulator()
			acc.blockB = 4 // force many blocks; placePending may grow it
			var stream, sample []int64
			steps := 400 + r.Intn(400)
			for step := 0; step < steps; step++ {
				x := 1 + r.Int63n(universe)
				stream = append(stream, x)
				acc.AddStream(x)
				if r.Float64() < 0.4 {
					if len(sample) > 8 && r.Float64() < 0.5 {
						j := r.Intn(len(sample))
						acc.RemoveSample(sample[j])
						sample[j] = sample[len(sample)-1]
						sample = sample[:len(sample)-1]
					}
					acc.AddSample(x)
					sample = append(sample, x)
				}
				if step%37 == 0 || step == steps-1 {
					requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, sample), stream, sample)
				}
			}
			if len(acc.blocks) < 2 {
				t.Fatalf("%s: expected multiple blocks, got %d", sys.Name(), len(acc.blocks))
			}
		}
	}
}

// TestAccumulatorReusedAcrossRuns drives one accumulator through many
// Reset/replay cycles (the Monte-Carlo per-worker reuse pattern, which also
// switches small universes onto the dense epoch-stamped index) and demands
// bit-exact parity with a freshly built accumulator and the one-shot on
// every run.
func TestAccumulatorReusedAcrossRuns(t *testing.T) {
	const universe = 512
	r := rng.New(77)
	for _, sys := range allSystems(universe) {
		reused := sys.NewAccumulator()
		for run := 0; run < 10; run++ {
			reused.Reset()
			fresh := sys.NewAccumulator()
			var stream, sample []int64
			steps := 50 + r.Intn(150)
			for i := 0; i < steps; i++ {
				x := 1 + r.Int63n(universe)
				stream = append(stream, x)
				reused.AddStream(x)
				fresh.AddStream(x)
				switch {
				case r.Float64() < 0.35:
					sample = append(sample, x)
					reused.AddSample(x)
					fresh.AddSample(x)
				case len(sample) > 3 && r.Float64() < 0.2:
					j := r.Intn(len(sample))
					reused.RemoveSample(sample[j])
					fresh.RemoveSample(sample[j])
					sample[j] = sample[len(sample)-1]
					sample = sample[:len(sample)-1]
				}
			}
			got, want := reused.Max(), fresh.Max()
			if got != want {
				t.Fatalf("%s run %d: reused %v != fresh %v", sys.Name(), run, got, want)
			}
			requireEqual(t, sys, got, sys.MaxDiscrepancy(stream, sample), stream, sample)
			if reused.StreamLen() != len(stream) || reused.SampleLen() != len(sample) {
				t.Fatalf("%s run %d: lengths %d/%d", sys.Name(), run, reused.StreamLen(), reused.SampleLen())
			}
		}
	}
}

// TestAccumulatorAddStreamBatch checks the bulk-ingest form agrees with
// element-at-a-time AddStream, interleaved with checkpoints.
func TestAccumulatorAddStreamBatch(t *testing.T) {
	r := rng.New(9)
	for _, sys := range allSystems(512) {
		a := sys.NewAccumulator()
		b := sys.NewAccumulator()
		var stream []int64
		for round := 0; round < 20; round++ {
			batch := make([]int64, r.Intn(60))
			for i := range batch {
				batch[i] = 1 + r.Int63n(512)
			}
			stream = append(stream, batch...)
			a.AddStreamBatch(batch)
			for _, x := range batch {
				b.AddStream(x)
			}
			if len(batch) > 0 {
				x := batch[r.Intn(len(batch))]
				a.AddSample(x)
				b.AddSample(x)
			}
			da, db := a.Max(), b.Max()
			if da != db {
				t.Fatalf("%s: batch %v != serial %v", sys.Name(), da, db)
			}
			requireEqual(t, sys, da, sys.MaxDiscrepancy(stream, seqSample(b)), stream, seqSample(b))
		}
	}
}

// seqSample reconstructs the sample multiset of an accumulator from its
// internal histogram, for one-shot comparison.
func seqSample(a *Accumulator) []int64 {
	var out []int64
	for s, c := range a.cs {
		for i := int64(0); i < c; i++ {
			out = append(out, a.vals[s])
		}
	}
	return out
}

// BenchmarkAccumulatorVerdictEveryK measures the amortized cost of one
// "span of K updates + exact verdict" cycle at a stationary structure (the
// bounded universe keeps the distinct-value count ~steady), sweeping the
// checkpoint density K — the scaling curve of the block/hull engine. The
// flat arm forces a single block, reproducing the previous engine's full
// sweep per verdict, so the two arms are a like-for-like before/after. At
// K=1 almost every block answers from a cached hull; as K grows the
// dirty-block sweeps take over and the block engine converges to the flat
// cost instead of exceeding it.
func BenchmarkAccumulatorVerdictEveryK(b *testing.B) {
	const universe = 1 << 17
	for _, engine := range []string{"block", "flat"} {
		for _, k := range []int{1, 8, 64, 512, 4096} {
			b.Run(fmt.Sprintf("engine=%s/K=%d", engine, k), func(b *testing.B) {
				r := rng.New(1)
				sys := NewPrefixes(universe)
				acc := sys.NewAccumulator()
				if engine == "flat" {
					acc.blockB = 1 << 30 // one block: every verdict is a full sweep
				}
				for i := 0; i < 100000; i++ {
					acc.AddStream(1 + r.Int63n(universe))
				}
				for i := 0; i < 1000; i++ {
					acc.AddSample(1 + r.Int63n(universe))
				}
				acc.Max()
				acc.AddStream(1 + r.Int63n(universe))
				acc.Max()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := 0; j < k; j++ {
						acc.AddStream(1 + r.Int63n(universe))
					}
					acc.Max()
				}
			})
		}
	}
}

func BenchmarkAccumulatorCheckpoint(b *testing.B) {
	// One checkpoint evaluation over a large accumulated stream: the cost
	// the incremental engine pays where cdfScan would re-sort the prefix.
	r := rng.New(1)
	sys := NewPrefixes(1 << 20)
	acc := sys.NewAccumulator()
	for i := 0; i < 100000; i++ {
		acc.AddStream(1 + r.Int63n(1<<20))
	}
	for i := 0; i < 1000; i++ {
		acc.AddSample(1 + r.Int63n(1<<20))
	}
	// Two warm-up verdicts reach the steady state the benchmark measures:
	// the first places blocks and sweeps them, the second (all blocks
	// quiet) builds their hulls, so timed iterations pay the real
	// per-checkpoint cost — a dirty-block sweep or two plus O(log B) hull
	// queries elsewhere — rather than one-time hull construction.
	acc.Max()
	acc.AddStream(1 + r.Int63n(1<<20))
	acc.Max()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.AddStream(1 + r.Int63n(1<<20))
		acc.Max()
	}
}
