package setsystem

import (
	"testing"

	"robustsample/internal/rng"
)

func allSystems(n int64) []SetSystem {
	return []SetSystem{NewPrefixes(n), NewIntervals(n), NewSingletons(n), NewSuffixes(n)}
}

// requireEqual asserts bit-exact parity between the incremental and one-shot
// discrepancy results: error AND witness.
func requireEqual(t *testing.T, sys SetSystem, got, want Discrepancy, stream, sample []int64) {
	t.Helper()
	if got != want {
		t.Fatalf("%s: accumulator %v != one-shot %v (stream=%v sample=%v)",
			sys.Name(), got, want, stream, sample)
	}
}

// TestAccumulatorMatchesOneShot is the differential test of the incremental
// engine: randomized streams and samples, including sample removals driven
// like reservoir evictions, must agree bit-for-bit with MaxDiscrepancy for
// all four set systems at every step.
func TestAccumulatorMatchesOneShot(t *testing.T) {
	const universe = 64
	r := rng.New(42)
	for _, sys := range allSystems(universe) {
		for trial := 0; trial < 30; trial++ {
			acc := sys.NewAccumulator()
			var stream, sample []int64
			steps := 30 + r.Intn(60)
			for step := 0; step < steps; step++ {
				x := 1 + r.Int63n(universe)
				stream = append(stream, x)
				acc.AddStream(x)

				// Mimic a reservoir: sometimes admit, sometimes admit
				// with eviction of a random current sample element.
				if r.Float64() < 0.5 {
					if len(sample) > 4 && r.Float64() < 0.6 {
						j := r.Intn(len(sample))
						acc.RemoveSample(sample[j])
						sample[j] = sample[len(sample)-1]
						sample = sample[:len(sample)-1]
					}
					acc.AddSample(x)
					sample = append(sample, x)
				}

				// Evaluate at random checkpoints and always at the end.
				if r.Float64() < 0.3 || step == steps-1 {
					requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, sample), stream, sample)
				}
			}
			if acc.StreamLen() != len(stream) || acc.SampleLen() != len(sample) {
				t.Fatalf("%s: lengths %d/%d, want %d/%d",
					sys.Name(), acc.StreamLen(), acc.SampleLen(), len(stream), len(sample))
			}
		}
	}
}

// TestAccumulatorEmptySample checks the empty-sample special cases (error 1
// with the system-specific witness), including a sample that was drained
// back to empty by removals.
func TestAccumulatorEmptySample(t *testing.T) {
	for _, sys := range allSystems(16) {
		acc := sys.NewAccumulator()
		stream := []int64{3, 9, 9, 14}
		for _, x := range stream {
			acc.AddStream(x)
		}
		requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, nil), stream, nil)

		// Drain an added-then-removed sample: must match again.
		acc.AddSample(9)
		acc.AddSample(3)
		acc.RemoveSample(9)
		acc.RemoveSample(3)
		requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, nil), stream, nil)
	}
}

func TestAccumulatorEmptyStream(t *testing.T) {
	for _, sys := range allSystems(16) {
		acc := sys.NewAccumulator()
		if d := acc.Max(); d != (Discrepancy{}) {
			t.Fatalf("%s: empty accumulator discrepancy %v, want zero", sys.Name(), d)
		}
		acc.AddSample(5)
		if d := acc.Max(); d != (Discrepancy{}) {
			t.Fatalf("%s: empty stream discrepancy %v, want zero", sys.Name(), d)
		}
	}
}

func TestAccumulatorPerfectSampleZero(t *testing.T) {
	for _, sys := range allSystems(16) {
		acc := sys.NewAccumulator()
		for _, x := range []int64{2, 5, 5, 11} {
			acc.AddStream(x)
			acc.AddSample(x)
		}
		if d := acc.Max(); d.Err != 0 {
			t.Fatalf("%s: perfect sample error %v, want 0", sys.Name(), d.Err)
		}
	}
}

func TestAccumulatorRemoveAbsentPanics(t *testing.T) {
	acc := NewPrefixes(8).NewAccumulator()
	acc.AddStream(3)
	acc.AddSample(3)
	acc.RemoveSample(3)
	for _, x := range []int64{3, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RemoveSample(%d) of absent element should panic", x)
				}
			}()
			acc.RemoveSample(x)
		}()
	}
}

// TestAccumulatorReset checks that a reset accumulator behaves like a fresh
// one, including its lazily merged sorted order.
func TestAccumulatorReset(t *testing.T) {
	sys := NewIntervals(32)
	acc := sys.NewAccumulator()
	for _, x := range []int64{7, 7, 20, 3} {
		acc.AddStream(x)
	}
	acc.AddSample(20)
	acc.Max()
	acc.Reset()
	if acc.StreamLen() != 0 || acc.SampleLen() != 0 {
		t.Fatal("reset accumulator not empty")
	}
	stream := []int64{4, 8, 8}
	sample := []int64{8}
	for _, x := range stream {
		acc.AddStream(x)
	}
	for _, x := range sample {
		acc.AddSample(x)
	}
	requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, sample), stream, sample)
}

// TestAccumulatorInterleavedMax verifies that calling Max between every
// update (forcing incremental pending merges of size one) agrees with a
// single batch evaluation.
func TestAccumulatorInterleavedMax(t *testing.T) {
	r := rng.New(7)
	for _, sys := range allSystems(20) {
		acc := sys.NewAccumulator()
		var stream, sample []int64
		for i := 0; i < 50; i++ {
			x := 1 + r.Int63n(20)
			stream = append(stream, x)
			acc.AddStream(x)
			if i%3 == 0 {
				sample = append(sample, x)
				acc.AddSample(x)
			}
			requireEqual(t, sys, acc.Max(), sys.MaxDiscrepancy(stream, sample), stream, sample)
		}
	}
}

func BenchmarkAccumulatorCheckpoint(b *testing.B) {
	// One checkpoint evaluation over a large accumulated stream: the cost
	// the incremental engine pays where cdfScan would re-sort the prefix.
	r := rng.New(1)
	sys := NewPrefixes(1 << 20)
	acc := sys.NewAccumulator()
	for i := 0; i < 100000; i++ {
		acc.AddStream(1 + r.Int63n(1<<20))
	}
	for i := 0; i < 1000; i++ {
		acc.AddSample(1 + r.Int63n(1<<20))
	}
	acc.Max()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.AddStream(1 + r.Int63n(1<<20))
		acc.Max()
	}
}
