package setsystem

import (
	"testing"

	"robustsample/internal/rng"
)

// TestMergeFromEqualsDirectIngest splits one stream/sample pair across
// several accumulators, folds them into one, and requires the merged verdict
// to equal — bit for bit — both a single accumulator fed everything and the
// one-shot MaxDiscrepancy, for all four set systems. Interleaved Max calls
// force block placement on some sources and targets so the merge exercises
// both placed and pending slots.
func TestMergeFromEqualsDirectIngest(t *testing.T) {
	const universe = 256
	const parts = 4
	r := rng.New(31)
	for _, sys := range []SetSystem{
		NewPrefixes(universe), NewIntervals(universe),
		NewSingletons(universe), NewSuffixes(universe),
	} {
		t.Run(sys.Name(), func(t *testing.T) {
			direct := sys.NewAccumulator()
			srcs := make([]*Accumulator, parts)
			for i := range srcs {
				srcs[i] = sys.NewAccumulator()
			}
			var stream, sample []int64
			for i := 0; i < 3000; i++ {
				x := 1 + r.Int63n(universe)
				p := r.Intn(parts)
				srcs[p].AddStream(x)
				direct.AddStream(x)
				stream = append(stream, x)
				if r.Float64() < 0.2 {
					srcs[p].AddSample(x)
					direct.AddSample(x)
					sample = append(sample, x)
				}
				if i == 1000 {
					// Force block placement on part 0 and the target.
					srcs[0].Max()
					direct.Max()
				}
			}
			merged := sys.NewAccumulator()
			for _, s := range srcs {
				merged.MergeFrom(s)
			}
			got := merged.Max()
			if want := direct.Max(); got != want {
				t.Fatalf("merged %+v != direct %+v", got, want)
			}
			if want := sys.MaxDiscrepancy(stream, sample); got != want {
				t.Fatalf("merged %+v != one-shot %+v", got, want)
			}
			if merged.StreamLen() != len(stream) || merged.SampleLen() != len(sample) {
				t.Fatalf("merged sizes %d/%d, want %d/%d",
					merged.StreamLen(), merged.SampleLen(), len(stream), len(sample))
			}
		})
	}
}

// TestMergeFromIntoNonEmptyPlacedTarget merges into an accumulator that
// already holds mass in placed blocks, including overlapping values, and
// checks against direct ingest.
func TestMergeFromIntoNonEmptyPlacedTarget(t *testing.T) {
	sys := NewIntervals(1 << 20)
	r := rng.New(7)
	target := sys.NewAccumulator()
	direct := sys.NewAccumulator()
	var stream, sample []int64
	add := func(a *Accumulator, x int64, inSample bool) {
		a.AddStream(x)
		if inSample {
			a.AddSample(x)
		}
	}
	for i := 0; i < 2000; i++ {
		x := 1 + r.Int63n(1<<20)
		s := r.Float64() < 0.1
		add(target, x, s)
		add(direct, x, s)
		stream = append(stream, x)
		if s {
			sample = append(sample, x)
		}
	}
	target.Max() // place the target's blocks before merging
	src := sys.NewAccumulator()
	for i := 0; i < 2000; i++ {
		// Half overlapping values, half fresh.
		x := 1 + r.Int63n(1<<21)
		s := r.Float64() < 0.1
		add(src, x, s)
		add(direct, x, s)
		stream = append(stream, x)
		if s {
			sample = append(sample, x)
		}
	}
	target.MergeFrom(src)
	got := target.Max()
	if want := direct.Max(); got != want {
		t.Fatalf("merged %+v != direct %+v", got, want)
	}
	if want := sys.MaxDiscrepancy(stream, sample); got != want {
		t.Fatalf("merged %+v != one-shot %+v", got, want)
	}
}

// TestMergeFromSourceWithEvictions checks that slots whose sample copies
// were all removed (the reservoir eviction path) merge correctly, and that
// all-zero slots are skipped without perturbing the target.
func TestMergeFromSourceWithEvictions(t *testing.T) {
	sys := NewPrefixes(100)
	src := sys.NewAccumulator()
	src.AddStream(5)
	src.AddSample(5)
	src.AddSample(9) // sample-only slot...
	src.RemoveSample(9)
	// ...now an all-zero slot: cx == 0 and cs == 0 for value 9.
	src.RemoveSample(5)
	src.AddSample(7)
	src.AddStream(7)

	target := sys.NewAccumulator()
	target.AddStream(3)
	target.AddSample(3)
	target.MergeFrom(src)
	got := target.Max()
	want := sys.MaxDiscrepancy([]int64{3, 5, 7}, []int64{3, 7})
	if got != want {
		t.Fatalf("merged %+v != one-shot %+v", got, want)
	}
}

// TestMergeFromAfterReset reuses a merged target across games via Reset,
// mirroring how the shard coordinator reuses one scratch engine per
// checkpoint.
func TestMergeFromAfterReset(t *testing.T) {
	sys := NewSuffixes(512)
	target := sys.NewAccumulator()
	a := sys.NewAccumulator()
	b := sys.NewAccumulator()
	r := rng.New(13)
	for game := 0; game < 5; game++ {
		a.Reset()
		b.Reset()
		target.Reset()
		var stream, sample []int64
		for i := 0; i < 800; i++ {
			x := 1 + r.Int63n(512)
			dst := a
			if i%2 == 1 {
				dst = b
			}
			dst.AddStream(x)
			stream = append(stream, x)
			if x%5 == 0 {
				dst.AddSample(x)
				sample = append(sample, x)
			}
		}
		target.MergeFrom(a)
		target.MergeFrom(b)
		got := target.Max()
		if want := sys.MaxDiscrepancy(stream, sample); got != want {
			t.Fatalf("game %d: merged %+v != one-shot %+v", game, got, want)
		}
	}
}

func TestMergeFromValidation(t *testing.T) {
	p := NewPrefixes(10)
	a := p.NewAccumulator()
	for name, f := range map[string]func(){ //robust:nondet subtest table; each case is independent of order

		"nil source":        func() { a.MergeFrom(nil) },
		"aliased source":    func() { a.MergeFrom(a) },
		"mode mismatch":     func() { a.MergeFrom(NewIntervals(10).NewAccumulator()) },
		"universe mismatch": func() { a.MergeFrom(NewPrefixes(11).NewAccumulator()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestCopyFromMatchesSource pins the read-barrier copy hook: after
// CopyFrom, the copy's verdict is bit-identical to the source's, the
// source is untouched, and the copy then evolves independently.
func TestCopyFromMatchesSource(t *testing.T) {
	r := rng.New(55)
	for _, sys := range []SetSystem{NewPrefixes(64), NewIntervals(64), NewSingletons(64), NewSuffixes(64)} {
		src := sys.NewAccumulator()
		dst := sys.NewAccumulator()
		for i := 0; i < 500; i++ {
			x := 1 + r.Int63n(64)
			src.AddStream(x)
			if i%3 == 0 {
				src.AddSample(x)
			}
		}
		// A reused destination must be fully overwritten.
		dst.AddStream(7)
		dst.AddSample(7)
		dst.CopyFrom(src)
		want := src.Max()
		if got := dst.Max(); got != want {
			t.Fatalf("%T: copy verdict %v, source %v", sys, got, want)
		}
		if got := src.Max(); got != want {
			t.Fatalf("%T: CopyFrom perturbed the source: %v vs %v", sys, got, want)
		}
		// Independent evolution: mutating the copy leaves the source alone.
		dst.AddStream(1)
		if got := src.Max(); got != want {
			t.Fatalf("%T: copy mutation leaked into the source", sys)
		}
		if src.StreamLen() == dst.StreamLen() {
			t.Fatalf("%T: copy did not diverge after mutation", sys)
		}
	}
}
