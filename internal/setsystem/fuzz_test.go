package setsystem

import (
	"math"
	"testing"
)

// decodeSeq turns fuzz bytes into a sequence over [1, 16].
func decodeSeq(data []byte) []int64 {
	out := make([]int64, 0, len(data))
	for _, b := range data {
		out = append(out, int64(b%16)+1)
	}
	return out
}

// FuzzIntervalDiscrepancyMatchesBrute cross-checks the O((n+s) log) interval
// discrepancy against the quadratic brute-force oracle on arbitrary inputs.
func FuzzIntervalDiscrepancyMatchesBrute(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2})
	f.Add([]byte{}, []byte{5})
	f.Add([]byte{7, 7, 7, 7}, []byte{7, 9})
	f.Add([]byte{0, 255, 128}, []byte{})
	f.Fuzz(func(t *testing.T, streamRaw, sampleRaw []byte) {
		if len(streamRaw) > 64 || len(sampleRaw) > 32 {
			return
		}
		stream := decodeSeq(streamRaw)
		sample := decodeSeq(sampleRaw)
		fast := NewIntervals(16).MaxDiscrepancy(stream, sample)
		brute := BruteMaxDiscrepancy(16, stream, sample)
		if math.Abs(fast.Err-brute.Err) > 1e-9 {
			t.Fatalf("fast %v != brute %v (stream=%v sample=%v)",
				fast.Err, brute.Err, stream, sample)
		}
		if fast.Err < 0 || fast.Err > 1+1e-12 {
			t.Fatalf("discrepancy out of [0,1]: %v", fast.Err)
		}
		// Witness must achieve the reported error.
		if len(stream) > 0 {
			got := math.Abs(Density(stream, fast.Lo, fast.Hi) - Density(sample, fast.Lo, fast.Hi))
			if math.Abs(got-fast.Err) > 1e-9 {
				t.Fatalf("witness [%d,%d] achieves %v, reported %v",
					fast.Lo, fast.Hi, got, fast.Err)
			}
		}
	})
}

// FuzzAccumulatorParity drives a random AddStream/AddSample/RemoveSample/Max
// sequence decoded from fuzz bytes through the incremental block/hull engine
// and demands bit-exact parity — error AND witness — with the one-shot
// MaxDiscrepancy, for all four set systems. Small forced block lengths keep
// the multi-block machinery (offset pass, hull queries, splits, witness
// rescans) in play even on short inputs.
func FuzzAccumulatorParity(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0xc4, 0x05, 0x46})
	f.Add([]byte{0x81, 0x81, 0x81, 0x41, 0x01})
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80, 0x3c, 0xbd, 0xbd})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			return
		}
		const universe = 32
		systems := []SetSystem{
			NewPrefixes(universe), NewIntervals(universe),
			NewSingletons(universe), NewSuffixes(universe),
		}
		for _, sys := range systems {
			acc := sys.NewAccumulator()
			acc.blockB = 3
			var stream, sample []int64
			for i, b := range data {
				x := int64(b&0x1f) + 1 // value in [1, 32]
				switch op := b >> 5; {
				case op <= 3: // AddStream (weighted: streams dominate)
					stream = append(stream, x)
					acc.AddStream(x)
				case op <= 5: // AddSample
					sample = append(sample, x)
					acc.AddSample(x)
				case op == 6: // RemoveSample of an existing element
					if len(sample) > 0 {
						j := i % len(sample)
						acc.RemoveSample(sample[j])
						sample[j] = sample[len(sample)-1]
						sample = sample[:len(sample)-1]
					}
				default: // checkpoint
					checkParity(t, sys, acc, stream, sample)
				}
			}
			checkParity(t, sys, acc, stream, sample)
		}
	})
}

// checkParity demands bit-exact agreement between the incremental engine and
// the one-shot on the current multisets. The empty stream is the one pinned
// divergence: both report error 0, but the accumulator returns the zero
// Discrepancy while the one-shot suffix system reports a degenerate [1, N]
// witness — so witnesses are only compared once the stream is non-empty.
func checkParity(t *testing.T, sys SetSystem, acc *Accumulator, stream, sample []int64) {
	t.Helper()
	got, want := acc.Max(), sys.MaxDiscrepancy(stream, sample)
	if len(stream) == 0 {
		if got.Err != want.Err {
			t.Fatalf("%s: empty-stream err %v != one-shot %v", sys.Name(), got.Err, want.Err)
		}
		return
	}
	if got != want {
		t.Fatalf("%s: accumulator %v != one-shot %v (stream=%v sample=%v)",
			sys.Name(), got, want, stream, sample)
	}
}

// FuzzPrefixDiscrepancyMatchesBrute is the prefix-system analogue.
func FuzzPrefixDiscrepancyMatchesBrute(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2})
	f.Add([]byte{9}, []byte{})
	f.Fuzz(func(t *testing.T, streamRaw, sampleRaw []byte) {
		if len(streamRaw) > 64 || len(sampleRaw) > 32 {
			return
		}
		stream := decodeSeq(streamRaw)
		sample := decodeSeq(sampleRaw)
		fast := NewPrefixes(16).MaxDiscrepancy(stream, sample)
		brute := BrutePrefixDiscrepancy(16, stream, sample)
		if math.Abs(fast.Err-brute.Err) > 1e-9 {
			t.Fatalf("fast %v != brute %v (stream=%v sample=%v)",
				fast.Err, brute.Err, stream, sample)
		}
	})
}
