package setsystem

import (
	"math"
	"testing"
)

// decodeSeq turns fuzz bytes into a sequence over [1, 16].
func decodeSeq(data []byte) []int64 {
	out := make([]int64, 0, len(data))
	for _, b := range data {
		out = append(out, int64(b%16)+1)
	}
	return out
}

// FuzzIntervalDiscrepancyMatchesBrute cross-checks the O((n+s) log) interval
// discrepancy against the quadratic brute-force oracle on arbitrary inputs.
func FuzzIntervalDiscrepancyMatchesBrute(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2})
	f.Add([]byte{}, []byte{5})
	f.Add([]byte{7, 7, 7, 7}, []byte{7, 9})
	f.Add([]byte{0, 255, 128}, []byte{})
	f.Fuzz(func(t *testing.T, streamRaw, sampleRaw []byte) {
		if len(streamRaw) > 64 || len(sampleRaw) > 32 {
			return
		}
		stream := decodeSeq(streamRaw)
		sample := decodeSeq(sampleRaw)
		fast := NewIntervals(16).MaxDiscrepancy(stream, sample)
		brute := BruteMaxDiscrepancy(16, stream, sample)
		if math.Abs(fast.Err-brute.Err) > 1e-9 {
			t.Fatalf("fast %v != brute %v (stream=%v sample=%v)",
				fast.Err, brute.Err, stream, sample)
		}
		if fast.Err < 0 || fast.Err > 1+1e-12 {
			t.Fatalf("discrepancy out of [0,1]: %v", fast.Err)
		}
		// Witness must achieve the reported error.
		if len(stream) > 0 {
			got := math.Abs(Density(stream, fast.Lo, fast.Hi) - Density(sample, fast.Lo, fast.Hi))
			if math.Abs(got-fast.Err) > 1e-9 {
				t.Fatalf("witness [%d,%d] achieves %v, reported %v",
					fast.Lo, fast.Hi, got, fast.Err)
			}
		}
	})
}

// FuzzPrefixDiscrepancyMatchesBrute is the prefix-system analogue.
func FuzzPrefixDiscrepancyMatchesBrute(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2})
	f.Add([]byte{9}, []byte{})
	f.Fuzz(func(t *testing.T, streamRaw, sampleRaw []byte) {
		if len(streamRaw) > 64 || len(sampleRaw) > 32 {
			return
		}
		stream := decodeSeq(streamRaw)
		sample := decodeSeq(sampleRaw)
		fast := NewPrefixes(16).MaxDiscrepancy(stream, sample)
		brute := BrutePrefixDiscrepancy(16, stream, sample)
		if math.Abs(fast.Err-brute.Err) > 1e-9 {
			t.Fatalf("fast %v != brute %v (stream=%v sample=%v)",
				fast.Err, brute.Err, stream, sample)
		}
	})
}
