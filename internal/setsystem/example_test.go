package setsystem_test

import (
	"fmt"

	"robustsample/internal/setsystem"
)

// The incremental engine tracks the exact Definition-1.1 discrepancy of a
// growing stream against a changing sample, answering each checkpoint in
// time sublinear in the number of distinct values — and always bit-identical
// to the one-shot MaxDiscrepancy on the same multisets.
func ExamplePrefixes_NewAccumulator() {
	sys := setsystem.NewPrefixes(100)
	acc := sys.NewAccumulator()

	// Stream 1..10, sampling the even values: the worst prefix is [1, 1],
	// which holds 1/10 of the stream but none of the sample.
	for x := int64(1); x <= 10; x++ {
		acc.AddStream(x)
		if x%2 == 0 {
			acc.AddSample(x)
		}
	}
	fmt.Println("incremental:", acc.Max())

	// The sample evolves in place (a reservoir eviction swaps 2 for 9),
	// and the verdict updates without re-reading the stream: [1, 3] now
	// holds 3/10 of the stream and none of the sample.
	acc.RemoveSample(2)
	acc.AddSample(9)
	fmt.Println("after evict:", acc.Max())

	// Bit-identical to the one-shot computation on equal multisets.
	d := sys.MaxDiscrepancy(
		[]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		[]int64{4, 6, 8, 9, 10},
	)
	fmt.Println("one-shot:   ", d)
	// Output:
	// incremental: err=0.10000 witness=[1,1]
	// after evict: err=0.30000 witness=[1,3]
	// one-shot:    err=0.30000 witness=[1,3]
}
