package setsystem

import (
	"bytes"
	"errors"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/snapshot"
)

func allSystemsSnap() []SetSystem {
	return []SetSystem{
		NewPrefixes(1 << 16),
		NewIntervals(1 << 16),
		NewSingletons(1 << 16),
		NewSuffixes(1 << 16),
	}
}

// TestAccumulatorSnapshotRoundTrip checks all three snapshot laws on every
// set system: bit-identical re-snapshot, bit-identical verdicts, and
// bit-identical continuation after further updates.
func TestAccumulatorSnapshotRoundTrip(t *testing.T) {
	for _, sys := range allSystemsSnap() {
		t.Run(sys.Name(), func(t *testing.T) {
			r := rng.New(9)
			acc := sys.NewAccumulator()
			var sample []int64
			for i := 0; i < 2000; i++ {
				x := 1 + r.Int63n(4096)
				acc.AddStream(x)
				if r.Bernoulli(0.1) {
					acc.AddSample(x)
					sample = append(sample, x)
				}
				// Occasional evictions exercise RemoveSample state.
				if len(sample) > 0 && r.Bernoulli(0.02) {
					j := r.Intn(len(sample))
					acc.RemoveSample(sample[j])
					sample[j] = sample[len(sample)-1]
					sample = sample[:len(sample)-1]
				}
			}
			// A verdict before snapshotting populates block state, which
			// must NOT leak into the encoding.
			before := acc.Max()

			s1 := acc.AppendSnapshot(nil)
			fresh := sys.NewAccumulator()
			if err := fresh.LoadSnapshot(snapshot.NewReader(s1)); err != nil {
				t.Fatal(err)
			}
			if s2 := fresh.AppendSnapshot(nil); !bytes.Equal(s1, s2) {
				t.Fatal("snapshot not bit-identical after restore")
			}
			after := fresh.Max()
			if before != after {
				t.Fatalf("restored verdict %v != original %v", after, before)
			}
			if fresh.StreamLen() != acc.StreamLen() || fresh.SampleLen() != acc.SampleLen() {
				t.Fatal("restored multiset sizes differ")
			}

			// Continuation: identical updates give identical verdicts.
			more := rng.New(21)
			for i := 0; i < 500; i++ {
				x := 1 + more.Int63n(4096)
				acc.AddStream(x)
				fresh.AddStream(x)
				if more.Bernoulli(0.2) {
					acc.AddSample(x)
					fresh.AddSample(x)
				}
			}
			if a, b := acc.Max(), fresh.Max(); a != b {
				t.Fatalf("continuation diverged: %v != %v", b, a)
			}
		})
	}
}

func TestAccumulatorSnapshotSystemMismatch(t *testing.T) {
	acc := NewPrefixes(100).NewAccumulator()
	acc.AddStream(7)
	snap := acc.AppendSnapshot(nil)

	wrongMode := NewIntervals(100).NewAccumulator()
	if err := wrongMode.LoadSnapshot(snapshot.NewReader(snap)); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("mode mismatch err = %v, want ErrCorrupt", err)
	}
	wrongUniverse := NewPrefixes(200).NewAccumulator()
	if err := wrongUniverse.LoadSnapshot(snapshot.NewReader(snap)); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("universe mismatch err = %v, want ErrCorrupt", err)
	}
}

func TestAccumulatorSnapshotCorrupt(t *testing.T) {
	acc := NewPrefixes(100).NewAccumulator()
	for i := int64(1); i <= 20; i++ {
		acc.AddStream(i)
		acc.AddSample(i)
	}
	snap := acc.AppendSnapshot(nil)
	for _, cut := range []int{0, 5, len(snap) - 1} {
		fresh := NewPrefixes(100).NewAccumulator()
		if err := fresh.LoadSnapshot(snapshot.NewReader(snap[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
		// A failed load leaves an empty, usable accumulator.
		if fresh.StreamLen() != 0 || fresh.SampleLen() != 0 {
			t.Fatal("failed load left partial state")
		}
	}
}
