// Incremental discrepancy engine, block/convex-hull edition.
//
// The continuous adaptive game (Figure 2) re-evaluates the exact
// eps-approximation error at many checkpoints of the same growing stream.
// The first incremental engine replaced per-checkpoint re-sorts with
// coordinate-compressed histograms and a single sweep over distinct values —
// O(U) per verdict for U distinct values. This version makes the verdict
// itself sublinear: distinct values are grouped into ~sqrt(U) sorted blocks,
// and each block caches the upper and lower convex hulls of its local
// cumulative-count points
//
//	P_j = (Cs_local(j), Cx_local(j))
//
// (prefix sums of the sample/stream multiplicities within the block). The
// quantity the verdict extremizes,
//
//	num(t) = Cx(t)*|S| - Cs(t)*|X|,
//
// is linear in P with global coefficients (|S|, -|X|), so its restriction to
// one block is a per-checkpoint constant (the block-offset part, computed by
// one prefix pass over block totals) plus a linear functional of the local
// point — and a linear functional is extremized over a point set at a vertex
// of its convex hull, found by binary search along the hull. A verdict
// therefore costs O(dirty*B + (U/B)*log B): only blocks whose counts
// changed since the last checkpoint pay O(B), and clean blocks answer in
// O(log B).
//
// Hull building follows a hysteresis rule: a block touched since the last
// checkpoint is answered by a direct O(B) sweep (the flat engine's cost,
// confined to the block — building a hull that the next update would
// invalidate is wasted work), and its hulls are (re)built only at the first
// checkpoint that finds the block unchanged, i.e. once the investment can
// be amortized over future O(log B) queries. Checkpoint-dense runs — the
// regime this engine targets — leave most blocks untouched between
// verdicts, so almost every block answers from a cached hull; span-heavy
// runs degrade gracefully to the flat sweep, never worse than it.
//
// Exactness is preserved bit-for-bit with the one-shot MaxDiscrepancy: all
// extrema are integer comparisons of the same num(t) values the sweep
// computes (hull arithmetic is exact int64), witness ties are resolved by
// rescanning the first block that attains the global extremum — reproducing
// the sweep's first-position-wins rule literally — and the single float
// division happens identically. Max() returns the same Discrepancy (error
// AND witness) as MaxDiscrepancy on the equivalent multisets, for all four
// set systems.
package setsystem

import (
	"math"
	"slices"
)

// accMode selects which set system's supremum an Accumulator computes.
type accMode int

const (
	accPrefixes accMode = iota
	accIntervals
	accSingletons
	accSuffixes
)

// hullPoint is one local cumulative-count point (x = Cs_local, y = Cx_local);
// in singleton mode, one per-value point (x = cs, y = cx).
type hullPoint struct{ x, y int64 }

// accBlock is one block of the sqrt-decomposition: a run of consecutive
// distinct values (sorted slots) with cached aggregates and convex hulls.
type accBlock struct {
	slots []int32 // compression slots, ascending by value

	// Aggregates maintained O(1) per update; the verdict's prefix pass
	// turns them into block offsets without touching the slots.
	sumCx int64 // total stream multiplicity in the block
	sumCs int64 // total sample multiplicity in the block
	nzCx  int   // number of slots with cx > 0
	maxCx int64 // max per-slot cx (monotone: streams only grow)

	touched   bool // counts changed since the last verdict
	hullValid bool // upper/lower reflect the current counts

	// upper/lower are the convex hulls of the block's points, built
	// lazily once the block goes quiet (see the hysteresis rule in the
	// package comment): num restricted to the block is maximized on
	// upper and minimized on lower for every checkpoint's (|S|, -|X|).
	upper []hullPoint
	lower []hullPoint
}

// minBlockLen floors the block-length target so tiny accumulators keep one
// flat block (a plain sweep) instead of pathological 1-element blocks.
const minBlockLen = 64

// Accumulator incrementally maintains the exact discrepancy between a stream
// and a sample multiset for one set system. Elements enter the stream via
// AddStream/AddStreamBatch and enter/leave the sample via
// AddSample/RemoveSample (the reservoir eviction path), each in O(1)
// expected time; Max returns the exact Discrepancy of the current multisets
// in time sublinear in the number of distinct values (see the package
// comment).
//
// The zero value is not valid; obtain one from SetSystem.NewAccumulator.
// An Accumulator is not safe for concurrent use.
type Accumulator struct {
	mode     accMode
	universe int64

	// Coordinate compression: every distinct value ever seen gets a slot.
	// The index is a bespoke epoch-stamped open-addressing table: lookups
	// cost one multiply-hash and usually one probe, and Reset invalidates
	// every entry with a single epoch bump instead of a map clear — both
	// matter because the index sits on the per-element hot path.
	index accIndex
	vals  []int64 // slot -> value
	cx    []int64 // slot -> multiplicity in the stream
	cs    []int64 // slot -> multiplicity in the sample

	// Block decomposition over slots sorted by value. Slots created since
	// the last Max wait in pending (blockOf nil) so updates stay O(1);
	// Max distributes them into blocks, splitting oversized ones.
	blocks    []*accBlock
	blockOf   []*accBlock // slot -> owning block, nil while pending
	pending   []int32
	blockB    int         // target block length, grown toward sqrt(distinct)
	blockPool []*accBlock // retired blocks recycled by Reset/splits

	// Scratch buffers reused across Max calls (no steady-state allocs).
	ptScratch   []hullPoint
	packScratch []uint64 // packed (value, slot) pairs for closure-free sorts
	radixBuf    []uint64 // radix-sort ping-pong buffer
	bmax, bmin  []int64  // per-block extrema of num for the current verdict

	// unpackable is set once any value falls outside [0, 2^31): such
	// values cannot share a word with a slot id, so pending sorts fall
	// back to the comparator path.
	unpackable bool

	nx, ns int64 // |X|, |S|
}

func newAccumulator(mode accMode, universe int64) *Accumulator {
	a := &Accumulator{
		mode:     mode,
		universe: universe,
		blockB:   minBlockLen,
	}
	a.index.init(16)
	return a
}

// NewAccumulator returns an empty incremental engine for the prefix system.
func (p Prefixes) NewAccumulator() *Accumulator { return newAccumulator(accPrefixes, p.n) }

// NewAccumulator returns an empty incremental engine for the interval system.
func (iv Intervals) NewAccumulator() *Accumulator { return newAccumulator(accIntervals, iv.n) }

// NewAccumulator returns an empty incremental engine for the singleton system.
func (s Singletons) NewAccumulator() *Accumulator { return newAccumulator(accSingletons, s.n) }

// NewAccumulator returns an empty incremental engine for the suffix system.
func (s Suffixes) NewAccumulator() *Accumulator { return newAccumulator(accSuffixes, s.n) }

// Reserve pre-sizes the compression tables for approximately distinct
// distinct values, avoiding incremental map growth on the per-element hot
// path, and fixes the block-length target at ~sqrt(distinct) up front. It is
// a no-op unless the accumulator is still empty; on a Reset accumulator it
// re-allocates only what the previous run's capacity cannot already serve,
// so Monte-Carlo drivers reusing one engine across games allocate nothing
// in steady state.
func (a *Accumulator) Reserve(distinct int) {
	if distinct <= 0 || len(a.vals) > 0 || a.index.live > 0 {
		return
	}
	if 2*distinct > len(a.index.keys) {
		a.index.init(distinct)
	}
	if cap(a.vals) < distinct {
		a.vals = make([]int64, 0, distinct)
		a.cx = make([]int64, 0, distinct)
		a.cs = make([]int64, 0, distinct)
		a.blockOf = make([]*accBlock, 0, distinct)
		a.pending = make([]int32, 0, distinct)
	}
	if b := int(math.Sqrt(float64(distinct))); b > a.blockB {
		a.blockB = b
	}
}

// accIndex is the value -> slot table: open addressing with linear probing,
// SplitMix-style multiply hashing, and epoch-stamped entries so that
// invalidating the whole table (a new game on a reused accumulator) is one
// epoch bump. A stale entry behaves exactly like an empty one; within an
// epoch this is standard linear probing with no deletions.
type accIndex struct {
	keys  []int64
	meta  []uint64 // epoch<<32 | slot; live iff epoch matches
	mask  uint64
	epoch uint64 // current epoch, pre-shifted into the meta layout
	live  int    // entries inserted this epoch (for the growth threshold)
}

func hashKey(x int64) uint64 {
	h := uint64(x)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func (ix *accIndex) init(capacity int) {
	size := 16
	for size < 2*capacity {
		size <<= 1
	}
	ix.keys = make([]int64, size)
	ix.meta = make([]uint64, size)
	ix.mask = uint64(size - 1)
	ix.epoch = 1 << 32
	ix.live = 0
}

// reset invalidates every entry in O(1); the table is re-zeroed only when
// the 32-bit epoch wraps.
func (ix *accIndex) reset() {
	if ix.keys == nil {
		ix.init(16)
		return
	}
	ix.epoch += 1 << 32
	if ix.epoch>>32 == 0 {
		clear(ix.meta)
		ix.epoch = 1 << 32
	}
	ix.live = 0
}

func (ix *accIndex) lookup(x int64) (int32, bool) {
	for h := hashKey(x) & ix.mask; ; h = (h + 1) & ix.mask {
		m := ix.meta[h]
		if m>>32 != ix.epoch>>32 {
			return 0, false
		}
		if ix.keys[h] == x {
			return int32(uint32(m)), true
		}
	}
}

// insert adds x -> slot; x must not be present this epoch.
func (ix *accIndex) insert(x int64, slot int32) {
	if ix.live >= len(ix.keys)*3/4 {
		ix.grow()
	}
	h := hashKey(x) & ix.mask
	for ix.meta[h]>>32 == ix.epoch>>32 {
		h = (h + 1) & ix.mask
	}
	ix.keys[h] = x
	ix.meta[h] = ix.epoch | uint64(uint32(slot))
	ix.live++
}

func (ix *accIndex) grow() {
	oldKeys, oldMeta, oldEpoch := ix.keys, ix.meta, ix.epoch>>32
	ix.init(len(oldKeys)) // doubles: init sizes to 2*capacity
	for i, m := range oldMeta {
		if m>>32 == oldEpoch {
			h := hashKey(oldKeys[i]) & ix.mask
			for ix.meta[h]>>32 == ix.epoch>>32 {
				h = (h + 1) & ix.mask
			}
			ix.keys[h] = oldKeys[i]
			ix.meta[h] = ix.epoch | uint64(uint32(m))
			ix.live++
		}
	}
}

// slot returns the compression slot for x, creating one on first sight.
func (a *Accumulator) slot(x int64) int32 {
	if i, ok := a.index.lookup(x); ok {
		return i
	}
	i := int32(len(a.vals))
	if x < 0 || x >= 1<<31 {
		a.unpackable = true
	}
	a.vals = append(a.vals, x)
	a.cx = append(a.cx, 0)
	a.cs = append(a.cs, 0)
	a.blockOf = append(a.blockOf, nil)
	a.pending = append(a.pending, i)
	a.index.insert(x, i)
	return i
}

// AddStream appends one element to the stream multiset.
func (a *Accumulator) AddStream(x int64) {
	s := a.slot(x)
	a.cx[s]++
	a.nx++
	if b := a.blockOf[s]; b != nil {
		b.sumCx++
		if a.cx[s] == 1 {
			b.nzCx++
		}
		if a.cx[s] > b.maxCx {
			b.maxCx = a.cx[s]
		}
		b.touched = true
		b.hullValid = false
	}
}

// AddStreamBatch appends a run of consecutive stream elements. It is the
// bulk-ingest form of AddStream used by the batched span loop of the
// continuous game; semantically identical to calling AddStream in order.
//
//robust:hotpath
func (a *Accumulator) AddStreamBatch(xs []int64) {
	for _, x := range xs {
		a.AddStream(x)
	}
}

// AddStreamAndSampleBatch ingests a run of elements into BOTH multisets:
// equivalent to AddStream(x) plus AddSample(x) for each element, at one
// index lookup instead of two. The continuous game uses it for spans where
// the sampler admitted every element with no evictions (a filling
// reservoir), which is where high-rate samplers spend most of their rounds.
//
//robust:hotpath
func (a *Accumulator) AddStreamAndSampleBatch(xs []int64) {
	for _, x := range xs {
		s := a.slot(x)
		a.cx[s]++
		a.cs[s]++
		if b := a.blockOf[s]; b != nil {
			b.sumCx++
			b.sumCs++
			if a.cx[s] == 1 {
				b.nzCx++
			}
			if a.cx[s] > b.maxCx {
				b.maxCx = a.cx[s]
			}
			b.touched = true
			b.hullValid = false
		}
	}
	a.nx += int64(len(xs))
	a.ns += int64(len(xs))
}

// AddSample adds one element to the sample multiset.
func (a *Accumulator) AddSample(x int64) {
	s := a.slot(x)
	a.cs[s]++
	a.ns++
	if b := a.blockOf[s]; b != nil {
		b.sumCs++
		b.touched = true
		b.hullValid = false
	}
}

// RemoveSample removes one copy of x from the sample multiset — the
// reservoir eviction path. It panics if x is not currently in the sample.
func (a *Accumulator) RemoveSample(x int64) {
	i, ok := a.index.lookup(x)
	if !ok || a.cs[i] == 0 {
		panic("setsystem: RemoveSample of element not in sample")
	}
	a.cs[i]--
	a.ns--
	if b := a.blockOf[i]; b != nil {
		b.sumCs--
		b.touched = true
		b.hullValid = false
	}
}

// StreamLen returns the number of stream elements added so far.
func (a *Accumulator) StreamLen() int { return int(a.nx) }

// SampleLen returns the current sample multiset size.
func (a *Accumulator) SampleLen() int { return int(a.ns) }

// Reset clears the accumulator for a fresh stream, retaining allocations:
// the compression tables keep their capacity (index invalidation is one
// epoch bump) and retired blocks (slot and hull storage included) go to a
// free list for the next run's placement, so a reused engine allocates
// nothing in steady state.
func (a *Accumulator) Reset() {
	a.index.reset()
	a.vals = a.vals[:0]
	a.cx = a.cx[:0]
	a.cs = a.cs[:0]
	a.blockPool = append(a.blockPool, a.blocks...)
	a.blocks = a.blocks[:0]
	a.blockOf = a.blockOf[:0]
	a.pending = a.pending[:0]
	a.unpackable = false
	a.nx, a.ns = 0, 0
}

// newBlock returns a cleared block, recycling retired storage when
// available.
func (a *Accumulator) newBlock(slots []int32) *accBlock {
	if n := len(a.blockPool); n > 0 {
		b := a.blockPool[n-1]
		a.blockPool[n-1] = nil
		a.blockPool = a.blockPool[:n-1]
		b.slots = append(b.slots[:0], slots...)
		b.upper = b.upper[:0]
		b.lower = b.lower[:0]
		return b
	}
	return &accBlock{slots: append([]int32(nil), slots...)}
}

// placePending distributes slots created since the last Max into blocks,
// keeping each block's slots sorted by value, then splits oversized blocks.
func (a *Accumulator) placePending() {
	if len(a.pending) == 0 {
		return
	}
	if !a.unpackable {
		// Closure-free sort: pack (value, slot) into one word — values are
		// distinct across slots, so the packed order is the value order —
		// then radix-sort on the value bytes (insertion sort below the
		// radix break-even). This is the hottest part of a verdict after a
		// long span of fresh values.
		buf := a.packScratch[:0]
		for _, s := range a.pending {
			buf = append(buf, uint64(a.vals[s])<<32|uint64(uint32(s)))
		}
		a.packScratch = buf
		a.sortPacked(buf)
		for i, v := range buf {
			a.pending[i] = int32(uint32(v))
		}
	} else {
		slices.SortFunc(a.pending, func(i, j int32) int {
			switch {
			case a.vals[i] < a.vals[j]:
				return -1
			case a.vals[i] > a.vals[j]:
				return 1
			}
			return 0
		})
	}
	if b := int(math.Sqrt(float64(len(a.vals)))); b > a.blockB {
		a.blockB = b
	}
	if len(a.blocks) == 0 {
		for i := 0; i < len(a.pending); i += a.blockB {
			j := min(i+a.blockB, len(a.pending))
			b := a.newBlock(a.pending[i:j])
			a.adoptBlock(b)
			a.blocks = append(a.blocks, b)
		}
		a.pending = a.pending[:0]
		return
	}
	p := 0
	for bi, b := range a.blocks {
		if p >= len(a.pending) {
			break
		}
		hi := len(a.pending)
		if bi < len(a.blocks)-1 {
			// This block takes the pending values at or below its
			// current maximum; the rest belong to later blocks (the
			// last block takes everything above all maxima).
			maxV := a.vals[b.slots[len(b.slots)-1]]
			lo, up := p, len(a.pending)
			for lo < up {
				mid := (lo + up) / 2
				if a.vals[a.pending[mid]] < maxV {
					lo = mid + 1
				} else {
					up = mid
				}
			}
			hi = lo
		}
		if hi == p {
			continue
		}
		a.mergeInto(b, a.pending[p:hi])
		p = hi
	}
	a.pending = a.pending[:0]
	a.splitOversized()
}

// sortPacked sorts packed (value, slot) words ascending: insertion sort for
// short runs, LSD radix over the four value bytes above the break-even.
func (a *Accumulator) sortPacked(buf []uint64) {
	if len(buf) <= 48 {
		for i := 1; i < len(buf); i++ {
			v := buf[i]
			j := i - 1
			for j >= 0 && buf[j] > v {
				buf[j+1] = buf[j]
				j--
			}
			buf[j+1] = v
		}
		return
	}
	if cap(a.radixBuf) < len(buf) {
		a.radixBuf = make([]uint64, len(buf))
	}
	tmp := a.radixBuf[:len(buf)]
	var counts [4][256]int
	for _, v := range buf {
		counts[0][byte(v>>32)]++
		counts[1][byte(v>>40)]++
		counts[2][byte(v>>48)]++
		counts[3][byte(v>>56)]++
	}
	src, dst := buf, tmp
	for pass := 0; pass < 4; pass++ {
		c := &counts[pass]
		pos := 0
		for i := range c {
			n := c[i]
			c[i] = pos
			pos += n
		}
		shift := uint(32 + 8*pass)
		for _, v := range src {
			b := byte(v >> shift)
			dst[c[b]] = v
			c[b]++
		}
		src, dst = dst, src
	}
	// Four passes: the sorted order ends back in buf (src == buf).
}

// mergeInto merges the sorted group of new slots into the block's sorted
// slots — backwards, in place — and folds their counts into the block
// aggregates.
func (a *Accumulator) mergeInto(b *accBlock, group []int32) {
	old := len(b.slots)
	b.slots = append(b.slots, group...)
	i, j := old-1, len(group)-1
	for k := len(b.slots) - 1; j >= 0; k-- {
		if i >= 0 && a.vals[b.slots[i]] > a.vals[group[j]] {
			b.slots[k] = b.slots[i]
			i--
		} else {
			b.slots[k] = group[j]
			j--
		}
	}
	for _, s := range group {
		a.blockOf[s] = b
		b.sumCx += a.cx[s]
		b.sumCs += a.cs[s]
		if a.cx[s] > 0 {
			b.nzCx++
		}
		if a.cx[s] > b.maxCx {
			b.maxCx = a.cx[s]
		}
	}
	b.touched = true
	b.hullValid = false
}

// adoptBlock computes a freshly built block's aggregates and points its
// slots at it; the block starts touched with no valid hulls.
func (a *Accumulator) adoptBlock(b *accBlock) {
	b.sumCx, b.sumCs, b.nzCx, b.maxCx = 0, 0, 0, 0
	b.touched = true
	b.hullValid = false
	for _, s := range b.slots {
		a.blockOf[s] = b
		b.sumCx += a.cx[s]
		b.sumCs += a.cs[s]
		if a.cx[s] > 0 {
			b.nzCx++
		}
		if a.cx[s] > b.maxCx {
			b.maxCx = a.cx[s]
		}
	}
}

// splitOversized splits any block that grew beyond twice the target length
// into target-length blocks, keeping amortized insertion cost O(1) per slot.
func (a *Accumulator) splitOversized() {
	over := false
	for _, b := range a.blocks {
		if len(b.slots) > 2*a.blockB {
			over = true
			break
		}
	}
	if !over {
		return
	}
	newBlocks := make([]*accBlock, 0, len(a.blocks)+4)
	for _, b := range a.blocks {
		if len(b.slots) <= 2*a.blockB {
			newBlocks = append(newBlocks, b)
			continue
		}
		for i := 0; i < len(b.slots); i += a.blockB {
			j := min(i+a.blockB, len(b.slots))
			nb := a.newBlock(b.slots[i:j])
			a.adoptBlock(nb)
			newBlocks = append(newBlocks, nb)
		}
		a.blockPool = append(a.blockPool, b)
	}
	a.blocks = newBlocks
}

// rebuildHulls recomputes a block's convex hulls from its current counts:
// local cumulative (Cs, Cx) prefix points for the CDF systems, per-value
// (cs, cx) points for singletons.
func (a *Accumulator) rebuildHulls(b *accBlock) {
	b.upper = b.upper[:0]
	b.lower = b.lower[:0]
	if a.mode == accSingletons {
		pts := a.ptScratch[:0]
		for _, s := range b.slots {
			pts = append(pts, hullPoint{a.cs[s], a.cx[s]})
		}
		slices.SortFunc(pts, func(p, q hullPoint) int {
			switch {
			case p.x != q.x:
				if p.x < q.x {
					return -1
				}
				return 1
			case p.y != q.y:
				if p.y < q.y {
					return -1
				}
				return 1
			}
			return 0
		})
		for _, p := range pts {
			b.upper = pushUpper(b.upper, p)
			b.lower = pushLower(b.lower, p)
		}
		a.ptScratch = pts
		return
	}
	var px, py int64
	for _, s := range b.slots {
		px += a.cs[s]
		py += a.cx[s]
		b.upper = pushUpper(b.upper, hullPoint{px, py})
		b.lower = pushLower(b.lower, hullPoint{px, py})
	}
}

// cross is the z-component of (a-o) x (b-o): positive for a left turn.
func cross(o, p, q hullPoint) int64 {
	return (p.x-o.x)*(q.y-o.y) - (p.y-o.y)*(q.x-o.x)
}

// pushUpper appends p to an upper hull under construction (points arrive in
// nondecreasing x), popping points that are not strict right turns.
func pushUpper(h []hullPoint, p hullPoint) []hullPoint {
	for len(h) >= 2 && cross(h[len(h)-2], h[len(h)-1], p) >= 0 {
		h = h[:len(h)-1]
	}
	return append(h, p)
}

// pushLower is the lower-hull analogue: pops points that are not strict
// left turns.
func pushLower(h []hullPoint, p hullPoint) []hullPoint {
	for len(h) >= 2 && cross(h[len(h)-2], h[len(h)-1], p) <= 0 {
		h = h[:len(h)-1]
	}
	return append(h, p)
}

// hullMax returns max over the upper hull of s*y - n*x (s, n >= 0). The
// functional along the hull is unimodal (edge slopes strictly decrease), so
// the peak is found by binary search on the edge-difference sign.
func hullMax(h []hullPoint, s, n int64) int64 {
	lo, hi := 0, len(h)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s*(h[mid+1].y-h[mid].y)-n*(h[mid+1].x-h[mid].x) > 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s*h[lo].y - n*h[lo].x
}

// hullMin returns min over the lower hull of s*y - n*x, symmetrically.
func hullMin(h []hullPoint, s, n int64) int64 {
	lo, hi := 0, len(h)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s*(h[mid+1].y-h[mid].y)-n*(h[mid+1].x-h[mid].x) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s*h[lo].y - n*h[lo].x
}

// Witness-rescan kinds: which predicate the first-position scan matches.
const (
	scanNumEquals = iota // first position with num == target
	scanAbsEquals        // first position with |num| == target
	scanCxEquals         // first slot with cx == target (singleton, |S|=0)
	scanAbsPoint         // first slot with |cx*ns - cs*nx| == target
	scanCxNonzero        // first slot with cx > 0 (empty-sample witness)
)

// rescanBlock re-runs the literal sweep inside one block and returns the
// value at the first position satisfying the kind/target predicate. This is
// how witness ties stay bit-identical to the one-shot sweep: the hulls
// locate which block attains a global extremum and its exact value; the
// first position attaining it is then found by the same first-position-wins
// scan the sweep performs.
func (a *Accumulator) rescanBlock(idx int, kind int, target int64) int64 {
	b := a.blocks[idx]
	var offCx, offCs int64
	for i := 0; i < idx; i++ {
		offCx += a.blocks[i].sumCx
		offCs += a.blocks[i].sumCs
	}
	num := a.ns*offCx - a.nx*offCs
	for _, s := range b.slots {
		switch kind {
		case scanNumEquals, scanAbsEquals:
			num += a.cx[s]*a.ns - a.cs[s]*a.nx
			if kind == scanNumEquals && num == target {
				return a.vals[s]
			}
			if kind == scanAbsEquals && abs64(num) == target {
				return a.vals[s]
			}
		case scanCxEquals:
			if a.cx[s] == target {
				return a.vals[s]
			}
		case scanAbsPoint:
			if abs64(a.cx[s]*a.ns-a.cs[s]*a.nx) == target {
				return a.vals[s]
			}
		case scanCxNonzero:
			if a.cx[s] > 0 {
				return a.vals[s]
			}
		}
	}
	panic("setsystem: block witness rescan found no match")
}

// blockExtrema returns the extrema of num over one block's positions for
// the current (|S|, -|X|): from the cached hulls when valid, by a direct
// O(B) sweep when the block changed since the last verdict, and by a hull
// (re)build — investing O(B) once so later verdicts pay O(log B) — when the
// block has gone quiet with stale hulls. c is the block-offset constant
// (ignored in singleton mode, whose deviations do not accumulate).
func (a *Accumulator) blockExtrema(b *accBlock, c int64) (mx, mn int64) {
	if !b.hullValid {
		if b.touched {
			b.touched = false
			if a.mode == accSingletons {
				return a.sweepBlockPoints(b)
			}
			return a.sweepBlockCDF(b, c)
		}
		a.rebuildHulls(b)
		b.hullValid = true
	}
	mx = c + hullMax(b.upper, a.ns, a.nx)
	mn = c + hullMin(b.lower, a.ns, a.nx)
	return mx, mn
}

// sweepBlockCDF is the flat engine confined to one block: accumulate num
// from the block-offset constant and track its extrema over the block's
// positions.
func (a *Accumulator) sweepBlockCDF(b *accBlock, c int64) (mx, mn int64) {
	num := c
	first := true
	for _, s := range b.slots {
		num += a.cx[s]*a.ns - a.cs[s]*a.nx
		if first {
			mx, mn = num, num
			first = false
			continue
		}
		if num > mx {
			mx = num
		}
		if num < mn {
			mn = num
		}
	}
	return mx, mn
}

// sweepBlockPoints is the singleton-mode sweep: extrema of the per-value
// deviation cx*|S| - cs*|X| over the block's slots.
func (a *Accumulator) sweepBlockPoints(b *accBlock) (mx, mn int64) {
	first := true
	for _, s := range b.slots {
		f := a.cx[s]*a.ns - a.cs[s]*a.nx
		if first {
			mx, mn = f, f
			first = false
			continue
		}
		if f > mx {
			mx = f
		}
		if f < mn {
			mn = f
		}
	}
	return mx, mn
}

// Max returns the exact discrepancy of the current stream/sample multisets,
// identical (error and witness) to the set system's MaxDiscrepancy on the
// same contents.
func (a *Accumulator) Max() Discrepancy {
	a.placePending()
	if a.nx == 0 {
		return Discrepancy{}
	}
	if a.mode == accSingletons {
		return a.maxSingletons()
	}
	if a.ns == 0 {
		return a.emptySampleCDF()
	}

	// Per-block extrema of num(t): block-offset constant plus a hull query
	// (or dirty-block sweep) in direction (|S|, -|X|). The scan keeps the
	// FIRST block attaining each global extremum (strict comparisons),
	// mirroring the sweep's first-position-wins updates.
	nb := len(a.blocks)
	if cap(a.bmax) < nb {
		a.bmax = make([]int64, nb)
		a.bmin = make([]int64, nb)
	}
	bmax := a.bmax[:nb]
	bmin := a.bmin[:nb]
	var offCx, offCs int64
	gmaxIdx, gminIdx := -1, -1
	var gmax, gmin int64
	for i, b := range a.blocks {
		c := a.ns*offCx - a.nx*offCs
		mx, mn := a.blockExtrema(b, c)
		bmax[i], bmin[i] = mx, mn
		if gmaxIdx < 0 || mx > gmax {
			gmax, gmaxIdx = mx, i
		}
		if gminIdx < 0 || mn < gmin {
			gmin, gminIdx = mn, i
		}
		offCx += b.sumCx
		offCs += b.sumCs
	}

	// Fold in the sweep's baseline: maxD/minD/bestAbs start at 0 at the
	// virtual position 0 (the empty prefix), witnesses defaulting to 0.
	denom := float64(a.nx) * float64(a.ns)
	switch a.mode {
	case accPrefixes, accSuffixes:
		bestAbs := max(gmax, -gmin, 0)
		var bestAbsAt int64
		if bestAbs > 0 {
			for i := range bmax {
				if bmax[i] == bestAbs || bmin[i] == -bestAbs {
					bestAbsAt = a.rescanBlock(i, scanAbsEquals, bestAbs)
					break
				}
			}
		}
		if a.mode == accPrefixes {
			return Discrepancy{Err: float64(bestAbs) / denom, Lo: 1, Hi: bestAbsAt}
		}
		lo := bestAbsAt + 1
		if lo > a.universe {
			lo = a.universe
		}
		return Discrepancy{Err: float64(bestAbs) / denom, Lo: lo, Hi: a.universe}
	default: // accIntervals
		var maxD, minD, maxAt, minAt int64
		if gmax > 0 {
			maxD = gmax
			maxAt = a.rescanBlock(gmaxIdx, scanNumEquals, gmax)
		}
		if gmin < 0 {
			minD = gmin
			minAt = a.rescanBlock(gminIdx, scanNumEquals, gmin)
		}
		err := float64(maxD-minD) / denom
		lo, hi := minAt+1, maxAt
		if maxAt < minAt {
			lo, hi = maxAt+1, minAt
		}
		if lo > hi {
			lo, hi = 1, 1
		}
		return Discrepancy{Err: err, Lo: lo, Hi: hi}
	}
}

// emptySampleCDF mirrors cdfScan's empty-sample special case: the range
// containing everything has density 1 in the stream and 0 in the sample.
// The min/max stream values come from the first/last blocks holding any
// stream mass, each resolved by one block scan.
func (a *Accumulator) emptySampleCDF() Discrepancy {
	var minV, maxV int64
	for i := 0; i < len(a.blocks); i++ {
		if a.blocks[i].nzCx > 0 {
			minV = a.rescanBlock(i, scanCxNonzero, 0)
			break
		}
	}
	for i := len(a.blocks) - 1; i >= 0; i-- {
		b := a.blocks[i]
		if b.nzCx == 0 {
			continue
		}
		for j := len(b.slots) - 1; j >= 0; j-- {
			if a.cx[b.slots[j]] > 0 {
				maxV = a.vals[b.slots[j]]
				break
			}
		}
		break
	}
	switch a.mode {
	case accIntervals:
		return Discrepancy{Err: 1, Lo: minV, Hi: maxV}
	case accSuffixes:
		lo := maxV + 1
		if lo > a.universe {
			lo = a.universe
		}
		return Discrepancy{Err: 1, Lo: lo, Hi: a.universe}
	default: // accPrefixes
		return Discrepancy{Err: 1, Lo: 1, Hi: maxV}
	}
}

// maxSingletons mirrors Singletons.MaxDiscrepancy: the best value by exact
// integer comparison, ties broken toward the smallest value. Per-value
// deviations are linear in the per-slot point (cs, cx), so block hulls
// answer in O(log B) exactly as in the CDF systems — without offsets, since
// singleton deviations do not accumulate across values.
func (a *Accumulator) maxSingletons() Discrepancy {
	if a.ns == 0 {
		var bestC int64
		idx := -1
		for i, b := range a.blocks {
			if b.maxCx > bestC {
				bestC = b.maxCx
				idx = i
			}
		}
		if idx < 0 {
			return Discrepancy{Err: 0, Lo: 0, Hi: 0}
		}
		at := a.rescanBlock(idx, scanCxEquals, bestC)
		return Discrepancy{Err: float64(bestC) / float64(a.nx), Lo: at, Hi: at}
	}
	var bestNum int64
	idx := -1
	for i, b := range a.blocks {
		mx, mn := a.blockExtrema(b, 0)
		if -mn > mx {
			mx = -mn
		}
		if mx > bestNum {
			bestNum = mx
			idx = i
		}
	}
	if bestNum == 0 {
		// Perfect agreement: identical to the one-shot's zero value.
		return Discrepancy{}
	}
	at := a.rescanBlock(idx, scanAbsPoint, bestNum)
	return Discrepancy{Err: float64(bestNum) / (float64(a.nx) * float64(a.ns)), Lo: at, Hi: at}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
