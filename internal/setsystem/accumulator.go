// Incremental discrepancy engine.
//
// The continuous adaptive game (Figure 2) re-evaluates the exact
// eps-approximation error at many checkpoints of the same growing stream.
// Recomputing MaxDiscrepancy from scratch costs O((n+s) log(n+s)) per
// checkpoint — the dominant cost of RunContinuous at production stream
// lengths. The Accumulator maintains coordinate-compressed histograms of the
// stream and the sample instead: each element update is O(1) expected (a
// hash lookup into the compression table), and a checkpoint evaluation is a
// single sweep over the distinct values seen so far, with newly seen values
// merged into the sorted order incrementally (O(new log new + distinct) per
// evaluation, never a full re-sort).
//
// Exactness is preserved bit-for-bit: both the Accumulator and the one-shot
// MaxDiscrepancy implementations reduce the supremum to extrema of the
// integer numerator
//
//	num(t) = Cx(t)*|S| - Cs(t)*|X|
//
// of the CDF difference D(t) = num(t)/(|X||S|), compare numerators in exact
// int64 arithmetic, and perform the single float division identically — so
// Max() returns the same Discrepancy (error AND witness) as MaxDiscrepancy
// on the equivalent stream/sample multisets, for all four set systems.
package setsystem

import "slices"

// accMode selects which set system's supremum an Accumulator computes.
type accMode int

const (
	accPrefixes accMode = iota
	accIntervals
	accSingletons
	accSuffixes
)

// Accumulator incrementally maintains the exact discrepancy between a stream
// and a sample multiset for one set system. Elements enter the stream via
// AddStream and enter/leave the sample via AddSample/RemoveSample (the
// reservoir eviction path), each in O(1) expected time; Max returns the
// exact Discrepancy of the current multisets.
//
// The zero value is not valid; obtain one from SetSystem.NewAccumulator.
// An Accumulator is not safe for concurrent use.
type Accumulator struct {
	mode     accMode
	universe int64

	// Coordinate compression: every distinct value ever seen gets a slot.
	index map[int64]int32 // value -> slot
	vals  []int64         // slot -> value
	cx    []int64         // slot -> multiplicity in the stream
	cs    []int64         // slot -> multiplicity in the sample

	// order holds slots sorted by value; pending holds slots created since
	// the last Max, merged in lazily so updates stay O(1). scratch is the
	// previous order slice, recycled as the next merge target.
	order   []int32
	pending []int32
	scratch []int32

	nx, ns int64 // |X|, |S|
}

func newAccumulator(mode accMode, universe int64) *Accumulator {
	return &Accumulator{
		mode:     mode,
		universe: universe,
		index:    make(map[int64]int32),
	}
}

// NewAccumulator returns an empty incremental engine for the prefix system.
func (p Prefixes) NewAccumulator() *Accumulator { return newAccumulator(accPrefixes, p.n) }

// NewAccumulator returns an empty incremental engine for the interval system.
func (iv Intervals) NewAccumulator() *Accumulator { return newAccumulator(accIntervals, iv.n) }

// NewAccumulator returns an empty incremental engine for the singleton system.
func (s Singletons) NewAccumulator() *Accumulator { return newAccumulator(accSingletons, s.n) }

// NewAccumulator returns an empty incremental engine for the suffix system.
func (s Suffixes) NewAccumulator() *Accumulator { return newAccumulator(accSuffixes, s.n) }

// Reserve pre-sizes the compression tables for approximately distinct
// distinct values, avoiding incremental map growth on the per-element hot
// path. It is a no-op unless the accumulator is still empty.
func (a *Accumulator) Reserve(distinct int) {
	if distinct <= 0 || len(a.vals) > 0 || len(a.index) > 0 {
		return
	}
	a.index = make(map[int64]int32, distinct)
	a.vals = make([]int64, 0, distinct)
	a.cx = make([]int64, 0, distinct)
	a.cs = make([]int64, 0, distinct)
	a.pending = make([]int32, 0, distinct)
}

// slot returns the compression slot for x, creating one on first sight.
func (a *Accumulator) slot(x int64) int32 {
	if i, ok := a.index[x]; ok {
		return i
	}
	i := int32(len(a.vals))
	a.index[x] = i
	a.vals = append(a.vals, x)
	a.cx = append(a.cx, 0)
	a.cs = append(a.cs, 0)
	a.pending = append(a.pending, i)
	return i
}

// AddStream appends one element to the stream multiset.
func (a *Accumulator) AddStream(x int64) {
	a.cx[a.slot(x)]++
	a.nx++
}

// AddSample adds one element to the sample multiset.
func (a *Accumulator) AddSample(x int64) {
	a.cs[a.slot(x)]++
	a.ns++
}

// RemoveSample removes one copy of x from the sample multiset — the
// reservoir eviction path. It panics if x is not currently in the sample.
func (a *Accumulator) RemoveSample(x int64) {
	i, ok := a.index[x]
	if !ok || a.cs[i] == 0 {
		panic("setsystem: RemoveSample of element not in sample")
	}
	a.cs[i]--
	a.ns--
}

// StreamLen returns the number of stream elements added so far.
func (a *Accumulator) StreamLen() int { return int(a.nx) }

// SampleLen returns the current sample multiset size.
func (a *Accumulator) SampleLen() int { return int(a.ns) }

// Reset clears the accumulator for a fresh stream, retaining allocations.
func (a *Accumulator) Reset() {
	clear(a.index)
	a.vals = a.vals[:0]
	a.cx = a.cx[:0]
	a.cs = a.cs[:0]
	a.order = a.order[:0]
	a.pending = a.pending[:0]
	a.scratch = a.scratch[:0]
	a.nx, a.ns = 0, 0
}

// mergePending folds newly seen values into the sorted sweep order.
func (a *Accumulator) mergePending() {
	if len(a.pending) == 0 {
		return
	}
	slices.SortFunc(a.pending, func(i, j int32) int {
		switch {
		case a.vals[i] < a.vals[j]:
			return -1
		case a.vals[i] > a.vals[j]:
			return 1
		}
		return 0
	})
	merged := a.scratch[:0]
	i, j := 0, 0
	for i < len(a.order) && j < len(a.pending) {
		if a.vals[a.order[i]] < a.vals[a.pending[j]] {
			merged = append(merged, a.order[i])
			i++
		} else {
			merged = append(merged, a.pending[j])
			j++
		}
	}
	merged = append(merged, a.order[i:]...)
	merged = append(merged, a.pending[j:]...)
	a.order, a.scratch = merged, a.order
	a.pending = a.pending[:0]
}

// Max returns the exact discrepancy of the current stream/sample multisets,
// identical (error and witness) to the set system's MaxDiscrepancy on the
// same contents.
func (a *Accumulator) Max() Discrepancy {
	a.mergePending()
	if a.nx == 0 {
		return Discrepancy{}
	}
	if a.mode == accSingletons {
		return a.maxSingletons()
	}
	if a.ns == 0 {
		return a.emptySampleCDF()
	}

	// Sweep the sorted distinct values tracking the integer numerator of
	// the CDF difference, exactly as cdfScan does on merged sorted input.
	var num, bestAbs, maxD, minD int64
	var bestAbsAt, maxAt, minAt int64
	for _, s := range a.order {
		num += a.cx[s]*a.ns - a.cs[s]*a.nx
		t := a.vals[s]
		if v := abs64(num); v > bestAbs {
			bestAbs = v
			bestAbsAt = t
		}
		if num > maxD {
			maxD = num
			maxAt = t
		}
		if num < minD {
			minD = num
			minAt = t
		}
	}
	denom := float64(a.nx) * float64(a.ns)
	switch a.mode {
	case accPrefixes:
		return Discrepancy{Err: float64(bestAbs) / denom, Lo: 1, Hi: bestAbsAt}
	case accSuffixes:
		lo := bestAbsAt + 1
		if lo > a.universe {
			lo = a.universe
		}
		return Discrepancy{Err: float64(bestAbs) / denom, Lo: lo, Hi: a.universe}
	default: // accIntervals
		err := float64(maxD-minD) / denom
		lo, hi := minAt+1, maxAt
		if maxAt < minAt {
			lo, hi = maxAt+1, minAt
		}
		if lo > hi {
			lo, hi = 1, 1
		}
		return Discrepancy{Err: err, Lo: lo, Hi: hi}
	}
}

// emptySampleCDF mirrors cdfScan's empty-sample special case: the range
// containing everything has density 1 in the stream and 0 in the sample.
func (a *Accumulator) emptySampleCDF() Discrepancy {
	var min, max int64
	first := true
	for _, s := range a.order {
		if a.cx[s] == 0 {
			continue
		}
		if first {
			min = a.vals[s]
			first = false
		}
		max = a.vals[s]
	}
	switch a.mode {
	case accIntervals:
		return Discrepancy{Err: 1, Lo: min, Hi: max}
	case accSuffixes:
		lo := max + 1
		if lo > a.universe {
			lo = a.universe
		}
		return Discrepancy{Err: 1, Lo: lo, Hi: a.universe}
	default: // accPrefixes
		return Discrepancy{Err: 1, Lo: 1, Hi: max}
	}
}

// maxSingletons mirrors Singletons.MaxDiscrepancy: the best value by exact
// integer comparison, ties broken toward the smallest value.
func (a *Accumulator) maxSingletons() Discrepancy {
	if a.ns == 0 {
		var bestC int64
		var bestAt int64
		for _, s := range a.order {
			if a.cx[s] > bestC {
				bestC = a.cx[s]
				bestAt = a.vals[s]
			}
		}
		return Discrepancy{Err: float64(bestC) / float64(a.nx), Lo: bestAt, Hi: bestAt}
	}
	var bestNum, bestAt int64
	for _, s := range a.order {
		if v := abs64(a.cx[s]*a.ns - a.cs[s]*a.nx); v > bestNum {
			bestNum = v
			bestAt = a.vals[s]
		}
	}
	if bestNum == 0 {
		// Perfect agreement: identical to the one-shot's zero value.
		return Discrepancy{}
	}
	return Discrepancy{Err: float64(bestNum) / (float64(a.nx) * float64(a.ns)), Lo: bestAt, Hi: bestAt}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
