package setsystem

import (
	"math"
	"testing"
	"testing/quick"

	"robustsample/internal/rng"
)

func TestPrefixesBasics(t *testing.T) {
	p := NewPrefixes(100)
	if p.Name() != "prefixes" {
		t.Fatal("name")
	}
	if p.UniverseSize() != 100 {
		t.Fatal("universe size")
	}
	if p.VCDim() != 1 {
		t.Fatal("VC dim of prefixes must be 1")
	}
	if math.Abs(p.LogCardinality()-math.Log(100)) > 1e-12 {
		t.Fatal("log cardinality")
	}
}

func TestIntervalsBasics(t *testing.T) {
	iv := NewIntervals(10)
	if iv.VCDim() != 2 {
		t.Fatal("VC dim of intervals must be 2")
	}
	want := math.Log(10 * 11 / 2)
	if math.Abs(iv.LogCardinality()-want) > 1e-12 {
		t.Fatalf("log cardinality = %v, want %v", iv.LogCardinality(), want)
	}
}

func TestNewPanicsOnBadUniverse(t *testing.T) {
	for _, f := range []func(){
		func() { NewPrefixes(0) },
		func() { NewIntervals(0) },
		func() { NewSingletons(-1) },
		func() { NewSuffixes(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for empty universe")
				}
			}()
			f()
		}()
	}
}

func TestPerfectSampleZeroError(t *testing.T) {
	stream := []int64{1, 2, 3, 4, 5, 6}
	for _, sys := range []SetSystem{NewPrefixes(10), NewIntervals(10), NewSingletons(10), NewSuffixes(10)} {
		d := sys.MaxDiscrepancy(stream, stream)
		if d.Err != 0 {
			t.Fatalf("%s: identical sample has error %v", sys.Name(), d.Err)
		}
	}
}

func TestEmptySampleErrorOne(t *testing.T) {
	stream := []int64{1, 2, 3}
	for _, sys := range []SetSystem{NewPrefixes(10), NewIntervals(10), NewSuffixes(10)} {
		d := sys.MaxDiscrepancy(stream, nil)
		if d.Err != 1 {
			t.Fatalf("%s: empty sample error %v, want 1", sys.Name(), d.Err)
		}
	}
}

func TestEmptyStream(t *testing.T) {
	for _, sys := range []SetSystem{NewPrefixes(10), NewIntervals(10), NewSingletons(10), NewSuffixes(10)} {
		d := sys.MaxDiscrepancy(nil, []int64{1})
		if d.Err != 0 {
			t.Fatalf("%s: empty stream should yield 0, got %v", sys.Name(), d.Err)
		}
	}
}

func TestPrefixKnownValue(t *testing.T) {
	// Stream 1..4 uniformly; sample = {1, 2}. F_S(2)=1, F_X(2)=0.5.
	stream := []int64{1, 2, 3, 4}
	sample := []int64{1, 2}
	d := NewPrefixes(4).MaxDiscrepancy(stream, sample)
	if math.Abs(d.Err-0.5) > 1e-12 {
		t.Fatalf("prefix error = %v, want 0.5", d.Err)
	}
	if d.Hi != 2 {
		t.Fatalf("witness prefix [1,%d], want [1,2]", d.Hi)
	}
}

func TestIntervalCatchesMiddleGap(t *testing.T) {
	// Sample misses the middle; the interval system must see it even
	// though the prefix error is smaller.
	stream := []int64{1, 2, 5, 6, 9, 10}
	sample := []int64{1, 10}
	iv := NewIntervals(10).MaxDiscrepancy(stream, sample)
	// Interval [5,6]: density 2/6 in stream, 0 in sample.
	if iv.Err < 1.0/3-1e-12 {
		t.Fatalf("interval error %v should be at least 1/3", iv.Err)
	}
}

func TestIntervalWitnessAchievesError(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(40)
		s := 1 + r.Intn(10)
		stream := make([]int64, n)
		for i := range stream {
			stream[i] = 1 + r.Int63n(20)
		}
		sample := make([]int64, s)
		for i := range sample {
			sample[i] = 1 + r.Int63n(20)
		}
		d := NewIntervals(20).MaxDiscrepancy(stream, sample)
		got := math.Abs(Density(stream, d.Lo, d.Hi) - Density(sample, d.Lo, d.Hi))
		if math.Abs(got-d.Err) > 1e-9 {
			t.Fatalf("witness [%d,%d] achieves %v, reported %v (stream=%v sample=%v)",
				d.Lo, d.Hi, got, d.Err, stream, sample)
		}
	}
}

func TestPrefixWitnessAchievesError(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(40)
		stream := make([]int64, n)
		for i := range stream {
			stream[i] = 1 + r.Int63n(15)
		}
		sample := stream[:1+r.Intn(n)]
		d := NewPrefixes(15).MaxDiscrepancy(stream, sample)
		got := math.Abs(Density(stream, 1, d.Hi) - Density(sample, 1, d.Hi))
		if math.Abs(got-d.Err) > 1e-9 {
			t.Fatalf("witness [1,%d] achieves %v, reported %v", d.Hi, got, d.Err)
		}
	}
}

func TestIntervalsMatchBruteForce(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(25)
		s := 1 + r.Intn(8)
		stream := make([]int64, n)
		for i := range stream {
			stream[i] = 1 + r.Int63n(12)
		}
		sample := make([]int64, s)
		for i := range sample {
			sample[i] = 1 + r.Int63n(12)
		}
		fast := NewIntervals(12).MaxDiscrepancy(stream, sample)
		brute := BruteMaxDiscrepancy(12, stream, sample)
		if math.Abs(fast.Err-brute.Err) > 1e-9 {
			t.Fatalf("fast %v != brute %v (stream=%v sample=%v)",
				fast.Err, brute.Err, stream, sample)
		}
	}
}

func TestPrefixesMatchBruteForce(t *testing.T) {
	r := rng.New(321)
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(25)
		s := 1 + r.Intn(8)
		stream := make([]int64, n)
		for i := range stream {
			stream[i] = 1 + r.Int63n(12)
		}
		sample := make([]int64, s)
		for i := range sample {
			sample[i] = 1 + r.Int63n(12)
		}
		fast := NewPrefixes(12).MaxDiscrepancy(stream, sample)
		brute := BrutePrefixDiscrepancy(12, stream, sample)
		if math.Abs(fast.Err-brute.Err) > 1e-9 {
			t.Fatalf("fast %v != brute %v (stream=%v sample=%v)",
				fast.Err, brute.Err, stream, sample)
		}
	}
}

func TestSuffixEqualsPrefixError(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(30)
		stream := make([]int64, n)
		for i := range stream {
			stream[i] = 1 + r.Int63n(9)
		}
		sample := stream[:1+r.Intn(n)]
		pre := NewPrefixes(9).MaxDiscrepancy(stream, sample)
		suf := NewSuffixes(9).MaxDiscrepancy(stream, sample)
		if math.Abs(pre.Err-suf.Err) > 1e-12 {
			t.Fatalf("suffix err %v != prefix err %v", suf.Err, pre.Err)
		}
	}
}

func TestSuffixWitnessAchievesError(t *testing.T) {
	r := rng.New(61)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(30)
		stream := make([]int64, n)
		for i := range stream {
			stream[i] = 1 + r.Int63n(9)
		}
		sample := stream[:1+r.Intn(n)]
		d := NewSuffixes(9).MaxDiscrepancy(stream, sample)
		got := math.Abs(Density(stream, d.Lo, 9) - Density(sample, d.Lo, 9))
		if math.Abs(got-d.Err) > 1e-9 {
			t.Fatalf("suffix witness [%d,9] achieves %v, reported %v", d.Lo, got, d.Err)
		}
	}
}

func TestSingletonsKnownValue(t *testing.T) {
	stream := []int64{1, 1, 1, 2} // freq(1)=3/4
	sample := []int64{2}          // freq(1)=0
	d := NewSingletons(5).MaxDiscrepancy(stream, sample)
	if math.Abs(d.Err-0.75) > 1e-12 {
		t.Fatalf("singleton err %v, want 0.75", d.Err)
	}
	if d.Lo != 1 || d.Hi != 1 {
		t.Fatalf("witness %v, want {1}", d)
	}
}

func TestSingletonsSampleOnlyValue(t *testing.T) {
	stream := []int64{1, 2, 3, 4}
	sample := []int64{9, 9} // 9 not in stream: density 1 in sample, 0 in stream
	d := NewSingletons(10).MaxDiscrepancy(stream, sample)
	if d.Err != 1 || d.Lo != 9 {
		t.Fatalf("got %v, want err 1 at {9}", d)
	}
}

func TestSingletonsEmptySample(t *testing.T) {
	stream := []int64{7, 7, 8}
	d := NewSingletons(10).MaxDiscrepancy(stream, nil)
	if math.Abs(d.Err-2.0/3) > 1e-12 || d.Lo != 7 {
		t.Fatalf("got %v, want 2/3 at {7}", d)
	}
}

func TestDiscrepancyBounds(t *testing.T) {
	r := rng.New(777)
	f := func(nRaw, sRaw uint8) bool {
		n := int(nRaw%30) + 1
		s := int(sRaw%10) + 1
		stream := make([]int64, n)
		for i := range stream {
			stream[i] = 1 + r.Int63n(16)
		}
		sample := make([]int64, s)
		for i := range sample {
			sample[i] = 1 + r.Int63n(16)
		}
		for _, sys := range []SetSystem{NewPrefixes(16), NewIntervals(16), NewSingletons(16), NewSuffixes(16)} {
			e := sys.MaxDiscrepancy(stream, sample).Err
			if e < 0 || e > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalDominatesPrefix(t *testing.T) {
	// Every prefix is an interval, so interval discrepancy >= prefix.
	r := rng.New(888)
	f := func(nRaw, sRaw uint8) bool {
		n := int(nRaw%30) + 1
		s := int(sRaw%10) + 1
		stream := make([]int64, n)
		for i := range stream {
			stream[i] = 1 + r.Int63n(16)
		}
		sample := make([]int64, s)
		for i := range sample {
			sample[i] = 1 + r.Int63n(16)
		}
		pre := NewPrefixes(16).MaxDiscrepancy(stream, sample).Err
		ivl := NewIntervals(16).MaxDiscrepancy(stream, sample).Err
		return ivl >= pre-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationInvariance(t *testing.T) {
	// Densities ignore order, so discrepancy must be permutation-invariant.
	r := rng.New(999)
	stream := make([]int64, 50)
	for i := range stream {
		stream[i] = 1 + r.Int63n(20)
	}
	sample := stream[:12]
	for _, sys := range []SetSystem{NewPrefixes(20), NewIntervals(20), NewSingletons(20)} {
		want := sys.MaxDiscrepancy(stream, sample).Err
		shuffled := append([]int64(nil), stream...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := sys.MaxDiscrepancy(shuffled, sample).Err
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s not permutation invariant: %v vs %v", sys.Name(), got, want)
		}
	}
}

func TestDensity(t *testing.T) {
	seq := []int64{1, 2, 3, 4}
	if Density(seq, 2, 3) != 0.5 {
		t.Fatal("density wrong")
	}
	if Density(nil, 1, 2) != 0 {
		t.Fatal("empty density should be 0")
	}
	if Density(seq, 5, 9) != 0 {
		t.Fatal("out-of-range density should be 0")
	}
}

func TestIsEpsApproximation(t *testing.T) {
	stream := []int64{1, 2, 3, 4}
	sample := []int64{1, 3}
	sys := NewPrefixes(4)
	err := sys.MaxDiscrepancy(stream, sample).Err
	if !IsEpsApproximation(sys, stream, sample, err+0.001) {
		t.Fatal("should be approximation at its own error")
	}
	if IsEpsApproximation(sys, stream, sample, err-0.001) {
		t.Fatal("should not be approximation below its error")
	}
}

func TestDoesNotMutateInputs(t *testing.T) {
	stream := []int64{5, 3, 1}
	sample := []int64{4, 2}
	NewIntervals(5).MaxDiscrepancy(stream, sample)
	if stream[0] != 5 || stream[1] != 3 || stream[2] != 1 {
		t.Fatalf("stream mutated: %v", stream)
	}
	if sample[0] != 4 || sample[1] != 2 {
		t.Fatalf("sample mutated: %v", sample)
	}
}

func TestDiscrepancyString(t *testing.T) {
	s := Discrepancy{Err: 0.25, Lo: 1, Hi: 7}.String()
	if s == "" {
		t.Fatal("empty string")
	}
}

func BenchmarkIntervalDiscrepancy(b *testing.B) {
	r := rng.New(1)
	stream := make([]int64, 100000)
	for i := range stream {
		stream[i] = 1 + r.Int63n(1<<20)
	}
	sample := stream[:1000]
	sys := NewIntervals(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.MaxDiscrepancy(stream, sample)
	}
}

func BenchmarkPrefixDiscrepancy(b *testing.B) {
	r := rng.New(1)
	stream := make([]int64, 100000)
	for i := range stream {
		stream[i] = 1 + r.Int63n(1<<20)
	}
	sample := stream[:1000]
	sys := NewPrefixes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.MaxDiscrepancy(stream, sample)
	}
}

func BenchmarkSingletonDiscrepancy(b *testing.B) {
	r := rng.New(1)
	stream := make([]int64, 100000)
	for i := range stream {
		stream[i] = 1 + r.Int63n(1000)
	}
	sample := stream[:1000]
	sys := NewSingletons(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.MaxDiscrepancy(stream, sample)
	}
}
