// Mergeable verdicts.
//
// The sharded continuous-sampling engine (internal/shard) keeps one
// Accumulator per shard, fed only with that shard's substream and local
// sample. A global checkpoint verdict needs the discrepancy of the UNION
// stream against the UNION sample — and because every set system's verdict
// is a pure function of the two multisets (insertion order never matters),
// the union verdict can be computed by folding the per-shard histograms into
// one engine, without re-ingesting any raw stream. MergeFrom is that fold:
// O(distinct values) per source accumulator instead of O(stream length), so
// a coordinator's verdict cost is independent of how much traffic the shards
// have absorbed since the last checkpoint.
package setsystem

// MergeFrom folds other's stream and sample multisets into a: afterwards a
// holds the multiset unions, exactly as if every element ever added to other
// had been added to a directly. Max on the merged accumulator is therefore
// bit-identical (error AND witness) to MaxDiscrepancy on the concatenated
// streams and samples. other is not modified, and may have pending updates
// (a Max call on it is not required first).
//
// Both accumulators must come from the same set system (mode and universe);
// MergeFrom panics otherwise, and on a nil or aliased source.
func (a *Accumulator) MergeFrom(other *Accumulator) {
	if other == nil || other == a {
		panic("setsystem: MergeFrom needs a distinct non-nil source")
	}
	if a.mode != other.mode || a.universe != other.universe {
		panic("setsystem: MergeFrom across different set systems")
	}
	for i, v := range other.vals {
		cx, cs := other.cx[i], other.cs[i]
		if cx == 0 && cs == 0 {
			// A slot whose sample copies were all evicted and that holds
			// no stream mass contributes nothing to any verdict.
			continue
		}
		s := a.slot(v)
		a.cx[s] += cx
		a.cs[s] += cs
		if b := a.blockOf[s]; b != nil {
			b.sumCx += cx
			b.sumCs += cs
			if cx > 0 && a.cx[s] == cx {
				// The slot's stream count was zero before this merge.
				b.nzCx++
			}
			if a.cx[s] > b.maxCx {
				b.maxCx = a.cx[s]
			}
			b.touched = true
			b.hullValid = false
		}
	}
	a.nx += other.nx
	a.ns += other.ns
}

// CopyFrom overwrites a with an exact logical copy of other's state: the
// same stream and sample multisets, hence bit-identical Max verdicts. It is
// the serving runtime's read-barrier copy hook: a live query locks a shard
// only long enough to CopyFrom its accumulator — O(distinct values), no
// hull work — and runs the (costlier) Max on the copy after releasing the
// lock, so checkpoint queries overlap ingest instead of stalling it.
//
// Like MergeFrom it requires a distinct source from the same set system.
func (a *Accumulator) CopyFrom(other *Accumulator) {
	a.Reset()
	a.MergeFrom(other)
}
