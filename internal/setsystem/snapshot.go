package setsystem

import (
	"fmt"

	"robustsample/internal/snapshot"
)

// Accumulator snapshots serialize the engine's logical state — the two
// multisets, in slot-insertion order — not its block decomposition. The
// decomposition is a performance artifact that Max() provably cannot
// observe (verdicts are bit-identical to the one-shot sweep for every
// block layout), so restoring re-enters all slots as pending and lets the
// next Max place them. Because insertion order is preserved, snapshotting a
// restored accumulator reproduces the original bytes exactly.

// AppendSnapshot appends the accumulator's state: mode, universe, the
// slot table in insertion order (value, stream count, sample count). |X|
// and |S| are recomputed on load from the per-slot counts.
func (a *Accumulator) AppendSnapshot(buf []byte) []byte {
	buf = append(buf, byte(a.mode))
	buf = snapshot.AppendInt64(buf, a.universe)
	buf = snapshot.AppendUint64(buf, uint64(len(a.vals)))
	for i := range a.vals {
		buf = snapshot.AppendInt64(buf, a.vals[i])
		buf = snapshot.AppendInt64(buf, a.cx[i])
		buf = snapshot.AppendInt64(buf, a.cs[i])
	}
	return buf
}

// SampleCount returns the sample multiplicity of x, 0 if x was never seen.
// Restore paths use it to cross-check a decoded accumulator against the
// decoded sampler it must stay in lockstep with.
func (a *Accumulator) SampleCount(x int64) int64 {
	if s, ok := a.index.lookup(x); ok {
		return a.cs[s]
	}
	return 0
}

// LoadSnapshot restores state written by AppendSnapshot into a, which must
// have been built for the same set system (mode and universe are verified).
// The accumulator is Reset first; on error it is left Reset.
func (a *Accumulator) LoadSnapshot(r *snapshot.Reader) error {
	mode := r.Byte()
	universe := r.Int64()
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	if accMode(mode) != a.mode || universe != a.universe {
		return fmt.Errorf("setsystem: snapshot for a different set system (mode %d universe %d, want mode %d universe %d): %w",
			mode, universe, a.mode, a.universe, snapshot.ErrCorrupt)
	}
	if n > uint64(r.Len()/24) {
		return snapshot.ErrCorrupt
	}
	a.Reset()
	for i := uint64(0); i < n; i++ {
		val := r.Int64()
		cx := r.Int64()
		cs := r.Int64()
		if r.Err() != nil || cx < 0 || cs < 0 {
			a.Reset()
			if err := r.Err(); err != nil {
				return err
			}
			return fmt.Errorf("setsystem: negative multiplicity in snapshot: %w", snapshot.ErrCorrupt)
		}
		s := a.slot(val)
		if uint64(s) != i { // duplicate value: not producible by AppendSnapshot
			a.Reset()
			return fmt.Errorf("setsystem: duplicate value %d in snapshot: %w", val, snapshot.ErrCorrupt)
		}
		a.cx[s] = cx
		a.cs[s] = cs
		a.nx += cx
		a.ns += cs
	}
	return nil
}
