// Package setsystem implements the set systems (U, R) of the paper over a
// well-ordered integer universe U = {1, ..., N}, together with *exact*
// computation of the epsilon-approximation error of Definition 1.1:
//
//	err(X, S) = sup_{R in R} | d_R(X) - d_R(S) |,
//
// where d_R(T) is the fraction of elements of the sequence T lying in R.
//
// Exactness matters: the verdict step of AdaptiveGame (Figure 1) asks whether
// the sample is an epsilon-approximation, and an approximate verdict would
// contaminate every measured failure probability. For the ordered systems the
// paper uses, the supremum reduces to extrema of the CDF-difference function
// and is computed in O((n+s) log(n+s)).
//
// The systems provided are exactly those the paper works with:
//
//   - Prefixes  R = {[1, b] : b in U}     (Theorem 1.3, Corollary 1.5)
//   - Intervals R = {[a, b] : a <= b}     (Section 1, quantile discussion)
//   - Singletons R = {{a} : a in U}       (Corollary 1.6, heavy hitters)
//   - Suffixes  R = {[b, N] : b in U}     (halfline complement, center points)
package setsystem

import (
	"fmt"
	"math"
	"slices"
)

// Discrepancy reports the maximal density deviation between a stream and a
// sample, together with a witnessing range [Lo, Hi] achieving it.
type Discrepancy struct {
	Err    float64
	Lo, Hi int64
}

func (d Discrepancy) String() string {
	return fmt.Sprintf("err=%.5f witness=[%d,%d]", d.Err, d.Lo, d.Hi)
}

// SetSystem is a family of ranges over the universe [1, N] supporting exact
// discrepancy computation.
type SetSystem interface {
	// Name identifies the system in tables ("prefixes", "intervals", ...).
	Name() string
	// UniverseSize returns N.
	UniverseSize() int64
	// LogCardinality returns ln|R|, the term that replaces the
	// VC-dimension in Theorem 1.2.
	LogCardinality() float64
	// VCDim returns the VC-dimension of the system, the term governing
	// the static (non-adaptive) sample bound.
	VCDim() int
	// MaxDiscrepancy returns sup_{R} |d_R(stream) - d_R(sample)| exactly.
	// Both inputs may be in arbitrary order; they are not mutated. An
	// empty sample against a non-empty stream has discrepancy 1 (the
	// paper requires samples to be non-empty; the game treats this as a
	// failure).
	MaxDiscrepancy(stream, sample []int64) Discrepancy
	// NewAccumulator returns an empty incremental discrepancy engine for
	// this system, whose Max agrees bit-for-bit with MaxDiscrepancy on
	// equal multisets.
	NewAccumulator() *Accumulator
}

// Prefixes is the one-sided interval system {[1, b] : b in U} with
// VC-dimension 1 and |R| = N. It is the set system of Theorem 1.3 and of the
// quantile application (Corollary 1.5).
type Prefixes struct{ n int64 }

// NewPrefixes returns the prefix system over [1, n]. It panics if n < 1.
func NewPrefixes(n int64) Prefixes {
	if n < 1 {
		panic("setsystem: universe must have size >= 1")
	}
	return Prefixes{n: n}
}

func (p Prefixes) Name() string            { return "prefixes" }
func (p Prefixes) UniverseSize() int64     { return p.n }
func (p Prefixes) LogCardinality() float64 { return math.Log(float64(p.n)) }
func (p Prefixes) VCDim() int              { return 1 }

// MaxDiscrepancy computes sup_b |F_X(b) - F_S(b)|, the Kolmogorov-Smirnov
// distance between the empirical distributions restricted to [1, N].
func (p Prefixes) MaxDiscrepancy(stream, sample []int64) Discrepancy {
	return cdfScan(stream, sample, false)
}

// Intervals is the two-sided system {[a, b] : a <= b in U}, including all
// singletons [a, a]. |R| = N(N+1)/2 and the VC-dimension is 2.
type Intervals struct{ n int64 }

// NewIntervals returns the interval system over [1, n]. It panics if n < 1.
func NewIntervals(n int64) Intervals {
	if n < 1 {
		panic("setsystem: universe must have size >= 1")
	}
	return Intervals{n: n}
}

func (iv Intervals) Name() string        { return "intervals" }
func (iv Intervals) UniverseSize() int64 { return iv.n }

func (iv Intervals) LogCardinality() float64 {
	n := float64(iv.n)
	return math.Log(n*(n+1)) - math.Log(2)
}

func (iv Intervals) VCDim() int { return 2 }

// MaxDiscrepancy computes the supremum over all intervals. Writing
// D(t) = F_X(t) - F_S(t) for the CDF difference (with D(0) = 0), the density
// deviation of [a, b] is D(b) - D(a-1), so the supremum of its absolute value
// equals max_t D(t) - min_t D(t).
func (iv Intervals) MaxDiscrepancy(stream, sample []int64) Discrepancy {
	return cdfScan(stream, sample, true)
}

// Singletons is the system {{a} : a in U} with |R| = N and VC-dimension 1.
// It underlies the heavy-hitters application (Corollary 1.6).
type Singletons struct{ n int64 }

// NewSingletons returns the singleton system over [1, n]. It panics if n < 1.
func NewSingletons(n int64) Singletons {
	if n < 1 {
		panic("setsystem: universe must have size >= 1")
	}
	return Singletons{n: n}
}

func (s Singletons) Name() string            { return "singletons" }
func (s Singletons) UniverseSize() int64     { return s.n }
func (s Singletons) LogCardinality() float64 { return math.Log(float64(s.n)) }
func (s Singletons) VCDim() int              { return 1 }

// MaxDiscrepancy computes max_v |freq_X(v)/|X| - freq_S(v)/|S||. Deviations
// are compared as exact integer numerators over the common denominator
// |X||S|, sweeping values in ascending order, so the result (error and
// witness, ties broken toward the smallest value) is deterministic and
// agrees bit-for-bit with the Accumulator.
func (s Singletons) MaxDiscrepancy(stream, sample []int64) Discrepancy {
	if len(stream) == 0 {
		return Discrepancy{}
	}
	nx := int64(len(stream))
	cx := make(map[int64]int64, len(stream))
	for _, x := range stream {
		cx[x]++
	}
	if len(sample) == 0 {
		// Every non-empty value witnesses its own stream density; the
		// maximal one is the heaviest element (smallest such value).
		values := make([]int64, 0, len(cx))
		for v := range cx { //robust:nondet keys are sorted before use; collection order is irrelevant
			values = append(values, v)
		}
		slices.Sort(values)
		var bestC, bestAt int64
		for _, v := range values {
			if cx[v] > bestC {
				bestC, bestAt = cx[v], v
			}
		}
		return Discrepancy{Err: float64(bestC) / float64(nx), Lo: bestAt, Hi: bestAt}
	}
	ns := int64(len(sample))
	cs := make(map[int64]int64, len(sample))
	for _, x := range sample {
		cs[x]++
	}
	values := make([]int64, 0, len(cx)+len(cs))
	for v := range cx { //robust:nondet keys are sorted before use; collection order is irrelevant
		values = append(values, v)
	}
	for v := range cs { //robust:nondet keys are sorted before use; collection order is irrelevant
		if _, ok := cx[v]; !ok {
			values = append(values, v)
		}
	}
	slices.Sort(values)
	var bestNum, bestAt int64
	for _, v := range values {
		if d := abs64(cx[v]*ns - cs[v]*nx); d > bestNum {
			bestNum, bestAt = d, v
		}
	}
	if bestNum == 0 {
		return Discrepancy{}
	}
	return Discrepancy{Err: float64(bestNum) / (float64(nx) * float64(ns)), Lo: bestAt, Hi: bestAt}
}

// Suffixes is the system {[b, N] : b in U}. Its discrepancy equals that of
// Prefixes on the complemented CDF; it is provided for the center-point
// application where halflines in both directions are needed.
type Suffixes struct{ n int64 }

// NewSuffixes returns the suffix system over [1, n]. It panics if n < 1.
func NewSuffixes(n int64) Suffixes {
	if n < 1 {
		panic("setsystem: universe must have size >= 1")
	}
	return Suffixes{n: n}
}

func (s Suffixes) Name() string            { return "suffixes" }
func (s Suffixes) UniverseSize() int64     { return s.n }
func (s Suffixes) LogCardinality() float64 { return math.Log(float64(s.n)) }
func (s Suffixes) VCDim() int              { return 1 }

// MaxDiscrepancy computes sup_b |d_[b,N](X) - d_[b,N](S)|. Since
// d_[b,N](T) = 1 - F_T(b-1), this equals sup over prefixes [1, b-1] with
// b-1 ranging over {0, ..., N-1}; the b-1 = 0 case contributes zero, so the
// value coincides with the prefix discrepancy except that the witness is
// reported as a suffix.
func (s Suffixes) MaxDiscrepancy(stream, sample []int64) Discrepancy {
	d := cdfScan(stream, sample, false)
	// Convert witness [1, b] to the complementary suffix [b+1, N].
	lo := d.Hi + 1
	if lo > s.n {
		lo = s.n
	}
	return Discrepancy{Err: d.Err, Lo: lo, Hi: s.n}
}

// cdfScan walks the merged sorted values of stream and sample tracking the
// CDF difference D(t) = F_X(t) - F_S(t). With twoSided=false it returns
// max_t |D(t)| (prefix discrepancy with witness [1, t]); with twoSided=true
// it returns max_t D(t) - min_t D(t) (interval discrepancy with the interval
// between the extremal points as witness).
//
// D(t) is tracked as the exact integer numerator Cx(t)*|S| - Cs(t)*|X| over
// the common denominator |X||S|, so extrema and witnesses are found by exact
// int64 comparison and the single float division at the end agrees
// bit-for-bit with the incremental Accumulator.
func cdfScan(stream, sample []int64, twoSided bool) Discrepancy {
	if len(stream) == 0 {
		return Discrepancy{}
	}
	if len(sample) == 0 {
		// The range containing everything (or the full prefix) has
		// density 1 in the stream and 0 in the empty sample.
		min, max := stream[0], stream[0]
		for _, v := range stream {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if twoSided {
			return Discrepancy{Err: 1, Lo: min, Hi: max}
		}
		return Discrepancy{Err: 1, Lo: 1, Hi: max}
	}

	xs := append([]int64(nil), stream...)
	ss := append([]int64(nil), sample...)
	slices.Sort(xs)
	slices.Sort(ss)

	nx := int64(len(xs))
	ns := int64(len(ss))

	var i, j int
	var num int64 // current numerator of D(t)

	// One-sided tracking.
	var bestAbs, bestAbsAt int64

	// Two-sided tracking: extrema of D and their positions. D(0) = 0 is a
	// valid baseline (the empty prefix), represented by position 0.
	var maxD, minD, maxAt, minAt int64

	for i < len(xs) || j < len(ss) {
		var t int64
		switch {
		case i >= len(xs):
			t = ss[j]
		case j >= len(ss):
			t = xs[i]
		case xs[i] <= ss[j]:
			t = xs[i]
		default:
			t = ss[j]
		}
		var cx, cs int64
		for i < len(xs) && xs[i] == t {
			cx++
			i++
		}
		for j < len(ss) && ss[j] == t {
			cs++
			j++
		}
		num += cx*ns - cs*nx
		if a := abs64(num); a > bestAbs {
			bestAbs = a
			bestAbsAt = t
		}
		if num > maxD {
			maxD = num
			maxAt = t
		}
		if num < minD {
			minD = num
			minAt = t
		}
	}

	denom := float64(nx) * float64(ns)
	if !twoSided {
		return Discrepancy{Err: float64(bestAbs) / denom, Lo: 1, Hi: bestAbsAt}
	}
	err := float64(maxD-minD) / denom
	lo, hi := minAt+1, maxAt
	if maxAt < minAt {
		lo, hi = maxAt+1, minAt
	}
	if lo > hi {
		// Degenerate: both extrema at the baseline; no deviation.
		lo, hi = 1, 1
	}
	return Discrepancy{Err: err, Lo: lo, Hi: hi}
}

// Density returns d_R(T) for the explicit range [lo, hi]: the fraction of
// elements of seq lying in [lo, hi]. It returns 0 for an empty sequence.
func Density(seq []int64, lo, hi int64) float64 {
	if len(seq) == 0 {
		return 0
	}
	count := 0
	for _, x := range seq {
		if x >= lo && x <= hi {
			count++
		}
	}
	return float64(count) / float64(len(seq))
}

// IsEpsApproximation reports whether sample is an eps-approximation of
// stream with respect to the set system, per Definition 1.1.
func IsEpsApproximation(sys SetSystem, stream, sample []int64, eps float64) bool {
	return sys.MaxDiscrepancy(stream, sample).Err <= eps
}

// BruteMaxDiscrepancy computes the interval discrepancy by enumerating every
// interval [a, b] with endpoints among the values present in either sequence
// (plus universe boundaries). It is O(V^2 * (n+s)) and exists solely as a
// test oracle for the fast implementations.
func BruteMaxDiscrepancy(universe int64, stream, sample []int64) Discrepancy {
	if len(stream) == 0 {
		return Discrepancy{}
	}
	valueSet := map[int64]bool{1: true, universe: true}
	for _, v := range stream {
		valueSet[v] = true
	}
	for _, v := range sample {
		valueSet[v] = true
	}
	values := make([]int64, 0, len(valueSet))
	for v := range valueSet { //robust:nondet keys are sorted before use; collection order is irrelevant
		values = append(values, v)
	}
	slices.Sort(values)
	best := Discrepancy{Lo: 1, Hi: 1}
	for i, a := range values {
		for _, b := range values[i:] {
			d := math.Abs(Density(stream, a, b) - Density(sample, a, b))
			if d > best.Err {
				best = Discrepancy{Err: d, Lo: a, Hi: b}
			}
		}
	}
	return best
}

// BrutePrefixDiscrepancy is the prefix analogue of BruteMaxDiscrepancy,
// enumerating every prefix [1, b].
func BrutePrefixDiscrepancy(universe int64, stream, sample []int64) Discrepancy {
	if len(stream) == 0 {
		return Discrepancy{}
	}
	valueSet := map[int64]bool{universe: true}
	for _, v := range stream {
		valueSet[v] = true
	}
	for _, v := range sample {
		valueSet[v] = true
	}
	// Sweep endpoints in ascending order: ranging over the map directly
	// would randomize which endpoint wins a discrepancy tie, making the
	// witness nondeterministic across runs.
	values := make([]int64, 0, len(valueSet))
	for v := range valueSet { //robust:nondet keys are sorted before the sweep; collection order is irrelevant
		values = append(values, v)
	}
	slices.Sort(values)
	best := Discrepancy{Lo: 1, Hi: 1}
	for _, b := range values {
		d := math.Abs(Density(stream, 1, b) - Density(sample, 1, b))
		if d > best.Err {
			best = Discrepancy{Err: d, Lo: 1, Hi: b}
		}
	}
	return best
}
