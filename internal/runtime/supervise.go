package runtime

// Supervision and bounded waiting: the failure-model half of the pipeline.
// The hot path in pipeline.go assumes consumers never fail and callers can
// wait forever; this file adds the supervised apply path (panic recovery
// with retry/drop dispositions and per-shard loss accounting), deadline-
// aware offers with jittered backoff, a drain deadline for Close, and a
// non-blocking shard-lock acquire for degraded reads.

import (
	"context"
	"errors"
	stdruntime "runtime"
	"time"
)

// ErrBackpressure reports an Offer that gave up waiting for ring space
// because its context expired; it is always joined with the context's own
// error, so errors.Is matches both.
var ErrBackpressure = errors.New("runtime: offer gave up under backpressure")

// ErrDrainTimeout reports a CloseCtx that gave up waiting for the shutdown
// drain; the drain itself keeps running in the background.
var ErrDrainTimeout = errors.New("runtime: close drain deadline exceeded")

// Disposition is a supervisor's verdict on a failed apply attempt.
type Disposition uint8

const (
	// Retry re-applies the chunk, restored to its pristine content when a
	// BeforeApply hook may have corrupted it.
	Retry Disposition = iota
	// Drop abandons the chunk: its elements count as lost (see Lost) and
	// as consumed for the barrier totals, and the consumer moves on.
	Drop
)

// applyChunk applies one chunk to shard s under its (already held) lock.
// Without hooks it is exactly the unsupervised hot path: one direct Apply
// call. With hooks it runs the supervision protocol: inject faults via
// BeforeApply, recover panics, consult OnApplyPanic, and retry or drop.
func (p *Pipeline) applyChunk(s int, xs []int64) {
	if p.cfg.BeforeApply == nil && p.cfg.OnApplyPanic == nil {
		p.cfg.Apply(s, xs)
		return
	}
	// BeforeApply may corrupt the chunk in place; keep a pristine copy so
	// retries re-apply the real data, not the corruption. (Only the
	// fault-injection configuration pays this copy.)
	var pristine []int64
	if p.cfg.BeforeApply != nil {
		pristine = append(pristine, xs...)
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 && pristine != nil {
			copy(xs, pristine)
		}
		v, ok := p.tryApply(s, attempt, xs)
		if ok {
			return
		}
		if p.cfg.OnApplyPanic == nil {
			panic(v) // injection without supervision: crash like production would
		}
		if p.cfg.OnApplyPanic(s, v, xs, attempt) == Drop {
			p.lost[s].Add(uint64(len(xs)))
			return
		}
	}
}

// tryApply runs one BeforeApply+Apply attempt, converting a panic into
// (panicValue, false).
func (p *Pipeline) tryApply(s, attempt int, xs []int64) (v any, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			v, ok = r, false
		}
	}()
	if p.cfg.BeforeApply != nil {
		p.cfg.BeforeApply(s, attempt, xs)
	}
	p.cfg.Apply(s, xs)
	return nil, true
}

// Lost returns the number of elements in chunks the supervisor dropped.
func (p *Pipeline) Lost() uint64 {
	var n uint64
	for i := range p.lost {
		n += p.lost[i].Load()
	}
	return n
}

// ShardLost returns shard s's dropped-element count.
func (p *Pipeline) ShardLost(s int) uint64 { return p.lost[s].Load() }

// Backoff bounds for the ctx offers: sleeps start at backoffMin after the
// spin phase and double (with jitter) up to backoffMax, so a briefly full
// ring costs microseconds while a wedged one doesn't spin a core.
const (
	backoffMin = 4 * time.Microsecond
	backoffMax = time.Millisecond
)

// jitter steps the lane's xorshift state; lane-owned, so no synchronization
// (the lane's driving goroutine is the only caller).
func (pr *Producer) jitter() uint64 {
	s := pr.boff
	if s == 0 {
		s = uint64(pr.idx)*0x9E3779B97F4A7C15 + 0x1F123BB5
	}
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	pr.boff = s
	return s
}

// sleepJittered sleeps a uniformly jittered duration in [d/2, d) — the
// desynchronization that keeps P stalled lanes from retrying in lockstep
// against the same full ring.
func (pr *Producer) sleepJittered(d time.Duration) {
	half := uint64(d / 2)
	time.Sleep(time.Duration(half + pr.jitter()%(half+1)))
}

// pushCtx enqueues x with bounded waiting: a short cooperative-yield spin,
// then jittered exponential backoff, giving up when ctx is done.
func (pr *Producer) pushCtx(ctx context.Context, r *Ring, x int64) error {
	if r.Push(x) {
		return nil
	}
	done := ctx.Done()
	backoff := backoffMin
	spin := 0
	for {
		if r.Push(x) {
			return nil
		}
		if spin < 64 {
			spin++
			stdruntime.Gosched()
			continue
		}
		select {
		case <-done:
			return errors.Join(ErrBackpressure, ctx.Err())
		default:
		}
		pr.sleepJittered(backoff)
		if backoff < backoffMax {
			backoff *= 2
		}
	}
}

// pushAllCtx enqueues a run with bounded waiting, returning how many
// elements landed. Progress resets the backoff; only a full stall walks it
// up to backoffMax.
func (pr *Producer) pushAllCtx(ctx context.Context, r *Ring, xs []int64) (int, error) {
	done := ctx.Done()
	backoff := backoffMin
	spin := 0
	pushed := 0
	for pushed < len(xs) {
		if n := r.PushBatch(xs[pushed:]); n > 0 {
			pushed += n
			spin = 0
			backoff = backoffMin
			continue
		}
		if spin < 64 {
			spin++
			stdruntime.Gosched()
			continue
		}
		select {
		case <-done:
			return pushed, errors.Join(ErrBackpressure, ctx.Err())
		default:
		}
		pr.sleepJittered(backoff)
		if backoff < backoffMax {
			backoff *= 2
		}
	}
	return pushed, nil
}

// OfferCtx is Offer with bounded waiting: when the pipeline applies
// backpressure it waits with jittered exponential backoff and gives up once
// ctx is done, returning an error matching both ErrBackpressure and the
// ctx error. A rejected element was not accepted and is not counted.
// Shares Offer's shutdown protocol and its ErrClosed semantics.
func (pr *Producer) OfferCtx(ctx context.Context, x int64) error {
	pr.inFlight.Add(1)
	defer pr.inFlight.Add(-1)
	if pr.closed.Load() || pr.p.closing.Load() {
		return ErrClosed
	}
	if pr.ring != nil {
		return pr.pushCtx(ctx, pr.ring, x)
	}
	return pr.pushCtx(ctx, pr.p.shardRing[pr.p.cfg.RouteLive(pr.idx, x)], x)
}

// OfferBatchCtx is OfferBatch with bounded waiting. It returns how many of
// the batch's elements were accepted: on ErrBackpressure the prefix count
// for lane-ordered paths, or the per-shard total for the live bucketed path
// (which elements landed is then routing-dependent — accepted elements are
// applied normally either way, so round counters stay conserved).
func (pr *Producer) OfferBatchCtx(ctx context.Context, xs []int64) (int, error) {
	pr.inFlight.Add(1)
	defer pr.inFlight.Add(-1)
	if pr.closed.Load() || pr.p.closing.Load() {
		return 0, ErrClosed
	}
	if pr.ring != nil {
		return pr.pushAllCtx(ctx, pr.ring, xs)
	}
	p := pr.p
	if p.cfg.RouteLiveBatch == nil {
		for i, x := range xs {
			if err := pr.pushCtx(ctx, p.shardRing[p.cfg.RouteLive(pr.idx, x)], x); err != nil {
				return i, err
			}
		}
		return len(xs), nil
	}
	if p.cfg.Shards == 1 {
		return pr.pushAllCtx(ctx, p.shardRing[0], xs)
	}
	if cap(pr.dst) < len(xs) {
		pr.dst = make([]int, len(xs))
	}
	if pr.buckets == nil {
		pr.buckets = make([][]int64, p.cfg.Shards)
	}
	dst := pr.dst[:len(xs)]
	p.cfg.RouteLiveBatch(pr.idx, xs, dst)
	buckets := pr.buckets
	for s := range buckets {
		buckets[s] = buckets[s][:0]
	}
	for i, x := range xs {
		buckets[dst[i]] = append(buckets[dst[i]], x)
	}
	accepted := 0
	for s, b := range buckets {
		if len(b) == 0 {
			continue
		}
		n, err := pr.pushAllCtx(ctx, p.shardRing[s], b)
		accepted += n
		if err != nil {
			return accepted, err
		}
	}
	return accepted, nil
}

// CloseCtx is Close with a drain deadline: it starts the shutdown drain
// (idempotently, shared with Close) and waits for it until ctx is done. On
// timeout it returns an error matching both ErrDrainTimeout and the ctx
// error; the drain keeps running in the background, and a later Close or
// CloseCtx waits for the same drain.
func (p *Pipeline) CloseCtx(ctx context.Context) (Epoch, error) {
	select {
	case <-p.beginClose():
		return Epoch{Seq: p.epoch.Add(1), Applied: p.Applied()}, nil
	case <-ctx.Done():
		return Epoch{Seq: p.epoch.Load(), Applied: p.Applied()}, errors.Join(ErrDrainTimeout, ctx.Err())
	}
}

// TryWithShard is WithShard with bounded waiting: it runs fn under shard
// s's lock if the lock can be had within wait (a single attempt when wait
// <= 0), and reports whether fn ran. A shard whose consumer is stalled
// mid-apply keeps its lock for the duration of the stall; degraded reads
// use TryWithShard to skip such shards instead of blocking behind them.
func (p *Pipeline) TryWithShard(s int, wait time.Duration, fn func()) bool {
	mu := &p.shardMu[s]
	if !mu.TryLock() {
		if wait <= 0 {
			return false
		}
		deadline := time.Now().Add(wait) //robust:nondet lock-acquisition deadline only; never reaches sampler or verdict state
		spin := 0
		for {
			idleWait(&spin)
			if mu.TryLock() {
				break
			}
			if time.Now().After(deadline) { //robust:nondet lock-acquisition deadline only; never reaches sampler or verdict state
				return false
			}
		}
	}
	defer mu.Unlock()
	fn()
	return true
}
