// Package runtime is the concurrent serving runtime underneath the sharded
// engine: a lock-free ingest pipeline that lets many producer goroutines
// offer stream elements while per-shard consumer goroutines drain them into
// the (single-threaded) sampler + accumulator batch paths, and monitors
// query live state behind epoch-stamped read barriers.
//
// The pipeline has two stages:
//
//   - an MPSC routing stage that decides each element's destination shard —
//     either concurrently on the producers themselves (live mode, for
//     routers that are pure functions or own per-producer randomness) or on
//     a dedicated router goroutine that merges producer lanes in global
//     sequence order (deterministic mode);
//   - one bounded SPSC ring per shard feeding that shard's consumer
//     goroutine, which applies elements in FIFO order in bounded chunks
//     while holding the shard's lock.
//
// Backpressure is the rings' bounded capacity: a full ring makes the
// producer (or router) spin-then-sleep until the consumer catches up, so
// memory use is fixed no matter how far producers outrun ingest.
//
// Reads never stall the offer hot path: queries lock individual shards (or,
// under Freeze, all of them) only against the consumers' bounded apply
// chunks, while producers keep pushing into the rings.
package runtime

import "sync/atomic"

// Ring is a bounded lock-free multi-producer single-consumer queue of
// stream elements (Vyukov's bounded-queue cell/sequence scheme restricted
// to one consumer). Any number of goroutines may Push concurrently; Pop,
// PopInto and Empty must be called from a single consumer goroutine at a
// time. Capacity is rounded up to a power of two.
type Ring struct {
	mask  uint64
	cells []ringCell
	enq   atomic.Uint64 // next enqueue position; also the count of pushes ever started
	deq   uint64        // next dequeue position; consumer-owned
}

type ringCell struct {
	seq atomic.Uint64
	val int64
}

// NewRing returns a ring of at least the given capacity (rounded up to a
// power of two, minimum 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1), cells: make([]ringCell, n)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.cells) }

// Push enqueues x, reporting false when the ring is full. Safe for
// concurrent use by any number of producers.
func (r *Ring) Push(x int64) bool {
	pos := r.enq.Load()
	for {
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				c.val = x
				c.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			// The cell still holds an element the consumer has not taken:
			// the ring is full.
			return false
		default:
			// Another producer claimed this position; reload.
			pos = r.enq.Load()
		}
	}
}

// Pop dequeues one element. Consumer-only.
func (r *Ring) Pop() (int64, bool) {
	c := &r.cells[r.deq&r.mask]
	if c.seq.Load() != r.deq+1 {
		return 0, false
	}
	v := c.val
	c.seq.Store(r.deq + r.mask + 1)
	r.deq++
	return v, true
}

// PopInto dequeues up to len(buf) elements into buf, returning how many it
// took. Consumer-only.
func (r *Ring) PopInto(buf []int64) int {
	n := 0
	for n < len(buf) {
		v, ok := r.Pop()
		if !ok {
			break
		}
		buf[n] = v
		n++
	}
	return n
}

// Empty reports whether every push that has started is consumed.
// Consumer-only (it reads the consumer's dequeue cursor).
func (r *Ring) Empty() bool { return r.enq.Load() == r.deq }

// Pushed returns the number of pushes ever started on the ring. An element
// whose Push has returned is always counted; the FIFO drain barrier in
// Pipeline.Flush is built on this.
func (r *Ring) Pushed() uint64 { return r.enq.Load() }
