// Package runtime is the concurrent serving runtime underneath the sharded
// engine: a lock-free ingest pipeline that lets many producer goroutines
// offer stream elements while per-shard consumer goroutines drain them into
// the (single-threaded) sampler + accumulator batch paths, and monitors
// query live state behind epoch-stamped read barriers.
//
// The pipeline has two stages:
//
//   - an MPSC routing stage that decides each element's destination shard —
//     either concurrently on the producers themselves (live mode, for
//     routers that are pure functions or own per-producer randomness) or on
//     a dedicated router goroutine that merges producer lanes in global
//     sequence order (deterministic mode);
//   - one bounded SPSC ring per shard feeding that shard's consumer
//     goroutine, which applies elements in FIFO order in bounded chunks
//     while holding the shard's lock.
//
// Backpressure is the rings' bounded capacity: a full ring makes the
// producer (or router) spin-then-sleep until the consumer catches up, so
// memory use is fixed no matter how far producers outrun ingest.
//
// Reads never stall the offer hot path: queries lock individual shards (or,
// under Freeze, all of them) only against the consumers' bounded apply
// chunks, while producers keep pushing into the rings.
package runtime

import "sync/atomic"

// Ring is a bounded lock-free multi-producer single-consumer queue of
// stream elements (Vyukov's bounded-queue cell/sequence scheme restricted
// to one consumer). Any number of goroutines may Push or PushBatch
// concurrently; Pop and PopInto must be serialized by the caller (at most
// one goroutine popping at a time — the pipeline enforces this with the
// shard lock, which is what lets idle consumers steal from foreign rings).
// The dequeue cursor is atomic so producers and stealers may read Backlog
// and Empty concurrently with the popper. Capacity is rounded up to a
// power of two.
type Ring struct {
	mask  uint64
	cells []ringCell
	enq   atomic.Uint64 // next enqueue position; also the count of pushes ever started
	deq   atomic.Uint64 // next dequeue position; owned by whoever holds the pop role
}

type ringCell struct {
	seq atomic.Uint64
	val int64
}

// NewRing returns a ring of at least the given capacity (rounded up to a
// power of two, minimum 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1), cells: make([]ringCell, n)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.cells) }

// Push enqueues x, reporting false when the ring is full. Safe for
// concurrent use by any number of producers.
//
//robust:hotpath
func (r *Ring) Push(x int64) bool {
	pos := r.enq.Load()
	for {
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				c.val = x
				c.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case seq < pos:
			// The cell still holds an element the consumer has not taken:
			// the ring is full.
			return false
		default:
			// Another producer claimed this position; reload.
			pos = r.enq.Load()
		}
	}
}

// PushBatch enqueues a prefix of xs with one claim for the whole run: it
// reserves min(len(xs), free) consecutive slots via a single
// compare-and-swap, writes the values, and publishes their sequence numbers
// in order. It returns how many elements it took (0 when the ring is full —
// the caller retries the remainder). Safe for concurrent use by any number
// of producers, and pushes from one goroutine stay FIFO.
//
// The free-slot count is computed from the dequeue cursor, which is
// published only after a popped cell's sequence number is recycled; a stale
// read therefore only under-counts free slots, so every claimed cell is
// guaranteed writable without per-cell sequence checks.
//
//robust:hotpath
func (r *Ring) PushBatch(xs []int64) int {
	if len(xs) == 0 {
		return 0
	}
	for {
		// Load order matters: enq first, then deq. The ring invariant is
		// enq <= deq+cap, and deq only grows, so a deq read after the enq
		// read satisfies pos-deq <= cap and the subtraction cannot wrap.
		pos := r.enq.Load()
		free := uint64(len(r.cells)) - (pos - r.deq.Load())
		if free == 0 {
			return 0
		}
		n := uint64(len(xs))
		if n > free {
			n = free
		}
		if !r.enq.CompareAndSwap(pos, pos+n) {
			continue
		}
		for i := uint64(0); i < n; i++ {
			c := &r.cells[(pos+i)&r.mask]
			c.val = xs[i]
			c.seq.Store(pos + i + 1)
		}
		return int(n)
	}
}

// Pop dequeues one element. At most one goroutine may hold the pop role at
// a time (see the type comment).
func (r *Ring) Pop() (int64, bool) {
	d := r.deq.Load()
	c := &r.cells[d&r.mask]
	if c.seq.Load() != d+1 {
		return 0, false
	}
	v := c.val
	// Recycle the cell before publishing the new cursor: PushBatch sizes
	// its claim from the cursor, so cursor-visible slots must already be
	// writable.
	c.seq.Store(d + r.mask + 1)
	r.deq.Store(d + 1)
	return v, true
}

// PopInto dequeues up to len(buf) elements into buf, returning how many it
// took. Same pop-role rule as Pop.
func (r *Ring) PopInto(buf []int64) int {
	n := 0
	for n < len(buf) {
		v, ok := r.Pop()
		if !ok {
			break
		}
		buf[n] = v
		n++
	}
	return n
}

// Empty reports whether every push that has started is consumed. Safe from
// any goroutine; exact only while pushes are quiescent.
func (r *Ring) Empty() bool { return r.enq.Load() == r.deq.Load() }

// Backlog returns the number of elements pushed but not yet popped. It is a
// racy snapshot — safe from any goroutine, used to pick work-stealing
// victims and to skip locking provably empty rings.
func (r *Ring) Backlog() uint64 {
	d := r.deq.Load()
	e := r.enq.Load()
	// enq is read second, so e >= the enq matching d; the subtraction
	// cannot wrap.
	return e - d
}

// Pushed returns the number of pushes ever started on the ring. An element
// whose Push has returned is always counted; the FIFO drain barrier in
// Pipeline.Flush is built on this.
func (r *Ring) Pushed() uint64 { return r.enq.Load() }
