package runtime

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// startSupervised builds a 1-shard live pipeline with the given hooks and a
// collecting Apply; ChunkCap 1 makes every applied chunk a single element,
// so tests can reason about chunk boundaries exactly.
func startSupervised(t *testing.T, before func(int, int, []int64), onPanic func(int, any, []int64, int) Disposition, applyWrap func(apply func(int, []int64)) func(int, []int64)) (*Pipeline, func() [][]int64) {
	t.Helper()
	apply, got := collectingApply(1)
	if applyWrap != nil {
		apply = applyWrap(apply)
	}
	p, err := Start(Config{
		Shards:       1,
		Producers:    1,
		RingSize:     64,
		ChunkCap:     1,
		RouteLive:    func(int, int64) int { return 0 },
		Apply:        apply,
		BeforeApply:  before,
		OnApplyPanic: onPanic,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, got
}

// TestSupervisedRetryRecovers: a one-shot injected panic is recovered, the
// chunk is retried, and nothing is lost or double-applied.
func TestSupervisedRetryRecovers(t *testing.T) {
	var crashed atomic.Bool
	var retries atomic.Uint64
	before := func(shard, attempt int, xs []int64) {
		if attempt == 0 && crashed.CompareAndSwap(false, true) {
			panic("injected crash")
		}
	}
	onPanic := func(shard int, v any, xs []int64, attempt int) Disposition {
		retries.Add(1)
		return Retry
	}
	p, got := startSupervised(t, before, onPanic, nil)
	pr := p.Producer(0)
	const n = 100
	for i := 0; i < n; i++ {
		if err := pr.Offer(int64(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	p.Close()
	if retries.Load() != 1 {
		t.Fatalf("supervisor saw %d panics, want 1", retries.Load())
	}
	if p.Lost() != 0 {
		t.Fatalf("Lost = %d, want 0", p.Lost())
	}
	xs := got()[0]
	if len(xs) != n {
		t.Fatalf("applied %d elements, want %d (no loss, no double-apply)", len(xs), n)
	}
	seen := make(map[int64]bool, n)
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("element %d applied twice", x)
		}
		seen[x] = true
	}
}

// TestSupervisedDropAccountsLoss: a chunk that fails every retry is dropped
// after the supervisor gives up; it counts as lost AND as consumed (Flush
// and Close terminate), and every other element is applied.
func TestSupervisedDropAccountsLoss(t *testing.T) {
	const poison = int64(999) // outside the 1..n stream values
	onPanic := func(shard int, v any, xs []int64, attempt int) Disposition {
		if attempt >= 2 {
			return Drop
		}
		return Retry
	}
	wrap := func(apply func(int, []int64)) func(int, []int64) {
		return func(s int, xs []int64) {
			for _, x := range xs {
				if x == poison {
					panic("poisoned batch")
				}
			}
			apply(s, xs)
		}
	}
	p, got := startSupervised(t, nil, onPanic, wrap)
	pr := p.Producer(0)
	const n = 50
	for i := 0; i < n; i++ {
		x := int64(i + 1)
		if i == 17 {
			x = poison
		}
		if err := pr.Offer(x); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush() // must not hang: the dropped chunk still counts as consumed
	ep := p.Close()
	if ep.Applied != n {
		t.Fatalf("barrier applied = %d, want %d (drops count as consumed)", ep.Applied, n)
	}
	if p.Lost() != 1 || p.ShardLost(0) != 1 {
		t.Fatalf("Lost = %d / ShardLost = %d, want 1/1", p.Lost(), p.ShardLost(0))
	}
	if len(got()[0]) != n-1 {
		t.Fatalf("ingested %d elements, want %d", len(got()[0]), n-1)
	}
}

// TestSupervisedPristineRetry: a BeforeApply hook that corrupts the chunk
// in place must not leak the corruption into the retry — the pipeline
// restores the pristine chunk first.
func TestSupervisedPristineRetry(t *testing.T) {
	var corrupted atomic.Bool
	before := func(shard, attempt int, xs []int64) {
		if attempt == 0 && corrupted.CompareAndSwap(false, true) {
			for i := range xs {
				xs[i] = -1
			}
		}
	}
	onPanic := func(int, any, []int64, int) Disposition { return Retry }
	wrap := func(apply func(int, []int64)) func(int, []int64) {
		return func(s int, xs []int64) {
			for _, x := range xs {
				if x < 0 {
					panic("validation: corrupt chunk")
				}
			}
			apply(s, xs)
		}
	}
	p, got := startSupervised(t, before, onPanic, wrap)
	pr := p.Producer(0)
	const n = 20
	for i := 0; i < n; i++ {
		if err := pr.Offer(int64(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	p.Close()
	if !corrupted.Load() {
		t.Fatal("corruption hook never fired")
	}
	xs := got()[0]
	if len(xs) != n {
		t.Fatalf("applied %d, want %d", len(xs), n)
	}
	for _, x := range xs {
		if x < 0 {
			t.Fatal("corrupted value reached shard state on retry")
		}
	}
}

// TestOfferCtxBackpressure: with the consumer wedged and the ring full,
// OfferCtx gives up at its deadline with an error matching both
// ErrBackpressure and the ctx error — it never blocks forever.
func TestOfferCtxBackpressure(t *testing.T) {
	gate := make(chan struct{})
	apply, _ := collectingApply(1)
	p, err := Start(Config{
		Shards:    1,
		Producers: 1,
		RingSize:  2,
		ChunkCap:  4,
		RouteLive: func(int, int64) int { return 0 },
		Apply: func(s int, xs []int64) {
			<-gate // wedged consumer holding the shard lock
			apply(s, xs)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := p.Producer(0)
	// Fill the pipeline: the consumer wedges on the first chunk, then the
	// ring backs up. Some offers land; eventually one must time out.
	sawBackpressure := false
	for i := 0; i < 32; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		err := pr.OfferCtx(ctx, int64(i+1))
		cancel()
		if err != nil {
			if !errors.Is(err, ErrBackpressure) || !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("OfferCtx error = %v, want ErrBackpressure joined with DeadlineExceeded", err)
			}
			sawBackpressure = true
			break
		}
	}
	if !sawBackpressure {
		t.Fatal("ring never filled — OfferCtx never hit backpressure")
	}
	close(gate)
	p.Close()
}

// TestCloseCtxDrainDeadline: with a consumer wedged mid-apply, CloseCtx
// returns ErrDrainTimeout at its deadline instead of hanging; the drain
// finishes in the background once the consumer unwedges, and a plain Close
// then observes the fully drained pipeline.
func TestCloseCtxDrainDeadline(t *testing.T) {
	gate := make(chan struct{})
	apply, got := collectingApply(1)
	p, err := Start(Config{
		Shards:    1,
		Producers: 1,
		RingSize:  64,
		ChunkCap:  4,
		RouteLive: func(int, int64) int { return 0 },
		Apply: func(s int, xs []int64) {
			select {
			case <-gate:
			default:
				<-gate
			}
			apply(s, xs)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := p.Producer(0)
	const n = 16
	for i := 0; i < n; i++ {
		if err := pr.Offer(int64(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.CloseCtx(ctx); !errors.Is(err, ErrDrainTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseCtx error = %v, want ErrDrainTimeout joined with DeadlineExceeded", err)
	}
	close(gate) // unwedge; the background drain completes
	ep := p.Close()
	if ep.Applied != n {
		t.Fatalf("post-drain applied = %d, want %d", ep.Applied, n)
	}
	if len(got()[0]) != n {
		t.Fatalf("ingested %d elements, want %d", len(got()[0]), n)
	}
}

// TestTryWithShard: a held shard lock makes TryWithShard report false
// within its bound instead of blocking; a free lock runs fn.
func TestTryWithShard(t *testing.T) {
	apply, _ := collectingApply(1)
	p, err := Start(Config{
		Shards:    1,
		Producers: 1,
		RouteLive: func(int, int64) int { return 0 },
		Apply:     apply,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ran := false
	if !p.TryWithShard(0, 0, func() { ran = true }) || !ran {
		t.Fatal("TryWithShard on a free lock did not run fn")
	}

	hold := make(chan struct{})
	held := make(chan struct{})
	go p.WithShard(0, func() {
		close(held)
		<-hold
	})
	<-held
	start := time.Now() //robust:nondet measures bounded-wait latency, not sampler state
	if p.TryWithShard(0, 10*time.Millisecond, func() {}) {
		t.Fatal("TryWithShard acquired a held lock")
	}
	if waited := time.Since(start); waited > time.Second { //robust:nondet measures bounded-wait latency, not sampler state

		t.Fatalf("TryWithShard waited %v, want bounded by ~10ms", waited)
	}
	close(hold)
}

// TestOfferAfterClose: every offer variant reports ErrClosed after
// shutdown instead of racing or panicking.
func TestOfferAfterClose(t *testing.T) {
	apply, _ := collectingApply(1)
	p, err := Start(Config{
		Shards:    1,
		Producers: 1,
		RouteLive: func(int, int64) int { return 0 },
		Apply:     apply,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	pr := p.Producer(0)
	if err := pr.Offer(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Offer after close = %v, want ErrClosed", err)
	}
	if err := pr.OfferBatch([]int64{1, 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("OfferBatch after close = %v, want ErrClosed", err)
	}
	if err := pr.OfferCtx(context.Background(), 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("OfferCtx after close = %v, want ErrClosed", err)
	}
	if n, err := pr.OfferBatchCtx(context.Background(), []int64{1}); n != 0 || !errors.Is(err, ErrClosed) {
		t.Fatalf("OfferBatchCtx after close = (%d, %v), want (0, ErrClosed)", n, err)
	}
	// Close after Close is a no-op returning a fresh epoch.
	p.Close()
}
