package runtime

import (
	"testing"

	"robustsample/internal/rng"
)

// TestRouteHashBatchMatchesScalar pins the batch lane to the scalar
// multiplicative-hash route for every length mod 8, including the unrolled
// groups and the tail.
func TestRouteHashBatchMatchesScalar(t *testing.T) {
	r := rng.New(42)
	for _, n := range []int{0, 1, 7, 8, 9, 16, 100, 1023} {
		for _, shards := range []int{1, 2, 7, 8, 64} {
			keys := make([]int64, n)
			for i := range keys {
				keys[i] = int64(r.Uint64())
			}
			dst := make([]int, n)
			RouteHashBatch(keys, dst, shards)
			for i, k := range keys {
				want := int(rng.Mix64(uint64(k)) % uint64(shards))
				if dst[i] != want {
					t.Fatalf("n=%d shards=%d: dst[%d]=%d want %d", n, shards, i, dst[i], want)
				}
			}
		}
	}
}

func BenchmarkRouteHashBatch(b *testing.B) {
	keys := make([]int64, 4096)
	r := rng.New(1)
	for i := range keys {
		keys[i] = int64(r.Uint64())
	}
	dst := make([]int, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RouteHashBatch(keys, dst, 16)
	}
	b.SetBytes(int64(len(keys) * 8))
}
