package runtime

import (
	"runtime"
	"sync"
	"testing"
)

func TestRingSerialFIFO(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	for i := int64(0); i < 8; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) reported full", i)
		}
	}
	if r.Push(99) {
		t.Fatal("Push succeeded on a full ring")
	}
	for i := int64(0); i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop succeeded on an empty ring")
	}
	if !r.Empty() {
		t.Fatal("drained ring not Empty")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{0, 2}, {1, 2}, {3, 4}, {8, 8}, {1000, 1024}} {
		if got := NewRing(tc.ask).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestRingMPSC pushes a known multiset from several producers while one
// consumer drains, and checks nothing is lost, duplicated or corrupted.
func TestRingMPSC(t *testing.T) {
	const producers = 4
	const perProducer = 5000
	r := NewRing(64)
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := int64(p*perProducer + i)
				for !r.Push(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	seen := make([]bool, producers*perProducer)
	got := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		v, ok := r.Pop()
		if ok {
			if v < 0 || v >= int64(len(seen)) {
				t.Errorf("popped out-of-range value %d", v)
				return
			}
			if seen[v] {
				t.Errorf("value %d popped twice", v)
				return
			}
			seen[v] = true
			got++
			if got == len(seen) {
				break
			}
			continue
		}
		select {
		case <-done:
			// Producers finished; drain whatever is left, then stop.
			for {
				v, ok := r.Pop()
				if !ok {
					if got != len(seen) {
						t.Fatalf("drained %d of %d values", got, len(seen))
					}
					return
				}
				if seen[v] {
					t.Fatalf("value %d popped twice", v)
				}
				seen[v] = true
				got++
			}
		default:
			runtime.Gosched()
		}
	}
	if r.Pushed() != uint64(producers*perProducer) {
		t.Errorf("Pushed = %d, want %d", r.Pushed(), producers*perProducer)
	}
}

// TestRingPerProducerFIFO checks that each producer's own elements come out
// in the order that producer pushed them (the property the deterministic
// merge stage depends on).
func TestRingPerProducerFIFO(t *testing.T) {
	const producers = 3
	const perProducer = 3000
	r := NewRing(32)
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				// value = producer*2^32 + sequence
				v := int64(p)<<32 | int64(i)
				for !r.Push(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	next := make([]int64, producers)
	got := 0
	for got < producers*perProducer {
		v, ok := r.Pop()
		if !ok {
			select {
			case <-done:
				if r.Empty() && got < producers*perProducer {
					t.Fatalf("ring drained at %d of %d", got, producers*perProducer)
				}
			default:
			}
			runtime.Gosched()
			continue
		}
		p, seq := v>>32, v&0xffffffff
		if seq != next[p] {
			t.Fatalf("producer %d: popped seq %d, want %d", p, seq, next[p])
		}
		next[p]++
		got++
	}
}
