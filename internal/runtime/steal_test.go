package runtime

import (
	"runtime"
	"sync"
	"testing"
)

// TestRingPushBatchFIFO drives PushBatch through wrap-arounds interleaved
// with partial drains and checks the ring behaves exactly like per-element
// pushes: same values, same order, same full/empty accounting.
func TestRingPushBatchFIFO(t *testing.T) {
	r := NewRing(8)
	next := int64(0)
	popped := int64(0)
	offer := func(k int) int {
		xs := make([]int64, k)
		for i := range xs {
			xs[i] = next + int64(i)
		}
		n := r.PushBatch(xs)
		next += int64(n)
		return n
	}
	drain := func(k int) {
		buf := make([]int64, k)
		n := r.PopInto(buf)
		for i := 0; i < n; i++ {
			if buf[i] != popped {
				t.Fatalf("popped %d, want %d", buf[i], popped)
			}
			popped++
		}
	}
	if n := offer(5); n != 5 {
		t.Fatalf("PushBatch(5) on empty ring took %d", n)
	}
	if n := offer(6); n != 3 {
		t.Fatalf("PushBatch(6) with 3 free took %d, want 3", n)
	}
	if n := offer(1); n != 0 {
		t.Fatalf("PushBatch on full ring took %d, want 0", n)
	}
	drain(4)
	// Wrap the cursor several times with mixed batch sizes.
	for i := 0; i < 50; i++ {
		offer(3)
		drain(2)
	}
	drain(16)
	if got := next - popped; got != int64(r.Backlog()) {
		t.Fatalf("backlog %d, want %d", r.Backlog(), next-popped)
	}
	drain(int(r.Backlog()))
	if !r.Empty() {
		t.Fatal("drained ring not Empty")
	}
	if r.Pushed() != uint64(next) {
		t.Fatalf("Pushed = %d, want %d", r.Pushed(), next)
	}
}

// TestRingPushBatchConcurrent checks conservation and per-producer FIFO
// when several goroutines push batches of varying sizes against one
// consumer on a small ring.
func TestRingPushBatchConcurrent(t *testing.T) {
	const producers = 4
	const perProducer = 5000
	r := NewRing(64)
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			defer wg.Done()
			xs := make([]int64, 0, 37)
			flush := func() {
				rest := xs
				for len(rest) > 0 {
					n := r.PushBatch(rest)
					if n == 0 {
						runtime.Gosched()
						continue
					}
					rest = rest[n:]
				}
				xs = xs[:0]
			}
			for i := 0; i < perProducer; i++ {
				xs = append(xs, int64(p*perProducer+i))
				if len(xs) == cap(xs) {
					flush()
				}
			}
			flush()
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		seen := make([]bool, producers*perProducer)
		lastPerProducer := make([]int64, producers)
		for i := range lastPerProducer {
			lastPerProducer[i] = -1
		}
		for count := 0; count < producers*perProducer; {
			v, ok := r.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v < 0 || v >= producers*perProducer {
				t.Errorf("popped out-of-range value %d", v)
				return
			}
			if seen[v] {
				t.Errorf("value %d popped twice", v)
				return
			}
			seen[v] = true
			p := v / perProducer
			if v <= lastPerProducer[p] {
				t.Errorf("producer %d order violated: %d after %d", p, v, lastPerProducer[p])
				return
			}
			lastPerProducer[p] = v
			count++
		}
	}()
	wg.Wait()
	<-done
	if !r.Empty() {
		t.Fatal("ring not empty after full drain")
	}
}

// TestPipelineSkewedRoutingLiveness routes ~90% of the traffic to shard 0
// through a live batch router and checks three things: the pipeline stays
// live and conserves every element (reconciled per shard against what the
// router decided), idle consumers actually engage the work-stealing path,
// and per-shard apply order is preserved even when a stolen chunk does the
// applying. Run under -race this also exercises the pop-under-shard-lock
// handoff between consumers.
func TestPipelineSkewedRoutingLiveness(t *testing.T) {
	const S, P = 4, 2
	const perLane = 1 << 16
	route := func(x int64) int {
		if x%10 != 0 {
			return 0 // ~90% of traffic
		}
		return 1 + int(uint64(x)%(S-1))
	}
	apply, got := collectingApply(S)
	p, err := Start(Config{
		Shards:    S,
		Producers: P,
		RingSize:  64, // small ring: shard 0 backs up, consumers 1..3 idle
		ChunkCap:  32,
		RouteLive: func(_ int, x int64) int { return route(x) },
		RouteLiveBatch: func(_ int, xs []int64, dst []int) {
			for i, x := range xs {
				dst[i] = route(x)
			}
		},
		Apply: apply,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(P)
	for lane := 0; lane < P; lane++ {
		go func(lane int) {
			defer wg.Done()
			pr := p.Producer(lane)
			batch := make([]int64, 0, 111)
			for i := 0; i < perLane; i++ {
				batch = append(batch, int64(lane*perLane+i))
				if len(batch) == cap(batch) {
					if err := pr.OfferBatch(batch); err != nil {
						t.Errorf("OfferBatch: %v", err)
						return
					}
					batch = batch[:0]
				}
			}
			if err := pr.OfferBatch(batch); err != nil {
				t.Errorf("OfferBatch: %v", err)
			}
		}(lane)
	}
	wg.Wait()
	ep := p.Flush()
	if ep.Applied != P*perLane {
		t.Fatalf("applied %d, want %d", ep.Applied, P*perLane)
	}
	// Round-counter reconciliation: every element landed exactly once, on
	// the shard the router chose, in per-lane order within each shard.
	seen := make([]bool, P*perLane)
	lastPerLane := make([][]int64, S)
	for s := range lastPerLane {
		lastPerLane[s] = make([]int64, P)
		for l := range lastPerLane[s] {
			lastPerLane[s][l] = -1
		}
	}
	for s, xs := range got() {
		for _, x := range xs {
			if route(x) != s {
				t.Fatalf("shard %d holds misrouted element %d", s, x)
			}
			if seen[x] {
				t.Fatalf("element %d applied twice", x)
			}
			seen[x] = true
			lane := int(x) / perLane
			if x <= lastPerLane[s][lane] {
				t.Fatalf("shard %d: lane %d order violated: %d after %d", s, lane, x, lastPerLane[s][lane])
			}
			lastPerLane[s][lane] = x
		}
	}
	for x, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost", x)
		}
	}
	if p.Stolen() == 0 {
		t.Fatal("expected idle consumers to steal from the skewed shard, Stolen() = 0")
	}
	p.Close()
}
