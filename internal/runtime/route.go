package runtime

import "robustsample/internal/rng"

// RouteHashBatch fills dst[i] = Mix64(uint64(keys[i])) % shards — the
// batch lane of multiplicative-hash routing, shared by the sharded serving
// engine's live HashByValue router and the farm's tenant-key routing. Keys
// hash in unrolled groups of 8 with one bounds check per group: the
// full-slice expressions pin both windows so the compiler drops the
// per-element checks. The modulo must stay `% m` (not a fast-range
// reduction) so batch destinations are exactly the scalar route's.
// dst must be at least as long as keys.
//
//robust:hotpath
func RouteHashBatch(keys []int64, dst []int, shards int) {
	m := uint64(shards)
	i := 0
	for ; i+8 <= len(keys); i += 8 {
		x := keys[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = int(rng.Mix64(uint64(x[0])) % m)
		d[1] = int(rng.Mix64(uint64(x[1])) % m)
		d[2] = int(rng.Mix64(uint64(x[2])) % m)
		d[3] = int(rng.Mix64(uint64(x[3])) % m)
		d[4] = int(rng.Mix64(uint64(x[4])) % m)
		d[5] = int(rng.Mix64(uint64(x[5])) % m)
		d[6] = int(rng.Mix64(uint64(x[6])) % m)
		d[7] = int(rng.Mix64(uint64(x[7])) % m)
	}
	for ; i < len(keys); i++ {
		dst[i] = int(rng.Mix64(uint64(keys[i])) % m)
	}
}
