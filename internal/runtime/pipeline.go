package runtime

import (
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed reports an Offer against a closed producer lane or pipeline.
var ErrClosed = errors.New("runtime: pipeline is closed")

// Config describes a pipeline. Exactly one of RouteLive / RouteSerial is
// consulted, selected by Deterministic.
type Config struct {
	// Shards is the number of consumer lanes (one goroutine + ring each).
	Shards int
	// Producers is the number of producer lanes. Each lane is owned by one
	// goroutine at a time (SPSC on the lane's structures).
	Producers int
	// RingSize is the per-ring capacity (rounded up to a power of two);
	// <= 0 selects 1024. Bounded rings are the backpressure mechanism.
	RingSize int
	// ChunkCap caps how many elements a consumer applies per lock hold;
	// <= 0 selects 512. Smaller values shorten query stalls, larger values
	// amortize locking. Results never depend on it (shard application is
	// chunking-invariant).
	ChunkCap int
	// Deterministic selects the sequenced routing stage: a single router
	// goroutine merges the producer lanes in round-robin order (lane 0's
	// first element, lane 1's first, ..., lane 0's second, ...) and routes
	// serially via RouteSerial, so the ingested stream is a deterministic
	// function of the producers' inputs alone. Closed lanes drop out of
	// the rotation. Offering a stream striped across lanes (lane p takes
	// elements p, p+P, p+2P, ...) therefore reproduces serial ingest of
	// the original stream exactly.
	Deterministic bool
	// RouteLive routes one element in live mode. It is called concurrently
	// from producer goroutines and must be safe for that; the producer
	// index identifies the calling lane so implementations can keep
	// per-lane state (e.g. a private RNG) without synchronization.
	RouteLive func(producer int, x int64) int
	// RouteLiveBatch, when non-nil, routes a whole batch in live mode:
	// it must fill dst[i] with the destination shard of xs[i], exactly as
	// len(xs) RouteLive calls on the same lane would (len(dst) == len(xs)).
	// Batch offers then bucket elements per shard and enqueue each bucket
	// with one ring claim instead of one per element. Same concurrency
	// contract as RouteLive.
	RouteLiveBatch func(producer int, xs []int64, dst []int)
	// RouteSerial routes one element in deterministic mode. It is called
	// from the router goroutine only, in global sequence order.
	RouteSerial func(x int64) int
	// Apply drains one routed chunk into shard state. It is called with
	// the shard's lock held — never concurrently for the same shard — and
	// must not retain xs.
	Apply func(shard int, xs []int64)
	// BeforeApply, when non-nil, runs immediately before every Apply
	// attempt, under the shard lock, with the chunk about to be applied.
	// It is the fault-injection hook: it may sleep (a stalled or slow
	// consumer), panic (a crashed consumer), or corrupt xs in place (a
	// poisoned batch — the pipeline keeps a pristine copy and restores it
	// before each retry).
	BeforeApply func(shard, attempt int, xs []int64)
	// OnApplyPanic, when non-nil, supervises Apply: a panic raised by
	// BeforeApply or Apply is recovered and reported here, still under the
	// shard lock, and the returned Disposition decides whether the chunk
	// is retried (attempt increments) or dropped. Dropped chunks still
	// count toward the applied totals — the barrier contract is "consumed
	// from the ring", not "ingested" — and are tallied per shard in Lost.
	// When nil, an Apply panic propagates and kills the process, exactly
	// as an unsupervised consumer crash would.
	OnApplyPanic func(shard int, v any, xs []int64, attempt int) Disposition
}

// Epoch stamps a read barrier: Seq increases with every barrier taken on
// the pipeline, and Applied is the total number of elements applied to
// shard state when the barrier completed.
type Epoch struct {
	Seq     uint64
	Applied uint64
}

// Pipeline is a running ingest pipeline. Start it with Start, feed it
// through Producer lanes, and stop it with Close (which drains everything
// already offered).
type Pipeline struct {
	cfg       Config
	producers []*Producer
	shardRing []*Ring
	shardMu   []sync.Mutex
	applied   []atomic.Uint64 // per shard, bumped after Apply returns
	routed    []atomic.Uint64 // per producer lane, bumped after the router forwards (deterministic mode)
	lost      []atomic.Uint64 // per shard, elements in chunks dropped by the supervisor

	closing    atomic.Bool
	routerDone chan struct{} // closed when the router goroutine exits (deterministic mode; pre-closed in live mode)
	drained    chan struct{} // closed when the shutdown drain completes
	consumers  sync.WaitGroup
	epoch      atomic.Uint64
	stolen     atomic.Uint64 // elements applied by a consumer other than the shard's own
	closeOnce  sync.Once
	closeErr   error
}

// Producer is one ingest lane. A lane must be driven by at most one
// goroutine at a time; distinct lanes are fully independent.
type Producer struct {
	p        *Pipeline
	idx      int
	ring     *Ring // deterministic mode: the lane's own ring, merged by the router
	closed   atomic.Bool
	inFlight atomic.Int64 // offers past the closed check but not yet pushed

	// Batch-routing scratch, owned by the lane's driving goroutine.
	dst     []int     // per-element destinations from RouteLiveBatch
	buckets [][]int64 // per-shard element runs for PushBatch
	boff    uint64    // xorshift state for the ctx offers' backoff jitter
}

// Start validates cfg and launches the pipeline's goroutines: one consumer
// per shard, plus the router in deterministic mode.
func Start(cfg Config) (*Pipeline, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("runtime: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.Producers < 1 {
		return nil, fmt.Errorf("runtime: need at least 1 producer lane, got %d", cfg.Producers)
	}
	if cfg.Apply == nil {
		return nil, errors.New("runtime: Apply is required")
	}
	if cfg.Deterministic && cfg.RouteSerial == nil {
		return nil, errors.New("runtime: deterministic mode needs RouteSerial")
	}
	if !cfg.Deterministic && cfg.RouteLive == nil {
		return nil, errors.New("runtime: live mode needs RouteLive")
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.ChunkCap <= 0 {
		cfg.ChunkCap = 512
	}
	p := &Pipeline{
		cfg:        cfg,
		shardRing:  make([]*Ring, cfg.Shards),
		shardMu:    make([]sync.Mutex, cfg.Shards),
		applied:    make([]atomic.Uint64, cfg.Shards),
		routed:     make([]atomic.Uint64, cfg.Producers),
		lost:       make([]atomic.Uint64, cfg.Shards),
		routerDone: make(chan struct{}),
		drained:    make(chan struct{}),
	}
	for i := range p.shardRing {
		p.shardRing[i] = NewRing(cfg.RingSize)
	}
	p.producers = make([]*Producer, cfg.Producers)
	for i := range p.producers {
		pr := &Producer{p: p, idx: i}
		if cfg.Deterministic {
			pr.ring = NewRing(cfg.RingSize)
		}
		p.producers[i] = pr
	}
	if cfg.Deterministic {
		go p.routerLoop()
	} else {
		close(p.routerDone)
	}
	p.consumers.Add(cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		go p.consumerLoop(s)
	}
	return p, nil
}

// Producer returns lane i.
func (p *Pipeline) Producer(i int) *Producer {
	return p.producers[i]
}

// NumShards returns the consumer lane count.
func (p *Pipeline) NumShards() int { return p.cfg.Shards }

// NumProducers returns the producer lane count.
func (p *Pipeline) NumProducers() int { return p.cfg.Producers }

// idleWait backs off while a lane is empty or full: cooperative yields
// first (cheap, and on a loaded scheduler they hand the CPU straight to the
// peer), then short sleeps so idle pipelines don't burn a core.
func idleWait(spin *int) {
	*spin++
	if *spin < 64 {
		stdruntime.Gosched()
		return
	}
	time.Sleep(20 * time.Microsecond)
}

// push enqueues with backpressure: it spins/sleeps while the ring is full.
func push(r *Ring, x int64) {
	spin := 0
	for !r.Push(x) {
		idleWait(&spin)
	}
}

// pushAll enqueues a whole run with backpressure, claiming as many slots
// per ring operation as are free.
func pushAll(r *Ring, xs []int64) {
	spin := 0
	for len(xs) > 0 {
		n := r.PushBatch(xs)
		if n == 0 {
			idleWait(&spin)
			continue
		}
		spin = 0
		xs = xs[n:]
	}
}

// Offer submits one element to the lane, blocking (spin-then-sleep) when
// the pipeline applies backpressure. It reports ErrClosed after the lane or
// pipeline has been closed; elements accepted before that are never lost.
//
// The in-flight counter is incremented BEFORE the closed check and
// decremented after the push lands: Close stores its closing flag first and
// then waits for in-flight offers to drain, so under sequentially
// consistent atomics every offer either observes the flag (and pushes
// nothing) or is observed by Close (which then waits for its push) — an
// accepted element can never slip past the shutdown drain.
func (pr *Producer) Offer(x int64) error {
	pr.inFlight.Add(1)
	defer pr.inFlight.Add(-1)
	if pr.closed.Load() || pr.p.closing.Load() {
		return ErrClosed
	}
	if pr.ring != nil { // deterministic: into the lane ring, merged by the router
		push(pr.ring, x)
		return nil
	}
	push(pr.p.shardRing[pr.p.cfg.RouteLive(pr.idx, x)], x)
	return nil
}

// OfferBatch submits a run of consecutive elements (equivalent to offering
// them one by one on this lane). It shares Offer's shutdown protocol.
//
// This is the ingest hot path: in deterministic mode the run lands in the
// lane ring with one slot claim per free stretch; in live mode, when the
// router provides RouteLiveBatch, the run is routed in one call, bucketed
// per shard, and each bucket enqueued with PushBatch. Elements bound for
// the same shard keep their relative order (the bucketing is stable), which
// is all the ordering live mode ever promises.
//
//robust:hotpath
func (pr *Producer) OfferBatch(xs []int64) error {
	pr.inFlight.Add(1)
	defer pr.inFlight.Add(-1) //robust:alloc open-coded defer (no closure, single site); required for crash-safe in-flight accounting on every exit path
	if pr.closed.Load() || pr.p.closing.Load() {
		return ErrClosed
	}
	if pr.ring != nil {
		pushAll(pr.ring, xs)
		return nil
	}
	p := pr.p
	if p.cfg.RouteLiveBatch == nil {
		for _, x := range xs {
			push(p.shardRing[p.cfg.RouteLive(pr.idx, x)], x)
		}
		return nil
	}
	if p.cfg.Shards == 1 {
		pushAll(p.shardRing[0], xs)
		return nil
	}
	if cap(pr.dst) < len(xs) {
		pr.dst = make([]int, len(xs))
	}
	if pr.buckets == nil {
		pr.buckets = make([][]int64, p.cfg.Shards)
	}
	dst := pr.dst[:len(xs)]
	p.cfg.RouteLiveBatch(pr.idx, xs, dst)
	buckets := pr.buckets
	for s := range buckets {
		buckets[s] = buckets[s][:0]
	}
	for i, x := range xs {
		s := dst[i]
		buckets[s] = append(buckets[s], x)
	}
	for s, b := range buckets {
		if len(b) > 0 {
			pushAll(p.shardRing[s], b)
		}
	}
	return nil
}

// Close marks the lane done. In deterministic mode this removes it from the
// router's rotation once its ring drains; Close is idempotent and must be
// called from (or synchronized with) the lane's producing goroutine.
func (pr *Producer) Close() { pr.closed.Store(true) }

// routerLoop merges the producer lanes in strict round-robin order, routes
// serially, and forwards into the shard rings. It exits when every lane is
// closed and drained.
func (p *Pipeline) routerLoop() {
	defer close(p.routerDone)
	P := p.cfg.Producers
	done := make([]bool, P)
	alive := P
	lane := 0
	for alive > 0 {
		if done[lane] {
			lane = (lane + 1) % P
			continue
		}
		pr := p.producers[lane]
		spin := 0
		for {
			if x, ok := pr.ring.Pop(); ok {
				push(p.shardRing[p.cfg.RouteSerial(x)], x)
				p.routed[lane].Add(1)
				break
			}
			if pr.closed.Load() && pr.ring.Empty() {
				done[lane] = true
				alive--
				break
			}
			idleWait(&spin)
		}
		lane = (lane + 1) % P
	}
}

// drain pops one bounded chunk from shard s's ring and applies it, all
// under the shard lock, returning how many elements it applied. Holding the
// lock across pop+apply makes the pair atomic per shard: any goroutine may
// drain any shard (the basis of work stealing below) and per-shard FIFO
// apply order — the determinism contract — still holds, because elements
// leave the ring only in ring order and only under the lock that serializes
// Apply. The lock-free Backlog pre-check keeps idle consumers from bouncing
// foreign shard locks.
func (p *Pipeline) drain(s int, buf []int64) int {
	ring := p.shardRing[s]
	if ring.Backlog() == 0 {
		return 0
	}
	p.shardMu[s].Lock()
	n := ring.PopInto(buf)
	if n > 0 {
		p.applyChunk(s, buf[:n])
	}
	p.shardMu[s].Unlock()
	if n > 0 {
		p.applied[s].Add(uint64(n))
	}
	return n
}

// stealFrom picks the victim with the longest backlog, excluding shard s.
// A racy scan is fine: a stale choice only means a slightly worse victim.
func (p *Pipeline) stealFrom(s int) int {
	victim, best := -1, uint64(0)
	for v := range p.shardRing {
		if v == s {
			continue
		}
		if b := p.shardRing[v].Backlog(); b > best {
			victim, best = v, b
		}
	}
	return victim
}

// consumerLoop drains shard s's ring into Apply in bounded chunks under the
// shard lock. When its own ring is empty it steals one bounded chunk from
// the shard with the longest backlog — this is a liveness mechanism for
// skewed routing (a hash router can send nearly all traffic to one shard,
// and without stealing the other consumers would idle while one ring
// backs up and stalls every producer through backpressure). Stealing
// preserves the epoch barrier contract: the stolen chunk is applied under
// the victim's shard lock and counted in the victim's applied counter, so
// Flush and Freeze observe exactly the per-shard totals they would have
// seen without stealing. The loop exits once the pipeline is closing, the
// routing stage has finished, and its own ring is drained.
func (p *Pipeline) consumerLoop(s int) {
	defer p.consumers.Done()
	ring := p.shardRing[s]
	buf := make([]int64, p.cfg.ChunkCap)
	spin := 0
	routerExited := false
	for {
		if n := p.drain(s, buf); n > 0 {
			spin = 0
			continue
		}
		if v := p.stealFrom(s); v >= 0 {
			if n := p.drain(v, buf); n > 0 {
				p.stolen.Add(uint64(n))
				spin = 0
				continue
			}
		}
		if p.closing.Load() {
			if !routerExited {
				select {
				case <-p.routerDone:
					routerExited = true
				default:
				}
			}
			if routerExited && ring.Empty() {
				return
			}
		}
		idleWait(&spin)
	}
}

// Offered returns the number of elements accepted by the pipeline so far
// (every Offer/OfferBatch element whose call has returned is counted).
func (p *Pipeline) Offered() uint64 {
	var n uint64
	if p.cfg.Deterministic {
		for _, pr := range p.producers {
			n += pr.ring.Pushed()
		}
		return n
	}
	for _, r := range p.shardRing {
		n += r.Pushed()
	}
	return n
}

// Applied returns the number of elements applied to shard state so far.
func (p *Pipeline) Applied() uint64 {
	var n uint64
	for i := range p.applied {
		n += p.applied[i].Load()
	}
	return n
}

// ShardApplied returns the number of elements consumed from shard s's ring
// so far (including elements in chunks the supervisor dropped — subtract
// ShardLost for the ingested count).
func (p *Pipeline) ShardApplied(s int) uint64 { return p.applied[s].Load() }

// Stolen returns the number of elements applied by a consumer other than
// the shard's own — an observability counter for the work-stealing path
// (always 0 when routing is balanced enough that no consumer goes idle).
func (p *Pipeline) Stolen() uint64 { return p.stolen.Load() }

// Flush is the drain barrier: it returns once every element whose
// Offer/OfferBatch call returned before Flush was called has been applied
// to shard state, and stamps the moment with a fresh Epoch.
//
// In deterministic mode the barrier first waits for the routing stage, and
// the round-robin merge can only pass elements in global sequence order: if
// one open lane lags far behind another, Flush waits for the lagging lane's
// next element (Close lanes that are finished, or keep lanes evenly fed).
func (p *Pipeline) Flush() Epoch {
	if p.cfg.Deterministic {
		// Stage 1: the router has forwarded everything offered so far.
		for i, pr := range p.producers {
			target := pr.ring.Pushed()
			spin := 0
			for p.routed[i].Load() < target {
				idleWait(&spin)
			}
		}
	}
	// Stage 2: the consumers have applied everything forwarded so far.
	// Ring FIFO order makes "applied count >= pushed count at barrier" the
	// exact statement "every element pushed before the barrier is applied".
	for s, r := range p.shardRing {
		target := r.Pushed()
		spin := 0
		for p.applied[s].Load() < target {
			idleWait(&spin)
		}
	}
	return Epoch{Seq: p.epoch.Add(1), Applied: p.Applied()}
}

// WithShard runs fn while holding shard s's lock: consumers cannot apply to
// that shard during fn, so fn sees (and may copy) a consistent snapshot of
// the shard's state. The offer hot path is never blocked — producers keep
// pushing into the rings.
func (p *Pipeline) WithShard(s int, fn func()) {
	p.shardMu[s].Lock()
	defer p.shardMu[s].Unlock()
	fn()
}

// Freeze runs fn while holding every shard lock (taken in index order), so
// fn sees a single cross-shard-consistent cut of the applied state; offered
// but unapplied elements wait in the rings. It returns a fresh Epoch.
func (p *Pipeline) Freeze(fn func()) Epoch {
	for s := range p.shardMu {
		p.shardMu[s].Lock()
	}
	defer func() {
		for s := len(p.shardMu) - 1; s >= 0; s-- {
			p.shardMu[s].Unlock()
		}
	}()
	fn()
	return Epoch{Seq: p.epoch.Add(1), Applied: p.Applied()}
}

// Close shuts the pipeline down gracefully: it closes every lane, drains
// everything already offered into shard state, stops the goroutines, and
// returns the final epoch. Close is idempotent; producers racing with it
// get ErrClosed. Offered elements are never dropped: Close first waits out
// the offers already past the closed check (see Producer.Offer's in-flight
// protocol), and after the goroutines exit it sweeps the rings once more
// (single-threaded, so the SPSC consumer roles transfer safely) for any
// push that landed after a lane was declared drained.
func (p *Pipeline) Close() Epoch {
	<-p.beginClose()
	return Epoch{Seq: p.epoch.Add(1), Applied: p.Applied()}
}

// beginClose starts the shutdown drain exactly once — on its own goroutine,
// so callers can bound how long they wait for it — and returns the channel
// closed when the drain completes. The drain goroutine survives an
// abandoned CloseCtx wait: a stalled consumer delays completion but the
// drain still finishes (or the process exits first).
func (p *Pipeline) beginClose() <-chan struct{} {
	p.closeOnce.Do(func() {
		go func() {
			defer close(p.drained)
			p.shutdown()
		}()
	})
	return p.drained
}

// shutdown is the drain body behind Close/CloseCtx; it runs exactly once.
func (p *Pipeline) shutdown() {
	p.closing.Store(true)
	for _, pr := range p.producers {
		pr.Close()
	}
	// Wait for in-flight offers: consumers are still draining, so a
	// producer blocked on backpressure completes its push.
	for _, pr := range p.producers {
		spin := 0
		for pr.inFlight.Load() > 0 {
			idleWait(&spin)
		}
	}
	<-p.routerDone
	p.consumers.Wait()
	// Final sweep: an in-flight push may have landed after the
	// router/consumers decided its lane was drained. All goroutines
	// are gone, so this goroutine is now the sole consumer of every
	// ring.
	if p.cfg.Deterministic {
		for i, pr := range p.producers {
			for {
				x, ok := pr.ring.Pop()
				if !ok {
					break
				}
				push(p.shardRing[p.cfg.RouteSerial(x)], x)
				p.routed[i].Add(1)
			}
		}
	}
	for s, r := range p.shardRing {
		var buf [256]int64
		for {
			n := r.PopInto(buf[:])
			if n == 0 {
				break
			}
			// Queries may still run (they are valid on a closed
			// pipeline), so the sweep honors the shard locks exactly
			// like the consumers did.
			p.shardMu[s].Lock()
			p.applyChunk(s, buf[:n])
			p.shardMu[s].Unlock()
			p.applied[s].Add(uint64(n))
		}
	}
}
