package runtime

import (
	"slices"
	"sync"
	"sync/atomic"
	"testing"
)

// collectingApply returns an Apply that appends per-shard (no locking
// needed: Apply is already serialized per shard by the pipeline) plus an
// accessor for the totals.
func collectingApply(shards int) (func(int, []int64), func() [][]int64) {
	got := make([][]int64, shards)
	return func(s int, xs []int64) {
			got[s] = append(got[s], xs...)
		}, func() [][]int64 {
			return got
		}
}

func TestPipelineDeterministicRoundRobinMerge(t *testing.T) {
	// 3 lanes stripe a known stream; the sequenced router must rebuild it
	// in exact global order, whatever the goroutine scheduling was.
	const P, n = 3, 9000
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = int64(i)
	}
	var routedOrder []int64
	apply, got := collectingApply(2)
	p, err := Start(Config{
		Shards:        2,
		Producers:     P,
		RingSize:      64,
		ChunkCap:      16,
		Deterministic: true,
		RouteSerial: func(x int64) int {
			routedOrder = append(routedOrder, x) // router goroutine only
			return int(x) % 2
		},
		Apply: apply,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(P)
	for lane := 0; lane < P; lane++ {
		go func(lane int) {
			defer wg.Done()
			pr := p.Producer(lane)
			for i := lane; i < n; i += P {
				if err := pr.Offer(stream[i]); err != nil {
					t.Errorf("Offer: %v", err)
					return
				}
			}
			pr.Close()
		}(lane)
	}
	wg.Wait()
	ep := p.Flush()
	if ep.Applied != n {
		t.Fatalf("Flush epoch applied = %d, want %d", ep.Applied, n)
	}
	p.Close()
	if !slices.Equal(routedOrder, stream) {
		t.Fatalf("router did not rebuild the stream in order (first divergence near %d)", firstDiff(routedOrder, stream))
	}
	for s, xs := range got() {
		for _, x := range xs {
			if int(x)%2 != s {
				t.Fatalf("shard %d received misrouted element %d", s, x)
			}
		}
	}
}

func firstDiff(a, b []int64) int {
	for i := range min(len(a), len(b)) {
		if a[i] != b[i] {
			return i
		}
	}
	return min(len(a), len(b))
}

func TestPipelineLiveConservation(t *testing.T) {
	// 4 producers push concurrently through a live (producer-side) router;
	// every element must be applied exactly once to its routed shard.
	const P, perLane, S = 4, 25000, 3
	apply, got := collectingApply(S)
	p, err := Start(Config{
		Shards:    S,
		Producers: P,
		RingSize:  128,
		RouteLive: func(_ int, x int64) int { return int(uint64(x) % S) },
		Apply:     apply,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(P)
	for lane := 0; lane < P; lane++ {
		go func(lane int) {
			defer wg.Done()
			pr := p.Producer(lane)
			batch := make([]int64, 0, 50)
			for i := 0; i < perLane; i++ {
				batch = append(batch, int64(lane*perLane+i))
				if len(batch) == cap(batch) {
					if err := pr.OfferBatch(batch); err != nil {
						t.Errorf("OfferBatch: %v", err)
						return
					}
					batch = batch[:0]
				}
			}
			if err := pr.OfferBatch(batch); err != nil {
				t.Errorf("OfferBatch: %v", err)
			}
		}(lane)
	}
	wg.Wait()
	ep := p.Flush()
	if ep.Applied != P*perLane {
		t.Fatalf("applied %d, want %d", ep.Applied, P*perLane)
	}
	if off := p.Offered(); off != P*perLane {
		t.Fatalf("offered %d, want %d", off, P*perLane)
	}
	seen := make([]bool, P*perLane)
	for s, xs := range got() {
		for _, x := range xs {
			if int(uint64(x)%S) != s {
				t.Fatalf("shard %d holds misrouted element %d", s, x)
			}
			if seen[x] {
				t.Fatalf("element %d applied twice", x)
			}
			seen[x] = true
		}
	}
	for x, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost", x)
		}
	}
	p.Close()
}

func TestPipelineFlushBarrierDuringIngest(t *testing.T) {
	// Flush taken mid-stream must cover exactly the elements whose Offer
	// returned before it; later elements may or may not be included, but
	// the barrier count can never run ahead of what was offered.
	var applied atomic.Int64
	p, err := Start(Config{
		Shards:    2,
		Producers: 1,
		RouteLive: func(_ int, x int64) int { return int(x) & 1 },
		Apply:     func(_ int, xs []int64) { applied.Add(int64(len(xs))) },
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := p.Producer(0)
	for i := 0; i < 1000; i++ {
		if err := pr.Offer(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ep := p.Flush()
	if got := applied.Load(); got < 1000 {
		t.Fatalf("after Flush only %d of 1000 applied", got)
	}
	if ep.Applied < 1000 {
		t.Fatalf("epoch applied = %d, want >= 1000", ep.Applied)
	}
	if ep2 := p.Flush(); ep2.Seq <= ep.Seq {
		t.Fatalf("epoch sequence did not advance: %d then %d", ep.Seq, ep2.Seq)
	}
	p.Close()
}

func TestPipelineWithShardExcludesApply(t *testing.T) {
	// While WithShard holds a shard, Apply must not run for that shard;
	// the probe watches for overlap via an atomic flag.
	var inApply, overlap atomic.Bool
	p, err := Start(Config{
		Shards:    1,
		Producers: 1,
		RouteLive: func(_ int, _ int64) int { return 0 },
		Apply: func(_ int, xs []int64) {
			inApply.Store(true)
			for range xs {
			}
			inApply.Store(false)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pr := p.Producer(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := pr.Offer(int64(i)); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		p.WithShard(0, func() {
			if inApply.Load() {
				overlap.Store(true)
			}
		})
	}
	close(stop)
	wg.Wait()
	p.Close()
	if overlap.Load() {
		t.Fatal("Apply observed running inside WithShard")
	}
}

func TestPipelineCloseDrainsAndRejects(t *testing.T) {
	apply, got := collectingApply(1)
	p, err := Start(Config{
		Shards:    1,
		Producers: 1,
		RouteLive: func(_ int, _ int64) int { return 0 },
		Apply:     apply,
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := p.Producer(0)
	for i := 0; i < 500; i++ {
		if err := pr.Offer(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ep := p.Close()
	if ep.Applied != 500 {
		t.Fatalf("Close applied %d, want 500", ep.Applied)
	}
	if len(got()[0]) != 500 {
		t.Fatalf("shard holds %d elements after Close, want 500", len(got()[0]))
	}
	if err := pr.Offer(1); err != ErrClosed {
		t.Fatalf("Offer after Close = %v, want ErrClosed", err)
	}
	if err := pr.OfferBatch([]int64{1}); err != ErrClosed {
		t.Fatalf("OfferBatch after Close = %v, want ErrClosed", err)
	}
	// Idempotent.
	p.Close()
}

func TestPipelineFreezeConsistentCut(t *testing.T) {
	// Under Freeze, per-shard applied counts must not move.
	const S = 3
	counts := make([]atomic.Int64, S)
	p, err := Start(Config{
		Shards:    S,
		Producers: 2,
		RouteLive: func(_ int, x int64) int { return int(uint64(x) % S) },
		Apply:     func(s int, xs []int64) { counts[s].Add(int64(len(xs))) },
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for lane := 0; lane < 2; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			pr := p.Producer(lane)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if pr.Offer(int64(i)) != nil {
					return
				}
			}
		}(lane)
	}
	for i := 0; i < 100; i++ {
		var before, after [S]int64
		p.Freeze(func() {
			for s := range counts {
				before[s] = counts[s].Load()
			}
			for s := range counts {
				after[s] = counts[s].Load()
			}
		})
		if before != after {
			t.Fatalf("applied counts moved during Freeze: %v -> %v", before, after)
		}
	}
	close(stop)
	wg.Wait()
	p.Close()
}

func TestPipelineConfigValidation(t *testing.T) {
	apply := func(int, []int64) {}
	live := func(int, int64) int { return 0 }
	for name, cfg := range map[string]Config{ //robust:nondet subtest table; each case is independent of order

		"no shards":     {Shards: 0, Producers: 1, RouteLive: live, Apply: apply},
		"no producers":  {Shards: 1, Producers: 0, RouteLive: live, Apply: apply},
		"no apply":      {Shards: 1, Producers: 1, RouteLive: live},
		"no live route": {Shards: 1, Producers: 1, Apply: apply},
		"no det route":  {Shards: 1, Producers: 1, Deterministic: true, Apply: apply},
	} {
		if _, err := Start(cfg); err == nil {
			t.Errorf("%s: Start accepted invalid config", name)
		}
	}
}
