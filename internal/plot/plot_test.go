package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "round",
		YLabel: "error",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 0.5, 1}},
		},
		HLines: []HLine{{Name: "eps", Y: 0.25}},
	}
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	for _, want := range []string{"test chart", "round", "error", "legend", "* a", "- eps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "-") {
		t.Fatal("markers missing")
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatal("empty chart should say so")
	}
}

func TestRenderNaNSkipped(t *testing.T) {
	c := &Chart{
		Series: []Series{
			{Name: "a", X: []float64{0, math.NaN(), 2}, Y: []float64{1, 5, 3}},
		},
	}
	var buf bytes.Buffer
	c.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate Y range must not divide by zero.
	c := &Chart{
		Series: []Series{{Name: "flat", X: []float64{0, 1}, Y: []float64{3, 3}}},
	}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("flat series not drawn")
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	c := &Chart{
		Series: []Series{
			{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
			{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
		},
	}
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("expected two distinct markers:\n%s", out)
	}
}

func TestRenderCustomDimensions(t *testing.T) {
	c := &Chart{
		Width:  20,
		Height: 5,
		Series: []Series{{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	var buf bytes.Buffer
	c.Render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// 5 plot rows + axis + x labels + legend.
	if len(lines) < 7 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), buf.String())
	}
}
