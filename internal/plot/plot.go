// Package plot renders small ASCII line charts for the experiment harness.
// The paper's own figures are definitions and pseudocode (Figures 1-3),
// which this repository reproduces as code; the quantitative "figures" worth
// drawing are the error trajectories of the continuous game (Theorem 1.4)
// and of attacks, which robustbench renders with this package so a terminal
// user can see the shape without external tooling.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// X and Y are the data points (equal lengths).
	X, Y []float64
}

// Chart is an ASCII line chart.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the plot-area dimensions in characters;
	// defaults 72x16 when zero.
	Width, Height int
	// Series are the lines to draw; each uses a distinct marker.
	Series []Series
	// HLines are horizontal reference lines (e.g. an eps threshold),
	// drawn with '-' and labeled in the legend.
	HLines []HLine
}

// HLine is a horizontal reference line.
type HLine struct {
	Name string
	Y    float64
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render writes the chart to w. Empty charts (no finite points) render a
// placeholder note.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}

	// Determine bounds over all series and hlines.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	for _, h := range c.HLines {
		minY = math.Min(minY, h.Y)
		maxY = math.Max(maxY, h.Y)
	}
	if points == 0 {
		fmt.Fprintf(w, "%s\n  (no data)\n", c.Title)
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	toCol := func(x float64) int {
		col := int((x - minX) / (maxX - minX) * float64(width-1))
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		return col
	}
	toRow := func(y float64) int {
		row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}
	for _, h := range c.HLines {
		row := toRow(h.Y)
		for col := 0; col < width; col++ {
			grid[row][col] = '-'
		}
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			grid[toRow(s.Y[i])][toCol(s.X[i])] = m
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	yTop := fmt.Sprintf("%.3g", maxY)
	yBot := fmt.Sprintf("%.3g", minY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", pad)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-*.4g%*.4g  %s\n",
		strings.Repeat(" ", pad), width/2, minX, width-width/2, maxX, c.XLabel)
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	for _, h := range c.HLines {
		legend = append(legend, fmt.Sprintf("- %s", h.Name))
	}
	if c.YLabel != "" {
		legend = append(legend, "y: "+c.YLabel)
	}
	if len(legend) > 0 {
		fmt.Fprintf(w, "%s  legend: %s\n", strings.Repeat(" ", pad), strings.Join(legend, " | "))
	}
}
