// External test package: the example drives game.RunContinuous with real
// samplers and adversaries, which import game themselves.
package game_test

import (
	"fmt"

	"robustsample/internal/adversary"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

// The continuous adaptive game (Figure 2) checks the exact
// eps-approximation error of the sample at every checkpoint of the growing
// stream; one violation anywhere makes the game output 0.
func ExampleRunContinuous() {
	const universe = 1 << 16
	const n = 4000
	sys := setsystem.NewPrefixes(universe)

	// A reservoir of 150 elements against a benign uniform stream,
	// judged at the geometric checkpoint schedule from the proof of
	// Theorem 1.4.
	res := sampler.NewReservoir[int64](150)
	adv := adversary.NewStaticUniform(universe)
	cps := game.MustCheckpoints(1, n, 0.05)
	out := game.RunContinuous(res, adv, sys, n, 0.25, cps, rng.New(42))

	fmt.Println("rounds:", len(out.Stream))
	fmt.Println("checkpoints:", len(out.PrefixErrors))
	fmt.Println("ok:", out.OK, "violation-round:", out.FirstViolation)
	fmt.Printf("max prefix error: %.3f (eps 0.25)\n", out.MaxPrefixErr)
	// Output:
	// rounds: 4000
	// checkpoints: 140
	// ok: true violation-round: 0
	// max prefix error: 0.114 (eps 0.25)
}
