// Package game implements the two-player games of Section 2 of the paper:
// AdaptiveGame (Figure 1) and ContinuousAdaptiveGame (Figure 2) between a
// streaming Sampler and an adaptive Adversary.
//
// The game loop follows the paper exactly:
//
//  1. Adversary, seeing the sampler's current state σ_{i-1} and the history
//     x_1, ..., x_{i-1}, submits the next element x_i.
//  2. Sampler updates its state: σ_i <- Sampler(σ_{i-1}, x_i).
//  3. Adversary observes the updated state before the next round.
//
// The verdict is the exact epsilon-approximation check of Definition 1.1
// against the chosen set system. The continuous variant additionally
// evaluates the approximation at every prefix (or on a caller-supplied
// checkpoint schedule for long streams, mirroring the checkpoint technique
// in the proof of Theorem 1.4).
package game

import (
	"errors"
	"fmt"
	"slices"

	"robustsample/internal/rng"
	"robustsample/internal/setsystem"
)

// Sampler is the streaming-player interface specialized to ordered int64
// universes, as required by the adversarial games. Both samplers of the
// paper (Bernoulli, reservoir) satisfy it via their int64 instantiations.
type Sampler interface {
	// Offer processes the next element; the returned flag is whether the
	// element entered the sample this round (visible to the adversary as
	// part of σ_i).
	Offer(x int64, r *rng.RNG) bool
	// View returns the current sample σ_i as a read-only slice.
	View() []int64
	// Len returns the current sample size.
	Len() int
	// Reset clears the sampler for a fresh game.
	Reset()
}

// SampleDeltaReporter is an optional Sampler extension reporting how the
// sample multiset changed in the most recent Offer (or, cumulatively, the
// most recent OfferBatch): the elements added and the elements displaced
// (the reservoir eviction path). RunContinuous uses it to keep its
// incremental discrepancy accumulator in sync with the sample in O(1) per
// round; samplers that do not implement it fall back to an O(|sample|)
// rebuild per checkpoint. All samplers in this repository implement it. The
// returned slices are valid until the next Offer/OfferBatch and must not be
// mutated.
type SampleDeltaReporter interface {
	LastDelta() (added, removed []int64)
}

// BatchSampler is an optional Sampler extension for bulk ingest: OfferBatch
// processes a run of consecutive stream elements in one call, with results
// invariant to how the stream is sliced into batches (the repository's
// reservoir-family samplers additionally draw randomness bit-identically to
// per-element Offers; Bernoulli's batch path uses geometric gap-skipping —
// the same admission law through different draws). The games use it to
// ingest the spans between adversary decisions or checkpoints without
// per-element interface-call overhead.
type BatchSampler interface {
	OfferBatch(xs []int64, r *rng.RNG) int
}

// StreamGenerator is an optional Adversary extension for non-adaptive
// strategies: GenerateStream returns the full n-round stream in one call,
// drawing from r exactly as n successive Next calls would. Games detect it
// to skip per-round Observation construction and drive BatchSampler ingest;
// adaptive adversaries (which need the admission feedback round by round)
// must not implement it.
type StreamGenerator interface {
	GenerateStream(n int, r *rng.RNG) []int64
}

// SpanChunkCap caps how many rounds the batched game loops ingest per
// OfferBatch/AddStreamBatch call. Any positive value yields identical
// results — batch ingestion is chunking-invariant — so this only tunes
// working-set locality; robustbench exposes it as -chunk to demonstrate the
// invariance.
var SpanChunkCap = 8192

func spanChunk() int {
	if SpanChunkCap < 1 {
		return 1
	}
	return SpanChunkCap
}

// Observation is what the adversary sees at the start of a round: precisely
// the information granted by Figure 1 (all previously submitted elements and
// the sampler's current state).
type Observation struct {
	// Round is the 1-based index of the round about to be played.
	Round int
	// N is the total stream length of this game.
	N int
	// Sample is σ_{i-1}, the sampler's state after the previous round.
	// It is a live view; adversaries must not mutate it.
	Sample []int64
	// LastAdmitted reports whether the element of the previous round was
	// admitted to the sample (false on round 1).
	LastAdmitted bool
	// History holds x_1, ..., x_{i-1}. It is a live view; adversaries
	// must not mutate it.
	History []int64
}

// Adversary chooses the stream adaptively. Implementations may be
// probabilistic; all randomness must come from the provided RNG so games are
// reproducible.
type Adversary interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// Next returns the element x_i to submit given the observation.
	Next(obs Observation, r *rng.RNG) int64
	// Reset prepares the adversary for a fresh game.
	Reset()
}

// Result records the outcome of one AdaptiveGame.
type Result struct {
	// Stream is the full adversarial stream x_1..x_n.
	Stream []int64
	// Sample is the final sample S = σ_n.
	Sample []int64
	// Discrepancy is the exact maximal density deviation and witness.
	Discrepancy setsystem.Discrepancy
	// Eps is the approximation parameter the game was judged against.
	Eps float64
	// OK is the game output: true iff S is an eps-approximation of X.
	OK bool
}

func (r Result) String() string {
	return fmt.Sprintf("n=%d |S|=%d %v ok=%v", len(r.Stream), len(r.Sample), r.Discrepancy, r.OK)
}

// Run plays one AdaptiveGame of n rounds and returns the outcome. The
// sampler and adversary are Reset before play. Sampler and adversary receive
// independent RNG streams split from r, matching the paper's model where the
// two players have private randomness.
//
// When the adversary is a StreamGenerator and the sampler a BatchSampler,
// the round loop collapses to one stream generation plus chunked bulk
// ingest — no per-round Observation or interface calls. For samplers whose
// batch path draws randomness identically to per-element Offers (the
// reservoir family) the outcome is bit-identical to the round loop;
// Bernoulli's gap-skipping batch path selects an equally distributed sample
// through different draws.
func Run(s Sampler, adv Adversary, sys setsystem.SetSystem, n int, eps float64, r *rng.RNG) Result {
	if n < 1 {
		panic("game: stream length must be >= 1")
	}
	s.Reset()
	adv.Reset()
	samplerRNG := r.Split()
	advRNG := r.Split()

	if gen, ok := adv.(StreamGenerator); ok {
		if bs, ok := s.(BatchSampler); ok {
			stream := generateStream(gen, n, advRNG)
			for i := 0; i < n; i += spanChunk() {
				bs.OfferBatch(stream[i:min(i+spanChunk(), n)], samplerRNG)
			}
			sample := append([]int64(nil), s.View()...)
			d := sys.MaxDiscrepancy(stream, sample)
			return Result{
				Stream:      stream,
				Sample:      sample,
				Discrepancy: d,
				Eps:         eps,
				OK:          d.Err <= eps,
			}
		}
	}

	stream := make([]int64, 0, n)
	lastAdmitted := false
	for i := 1; i <= n; i++ {
		obs := Observation{
			Round:        i,
			N:            n,
			Sample:       s.View(),
			LastAdmitted: lastAdmitted,
			History:      stream,
		}
		x := adv.Next(obs, advRNG)
		stream = append(stream, x)
		lastAdmitted = s.Offer(x, samplerRNG)
	}

	sample := append([]int64(nil), s.View()...)
	d := sys.MaxDiscrepancy(stream, sample)
	return Result{
		Stream:      stream,
		Sample:      sample,
		Discrepancy: d,
		Eps:         eps,
		OK:          d.Err <= eps,
	}
}

// PrefixError records the exact approximation error of the sample against
// the stream prefix at a given round.
type PrefixError struct {
	Round int
	Err   float64
}

// ContinuousResult records the outcome of one ContinuousAdaptiveGame.
type ContinuousResult struct {
	Result
	// PrefixErrors holds the exact error at each evaluated checkpoint,
	// in increasing round order. The final round is always included.
	PrefixErrors []PrefixError
	// MaxPrefixErr is the maximum error across the checkpoints.
	MaxPrefixErr float64
	// FirstViolation is the earliest evaluated round whose error
	// exceeded eps, or 0 if none did. Per Figure 2, any violation makes
	// the game output 0.
	FirstViolation int
}

// ErrBadGamma is the sentinel reported by Checkpoints for a non-positive
// growth factor. It is surfaced at the public boundary; the deprecated
// facade converts it back to the historical panic.
var ErrBadGamma = errors.New("game: checkpoint gamma must be positive")

// Checkpoints returns the geometric checkpoint schedule used in the proof of
// Theorem 1.4: rounds start <= i_1 < i_2 < ... <= n with
// i_{j+1} <= (1+gamma) i_j, always including start and n. With gamma = eps/4
// this is the schedule the paper's proof uses; t = O(gamma^-1 ln n) points.
// It reports ErrBadGamma unless gamma > 0.
func Checkpoints(start, n int, gamma float64) ([]int, error) {
	if start < 1 {
		start = 1
	}
	if start > n {
		start = n
	}
	if gamma <= 0 {
		return nil, ErrBadGamma
	}
	points := []int{start}
	cur := start
	for cur < n {
		next := int(float64(cur) * (1 + gamma))
		if next <= cur {
			next = cur + 1
		}
		if next > n {
			next = n
		}
		points = append(points, next)
		cur = next
	}
	return points, nil
}

// MustCheckpoints is Checkpoints for callers with statically valid gamma
// (experiment code, tests); it panics on ErrBadGamma.
func MustCheckpoints(start, n int, gamma float64) []int {
	cps, err := Checkpoints(start, n, gamma)
	if err != nil {
		panic(err)
	}
	return cps
}

// AllRounds returns the exhaustive schedule 1..n, the literal Figure 2
// verdict; use only for short streams (the check costs O(i log i) per
// round).
func AllRounds(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// generateStream asks a StreamGenerator for the full n-round stream and
// validates its length (mirroring Static's short-stream panic).
func generateStream(gen StreamGenerator, n int, r *rng.RNG) []int64 {
	stream := gen.GenerateStream(n, r)
	if len(stream) < n {
		panic("game: stream generator produced short stream")
	}
	return stream[:n]
}

// normalizeCheckpoints returns the in-range checkpoints sorted ascending
// with duplicates removed, always including the final round n.
func normalizeCheckpoints(checkpoints []int, n int) []int {
	cps := make([]int, 0, len(checkpoints)+1)
	for _, c := range checkpoints {
		if c >= 1 && c <= n {
			cps = append(cps, c)
		}
	}
	cps = append(cps, n)
	slices.Sort(cps)
	return slices.Compact(cps)
}

// RunContinuous plays one ContinuousAdaptiveGame, evaluating the exact
// epsilon-approximation error at each round in checkpoints (out-of-range
// rounds are ignored; the final round n is evaluated even if absent). Unlike
// Figure 2 the game does not halt at the first violation — it records it and
// plays on, so experiments can report the full error trajectory.
//
// Verdicts are computed by the set system's incremental Accumulator rather
// than a full re-sort of the stream prefix at every checkpoint: stream
// elements are folded in as they are played, and the sample side is kept in
// sync through the sampler's SampleDeltaReporter (covering reservoir
// evictions via RemoveSample). Samplers that do not report deltas are still
// exact — the sample histogram is rebuilt from View at each checkpoint. The
// per-checkpoint Discrepancy is bit-identical to
// sys.MaxDiscrepancy(stream[:i], sample_i).
//
// When the adversary is a StreamGenerator and the sampler a delta-reporting
// BatchSampler, the spans between checkpoints are driven through bulk
// ingest (OfferBatch + AddStreamBatch in SpanChunkCap-sized chunks) instead
// of the round loop; verdicts and trajectories are unchanged — bit-identical
// for the reservoir family, equal in distribution for Bernoulli.
func RunContinuous(s Sampler, adv Adversary, sys setsystem.SetSystem, n int, eps float64, checkpoints []int, r *rng.RNG) ContinuousResult {
	return RunContinuousWith(s, adv, sys, n, eps, checkpoints, r, nil)
}

// RunContinuousWith is RunContinuous with a caller-provided incremental
// engine: acc must have been obtained from sys.NewAccumulator (it is Reset
// before play) or be nil, in which case a fresh engine is allocated.
// Monte-Carlo drivers pass one accumulator per worker so the engine's
// compression tables and block storage are allocated once per worker
// instead of once per game; results are identical either way.
func RunContinuousWith(s Sampler, adv Adversary, sys setsystem.SetSystem, n int, eps float64, checkpoints []int, r *rng.RNG, acc *setsystem.Accumulator) ContinuousResult {
	if n < 1 {
		panic("game: stream length must be >= 1")
	}
	s.Reset()
	adv.Reset()
	samplerRNG := r.Split()
	advRNG := r.Split()

	cps := normalizeCheckpoints(checkpoints, n)

	if acc == nil {
		acc = sys.NewAccumulator()
	} else {
		acc.Reset()
	}
	// Distinct values are bounded by both the universe and (for in-repo
	// samplers, whose samples are stream subsets) the stream length; cap
	// the pre-sizing so giant games don't over-allocate.
	hint := n
	if u := sys.UniverseSize(); u < int64(hint) {
		hint = int(u)
	}
	if hint > 1<<20 {
		hint = 1 << 20
	}
	acc.Reserve(hint)
	deltas, trackDeltas := s.(SampleDeltaReporter)

	if gen, ok := adv.(StreamGenerator); ok && trackDeltas {
		if bs, ok := s.(BatchSampler); ok {
			return runContinuousBatched(s, bs, deltas, gen, sys, n, eps, cps, acc, samplerRNG, advRNG)
		}
	}

	stream := make([]int64, 0, n)
	lastAdmitted := false
	var prefixErrs []PrefixError
	maxErr := 0.0
	firstViolation := 0
	var final setsystem.Discrepancy

	next := 0 // cursor into cps; cps is sorted so one comparison per round
	for i := 1; i <= n; i++ {
		obs := Observation{
			Round:        i,
			N:            n,
			Sample:       s.View(),
			LastAdmitted: lastAdmitted,
			History:      stream,
		}
		x := adv.Next(obs, advRNG)
		stream = append(stream, x)
		lastAdmitted = s.Offer(x, samplerRNG)

		acc.AddStream(x)
		if trackDeltas {
			added, removed := deltas.LastDelta()
			for _, a := range added {
				acc.AddSample(a)
			}
			for _, e := range removed {
				acc.RemoveSample(e)
			}
		}

		if next < len(cps) && cps[next] == i {
			next++
			var d setsystem.Discrepancy
			if trackDeltas {
				d = acc.Max()
			} else {
				view := s.View()
				for _, v := range view {
					acc.AddSample(v)
				}
				d = acc.Max()
				for _, v := range view {
					acc.RemoveSample(v)
				}
			}
			prefixErrs = append(prefixErrs, PrefixError{Round: i, Err: d.Err})
			if d.Err > maxErr {
				maxErr = d.Err
			}
			if d.Err > eps && firstViolation == 0 {
				firstViolation = i
			}
			final = d // round n is always the last checkpoint
		}
	}

	sample := append([]int64(nil), s.View()...)
	return ContinuousResult{
		Result: Result{
			Stream:      stream,
			Sample:      sample,
			Discrepancy: final,
			Eps:         eps,
			OK:          firstViolation == 0,
		},
		PrefixErrors:   prefixErrs,
		MaxPrefixErr:   maxErr,
		FirstViolation: firstViolation,
	}
}

// IngestBatchSynced feeds one batch of consecutive stream elements through
// the sampler's bulk path and keeps acc's two histograms exactly in step:
// the stream side always ingests xs, and the sample side is synced from the
// batch delta — additions applied before removals, so an element admitted
// and evicted within one batch never drives a count negative. Spans where
// the sampler admitted everything with no evictions (a filling reservoir)
// ingest both multisets in one fused pass. It returns the number of
// elements the sampler admitted from the batch.
//
// This is the bit-exactness-critical step shared by the batched continuous
// game, the shard engine's per-shard flush, and the serving pipeline's
// consumer goroutines; keeping it in one place keeps those paths incapable
// of drifting apart.
func IngestBatchSynced(bs BatchSampler, deltas SampleDeltaReporter, acc *setsystem.Accumulator, xs []int64, r *rng.RNG) int {
	admitted := bs.OfferBatch(xs, r)
	added, removed := deltas.LastDelta()
	if len(removed) == 0 && slices.Equal(added, xs) {
		acc.AddStreamAndSampleBatch(xs)
		return admitted
	}
	acc.AddStreamBatch(xs)
	for _, a := range added {
		acc.AddSample(a)
	}
	for _, e := range removed {
		acc.RemoveSample(e)
	}
	return admitted
}

// runContinuousBatched is RunContinuous's span loop for non-adaptive
// adversaries and bulk-ingest samplers: the stream is generated once, and
// each inter-checkpoint span is offered and accumulated in chunks via
// IngestBatchSynced. Checkpoint verdicts are produced by the same
// Accumulator on the same multisets as the round loop, hence bit-identical.
func runContinuousBatched(s Sampler, bs BatchSampler, deltas SampleDeltaReporter, gen StreamGenerator, sys setsystem.SetSystem, n int, eps float64, cps []int, acc *setsystem.Accumulator, samplerRNG, advRNG *rng.RNG) ContinuousResult {
	stream := generateStream(gen, n, advRNG)

	var prefixErrs []PrefixError
	maxErr := 0.0
	firstViolation := 0
	var final setsystem.Discrepancy

	played := 0
	for _, cp := range cps {
		for played < cp {
			j := min(played+spanChunk(), cp)
			IngestBatchSynced(bs, deltas, acc, stream[played:j], samplerRNG)
			played = j
		}
		d := acc.Max()
		prefixErrs = append(prefixErrs, PrefixError{Round: cp, Err: d.Err})
		if d.Err > maxErr {
			maxErr = d.Err
		}
		if d.Err > eps && firstViolation == 0 {
			firstViolation = cp
		}
		final = d // round n is always the last checkpoint
	}

	sample := append([]int64(nil), s.View()...)
	return ContinuousResult{
		Result: Result{
			Stream:      stream,
			Sample:      sample,
			Discrepancy: final,
			Eps:         eps,
			OK:          firstViolation == 0,
		},
		PrefixErrors:   prefixErrs,
		MaxPrefixErr:   maxErr,
		FirstViolation: firstViolation,
	}
}
