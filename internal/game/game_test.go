package game

import (
	"errors"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

// countingAdversary submits round numbers and records what it observed.
type countingAdversary struct {
	observations []Observation
	resets       int
}

func (c *countingAdversary) Name() string { return "counting" }
func (c *countingAdversary) Reset() {
	c.observations = nil
	c.resets++
}
func (c *countingAdversary) Next(obs Observation, _ *rng.RNG) int64 {
	c.observations = append(c.observations, Observation{
		Round:        obs.Round,
		N:            obs.N,
		Sample:       append([]int64(nil), obs.Sample...),
		LastAdmitted: obs.LastAdmitted,
		History:      append([]int64(nil), obs.History...),
	})
	return int64(obs.Round)
}

func TestRunStreamLengthAndOrder(t *testing.T) {
	r := rng.New(1)
	adv := &countingAdversary{}
	s := sampler.NewBernoulli[int64](0.5)
	res := Run(s, adv, setsystem.NewPrefixes(100), 20, 0.5, r)
	if len(res.Stream) != 20 {
		t.Fatalf("stream length %d", len(res.Stream))
	}
	for i, x := range res.Stream {
		if x != int64(i+1) {
			t.Fatalf("stream[%d] = %d, want %d", i, x, i+1)
		}
	}
	if adv.resets != 1 {
		t.Fatalf("adversary reset %d times", adv.resets)
	}
}

func TestAdversaryObservesFullInformation(t *testing.T) {
	r := rng.New(2)
	adv := &countingAdversary{}
	s := sampler.NewBernoulli[int64](1) // admit everything
	Run(s, adv, setsystem.NewPrefixes(100), 5, 0.5, r)
	for i, obs := range adv.observations {
		if obs.Round != i+1 {
			t.Fatalf("round %d misreported as %d", i+1, obs.Round)
		}
		if obs.N != 5 {
			t.Fatalf("N misreported: %d", obs.N)
		}
		if len(obs.History) != i {
			t.Fatalf("round %d saw history of length %d", i+1, len(obs.History))
		}
		// With p=1 the sample equals the history at every round.
		if len(obs.Sample) != i {
			t.Fatalf("round %d saw sample of size %d, want %d", i+1, len(obs.Sample), i)
		}
		if i > 0 && !obs.LastAdmitted {
			t.Fatalf("round %d should have seen admission", i+1)
		}
	}
	if adv.observations[0].LastAdmitted {
		t.Fatal("round 1 must report LastAdmitted=false")
	}
}

func TestAdversaryObservesRejections(t *testing.T) {
	r := rng.New(3)
	adv := &countingAdversary{}
	s := sampler.NewBernoulli[int64](0) // reject everything
	Run(s, adv, setsystem.NewPrefixes(100), 4, 0.5, r)
	for i, obs := range adv.observations {
		if obs.LastAdmitted {
			t.Fatalf("round %d saw phantom admission", i+1)
		}
		if len(obs.Sample) != 0 {
			t.Fatalf("round %d saw non-empty sample", i+1)
		}
	}
}

func TestRunVerdictMatchesDiscrepancy(t *testing.T) {
	r := rng.New(4)
	adv := &countingAdversary{}
	s := sampler.NewBernoulli[int64](1)
	res := Run(s, adv, setsystem.NewPrefixes(100), 10, 0.01, r)
	// Full sample: zero error, must pass any positive eps.
	if res.Discrepancy.Err != 0 || !res.OK {
		t.Fatalf("full sample should be perfect: %v", res)
	}

	s0 := sampler.NewBernoulli[int64](0)
	res = Run(s0, adv, setsystem.NewPrefixes(100), 10, 0.5, r)
	if res.Discrepancy.Err != 1 || res.OK {
		t.Fatalf("empty sample should fail: %v", res)
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	mk := func() Result {
		r := rng.New(42)
		s := sampler.NewReservoir[int64](5)
		adv := &countingAdversary{}
		return Run(s, adv, setsystem.NewPrefixes(100), 50, 0.5, r)
	}
	a, b := mk(), mk()
	if len(a.Sample) != len(b.Sample) {
		t.Fatal("non-deterministic sample size")
	}
	for i := range a.Sample {
		if a.Sample[i] != b.Sample[i] {
			t.Fatal("non-deterministic sample contents")
		}
	}
	if a.Discrepancy.Err != b.Discrepancy.Err {
		t.Fatal("non-deterministic verdict")
	}
}

func TestRunPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	r := rng.New(1)
	Run(sampler.NewBernoulli[int64](0.5), &countingAdversary{}, setsystem.NewPrefixes(10), 0, 0.5, r)
}

func TestCheckpointsSchedule(t *testing.T) {
	pts := MustCheckpoints(10, 1000, 0.25)
	if pts[0] != 10 {
		t.Fatalf("first checkpoint %d, want 10", pts[0])
	}
	if pts[len(pts)-1] != 1000 {
		t.Fatalf("last checkpoint %d, want 1000", pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatal("checkpoints not strictly increasing")
		}
		// Gap bound: i_{j+1} <= (1+gamma) i_j (+1 for integer rounding).
		if float64(pts[i]) > float64(pts[i-1])*1.25+1 {
			t.Fatalf("gap too large: %d -> %d", pts[i-1], pts[i])
		}
	}
}

func TestCheckpointsEdge(t *testing.T) {
	pts := MustCheckpoints(5, 5, 0.5)
	if len(pts) != 1 || pts[0] != 5 {
		t.Fatalf("degenerate schedule = %v", pts)
	}
	pts = MustCheckpoints(0, 3, 0.5)
	if pts[0] != 1 {
		t.Fatalf("start clamped wrong: %v", pts)
	}
	pts = MustCheckpoints(9, 3, 0.5)
	if pts[0] != 3 {
		t.Fatalf("start above n clamped wrong: %v", pts)
	}
}

func TestCheckpointsBadGamma(t *testing.T) {
	if _, err := Checkpoints(1, 10, 0); !errors.Is(err, ErrBadGamma) {
		t.Fatalf("Checkpoints(gamma=0) err = %v, want ErrBadGamma", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected MustCheckpoints panic for gamma=0")
		}
	}()
	MustCheckpoints(1, 10, 0)
}

func TestAllRounds(t *testing.T) {
	pts := AllRounds(4)
	if len(pts) != 4 || pts[0] != 1 || pts[3] != 4 {
		t.Fatalf("AllRounds(4) = %v", pts)
	}
}

func TestRunContinuousRecordsTrajectory(t *testing.T) {
	r := rng.New(5)
	adv := &countingAdversary{}
	s := sampler.NewReservoir[int64](5)
	res := RunContinuous(s, adv, setsystem.NewPrefixes(100), 30, 0.9, AllRounds(30), r)
	if len(res.PrefixErrors) != 30 {
		t.Fatalf("recorded %d prefix errors, want 30", len(res.PrefixErrors))
	}
	for i, pe := range res.PrefixErrors {
		if pe.Round != i+1 {
			t.Fatalf("prefix error %d at round %d", i, pe.Round)
		}
		if pe.Err < 0 || pe.Err > 1 {
			t.Fatalf("prefix error out of range: %v", pe)
		}
		if pe.Err > res.MaxPrefixErr {
			t.Fatal("MaxPrefixErr is not the max")
		}
	}
	// First k rounds: sample equals stream exactly, error 0.
	for i := 0; i < 5; i++ {
		if res.PrefixErrors[i].Err != 0 {
			t.Fatalf("round %d should have zero error while reservoir is filling", i+1)
		}
	}
}

func TestRunContinuousViolationDetection(t *testing.T) {
	r := rng.New(6)
	adv := &countingAdversary{}
	s := sampler.NewBernoulli[int64](0) // empty sample: error 1 at every prefix
	res := RunContinuous(s, adv, setsystem.NewPrefixes(100), 10, 0.5, AllRounds(10), r)
	if res.OK {
		t.Fatal("empty sample should violate continuously")
	}
	if res.FirstViolation != 1 {
		t.Fatalf("first violation at %d, want 1", res.FirstViolation)
	}
	if res.MaxPrefixErr != 1 {
		t.Fatalf("max prefix error %v, want 1", res.MaxPrefixErr)
	}
}

func TestRunContinuousAlwaysChecksFinalRound(t *testing.T) {
	r := rng.New(7)
	adv := &countingAdversary{}
	s := sampler.NewReservoir[int64](3)
	res := RunContinuous(s, adv, setsystem.NewPrefixes(100), 20, 0.9, []int{5}, r)
	last := res.PrefixErrors[len(res.PrefixErrors)-1]
	if last.Round != 20 {
		t.Fatalf("final round not evaluated: last checkpoint %d", last.Round)
	}
	if len(res.PrefixErrors) != 2 {
		t.Fatalf("expected 2 checkpoints, got %d", len(res.PrefixErrors))
	}
}

func TestRunContinuousIgnoresOutOfRangeCheckpoints(t *testing.T) {
	r := rng.New(8)
	adv := &countingAdversary{}
	s := sampler.NewReservoir[int64](3)
	res := RunContinuous(s, adv, setsystem.NewPrefixes(100), 10, 0.9, []int{-3, 0, 99}, r)
	if len(res.PrefixErrors) != 1 || res.PrefixErrors[0].Round != 10 {
		t.Fatalf("unexpected checkpoints: %+v", res.PrefixErrors)
	}
}

func TestResultString(t *testing.T) {
	if (Result{}).String() == "" {
		t.Fatal("empty result string")
	}
}

func TestFootnote4BernoulliNotContinuouslyRobust(t *testing.T) {
	// Footnote 4 of the paper: BernoulliSample cannot be continuously
	// robust — with probability 1-p the first element is not sampled,
	// and the empty sample has prefix error 1 at round 1. Measure the
	// rate of round-1 violations at p = 0.5; it must be near 1/2 and in
	// particular bounded away from any delta < 1/4.
	root := rng.New(99)
	violations := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		adv := &countingAdversary{}
		s := sampler.NewBernoulli[int64](0.5)
		res := RunContinuous(s, adv, setsystem.NewPrefixes(100), 3, 0.9, AllRounds(3), r)
		if res.PrefixErrors[0].Err == 1 {
			violations++
		}
	}
	rate := float64(violations) / trials
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("round-1 empty-sample rate %v, want ~0.5", rate)
	}
}
