package game

import (
	"reflect"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

// recordingSampler wraps a reservoir and snapshots the sample after every
// Offer, so tests can recompute checkpoint verdicts independently. It
// optionally forwards LastDelta (the incremental path); hiding it forces
// RunContinuous onto the rebuild-from-View fallback.
type recordingSampler struct {
	inner     *sampler.Reservoir[int64]
	snapshots [][]int64 // snapshots[i] = sample after round i+1
}

func (rs *recordingSampler) Offer(x int64, r *rng.RNG) bool {
	admitted := rs.inner.Offer(x, r)
	rs.snapshots = append(rs.snapshots, append([]int64(nil), rs.inner.View()...))
	return admitted
}

func (rs *recordingSampler) View() []int64 { return rs.inner.View() }
func (rs *recordingSampler) Len() int      { return rs.inner.Len() }
func (rs *recordingSampler) Reset() {
	rs.inner.Reset()
	rs.snapshots = nil
}

// deltaRecordingSampler additionally exposes the wrapped reservoir's deltas.
type deltaRecordingSampler struct{ recordingSampler }

func (rs *deltaRecordingSampler) LastDelta() (added, removed []int64) {
	return rs.recordingSampler.inner.LastDelta()
}

func continuousSystems() []setsystem.SetSystem {
	const u = 1 << 10
	return []setsystem.SetSystem{
		setsystem.NewPrefixes(u),
		setsystem.NewIntervals(u),
		setsystem.NewSingletons(u),
		setsystem.NewSuffixes(u),
	}
}

// TestRunContinuousMatchesOneShotVerdicts replays the recorded per-round
// samples through the one-shot MaxDiscrepancy and demands bit-exact
// agreement with every checkpoint the incremental engine produced — for all
// four set systems, via both the delta path and the View-rebuild fallback.
func TestRunContinuousMatchesOneShotVerdicts(t *testing.T) {
	const n = 200
	for _, sys := range continuousSystems() {
		for _, mode := range []string{"delta", "fallback"} {
			var s Sampler
			var rec *recordingSampler
			if mode == "delta" {
				ds := &deltaRecordingSampler{recordingSampler{inner: sampler.NewReservoir[int64](12)}}
				rec = &ds.recordingSampler
				s = ds
			} else {
				rec = &recordingSampler{inner: sampler.NewReservoir[int64](12)}
				s = rec
			}
			adv := &zigzag{universe: 1 << 10}
			res := RunContinuous(s, adv, sys, n, 0.3, MustCheckpoints(1, n, 0.25), rng.New(99))

			if len(res.PrefixErrors) == 0 {
				t.Fatalf("%s/%s: no checkpoints evaluated", sys.Name(), mode)
			}
			for _, pe := range res.PrefixErrors {
				want := sys.MaxDiscrepancy(res.Stream[:pe.Round], rec.snapshots[pe.Round-1])
				if pe.Err != want.Err {
					t.Fatalf("%s/%s: round %d incremental err %v != one-shot %v",
						sys.Name(), mode, pe.Round, pe.Err, want.Err)
				}
			}
			last := res.PrefixErrors[len(res.PrefixErrors)-1]
			if last.Round != n {
				t.Fatalf("%s/%s: final round not evaluated", sys.Name(), mode)
			}
			if res.Discrepancy != sys.MaxDiscrepancy(res.Stream, res.Sample) {
				t.Fatalf("%s/%s: final discrepancy mismatch", sys.Name(), mode)
			}
		}
	}
}

// TestRunContinuousDeltaMatchesFallback runs the same seeded game through
// the delta path and the fallback path; every recorded value must agree.
func TestRunContinuousDeltaMatchesFallback(t *testing.T) {
	const n = 150
	sys := setsystem.NewIntervals(1 << 10)
	cps := MustCheckpoints(1, n, 0.1)

	run := func(s Sampler) ContinuousResult {
		return RunContinuous(s, &zigzag{universe: 1 << 10}, sys, n, 0.25, cps, rng.New(7))
	}
	withDeltas := run(&deltaRecordingSampler{recordingSampler{inner: sampler.NewReservoir[int64](9)}})
	fallback := run(&recordingSampler{inner: sampler.NewReservoir[int64](9)})

	if !reflect.DeepEqual(withDeltas, fallback) {
		t.Fatalf("delta path and fallback disagree:\n%+v\nvs\n%+v", withDeltas, fallback)
	}
}

// TestNormalizeCheckpoints covers the sorted-cursor schedule: unsorted
// input, duplicates, and out-of-range rounds.
func TestNormalizeCheckpoints(t *testing.T) {
	got := normalizeCheckpoints([]int{14, 3, 3, -2, 0, 99, 7, 10}, 10)
	want := []int{3, 7, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("normalizeCheckpoints = %v, want %v", got, want)
	}
	if got := normalizeCheckpoints(nil, 5); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("empty checkpoints = %v, want [5]", got)
	}
}

// TestRunContinuousUnsortedCheckpoints verifies that an unsorted checkpoint
// slice produces the same trajectory as its sorted equivalent.
func TestRunContinuousUnsortedCheckpoints(t *testing.T) {
	sys := setsystem.NewPrefixes(1 << 10)
	run := func(cps []int) ContinuousResult {
		return RunContinuous(sampler.NewReservoir[int64](5), &zigzag{universe: 1 << 10},
			sys, 40, 0.5, cps, rng.New(3))
	}
	sorted := run([]int{5, 10, 20, 40})
	shuffled := run([]int{40, 20, 5, 10, 10, 20})
	if !reflect.DeepEqual(sorted, shuffled) {
		t.Fatal("checkpoint order affected the game outcome")
	}
}

// zigzag is a deterministic adaptive adversary for tests: it alternates
// between low and high values, biased by what it sees in the sample, and
// repeats values often enough to exercise duplicate handling.
type zigzag struct {
	universe int64
	i        int
}

func (z *zigzag) Name() string { return "zigzag" }
func (z *zigzag) Reset()       { z.i = 0 }

func (z *zigzag) Next(obs Observation, r *rng.RNG) int64 {
	z.i++
	if len(obs.Sample) > 0 && z.i%3 == 0 {
		// Echo a sampled element to force duplicates across stream and
		// sample.
		return obs.Sample[z.i%len(obs.Sample)]
	}
	if z.i%2 == 0 {
		return 1 + r.Int63n(z.universe/4)
	}
	return z.universe - r.Int63n(z.universe/4)
}
