package game_test

import (
	"reflect"
	"testing"

	"robustsample/internal/adversary"
	. "robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

// roundLoopSampler wraps a reservoir but hides OfferBatch, forcing the games
// onto the historical per-round loop for comparison against the batch path.
type roundLoopSampler struct {
	inner *sampler.Reservoir[int64]
}

func (p *roundLoopSampler) Offer(x int64, r *rng.RNG) bool      { return p.inner.Offer(x, r) }
func (p *roundLoopSampler) View() []int64                       { return p.inner.View() }
func (p *roundLoopSampler) Len() int                            { return p.inner.Len() }
func (p *roundLoopSampler) Reset()                              { p.inner.Reset() }
func (p *roundLoopSampler) LastDelta() (added, removed []int64) { return p.inner.LastDelta() }

// TestRunBatchedMatchesRoundLoop: for a reservoir (batch draws identical to
// per-element) against a static adversary, the batched fast path of Run must
// reproduce the round loop bit-for-bit — stream, sample, verdict, witness.
func TestRunBatchedMatchesRoundLoop(t *testing.T) {
	sys := setsystem.NewPrefixes(1 << 16)
	const n = 3000
	batched := Run(sampler.NewReservoir[int64](50), adversary.NewStaticUniform(1<<16), sys, n, 0.3, rng.New(42))
	plain := Run(&roundLoopSampler{inner: sampler.NewReservoir[int64](50)}, adversary.NewStaticUniform(1<<16), sys, n, 0.3, rng.New(42))
	if !reflect.DeepEqual(batched, plain) {
		t.Fatalf("batched Run differs from round loop:\n%+v\nvs\n%+v", batched, plain)
	}
}

// TestRunContinuousBatchedMatchesRoundLoop is the continuous analogue: the
// entire ContinuousResult (every checkpoint verdict, trajectory, violation
// bookkeeping) must agree between the span loop and the round loop.
func TestRunContinuousBatchedMatchesRoundLoop(t *testing.T) {
	const n = 2000
	for _, sys := range batchTestSystems() {
		cps := MustCheckpoints(1, n, 0.2)
		batched := RunContinuous(sampler.NewReservoir[int64](40), adversary.NewStaticUniform(1<<10), sys, n, 0.25, cps, rng.New(9))
		plain := RunContinuous(&roundLoopSampler{inner: sampler.NewReservoir[int64](40)}, adversary.NewStaticUniform(1<<10), sys, n, 0.25, cps, rng.New(9))
		if !reflect.DeepEqual(batched, plain) {
			t.Fatalf("%s: batched RunContinuous differs from round loop:\n%+v\nvs\n%+v",
				sys.Name(), batched, plain)
		}
	}
}

// TestRunContinuousChunkInvariance: every SpanChunkCap value must yield an
// identical ContinuousResult — for the reservoir family (identical draws)
// and for Bernoulli (gap-skipping state carries across chunks).
func TestRunContinuousChunkInvariance(t *testing.T) {
	defer func(old int) { SpanChunkCap = old }(SpanChunkCap)
	const n = 1500
	sys := setsystem.NewIntervals(1 << 12)
	cps := MustCheckpoints(1, n, 0.3)
	samplers := map[string]func() Sampler{
		"reservoir": func() Sampler { return sampler.NewReservoir[int64](30) },
		"bernoulli": func() Sampler { return sampler.NewBernoulli[int64](0.05) },
	}
	for name, mk := range samplers {
		var want ContinuousResult
		for i, chunk := range []int{8192, 1, 3, 97, 1500, 100000} {
			SpanChunkCap = chunk
			got := RunContinuous(mk(), adversary.NewStaticUniform(1<<12), sys, n, 0.25, cps, rng.New(5))
			if i == 0 {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: SpanChunkCap=%d changed the outcome", name, chunk)
			}
		}
	}
}

// batchRecorder delegates to a reservoir's OfferBatch and snapshots the
// sample after every batch; with SpanChunkCap=1 batches are single rounds,
// so snapshots[i] is the sample after round i+1 and every checkpoint verdict
// of the batched span loop can be replayed through the one-shot engine.
type batchRecorder struct {
	inner     *sampler.Reservoir[int64]
	snapshots [][]int64
}

func (b *batchRecorder) Offer(x int64, r *rng.RNG) bool { panic("batch path expected") }
func (b *batchRecorder) OfferBatch(xs []int64, r *rng.RNG) int {
	n := b.inner.OfferBatch(xs, r)
	b.snapshots = append(b.snapshots, append([]int64(nil), b.inner.View()...))
	return n
}
func (b *batchRecorder) View() []int64                       { return b.inner.View() }
func (b *batchRecorder) Len() int                            { return b.inner.Len() }
func (b *batchRecorder) Reset()                              { b.inner.Reset(); b.snapshots = nil }
func (b *batchRecorder) LastDelta() (added, removed []int64) { return b.inner.LastDelta() }

// TestRunContinuousBatchedVerdictsMatchOneShot pins the batched span loop's
// checkpoint verdicts to the one-shot MaxDiscrepancy on the recorded
// prefixes, for all four set systems.
func TestRunContinuousBatchedVerdictsMatchOneShot(t *testing.T) {
	defer func(old int) { SpanChunkCap = old }(SpanChunkCap)
	SpanChunkCap = 1
	const n = 300
	for _, sys := range batchTestSystems() {
		rec := &batchRecorder{inner: sampler.NewReservoir[int64](15)}
		res := RunContinuous(rec, adversary.NewStaticUniform(1<<10), sys, n, 0.3, MustCheckpoints(1, n, 0.25), rng.New(31))
		if len(res.PrefixErrors) == 0 {
			t.Fatalf("%s: no checkpoints evaluated", sys.Name())
		}
		if len(rec.snapshots) != n {
			t.Fatalf("%s: %d snapshots, want %d (batch path not chunked per round?)", sys.Name(), len(rec.snapshots), n)
		}
		for _, pe := range res.PrefixErrors {
			want := sys.MaxDiscrepancy(res.Stream[:pe.Round], rec.snapshots[pe.Round-1])
			if pe.Err != want.Err {
				t.Fatalf("%s: round %d batched err %v != one-shot %v",
					sys.Name(), pe.Round, pe.Err, want.Err)
			}
		}
		if res.Discrepancy != sys.MaxDiscrepancy(res.Stream, res.Sample) {
			t.Fatalf("%s: final discrepancy mismatch", sys.Name())
		}
	}
}

// TestRunBatchedBernoulliVerdictExact: the Bernoulli fast path of Run draws
// a different (equally distributed) sample; its verdict must still be the
// exact discrepancy of the stream/sample pair it reports.
func TestRunBatchedBernoulliVerdictExact(t *testing.T) {
	sys := setsystem.NewPrefixes(1 << 12)
	res := Run(sampler.NewBernoulli[int64](0.1), adversary.NewStaticUniform(1<<12), sys, 2000, 0.3, rng.New(77))
	if len(res.Stream) != 2000 {
		t.Fatalf("stream length %d", len(res.Stream))
	}
	if res.Discrepancy != sys.MaxDiscrepancy(res.Stream, res.Sample) {
		t.Fatalf("verdict %v not the exact discrepancy", res.Discrepancy)
	}
	if res.OK != (res.Discrepancy.Err <= 0.3) {
		t.Fatal("OK flag inconsistent with verdict")
	}
}

func batchTestSystems() []setsystem.SetSystem {
	const u = 1 << 10
	return []setsystem.SetSystem{
		setsystem.NewPrefixes(u),
		setsystem.NewIntervals(u),
		setsystem.NewSingletons(u),
		setsystem.NewSuffixes(u),
	}
}
