// The sharded continuous game: the Figure-2 loop played against a
// coordinator that routes the adversary's stream across shards. The game
// drives the engine through the ShardedEngine interface (implemented by
// internal/shard) so the game layer stays independent of the shard layer's
// mechanics; everything the verdict needs — merged accumulators, union
// samples — lives behind the interface.
package game

import (
	"robustsample/internal/rng"
	"robustsample/internal/setsystem"
)

// ShardedEngine is the coordinator-side contract RunSharded plays against.
// internal/shard.Engine is the canonical implementation. The engine owns the
// set system, the routing policy, and every shard's sampler and incremental
// accumulator; the game only feeds it elements and asks for verdicts.
//
// Implementations must be deterministic functions of the StartGame seed and
// the offered elements (worker counts and ingest chunking must not matter),
// and Verdict must agree bit-for-bit with the set system's MaxDiscrepancy on
// the concatenated stream against the union sample.
type ShardedEngine interface {
	// StartGame resets all shard state and re-seeds the engine's RNG
	// streams from r.
	StartGame(r *rng.RNG)
	// Offer routes one element adaptively, reporting the destination
	// shard and whether its sampler admitted the element.
	Offer(x int64) (shardIdx int, admitted bool)
	// Ingest bulk-routes a run of consecutive elements (the non-adaptive
	// span path; shards may ingest in parallel).
	Ingest(xs []int64)
	// Verdict returns the exact global discrepancy of the union stream
	// against the union sample.
	Verdict() setsystem.Discrepancy
	// SampleView returns the union sample as a transient read-only view.
	SampleView() []int64
	// Sample returns a copy of the union sample.
	Sample() []int64
}

// RunSharded plays one continuous adaptive game against a sharded engine:
// the adversary submits one stream, the engine routes it across shards, and
// the exact global epsilon-approximation error (union stream vs union
// sample) is evaluated at each checkpoint, exactly as RunContinuous does for
// a single sampler. The engine and the adversary receive independent RNG
// streams derived from r in that order, mirroring the unsharded games.
//
// The adversary's Observation carries the coordinator's view: Sample is the
// union of the per-shard samples and LastAdmitted reports whether the
// previous element entered ANY shard's sample. (Attacks that need per-shard
// admission feedback — the distributed bisection arm — drive the engine
// directly; see internal/shard.RunTargetedBisection.)
//
// When the adversary is a StreamGenerator, the rounds between checkpoints
// collapse into chunked bulk ingest (Engine.Ingest in SpanChunkCap-sized
// chunks), letting shards ingest in parallel; verdicts and trajectories are
// unchanged because routing and sampling are chunking-invariant.
func RunSharded(e ShardedEngine, adv Adversary, n int, eps float64, checkpoints []int, r *rng.RNG) ContinuousResult {
	if n < 1 {
		panic("game: stream length must be >= 1")
	}
	adv.Reset()
	e.StartGame(r)
	advRNG := r.Split()

	cps := normalizeCheckpoints(checkpoints, n)

	var prefixErrs []PrefixError
	maxErr := 0.0
	firstViolation := 0
	var final setsystem.Discrepancy
	checkpoint := func(round int) {
		d := e.Verdict()
		prefixErrs = append(prefixErrs, PrefixError{Round: round, Err: d.Err})
		if d.Err > maxErr {
			maxErr = d.Err
		}
		if d.Err > eps && firstViolation == 0 {
			firstViolation = round
		}
		final = d // round n is always the last checkpoint
	}

	var stream []int64
	if gen, ok := adv.(StreamGenerator); ok {
		stream = generateStream(gen, n, advRNG)
		played := 0
		for _, cp := range cps {
			for played < cp {
				j := min(played+spanChunk(), cp)
				e.Ingest(stream[played:j])
				played = j
			}
			checkpoint(cp)
		}
	} else {
		stream = make([]int64, 0, n)
		lastAdmitted := false
		next := 0 // cursor into cps; cps is sorted so one comparison per round
		for i := 1; i <= n; i++ {
			obs := Observation{
				Round:        i,
				N:            n,
				Sample:       e.SampleView(),
				LastAdmitted: lastAdmitted,
				History:      stream,
			}
			x := adv.Next(obs, advRNG)
			stream = append(stream, x)
			_, lastAdmitted = e.Offer(x)
			if next < len(cps) && cps[next] == i {
				next++
				checkpoint(i)
			}
		}
	}

	return ContinuousResult{
		Result: Result{
			Stream:      stream,
			Sample:      e.Sample(),
			Discrepancy: final,
			Eps:         eps,
			OK:          firstViolation == 0,
		},
		PrefixErrors:   prefixErrs,
		MaxPrefixErr:   maxErr,
		FirstViolation: firstViolation,
	}
}
