// External test package: these tests drive game.RunSharded with the real
// internal/shard engine, which itself imports game — an import cycle if
// this file lived in package game.
package game_test

import (
	"reflect"
	"testing"

	"robustsample/internal/adversary"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/shard"
)

const shardedUniverse = int64(1 << 16)

func newShardedEngine(shards, k, workers int, router shard.Router, record bool) *shard.Engine {
	return shard.New(shard.Config{
		Shards: shards,
		Router: router,
		System: setsystem.NewPrefixes(shardedUniverse),
		NewSampler: func(int) game.Sampler {
			return sampler.NewReservoir[int64](k)
		},
		Workers:       workers,
		RecordStreams: record,
	}, nil)
}

// TestRunShardedVerdictsMatchOneShot replays the sharded continuous game
// and checks that every checkpoint's recorded error matches the one-shot
// MaxDiscrepancy on the stream prefix against the union sample at that
// point. The final-round check covers error and witness exactly.
func TestRunShardedVerdictsMatchOneShot(t *testing.T) {
	sys := setsystem.NewPrefixes(shardedUniverse)
	for _, router := range shard.Routers() {
		eng := newShardedEngine(3, 20, 1, router, true)
		n := 4000
		cps := game.MustCheckpoints(1, n, 0.05)
		res := game.RunSharded(eng, adversary.NewStaticUniform(shardedUniverse), n, 0.5, cps, rng.New(17))
		if len(res.PrefixErrors) != len(cps) {
			t.Fatalf("%s: %d checkpoint errors, want %d", router.Name(), len(res.PrefixErrors), len(cps))
		}
		// Replay: same engine seed, same stream, stop at each checkpoint.
		replay := newShardedEngine(3, 20, 1, router, true)
		r := rng.New(17)
		replay.StartGame(r)
		played := 0
		for i, cp := range cps {
			replay.Ingest(res.Stream[played:cp])
			played = cp
			want := sys.MaxDiscrepancy(res.Stream[:cp], replay.Sample())
			if got := res.PrefixErrors[i].Err; got != want.Err {
				t.Fatalf("%s: checkpoint %d err %v, one-shot %v", router.Name(), cp, got, want.Err)
			}
			if cp == n && res.Discrepancy != want {
				t.Fatalf("%s: final discrepancy %+v, one-shot %+v", router.Name(), res.Discrepancy, want)
			}
		}
		if !reflect.DeepEqual(replay.Sample(), res.Sample) {
			t.Fatalf("%s: replayed sample differs", router.Name())
		}
	}
}

// TestRunShardedByteIdenticalAcrossWorkersAndChunks fixes the seed and
// varies only the engine worker pool and the span chunk cap; the full
// ContinuousResult must be byte-identical in all combinations.
func TestRunShardedByteIdenticalAcrossWorkersAndChunks(t *testing.T) {
	defer func(old int) { game.SpanChunkCap = old }(game.SpanChunkCap)
	run := func(workers, chunk int) game.ContinuousResult {
		game.SpanChunkCap = chunk
		eng := newShardedEngine(5, 15, workers, shard.Uniform{}, false)
		n := 3000
		return game.RunSharded(eng, adversary.NewStaticUniform(shardedUniverse), n, 0.5,
			game.MustCheckpoints(1, n, 0.1), rng.New(23))
	}
	base := run(1, 8192)
	for _, workers := range []int{0, 4} {
		for _, chunk := range []int{1, 97, 8192, 1 << 20} {
			got := run(workers, chunk)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("workers=%d chunk=%d: sharded result differs from serial", workers, chunk)
			}
		}
	}
}

// TestRunShardedAdaptivePath plays an adaptive (non-StreamGenerator)
// adversary through the sharded game: the round loop must feed the
// coordinator's union sample to the adversary and still produce exact
// checkpoint verdicts.
func TestRunShardedAdaptivePath(t *testing.T) {
	sys := setsystem.NewPrefixes(shardedUniverse)
	eng := shard.New(shard.Config{
		Shards: 3,
		Router: shard.Uniform{},
		System: sys,
		NewSampler: func(int) game.Sampler {
			return sampler.NewReservoir[int64](10)
		},
		Workers:       1,
		RecordStreams: true,
	}, nil)
	n := 800
	res := game.RunSharded(eng, adversary.NewMedianPusher(shardedUniverse), n, 0.9,
		game.AllRounds(n), rng.New(31))
	if len(res.Stream) != n {
		t.Fatalf("stream length %d", len(res.Stream))
	}
	if len(res.PrefixErrors) != n {
		t.Fatalf("expected %d per-round verdicts, got %d", n, len(res.PrefixErrors))
	}
	want := sys.MaxDiscrepancy(res.Stream, res.Sample)
	if res.Discrepancy != want {
		t.Fatalf("final discrepancy %+v, one-shot %+v", res.Discrepancy, want)
	}
	if res.MaxPrefixErr < res.Discrepancy.Err {
		t.Fatal("max prefix error below final error")
	}
}

// TestRunShardedSingleShardDegenerate checks the S=1 degenerate case: the
// engine reduces to one sampler and the game must agree with the one-shot
// verdict on the whole stream.
func TestRunShardedSingleShardDegenerate(t *testing.T) {
	sys := setsystem.NewIntervals(shardedUniverse)
	eng := shard.New(shard.Config{
		Shards: 1,
		System: sys,
		NewSampler: func(int) game.Sampler {
			return sampler.NewReservoir[int64](25)
		},
		Workers: 1,
	}, nil)
	n := 2000
	res := game.RunSharded(eng, adversary.NewStaticSorted(shardedUniverse), n, 0.5,
		game.MustCheckpoints(1, n, 0.25), rng.New(3))
	want := sys.MaxDiscrepancy(res.Stream, res.Sample)
	if res.Discrepancy != want {
		t.Fatalf("final discrepancy %+v, one-shot %+v", res.Discrepancy, want)
	}
}
