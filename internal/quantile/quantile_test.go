package quantile

import (
	"cmp"
	"math"
	"slices"
	"testing"

	"robustsample/internal/rng"
	"testing/quick"
)

func uniformStream(n int, universe int64, r *rng.RNG) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 + r.Int63n(universe)
	}
	return out
}

func TestExactRankerGroundTruth(t *testing.T) {
	e := NewExact()
	for _, v := range []int64{5, 1, 3, 3, 9} {
		e.Insert(v)
	}
	cases := []struct {
		x    int64
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1}, {3, 3}, {5, 4}, {9, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := e.Rank(c.x); got != c.want {
			t.Fatalf("Rank(%d) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Quantile(0.5) != 3 {
		t.Fatalf("median = %d, want 3", e.Quantile(0.5))
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 9 {
		t.Fatal("extreme quantiles wrong")
	}
	if e.Count() != 5 || e.Size() != 5 {
		t.Fatal("count/size wrong")
	}
}

func TestExactRankerEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExact().Quantile(0.5)
}

func TestExactInsertAfterQueryStillSorted(t *testing.T) {
	e := NewExact()
	e.Insert(5)
	_ = e.Rank(3)
	e.Insert(1)
	if e.Rank(1) != 1 {
		t.Fatal("rank wrong after interleaved insert/query")
	}
}

func TestReservoirSketchRankAccuracy(t *testing.T) {
	r := rng.New(1)
	sk := NewReservoirSketch(2000, r.Split())
	stream := uniformStream(20000, 1<<20, r)
	for _, x := range stream {
		sk.Insert(x)
	}
	if err := MaxRankError(sk, stream); err > 0.08 {
		t.Fatalf("reservoir sketch rank error %v too large", err)
	}
	if sk.Count() != 20000 {
		t.Fatal("count wrong")
	}
	if sk.Size() != 2000 {
		t.Fatalf("size %d, want 2000", sk.Size())
	}
}

func TestBernoulliSketchRankAccuracy(t *testing.T) {
	r := rng.New(2)
	sk := NewBernoulliSketch(0.1, r.Split())
	stream := uniformStream(20000, 1<<20, r)
	for _, x := range stream {
		sk.Insert(x)
	}
	if err := MaxRankError(sk, stream); err > 0.08 {
		t.Fatalf("bernoulli sketch rank error %v too large", err)
	}
}

func TestBernoulliSketchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBernoulliSketch(1.5, rng.New(1))
}

func TestSampleSketchMedian(t *testing.T) {
	r := rng.New(3)
	sk := NewReservoirSketch(500, r.Split())
	const n = 10000
	for i := 1; i <= n; i++ {
		sk.Insert(int64(i))
	}
	med := sk.Quantile(0.5)
	if med < n/2-n/10 || med > n/2+n/10 {
		t.Fatalf("median %d too far from %d", med, n/2)
	}
}

func TestSampleSketchEmptyQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReservoirSketch(5, rng.New(1)).Quantile(0.5)
}

func TestGKRankWithinEps(t *testing.T) {
	for _, order := range []string{"random", "sorted", "reverse"} {
		eps := 0.01
		g := NewGK(eps)
		r := rng.New(4)
		const n = 20000
		stream := uniformStream(n, 1<<20, r)
		switch order {
		case "sorted":
			slices.Sort(stream)
		case "reverse":
			slices.SortFunc(stream, func(a, b int64) int { return cmp.Compare(b, a) })
		}
		for _, x := range stream {
			g.Insert(x)
		}
		if err := MaxRankError(g, stream); err > eps+0.005 {
			t.Fatalf("%s order: GK rank error %v exceeds eps %v", order, err, eps)
		}
		if !g.InvariantHolds() {
			t.Fatalf("%s order: GK invariant violated", order)
		}
	}
}

func TestGKSpaceSublinear(t *testing.T) {
	eps := 0.01
	g := NewGK(eps)
	r := rng.New(5)
	const n = 50000
	for _, x := range uniformStream(n, 1<<30, r) {
		g.Insert(x)
	}
	if g.Size() > n/10 {
		t.Fatalf("GK stored %d tuples for n=%d; not compressing", g.Size(), n)
	}
	if g.Count() != n {
		t.Fatal("count wrong")
	}
}

func TestGKQuantileReasonable(t *testing.T) {
	g := NewGK(0.01)
	const n = 10000
	for i := 1; i <= n; i++ {
		g.Insert(int64(i))
	}
	med := g.Quantile(0.5)
	if med < n/2-n/20 || med > n/2+n/20 {
		t.Fatalf("GK median %d too far from %d", med, n/2)
	}
}

func TestGKValidation(t *testing.T) {
	for _, eps := range []float64{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewGK(eps)
		}()
	}
}

func TestGKEmpty(t *testing.T) {
	g := NewGK(0.1)
	if g.Rank(5) != 0 {
		t.Fatal("empty GK rank should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty quantile")
		}
	}()
	g.Quantile(0.5)
}

func TestKLLRankAccuracy(t *testing.T) {
	r := rng.New(6)
	s := NewKLL(200, r.Split())
	const n = 50000
	stream := uniformStream(n, 1<<30, r)
	for _, x := range stream {
		s.Insert(x)
	}
	if err := MaxRankError(s, stream); err > 0.05 {
		t.Fatalf("KLL rank error %v too large", err)
	}
	if !s.WeightConserved() {
		t.Fatal("KLL lost mass during compaction")
	}
}

func TestKLLSpaceSublinear(t *testing.T) {
	r := rng.New(7)
	s := NewKLL(100, r.Split())
	const n = 100000
	for _, x := range uniformStream(n, 1<<30, r) {
		s.Insert(x)
	}
	if s.Size() > 3000 {
		t.Fatalf("KLL size %d too large for k=100", s.Size())
	}
	if s.Levels() < 2 {
		t.Fatal("KLL never compacted")
	}
	if s.Count() != n {
		t.Fatal("count wrong")
	}
}

func TestKLLSortedInsertion(t *testing.T) {
	r := rng.New(8)
	s := NewKLL(200, r)
	const n = 30000
	stream := make([]int64, n)
	for i := range stream {
		stream[i] = int64(i + 1)
	}
	for _, x := range stream {
		s.Insert(x)
	}
	if err := MaxRankError(s, stream); err > 0.05 {
		t.Fatalf("KLL sorted-order rank error %v", err)
	}
}

func TestKLLQuantileMonotone(t *testing.T) {
	r := rng.New(9)
	s := NewKLL(100, r.Split())
	for _, x := range uniformStream(20000, 1<<20, r) {
		s.Insert(x)
	}
	prev := int64(math.MinInt64)
	for q := 0.0; q <= 1.0; q += 0.1 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at q=%v", q)
		}
		prev = v
	}
}

func TestKLLValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewKLL(3, rng.New(1)) },
		func() { NewKLL(10, nil) },
		func() { NewKLL(10, rng.New(1)).Quantile(0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMaxRankErrorEmptyStream(t *testing.T) {
	if MaxRankError(NewExact(), nil) != 0 {
		t.Fatal("empty stream error should be 0")
	}
}

func TestMaxRankErrorExactIsZero(t *testing.T) {
	r := rng.New(10)
	f := func(nRaw uint8) bool {
		n := int(nRaw%100) + 1
		e := NewExact()
		stream := uniformStream(n, 100, r)
		for _, x := range stream {
			e.Insert(x)
		}
		return MaxRankError(e, stream) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSketchesAgreeOnDuplicateHeavyStream(t *testing.T) {
	// A stream that is 90% one value; median must be that value for
	// every sketch.
	r := rng.New(11)
	mk := []Sketch{
		NewExact(),
		NewReservoirSketch(500, r.Split()),
		NewGK(0.01),
		NewKLL(200, r.Split()),
	}
	const n = 10000
	for i := 0; i < n; i++ {
		v := int64(500)
		if i%10 == 0 {
			v = 1 + r.Int63n(1000)
		}
		for _, sk := range mk {
			sk.Insert(v)
		}
	}
	for _, sk := range mk {
		if med := sk.Quantile(0.5); med != 500 {
			t.Fatalf("%s: median %d, want 500", sk.Name(), med)
		}
	}
}

func BenchmarkGKInsert(b *testing.B) {
	g := NewGK(0.01)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Insert(r.Int63n(1 << 30))
	}
}

func BenchmarkKLLInsert(b *testing.B) {
	r := rng.New(1)
	s := NewKLL(200, r.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(r.Int63n(1 << 30))
	}
}

func BenchmarkReservoirSketchInsert(b *testing.B) {
	r := rng.New(1)
	s := NewReservoirSketch(1000, r.Split())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(r.Int63n(1 << 30))
	}
}

func TestKLLMergeAccuracy(t *testing.T) {
	// Two sketches over halves of a stream, merged, must answer ranks
	// about as well as one sketch over the whole stream.
	r := rng.New(12)
	a := NewKLL(200, r.Split())
	b := NewKLL(200, r.Split())
	const n = 40000
	stream := uniformStream(n, 1<<30, r)
	for i, x := range stream {
		if i < n/2 {
			a.Insert(x)
		} else {
			b.Insert(x)
		}
	}
	a.Merge(b)
	if a.Count() != n {
		t.Fatalf("merged count %d, want %d", a.Count(), n)
	}
	if err := MaxRankError(a, stream); err > 0.06 {
		t.Fatalf("merged KLL rank error %v too large", err)
	}
	if !a.WeightConserved() {
		t.Fatal("merge lost mass")
	}
}

func TestKLLMergeNilAndEmpty(t *testing.T) {
	r := rng.New(13)
	a := NewKLL(100, r.Split())
	a.Insert(5)
	a.Merge(nil)
	if a.Count() != 1 {
		t.Fatal("nil merge changed count")
	}
	empty := NewKLL(100, r.Split())
	a.Merge(empty)
	if a.Count() != 1 || a.Rank(5) != 1 {
		t.Fatal("empty merge corrupted sketch")
	}
}

func TestKLLMergeRespectsCapacity(t *testing.T) {
	r := rng.New(14)
	a := NewKLL(50, r.Split())
	b := NewKLL(50, r.Split())
	for _, x := range uniformStream(20000, 1<<20, r) {
		a.Insert(x)
		b.Insert(x)
	}
	a.Merge(b)
	if a.Size() > 2000 {
		t.Fatalf("merged size %d did not compact", a.Size())
	}
}
