// Package quantile implements the quantile-estimation application of
// Corollary 1.5 and its classical competitors.
//
// The paper's robust quantile sketch is simply a Bernoulli or reservoir
// sample sized for the prefix set system (|R| = |U|): if the sample is an
// eps-approximation, every rank query is answered within eps*n, for all
// quantiles simultaneously. This package provides that sketch plus the two
// standard baselines the streaming literature (and the paper's related-work
// section) compares against:
//
//   - Greenwald-Khanna [GK01]: deterministic, hence trivially adversarially
//     robust, with O(eps^-1 log(eps n)) space.
//   - KLL [KLL16]: randomized compactor hierarchy with optimal static
//     space; NOT known to be adversarially robust, included as the
//     contrast point.
//
// All sketches answer Rank(x) = |{ j : x_j <= x }| estimates; exact
// reference ranks come from ExactRanker.
package quantile

import (
	"math"
	"slices"
	"sort"

	"robustsample/internal/rng"
)

// Sketch is a streaming rank/quantile estimator over int64 values.
type Sketch interface {
	// Name identifies the sketch in tables.
	Name() string
	// Insert folds in one stream element.
	Insert(x int64)
	// Rank estimates |{ j : x_j <= x }| over the stream so far.
	Rank(x int64) float64
	// Quantile returns an element whose rank is approximately q*n, for
	// q in [0, 1]. It panics if the sketch is empty.
	Quantile(q float64) int64
	// Count returns the number of inserted elements.
	Count() int
	// Size returns the number of stored tuples/values (space usage).
	Size() int
}

// ExactRanker stores the entire stream and answers exact ranks; it is the
// ground truth the experiments compare sketches against.
type ExactRanker struct {
	values []int64
	sorted bool
}

// NewExact returns an empty exact ranker.
func NewExact() *ExactRanker { return &ExactRanker{} }

// Name implements Sketch.
func (e *ExactRanker) Name() string { return "exact" }

// Insert implements Sketch.
func (e *ExactRanker) Insert(x int64) {
	e.values = append(e.values, x)
	e.sorted = false
}

func (e *ExactRanker) ensureSorted() {
	if !e.sorted {
		slices.Sort(e.values)
		e.sorted = true
	}
}

// Rank implements Sketch (exactly).
func (e *ExactRanker) Rank(x int64) float64 {
	e.ensureSorted()
	idx := sort.Search(len(e.values), func(i int) bool { return e.values[i] > x })
	return float64(idx)
}

// Quantile implements Sketch (exactly).
func (e *ExactRanker) Quantile(q float64) int64 {
	if len(e.values) == 0 {
		panic("quantile: empty sketch")
	}
	e.ensureSorted()
	idx := int(q*float64(len(e.values))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(e.values) {
		idx = len(e.values) - 1
	}
	return e.values[idx]
}

// Count implements Sketch.
func (e *ExactRanker) Count() int { return len(e.values) }

// Size implements Sketch.
func (e *ExactRanker) Size() int { return len(e.values) }

// SampleSketch answers rank queries from a maintained random sample; with a
// Theorem 1.2-sized sample it is the paper's adversarially robust quantile
// sketch (Corollary 1.5).
type SampleSketch struct {
	label string
	rng   *rng.RNG
	offer func(x int64, r *rng.RNG) bool
	view  func() []int64
	count int
}

// NewReservoirSketch wraps a reservoir sampler of memory k as a quantile
// sketch; pass k from core.QuantileSketchSize for robustness.
func NewReservoirSketch(k int, r *rng.RNG) *SampleSketch {
	res := newReservoirInt64(k)
	return &SampleSketch{
		label: "reservoir-sample",
		rng:   r,
		offer: res.offer,
		view:  res.viewFn,
	}
}

// NewBernoulliSketch wraps a Bernoulli sampler of rate p as a quantile
// sketch; pass p from core.BernoulliRate for robustness.
func NewBernoulliSketch(p float64, r *rng.RNG) *SampleSketch {
	if p < 0 || p > 1 {
		panic("quantile: Bernoulli rate must be in [0, 1]")
	}
	var items []int64
	return &SampleSketch{
		label: "bernoulli-sample",
		rng:   r,
		offer: func(x int64, r *rng.RNG) bool {
			if r.Bernoulli(p) {
				items = append(items, x)
				return true
			}
			return false
		},
		view: func() []int64 { return items },
	}
}

// minimal int64 reservoir to avoid importing the generic sampler here (the
// sketch interface hides admission feedback anyway).
type reservoirInt64 struct {
	k      int
	items  []int64
	rounds int
}

func newReservoirInt64(k int) *reservoirInt64 {
	if k < 1 {
		panic("quantile: reservoir capacity must be >= 1")
	}
	return &reservoirInt64{k: k}
}

func (v *reservoirInt64) offer(x int64, r *rng.RNG) bool {
	v.rounds++
	if len(v.items) < v.k {
		v.items = append(v.items, x)
		return true
	}
	j := r.Intn(v.rounds)
	if j < v.k {
		v.items[j] = x
		return true
	}
	return false
}

func (v *reservoirInt64) viewFn() []int64 { return v.items }

// Name implements Sketch.
func (s *SampleSketch) Name() string { return s.label }

// Insert implements Sketch.
func (s *SampleSketch) Insert(x int64) {
	s.offer(x, s.rng)
	s.count++
}

// Rank implements Sketch: rank(x) ~= d_[min,x](S) * n.
func (s *SampleSketch) Rank(x int64) float64 {
	sample := s.view()
	if len(sample) == 0 {
		return 0
	}
	below := 0
	for _, v := range sample {
		if v <= x {
			below++
		}
	}
	return float64(below) / float64(len(sample)) * float64(s.count)
}

// Quantile implements Sketch: the q-quantile of the sample.
func (s *SampleSketch) Quantile(q float64) int64 {
	sample := append([]int64(nil), s.view()...)
	if len(sample) == 0 {
		panic("quantile: empty sketch")
	}
	slices.Sort(sample)
	idx := int(q*float64(len(sample))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sample) {
		idx = len(sample) - 1
	}
	return sample[idx]
}

// Count implements Sketch.
func (s *SampleSketch) Count() int { return s.count }

// Size implements Sketch.
func (s *SampleSketch) Size() int { return len(s.view()) }

// MaxRankError returns the maximal |sketch.Rank(x) - exact rank| / n over
// all distinct stream values, the all-quantiles error metric of Corollary
// 1.5. stream must be the full stream the sketch ingested.
func MaxRankError(sk Sketch, stream []int64) float64 {
	if len(stream) == 0 {
		return 0
	}
	sorted := append([]int64(nil), stream...)
	slices.Sort(sorted)
	n := float64(len(sorted))
	worst := 0.0
	for i := 0; i < len(sorted); i++ {
		// Skip duplicates; rank changes only at distinct values.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		exact := float64(i + 1)
		got := sk.Rank(sorted[i])
		if d := math.Abs(got-exact) / n; d > worst {
			worst = d
		}
	}
	return worst
}
