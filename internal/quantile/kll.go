package quantile

import (
	"cmp"
	"math"
	"slices"

	"robustsample/internal/rng"
)

// KLL is the randomized compactor-based quantile sketch of Karnin, Lang and
// Liberty [KLL16], the asymptotically optimal static sketch the paper cites.
// Each level h holds a buffer; when a buffer fills, it is sorted and either
// its odd- or even-indexed half (chosen by a fair coin) is promoted to level
// h+1, doubling the weight. Capacities shrink geometrically with depth
// (ratio 2/3) so total space is O(k).
//
// KLL's guarantee is for a stream fixed in advance. Against the adaptive
// adversary of the paper it has no known robustness guarantee; the
// experiments include it to contrast "optimal static" with "robust".
type KLL struct {
	// K is the top-level capacity parameter; rank error is O(1/K) with
	// high probability in the static setting.
	K int

	levels [][]int64
	rng    *rng.RNG
	n      int
}

// NewKLL returns an empty KLL sketch with parameter k, drawing compaction
// coins from r. It panics unless k >= 4.
func NewKLL(k int, r *rng.RNG) *KLL {
	if k < 4 {
		panic("quantile: KLL needs k >= 4")
	}
	if r == nil {
		panic("quantile: KLL needs an RNG")
	}
	return &KLL{K: k, rng: r, levels: make([][]int64, 1)}
}

// Name implements Sketch.
func (s *KLL) Name() string { return "kll" }

// capacityAt returns the buffer capacity of level h counted from the top
// (level 0 is the raw-input level; deeper levels are higher h meaning the
// weightier compacted data). Capacity shrinks from K by factor 2/3 per
// level away from the highest level, floored at 2.
func (s *KLL) capacityAt(h int) int {
	top := len(s.levels) - 1
	c := float64(s.K) * math.Pow(2.0/3.0, float64(top-h))
	if c < 2 {
		return 2
	}
	return int(math.Ceil(c))
}

// Insert implements Sketch.
func (s *KLL) Insert(x int64) {
	s.n++
	s.levels[0] = append(s.levels[0], x)
	for h := 0; h < len(s.levels); h++ {
		if len(s.levels[h]) <= s.capacityAt(h) {
			break
		}
		s.compact(h)
	}
}

// compact halves level h into level h+1.
func (s *KLL) compact(h int) {
	buf := s.levels[h]
	slices.Sort(buf)
	offset := 0
	if s.rng.Bernoulli(0.5) {
		offset = 1
	}
	if h+1 == len(s.levels) {
		s.levels = append(s.levels, nil)
	}
	for i := offset; i < len(buf); i += 2 {
		s.levels[h+1] = append(s.levels[h+1], buf[i])
	}
	s.levels[h] = s.levels[h][:0]
}

// Rank implements Sketch: each element at level h carries weight 2^h.
func (s *KLL) Rank(x int64) float64 {
	total := 0.0
	weight := 1.0
	for _, level := range s.levels {
		for _, v := range level {
			if v <= x {
				total += weight
			}
		}
		weight *= 2
	}
	return total
}

// Quantile implements Sketch by scanning the weighted sorted union.
func (s *KLL) Quantile(q float64) int64 {
	type wv struct {
		v int64
		w float64
	}
	var items []wv
	weight := 1.0
	for _, level := range s.levels {
		for _, v := range level {
			items = append(items, wv{v, weight})
		}
		weight *= 2
	}
	if len(items) == 0 {
		panic("quantile: empty sketch")
	}
	slices.SortFunc(items, func(a, b wv) int { return cmp.Compare(a.v, b.v) })
	totalW := 0.0
	for _, it := range items {
		totalW += it.w
	}
	target := q * totalW
	acc := 0.0
	for _, it := range items {
		acc += it.w
		if acc >= target {
			return it.v
		}
	}
	return items[len(items)-1].v
}

// Count implements Sketch.
func (s *KLL) Count() int { return s.n }

// Size implements Sketch.
func (s *KLL) Size() int {
	total := 0
	for _, level := range s.levels {
		total += len(level)
	}
	return total
}

// Levels returns the number of compactor levels currently allocated.
func (s *KLL) Levels() int { return len(s.levels) }

// Merge folds the contents of other into s, implementing the mergeability
// property that makes KLL suitable for the distributed-streams setting the
// paper's related-work section discusses ([CTW16, CMYZ12]): level-h items
// of other are appended to level h of s and compacted lazily on overflow.
// other is left unchanged.
func (s *KLL) Merge(other *KLL) {
	if other == nil {
		return
	}
	for h, level := range other.levels {
		for h >= len(s.levels) {
			s.levels = append(s.levels, nil)
		}
		s.levels[h] = append(s.levels[h], level...)
	}
	s.n += other.n
	for h := 0; h < len(s.levels); h++ {
		for len(s.levels[h]) > s.capacityAt(h) {
			s.compact(h)
		}
	}
}

// WeightConserved checks that the total weighted count equals n; compaction
// must preserve mass. Tests call it after adversarial insertions.
func (s *KLL) WeightConserved() bool {
	total := 0.0
	weight := 1.0
	for _, level := range s.levels {
		total += weight * float64(len(level))
		weight *= 2
	}
	// Compaction of an odd-sized buffer drops at most one element of
	// that level's weight; allow the cumulative slack.
	slack := weight // generous: sum of one element per level
	return math.Abs(total-float64(s.n)) <= slack
}
