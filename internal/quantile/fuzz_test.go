package quantile

import "testing"

// FuzzGKInvariant feeds arbitrary insertion orders into the GK summary and
// checks its structural invariant plus rank sanity after every batch.
func FuzzGKInvariant(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{255, 0, 255, 0})
	f.Add([]byte{7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 512 {
			return
		}
		g := NewGK(0.1)
		var min, max int64 = 256, -1
		for _, b := range data {
			v := int64(b)
			g.Insert(v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if !g.InvariantHolds() {
			t.Fatalf("GK invariant violated after %v", data)
		}
		if g.Count() != len(data) {
			t.Fatalf("count %d != %d", g.Count(), len(data))
		}
		// Rank is monotone and hits the endpoints.
		if g.Rank(min-1) != 0 {
			t.Fatalf("rank below min = %v", g.Rank(min-1))
		}
		if got := g.Rank(max); got != float64(len(data)) {
			t.Fatalf("rank at max = %v, want %d", got, len(data))
		}
		// The midpoint estimate may dip by up to the uncertainty band
		// (2*eps*n) between adjacent values while staying within the
		// GK guarantee; anything larger is a bug.
		band := 2*g.Eps*float64(g.Count()) + 1
		prev := -band
		for v := min; v <= max; v++ {
			r := g.Rank(v)
			if r < prev-band {
				t.Fatalf("rank dipped more than the uncertainty band at %d: %v -> %v", v, prev, r)
			}
			prev = r
		}
	})
}
