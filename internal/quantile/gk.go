package quantile

import (
	"math"
	"sort"
)

// GK is the Greenwald-Khanna deterministic quantile summary [GK01]. It
// maintains a sorted list of tuples (v, g, delta) where g is the gap in
// minimum rank to the previous tuple and delta the uncertainty, with the
// invariant g + delta <= floor(2*eps*n). Being deterministic, it is
// adversarially robust "for free" — the contrast the paper draws in Section
// 1.1 — at the cost of a more intricate algorithm and, for small |U|,
// comparable or larger space than the robust sample.
type GK struct {
	// Eps is the rank-error guarantee: every rank answer is within
	// eps*n of the truth.
	Eps float64

	tuples []gkTuple
	n      int
}

type gkTuple struct {
	v     int64
	g     int
	delta int
}

// NewGK returns an empty GK summary with guarantee eps. It panics unless
// 0 < eps < 1.
func NewGK(eps float64) *GK {
	if eps <= 0 || eps >= 1 {
		panic("quantile: GK needs 0 < eps < 1")
	}
	return &GK{Eps: eps}
}

// Name implements Sketch.
func (g *GK) Name() string { return "gk" }

// Insert implements Sketch.
func (g *GK) Insert(x int64) {
	g.n++
	pos := sort.Search(len(g.tuples), func(i int) bool { return g.tuples[i].v >= x })
	var delta int
	if pos == 0 || pos == len(g.tuples) {
		// New minimum or maximum: exact rank, delta = 0.
		delta = 0
	} else {
		delta = g.capacity() - 1
		if delta < 0 {
			delta = 0
		}
	}
	t := gkTuple{v: x, g: 1, delta: delta}
	g.tuples = append(g.tuples, gkTuple{})
	copy(g.tuples[pos+1:], g.tuples[pos:])
	g.tuples[pos] = t

	// Compress periodically; every 1/(2 eps) insertions keeps the
	// amortized cost low while preserving the invariant.
	if g.n%int(math.Max(1, 1/(2*g.Eps))) == 0 {
		g.compress()
	}
}

// capacity returns floor(2*eps*n), the band capacity for merges.
func (g *GK) capacity() int {
	return int(2 * g.Eps * float64(g.n))
}

// compress merges adjacent tuples whose combined uncertainty fits within
// the capacity, scanning right to left as in the original algorithm.
func (g *GK) compress() {
	if len(g.tuples) < 3 {
		return
	}
	cap := g.capacity()
	out := g.tuples
	// Never merge into the last tuple's successor (none) and keep the
	// first tuple (minimum) intact.
	for i := len(out) - 2; i >= 1; i-- {
		cur := out[i]
		next := out[i+1]
		if cur.g+next.g+next.delta <= cap {
			// Merge cur into next.
			next.g += cur.g
			out[i+1] = next
			copy(out[i:], out[i+1:])
			out = out[:len(out)-1]
		}
	}
	g.tuples = out
}

// Rank implements Sketch. The true rank of x lies between the min-rank of
// the last tuple with value <= x and the max-rank of its successor minus
// one; returning the midpoint halves the worst case to eps*n.
func (g *GK) Rank(x int64) float64 {
	if len(g.tuples) == 0 {
		return 0
	}
	rMin := 0
	idx := -1
	for i, t := range g.tuples {
		if t.v > x {
			break
		}
		rMin += t.g
		idx = i
	}
	if idx == len(g.tuples)-1 {
		// x is at or above the maximum: rank is exactly n.
		return float64(rMin)
	}
	next := g.tuples[idx+1]
	rMaxBelow := rMin + next.g + next.delta - 1
	return (float64(rMin) + float64(rMaxBelow)) / 2
}

// Quantile implements Sketch via the standard GK query: return the value
// whose max-rank stays within the target + capacity window.
func (g *GK) Quantile(q float64) int64 {
	if len(g.tuples) == 0 {
		panic("quantile: empty sketch")
	}
	target := q * float64(g.n)
	bound := float64(g.capacity()) / 2
	rMin := 0
	for i, t := range g.tuples {
		rMin += t.g
		rMax := rMin + t.delta
		if float64(rMax) >= target-bound || i == len(g.tuples)-1 {
			return t.v
		}
	}
	return g.tuples[len(g.tuples)-1].v
}

// Count implements Sketch.
func (g *GK) Count() int { return g.n }

// Size implements Sketch.
func (g *GK) Size() int { return len(g.tuples) }

// InvariantHolds verifies g + delta <= floor(2 eps n) + 1 for every tuple
// and that values are sorted; tests call it after adversarial insertion
// orders. The +1 slack accommodates the boundary tuples inserted when n was
// smaller.
func (g *GK) InvariantHolds() bool {
	cap := g.capacity() + 1
	for i, t := range g.tuples {
		if t.g+t.delta > cap && i != 0 && i != len(g.tuples)-1 {
			return false
		}
		if i > 0 && g.tuples[i-1].v > t.v {
			return false
		}
	}
	return true
}
