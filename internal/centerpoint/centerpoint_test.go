package centerpoint

import (
	"math"
	"testing"

	"robustsample/internal/rng"
)

func TestDepth1DBasics(t *testing.T) {
	pts := []float64{1, 2, 3, 4, 5}
	if d := Depth1D(3, pts); d != 0.6 {
		t.Fatalf("depth of median = %v, want 0.6", d)
	}
	if d := Depth1D(1, pts); d != 0.2 {
		t.Fatalf("depth of min = %v, want 0.2", d)
	}
	if d := Depth1D(0, pts); d != 0 {
		t.Fatalf("depth outside hull = %v, want 0", d)
	}
	if Depth1D(1, nil) != 0 {
		t.Fatal("empty depth should be 0")
	}
}

func TestCenter1DIsDeepest(t *testing.T) {
	r := rng.New(1)
	pts := make([]float64, 101)
	for i := range pts {
		pts[i] = r.Float64() * 100
	}
	c := Center1D(pts)
	dc := Depth1D(c, pts)
	// The median's depth must be >= 1/2 (within rounding).
	if dc < 0.5-1e-9 {
		t.Fatalf("median depth %v < 1/2", dc)
	}
	for _, p := range pts {
		if Depth1D(p, pts) > dc+1e-9 {
			t.Fatalf("point %v deeper than reported center", p)
		}
	}
}

func TestCenter1DPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Center1D(nil)
}

func TestDepth2DSquare(t *testing.T) {
	// Four corners of a square: the center has depth 1/2, a corner 1/4.
	pts := []Point2{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	if d := Depth2D(Point2{0.5, 0.5}, pts); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("center depth %v, want 0.5", d)
	}
	if d := Depth2D(Point2{0, 0}, pts); math.Abs(d-0.25) > 1e-9 {
		t.Fatalf("corner depth %v, want 0.25", d)
	}
	if d := Depth2D(Point2{5, 5}, pts); d != 0 {
		t.Fatalf("outside depth %v, want 0", d)
	}
}

func TestDepth2DCoincident(t *testing.T) {
	pts := []Point2{{1, 1}, {1, 1}, {2, 2}}
	d := Depth2D(Point2{1, 1}, pts)
	// The two coincident points are in every halfplane through c; the
	// worst halfplane excludes (2,2): depth = 2/3.
	if math.Abs(d-2.0/3) > 1e-9 {
		t.Fatalf("coincident depth %v, want 2/3", d)
	}
	if Depth2D(Point2{3, 4}, nil) != 0 {
		t.Fatal("empty set depth should be 0")
	}
	if Depth2D(Point2{1, 1}, []Point2{{1, 1}}) != 1 {
		t.Fatal("all-coincident depth should be 1")
	}
}

func TestDepth2DMatchesBruteForce(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(15)
		pts := make([]Point2, n)
		for i := range pts {
			pts[i] = Point2{r.Float64(), r.Float64()}
		}
		c := pts[r.Intn(n)]
		got := Depth2D(c, pts)
		want := bruteDepth2D(c, pts)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("depth %v, brute force %v (c=%v pts=%v)", got, want, c, pts)
		}
	}
}

// bruteDepth2D checks all halfplanes whose boundary passes through c and a
// data point: the candidate inward normals are perpendicular to the
// direction from c to each point, perturbed slightly to both sides.
func bruteDepth2D(c Point2, pts []Point2) float64 {
	n := len(pts)
	min := n
	for _, q := range pts {
		dx, dy := q.X-c.X, q.Y-c.Y
		if dx == 0 && dy == 0 {
			continue
		}
		base := math.Atan2(dy, dx)
		for _, off := range []float64{math.Pi / 2, -math.Pi / 2} {
			for _, delta := range []float64{0, 1e-7, -1e-7} {
				theta := base + off + delta
				ux, uy := math.Cos(theta), math.Sin(theta)
				count := 0
				for _, p := range pts {
					// Closed halfplane with inward normal (ux, uy).
					if (p.X-c.X)*ux+(p.Y-c.Y)*uy >= -1e-12 {
						count++
					}
				}
				if count < min {
					min = count
				}
			}
		}
	}
	if min == n && n > 0 {
		// No distinct directions: all points coincide with c.
		return 1
	}
	return float64(min) / float64(n)
}

func TestCenter2DDepthAtLeastThird(t *testing.T) {
	// Centerpoint theorem: some point of depth >= 1/3 exists; our
	// discrete search over data points + median should find depth close
	// to 1/3 on generic data.
	r := rng.New(3)
	pts := make([]Point2, 200)
	for i := range pts {
		pts[i] = Point2{r.NormFloat64(), r.NormFloat64()}
	}
	_, depth := Center2D(pts)
	if depth < 0.3 {
		t.Fatalf("center depth %v < 0.3", depth)
	}
}

func TestCenter2DPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Center2D(nil)
}

func TestDeepestOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DeepestOf(nil, []Point2{{1, 1}})
}

func TestHalfspaceDiscrepancy1D(t *testing.T) {
	stream := []float64{1, 2, 3, 4}
	if d := HalfspaceDiscrepancy1D(stream, stream); d != 0 {
		t.Fatalf("identical discrepancy %v", d)
	}
	if d := HalfspaceDiscrepancy1D(stream, nil); d != 1 {
		t.Fatalf("empty sample discrepancy %v", d)
	}
	if d := HalfspaceDiscrepancy1D(nil, stream); d != 0 {
		t.Fatalf("empty stream discrepancy %v", d)
	}
	// Sample {1,2}: ray {x <= 2} has density 0.5 vs 1.
	if d := HalfspaceDiscrepancy1D(stream, []float64{1, 2}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("discrepancy %v, want 0.5", d)
	}
}

func TestHalfspaceDepthTransfer1D(t *testing.T) {
	// The [CEM+96]-style transfer: if S is an eps-approximation w.r.t.
	// halfspaces, the depth of any c differs between S and X by <= eps.
	r := rng.New(4)
	stream := make([]float64, 5000)
	for i := range stream {
		stream[i] = r.NormFloat64()
	}
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = stream[r.Intn(len(stream))]
	}
	eps := HalfspaceDiscrepancy1D(stream, sample)
	c := Center1D(sample)
	depthS := Depth1D(c, sample)
	depthX := Depth1D(c, stream)
	if depthX < depthS-eps-1e-9 {
		t.Fatalf("depth transfer violated: sample %v, stream %v, eps %v", depthS, depthX, eps)
	}
}

func TestHalfspaceDiscrepancy2DSampledVsExact(t *testing.T) {
	r := rng.New(5)
	stream := make([]Point2, 40)
	for i := range stream {
		stream[i] = Point2{r.Float64(), r.Float64()}
	}
	sample := stream[:8]
	exact := ExactHalfspaceDiscrepancy2D(stream, sample)
	approx := HalfspaceDiscrepancy2D(stream, sample, 256, nil)
	if approx > exact+1e-9 {
		t.Fatalf("sampled discrepancy %v exceeds exact %v", approx, exact)
	}
	if approx < exact-0.15 {
		t.Fatalf("sampled discrepancy %v far below exact %v", approx, exact)
	}
}

func TestHalfspaceDiscrepancy2DEdges(t *testing.T) {
	if HalfspaceDiscrepancy2D(nil, nil, 4, nil) != 0 {
		t.Fatal("empty stream should give 0")
	}
	if HalfspaceDiscrepancy2D([]Point2{{1, 1}}, nil, 4, nil) != 1 {
		t.Fatal("empty sample should give 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for directions=0")
		}
	}()
	HalfspaceDiscrepancy2D([]Point2{{1, 1}}, []Point2{{1, 1}}, 0, nil)
}

func TestExactHalfspaceDiscrepancyEdges(t *testing.T) {
	if ExactHalfspaceDiscrepancy2D(nil, nil) != 0 {
		t.Fatal("empty stream")
	}
	if ExactHalfspaceDiscrepancy2D([]Point2{{0, 0}}, nil) != 1 {
		t.Fatal("empty sample")
	}
	if d := ExactHalfspaceDiscrepancy2D([]Point2{{0, 0}, {1, 1}}, []Point2{{0, 0}, {1, 1}}); d > 1e-9 {
		t.Fatalf("identical sets discrepancy %v", d)
	}
}

func TestDepthTransfer2D(t *testing.T) {
	// End-to-end beta-center pipeline: center of a sample is nearly as
	// deep in the stream, up to the halfspace discrepancy.
	r := rng.New(6)
	stream := make([]Point2, 1500)
	for i := range stream {
		stream[i] = Point2{r.NormFloat64(), r.NormFloat64()}
	}
	sample := make([]Point2, 150)
	for i := range sample {
		sample[i] = stream[r.Intn(len(stream))]
	}
	c, depthS := Center2D(sample)
	depthX := Depth2D(c, stream)
	eps := HalfspaceDiscrepancy2D(stream, sample, 64, r)
	if depthX < depthS-eps-0.05 {
		t.Fatalf("2D depth transfer violated: sample %v, stream %v, eps %v", depthS, depthX, eps)
	}
}

func BenchmarkDepth2D(b *testing.B) {
	r := rng.New(1)
	pts := make([]Point2, 1000)
	for i := range pts {
		pts[i] = Point2{r.Float64(), r.Float64()}
	}
	c := Point2{0.5, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Depth2D(c, pts)
	}
}

func BenchmarkHalfspaceDiscrepancy2D(b *testing.B) {
	r := rng.New(1)
	stream := make([]Point2, 2000)
	for i := range stream {
		stream[i] = Point2{r.Float64(), r.Float64()}
	}
	sample := stream[:200]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HalfspaceDiscrepancy2D(stream, sample, 32, nil)
	}
}
