// Package centerpoint implements the beta-center-point application of
// Section 1.2: a point c is a beta-center of a point set X if every closed
// halfspace containing c contains at least beta*|X| points of X. The paper
// (via [CEM+96, Lemma 6.1]) observes that an eps-approximation S of X with
// respect to halfspaces lets one compute center points of the stream from
// the sample: with eps = beta/5, a (6beta/5)-center of S is a beta-center
// of X. More simply, any point of halfspace depth q in S has depth at least
// q - eps in X, which is the form the experiments verify.
//
// The package provides exact halfspace (Tukey) depth in 1-D and 2-D, center
// search, and the halfspace discrepancy between a stream and a sample —
// exact in 1-D; in 2-D either direction-sampled or exact over all
// combinatorially distinct directions for small inputs.
package centerpoint

import (
	"math"
	"sort"

	"robustsample/internal/rng"
)

// Point2 is a point in the plane.
type Point2 struct {
	X, Y float64
}

// Depth1D returns the halfspace depth of c in pts: the minimum, over the
// two closed rays through c, of the fraction of points they contain.
func Depth1D(c float64, pts []float64) float64 {
	if len(pts) == 0 {
		return 0
	}
	le, ge := 0, 0
	for _, p := range pts {
		if p <= c {
			le++
		}
		if p >= c {
			ge++
		}
	}
	n := float64(len(pts))
	return math.Min(float64(le), float64(ge)) / n
}

// Center1D returns a point of maximal halfspace depth in pts (the median).
// It panics on empty input.
func Center1D(pts []float64) float64 {
	if len(pts) == 0 {
		panic("centerpoint: empty point set")
	}
	cp := append([]float64(nil), pts...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

// Depth2D returns the exact Tukey depth of c in pts: the minimum over all
// closed halfplanes containing c of the fraction of points they contain.
// Computed by the standard angular sweep in O(n log n).
func Depth2D(c Point2, pts []Point2) float64 {
	n := len(pts)
	if n == 0 {
		return 0
	}
	// Points coincident with c belong to every closed halfplane through c.
	var angles []float64
	coincident := 0
	for _, p := range pts {
		dx, dy := p.X-c.X, p.Y-c.Y
		if dx == 0 && dy == 0 {
			coincident++
			continue
		}
		a := math.Atan2(dy, dx)
		if a < 0 {
			a += 2 * math.Pi
		}
		angles = append(angles, a)
	}
	if len(angles) == 0 {
		return 1
	}
	sort.Float64s(angles)
	m := len(angles)

	// A closed halfplane through c corresponds to a closed angular arc of
	// length pi; depth is the minimal number of angles such an arc must
	// contain. The count, as the arc rotates, only decreases immediately
	// after the arc's left boundary passes a point (or, symmetrically,
	// just before its right boundary reaches one), so it suffices to
	// evaluate arcs starting just after each angle and arcs ending just
	// before each angle. Counting uses binary search over the doubled
	// sorted angle array.
	doubled := make([]float64, 2*m)
	copy(doubled, angles)
	for i, a := range angles {
		doubled[m+i] = a + 2*math.Pi
	}
	countClosed := func(lo float64) int {
		for lo < 0 {
			lo += 2 * math.Pi
		}
		for lo >= 2*math.Pi {
			lo -= 2 * math.Pi
		}
		hi := lo + math.Pi
		i := sort.SearchFloat64s(doubled, lo)
		j := sort.Search(len(doubled), func(k int) bool { return doubled[k] > hi })
		return j - i
	}
	const nudge = 1e-9
	min := m
	for _, a := range angles {
		for _, lo := range []float64{a + nudge, a - math.Pi - nudge} {
			if cnt := countClosed(lo); cnt < min {
				min = cnt
			}
		}
	}
	return (float64(min) + float64(coincident)) / float64(n)
}

// DeepestOf returns the candidate with maximal Tukey depth in pts, and that
// depth. It panics on an empty candidate set.
func DeepestOf(candidates, pts []Point2) (Point2, float64) {
	if len(candidates) == 0 {
		panic("centerpoint: empty candidate set")
	}
	best := candidates[0]
	bestDepth := -1.0
	for _, c := range candidates {
		if d := Depth2D(c, pts); d > bestDepth {
			best, bestDepth = c, d
		}
	}
	return best, bestDepth
}

// Center2D returns an approximate center point of pts: the deepest point
// among pts themselves plus the coordinate-wise median. By the centerpoint
// theorem, a point of depth >= 1/3 exists; the discrete search finds a
// point whose depth is close to the best among the candidates.
func Center2D(pts []Point2) (Point2, float64) {
	if len(pts) == 0 {
		panic("centerpoint: empty point set")
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	med := Point2{X: xs[len(xs)/2], Y: ys[len(ys)/2]}
	candidates := append(append([]Point2(nil), pts...), med)
	return DeepestOf(candidates, pts)
}

// HalfspaceDiscrepancy1D returns the exact maximal density deviation
// between stream and sample over all closed rays {x <= t} and {x >= t}.
func HalfspaceDiscrepancy1D(stream, sample []float64) float64 {
	if len(stream) == 0 {
		return 0
	}
	if len(sample) == 0 {
		return 1
	}
	xs := append([]float64(nil), stream...)
	ss := append([]float64(nil), sample...)
	sort.Float64s(xs)
	sort.Float64s(ss)
	// Rays {x <= t}: KS distance over the merged breakpoints; rays
	// {x >= t} give the same supremum by complementation.
	var i, j int
	nx, ns := float64(len(xs)), float64(len(ss))
	worst := 0.0
	for i < len(xs) || j < len(ss) {
		var t float64
		switch {
		case i >= len(xs):
			t = ss[j]
		case j >= len(ss):
			t = xs[i]
		case xs[i] <= ss[j]:
			t = xs[i]
		default:
			t = ss[j]
		}
		for i < len(xs) && xs[i] <= t {
			i++
		}
		for j < len(ss) && ss[j] <= t {
			j++
		}
		if d := math.Abs(float64(i)/nx - float64(j)/ns); d > worst {
			worst = d
		}
	}
	return worst
}

// HalfspaceDiscrepancy2D estimates the maximal density deviation between
// stream and sample over all halfplanes by projecting both sets onto
// `directions` sampled directions and taking the worst 1-D ray discrepancy.
// It is a lower bound on the true halfplane discrepancy converging as
// directions grows; tests compare it against the exact small-input version.
func HalfspaceDiscrepancy2D(stream, sample []Point2, directions int, r *rng.RNG) float64 {
	if len(stream) == 0 {
		return 0
	}
	if len(sample) == 0 {
		return 1
	}
	if directions < 1 {
		panic("centerpoint: need at least one direction")
	}
	worst := 0.0
	ps := make([]float64, len(stream))
	qs := make([]float64, len(sample))
	for d := 0; d < directions; d++ {
		theta := math.Pi * float64(d) / float64(directions)
		if r != nil {
			theta += r.Float64() * math.Pi / float64(directions)
		}
		ux, uy := math.Cos(theta), math.Sin(theta)
		for i, p := range stream {
			ps[i] = p.X*ux + p.Y*uy
		}
		for i, p := range sample {
			qs[i] = p.X*ux + p.Y*uy
		}
		if e := HalfspaceDiscrepancy1D(ps, qs); e > worst {
			worst = e
		}
	}
	return worst
}

// ExactHalfspaceDiscrepancy2D computes the exact halfplane discrepancy by
// enumerating all combinatorially distinct directions (normals of lines
// through pairs of points of stream ∪ sample, perturbed to both sides).
// O(n^2) directions x O(n log n) each — use only for small inputs.
func ExactHalfspaceDiscrepancy2D(stream, sample []Point2) float64 {
	if len(stream) == 0 {
		return 0
	}
	if len(sample) == 0 {
		return 1
	}
	all := append(append([]Point2(nil), stream...), sample...)
	var dirs []float64
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			dx := all[j].X - all[i].X
			dy := all[j].Y - all[i].Y
			if dx == 0 && dy == 0 {
				continue
			}
			base := math.Atan2(dy, dx) + math.Pi/2
			// Perturb to both sides to capture open/closed breakpoints.
			dirs = append(dirs, base-1e-7, base+1e-7)
		}
	}
	dirs = append(dirs, 0, math.Pi/2) // axis-aligned fallbacks
	worst := 0.0
	ps := make([]float64, len(stream))
	qs := make([]float64, len(sample))
	for _, theta := range dirs {
		ux, uy := math.Cos(theta), math.Sin(theta)
		for i, p := range stream {
			ps[i] = p.X*ux + p.Y*uy
		}
		for i, p := range sample {
			qs[i] = p.X*ux + p.Y*uy
		}
		if e := HalfspaceDiscrepancy1D(ps, qs); e > worst {
			worst = e
		}
	}
	return worst
}
