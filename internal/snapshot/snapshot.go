// Package snapshot provides the deterministic binary primitives shared by
// every Snapshot/Restore codec in the repository (samplers, discrepancy
// accumulators, the sharded engine, and the public sketch surface built on
// them).
//
// The encoding is deliberately boring: fixed-width little-endian words, no
// compression, no reflection. Determinism is a contract, not an accident —
// the same logical state always serializes to the same bytes, so
// Snapshot -> Restore -> Snapshot round-trips bit-identically, checkpoint
// files diff cleanly, and a coordinator can content-address shard states.
// Framing (magic, version, kind) is owned by the outermost codec; the
// helpers here encode raw fields only.
package snapshot

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrCorrupt is returned when a snapshot is truncated or structurally
// invalid. Codecs wrap it with context; errors.Is(err, ErrCorrupt) holds for
// every decode failure.
var ErrCorrupt = errors.New("snapshot: corrupt or truncated data")

// AppendUint64 appends v little-endian.
func AppendUint64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// AppendInt64 appends v little-endian (two's complement).
func AppendInt64(buf []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(v))
}

// AppendFloat64 appends the IEEE-754 bits of v. Bit patterns (including the
// sign of zero and NaN payloads) round-trip exactly.
func AppendFloat64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendInt64Slice appends len(xs) followed by each element.
func AppendInt64Slice(buf []byte, xs []int64) []byte {
	buf = AppendUint64(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = AppendInt64(buf, x)
	}
	return buf
}

// AppendFloat64Slice appends len(xs) followed by each element's bits.
func AppendFloat64Slice(buf []byte, xs []float64) []byte {
	buf = AppendUint64(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = AppendFloat64(buf, x)
	}
	return buf
}

// AppendBytes appends len(b) followed by the raw bytes, so variable-length
// blobs (nested snapshot frames, most notably) self-delimit inside an outer
// frame.
func AppendBytes(buf []byte, b []byte) []byte {
	buf = AppendUint64(buf, uint64(len(b)))
	return append(buf, b...)
}

// Reader consumes a snapshot byte stream. The zero value over a data slice
// is ready to use; the first decode error sticks and every subsequent read
// returns zero values, so codecs can decode a whole frame and check Err
// once.
type Reader struct {
	data []byte
	err  error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the sticky decode error, nil if all reads so far succeeded.
func (r *Reader) Err() error { return r.err }

// Rest returns the unconsumed bytes.
func (r *Reader) Rest() []byte { return r.data }

// Len returns the number of unconsumed bytes.
func (r *Reader) Len() int { return len(r.data) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data) < n {
		r.err = ErrCorrupt
		return nil
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

// Uint64 reads one little-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads one little-endian int64.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Float64 reads one IEEE-754 value.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte, failing on anything but 0 or 1.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.err = ErrCorrupt
		return false
	}
}

// sliceLen validates a decoded element count against the remaining bytes
// (elemSize bytes per element), preventing huge bogus allocations from
// corrupt input.
func (r *Reader) sliceLen(elemSize int) int {
	n := r.Uint64()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.data)/elemSize) {
		r.err = ErrCorrupt
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte string written by AppendBytes; a zero
// length yields nil. The returned slice is a copy, safe to retain.
func (r *Reader) Bytes() []byte {
	n := r.Uint64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)) {
		r.err = ErrCorrupt
		return nil
	}
	if n == 0 {
		return nil
	}
	b := r.take(int(n))
	return append([]byte(nil), b...)
}

// Int64Slice reads a length-prefixed []int64; a zero length yields nil.
func (r *Reader) Int64Slice() []int64 {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int64()
	}
	return out
}

// Float64Slice reads a length-prefixed []float64; a zero length yields nil.
func (r *Reader) Float64Slice() []float64 {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}
