// Package stats provides the statistical machinery shared by the experiment
// harness and the tests: summary statistics over repeated trials, empirical
// CDFs and Kolmogorov-Smirnov distances, Wilson score confidence intervals
// for failure probabilities, and calculators for the concentration bounds the
// paper uses (Chernoff, Theorem 3.1; Freedman/McDiarmid martingale bound,
// Lemma 3.3). Keeping the theoretical bounds in code lets every experiment
// table print a "theory" column next to the measured one.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics and moments for a batch of observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary over xs. It returns a zero Summary when xs is
// empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		Min:    sorted[0],
		P25:    Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		P75:    Quantile(sorted, 0.75),
		P90:    Quantile(sorted, 0.90),
		P99:    Quantile(sorted, 0.99),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary compactly for table cells.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Median, s.Max)
}

// Quantile returns the q-quantile of sorted (ascending) data using linear
// interpolation between closest ranks. q is clamped to [0, 1]. It panics on
// empty input.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxFloat returns the maximum of xs. It panics on empty input.
func MaxFloat(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: MaxFloat of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// FailureRate returns the fraction of trials for which failed is true.
type FailureRate struct {
	Failures int
	Trials   int
}

// Rate is the point estimate Failures/Trials (0 when Trials == 0).
func (f FailureRate) Rate() float64 {
	if f.Trials == 0 {
		return 0
	}
	return float64(f.Failures) / float64(f.Trials)
}

// Wilson returns the Wilson score interval for the failure probability at
// the given z value (z = 1.96 for ~95%, z = 2.576 for ~99%).
func (f FailureRate) Wilson(z float64) (lo, hi float64) {
	return WilsonInterval(f.Failures, f.Trials, z)
}

func (f FailureRate) String() string {
	lo, hi := f.Wilson(1.96)
	return fmt.Sprintf("%d/%d=%.3f [%.3f,%.3f]", f.Failures, f.Trials, f.Rate(), lo, hi)
}

// WilsonInterval returns the Wilson score interval for k successes in n
// trials at normal quantile z. For n == 0 it returns the vacuous [0, 1].
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// ECDF is an empirical cumulative distribution function over float64 values.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of observations <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Len returns the number of observations.
func (e *ECDF) Len() int { return len(e.sorted) }

// KSDistance returns the Kolmogorov-Smirnov distance between the empirical
// distributions of a and b: sup_x |F_a(x) - F_b(x)|. This equals the maximal
// density discrepancy over the prefix set system {(-inf, x]} and is the
// headline "representativeness" metric in the distributed-database
// experiment. Either input may be empty, in which case the distance is 1
// against a non-empty input and 0 when both are empty.
func KSDistance(a, b []float64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var i, j int
	var d float64
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		var x float64
		if as[i] <= bs[j] {
			x = as[i]
		} else {
			x = bs[j]
		}
		for i < len(as) && as[i] <= x {
			i++
		}
		for j < len(bs) && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSDistanceInt64 is KSDistance specialized to int64 samples.
func KSDistanceInt64(a, b []int64) float64 {
	fa := make([]float64, len(a))
	for i, v := range a {
		fa[i] = float64(v)
	}
	fb := make([]float64, len(b))
	for i, v := range b {
		fb[i] = float64(v)
	}
	return KSDistance(fa, fb)
}

// ChernoffUpper bounds Pr[X >= (1+d)mu] for a sum of independent 0/1
// variables with mean mu, per Theorem 3.1 of the paper.
func ChernoffUpper(mu, d float64) float64 {
	if d < 0 {
		return 1
	}
	return math.Exp(-d * d * mu / (2 + 2*d/3))
}

// ChernoffLower bounds Pr[X <= (1-d)mu] per Theorem 3.1 of the paper.
func ChernoffLower(mu, d float64) float64 {
	if d < 0 || d > 1 {
		return 1
	}
	return math.Exp(-d * d * mu / 2)
}

// FreedmanBound bounds Pr[|X_n - X_0| >= lambda] for a martingale with
// per-step conditional variance bounds sigma2 (summed into sumVar) and
// maximum step M, per Lemma 3.3 (Chung-Lu Theorem 6.1):
//
//	2 * exp( -lambda^2 / (2*sumVar + M*lambda/3) ).
func FreedmanBound(lambda, sumVar, m float64) float64 {
	if lambda <= 0 {
		return 1
	}
	b := 2 * math.Exp(-lambda*lambda/(2*sumVar+m*lambda/3))
	if b > 1 {
		return 1
	}
	return b
}

// BernoulliDeviationBound is the paper's Lemma 4.1(1) tail computation: for
// Bernoulli sampling with rate p over an adaptive stream of length n, the
// probability that |d_R(X) - d_R(S)| >= eps for one fixed R is at most
//
//	2 exp(-eps^2 n p / 9) + 2 exp(-eps^2 n p / 10),
//
// combining the martingale half (A_n vs B_n) and the Chernoff half
// (|S| concentration). This is the per-range theory value the experiment
// tables print.
func BernoulliDeviationBound(eps float64, n int, p float64) float64 {
	np := float64(n) * p
	b := 2*math.Exp(-eps*eps*np/9) + 2*math.Exp(-eps*eps*np/10)
	if b > 1 {
		return 1
	}
	return b
}

// ReservoirDeviationBound is Lemma 4.1(2): for reservoir sampling with
// memory k, Pr[|d_R(X) - d_R(S)| >= eps] <= 2 exp(-eps^2 k / 2) for one
// fixed R.
func ReservoirDeviationBound(eps float64, k int) float64 {
	b := 2 * math.Exp(-eps*eps*float64(k)/2)
	if b > 1 {
		return 1
	}
	return b
}

// UnionBound multiplies a per-range failure bound by the number of ranges
// and clamps to 1, mirroring the Theorem 1.2 union-bound step.
func UnionBound(perRange float64, numRanges float64) float64 {
	b := perRange * numRanges
	if b > 1 {
		return 1
	}
	return b
}

// Histogram builds a fixed-width histogram over [lo, hi) with the given
// number of bins; values outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	if bins <= 0 {
		panic("stats: Histogram needs bins > 0")
	}
	if hi <= lo {
		panic("stats: Histogram needs hi > lo")
	}
	counts := make([]int, bins)
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		idx := int((x - lo) / w)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	return counts
}
