package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"robustsample/internal/rng"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 3 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 3 {
		t.Fatalf("Median = %v", s.Median)
	}
	wantSD := math.Sqrt(2)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev, wantSD)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Fatalf("Quantile(0.5) = %v, want 5", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	if q := Quantile(sorted, -1); q != 0 {
		t.Fatalf("Quantile(-1) = %v", q)
	}
	if q := Quantile(sorted, 2); q != 10 {
		t.Fatalf("Quantile(2) = %v", q)
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := rng.New(5)
	f := func(seed uint32) bool {
		n := int(seed%100) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWilsonContainsPointEstimate(t *testing.T) {
	lo, hi := WilsonInterval(10, 100, 1.96)
	if lo > 0.1 || hi < 0.1 {
		t.Fatalf("interval [%v,%v] excludes 0.1", lo, hi)
	}
	if lo < 0 || hi > 1 {
		t.Fatalf("interval [%v,%v] out of [0,1]", lo, hi)
	}
}

func TestWilsonEdge(t *testing.T) {
	lo, hi := WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("n=0 interval should be [0,1], got [%v,%v]", lo, hi)
	}
	lo, _ = WilsonInterval(0, 50, 1.96)
	if lo != 0 {
		t.Fatalf("k=0 lower bound %v, want 0", lo)
	}
	_, hi = WilsonInterval(50, 50, 1.96)
	if hi != 1 {
		t.Fatalf("k=n upper bound %v, want 1", hi)
	}
}

func TestWilsonProperty(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		k := int(kRaw) % (n + 1)
		lo, hi := WilsonInterval(k, n, 1.96)
		p := float64(k) / float64(n)
		return lo >= 0 && hi <= 1 && lo <= p+1e-12 && hi >= p-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFailureRate(t *testing.T) {
	f := FailureRate{Failures: 3, Trials: 30}
	if f.Rate() != 0.1 {
		t.Fatalf("Rate = %v", f.Rate())
	}
	if (FailureRate{}).Rate() != 0 {
		t.Fatal("empty rate should be 0")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 {
		t.Fatal("empty ECDF should be 0 everywhere")
	}
}

func TestKSIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := KSDistance(a, a); d != 0 {
		t.Fatalf("KS(a,a) = %v", d)
	}
}

func TestKSDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("KS of disjoint supports = %v, want 1", d)
	}
}

func TestKSKnownValue(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2} // F_b jumps to 1 at 2; F_a(2) = 0.5
	if d := KSDistance(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestKSSymmetricAndBounded(t *testing.T) {
	r := rng.New(77)
	f := func(na, nb uint8) bool {
		a := make([]float64, int(na%40)+1)
		b := make([]float64, int(nb%40)+1)
		for i := range a {
			a[i] = r.Float64()
		}
		for i := range b {
			b[i] = r.Float64()
		}
		d1 := KSDistance(a, b)
		d2 := KSDistance(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKSEmpty(t *testing.T) {
	if d := KSDistance(nil, nil); d != 0 {
		t.Fatalf("KS(empty,empty) = %v", d)
	}
	if d := KSDistance(nil, []float64{1}); d != 1 {
		t.Fatalf("KS(empty,x) = %v", d)
	}
}

func TestKSInt64MatchesFloat(t *testing.T) {
	a := []int64{1, 5, 9}
	b := []int64{1, 5, 5}
	af := []float64{1, 5, 9}
	bf := []float64{1, 5, 5}
	if KSDistanceInt64(a, b) != KSDistance(af, bf) {
		t.Fatal("int64 KS differs from float KS")
	}
}

func TestChernoffMonotone(t *testing.T) {
	if ChernoffUpper(100, 0.1) <= ChernoffUpper(100, 0.5) {
		t.Fatal("Chernoff upper not decreasing in deviation")
	}
	if ChernoffLower(100, 0.1) <= ChernoffLower(100, 0.5) {
		t.Fatal("Chernoff lower not decreasing in deviation")
	}
	if ChernoffUpper(100, -1) != 1 {
		t.Fatal("negative deviation should give trivial bound")
	}
}

func TestFreedmanBound(t *testing.T) {
	// More variance => weaker (larger) bound.
	if FreedmanBound(5, 1, 0.1) >= FreedmanBound(5, 10, 0.1) {
		t.Fatal("Freedman not monotone in variance")
	}
	if FreedmanBound(0, 1, 1) != 1 {
		t.Fatal("lambda=0 should give trivial bound")
	}
	if b := FreedmanBound(1e9, 1, 0.000001); b > 1e-10 {
		t.Fatalf("huge deviation should be tiny, got %v", b)
	}
}

func TestDeviationBoundsClamp(t *testing.T) {
	if b := BernoulliDeviationBound(0.001, 10, 0.001); b != 1 {
		t.Fatalf("tiny sample should clamp to 1, got %v", b)
	}
	if b := ReservoirDeviationBound(0.001, 1); b != 1 {
		t.Fatalf("tiny k should clamp to 1, got %v", b)
	}
	if b := ReservoirDeviationBound(0.5, 1000); b >= 1 {
		t.Fatalf("large k should give nontrivial bound, got %v", b)
	}
}

func TestReservoirBoundMatchesPaper(t *testing.T) {
	// k = 2 ln(2/delta) / eps^2 should give exactly delta.
	eps, delta := 0.1, 0.05
	k := 2 * math.Log(2/delta) / (eps * eps)
	got := ReservoirDeviationBound(eps, int(math.Ceil(k)))
	if got > delta*1.0001 {
		t.Fatalf("bound %v exceeds target delta %v", got, delta)
	}
}

func TestUnionBound(t *testing.T) {
	if UnionBound(0.001, 100) != 0.1 {
		t.Fatal("union bound arithmetic wrong")
	}
	if UnionBound(0.5, 100) != 1 {
		t.Fatal("union bound should clamp to 1")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.1, 0.5, 0.9, 1.5, -1}, 0, 1, 2)
	// -1 clamps to bin 0; 1.5 clamps to bin 1.
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bins=0")
		}
	}()
	Histogram(nil, 0, 1, 0)
}

func TestMeanMax(t *testing.T) {
	if Mean([]float64{1, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean of empty should be 0")
	}
	if MaxFloat([]float64{1, 9, 3}) != 9 {
		t.Fatal("MaxFloat wrong")
	}
}

func BenchmarkKSDistance(b *testing.B) {
	r := rng.New(1)
	a := make([]float64, 10000)
	c := make([]float64, 1000)
	for i := range a {
		a[i] = r.Float64()
	}
	for i := range c {
		c[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KSDistance(a, c)
	}
}

func BenchmarkSummarize(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}
