// Package adversary implements the adaptive strategies the paper analyzes
// and the static baselines the experiments compare against.
//
// The centerpiece is the Figure-3 bisection attack of Section 5: the
// adversary maintains a working range [a, b] inside the universe [1, N],
// submits x = floor(a + (1-p')(b-a)), and moves a up to x when x is sampled
// or b down to x when it is not. All previously sampled elements therefore
// stay below all non-sampled ones (Claim 5.2), making the sample maximally
// unrepresentative for the prefix set system.
//
// Static adversaries replay fixed workloads (uniform, sorted, Zipf,
// constant) and model the non-adaptive setting of the classical VC bound.
package adversary

import (
	"math"

	"robustsample/internal/game"
	"robustsample/internal/rng"
)

// Bisection is the Figure-3 attack. It is deterministic given the admission
// feedback: the only information it uses is whether the previous element was
// admitted, which the game exposes via Observation.LastAdmitted.
type Bisection struct {
	// Universe is N, the top of the ordered universe [1, N].
	Universe int64
	// PPrime is p' from Figure 3, the assumed admission rate; the split
	// point is a + (1-p')(b-a).
	PPrime float64

	a, b      int64
	exhausted bool
}

// NewBisectionBernoulli prepares the attack against BernoulliSample with
// rate p over a stream of length n, setting p' = max(p, ln n / n) exactly as
// Figure 3 does.
func NewBisectionBernoulli(universe int64, n int, p float64) *Bisection {
	pp := math.Max(p, math.Log(float64(n))/float64(n))
	return newBisection(universe, pp)
}

// NewBisectionReservoir prepares the attack against ReservoirSample with
// memory k over a stream of length n. The reservoir admits roughly
// A = 2k ln n elements in total (Section 5); each admission shrinks the
// working range by p' and each rejection by 1-p', so the precision cost is
// minimized at p' = A/(A+n). Note that for interesting (n, k) this still
// requires a universe far beyond int64 — use RunExactBisectionReservoir for
// those regimes; this constructor exists for small-scale demonstrations.
func NewBisectionReservoir(universe int64, n int, k int) *Bisection {
	admissions := 2 * float64(k) * math.Log(float64(n))
	pp := admissions / (admissions + float64(n))
	if pp > 0.5 {
		pp = 0.5
	}
	if floor := math.Log(float64(n)) / float64(n); pp < floor {
		pp = floor
	}
	return newBisection(universe, pp)
}

// NewBisection prepares the attack with an explicit p'. The intro's median
// attack is the special case p' = 1/2 (split at the midpoint).
func NewBisection(universe int64, pPrime float64) *Bisection {
	return newBisection(universe, pPrime)
}

func newBisection(universe int64, pPrime float64) *Bisection {
	if universe < 2 {
		panic("adversary: bisection needs universe size >= 2")
	}
	if pPrime <= 0 || pPrime >= 1 {
		panic("adversary: bisection needs 0 < p' < 1")
	}
	bi := &Bisection{Universe: universe, PPrime: pPrime}
	bi.Reset()
	return bi
}

// Name implements game.Adversary.
func (bi *Bisection) Name() string { return "bisection" }

// Reset restores the full working range [1, N].
func (bi *Bisection) Reset() {
	bi.a, bi.b = 1, bi.Universe
	bi.exhausted = false
}

// Exhausted reports whether the working range ran out of integer room at any
// point during the game. Claim 5.1 guarantees this does not happen as long
// as |S| < 2np' and N is large enough; the experiments record it to confirm.
func (bi *Bisection) Exhausted() bool { return bi.exhausted }

// Next implements game.Adversary, executing one step of Figure 3.
func (bi *Bisection) Next(obs game.Observation, _ *rng.RNG) int64 {
	if obs.Round > 1 {
		// Fold in the feedback for the previous submission.
		prev := obs.History[len(obs.History)-1]
		if obs.LastAdmitted {
			bi.a = prev
		} else {
			bi.b = prev
		}
	}
	if bi.b-bi.a < 2 {
		// No integer strictly between a and b remains; the attack has
		// run out of precision (this is exactly the regime Theorem 1.3
		// excludes by requiring N >= n^(6 ln n) scaled appropriately).
		bi.exhausted = true
		if bi.b > bi.a {
			return bi.b
		}
		return bi.a
	}
	x := bi.a + int64(float64(bi.b-bi.a)*(1-bi.PPrime))
	// Keep x strictly inside (a, b) so both feedback branches shrink the
	// range, as Figure 3 assumes.
	if x <= bi.a {
		x = bi.a + 1
	}
	if x >= bi.b {
		x = bi.b - 1
	}
	return x
}

// Static replays a fixed stream, modeling the classical non-adaptive
// adversary: the whole input is committed before the game starts.
type Static struct {
	// StreamName labels the workload in tables.
	StreamName string
	// Gen produces the fixed stream for a game of length n. It is called
	// once per game on Reset-then-first-Next.
	Gen func(n int, r *rng.RNG) []int64

	stream []int64
}

// Name implements game.Adversary.
func (s *Static) Name() string { return "static-" + s.StreamName }

// Reset discards the previously generated stream.
func (s *Static) Reset() { s.stream = nil }

// Next implements game.Adversary, generating the fixed stream lazily on the
// first round and replaying it afterwards.
func (s *Static) Next(obs game.Observation, r *rng.RNG) int64 {
	if s.stream == nil {
		s.stream = s.Gen(obs.N, r)
		if len(s.stream) < obs.N {
			panic("adversary: static generator produced short stream")
		}
	}
	return s.stream[obs.Round-1]
}

// GenerateStream implements game.StreamGenerator: the whole fixed stream is
// produced in one call — drawing from r exactly as the lazy first Next does
// — so games can batch-ingest it without per-round adversary calls.
func (s *Static) GenerateStream(n int, r *rng.RNG) []int64 {
	if s.stream == nil {
		s.stream = s.Gen(n, r)
	}
	if len(s.stream) < n {
		panic("adversary: static generator produced short stream")
	}
	return s.stream[:n]
}

// NewStaticUniform returns a static adversary whose stream is i.i.d. uniform
// over [1, universe].
func NewStaticUniform(universe int64) *Static {
	return &Static{
		StreamName: "uniform",
		Gen: func(n int, r *rng.RNG) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = 1 + r.Int63n(universe)
			}
			return out
		},
	}
}

// NewStaticSorted returns a static adversary whose stream is an increasing
// arithmetic sweep across [1, universe]; sorted inputs are the classical
// hard case for naive prefix-based sampling.
func NewStaticSorted(universe int64) *Static {
	return &Static{
		StreamName: "sorted",
		Gen: func(n int, _ *rng.RNG) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = 1 + int64(i)*(universe-1)/int64(max(n-1, 1))
			}
			return out
		},
	}
}

// NewStaticZipf returns a static adversary with Zipf(s)-distributed values
// over [1, support], the canonical skewed workload for the heavy-hitters
// experiments. support must be within the rng Zipf table limit.
func NewStaticZipf(support int64, s float64) *Static {
	return &Static{
		StreamName: "zipf",
		Gen: func(n int, r *rng.RNG) []int64 {
			z := rng.NewZipf(support, s)
			out := make([]int64, n)
			for i := range out {
				out[i] = z.Draw(r)
			}
			return out
		},
	}
}

// NewStaticConstant returns a static adversary that always submits v.
func NewStaticConstant(v int64) *Static {
	return &Static{
		StreamName: "constant",
		Gen: func(n int, _ *rng.RNG) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = v
			}
			return out
		},
	}
}

// RandomAdaptive submits i.i.d. uniform elements. It is "adaptive" only in
// the trivial sense (it runs inside the adaptive game but ignores the
// state); it serves as the null baseline separating adaptivity from mere
// randomness.
type RandomAdaptive struct {
	// Universe is N.
	Universe int64
}

// NewRandomAdaptive returns the null adaptive baseline over [1, universe].
func NewRandomAdaptive(universe int64) *RandomAdaptive {
	if universe < 1 {
		panic("adversary: universe must be >= 1")
	}
	return &RandomAdaptive{Universe: universe}
}

// Name implements game.Adversary.
func (a *RandomAdaptive) Name() string { return "random" }

// Reset implements game.Adversary.
func (a *RandomAdaptive) Reset() {}

// Next implements game.Adversary.
func (a *RandomAdaptive) Next(_ game.Observation, r *rng.RNG) int64 {
	return 1 + r.Int63n(a.Universe)
}

// GenerateStream implements game.StreamGenerator: the null baseline ignores
// the sampler's state, so its stream can be drawn up front — one Int63n per
// round in the same order as Next, hence bit-identical games either way.
func (a *RandomAdaptive) GenerateStream(n int, r *rng.RNG) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 + r.Int63n(a.Universe)
	}
	return out
}

// HHInflation attacks the heavy-hitters application (Corollary 1.6): it
// tries to inflate the sample density of a single target value above the
// reporting threshold while keeping its true stream density below
// alpha - eps. Whenever the target's sample density is below the inflation
// goal it submits the target; otherwise it submits cover traffic (fresh
// noise values), adapting each round to the observed sample.
type HHInflation struct {
	// Target is the value whose sample density the attack inflates.
	Target int64
	// Universe bounds the noise values, drawn from [1, Universe].
	Universe int64
	// Goal is the sample density the attack tries to exceed (set it at
	// or above the reporting threshold alpha).
	Goal float64
	// Budget caps the target's true stream density (keep it below
	// alpha - eps so reporting the target is a correctness violation).
	Budget float64

	sent int // number of times the target was submitted
}

// NewHHInflation returns a heavy-hitter inflation attack.
func NewHHInflation(target, universe int64, goal, budget float64) *HHInflation {
	if universe < 2 {
		panic("adversary: universe must be >= 2")
	}
	if goal <= 0 || goal > 1 || budget <= 0 || budget > 1 {
		panic("adversary: goal and budget must be in (0, 1]")
	}
	return &HHInflation{Target: target, Universe: universe, Goal: goal, Budget: budget}
}

// Name implements game.Adversary.
func (h *HHInflation) Name() string { return "hh-inflation" }

// Reset implements game.Adversary.
func (h *HHInflation) Reset() { h.sent = 0 }

// Next implements game.Adversary.
func (h *HHInflation) Next(obs game.Observation, r *rng.RNG) int64 {
	// Current sample density of the target.
	inSample := 0
	for _, v := range obs.Sample {
		if v == h.Target {
			inSample++
		}
	}
	sampleDensity := 0.0
	if len(obs.Sample) > 0 {
		sampleDensity = float64(inSample) / float64(len(obs.Sample))
	}
	withinBudget := float64(h.sent+1) <= h.Budget*float64(obs.N)
	if sampleDensity < h.Goal && withinBudget {
		h.sent++
		return h.Target
	}
	// Cover traffic: uniform noise, re-drawn if it collides with the
	// target.
	for {
		v := 1 + r.Int63n(h.Universe)
		if v != h.Target {
			return v
		}
	}
}

// MedianPusher is the introduction's adaptive median attack phrased over the
// discrete universe: it tracks the sample's median and submits elements on
// the opposite side of the stream median, dragging the two apart. It is a
// weaker, heuristic cousin of Bisection used to show that even crude
// adaptivity beats static streams.
type MedianPusher struct {
	// Universe is N.
	Universe int64
}

// NewMedianPusher returns the heuristic median attack over [1, universe].
func NewMedianPusher(universe int64) *MedianPusher {
	if universe < 2 {
		panic("adversary: universe must be >= 2")
	}
	return &MedianPusher{Universe: universe}
}

// Name implements game.Adversary.
func (m *MedianPusher) Name() string { return "median-pusher" }

// Reset implements game.Adversary.
func (m *MedianPusher) Reset() {}

// Next implements game.Adversary.
func (m *MedianPusher) Next(obs game.Observation, r *rng.RNG) int64 {
	if len(obs.Sample) == 0 {
		return m.Universe / 2
	}
	// Median of the current sample (order statistics over the view).
	med := medianOf(obs.Sample)
	// Submit just above the sample median so that, if admitted, the
	// sample median climbs; if not, the stream mass accumulates above
	// the sample's view of the distribution anyway.
	span := m.Universe - med
	if span < 1 {
		return m.Universe
	}
	return med + 1 + r.Int63n(span)
}

func medianOf(xs []int64) int64 {
	cp := append([]int64(nil), xs...)
	// Partial selection via sort; samples are small.
	quickselectMedian(cp)
	return cp[len(cp)/2]
}

func quickselectMedian(a []int64) {
	k := len(a) / 2
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := partition(a, lo, hi)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func partition(a []int64, lo, hi int) int {
	pivot := a[(lo+hi)/2]
	i, j := lo, hi
	for {
		for a[i] < pivot {
			i++
		}
		for a[j] > pivot {
			j--
		}
		if i >= j {
			return j
		}
		a[i], a[j] = a[j], a[i]
		i++
		j--
	}
}
