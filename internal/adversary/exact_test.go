package adversary

import (
	"math"
	"testing"

	"robustsample/internal/rng"
	"robustsample/internal/setsystem"
)

func TestExactBernoulliStreamIsPermutationOfRanks(t *testing.T) {
	r := rng.New(1)
	res := RunExactBisectionBernoulli(1000, 0.01, r)
	if len(res.Stream) != 1000 {
		t.Fatalf("stream length %d", len(res.Stream))
	}
	seen := make(map[int64]bool)
	for _, v := range res.Stream {
		if v < 1 || v > 1000 || seen[v] {
			t.Fatalf("stream is not a permutation of 1..n: %d", v)
		}
		seen[v] = true
	}
}

func TestExactBernoulliSampleIsSmallest(t *testing.T) {
	// The defining property of the attack (Section 5): the final sample
	// is exactly the |S| smallest elements of the stream.
	root := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		r := root.Split()
		res := RunExactBisectionBernoulli(2000, 0.01, r)
		if !res.SampleIsPrefixOfAdmitted {
			t.Fatal("Claim 5.2 invariant violated")
		}
		s := len(res.Sample)
		if s == 0 {
			continue
		}
		for _, v := range res.Sample {
			if v > int64(s) {
				t.Fatalf("sample value %d exceeds sample size %d: not the smallest elements", v, s)
			}
		}
		if res.TotalAdmitted != s {
			t.Fatalf("Bernoulli TotalAdmitted %d != |S| %d", res.TotalAdmitted, s)
		}
	}
}

func TestExactBernoulliDiscrepancyLarge(t *testing.T) {
	// Theorem 1.3(1): the prefix discrepancy is 1 - |S|/n, which exceeds
	// 1/2 whenever |S| < n/2 (it always is at small p).
	root := rng.New(3)
	const n = 5000
	fails := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		res := RunExactBisectionBernoulli(n, 0.005, r)
		if len(res.Sample) == 0 {
			continue
		}
		d := setsystem.NewPrefixes(int64(n)).MaxDiscrepancy(res.Stream, res.Sample)
		want := 1 - float64(len(res.Sample))/float64(n)
		if math.Abs(d.Err-want) > 1e-9 {
			t.Fatalf("discrepancy %v, theory predicts exactly %v", d.Err, want)
		}
		if d.Err > 0.5 {
			fails++
		}
	}
	if fails < trials/2 {
		t.Fatalf("attack broke only %d/%d trials", fails, trials)
	}
}

func TestExactReservoirSampleAmongAdmitted(t *testing.T) {
	root := rng.New(4)
	const n, k = 5000, 10
	for trial := 0; trial < 10; trial++ {
		r := root.Split()
		res := RunExactBisectionReservoir(n, k, r)
		if !res.SampleIsPrefixOfAdmitted {
			t.Fatal("Claim 5.2 invariant violated for reservoir")
		}
		if len(res.Sample) != k {
			t.Fatalf("reservoir sample size %d, want %d", len(res.Sample), k)
		}
		// Every sampled element is among the k' smallest.
		for _, v := range res.Sample {
			if v > int64(res.TotalAdmitted) {
				t.Fatalf("sample value %d above k' = %d", v, res.TotalAdmitted)
			}
		}
	}
}

func TestExactReservoirKPrimeBound(t *testing.T) {
	// Section 5: with probability >= 1/2, k' <= 4k ln n. Verify the
	// empirical mean is near k(1 + ln(n/k)) and the 4k ln n bound holds
	// in most trials.
	root := rng.New(5)
	const n, k, trials = 5000, 10, 50
	within := 0
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		res := RunExactBisectionReservoir(n, k, r)
		sum += float64(res.TotalAdmitted)
		if float64(res.TotalAdmitted) <= 4*float64(k)*math.Log(n) {
			within++
		}
	}
	if within < trials/2 {
		t.Fatalf("k' <= 4k ln n in only %d/%d trials", within, trials)
	}
	mean := sum / trials
	predicted := float64(k) * (1 + math.Log(float64(n)/float64(k)))
	if mean < predicted*0.7 || mean > predicted*1.3 {
		t.Fatalf("mean k' = %v, predicted ~%v", mean, predicted)
	}
}

func TestExactReservoirDiscrepancyLarge(t *testing.T) {
	// Theorem 1.3(2): prefix discrepancy > 1/2 with probability >= 1/2
	// when k is small; here k' / n << 1/2 so the density of the prefix
	// of admitted elements is ~1 in the sample vs k'/n in the stream.
	root := rng.New(6)
	const n, k, trials = 5000, 10, 30
	fails := 0
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		res := RunExactBisectionReservoir(n, k, r)
		d := setsystem.NewPrefixes(int64(n)).MaxDiscrepancy(res.Stream, res.Sample)
		if d.Err > 0.5 {
			fails++
		}
	}
	if fails < trials*3/4 {
		t.Fatalf("attack broke only %d/%d reservoir trials", fails, trials)
	}
}

func TestExactAttackDeterministic(t *testing.T) {
	a := RunExactBisectionBernoulli(500, 0.05, rng.New(7))
	b := RunExactBisectionBernoulli(500, 0.05, rng.New(7))
	for i := range a.Stream {
		if a.Stream[i] != b.Stream[i] {
			t.Fatal("attack not deterministic under fixed seed")
		}
	}
}

func TestExactAttackEdgeCases(t *testing.T) {
	r := rng.New(8)
	// p = 1: everything admitted; stream must be increasing.
	res := RunExactBisectionBernoulli(50, 1, r)
	for i := 1; i < len(res.Stream); i++ {
		if res.Stream[i] <= res.Stream[i-1] {
			t.Fatal("all-admitted attack stream must be strictly increasing")
		}
	}
	if len(res.Sample) != 50 {
		t.Fatal("p=1 should sample everything")
	}
	// p = 0: nothing admitted; stream must be decreasing.
	res = RunExactBisectionBernoulli(50, 0, r)
	for i := 1; i < len(res.Stream); i++ {
		if res.Stream[i] >= res.Stream[i-1] {
			t.Fatal("all-rejected attack stream must be strictly decreasing")
		}
	}
	if len(res.Sample) != 0 {
		t.Fatal("p=0 should sample nothing")
	}
}

func TestExactAttackPanics(t *testing.T) {
	for _, f := range []func(){
		func() { RunExactBisectionBernoulli(0, 0.5, rng.New(1)) },
		func() { RunExactBisectionBernoulli(10, -0.1, rng.New(1)) },
		func() { RunExactBisectionReservoir(0, 1, rng.New(1)) },
		func() { RunExactBisectionReservoir(10, 0, rng.New(1)) },
		func() { RequiredLogUniverse(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRequiredLogUniverseScale(t *testing.T) {
	// For n = 10^5 with p' = ln n / n, the required ln N must far exceed
	// ln(2^63) ~ 43.7, demonstrating why the exact runner exists.
	n := 100000
	pp := math.Log(float64(n)) / float64(n)
	if got := RequiredLogUniverse(n, pp); got < 60 {
		t.Fatalf("required ln N = %v, expected >> 43.7", got)
	}
	// And it must stay below the paper's 2^(n/2) ceiling.
	if got := RequiredLogUniverse(n, pp); got > float64(n)/2*math.Ln2 {
		t.Fatalf("required ln N = %v exceeds paper ceiling", got)
	}
}
