package adversary

import (
	"math"

	"robustsample/internal/rng"
	"robustsample/internal/sampler"
)

// The int64 Bisection adversary can only run while the working range
// contains integers, which per Claim 5.1 requires ln N to exceed roughly
// 2np' ln(1/p') + 3np'. For the parameter regimes of Theorem 1.3 that N is
// astronomically larger than 2^63, so the attack cannot be driven through
// int64 arithmetic at interesting stream lengths.
//
// The exact runners below simulate the attack over an *unbounded* ordered
// universe instead, exploiting two structural facts:
//
//  1. The samplers never inspect element values — Bernoulli flips an
//     independent coin, and Algorithm R's admission depends only on the
//     round number. Values matter only for the final verdict, which depends
//     only on the *order* of the elements.
//  2. In the bisection attack the open working range (a_i, b_i) never
//     contains a previously submitted element (Claim 5.2), so a and b are
//     always adjacent in the sorted order of submissions and the new
//     element slots between them in O(1) via a linked list.
//
// After the game, elements are relabeled 1..n by sorted order, giving an
// order-isomorphic int64 stream whose discrepancies equal those of the
// unbounded-universe attack. RequiredLogUniverse reports how large ln N a
// direct integer simulation would have needed, which the experiment tables
// print to show why Theorem 1.3 demands |R| exponential in n.

// AttackResult is the outcome of an exact bisection attack.
type AttackResult struct {
	// Stream is the submitted stream relabeled to ranks 1..n (all values
	// distinct); order-isomorphic to the unbounded-universe attack.
	Stream []int64
	// Sample is the final sample under the same relabeling.
	Sample []int64
	// TotalAdmitted is the number of rounds whose element was admitted
	// (for the reservoir this is k' from Section 5, including evicted
	// elements; for Bernoulli it equals len(Sample)).
	TotalAdmitted int
	// SampleIsPrefixOfAdmitted reports the Claim 5.2 invariant: every
	// sampled element is smaller than every never-admitted element.
	SampleIsPrefixOfAdmitted bool
}

// node is an element in the sorted-order linked list of submissions.
type node struct {
	prev, next *node
	round      int // 1-based submission round; 0 for sentinels
}

// orderTracker maintains the sorted order of submissions and the working
// range boundaries (a, b), which are always adjacent nodes.
type orderTracker struct {
	head, tail *node // sentinels: head < everything < tail
	a, b       *node
	count      int
}

func newOrderTracker() *orderTracker {
	h := &node{}
	t := &node{}
	h.next, t.prev = t, h
	return &orderTracker{head: h, tail: t, a: h, b: t}
}

// submit inserts the element of the given round strictly between a and b and
// returns its node.
func (o *orderTracker) submit(round int) *node {
	n := &node{round: round, prev: o.a, next: o.b}
	o.a.next = n
	o.b.prev = n
	o.count++
	return n
}

// feedback narrows the working range: if admitted, the last element becomes
// the new lower bound a; otherwise the new upper bound b (Figure 3).
func (o *orderTracker) feedback(n *node, admitted bool) {
	if admitted {
		o.a = n
	} else {
		o.b = n
	}
}

// ranks returns a map from round to 1-based rank in sorted order.
func (o *orderTracker) ranks() map[int]int64 {
	out := make(map[int]int64, o.count)
	rank := int64(0)
	for n := o.head.next; n != o.tail; n = n.next {
		rank++
		out[n.round] = rank
	}
	return out
}

// RunExactBisectionFunc plays the Figure-3 attack for n rounds over an
// unbounded ordered universe against an arbitrary admission process: admit
// is called once per round (1-based) and reports whether that round's
// element entered the sample. This generalizes the attack to any
// Bernoulli-like admission channel — e.g. "was this query routed to server
// 0?" in the distributed-database experiment.
func RunExactBisectionFunc(n int, admit func(round int) bool) AttackResult {
	if n < 1 {
		panic("adversary: attack needs n >= 1")
	}
	if admit == nil {
		panic("adversary: attack needs an admission function")
	}
	o := newOrderTracker()
	admitted := make([]bool, n+1)
	total := 0
	for i := 1; i <= n; i++ {
		nd := o.submit(i)
		adm := admit(i)
		admitted[i] = adm
		if adm {
			total++
		}
		o.feedback(nd, adm)
	}
	return assembleAttack(o, admitted, nil, total)
}

// RunExactBisectionBernoulli plays the Figure-3 attack against
// BernoulliSample(p) for n rounds over an unbounded ordered universe.
func RunExactBisectionBernoulli(n int, p float64, r *rng.RNG) AttackResult {
	if p < 0 || p > 1 {
		panic("adversary: p must be in [0, 1]")
	}
	return RunExactBisectionFunc(n, func(int) bool { return r.Bernoulli(p) })
}

// RunExactBisectionSampler plays the Figure-3 attack over an unbounded
// ordered universe against any sampler that stores round numbers: offer is
// called once per 1-based round and reports admission; final returns the
// rounds remaining in the sample at the end. Used for reservoir variants
// (Algorithm R, Algorithm L, with-replacement) in the ablation experiment.
func RunExactBisectionSampler(n int, offer func(round int) bool, final func() []int) AttackResult {
	if n < 1 {
		panic("adversary: attack needs n >= 1")
	}
	if offer == nil || final == nil {
		panic("adversary: attack needs offer and final functions")
	}
	o := newOrderTracker()
	admitted := make([]bool, n+1)
	total := 0
	for i := 1; i <= n; i++ {
		nd := o.submit(i)
		adm := offer(i)
		admitted[i] = adm
		if adm {
			total++
		}
		o.feedback(nd, adm)
	}
	return assembleAttack(o, admitted, final(), total)
}

// RunExactBisectionReservoir plays the Figure-3 attack against
// ReservoirSample(k) for n rounds over an unbounded ordered universe.
func RunExactBisectionReservoir(n, k int, r *rng.RNG) AttackResult {
	if k < 1 {
		panic("adversary: attack needs k >= 1")
	}
	res := sampler.NewReservoir[int](k)
	samplerRNG := r.Split()
	return RunExactBisectionSampler(n,
		func(i int) bool { return res.Offer(i, samplerRNG) },
		func() []int { return res.View() })
}

// assembleAttack relabels rounds to ranks and packages the result. For
// Bernoulli, finalRounds is nil and the sample is every admitted round; for
// the reservoir it is the rounds surviving in the reservoir.
func assembleAttack(o *orderTracker, admitted []bool, finalRounds []int, total int) AttackResult {
	rank := o.ranks()
	n := o.count
	stream := make([]int64, n)
	for i := 1; i <= n; i++ {
		stream[i-1] = rank[i]
	}
	var sample []int64
	if finalRounds == nil {
		for i := 1; i <= n; i++ {
			if admitted[i] {
				sample = append(sample, rank[i])
			}
		}
	} else {
		for _, round := range finalRounds {
			sample = append(sample, rank[round])
		}
	}

	// Claim 5.2 invariant: every admitted element is smaller than every
	// never-admitted element. Find the largest admitted rank and the
	// smallest never-admitted rank.
	maxAdmitted := int64(0)
	minRejected := int64(n + 1)
	for i := 1; i <= n; i++ {
		if admitted[i] {
			if rank[i] > maxAdmitted {
				maxAdmitted = rank[i]
			}
		} else if rank[i] < minRejected {
			minRejected = rank[i]
		}
	}
	return AttackResult{
		Stream:                   stream,
		Sample:                   sample,
		TotalAdmitted:            total,
		SampleIsPrefixOfAdmitted: maxAdmitted < minRejected,
	}
}

// RequiredLogUniverse returns (an estimate of) the natural log of the
// universe size a direct integer simulation of the Figure-3 attack would
// need, following Claim 5.1's accounting: each of ~np' admissions shrinks
// the working range by a factor p' and each rejection by (1-p'), and the
// final range must still contain at least n integers.
func RequiredLogUniverse(n int, pPrime float64) float64 {
	if pPrime <= 0 || pPrime >= 1 {
		panic("adversary: p' must be in (0, 1)")
	}
	nf := float64(n)
	admissions := nf * pPrime
	return admissions*math.Log(1/pPrime) + nf*math.Log(1/(1-pPrime)) + math.Log(nf)
}
