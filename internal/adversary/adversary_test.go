package adversary

import (
	"math"
	"testing"

	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

func TestBisectionSampledAreSmallest(t *testing.T) {
	// Claim 5.2: at every point, all sampled elements are smaller than
	// all non-sampled elements; hence the final Bernoulli sample is
	// exactly the |S| smallest stream elements. The int64 attack only has
	// enough precision at small n (see exact.go), so this runs at n=500.
	const n = 500
	universe := int64(1) << 62
	p := 0.005
	r := rng.New(1)
	s := sampler.NewBernoulli[int64](p)
	adv := NewBisectionBernoulli(universe, n, p)
	res := game.Run(s, adv, setsystem.NewPrefixes(universe), n, 0.5, r)

	if adv.Exhausted() {
		t.Fatal("attack exhausted the universe; N too small for this n")
	}
	if len(res.Sample) == 0 {
		t.Skip("degenerate: empty sample")
	}
	sampleSet := make(map[int64]bool, len(res.Sample))
	maxSampled := int64(0)
	for _, v := range res.Sample {
		sampleSet[v] = true
		if v > maxSampled {
			maxSampled = v
		}
	}
	for _, x := range res.Stream {
		if !sampleSet[x] && x < maxSampled {
			t.Fatalf("non-sampled element %d below max sampled %d", x, maxSampled)
		}
	}
}

func TestBisectionBreaksBernoulli(t *testing.T) {
	// Theorem 1.3(1): with small p the prefix discrepancy exceeds 1/2
	// with probability >= 1/2. Check the mean failure across trials in
	// the int64-feasible regime.
	const n = 500
	universe := int64(1) << 62
	p := 0.005
	root := rng.New(2)
	fails := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		r := root.Split()
		s := sampler.NewBernoulli[int64](p)
		adv := NewBisectionBernoulli(universe, n, p)
		res := game.Run(s, adv, setsystem.NewPrefixes(universe), n, 0.5, r)
		if res.Discrepancy.Err > 0.5 {
			fails++
		}
	}
	if fails < trials/2 {
		t.Fatalf("attack broke only %d/%d trials", fails, trials)
	}
}

func TestBisectionRangeInvariant(t *testing.T) {
	// The working range never inverts and every submission lies inside.
	const n = 300
	universe := int64(1) << 62
	r := rng.New(5)
	adv := NewBisection(universe, 0.02)
	s := sampler.NewBernoulli[int64](0.02)
	res := game.Run(s, adv, setsystem.NewPrefixes(universe), n, 0.5, r)
	for _, x := range res.Stream {
		if x < 1 || x > universe {
			t.Fatalf("submission %d outside universe", x)
		}
	}
	if adv.Exhausted() {
		t.Fatal("unexpected exhaustion with huge universe")
	}
}

func TestBisectionExhaustionOnTinyUniverse(t *testing.T) {
	// With a tiny universe the attack must run out of precision and
	// report it rather than misbehave — this is the regime where
	// Theorem 1.2 kicks in.
	const n = 1000
	universe := int64(64)
	r := rng.New(6)
	adv := NewBisectionBernoulli(universe, n, 0.1)
	s := sampler.NewBernoulli[int64](0.1)
	res := game.Run(s, adv, setsystem.NewPrefixes(universe), n, 0.5, r)
	if !adv.Exhausted() {
		t.Fatal("expected exhaustion on universe of size 64")
	}
	for _, x := range res.Stream {
		if x < 1 || x > universe {
			t.Fatalf("submission %d outside universe", x)
		}
	}
}

func TestBisectionConstructorsValidate(t *testing.T) {
	for _, f := range []func(){
		func() { NewBisection(1, 0.5) },
		func() { NewBisection(10, 0) },
		func() { NewBisection(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBisectionPPrimeFloors(t *testing.T) {
	n := 10000
	adv := NewBisectionBernoulli(1<<40, n, 0)
	want := math.Log(float64(n)) / float64(n)
	if math.Abs(adv.PPrime-want) > 1e-15 {
		t.Fatalf("p' = %v, want ln n / n = %v", adv.PPrime, want)
	}
	advR := NewBisectionReservoir(1<<40, 100, 1000)
	if advR.PPrime != 0.5 {
		t.Fatalf("reservoir p' should cap at 0.5, got %v", advR.PPrime)
	}
}

func TestStaticAdversariesProduceValidStreams(t *testing.T) {
	const n = 500
	universe := int64(1000)
	advs := []game.Adversary{
		NewStaticUniform(universe),
		NewStaticSorted(universe),
		NewStaticZipf(universe, 1.2),
		NewStaticConstant(7),
	}
	root := rng.New(7)
	for _, adv := range advs {
		r := root.Split()
		s := sampler.NewReservoir[int64](10)
		res := game.Run(s, adv, setsystem.NewPrefixes(universe), n, 0.5, r)
		if len(res.Stream) != n {
			t.Fatalf("%s: stream length %d", adv.Name(), len(res.Stream))
		}
		for _, x := range res.Stream {
			if x < 1 || x > universe {
				t.Fatalf("%s: value %d outside universe", adv.Name(), x)
			}
		}
	}
}

func TestStaticSortedIsSorted(t *testing.T) {
	adv := NewStaticSorted(1000)
	r := rng.New(8)
	s := sampler.NewBernoulli[int64](0)
	res := game.Run(s, adv, setsystem.NewPrefixes(1000), 100, 0.5, r)
	for i := 1; i < len(res.Stream); i++ {
		if res.Stream[i] < res.Stream[i-1] {
			t.Fatal("sorted stream not sorted")
		}
	}
	if res.Stream[0] != 1 || res.Stream[99] != 1000 {
		t.Fatalf("sweep endpoints %d..%d", res.Stream[0], res.Stream[99])
	}
}

func TestStaticConstant(t *testing.T) {
	adv := NewStaticConstant(7)
	r := rng.New(9)
	s := sampler.NewBernoulli[int64](0)
	res := game.Run(s, adv, setsystem.NewPrefixes(10), 50, 0.5, r)
	for _, x := range res.Stream {
		if x != 7 {
			t.Fatal("constant stream not constant")
		}
	}
}

func TestStaticRegeneratesAcrossGames(t *testing.T) {
	adv := NewStaticUniform(100)
	root := rng.New(10)
	s := sampler.NewBernoulli[int64](0)
	res1 := game.Run(s, adv, setsystem.NewPrefixes(100), 20, 0.5, root)
	res2 := game.Run(s, adv, setsystem.NewPrefixes(100), 20, 0.5, root)
	diff := false
	for i := range res1.Stream {
		if res1.Stream[i] != res2.Stream[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("static adversary replayed the same stream in a fresh game with fresh randomness")
	}
}

func TestRandomAdaptiveRange(t *testing.T) {
	adv := NewRandomAdaptive(50)
	r := rng.New(11)
	s := sampler.NewReservoir[int64](5)
	res := game.Run(s, adv, setsystem.NewPrefixes(50), 200, 0.9, r)
	for _, x := range res.Stream {
		if x < 1 || x > 50 {
			t.Fatalf("value %d outside universe", x)
		}
	}
}

func TestHHInflationRespectsBudget(t *testing.T) {
	const n = 2000
	target := int64(5)
	budget := 0.05
	adv := NewHHInflation(target, 1000, 0.2, budget)
	r := rng.New(12)
	s := sampler.NewReservoir[int64](20)
	res := game.Run(s, adv, setsystem.NewSingletons(1000), n, 0.9, r)
	count := 0
	for _, x := range res.Stream {
		if x == target {
			count++
		}
	}
	if float64(count) > budget*float64(n)+1 {
		t.Fatalf("target sent %d times, budget %v", count, budget*n)
	}
}

func TestHHInflationAdaptsToSample(t *testing.T) {
	// Deterministic logic check of the strategy: it sends the target
	// exactly when the observed sample density is below the goal and the
	// budget allows, and cover traffic otherwise.
	r := rng.New(13)
	target := int64(5)
	adv := NewHHInflation(target, 1000, 0.5, 0.5)
	adv.Reset()

	// Round 1: empty sample (density 0 < goal) => target.
	obs := game.Observation{Round: 1, N: 10, Sample: nil}
	if got := adv.Next(obs, r); got != target {
		t.Fatalf("under-represented target not sent, got %d", got)
	}
	// Sample saturated with the target (density 1 >= goal) => noise.
	obs = game.Observation{Round: 2, N: 10, Sample: []int64{5, 5, 5, 5}}
	if got := adv.Next(obs, r); got == target {
		t.Fatal("over-represented target was sent again")
	}
	// Under-represented again => target, until the budget runs dry.
	obs = game.Observation{Round: 3, N: 10, Sample: []int64{1, 2, 3, 4}}
	sent := 1 // one target already sent in round 1
	for round := 3; round <= 10; round++ {
		obs.Round = round
		if adv.Next(obs, r) == target {
			sent++
		}
	}
	// Budget is 0.5 * N = 5 targets total.
	if sent != 5 {
		t.Fatalf("sent %d targets, budget allows exactly 5", sent)
	}
}

func TestHHInflationValidates(t *testing.T) {
	for _, f := range []func(){
		func() { NewHHInflation(1, 1, 0.5, 0.5) },
		func() { NewHHInflation(1, 10, 0, 0.5) },
		func() { NewHHInflation(1, 10, 0.5, 0) },
		func() { NewHHInflation(1, 10, 1.5, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMedianPusherRuns(t *testing.T) {
	adv := NewMedianPusher(1 << 20)
	r := rng.New(14)
	s := sampler.NewReservoir[int64](10)
	res := game.Run(s, adv, setsystem.NewPrefixes(1<<20), 500, 0.9, r)
	for _, x := range res.Stream {
		if x < 1 || x > 1<<20 {
			t.Fatalf("value %d outside universe", x)
		}
	}
}

func TestMedianPusherValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMedianPusher(1)
}

func TestMedianOf(t *testing.T) {
	if m := medianOf([]int64{5, 1, 3}); m != 3 {
		t.Fatalf("median = %d, want 3", m)
	}
	if m := medianOf([]int64{2, 1, 4, 3}); m != 3 {
		t.Fatalf("median of even = %d, want 3 (upper)", m)
	}
	if m := medianOf([]int64{9}); m != 9 {
		t.Fatalf("median singleton = %d", m)
	}
}

func TestAdversaryNames(t *testing.T) {
	cases := map[string]game.Adversary{
		"bisection":      NewBisection(100, 0.5),
		"static-uniform": NewStaticUniform(10),
		"static-sorted":  NewStaticSorted(10),
		"random":         NewRandomAdaptive(10),
		"hh-inflation":   NewHHInflation(1, 10, 0.5, 0.5),
		"median-pusher":  NewMedianPusher(10),
	}
	for want, adv := range cases {
		if adv.Name() != want {
			t.Fatalf("name %q, want %q", adv.Name(), want)
		}
	}
}

func BenchmarkBisectionGame(b *testing.B) {
	root := rng.New(1)
	universe := int64(1) << 50
	const n = 10000
	p := 0.005
	sys := setsystem.NewPrefixes(universe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := root.Split()
		s := sampler.NewBernoulli[int64](p)
		adv := NewBisectionBernoulli(universe, n, p)
		game.Run(s, adv, sys, n, 0.5, r)
	}
}
