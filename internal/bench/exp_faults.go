package bench

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"robustsample/internal/faults"
	"robustsample/internal/rng"
	"robustsample/internal/shard"
)

// ExpE20 exercises the self-healing serving runtime under injected faults.
//
// The recovery arm runs the deterministic pipeline with a seeded fault plan
// that crashes every shard at least once mid-stream (scheduled ordinals, on
// top of probabilistic crashes and poisoned batches) and checks the
// recovered session's verdict and union sample are byte-identical to serial
// ingest — the crash-recovery contract: checkpoint restore plus redo-journal
// replay leaves no trace.
//
// The availability arm runs live-mode ingest while a monitor issues
// degraded reads (VerdictCovered) concurrently, sweeping the injected crash
// rate (with a matching stall rate, the fault that actually wedges shard
// locks). It reports the fraction of reads that covered every shard within
// the query wait bound, the recovery counters, the lost rounds (bounded by
// one checkpoint interval per crash), and the exact final verdict error —
// which stays at sampling scale because losses are a vanishing fraction of
// the stream. A custom plan (robustbench -faults "seed=1,crash=0.01,...")
// replaces the sweep with that single measured point.
func ExpE20(cfg Config) *Table {
	t := &Table{
		ID:      "E20",
		Title:   "Self-healing serving: crash recovery and degraded-read availability under injected faults",
		Source:  "ROADMAP failure-injection arm; [CMYZ12] continuous monitoring with sites failing and rejoining",
		Columns: []string{"arm", "faults", "n", "crashes", "restores", "lost", "avail", "verdict-err", "identical"},
	}

	// Recovery arm: deterministic pipeline vs serial ingest, every shard
	// crashed by schedule.
	n := cfg.scaled(20000, 2000)
	stream := servingStream(n, cfg.Seed+20)
	serial := servingEngine(rng.New(cfg.Seed + 200))
	serial.Ingest(stream)
	wantV := serial.Verdict()
	wantSample := serial.Sample()

	plan := faults.MustPlan(faults.Spec{
		Seed:          cfg.Seed + 1,
		CrashOrdinals: [][]uint64{{2, 8}, {4}, {3, 7}, {5}},
		CrashProb:     0.01,
		CorruptProb:   0.02,
	}, servingShards)
	eng := servingEngine(rng.New(cfg.Seed + 200))
	srv, err := eng.Serve(shard.ServeConfig{
		Producers: 2, Deterministic: true,
		RingSize: 256, ChunkCap: 32, CheckpointEvery: 256, Faults: plan,
	})
	if err != nil {
		panic(err)
	}
	const lanes = 2
	var wg sync.WaitGroup
	wg.Add(lanes)
	for lane := 0; lane < lanes; lane++ {
		go func(lane int) {
			defer wg.Done()
			pr := srv.Producer(lane)
			for g := lane; g < len(stream); g += lanes {
				if err := pr.Offer(stream[g]); err != nil {
					panic(err)
				}
			}
			pr.Close()
		}(lane)
	}
	wg.Wait()
	srv.Flush()
	v := srv.Verdict()
	identical := v == wantV && slices.Equal(srv.Sample(), wantSample)
	h := srv.Health()
	srv.Close()
	t.AddRow("recovery", "sched+0.01", n, h.Crashes, h.Restores, h.LostRounds, "-", v.Err, identical)

	// Availability arm: live ingest with concurrent degraded reads.
	type point struct {
		label string
		spec  faults.Spec
	}
	var pts []point
	if cfg.Faults != "" {
		spec, err := faults.ParseSpec(cfg.Faults)
		if err != nil {
			panic(fmt.Sprintf("bench: -faults: %v", err))
		}
		pts = []point{{label: "custom", spec: spec}}
	} else {
		for _, rate := range []float64{0, 0.002, 0.01, 0.05} {
			pts = append(pts, point{
				label: fmt.Sprintf("crash=%g", rate),
				spec: faults.Spec{
					Seed:        cfg.Seed + 2,
					CrashProb:   rate,
					StallProb:   rate,
					StallFor:    2 * time.Millisecond,
					CorruptProb: rate / 2,
				},
			})
		}
	}
	perLane := cfg.scaled(100000, 10000)
	for _, pt := range pts {
		plan := faults.MustPlan(pt.spec, servingShards)
		eng := servingEngine(rng.New(cfg.Seed + 201))
		srv, err := eng.Serve(shard.ServeConfig{
			Producers: lanes, RingSize: 1024, ChunkCap: 128,
			CheckpointEvery: 512, Faults: plan,
			QueryWait: 500 * time.Microsecond,
		})
		if err != nil {
			panic(err)
		}
		stop := make(chan struct{})
		var qwg sync.WaitGroup
		queries, complete := 0, 0
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, cov := srv.VerdictCovered(); cov.Routed > 0 {
					queries++
					if cov.Complete() {
						complete++
					}
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		var pwg sync.WaitGroup
		pwg.Add(lanes)
		for lane := 0; lane < lanes; lane++ {
			go func(lane int) {
				defer pwg.Done()
				pr := srv.Producer(lane)
				xs := servingStream(perLane, cfg.Seed+uint64(300+lane))
				for len(xs) > 0 {
					m := min(512, len(xs))
					if err := pr.OfferBatch(xs[:m]); err != nil {
						panic(err)
					}
					xs = xs[m:]
				}
			}(lane)
		}
		pwg.Wait()
		srv.Flush()
		close(stop)
		qwg.Wait()
		h := srv.Health()
		srv.Close()
		fv := eng.Verdict()
		avail := 1.0
		if queries > 0 {
			avail = float64(complete) / float64(queries)
		}
		t.AddRow("availability", pt.label, lanes*perLane, h.Crashes, h.Restores, h.LostRounds, avail, fv.Err, "-")
	}

	t.Notes = append(t.Notes,
		"expected shape: the recovery row reports identical=true with lost=0 — deterministic-mode restore (checkpoint + redo journal) is bit-exact, and crashes >= 6 (every shard's scheduled ordinals fired)",
		"expected shape: verdict-err stays at sampling scale as the crash rate grows (losses are a vanishing fraction of the stream) and lost <= crashes * (checkpoint interval + chunk) by the rejoin contract; availability degrades gracefully with the stall rate — reads keep answering within the wait bound over the reachable subset instead of blocking",
		"availability-arm crash/lost/avail cells depend on live-mode scheduling and vary slightly run to run (like E19's throughput cells); the recovery row is deterministic",
		"robustbench -exp E20 -faults \"seed=1,crash=0.01,stall=0.005@2ms,corrupt=0.005\" measures one custom fault plan instead of the sweep")
	return t
}
