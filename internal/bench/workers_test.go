package bench

import (
	"bytes"
	"testing"

	"robustsample/internal/game"
)

// TestTablesByteIdenticalAcrossWorkerCounts renders a representative subset
// of experiments (covering EstimateRobustness fan-out, continuous games,
// bespoke attack loops, and the martingale harness) serially and on an
// oversubscribed pool, and requires byte-identical tables.
func TestTablesByteIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, id := range []string{"E1", "E3", "E5", "E15", "E18"} {
		exp, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		render := func(workers int) []byte {
			var buf bytes.Buffer
			cfg := Config{Seed: 77, Trials: 6, Scale: 0.02, Workers: workers}
			exp.Run(cfg).Render(&buf)
			return buf.Bytes()
		}
		serial := render(1)
		for _, workers := range []int{0, 7} {
			if par := render(workers); !bytes.Equal(serial, par) {
				t.Fatalf("%s: workers=%d table differs from serial:\n%s\nvs\n%s",
					id, workers, par, serial)
			}
		}
	}
}

// TestTablesByteIdenticalAcrossChunkSizes renders experiments covering both
// game entry points (E1: one-shot games incl. batched Bernoulli ingest, E5:
// continuous games with the batched span loop) under different batch-ingest
// chunk caps and requires byte-identical tables: batch ingestion must be
// invariant to how streams are sliced.
func TestTablesByteIdenticalAcrossChunkSizes(t *testing.T) {
	defer func(old int) { game.SpanChunkCap = old }(game.SpanChunkCap)
	for _, id := range []string{"E1", "E5", "E18"} {
		exp, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		render := func(chunk int) []byte {
			game.SpanChunkCap = chunk
			var buf bytes.Buffer
			cfg := Config{Seed: 41, Trials: 5, Scale: 0.02, Workers: 1}
			exp.Run(cfg).Render(&buf)
			return buf.Bytes()
		}
		base := render(8192)
		for _, chunk := range []int{1, 13, 500, 1 << 20} {
			if got := render(chunk); !bytes.Equal(base, got) {
				t.Fatalf("%s: chunk=%d table differs:\n%s\nvs\n%s", id, chunk, got, base)
			}
		}
	}
}
