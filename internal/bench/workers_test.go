package bench

import (
	"bytes"
	"testing"
)

// TestTablesByteIdenticalAcrossWorkerCounts renders a representative subset
// of experiments (covering EstimateRobustness fan-out, continuous games,
// bespoke attack loops, and the martingale harness) serially and on an
// oversubscribed pool, and requires byte-identical tables.
func TestTablesByteIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, id := range []string{"E1", "E3", "E5", "E15"} {
		exp, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		render := func(workers int) []byte {
			var buf bytes.Buffer
			cfg := Config{Seed: 77, Trials: 6, Scale: 0.02, Workers: workers}
			exp.Run(cfg).Render(&buf)
			return buf.Bytes()
		}
		serial := render(1)
		for _, workers := range []int{0, 7} {
			if par := render(workers); !bytes.Equal(serial, par) {
				t.Fatalf("%s: workers=%d table differs from serial:\n%s\nvs\n%s",
					id, workers, par, serial)
			}
		}
	}
}
