package bench

import (
	"robustsample/internal/adversary"
	"robustsample/internal/core"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/stats"
)

// ExpE17 is the ablation over reservoir design choices called out in
// DESIGN.md: Vitter's Algorithm R (the paper's pseudocode), Vitter's
// Algorithm L (skip-based, the high-throughput production variant), and a
// with-replacement sampler (K independent single-slot reservoirs). All
// three are value-oblivious, so the Section 4 robustness analysis applies
// to each; the ablation confirms their approximation errors and attack
// outcomes coincide, while they differ in admission volume k' (which the
// Section 5 attack exploits identically) and in per-element cost (see the
// sampler benchmarks for throughput).
func ExpE17(cfg Config) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Ablation: Algorithm R vs Algorithm L vs with-replacement",
		Source:  "DESIGN.md ablation; Vitter [Vit85] variants; Section 4/5 analyses",
		Columns: []string{"variant", "workload", "k", "fail-rate(eps)", "mean-err", "mean-k'"},
	}
	root := rng.New(cfg.Seed + 18)
	n := cfg.scaled(10000, 1000)
	eps, delta := 0.2, 0.1
	sys := setsystem.NewPrefixes(expUniverse)
	k := core.ReservoirSize(core.Params{Eps: eps, Delta: delta, N: n}, sys.LogCardinality())

	type variant struct {
		name string
		// mk builds a game sampler for the static workload.
		mk func() game.Sampler
		// attack runs the exact unbounded-universe attack at size kk.
		attack func(kk int, r *rng.RNG) adversary.AttackResult
	}
	variants := []variant{
		{
			name: "algorithm-R",
			mk:   func() game.Sampler { return sampler.NewReservoir[int64](k) },
			attack: func(kk int, r *rng.RNG) adversary.AttackResult {
				return adversary.RunExactBisectionReservoir(n, kk, r)
			},
		},
		{
			name: "algorithm-L",
			mk:   func() game.Sampler { return sampler.NewReservoirL[int64](k) },
			attack: func(kk int, r *rng.RNG) adversary.AttackResult {
				res := sampler.NewReservoirL[int](kk)
				sr := r.Split()
				return adversary.RunExactBisectionSampler(n,
					func(i int) bool { return res.Offer(i, sr) },
					func() []int { return res.View() })
			},
		},
		{
			name: "with-replacement",
			mk:   func() game.Sampler { return sampler.NewWithReplacement[int64](k) },
			attack: func(kk int, r *rng.RNG) adversary.AttackResult {
				res := sampler.NewWithReplacement[int](kk)
				sr := r.Split()
				return adversary.RunExactBisectionSampler(n,
					func(i int) bool { return res.Offer(i, sr) },
					func() []int { return res.View() })
			},
		},
	}

	smallK := 10
	for _, v := range variants {
		// Static workload at the robust size: errors must be within eps.
		est := core.EstimateRobustnessWorkers(
			v.mk,
			func() game.Adversary { return adversary.NewStaticUniform(expUniverse) },
			sys, core.Params{Eps: eps, Delta: delta, N: n}, cfg.trials(), cfg.Workers, root.Split(),
		)
		t.AddRow(v.name, "static-uniform", k, est.Failure.Rate(), est.Errors.Mean, "-")

		// Exact attack at a tiny size: all variants must be broken the
		// same way, with k' differing by their admission laws.
		errs := make([]float64, cfg.trials())
		overEps := make([]bool, cfg.trials())
		kPrimes := make([]float64, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			res := v.attack(smallK, r)
			d := setsystem.NewPrefixes(int64(n)).MaxDiscrepancy(res.Stream, res.Sample)
			errs[trial] = d.Err
			overEps[trial] = d.Err > eps
			kPrimes[trial] = float64(res.TotalAdmitted)
		})
		broke := countTrue(overEps)
		kPrimeSum := 0.0
		for _, kp := range kPrimes {
			kPrimeSum += kp
		}
		t.AddRow(v.name, "exact-attack(k=10)", smallK,
			float64(broke)/float64(cfg.trials()), stats.Mean(errs),
			kPrimeSum/float64(cfg.trials()))
	}
	t.Notes = append(t.Notes,
		"expected shape: identical robustness profile across variants — all pass at the Theorem 1.2 size, all break at k=10 under the exact attack",
		"k' differs slightly by admission law: with-replacement rounds admit when ANY slot adopts (prob 1-(1-1/i)^K < K/i), so its k' runs a little below Algorithm R's; the broken-sample law is the same. Throughput differences live in the sampler benchmarks (Algorithm L amortizes RNG draws via skips)")
	return t
}
