package bench

import (
	"fmt"
	"math"

	"robustsample/internal/adversary"
	"robustsample/internal/core"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/shard"
	"robustsample/internal/stats"
)

// shardCounts returns the shard-count sweep for E18: the default ladder, or
// {1, Shards} when the -shards flag pins an explicit count (1 stays as the
// unsharded baseline).
func (c Config) shardCounts() []int {
	if c.Shards <= 0 {
		return []int{1, 2, 4, 8}
	}
	if c.Shards == 1 {
		return []int{1}
	}
	return []int{1, c.Shards}
}

// ExpE18 measures the sharded continuous-sampling engine: the Theorem 1.4
// continuous reservoir budget is split evenly across S shards, one stream is
// routed across them (every routing mode), and the coordinator's merged
// verdict — bit-identical to the one-shot discrepancy of the union stream vs
// the union sample — is checked at the Theorem 1.4 checkpoint schedule. A
// second arm runs the distributed-bisection attack against one shard,
// reporting how unrepresentative the target's local sample gets versus how
// well the merged coordinator sample holds up.
func ExpE18(cfg Config) *Table {
	t := &Table{
		ID:      "E18",
		Title:   "Sharded continuous sampling with mergeable verdicts",
		Source:  "Section 1.3, continuous/distributed sampling ([CTW16], [CMYZ12]); Theorem 1.4 sizing",
		Columns: []string{"arm", "router", "S", "n", "k/shard", "fail-rate", "mean-maxPrefixErr", "mean-targetKS", "mean-globalErr"},
	}
	root := rng.New(cfg.Seed + 18)
	sys := setsystem.NewPrefixes(expUniverse)
	n := cfg.scaled(20000, 500)
	eps, delta := 0.3, 0.1
	kTotal := core.ContinuousReservoirSize(core.Params{Eps: eps, Delta: delta, N: n}, sys.LogCardinality())
	cps := game.MustCheckpoints(1, n, eps/4)

	// Continuous arm: fixed TOTAL memory split across S shards (floor
	// division, so no S row ever exceeds the S=1 budget), showing what
	// sharding alone costs — thinner per-shard samples against per-shard
	// substreams; the merged verdict judges the union.
	for _, router := range shard.Routers() {
		for _, S := range cfg.shardCounts() {
			kShard := max(kTotal/S, 1)
			fails := make([]bool, cfg.trials())
			errs := make([]float64, cfg.trials())
			workers := core.WorkerCount(cfg.trials(), cfg.Workers)
			engines := make([]*shard.Engine, workers)
			rngs := make([]*rng.RNG, cfg.trials())
			for i := range rngs {
				rngs[i] = root.Split()
			}
			core.ForEachTrialOnWorker(cfg.trials(), cfg.Workers, func(worker, trial int) {
				eng := engines[worker]
				if eng == nil {
					// Shard ingest stays serial inside each engine: the
					// Monte-Carlo pool already saturates the CPUs.
					eng = shard.New(shard.Config{
						Shards: S,
						Router: router,
						System: sys,
						NewSampler: func(int) game.Sampler {
							return sampler.NewReservoir[int64](kShard)
						},
						Workers: 1,
					}, nil)
					engines[worker] = eng
				}
				res := game.RunSharded(eng, adversary.NewStaticUniform(expUniverse), n, eps, cps, rngs[trial])
				fails[trial] = !res.OK
				errs[trial] = res.MaxPrefixErr
			})
			sum := stats.Summarize(errs)
			t.AddRow("continuous", router.Name(), S, n, kShard,
				float64(countTrue(fails))/float64(cfg.trials()), sum.Mean, "-", "-")
		}
	}

	// Attack arm: the Figure-3 bisection aimed at shard 0's Bernoulli
	// sampler through uniform routing (admission channel p/S), over an
	// unbounded universe where Theorem 1.3 says it must win.
	p := math.Max(0.02, 4*math.Log(float64(n))/float64(n))
	for _, S := range cfg.shardCounts() {
		targets := make([]float64, cfg.trials())
		globals := make([]float64, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			out := shard.RunTargetedBisectionUnbounded(S, n, p, r)
			targets[trial] = out.TargetVsStream
			globals[trial] = out.GlobalErr
		})
		t.AddRow("bisection-target", "uniform", S, n, fmt.Sprintf("p=%.3g", p),
			"-", "-", stats.Mean(targets), stats.Mean(globals))
	}

	t.Notes = append(t.Notes,
		"expected shape: continuous fail-rate stays <= delta for every router and S (the merged verdict judges the union sample at full size k)",
		"expected shape: bisection-target mean-targetKS approaches 1 (the target shard's local sample is poisoned) while mean-globalErr stays near the benign level — the other S-1 shards dilute the attack",
		"the merged verdict is bit-identical to a one-shot MaxDiscrepancy on the concatenated stream; see internal/shard's differential tests")
	return t
}
