package bench

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"robustsample/internal/adversary"
	"robustsample/internal/centerpoint"
	"robustsample/internal/cluster"
	"robustsample/internal/core"
	"robustsample/internal/detsamp"
	"robustsample/internal/distsim"
	"robustsample/internal/game"
	"robustsample/internal/heavyhitter"
	"robustsample/internal/quantile"
	"robustsample/internal/rangequery"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/stats"
)

// ExpE6 reproduces Corollary 1.5: the robust reservoir sample answers all
// rank queries within eps*n, compared against the deterministic GK sketch
// and the (static-optimal, not robust) KLL sketch, under static and
// adaptive streams.
func ExpE6(cfg Config) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Robust quantile sketches: sample vs GK vs KLL",
		Source:  "Corollary 1.5; [GK01]; [KLL16]",
		Columns: []string{"sketch", "workload", "space", "mean-maxRankErr", "max-maxRankErr", "target-eps"},
	}
	root := rng.New(cfg.Seed + 10)
	n := cfg.scaled(20000, 1000)
	eps, delta := 0.1, 0.1
	k := core.QuantileSketchSize(core.Params{Eps: eps, Delta: delta, N: n}, expUniverse)

	workloads := []struct {
		name string
		gen  func(r *rng.RNG) []int64
	}{
		{"static-uniform", func(r *rng.RNG) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = 1 + r.Int63n(expUniverse)
			}
			return out
		}},
		{"static-sorted", func(r *rng.RNG) []int64 {
			out := make([]int64, n)
			for i := range out {
				out[i] = 1 + int64(i)*(expUniverse-1)/int64(n)
			}
			return out
		}},
		{"adaptive-bisection", nil}, // handled specially: needs admission feedback
	}

	type sketchCase struct {
		name string
		mk   func(r *rng.RNG) quantile.Sketch
	}
	sketches := []sketchCase{
		{"reservoir-sample", func(r *rng.RNG) quantile.Sketch { return quantile.NewReservoirSketch(k, r) }},
		{"gk", func(*rng.RNG) quantile.Sketch { return quantile.NewGK(eps) }},
		{"kll", func(r *rng.RNG) quantile.Sketch { return quantile.NewKLL(2*int(1/eps)*10, r) }},
	}

	for _, sk := range sketches {
		for _, wl := range workloads {
			errs := make([]float64, cfg.trials())
			spaces := make([]int, cfg.trials())
			cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
				s := sk.mk(r.Split())
				var stream []int64
				if wl.gen != nil {
					stream = wl.gen(r)
					for _, x := range stream {
						s.Insert(x)
					}
				} else {
					// Adaptive: drive the bisection attack against the
					// reservoir sketch; against GK/KLL there is no sampling
					// randomness to adapt to, so feed the same attack
					// transcript shape generated against a side reservoir.
					side := sampler.NewReservoir[int64](k)
					adv := adversary.NewBisectionReservoir(expUniverse, n, k)
					adv.Reset()
					sideRNG := r.Split()
					advRNG := r.Split()
					lastAdmitted := false
					for i := 1; i <= n; i++ {
						obs := game.Observation{Round: i, N: n, Sample: side.View(), LastAdmitted: lastAdmitted, History: stream}
						x := adv.Next(obs, advRNG)
						stream = append(stream, x)
						lastAdmitted = side.Offer(x, sideRNG)
						s.Insert(x)
					}
				}
				errs[trial] = quantile.MaxRankError(s, stream)
				spaces[trial] = s.Size()
			})
			sum := stats.Summarize(errs)
			t.AddRow(sk.name, wl.name, spaces[cfg.trials()-1], sum.Mean, sum.Max, eps)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: every sketch stays within target-eps on every workload here (the reservoir by Cor 1.5, GK by determinism, KLL because the bounded-universe attack cannot exploit it at this scale)",
		fmt.Sprintf("robust reservoir size k=%d from Corollary 1.5 with |U|=2^20", k))
	return t
}

// ExpE7 reproduces Corollary 1.6: heavy hitters under the adaptive
// inflation attack and a static Zipf workload, for robust-sized and
// under-sized samples plus the deterministic baselines.
func ExpE7(cfg Config) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Heavy hitters under adaptive inflation",
		Source:  "Corollary 1.6; Misra-Gries; SpaceSaving",
		Columns: []string{"summary", "space", "workload", "violation-rate", "mean-FP", "mean-FN"},
	}
	root := rng.New(cfg.Seed + 11)
	n := cfg.scaled(20000, 1000)
	alpha, eps, delta := 0.1, 0.06, 0.1
	universe := int64(100000)
	robustK := core.HeavyHitterSize(eps, delta, n, universe)
	smallK := 30
	m := int(math.Ceil(3 / eps))

	type summaryCase struct {
		name  string
		space int
		mk    func(r *rng.RNG) heavyhitter.Summary
	}
	cases := []summaryCase{
		{"sample-robust", robustK, func(r *rng.RNG) heavyhitter.Summary { return must(heavyhitter.NewSampleHH(robustK, eps, r)) }},
		{"sample-tiny", smallK, func(r *rng.RNG) heavyhitter.Summary { return must(heavyhitter.NewSampleHH(smallK, eps, r)) }},
		{"misra-gries", m, func(*rng.RNG) heavyhitter.Summary { return must(heavyhitter.NewMisraGries(m)) }},
		{"space-saving", m, func(*rng.RNG) heavyhitter.Summary { return must(heavyhitter.NewSpaceSaving(m)) }},
	}
	workloads := []string{"static-zipf", "adaptive-inflation"}

	for _, c := range cases {
		for _, wl := range workloads {
			incorrect := make([]bool, cfg.trials())
			trialFPs := make([]int, cfg.trials())
			trialFNs := make([]int, cfg.trials())
			cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
				s := c.mk(r.Split())
				var stream []int64
				switch wl {
				case "static-zipf":
					z := rng.NewZipf(universe, 1.3)
					for i := 0; i < n; i++ {
						x := z.Draw(r)
						stream = append(stream, x)
						s.Insert(x)
					}
				case "adaptive-inflation":
					// Mix: a Zipf background plus an adaptive inflator
					// targeting value 7 with budget below alpha-eps.
					z := rng.NewZipf(universe, 1.3)
					target := int64(7)
					budget := int(float64(n) * (alpha - eps) * 0.8)
					sent := 0
					for i := 0; i < n; i++ {
						var x int64
						if sent < budget && s.EstimateDensity(target) < alpha {
							x = target
							sent++
						} else {
							x = z.Draw(r)
						}
						stream = append(stream, x)
						s.Insert(x)
					}
				}
				ev := heavyhitter.Evaluate(stream, s.Report(alpha), alpha, eps)
				incorrect[trial] = !ev.Correct()
				trialFPs[trial] = ev.FalsePositives
				trialFNs[trial] = ev.FalseNegatives
			})
			violations := countTrue(incorrect)
			fps, fns := 0, 0
			for trial := range trialFPs {
				fps += trialFPs[trial]
				fns += trialFNs[trial]
			}
			tr := float64(cfg.trials())
			t.AddRow(c.name, c.space, wl, float64(violations)/tr, float64(fps)/tr, float64(fns)/tr)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: sample-robust, misra-gries and space-saving have violation-rate <= delta on both workloads; sample-tiny shows substantially more violations",
		fmt.Sprintf("alpha=%.2f eps=%.2f robust k=%d (capped at n when the Cor 1.6 bound exceeds the stream) vs tiny k=%d vs %d deterministic counters", alpha, eps, robustK, smallK, m))
	return t
}

// ExpE8 reproduces the range-query application: robust reservoir samples
// answer every axis-aligned box count within eps*n on [m]^d grids, even
// against the adaptive corner stuffer; sample size scales with d*ln(m).
func ExpE8(cfg Config) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Range queries over [m]^d under adaptive corner stuffing",
		Source:  "Section 1.2, range queries; ln|R| = O(d ln m)",
		Columns: []string{"d", "m", "ln|R|", "k", "workload", "mean-err", "max-err", "eps"},
	}
	root := rng.New(cfg.Seed + 12)
	n := cfg.scaled(5000, 500)
	eps, delta := 0.15, 0.1
	grids := []rangequery.Grid{
		rangequery.NewGrid(32, 1),
		rangequery.NewGrid(16, 2),
		rangequery.NewGrid(8, 3),
	}
	for _, g := range grids {
		k := int(math.Ceil(2 * (g.LogCardinality() + math.Log(2/delta)) / (eps * eps)))
		for _, wl := range []string{"uniform", "corner-stuffer"} {
			errs := make([]float64, cfg.trials())
			cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
				res := sampler.NewReservoir[rangequery.Point](k)
				cs := rangequery.NewCornerStuffer(g)
				var stream []rangequery.Point
				for i := 0; i < n; i++ {
					var p rangequery.Point
					if wl == "uniform" {
						p = g.RandomPoint(r)
					} else {
						p = cs.Next(res.View(), r)
					}
					stream = append(stream, p)
					res.Offer(p, r)
				}
				err, _ := rangequery.MaxBoxDiscrepancy(g, stream, res.View())
				errs[trial] = err
			})
			sum := stats.Summarize(errs)
			t.AddRow(g.D, g.M, g.LogCardinality(), k, wl, sum.Mean, sum.Max, eps)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: max-err <= eps in every row; k grows linearly in d*ln(m) as the paper's ln|R| accounting predicts")
	return t
}

// ExpE9 reproduces the beta-center-point application: the center computed
// on a robust sample retains (up to the halfspace discrepancy) its depth in
// the full stream, per [CEM+96, Lemma 6.1] as used in Section 1.2.
func ExpE9(cfg Config) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Beta-center points from robust samples",
		Source:  "Section 1.2, center points; [CEM+96] Lemma 6.1",
		Columns: []string{"n", "k", "mean depth(S)", "mean depth(X)", "mean halfspace-eps", "transfer-violations"},
	}
	root := rng.New(cfg.Seed + 13)
	for _, spec := range []struct{ n, k int }{{2000, 100}, {2000, 400}, {8000, 400}} {
		n := cfg.scaled(spec.n, 300)
		dS := make([]float64, cfg.trials())
		dX := make([]float64, cfg.trials())
		epsList := make([]float64, cfg.trials())
		violatedT := make([]bool, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			stream := make([]centerpoint.Point2, n)
			res := sampler.NewReservoir[centerpoint.Point2](spec.k)
			for i := range stream {
				stream[i] = centerpoint.Point2{X: r.NormFloat64(), Y: r.NormFloat64()}
				res.Offer(stream[i], r)
			}
			c, depthS := centerpoint.Center2D(res.View())
			depthX := centerpoint.Depth2D(c, stream)
			eps := centerpoint.HalfspaceDiscrepancy2D(stream, res.View(), 64, r)
			dS[trial] = depthS
			dX[trial] = depthX
			epsList[trial] = eps
			violatedT[trial] = depthX < depthS-eps-1e-9
		})
		violations := countTrue(violatedT)
		t.AddRow(n, spec.k, stats.Mean(dS), stats.Mean(dX), stats.Mean(epsList), violations)
	}
	t.Notes = append(t.Notes,
		"expected shape: depth(X) >= depth(S) - eps in every trial (transfer-violations = 0); both depths sit near the 2-D centerpoint bound 1/3 or above")
	return t
}

// ExpE12 reproduces the distributed-database illustration: per-server
// representativeness under benign, drifting, and adaptive workloads, with
// the bounded-universe defense row.
func ExpE12(cfg Config) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Distributed query routing under adaptive clients",
		Source:  "Section 1.2, sampling in modern data-processing systems",
		Columns: []string{"workload", "K", "n", "mean targetKS", "max targetKS", "predicted-eps"},
	}
	root := rng.New(cfg.Seed + 14)
	n := cfg.scaled(20000, 2000)
	logCard := math.Log(float64(expUniverse))
	for _, k := range []int{4, 8} {
		predicted := distsim.PredictedEps(k, n, logCard, 0.1)
		runs := []struct {
			name string
			run  func(r *rng.RNG) distsim.Outcome
		}{
			{"uniform", func(r *rng.RNG) distsim.Outcome { return distsim.RunUniform(k, n, expUniverse, r) }},
			{"drift", func(r *rng.RNG) distsim.Outcome { return distsim.RunDrift(k, n, expUniverse, r) }},
			{"adaptive-unbounded", func(r *rng.RNG) distsim.Outcome { return distsim.RunAdaptiveAttack(k, n, r) }},
			{"adaptive-bounded-U", func(r *rng.RNG) distsim.Outcome { return distsim.RunBoundedAdaptiveAttack(k, n, expUniverse, r) }},
		}
		for _, ru := range runs {
			kss := make([]float64, cfg.trials())
			cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
				kss[trial] = ru.run(r).TargetKS
			})
			sum := stats.Summarize(kss)
			t.AddRow(ru.name, k, n, sum.Mean, sum.Max, predicted)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: uniform/drift/bounded rows stay below predicted-eps; the unbounded adaptive client drives the target server's KS toward 1 - 1/K",
		"the bounded row is the paper's answer to 'is random sampling a risk?': with realistic (bounded) universes, Theorem 1.2 caps the damage")
	return t
}

// ExpE13 reproduces the clustering-acceleration pipeline: k-means on a
// reservoir sample matches k-means on the full stream (cost ratio ~1),
// regardless of adversarial stream order.
func ExpE13(cfg Config) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Clustering acceleration via robust sampling",
		Source:  "Section 1.2, clustering",
		Columns: []string{"order", "sample-k", "mean cost-ratio", "max cost-ratio"},
	}
	root := rng.New(cfg.Seed + 15)
	n := cfg.scaled(8000, 1000)
	const blobs = 4
	for _, order := range []string{"random", "sorted-by-cluster"} {
		for _, k := range []int{50, 200, 800} {
			ratios := make([]float64, cfg.trials())
			cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
				stream := cluster.GaussianMixture(n, blobs, 40, r.Split())
				if order == "sorted-by-cluster" {
					// Adversarial presentation order: all of blob 0,
					// then blob 1, ... (sorted by angle).
					sortByAngle(stream)
				}
				res := sampler.NewReservoir[cluster.Point](k)
				sr := r.Split()
				for _, p := range stream {
					res.Offer(p, sr)
				}
				ratios[trial] = cluster.CostRatio(stream, res.View(), blobs, 50, r.Split())
			})
			sum := stats.Summarize(ratios)
			t.AddRow(order, k, sum.Mean, sum.Max)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: cost ratios near 1 at moderate k regardless of presentation order (reservoir samples are order-oblivious), degrading gracefully at tiny k")
	return t
}

func sortByAngle(pts []cluster.Point) {
	slices.SortFunc(pts, func(a, b cluster.Point) int {
		return cmp.Compare(math.Atan2(a.Y, a.X), math.Atan2(b.Y, b.X))
	})
}

// ExpE14 compares the deterministic merge-reduce summary with the
// randomized robust reservoir at equal error targets: space, error, and the
// number of stream elements the downstream consumer must process.
func ExpE14(cfg Config) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Deterministic merge-reduce vs randomized robust sampling",
		Source:  "Section 1.1 comparison to deterministic algorithms ([BCEG07] analogue)",
		Columns: []string{"eps", "method", "space", "mean-err", "max-err", "robust?"},
	}
	root := rng.New(cfg.Seed + 16)
	n := cfg.scaled(40000, 2000)
	sys := setsystem.NewPrefixes(expUniverse)
	for _, eps := range []float64{0.05, 0.02} {
		// Deterministic summary.
		detErrs := make([]float64, cfg.trials())
		detSpaces := make([]int, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			m := must(detsamp.NewForEps(eps, n))
			stream := make([]int64, n)
			for i := range stream {
				stream[i] = 1 + r.Int63n(expUniverse)
				m.Insert(stream[i])
			}
			detErrs[trial] = detsamp.PrefixDiscrepancy(stream, m.WeightedValues())
			detSpaces[trial] = m.Size()
		})
		detSum := stats.Summarize(detErrs)
		t.AddRow(eps, "merge-reduce(det)", detSpaces[cfg.trials()-1], detSum.Mean, detSum.Max, "always (deterministic)")

		// Randomized robust reservoir.
		k := core.ReservoirSize(core.Params{Eps: eps, Delta: 0.1, N: n}, sys.LogCardinality())
		rndErrs := make([]float64, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			res := sampler.NewReservoir[int64](k)
			stream := make([]int64, n)
			for i := range stream {
				stream[i] = 1 + r.Int63n(expUniverse)
				res.Offer(stream[i], r)
			}
			rndErrs[trial] = sys.MaxDiscrepancy(stream, res.View()).Err
		})
		rndSum := stats.Summarize(rndErrs)
		t.AddRow(eps, "reservoir(thm1.2)", k, rndSum.Mean, rndSum.Max, "whp vs adaptive adversaries")
	}
	t.Notes = append(t.Notes,
		"expected shape: both stay within eps; deterministic space carries the log(n) factor while the reservoir carries ln|R|/eps^2 — the trade-off Section 1.1 describes",
		"at small eps the Theorem 1.2 reservoir size can reach n (the sample stores the whole stream) while merge-reduce still compresses — the regime where the paper concedes deterministic methods win on space",
		"the sampling methods also touch only |S| elements downstream, the query-complexity advantage of Section 1.2")
	return t
}

// ExpE16 exercises the weighted-reservoir extension ([ES06], Section 1.3):
// inclusion probabilities track weights even when weights are assigned
// adaptively based on the current sample.
func ExpE16(cfg Config) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "Weighted reservoir sampling under adaptive weights",
		Source:  "Section 1.3, weighted reservoir sampling [ES06, BOV15]",
		Columns: []string{"weighting", "heavy-w", "P[heavy in S]", "P[light in S]", "ratio", "ideal-ratio"},
	}
	root := rng.New(cfg.Seed + 17)
	n := cfg.scaled(2000, 500)
	k := 20
	for _, heavyW := range []float64{4, 16} {
		for _, mode := range []string{"static", "adaptive"} {
			type tally struct{ heavyIn, lightIn, heavyTotal, lightTotal int }
			tallies := make([]tally, cfg.trials())
			cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
				w := sampler.NewWeightedReservoir[int64](k)
				// Element i has id i; every 50th element is "heavy".
				for i := 0; i < n; i++ {
					weight := 1.0
					if i%50 == 0 {
						weight = heavyW
						if mode == "adaptive" {
							// Adversarial weighting: halve the weight
							// when the sample already holds many heavy
							// elements (trying to starve them).
							heavyCount := 0
							for _, v := range w.View() {
								if v%50 == 0 {
									heavyCount++
								}
							}
							if heavyCount > k/4 {
								weight = heavyW / 2
							}
						}
					}
					w.Offer(int64(i), weight, r)
				}
				inSample := make(map[int64]bool)
				for _, v := range w.View() {
					inSample[v] = true
				}
				for i := 0; i < n; i++ {
					if i%50 == 0 {
						tallies[trial].heavyTotal++
						if inSample[int64(i)] {
							tallies[trial].heavyIn++
						}
					} else {
						tallies[trial].lightTotal++
						if inSample[int64(i)] {
							tallies[trial].lightIn++
						}
					}
				}
			})
			heavyIn, lightIn := 0, 0
			heavyTotal, lightTotal := 0, 0
			for _, tl := range tallies {
				heavyIn += tl.heavyIn
				lightIn += tl.lightIn
				heavyTotal += tl.heavyTotal
				lightTotal += tl.lightTotal
			}
			pHeavy := float64(heavyIn) / float64(heavyTotal)
			pLight := float64(lightIn) / float64(lightTotal)
			ratio := math.Inf(1)
			if pLight > 0 {
				ratio = pHeavy / pLight
			}
			t.AddRow(mode, heavyW, pHeavy, pLight, ratio, heavyW)
		}

		// Continuous arm: the weighted reservoir plays a full
		// ContinuousAdaptiveGame, its per-checkpoint exact verdicts served
		// by the incremental accumulator through the sampler's LastDelta
		// (root displacements reported as evictions) — the O(1) sync path,
		// not the per-checkpoint View-rebuild fallback. The reported
		// number is the mean maximal prefix error: weight-skewed samples
		// are intentionally non-uniform. A dedicated root keeps the
		// static/adaptive rows on their historical RNG stream.
		contRoot := rng.New(cfg.Seed + 170 + uint64(heavyW))
		sys := setsystem.NewPrefixes(expUniverse)
		cps := game.MustCheckpoints(k, n, 0.25)
		maxErrs := make([]float64, cfg.trials())
		cfg.forEachTrial(contRoot, func(trial int, r *rng.RNG) {
			ws := &weightedGameSampler{
				inner: sampler.NewWeightedReservoir[int64](k),
				weight: func(x int64) float64 {
					if x%50 == 0 {
						return heavyW
					}
					return 1
				},
			}
			res := game.RunContinuous(ws, adversary.NewStaticUniform(expUniverse), sys, n, 0.5, cps, r)
			maxErrs[trial] = res.MaxPrefixErr
		})
		t.AddRow("continuous", heavyW, stats.Mean(maxErrs), "-", "-", "-")
	}
	t.Notes = append(t.Notes,
		"expected shape: inclusion ratio tracks the weight ratio (sub-proportionally at large k/n); adaptive down-weighting reduces but does not invert the ordering",
		"continuous rows report mean max-prefix-err of the weighted sample over the Theorem 1.4 checkpoint grid (verdicts via the incremental delta path); weight skew biases the sample, so the prefix error sits well above a uniform reservoir's at the same k")
	return t
}

// weightedGameSampler adapts the weighted reservoir to the game.Sampler
// interface with a value-dependent weight rule; forwarding LastDelta keeps
// RunContinuous on the incremental accumulator path.
type weightedGameSampler struct {
	inner  *sampler.WeightedReservoir[int64]
	weight func(x int64) float64
}

func (w *weightedGameSampler) Offer(x int64, r *rng.RNG) bool {
	return w.inner.Offer(x, w.weight(x), r)
}
func (w *weightedGameSampler) View() []int64                       { return w.inner.View() }
func (w *weightedGameSampler) Len() int                            { return w.inner.Len() }
func (w *weightedGameSampler) Reset()                              { w.inner.Reset() }
func (w *weightedGameSampler) LastDelta() (added, removed []int64) { return w.inner.LastDelta() }
