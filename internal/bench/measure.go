package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// BenchParams records the configuration a measurement ran under, so a
// BENCH_*.json file is self-describing and two files are comparable only
// when their parameters match.
type BenchParams struct {
	Seed    uint64  `json:"seed"`
	Trials  int     `json:"trials"`
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`
	Shards  int     `json:"shards,omitempty"`
	Chunk   int     `json:"chunk,omitempty"`
}

// BenchResult is one machine-readable measurement: a full experiment run
// treated as one op. NsPerOp is wall-clock; AllocsPerOp counts heap
// allocations (runtime mallocs) during the run. Together with the params
// block this is what the repository's perf trajectory (BENCH_*.json)
// records per PR.
type BenchResult struct {
	Name        string      `json:"name"`
	NsPerOp     int64       `json:"ns_per_op"`
	AllocsPerOp uint64      `json:"allocs_per_op"`
	BytesPerOp  uint64      `json:"bytes_per_op"`
	Params      BenchParams `json:"params"`
}

// Measure runs each experiment once under cfg and returns timing and
// allocation measurements. The experiments themselves are deterministic
// functions of cfg; only the ns_per_op field varies run to run.
func Measure(cfg Config, exps []Experiment, chunk int) []BenchResult {
	params := BenchParams{
		Seed:    cfg.Seed,
		Trials:  cfg.trials(),
		Scale:   cfg.Scale,
		Workers: cfg.Workers,
		Shards:  cfg.Shards,
		Chunk:   chunk,
	}
	results := make([]BenchResult, 0, len(exps))
	var before, after runtime.MemStats
	for _, e := range exps {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		e.Run(cfg)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		results = append(results, BenchResult{
			Name:        e.ID,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: after.Mallocs - before.Mallocs,
			BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
			Params:      params,
		})
	}
	return results
}

// WriteJSON renders measurements as indented JSON (one array, stable field
// order) suitable for committing as BENCH_*.json.
func WriteJSON(w io.Writer, results []BenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
