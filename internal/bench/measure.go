package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// BenchParams records the configuration a measurement ran under, so a
// BENCH_*.json file is self-describing and two files are comparable only
// when their parameters match.
type BenchParams struct {
	Seed    uint64  `json:"seed"`
	Trials  int     `json:"trials"`
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`
	Shards  int     `json:"shards,omitempty"`
	Chunk   int     `json:"chunk,omitempty"`
	// Producers tags the ConcurrentIngest scaling curve: the lane count
	// the entry was measured at.
	Producers int `json:"producers,omitempty"`
	// LatencyNs records the modeled client round-trip each producer lane
	// pays per batch in the ConcurrentIngest benchmark, so the curve is
	// self-describing (see internal/bench exp_serving.go).
	LatencyNs int64 `json:"latency_ns,omitempty"`
	// N is the element count a ConcurrentIngest entry ingested.
	N int `json:"n,omitempty"`
	// BytesPerElem is the modeled per-element memory traffic of the live
	// ingest path (see servingBytesPerElem) — the numerator of the
	// roofline figure.
	BytesPerElem int `json:"bytes_per_elem,omitempty"`
	// CopyGBps is the machine's measured large-block copy bandwidth in
	// GB/s, the roofline denominator: BytesPerElem / CopyGBps is the
	// bandwidth floor in ns/elem that ns_per_op should approach as
	// per-element CPU overhead is amortized away.
	CopyGBps float64 `json:"copy_gbps,omitempty"`
	// Checkpoint tags the ConcurrentIngestCkpt overhead arm: the crash-
	// supervision checkpoint interval the entry was measured at (0 or
	// absent = supervision disabled).
	Checkpoint int `json:"checkpoint,omitempty"`
	// Tenants tags a FarmIngest entry with the tenant count it was measured
	// at; TenantSkew with the Zipf exponent of its tenant id distribution.
	Tenants    int     `json:"tenants,omitempty"`
	TenantSkew float64 `json:"tenant_skew,omitempty"`
	// TenantsPerGB is the farm's measured tenant density (populated-farm
	// heap bytes per tenant, inverted); HydrateP99Ns the 99th-percentile
	// hydration stall of the eviction-churn arm.
	TenantsPerGB float64 `json:"tenants_per_gb,omitempty"`
	HydrateP99Ns int64   `json:"hydrate_p99_ns,omitempty"`
}

// BenchResult is one machine-readable measurement: a full experiment run
// treated as one op. NsPerOp is wall-clock; AllocsPerOp counts heap
// allocations (runtime mallocs) during the run. Together with the params
// block this is what the repository's perf trajectory (BENCH_*.json)
// records per PR.
type BenchResult struct {
	Name        string      `json:"name"`
	NsPerOp     int64       `json:"ns_per_op"`
	AllocsPerOp uint64      `json:"allocs_per_op"`
	BytesPerOp  uint64      `json:"bytes_per_op"`
	Params      BenchParams `json:"params"`
}

// Measure runs each experiment once under cfg and returns timing and
// allocation measurements. The experiments themselves are deterministic
// functions of cfg; only the ns_per_op field varies run to run.
func Measure(cfg Config, exps []Experiment, chunk int) []BenchResult {
	params := BenchParams{
		Seed:    cfg.Seed,
		Trials:  cfg.trials(),
		Scale:   cfg.Scale,
		Workers: cfg.Workers,
		Shards:  cfg.Shards,
		Chunk:   chunk,
	}
	results := make([]BenchResult, 0, len(exps))
	var before, after runtime.MemStats
	for _, e := range exps {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		e.Run(cfg)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		results = append(results, BenchResult{
			Name:        e.ID,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: after.Mallocs - before.Mallocs,
			BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
			Params:      params,
		})
	}
	return results
}

// measureCopyGBps measures the machine's large-block copy bandwidth (best
// of a few 32 MiB copies), the roofline denominator recorded alongside the
// ConcurrentIngest curve.
func measureCopyGBps() float64 {
	const size = 32 << 20
	src := make([]byte, size)
	dst := make([]byte, size)
	for i := range src {
		src[i] = byte(i)
	}
	best := 0.0
	for t := 0; t < 3; t++ {
		start := time.Now()
		copy(dst, src)
		if gbps := float64(size) / time.Since(start).Seconds() / 1e9; gbps > best {
			best = gbps
		}
	}
	return best
}

// MeasureConcurrentIngest measures the dense-regime serving benchmark at
// every producer count in the sweep and returns one ConcurrentIngest entry
// per count: ns_per_op is wall-clock per ingested element (throughput =
// 1e9 / ns_per_op elements/sec), with the lane count, element count, the
// modeled per-batch client latency, and the roofline pair (modeled
// bytes/elem, measured copy GB/s) recorded in the params block. This is
// the throughput-vs-producers scaling curve of the perf trajectory.
func MeasureConcurrentIngest(cfg Config) []BenchResult {
	return measureIngestCurve(cfg, "ConcurrentIngest", 0)
}

// ckptEvery is the checkpoint interval of the supervised overhead arm: one
// per-shard state snapshot per 4096 applied elements, the serving default.
const ckptEvery = 4096

// MeasureConcurrentIngestCkpt is MeasureConcurrentIngest with crash
// supervision enabled (checkpoint interval ckptEvery): the same sweep under
// the name ConcurrentIngestCkpt, so the checkpointing overhead is the
// per-point delta against the ConcurrentIngest entries and neither curve's
// baseline gate ever matches the other.
func MeasureConcurrentIngestCkpt(cfg Config) []BenchResult {
	return measureIngestCurve(cfg, "ConcurrentIngestCkpt", ckptEvery)
}

func measureIngestCurve(cfg Config, name string, checkpointEvery int) []BenchResult {
	tn := cfg.scaled(1<<18, 1<<13)
	copyGBps := measureCopyGBps()
	results := make([]BenchResult, 0, 6)
	for _, P := range cfg.producerCounts() {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		elapsed, total := measureServingIngest(tn, P, checkpointEvery)
		runtime.ReadMemStats(&after)
		results = append(results, BenchResult{
			Name:        name,
			NsPerOp:     elapsed.Nanoseconds() / int64(total),
			AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(total),
			BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(total),
			Params: BenchParams{
				Seed:         cfg.Seed,
				Trials:       cfg.trials(),
				Scale:        cfg.Scale,
				Workers:      cfg.Workers,
				Producers:    P,
				LatencyNs:    servingLatency.Nanoseconds(),
				N:            total,
				BytesPerElem: servingBytesPerElem,
				CopyGBps:     copyGBps,
				Checkpoint:   checkpointEvery,
			},
		})
	}
	return results
}

// WriteJSON renders measurements as indented JSON (one array, stable field
// order) suitable for committing as BENCH_*.json.
func WriteJSON(w io.Writer, results []BenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
