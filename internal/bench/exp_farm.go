package bench

// E22 measures the multi-tenant sketch farm (package farm): tenant density
// in bytes, steady-state keyed-ingest cost with the whole population hot,
// and the hydration tax when the hot budget is an eighth of the population.
// The paper's Section 1.2 applications (distributed query routing, per-key
// robust samples) need one sampler per logical stream; the farm is the
// serving form of that — a process holding ~10^6 independent reservoir
// states in flat slab slots.

import (
	"runtime"
	"time"

	"robustsample/farm"
	"robustsample/internal/rng"
	"robustsample/sketch"
)

// Farm experiment parameters: reservoir capacity per tenant, farm shard
// count, the element universe tenants sample over, and the keyed batch
// size of the ingest loops.
const (
	farmK        = 16
	farmShards   = 32
	farmUniverse = int64(1 << 20)
	farmBatch    = 512
)

// tenantCounts returns the tenant ladder of the farm experiment E22:
// cfg.Tenants pins a single point, otherwise the reference ladder
// {1e3, 1e5, 1e6} scaled by cfg.Scale (floor 64, duplicates collapsed).
func (c Config) tenantCounts() []int {
	if c.Tenants > 0 {
		return []int{c.Tenants}
	}
	ladder := []int{1_000, 100_000, 1_000_000}
	uniq := make([]int, 0, len(ladder))
	for _, n := range ladder {
		v := c.scaled(n, 64)
		if len(uniq) == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// tenantSkew returns the Zipf exponent of the tenant id distribution; 0
// (unset) uses the reference skew 1.1 — hot heads, a long cold tail, the
// shape that exercises both the all-hot fast path and eviction churn.
func (c Config) tenantSkew() float64 {
	if c.TenantSkew > 0 {
		return c.TenantSkew
	}
	return 1.1
}

// farmPoint is one measured tenant-count point of the E22 ladder.
type farmPoint struct {
	tenants        int
	bytesPerTenant float64
	tenantsPerGB   float64
	hotNs          float64 // steady-state ns/elem, whole population hot
	hotAllocs      uint64  // heap allocations per element on that path
	hotBytes       uint64  // heap bytes per element on that path
	churnNs        float64 // ns/elem with hot budget = population/8
	hydrations     uint64
	hydrateP99     time.Duration
}

// measureFarmPoint builds, populates and measures one farm of the given
// tenant count. Three arms, every workload pre-generated outside the
// measured windows:
//
//   - memory: heap growth attributable to the fully populated farm
//     (slab slots, entry table and index included), inverted into
//     tenants/GB;
//   - hot: steady-state Zipf-keyed Producer ingest with every tenant hot —
//     the path the hotpath annotations pin at zero allocations;
//   - churn: the same workload against a farm whose hot budget is an
//     eighth of the population, so the Zipf tail continually evicts and
//     hydrates; reports the hydration count and stall p99.
func measureFarmPoint(cfg Config, tenants int) farmPoint {
	u := must(sketch.NewInt64Universe(farmUniverse))
	pt := farmPoint{tenants: tenants}

	hotOps := cfg.scaled(1<<20, 1<<14)
	churnOps := cfg.scaled(1<<18, 1<<13)
	r := rng.NewWithStream(cfg.Seed, 22)
	z := rng.NewZipf(int64(tenants), cfg.tenantSkew())
	hotIDs := make([]farm.TenantID, hotOps)
	hotXs := make([]int64, hotOps)
	for i := range hotIDs {
		hotIDs[i] = farm.TenantID(z.Draw(r))
		hotXs[i] = r.Int63n(farmUniverse) + 1
	}
	churnIDs := make([]farm.TenantID, churnOps)
	churnXs := make([]int64, churnOps)
	for i := range churnIDs {
		churnIDs[i] = farm.TenantID(z.Draw(r))
		churnXs[i] = r.Int63n(farmUniverse) + 1
	}
	createIDs := make([]farm.TenantID, tenants)
	createXs := make([]int64, tenants)
	for i := range createIDs {
		createIDs[i] = farm.TenantID(i + 1)
		createXs[i] = int64(i%int(farmUniverse)) + 1
	}
	populate := func(p *farm.Producer[int64]) {
		for off := 0; off < tenants; off += farmBatch {
			end := off + farmBatch
			if end > tenants {
				end = tenants
			}
			must(p.OfferBatch(createIDs[off:end], createXs[off:end]))
		}
	}

	// Memory arm: heap before vs after building and populating the farm.
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	f := must(farm.NewReservoirFarm(u, farmK, farm.WithSeed(cfg.Seed), farm.WithShards(farmShards)))
	p := f.NewProducer()
	populate(p)
	runtime.GC()
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc {
		pt.bytesPerTenant = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(tenants)
		pt.tenantsPerGB = 1e9 / pt.bytesPerTenant
	}

	// Hot arm: a short unmeasured pass sizes the producer scratch, then the
	// measured pass runs with every tenant resident.
	warm := 8 * farmBatch
	if warm > hotOps {
		warm = hotOps
	}
	for off := 0; off < warm; off += farmBatch {
		must(p.OfferBatch(hotIDs[off:off+farmBatch], hotXs[off:off+farmBatch]))
	}
	var b0, b1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&b0)
	start := time.Now()
	for off := 0; off < hotOps; off += farmBatch {
		end := off + farmBatch
		if end > hotOps {
			end = hotOps
		}
		must(p.OfferBatch(hotIDs[off:end], hotXs[off:end]))
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&b1)
	pt.hotNs = float64(elapsed.Nanoseconds()) / float64(hotOps)
	pt.hotAllocs = (b1.Mallocs - b0.Mallocs) / uint64(hotOps)
	pt.hotBytes = (b1.TotalAlloc - b0.TotalAlloc) / uint64(hotOps)
	f.Close()

	// Churn arm: the hot budget forces the Zipf tail through the
	// evict/hydrate cycle on every revisit.
	maxHot := tenants / 8
	if maxHot < 64 {
		maxHot = 64
	}
	g := must(farm.NewReservoirFarm(u, farmK,
		farm.WithSeed(cfg.Seed), farm.WithShards(farmShards), farm.WithMaxHotTenants(maxHot)))
	gp := g.NewProducer()
	populate(gp)
	start = time.Now()
	for off := 0; off < churnOps; off += farmBatch {
		end := off + farmBatch
		if end > churnOps {
			end = churnOps
		}
		must(gp.OfferBatch(churnIDs[off:end], churnXs[off:end]))
	}
	pt.churnNs = float64(time.Since(start).Nanoseconds()) / float64(churnOps)
	st := g.Stats()
	pt.hydrations = st.Hydrations
	pt.hydrateP99 = st.HydrateP99
	g.Close()
	return pt
}

// ExpE22 sweeps the tenant ladder and reports density, hot-path cost and
// hydration stalls per point.
func ExpE22(cfg Config) *Table {
	t := &Table{
		ID:     "E22",
		Title:  "Multi-tenant sketch farm: tenant density, keyed ingest, hydration stalls",
		Source: "Section 1.2 applications served at scale; DESIGN.md BENCH 10",
		Columns: []string{"tenants", "skew", "bytes/tenant", "tenants/GB",
			"hot ns/elem", "hot allocs/elem", "churn ns/elem", "hydrations", "hydrate-p99"},
	}
	for _, n := range cfg.tenantCounts() {
		pt := measureFarmPoint(cfg, n)
		t.AddRow(pt.tenants, cfg.tenantSkew(), pt.bytesPerTenant, pt.tenantsPerGB,
			pt.hotNs, pt.hotAllocs, pt.churnNs, pt.hydrations, pt.hydrateP99.String())
	}
	t.Notes = append(t.Notes,
		"hot ns/elem should stay near-flat up the ladder: tenant state is flat slab slots, so scale adds map lookups, not pointer chasing",
		"hot allocs/elem must be 0 — the keyed ingest path is hotpath-annotated and allocation-free at steady state",
		"the churn arm caps hot tenants at population/8: churn ns/elem pays the encode/decode hydration tax and hydrate-p99 is the stall's log2-bucket upper bound",
		"wall-clock cells vary run to run; the claims are the shape, the allocation count and the byte accounting",
	)
	return t
}

// MeasureFarm measures the farm keyed-ingest benchmark at every tenant
// count of the ladder and returns one FarmIngest entry per point: ns/op is
// the steady-state hot-path cost per element with the whole population
// resident, and allocs/op its heap allocation rate (0 at steady state).
// Tenant density and the churn arm's hydration stall p99 ride along in the
// params block. This is the tenant-scaling curve of the perf trajectory.
func MeasureFarm(cfg Config) []BenchResult {
	results := make([]BenchResult, 0, 3)
	for _, n := range cfg.tenantCounts() {
		pt := measureFarmPoint(cfg, n)
		results = append(results, BenchResult{
			Name:        "FarmIngest",
			NsPerOp:     int64(pt.hotNs),
			AllocsPerOp: pt.hotAllocs,
			BytesPerOp:  pt.hotBytes,
			Params: BenchParams{
				Seed:         cfg.Seed,
				Trials:       cfg.trials(),
				Scale:        cfg.Scale,
				Workers:      cfg.Workers,
				Tenants:      pt.tenants,
				TenantSkew:   cfg.tenantSkew(),
				TenantsPerGB: pt.tenantsPerGB,
				HydrateP99Ns: pt.hydrateP99.Nanoseconds(),
			},
		})
	}
	return results
}
