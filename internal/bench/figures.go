package bench

import (
	"robustsample/internal/adversary"
	"robustsample/internal/core"
	"robustsample/internal/game"
	"robustsample/internal/plot"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
)

// Figures render the experiment trajectories the tables summarize. The
// paper's own figures (1-3) are definitions and pseudocode, reproduced in
// this repository as the game and adversary implementations; F1 and F2 are
// the data figures a systems evaluation of the same claims would plot.

// Figure couples an ID with its renderer.
type Figure struct {
	// ID is the figure identifier (F1, F2).
	ID string
	// Title is a one-line description.
	Title string
	// Render builds the chart.
	Render func(cfg Config) *plot.Chart
}

// Figures returns all figures in ID order.
func Figures() []Figure {
	return []Figure{
		{"F1", "Continuous-game error trajectory: plain Thm 1.2 size vs Thm 1.4 size", FigF1},
		{"F2", "Prefix error growth along the Section 5 attack", FigF2},
	}
}

// FigureByID finds a figure by its identifier.
func FigureByID(id string) (Figure, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// FigF1 plots the exact prefix-approximation error over the course of one
// continuous adaptive game for two reservoir sizes: the plain Theorem 1.2
// size and the Theorem 1.4 continuous size. The eps threshold is drawn as a
// reference line; the Theorem 1.4 curve stays far below it at every round.
func FigF1(cfg Config) *plot.Chart {
	root := rng.New(cfg.Seed + 100)
	n := cfg.scaled(20000, 1000)
	// eps = 0.3 keeps the Theorem 1.4 size well below n so both curves
	// have a full trajectory (at smaller eps the continuous size reaches
	// the whole stream and the curve degenerates to a point at zero).
	eps, delta := 0.3, 0.1
	sys := setsystem.NewPrefixes(expUniverse)
	p := core.Params{Eps: eps, Delta: delta, N: n}

	run := func(k int) plot.Series {
		cps := game.MustCheckpoints(k, n, eps/8)
		res := game.RunContinuous(
			sampler.NewReservoir[int64](k),
			adversary.NewStaticUniform(expUniverse),
			sys, n, eps, cps, root.Split(),
		)
		s := plot.Series{}
		for _, pe := range res.PrefixErrors {
			s.X = append(s.X, float64(pe.Round))
			s.Y = append(s.Y, pe.Err)
		}
		return s
	}

	plain := core.ReservoirSize(p, sys.LogCardinality())
	cont := core.ContinuousReservoirSize(p, sys.LogCardinality())
	s1 := run(plain)
	s1.Name = "plain k (Thm 1.2)"
	s2 := run(cont)
	s2.Name = "continuous k (Thm 1.4)"

	return &plot.Chart{
		Title:  "F1: exact prefix error over the continuous game (Theorem 1.4)",
		XLabel: "round",
		YLabel: "eps-approximation error of the prefix",
		Series: []plot.Series{s1, s2},
		HLines: []plot.HLine{{Name: "target eps", Y: eps}},
	}
}

// FigF2 plots the exact prefix error along an exact bisection attack on an
// under-sized reservoir: the error climbs towards 1 - k'/n as the adversary
// confines the sample to ever-smaller elements.
func FigF2(cfg Config) *plot.Chart {
	root := rng.New(cfg.Seed + 101)
	n := cfg.scaled(10000, 1000)
	k := 10
	res := adversary.RunExactBisectionReservoir(n, k, root.Split())

	// Sample membership along the attack is not recorded round by round;
	// recompute the error at geometric checkpoints against the final
	// sample restricted to elements seen so far. For the attack this is
	// exact for the Bernoulli variant and a close proxy for reservoir
	// (evictions only shrink the sample's reach).
	sys := setsystem.NewPrefixes(int64(n))
	var s plot.Series
	s.Name = "attack on reservoir k=10"
	for _, cp := range game.MustCheckpoints(k, n, 0.1) {
		prefix := res.Stream[:cp]
		var sample []int64
		seen := make(map[int64]bool, cp)
		for _, v := range prefix {
			seen[v] = true
		}
		for _, v := range res.Sample {
			if seen[v] {
				sample = append(sample, v)
			}
		}
		d := sys.MaxDiscrepancy(prefix, sample)
		s.X = append(s.X, float64(cp))
		s.Y = append(s.Y, d.Err)
	}

	return &plot.Chart{
		Title:  "F2: prefix error growth under the Section 5 bisection attack",
		XLabel: "round",
		YLabel: "eps-approximation error of the prefix",
		Series: []plot.Series{s},
		HLines: []plot.HLine{{Name: "Theorem 1.3 threshold 1/2", Y: 0.5}},
	}
}
