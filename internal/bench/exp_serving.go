package bench

import (
	stdruntime "runtime"
	"slices"
	"sync"
	"time"

	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/shard"
)

// Serving-benchmark shape: a dense-regime stream (universe much smaller
// than the stream, the accumulator's dense path) ingested by the
// concurrent pipeline, with each producer lane modeling a client session
// that pays a service round-trip per batch. More lanes overlap more of
// that latency — the wrk-style throughput-vs-connections curve — and on a
// multi-core host the lock-free rings add true parallel scaling on top.
const (
	servingShards   = 4
	servingBatch    = 2048
	servingLatency  = 250 * time.Microsecond
	servingUniverse = int64(1) << 12
	servingMemory   = 256
)

// producerCounts returns the producer-lane sweep for the serving
// experiment: the default ladder, or exactly the points listed in
// Config.Producers (robustbench -producers 1,2,4).
func (c Config) producerCounts() []int {
	if len(c.Producers) == 0 {
		return []int{1, 2, 4, 8, 16, 32}
	}
	return c.Producers
}

// servingBytesPerElem is the modeled per-element memory traffic of the
// live-mode ingest path, the numerator of the roofline figure recorded in
// the ConcurrentIngest JSON entries. Each 8-byte element is, in order:
// read from the producer's stream slice (8); routed into the destination
// scratch (8w+8r); appended to a per-shard bucket (8w+8r); written to a
// ring cell and its sequence word published (16w), then both read back by
// the consumer (16r); copied into the consumer's apply chunk (8w+8r); and
// finally touched by the accumulator + reservoir admission (~16). Total
// ~104 bytes of traffic per 8-byte element — the pipeline is
// bandwidth-bound at roughly bytesPerElem / copyGBps ns/elem once
// per-element CPU overhead is amortized away.
const servingBytesPerElem = 104

func servingEngine(root *rng.RNG) *shard.Engine {
	return shard.New(shard.Config{
		Shards: servingShards,
		Router: shard.HashByValue{},
		System: setsystem.NewPrefixes(servingUniverse),
		NewSampler: func(int) game.Sampler {
			return sampler.NewReservoir[int64](servingMemory)
		},
		Workers: 1,
	}, root)
}

func servingStream(n int, seed uint64) []int64 {
	r := rng.New(seed)
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = 1 + r.Int63n(servingUniverse)
	}
	return xs
}

// pace blocks until deadline with cooperative yields instead of
// time.Sleep. On the 1-CPU reference container the timer wheel makes a
// 250us Sleep overshoot to ~1.2ms, which silently dominated the
// single-producer point of the scaling curve (the "589 ns/elem" of
// BENCH_PR5.json was ~90% timer overshoot, not pipeline work); yielding
// until the deadline keeps the modeled client latency honest while still
// handing the CPU to consumers.
func pace(deadline time.Time) {
	for time.Now().Before(deadline) {
		stdruntime.Gosched()
	}
}

// measureServingIngest drives one live-mode serving session at P producer
// lanes over a dense-regime stream of ~n elements and returns the wall
// time from first offer to drain barrier, plus the exact element count.
// Producer lanes wait out servingLatency before each batch (the modeled
// client round-trip), so the curve measures how the pipeline overlaps
// client latency with ingest. checkpointEvery > 0 additionally enables
// crash supervision (periodic per-shard snapshots), the overhead arm of
// the perf trajectory; 0 is the unsupervised baseline gated against
// BENCH_PR6.
func measureServingIngest(n, producers, checkpointEvery int) (elapsed time.Duration, total int) {
	eng := servingEngine(rng.New(77))
	srv, err := eng.Serve(shard.ServeConfig{
		Producers:       producers,
		RingSize:        4096,
		ChunkCap:        1024,
		CheckpointEvery: checkpointEvery,
	})
	if err != nil {
		panic(err)
	}
	perLane := n / producers
	lanes := make([][]int64, producers)
	for i := range lanes {
		lanes[i] = servingStream(perLane, uint64(7000+i))
		total += perLane
	}
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(producers)
	for i := 0; i < producers; i++ {
		go func(i int) {
			defer wg.Done()
			pr := srv.Producer(i)
			xs := lanes[i]
			for len(xs) > 0 {
				m := min(servingBatch, len(xs))
				pace(time.Now().Add(servingLatency)) // client service round-trip
				if err := pr.OfferBatch(xs[:m]); err != nil {
					panic(err)
				}
				xs = xs[m:]
			}
		}(i)
	}
	wg.Wait()
	srv.Flush()
	elapsed = time.Since(start)
	srv.Close()
	return elapsed, total
}

// ExpE19 exercises the concurrent serving runtime in both of its modes.
//
// The determinism arm stripes one stream across P producer lanes in
// deterministic (sequenced-routing) mode and checks the live verdict and
// union sample are byte-identical to serial ingest — the pipeline's
// correctness contract, pinned for every lane count in the sweep.
//
// The throughput arm runs live-mode ingest with concurrent client-modeled
// producers (see measureServingIngest) and reports the scaling curve. Its
// Melem/s and speedup columns are wall-clock measurements — the one table
// in the harness whose cells legitimately vary run to run; every other
// column is deterministic.
func ExpE19(cfg Config) *Table {
	t := &Table{
		ID:      "E19",
		Title:   "Concurrent serving runtime: pipeline determinism and throughput vs producers",
		Source:  "Section 1.3 (continuous/distributed monitoring); serving pipeline over [CTW16] mergeable state",
		Columns: []string{"arm", "P", "n", "S", "verdict-err", "identical", "Melem/s", "speedup"},
	}

	// Determinism arm: striped deterministic pipeline vs serial ingest.
	n := cfg.scaled(20000, 1000)
	stream := servingStream(n, cfg.Seed+19)
	serial := servingEngine(rng.New(cfg.Seed + 190))
	serial.Ingest(stream)
	wantV := serial.Verdict()
	wantSample := serial.Sample()
	for _, P := range cfg.producerCounts() {
		eng := servingEngine(rng.New(cfg.Seed + 190))
		srv, err := eng.Serve(shard.ServeConfig{Producers: P, Deterministic: true})
		if err != nil {
			panic(err)
		}
		var wg sync.WaitGroup
		wg.Add(P)
		for lane := 0; lane < P; lane++ {
			go func(lane int) {
				defer wg.Done()
				pr := srv.Producer(lane)
				for g := lane; g < len(stream); g += P {
					if err := pr.Offer(stream[g]); err != nil {
						panic(err)
					}
				}
				pr.Close()
			}(lane)
		}
		wg.Wait()
		srv.Flush()
		v := srv.Verdict()
		identical := v == wantV && slices.Equal(srv.Sample(), wantSample)
		srv.Close()
		t.AddRow("determinism", P, n, servingShards, v.Err, identical, "-", "-")
	}

	// Throughput arm: live mode under modeled client latency.
	tn := cfg.scaled(1<<18, 1<<13)
	base := 0.0
	for _, P := range cfg.producerCounts() {
		elapsed, total := measureServingIngest(tn, P, 0)
		rate := float64(total) / elapsed.Seconds() / 1e6
		if base == 0 {
			base = rate
		}
		t.AddRow("throughput", P, total, servingShards, "-", "-", rate, rate/base)
	}

	t.Notes = append(t.Notes,
		"expected shape: every determinism row reports identical=true — the sequenced pipeline reproduces serial ingest byte-for-byte at every producer count",
		"expected shape: throughput speedup grows with P while producers are latency-bound (each lane pays a 250us service round-trip per 2048-element batch) and saturates at the CPU ceiling",
		"throughput cells are wall-clock and vary run to run; all other cells are deterministic",
		"the machine-readable scaling curve (robustbench -json) emits one ConcurrentIngest entry per producer count with the latency parameter recorded")
	return t
}
