package bench

import (
	"fmt"
	"math"

	"robustsample/internal/adversary"
	"robustsample/internal/core"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/stats"
)

// expUniverse is the bounded universe used by the robustness experiments;
// ln|R| = 20 ln 2 for the prefix system.
const expUniverse = int64(1) << 20

// adversarySuite returns the adversaries the robustness rows sweep over.
func adversarySuite(n int) map[string]core.AdversaryFactory {
	return map[string]core.AdversaryFactory{
		"static-uniform": func() game.Adversary { return adversary.NewStaticUniform(expUniverse) },
		"static-sorted":  func() game.Adversary { return adversary.NewStaticSorted(expUniverse) },
		"bisection":      func() game.Adversary { return adversary.NewBisectionBernoulli(expUniverse, n, 0) },
		"median-pusher":  func() game.Adversary { return adversary.NewMedianPusher(expUniverse) },
	}
}

var adversaryOrder = []string{"static-uniform", "static-sorted", "bisection", "median-pusher"}

// ExpE1 reproduces Theorem 1.2 for BernoulliSample: at the prescribed rate
// p = 10(ln|R| + ln(4/delta))/(eps^2 n), the empirical failure probability
// of the eps-approximation must stay at or below delta for every adversary.
func ExpE1(cfg Config) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Bernoulli robustness at the Theorem 1.2 rate",
		Source:  "Theorem 1.2 (first bullet); prefix system over U = [2^20]",
		Columns: []string{"eps", "adversary", "p", "E[|S|]", "fail-rate", "mean-err", "max-err", "theory-delta"},
	}
	root := rng.New(cfg.Seed)
	sys := setsystem.NewPrefixes(expUniverse)
	n := cfg.scaled(20000, 500)
	delta := 0.1
	for _, eps := range []float64{0.1, 0.2, 0.3} {
		p := core.Params{Eps: eps, Delta: delta, N: n}
		rate := core.BernoulliRate(p, sys.LogCardinality())
		suite := adversarySuite(n)
		for _, name := range adversaryOrder {
			est := core.EstimateRobustnessWorkers(
				func() game.Sampler { return sampler.NewBernoulli[int64](rate) },
				suite[name], sys, p, cfg.trials(), cfg.Workers, root.Split(),
			)
			t.AddRow(eps, name, rate, rate*float64(n), est.Failure.Rate(), est.Errors.Mean, est.Errors.Max, delta)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: fail-rate <= theory-delta in every row; max-err typically well below eps (the bound has slack)",
		fmt.Sprintf("n=%d, trials=%d per row", n, cfg.trials()))
	return t
}

// ExpE2 is the reservoir analogue of E1 at k = 2(ln|R| + ln(2/delta))/eps^2.
func ExpE2(cfg Config) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Reservoir robustness at the Theorem 1.2 size",
		Source:  "Theorem 1.2 (second bullet); prefix system over U = [2^20]",
		Columns: []string{"eps", "adversary", "k", "fail-rate", "mean-err", "max-err", "theory-delta"},
	}
	root := rng.New(cfg.Seed + 1)
	sys := setsystem.NewPrefixes(expUniverse)
	n := cfg.scaled(20000, 500)
	delta := 0.1
	for _, eps := range []float64{0.1, 0.2, 0.3} {
		p := core.Params{Eps: eps, Delta: delta, N: n}
		k := core.ReservoirSize(p, sys.LogCardinality())
		suite := adversarySuite(n)
		for _, name := range adversaryOrder {
			est := core.EstimateRobustnessWorkers(
				func() game.Sampler { return sampler.NewReservoir[int64](k) },
				suite[name], sys, p, cfg.trials(), cfg.Workers, root.Split(),
			)
			t.AddRow(eps, name, k, est.Failure.Rate(), est.Errors.Mean, est.Errors.Max, delta)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: fail-rate <= theory-delta in every row",
		fmt.Sprintf("n=%d, trials=%d per row", n, cfg.trials()))
	return t
}

// ExpE3 reproduces the Section 5 attack on BernoulliSample over an
// unbounded universe (exact order-token simulation): the final sample is
// exactly the |S| smallest elements, so the prefix error is 1 - |S|/n,
// exceeding 1/2 whp. The required-ln(N) column shows why Theorem 1.3 needs
// |R| exponential in n: a direct integer simulation would need a universe
// far beyond 2^63.
func ExpE3(cfg Config) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Bisection attack breaks under-sized Bernoulli sampling",
		Source:  "Theorem 1.3(1), Section 5, Figure 3",
		Columns: []string{"n", "p", "E[|S|]", "frac err>1/2", "mean-err", "smallest-invariant", "required-lnN"},
	}
	root := rng.New(cfg.Seed + 2)
	for _, nBase := range []int{2000, 5000, 10000, 20000} {
		n := cfg.scaled(nBase, 200)
		p := 2 * math.Log(float64(n)) / float64(n)
		errs := make([]float64, cfg.trials())
		overHalf := make([]bool, cfg.trials())
		prefixOK := make([]bool, cfg.trials())
		sizes := make([]float64, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			res := adversary.RunExactBisectionBernoulli(n, p, r)
			d := setsystem.NewPrefixes(int64(n)).MaxDiscrepancy(res.Stream, res.Sample)
			errs[trial] = d.Err
			overHalf[trial] = d.Err > 0.5
			prefixOK[trial] = res.SampleIsPrefixOfAdmitted
			sizes[trial] = float64(len(res.Sample))
		})
		broke := countTrue(overHalf)
		invariant := countTrue(prefixOK)
		sizeSum := 0.0
		for _, s := range sizes {
			sizeSum += s
		}
		pp := math.Max(p, math.Log(float64(n))/float64(n))
		t.AddRow(n, p, sizeSum/float64(cfg.trials()),
			float64(broke)/float64(cfg.trials()), stats.Mean(errs),
			fmt.Sprintf("%d/%d", invariant, cfg.trials()),
			adversary.RequiredLogUniverse(n, pp))
	}
	t.Notes = append(t.Notes,
		"expected shape: frac err>1/2 ~= 1 at every n (Theorem 1.3 guarantees >= 1/2); smallest-invariant must be all trials",
		"required-lnN >> 43.7 = ln(2^63): the attack needs universes no int64 simulation can hold, matching the paper's 'theoretical only' discussion")
	return t
}

// ExpE4 is the reservoir attack: sample is confined to the k' smallest
// elements with k' <= 4k ln n whp, so the error is ~1 - k'/n.
func ExpE4(cfg Config) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Bisection attack breaks under-sized reservoir sampling",
		Source:  "Theorem 1.3(2), Section 5",
		Columns: []string{"n", "k", "mean-k'", "4k*ln(n)", "frac k'<=4klnn", "frac err>1/2", "mean-err"},
	}
	root := rng.New(cfg.Seed + 3)
	n := cfg.scaled(10000, 500)
	for _, k := range []int{5, 10, 20, 40} {
		errs := make([]float64, cfg.trials())
		overHalf := make([]bool, cfg.trials())
		inBound := make([]bool, cfg.trials())
		kPrimes := make([]float64, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			res := adversary.RunExactBisectionReservoir(n, k, r)
			d := setsystem.NewPrefixes(int64(n)).MaxDiscrepancy(res.Stream, res.Sample)
			errs[trial] = d.Err
			overHalf[trial] = d.Err > 0.5
			kPrimes[trial] = float64(res.TotalAdmitted)
			inBound[trial] = float64(res.TotalAdmitted) <= 4*float64(k)*math.Log(float64(n))
		})
		broke := countTrue(overHalf)
		within := countTrue(inBound)
		kPrimeSum := 0.0
		for _, kp := range kPrimes {
			kPrimeSum += kp
		}
		t.AddRow(n, k, kPrimeSum/float64(cfg.trials()), 4*float64(k)*math.Log(float64(n)),
			float64(within)/float64(cfg.trials()),
			float64(broke)/float64(cfg.trials()), stats.Mean(errs))
	}
	t.Notes = append(t.Notes,
		"expected shape: frac err>1/2 ~= 1 while 4k ln n << n; mean-k' tracks k(1+ln(n/k)) below the 4k ln n bound")
	return t
}

// ExpE5 compares the plain Theorem 1.2 reservoir size against the Theorem
// 1.4 continuous size: only the latter controls the error at every prefix.
func ExpE5(cfg Config) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Continuous robustness needs the Theorem 1.4 size",
		Source:  "Theorem 1.4; checkpoint schedule from its proof",
		Columns: []string{"eps", "sizing", "k", "fail-rate", "mean-maxPrefixErr", "max-maxPrefixErr", "theory-delta"},
	}
	root := rng.New(cfg.Seed + 4)
	sys := setsystem.NewPrefixes(expUniverse)
	n := cfg.scaled(20000, 500)
	delta := 0.1
	for _, eps := range []float64{0.2, 0.3} {
		p := core.Params{Eps: eps, Delta: delta, N: n}
		sizes := []struct {
			label string
			k     int
		}{
			{"plain-thm1.2", core.ReservoirSize(p, sys.LogCardinality())},
			{"continuous-thm1.4", core.ContinuousReservoirSize(p, sys.LogCardinality())},
		}
		for _, s := range sizes {
			est := core.EstimateContinuousRobustnessWorkers(
				func() game.Sampler { return sampler.NewReservoir[int64](s.k) },
				func() game.Adversary { return adversary.NewStaticUniform(expUniverse) },
				sys, p, s.k, cfg.trials(), cfg.Workers, root.Split(),
			)
			t.AddRow(eps, s.label, s.k, est.Failure.Rate(), est.Errors.Mean, est.Errors.Max, delta)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: the continuous (larger) k keeps fail-rate <= delta; the plain k shows a higher prefix failure rate",
		"per the paper, BernoulliSample cannot be continuously robust at all (footnote 4), hence only reservoir rows")
	return t
}

// ExpE10 reproduces the introduction's median attack: after the bisection
// process, the sample median sits near the |S|/2-th smallest stream
// element instead of the n/2-th — maximal median displacement.
func ExpE10(cfg Config) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "The introduction's median attack displaces the sample median",
		Source:  "Section 1, 'Attacking sampling algorithms'",
		Columns: []string{"n", "p", "E[|S|]", "mean sample-median-rank/n", "ideal", "mean displacement"},
	}
	root := rng.New(cfg.Seed + 5)
	for _, nBase := range []int{5000, 20000} {
		n := cfg.scaled(nBase, 500)
		p := 4 * math.Log(float64(n)) / float64(n)
		trialRanks := make([]float64, cfg.trials())
		trialSizes := make([]float64, cfg.trials())
		nonEmpty := make([]bool, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			res := adversary.RunExactBisectionBernoulli(n, p, r)
			if len(res.Sample) == 0 {
				return
			}
			med := sampler.SortedCopy(res.Sample)[len(res.Sample)/2]
			// Stream values are ranks 1..n, so the median's rank is
			// its value.
			trialRanks[trial] = float64(med) / float64(n)
			trialSizes[trial] = float64(len(res.Sample))
			nonEmpty[trial] = true
		})
		var ranks, sizes []float64
		for trial, ok := range nonEmpty {
			if ok {
				ranks = append(ranks, trialRanks[trial])
				sizes = append(sizes, trialSizes[trial])
			}
		}
		meanRank := stats.Mean(ranks)
		t.AddRow(n, p, stats.Mean(sizes), meanRank, 0.5, 0.5-meanRank)
	}
	t.Notes = append(t.Notes,
		"expected shape: sample-median-rank/n ~= |S|/(2n) ~ 0, i.e. displacement ~ 1/2 — the sample median is near the stream minimum")
	return t
}

// ExpE11 sweeps the reservoir size under the unbounded-universe attack to
// exhibit the crossover the Section 5 analysis predicts. The attacked
// sample lies among the k' smallest stream elements with
// E[k'] = k (1 + ln(n/k)), so the prefix error is ~ 1 - k'/n: the attack
// wins (error > eps) while k (1 + ln(n/k)) < (1-eps) n and loses above.
func ExpE11(cfg Config) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Static-vs-adaptive gap and the k(1+ln(n/k)) ~ (1-eps)n crossover",
		Source:  "Section 1.1 discussion; Theorems 1.2 + 1.3; Section 5 k' analysis",
		Columns: []string{"k", "k/crossover", "adversary", "fail-rate(eps=0.3)", "mean-err"},
	}
	root := rng.New(cfg.Seed + 6)
	n := cfg.scaled(20000, 2000)
	eps := 0.3
	crossover := float64(solveAttackCrossover(n, eps))
	staticK := core.StaticReservoirSize(core.Params{Eps: eps, Delta: 0.1, N: n}, 1)
	ks := []int{staticK, int(crossover / 4), int(crossover), int(crossover * 3)}
	for _, k := range ks {
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		// Adaptive row: exact unbounded-universe attack.
		errs := make([]float64, cfg.trials())
		overEps := make([]bool, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			res := adversary.RunExactBisectionReservoir(n, k, r)
			d := setsystem.NewPrefixes(int64(n)).MaxDiscrepancy(res.Stream, res.Sample)
			errs[trial] = d.Err
			overEps[trial] = d.Err > eps
		})
		broke := countTrue(overEps)
		t.AddRow(k, float64(k)/crossover, "adaptive-bisection",
			float64(broke)/float64(cfg.trials()), stats.Mean(errs))

		// Static row: same k against a static uniform stream.
		est := core.EstimateRobustnessWorkers(
			func() game.Sampler { return sampler.NewReservoir[int64](k) },
			func() game.Adversary { return adversary.NewStaticUniform(expUniverse) },
			setsystem.NewPrefixes(expUniverse),
			core.Params{Eps: eps, Delta: 0.1, N: n}, cfg.trials(), cfg.Workers, root.Split(),
		)
		t.AddRow(k, float64(k)/crossover, "static-uniform", est.Failure.Rate(), est.Errors.Mean)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("crossover where k(1+ln(n/k)) = (1-eps)n: k ~ %.0f; adaptive rows fail below it and pass above; static rows pass at every k >= the VC-sized %d", crossover, staticK),
		"this is the paper's headline gap: VC-sized samples suffice statically but adaptivity demands the cardinality term (here unbounded, so no finite ln|R| certifies safety below the crossover)")
	return t
}

// solveAttackCrossover returns the k at which the mean admitted count
// k (1 + ln(n/k)) reaches (1-eps) n, by binary search.
func solveAttackCrossover(n int, eps float64) int {
	target := (1 - eps) * float64(n)
	lo, hi := 1, n
	for lo < hi {
		mid := (lo + hi) / 2
		kPrime := float64(mid) * (1 + math.Log(float64(n)/float64(mid)))
		if kPrime < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ExpE15 validates the Section 4 martingale structure: zero drift, step
// bounds never violated, and the realized deviation |Z_n| sits below the
// Freedman-bound quantile.
func ExpE15(cfg Config) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "Martingale structure of Z_i and Freedman-bound slack",
		Source:  "Section 4, Claims 4.2 and 4.3, Lemma 3.3",
		Columns: []string{"sampler", "adversary", "mean Z_n", "sd Z_n", "step-violations", "frac |Z_n|<=lambda", "freedman lambda(delta=0.1)"},
	}
	root := rng.New(cfg.Seed + 7)
	n := cfg.scaled(5000, 500)

	type scenario struct {
		sampler string
		adv     string
	}
	scenarios := []scenario{
		{"bernoulli", "static-uniform"},
		{"bernoulli", "median-pusher"},
		{"reservoir", "static-uniform"},
		{"reservoir", "median-pusher"},
	}
	for _, sc := range scenarios {
		// The fixed range R tracks the region the adversary actually
		// exercises: the lower half for static streams, the top quarter
		// for the median pusher (which pushes mass upward but straddles
		// the 3/4 boundary) — so Z_i has non-degenerate variance in
		// every scenario.
		inR := func(x int64) bool { return x <= expUniverse/2 }
		if sc.adv == "median-pusher" {
			inR = func(x int64) bool { return x > expUniverse/4*3 }
		}
		finals := make([]float64, cfg.trials())
		violated := make([]bool, cfg.trials())
		lambdas := make([]float64, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			var adv game.Adversary
			if sc.adv == "static-uniform" {
				adv = adversary.NewStaticUniform(expUniverse)
			} else {
				adv = adversary.NewMedianPusher(expUniverse)
			}
			adv.Reset()
			advRNG := r.Split()
			sampRNG := r.Split()
			var history []int64
			lastAdmitted := false
			switch sc.sampler {
			case "bernoulli":
				p := 0.05
				m := core.NewBernoulliMartingale(n, p, inR)
				bs := sampler.NewBernoulli[int64](p)
				for i := 1; i <= n; i++ {
					obs := game.Observation{Round: i, N: n, Sample: bs.View(), LastAdmitted: lastAdmitted, History: history}
					x := adv.Next(obs, advRNG)
					history = append(history, x)
					lastAdmitted = bs.Offer(x, sampRNG)
					m.Observe(x, lastAdmitted)
				}
				finals[trial] = m.Z()
				violated[trial] = m.MaxStepViolation() > 1e-9
				lambdas[trial] = solveFreedman(m.VarianceBudget(), 1/(float64(n)*p), 0.1)
			case "reservoir":
				k := 100
				m := core.NewReservoirMartingale(k, inR)
				rs := sampler.NewReservoir[int64](k)
				for i := 1; i <= n; i++ {
					obs := game.Observation{Round: i, N: n, Sample: rs.View(), LastAdmitted: lastAdmitted, History: history}
					x := adv.Next(obs, advRNG)
					history = append(history, x)
					lastAdmitted = rs.Offer(x, sampRNG)
					m.Observe(x, lastAdmitted, rs.View())
				}
				finals[trial] = m.Z()
				violated[trial] = m.MaxStepViolation() > 1e-9
				lambdas[trial] = solveFreedman(m.VarianceBudget(), float64(n)/float64(k), 0.1)
			}
		})
		violations := countTrue(violated)
		lambda := lambdas[cfg.trials()-1]
		s := stats.Summarize(finals)
		within := 0
		for _, z := range finals {
			if math.Abs(z) <= lambda {
				within++
			}
		}
		t.AddRow(sc.sampler, sc.adv, s.Mean, s.StdDev, violations,
			float64(within)/float64(len(finals)), lambda)
	}
	t.Notes = append(t.Notes,
		"expected shape: mean Z_n ~ 0 relative to sd (martingale, no drift even vs adaptive adversaries); step-violations = 0; frac |Z_n|<=lambda >= 0.9 (Freedman at delta=0.1; the bound is loose, so typically 1.0)")
	return t
}

// solveFreedman returns the lambda at which the Freedman tail equals delta:
// solve 2 exp(-l^2/(2V + Ml/3)) = delta.
func solveFreedman(sumVar, m, delta float64) float64 {
	c := math.Log(2 / delta)
	// l^2 = c (2V + M l / 3) => l^2 - (cM/3) l - 2cV = 0.
	b := c * m / 3
	return (b + math.Sqrt(b*b+8*c*sumVar)) / 2
}
