package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickCfg is a small configuration for smoke-testing every experiment.
func quickCfg() Config {
	return Config{Seed: 7, Trials: 3, Scale: 0.05}
}

func TestAllExperimentsPresent(t *testing.T) {
	exps := All()
	if len(exps) != 22 {
		t.Fatalf("have %d experiments, want 22", len(exps))
	}
	for i, e := range exps {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Fatalf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E3"); !ok {
		t.Fatal("E3 not found")
	}
	if _, ok := ByID("e3"); !ok {
		t.Fatal("lookup should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

func TestEveryExperimentRunsAndRenders(t *testing.T) {
	cfg := quickCfg()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(cfg)
			if tab.ID != e.ID {
				t.Fatalf("table ID %s, want %s", tab.ID, e.ID)
			}
			if len(tab.Columns) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s row width %d != %d columns", e.ID, len(row), len(tab.Columns))
				}
			}
			if tab.Source == "" {
				t.Fatalf("%s missing paper source", e.ID)
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			out := buf.String()
			if !strings.Contains(out, e.ID+":") {
				t.Fatalf("%s render missing header: %q", e.ID, out[:60])
			}
			for _, col := range tab.Columns {
				if !strings.Contains(out, col) {
					t.Fatalf("%s render missing column %q", e.ID, col)
				}
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	cfg := quickCfg()
	for _, id := range []string{"E1", "E3", "E12"} {
		e, _ := ByID(id)
		var a, b bytes.Buffer
		e.Run(cfg).Render(&a)
		e.Run(cfg).Render(&b)
		if a.String() != b.String() {
			t.Fatalf("%s not deterministic under fixed seed", id)
		}
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	RunAll(quickCfg(), &buf)
	out := buf.String()
	for i := 1; i <= 18; i++ {
		if !strings.Contains(out, "E"+strconv.Itoa(i)+":") {
			t.Fatalf("RunAll output missing E%d", i)
		}
	}
}

func TestTableAddRowFormatting(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b", "c"}}
	tab.AddRow(1.23456789, "x", 42)
	if tab.Rows[0][0] != "1.235" {
		t.Fatalf("float formatting: %q", tab.Rows[0][0])
	}
	if tab.Rows[0][1] != "x" || tab.Rows[0][2] != "42" {
		t.Fatalf("row: %v", tab.Rows[0])
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Config{Scale: 0.001, Trials: 0}
	if cfg.scaled(1000, 50) != 50 {
		t.Fatal("scaled floor not applied")
	}
	if cfg.trials() != 1 {
		t.Fatal("trials floor not applied")
	}
	cfg = Config{Scale: 2, Trials: 7}
	if cfg.scaled(100, 1) != 200 {
		t.Fatal("scaling wrong")
	}
	if cfg.trials() != 7 {
		t.Fatal("trials wrong")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Trials < 10 || cfg.Scale != 1.0 {
		t.Fatalf("unexpected default config: %+v", cfg)
	}
}

func TestFiguresRender(t *testing.T) {
	cfg := quickCfg()
	if len(Figures()) != 2 {
		t.Fatalf("have %d figures, want 2", len(Figures()))
	}
	for _, f := range Figures() {
		chart := f.Render(cfg)
		var buf bytes.Buffer
		chart.Render(&buf)
		if !strings.Contains(buf.String(), f.ID+":") {
			t.Fatalf("%s render missing title", f.ID)
		}
		if !strings.Contains(buf.String(), "legend") {
			t.Fatalf("%s render missing legend", f.ID)
		}
	}
	if _, ok := FigureByID("F1"); !ok {
		t.Fatal("F1 lookup failed")
	}
	if _, ok := FigureByID("F9"); ok {
		t.Fatal("F9 should not exist")
	}
}
