// E21 races the paper's defense (oversampling, Theorem 1.2) against the
// generic sketch-switching meta-algorithm of Ben-Eliezer, Jayaram, Woodruff
// and Yogev (the switching package) and a naive static-VC-sized baseline,
// under the adaptive attack zoo. The mechanisms differ in what the
// adversary can see:
//
//   - naive and oversampled expose the live sample and the true
//     admission bit every round (the full-feedback game of Figure 3);
//   - switching exposes only the frozen published output of completed
//     epochs and NO admission feedback — feedback denial is the whole
//     mechanism, so the adaptive attacks degrade to per-epoch oblivious
//     streams.
//
// The race reports error vs space vs ingest wall-clock: oversampling pays
// ln|R| in one sample, switching pays G copies of the cheap static size,
// and the naive baseline shows what the attacks do when neither price is
// paid.
package bench

import (
	"fmt"
	"math"
	"time"

	"robustsample/internal/adversary"
	"robustsample/internal/core"
	"robustsample/internal/game"
	"robustsample/internal/rng"
	"robustsample/internal/sampler"
	"robustsample/internal/setsystem"
	"robustsample/internal/stats"
	"robustsample/sketch"
	"robustsample/switching"
)

// e21Copies is the switching arm's copy count G; each copy is a
// static-VC-sized reservoir ingesting one of G equal epochs.
const e21Copies = 8

// e21SwitchingName labels the switching rows.
const e21SwitchingName = "switching-G8"

// e21Mechanism is one defense in the race. offer returns the admission bit
// the adversary is allowed to see (always false for switching — feedback
// denial), observed is the sample the adversary may inspect between
// rounds, and final is the sample graded at the end of the game.
type e21Mechanism interface {
	offer(x int64, r *rng.RNG) bool
	observed() []int64
	final() []int64
}

// e21Reservoir is the full-feedback defense arm: a single reservoir whose
// live sample and admission bits are visible, sized either naively
// (StaticReservoirSize) or per Theorem 1.2 (ReservoirSize).
type e21Reservoir struct {
	res *sampler.Reservoir[int64]
}

func (m *e21Reservoir) offer(x int64, r *rng.RNG) bool { return m.res.Offer(x, r) }
func (m *e21Reservoir) observed() []int64              { return m.res.View() }
func (m *e21Reservoir) final() []int64                 { return m.res.View() }

// e21Switching is the [BJWY20] arm: G static-sized copies behind the
// switching meta-sketch, rotated every epochLen rounds. The adversary
// observes only the frozen published union and never sees an admission.
type e21Switching struct {
	sw       *switching.Sketch[int64]
	epochLen int
	round    int
}

func (m *e21Switching) offer(x int64, _ *rng.RNG) bool {
	if _, err := m.sw.Offer(x); err != nil {
		panic(err)
	}
	m.round++
	if m.round%m.epochLen == 0 {
		m.sw.Advance()
	}
	return false
}
func (m *e21Switching) observed() []int64 { return m.sw.Published() }
func (m *e21Switching) final() []int64    { return m.sw.View() }

// ExpE21 plays each attack arm against each mechanism for cfg.trials()
// independent games and reports failure rate (final discrepancy > eps),
// error statistics, sample-slot space and per-element ingest time.
func ExpE21(cfg Config) *Table {
	t := &Table{
		ID:      "E21",
		Title:   "Sketch-switching ([BJWY20]) vs oversampling (Thm 1.2) vs naive under adaptive attacks",
		Source:  "Theorem 1.2 + Section 5 attacks; BJWY20 sketch-switching via the switching package",
		Columns: []string{"attack", "mechanism", "slots", "fail-rate", "mean-err", "max-err", "ns/elem"},
	}
	root := rng.New(cfg.Seed + 20)
	sys := setsystem.NewPrefixes(expUniverse)
	n := cfg.scaled(20000, 500)
	eps, delta := 0.2, 0.1
	p := core.Params{Eps: eps, Delta: delta, N: n}

	kNaive := core.StaticReservoirSize(p, 1) // VC dimension of prefixes is 1
	kRobust := core.ReservoirSize(p, sys.LogCardinality())
	epochLen := (n + e21Copies - 1) / e21Copies

	u := must(sketch.NewInt64Universe(expUniverse))
	build := func(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
		return sketch.NewReservoir(u, kNaive, sketch.WithSeed(seed))
	}

	mechanisms := []struct {
		name  string
		slots int
		mk    func(r *rng.RNG) e21Mechanism
	}{
		{"naive-static", kNaive, func(*rng.RNG) e21Mechanism {
			return &e21Reservoir{res: sampler.NewReservoir[int64](kNaive)}
		}},
		{"oversampled", kRobust, func(*rng.RNG) e21Mechanism {
			return &e21Reservoir{res: sampler.NewReservoir[int64](kRobust)}
		}},
		{e21SwitchingName, e21Copies * kNaive, func(r *rng.RNG) e21Mechanism {
			sw := must(switching.New(u, e21Copies, build, switching.WithSeed(r.Uint64())))
			return &e21Switching{sw: sw, epochLen: epochLen}
		}},
	}

	// The targeted-shard arm replays the PR 3 composed channel: the
	// adversary watches ONE shard of an S-shard fleet, so its visible
	// admission is thinned by the 1/S routing draw and its p' composes
	// the reservoir admission estimate with the route.
	const shards = 4
	admissions := 2 * float64(kNaive) * math.Log(float64(n))
	ppTargeted := (admissions / shards) / (admissions/shards + float64(n))
	ppTargeted = math.Max(math.Min(ppTargeted, 0.5), math.Log(float64(n))/float64(n))

	arms := []struct {
		name string
		mk   func() game.Adversary
		thin int // visible admission needs r.Intn(thin)==0; 1 = untthinned
	}{
		{"bisection", func() game.Adversary {
			return adversary.NewBisectionReservoir(expUniverse, n, kNaive)
		}, 1},
		{"median-pusher", func() game.Adversary {
			return adversary.NewMedianPusher(expUniverse)
		}, 1},
		{"hh-inflation", func() game.Adversary {
			return adversary.NewHHInflation(expUniverse/2, expUniverse, 0.4, 0.05)
		}, 1},
		{"targeted-shard", func() game.Adversary {
			return adversary.NewBisection(expUniverse, ppTargeted)
		}, shards},
	}

	// The headline arm is the Theorem 1.3 regime the bounded arms cannot
	// reach: exact bisection over an UNBOUNDED ordered universe (order-token
	// simulation, as E3/E4). There no finite sample size is robust — the
	// attack confines any full-feedback reservoir to its k' smallest stream
	// elements, so naive AND oversampled break — while switching denies the
	// per-round feedback entirely: the adversary folds "not admitted" every
	// round, its stream degenerates to the descending ranks n..1, and each
	// copy takes an oblivious uniform sample of its epoch.
	sysN := setsystem.NewPrefixes(int64(n))
	uN := must(sketch.NewInt64Universe(int64(n)))
	buildN := func(u sketch.Universe[int64], seed uint64) (sketch.Sketch[int64], error) {
		return sketch.NewReservoir(u, kNaive, sketch.WithSeed(seed))
	}
	unbounded := []struct {
		name  string
		slots int
		run   func(r *rng.RNG) float64
	}{
		{"naive-static", kNaive, func(r *rng.RNG) float64 {
			res := adversary.RunExactBisectionReservoir(n, kNaive, r)
			return sysN.MaxDiscrepancy(res.Stream, res.Sample).Err
		}},
		{"oversampled", kRobust, func(r *rng.RNG) float64 {
			res := adversary.RunExactBisectionReservoir(n, kRobust, r)
			return sysN.MaxDiscrepancy(res.Stream, res.Sample).Err
		}},
		{e21SwitchingName, e21Copies * kNaive, func(r *rng.RNG) float64 {
			sw := must(switching.New(uN, e21Copies, buildN, switching.WithSeed(r.Uint64())))
			stream := make([]int64, n)
			for i := 0; i < n; i++ {
				x := int64(n - i)
				stream[i] = x
				if _, err := sw.Offer(x); err != nil {
					panic(err)
				}
				if (i+1)%epochLen == 0 {
					sw.Advance()
				}
			}
			return sysN.MaxDiscrepancy(stream, sw.View()).Err
		}},
	}
	for _, mech := range unbounded {
		errs := make([]float64, cfg.trials())
		failed := make([]bool, cfg.trials())
		cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
			errs[trial] = mech.run(r)
			failed[trial] = errs[trial] > eps
		})
		t.AddRow("bisection-unbounded", mech.name, mech.slots,
			float64(countTrue(failed))/float64(cfg.trials()),
			stats.Mean(errs), stats.MaxFloat(errs), "-")
	}

	for _, arm := range arms {
		for _, mech := range mechanisms {
			errs := make([]float64, cfg.trials())
			failed := make([]bool, cfg.trials())
			nanos := make([]int64, cfg.trials())
			cfg.forEachTrial(root, func(trial int, r *rng.RNG) {
				adv := arm.mk()
				adv.Reset()
				m := mech.mk(r)
				history := make([]int64, 0, n)
				last := false
				var ns int64
				for i := 1; i <= n; i++ {
					obs := game.Observation{
						Round:        i,
						N:            n,
						Sample:       m.observed(),
						LastAdmitted: last,
						History:      history,
					}
					x := adv.Next(obs, r)
					history = append(history, x)
					t0 := time.Now()
					adm := m.offer(x, r)
					ns += time.Since(t0).Nanoseconds()
					if arm.thin > 1 {
						adm = adm && r.Intn(arm.thin) == 0
					}
					last = adm
				}
				d := sys.MaxDiscrepancy(history, m.final())
				errs[trial] = d.Err
				failed[trial] = d.Err > eps
				nanos[trial] = ns
			})
			var nsSum int64
			for _, v := range nanos {
				nsSum += v
			}
			t.AddRow(arm.name, mech.name, mech.slots,
				float64(countTrue(failed))/float64(cfg.trials()),
				stats.Mean(errs), stats.MaxFloat(errs),
				float64(nsSum)/float64(int64(cfg.trials())*int64(n)))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d, eps=%.2g, delta=%.2g, trials=%d; switching uses G=%d epochs of %d rounds", n, eps, delta, cfg.trials(), e21Copies, epochLen),
		"expected shape (bisection-unbounded, at full scale): naive-static AND oversampled fail-rate ~ 1 — Theorem 1.3 beats any finite size when ln|R| is unbounded — while switching-G8 stays ~ 0 via feedback denial",
		"expected shape (bounded arms): all mechanisms hold fail-rate <= delta, with switching-G8 mean-err below naive-static; the bounded universe is exactly the regime E3's required-lnN column says bisection cannot win",
		"space: oversampled pays ln|R| in one sample, switching pays G x the static size — more slots, but each copy is a cheap static sketch",
		"ns/elem is wall-clock and varies run to run ('-' for the order-token simulated rows); error and fail-rate columns are seed-deterministic")
	return t
}
