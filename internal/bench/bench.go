// Package bench is the experiment harness that regenerates every
// quantitative claim of the paper as a table (the paper is theory-only, so
// its "tables and figures" are its theorems, corollaries, attack analyses
// and worked applications; DESIGN.md maps each to an experiment ID E1-E17
// and records the expected shapes).
//
// Each experiment is a pure function of a Config (root seed, trial count,
// scale knob) producing a Table; tables print with aligned columns and
// carry free-form notes stating the theoretical expectation next to the
// measurement. All randomness derives from the root seed, so tables are
// reproducible bit-for-bit.
package bench

import (
	"cmp"
	"fmt"
	"io"
	"slices"
	"strings"

	"robustsample/internal/core"
	"robustsample/internal/rng"
)

// Config controls an experiment run.
type Config struct {
	// Seed is the root RNG seed; every trial splits from it.
	Seed uint64
	// Trials is the number of independent game repetitions per row.
	Trials int
	// Scale multiplies stream lengths; 1.0 is the reference size used in
	// DESIGN.md, smaller values give quick smoke runs.
	Scale float64
	// Workers is the Monte-Carlo worker-pool size per table row: 0 (the
	// default) uses runtime.GOMAXPROCS, 1 forces serial execution. Tables
	// are byte-identical for every worker count — per-trial RNGs are
	// pre-split sequentially and results reduced in trial order.
	Workers int
	// Shards pins the shard count of the sharded experiment (E18): 0 (the
	// default) sweeps the reference ladder {1, 2, 4, 8}; any other value
	// sweeps {1, Shards}. Unlike Workers it selects a different measured
	// configuration, so different values legitimately change the E18
	// table (and only that table).
	Shards int
	// Producers selects the producer-lane counts of the concurrent serving
	// experiment (E19): nil or empty sweeps the reference ladder
	// {1, 2, 4, 8, 16, 32}; an explicit list measures exactly those points
	// in order. It affects only the E19 table and the ConcurrentIngest
	// JSON curve (one entry per point).
	Producers []int
	// Faults is an optional fault-plan spec (internal/faults.ParseSpec
	// syntax, e.g. "seed=1,crash=0.01,stall=0.005@2ms") for the
	// self-healing experiment E20: when set, its availability arm measures
	// that single plan instead of sweeping the default crash-rate ladder.
	// It affects only the E20 table.
	Faults string
	// Tenants pins the tenant count of the multi-tenant farm experiment
	// (E22): 0 (the default) sweeps the reference ladder {1e3, 1e5, 1e6}
	// (scaled by Scale); any other value measures that single point. It
	// affects only the E22 table and the FarmIngest JSON curve.
	Tenants int
	// TenantSkew is the Zipf exponent of E22's tenant id distribution;
	// 0 (the default) uses the reference skew 1.1.
	TenantSkew float64
}

// DefaultConfig is the reference configuration for the DESIGN.md tables.
func DefaultConfig() Config {
	return Config{Seed: 20200614, Trials: 40, Scale: 1.0}
}

// scaled returns max(lo, int(n*Scale)).
func (c Config) scaled(n, lo int) int {
	v := int(float64(n) * c.Scale)
	if v < lo {
		return lo
	}
	return v
}

// trials returns max(1, Trials).
func (c Config) trials() int {
	if c.Trials < 1 {
		return 1
	}
	return c.Trials
}

// forEachTrial runs fn(trial, r) for each trial on the configured worker
// pool, with per-trial RNGs pre-split sequentially from root so the results
// are identical to the historical serial loop `r := root.Split(); fn(...)`.
// fn must write its outputs to per-trial storage; callers reduce in trial
// order afterwards.
func (c Config) forEachTrial(root *rng.RNG, fn func(trial int, r *rng.RNG)) {
	trials := c.trials()
	rngs := make([]*rng.RNG, trials)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	core.ForEachTrial(trials, c.Workers, func(trial int) {
		fn(trial, rngs[trial])
	})
}

// must unwraps constructor (value, error) pairs whose parameters are
// statically valid in experiment code; validation errors there are bugs.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// countTrue returns the number of set flags; trial loops record per-trial
// outcomes in indexed slices and reduce with it after the parallel fan-out.
func countTrue(flags []bool) int {
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return n
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (E1..E17).
	ID string
	// Title describes the experiment.
	Title string
	// Source cites the paper claim being reproduced.
	Source string
	// Columns are the header labels.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes state the expected shape and any caveats.
	Notes []string
}

// AddRow appends a formatted row; values are rendered with %v except
// float64, which uses %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "   source: %s\n", t.Source)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment couples an ID with its runner.
type Experiment struct {
	// ID is the DESIGN.md identifier.
	ID string
	// Title is a one-line description.
	Title string
	// Run executes the experiment.
	Run func(cfg Config) *Table
}

// All returns every experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Theorem 1.2: Bernoulli sampling is (eps,delta)-robust at the prescribed rate", ExpE1},
		{"E2", "Theorem 1.2: reservoir sampling is (eps,delta)-robust at the prescribed size", ExpE2},
		{"E3", "Theorem 1.3 / Section 5: bisection attack on Bernoulli sampling", ExpE3},
		{"E4", "Theorem 1.3 / Section 5: bisection attack on reservoir sampling", ExpE4},
		{"E5", "Theorem 1.4: continuous robustness of reservoir sampling", ExpE5},
		{"E6", "Corollary 1.5: robust quantile sketches vs GK and KLL", ExpE6},
		{"E7", "Corollary 1.6: heavy hitters under adaptive inflation", ExpE7},
		{"E8", "Section 1.2: range queries over [m]^d grids", ExpE8},
		{"E9", "Section 1.2: beta-center points from robust samples", ExpE9},
		{"E10", "Section 1: the introduction's median attack", ExpE10},
		{"E11", "Section 1.1: static-vs-adaptive sample-size gap and crossover", ExpE11},
		{"E12", "Section 1.2: distributed query routing under adaptive clients", ExpE12},
		{"E13", "Section 1.2: clustering acceleration via robust sampling", ExpE13},
		{"E14", "Section 1.1: deterministic merge-reduce vs randomized sampling", ExpE14},
		{"E15", "Section 4: martingale structure and Freedman-bound tightness", ExpE15},
		{"E16", "Section 1.3: weighted reservoir sampling extension", ExpE16},
		{"E17", "Ablation: reservoir variants (Algorithm R / Algorithm L / with-replacement)", ExpE17},
		{"E18", "Section 1.3: sharded continuous sampling with mergeable verdicts", ExpE18},
		{"E19", "Concurrent serving runtime: pipeline determinism and throughput vs producers", ExpE19},
		{"E20", "Self-healing serving: crash recovery and degraded-read availability under injected faults", ExpE20},
		{"E21", "Sketch-switching ([BJWY20]) raced against oversampling and a naive static baseline", ExpE21},
		{"E22", "Multi-tenant sketch farm: tenant density, keyed ingest throughput and hydration stalls", ExpE22},
	}
	slices.SortFunc(exps, func(a, b Experiment) int {
		return cmp.Compare(expOrder(a.ID), expOrder(b.ID))
	})
	return exps
}

func expOrder(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID finds an experiment by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment and renders the tables to w.
func RunAll(cfg Config, w io.Writer) {
	for _, e := range All() {
		e.Run(cfg).Render(w)
	}
}
