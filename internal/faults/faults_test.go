package faults

import (
	"testing"
	"time"
)

// TestParseSpec checks the CLI syntax round-trips into the right Spec.
func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("seed=42,crash=0.01,stall=0.005@20ms,delay=0.1@200us,corrupt=0.01,hard=0.001,max=3")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Seed != 42 || spec.CrashProb != 0.01 ||
		spec.StallProb != 0.005 || spec.StallFor != 20*time.Millisecond ||
		spec.DelayProb != 0.1 || spec.DelayFor != 200*time.Microsecond ||
		spec.CorruptProb != 0.01 || spec.HardCorruptProb != 0.001 ||
		spec.MaxPerShard != 3 {
		t.Fatalf("ParseSpec = %+v", spec)
	}
	if _, err := ParseSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if _, err := ParseSpec("  "); err != nil {
		t.Fatalf("blank spec: %v", err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"crash",               // not key=value
		"wedge=0.1",           // unknown key
		"crash=lots",          // bad float
		"crash=1.5",           // out of range
		"crash=0.7,stall=0.7", // sum > 1
		"stall=0.1@fast",      // bad duration
		"seed=-1",             // bad uint
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want failure", bad)
		}
	}
}

// TestDecideDeterministic: two plans with the same spec produce identical
// decision streams, and a different seed produces a different one.
func TestDecideDeterministic(t *testing.T) {
	spec := Spec{Seed: 7, CrashProb: 0.05, StallProb: 0.05, DelayProb: 0.1, CorruptProb: 0.05, HardCorruptProb: 0.01}
	const shards, n = 3, 400
	run := func(p *Plan) [shards][n]Op {
		var out [shards][n]Op
		for s := 0; s < shards; s++ {
			for i := 0; i < n; i++ {
				out[s][i] = p.Decide(s, 0).Op
			}
		}
		return out
	}
	a := run(MustPlan(spec, shards))
	b := run(MustPlan(spec, shards))
	if a != b {
		t.Fatal("same seed produced different decision streams")
	}
	spec2 := spec
	spec2.Seed = 8
	if a == run(MustPlan(spec2, shards)) {
		t.Fatal("different seeds produced identical decision streams")
	}
}

// TestDecideShardIndependence: shard s's decisions do not change when the
// shards interleave differently — each shard owns a private stream.
func TestDecideShardIndependence(t *testing.T) {
	spec := Spec{Seed: 11, CrashProb: 0.2, DelayProb: 0.2}
	const n = 200
	seq := func(p *Plan, s int) [n]Op {
		var out [n]Op
		for i := range out {
			out[i] = p.Decide(s, 0).Op
		}
		return out
	}
	// Plan A: shard 0 fully first, then shard 1. Plan B: interleaved.
	pa := MustPlan(spec, 2)
	a0 := seq(pa, 0)
	a1 := seq(pa, 1)
	pb := MustPlan(spec, 2)
	var b0, b1 [n]Op
	for i := 0; i < n; i++ {
		b0[i] = pb.Decide(0, 0).Op
		b1[i] = pb.Decide(1, 0).Op
	}
	if a0 != b0 || a1 != b1 {
		t.Fatal("interleaving changed a shard's decision stream")
	}
}

// TestScheduledCrashes: CrashOrdinals fire at exactly the listed ordinals,
// regardless of probabilistic settings, and are exempt from MaxPerShard.
func TestScheduledCrashes(t *testing.T) {
	spec := Spec{
		Seed:          3,
		CrashOrdinals: [][]uint64{{2, 5}, {1}},
		MaxPerShard:   1, // must not suppress scheduled crashes
	}
	p := MustPlan(spec, 2)
	var got0 []uint64
	for i := 0; i < 8; i++ {
		if p.Decide(0, 0).Op == Crash {
			got0 = append(got0, p.Ordinal(0))
		}
	}
	if len(got0) != 2 || got0[0] != 2 || got0[1] != 5 {
		t.Fatalf("shard 0 crashes at ordinals %v, want [2 5]", got0)
	}
	if p.Decide(1, 0).Op != Crash {
		t.Fatal("shard 1 ordinal 1 did not crash")
	}
	if p.Decide(1, 0).Op == Crash {
		t.Fatal("shard 1 ordinal 2 crashed without schedule")
	}
	if got := p.Count(Crash); got != 3 {
		t.Fatalf("Count(Crash) = %d, want 3", got)
	}
	if got := p.Total(); got != 3 {
		t.Fatalf("Total() = %d, want 3", got)
	}
}

// TestRetrySemantics: attempt > 0 injects nothing except a repeating
// HardCorrupt, which persists until the next attempt-0 decision.
func TestRetrySemantics(t *testing.T) {
	// HardCorruptProb = 1 makes every attempt-0 draw a hard corruption.
	p := MustPlan(Spec{Seed: 1, HardCorruptProb: 1}, 1)
	if op := p.Decide(0, 0).Op; op != HardCorrupt {
		t.Fatalf("attempt 0 = %v, want hard-corrupt", op)
	}
	for attempt := 1; attempt <= 3; attempt++ {
		if op := p.Decide(0, attempt).Op; op != HardCorrupt {
			t.Fatalf("attempt %d = %v, want repeating hard-corrupt", attempt, op)
		}
	}

	// A transient fault does not repeat on retries.
	p2 := MustPlan(Spec{Seed: 1, CrashProb: 1}, 1)
	if op := p2.Decide(0, 0).Op; op != Crash {
		t.Fatalf("attempt 0 = %v, want crash", op)
	}
	if op := p2.Decide(0, 1).Op; op != None {
		t.Fatalf("retry after crash = %v, want none", op)
	}
}

// TestMaxPerShard caps probabilistic injections per shard.
func TestMaxPerShard(t *testing.T) {
	p := MustPlan(Spec{Seed: 5, DelayProb: 1, MaxPerShard: 4}, 2)
	injected := 0
	for i := 0; i < 100; i++ {
		if p.Decide(0, 0).Op != None {
			injected++
		}
	}
	if injected != 4 {
		t.Fatalf("shard 0 injected %d faults, want MaxPerShard=4", injected)
	}
	// The cap is per shard: shard 1 still injects.
	if p.Decide(1, 0).Op != Delay {
		t.Fatal("shard 1 suppressed by shard 0's cap")
	}
}

// TestStallDelayDurations: defaults apply when the spec leaves them zero.
func TestStallDelayDurations(t *testing.T) {
	p := MustPlan(Spec{Seed: 2, StallProb: 1}, 1)
	d := p.Decide(0, 0)
	if d.Op != Stall || d.Sleep != 20*time.Millisecond {
		t.Fatalf("stall decision = %+v, want default 20ms", d)
	}
	p2 := MustPlan(Spec{Seed: 2, DelayProb: 1, DelayFor: time.Millisecond}, 1)
	d2 := p2.Decide(0, 0)
	if d2.Op != Delay || d2.Sleep != time.Millisecond {
		t.Fatalf("delay decision = %+v, want 1ms", d2)
	}
}

func TestPoisonHelpers(t *testing.T) {
	xs := []int64{1, 2, 3}
	if Poisoned(xs) {
		t.Fatal("clean chunk reported poisoned")
	}
	PoisonChunk(xs)
	for i, x := range xs {
		if x != Poison {
			t.Fatalf("xs[%d] = %d after PoisonChunk", i, x)
		}
	}
	if !Poisoned(xs) {
		t.Fatal("poisoned chunk reported clean")
	}
}

func TestNewPlanErrors(t *testing.T) {
	if _, err := NewPlan(Spec{}, 0); err == nil {
		t.Fatal("NewPlan with 0 shards succeeded")
	}
	if _, err := NewPlan(Spec{CrashProb: 2}, 1); err == nil {
		t.Fatal("NewPlan with bad probability succeeded")
	}
}
