// Package faults is the deterministic fault-injection plan behind the
// serving runtime's chaos testing: a seeded schedule of consumer crashes,
// stalls, apply delays and corrupt (poisoned) batches, injected through the
// supervision hooks of internal/runtime.Pipeline.
//
// Determinism contract: every decision is a pure function of (shard,
// per-shard apply ordinal, attempt) and the plan's seed. Each shard draws
// from a private RNG stream split sequentially from the seed, so the fault
// schedule of one shard never depends on how the scheduler interleaved the
// others, and a re-run with the same seed injects the same faults at the
// same per-shard apply ordinals. (Which stream elements sit in the k-th
// chunk of a shard still depends on live-mode timing; what the plan
// guarantees is that the decisions themselves replay — and the recovery
// contract proved by the chaos tests is independent of where a crash
// lands.)
//
// Retries draw no fresh faults: after the supervisor restores a shard and
// re-applies the failing chunk, Decide reports None for attempt > 0 — a
// crash is transient — except for HardCorrupt, which repeats until the
// supervisor gives up and drops the chunk (the poison-pill model).
package faults

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"robustsample/internal/rng"
)

// Op is one injected fault kind.
type Op uint8

const (
	// None injects nothing.
	None Op = iota
	// Crash panics before the apply — a consumer crash. The supervisor
	// recovers it, restores the shard from its latest checkpoint and
	// retries the chunk.
	Crash
	// Stall sleeps Spec.StallFor before the apply while holding the shard
	// lock — a stuck consumer. Rings back up behind it until producers hit
	// backpressure (the ring-full starvation scenario), and queries must
	// degrade around the locked shard.
	Stall
	// Delay sleeps Spec.DelayFor before the apply — a slow consumer, long
	// enough to perturb timing but not to wedge anything.
	Delay
	// Corrupt overwrites the chunk with Poison values — a corrupt batch.
	// The apply-side validation gate panics on it; the supervisor restores
	// the shard and retries the pristine chunk, which then applies cleanly.
	Corrupt
	// HardCorrupt is Corrupt on every retry: the chunk can never apply and
	// is eventually dropped by the supervisor, the bounded-loss path.
	HardCorrupt

	numOps
)

func (o Op) String() string {
	switch o {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	case HardCorrupt:
		return "hard-corrupt"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Poison is the sentinel value Corrupt faults write over a chunk. It is far
// outside every universe the engines accept (universe points are >= 1), so
// a poisoned batch that slipped past validation would be unambiguous in any
// state dump.
const Poison int64 = math.MinInt64

// ErrInjectedCrash is the panic value of a Crash fault.
var ErrInjectedCrash = errors.New("faults: injected consumer crash")

// ErrPoisonedBatch is the panic value the apply-side validation gate raises
// on a poisoned chunk.
var ErrPoisonedBatch = errors.New("faults: poisoned batch failed validation")

// Spec configures a Plan. Probabilities are per apply (per chunk, not per
// element) and are evaluated in the order crash, stall, delay, corrupt,
// hard-corrupt from a single uniform draw, so their sum must stay <= 1.
type Spec struct {
	// Seed roots the per-shard decision streams.
	Seed uint64
	// CrashProb is the per-apply probability of a consumer crash.
	CrashProb float64
	// StallProb is the per-apply probability of a StallFor stall.
	StallProb float64
	// StallFor is the stall duration; <= 0 selects 20ms.
	StallFor time.Duration
	// DelayProb is the per-apply probability of a DelayFor delay.
	DelayProb float64
	// DelayFor is the delay duration; <= 0 selects 200us.
	DelayFor time.Duration
	// CorruptProb is the per-apply probability of a (recoverable) corrupt
	// batch.
	CorruptProb float64
	// HardCorruptProb is the per-apply probability of an unrecoverable
	// poison-pill batch.
	HardCorruptProb float64
	// CrashOrdinals schedules deterministic crashes: CrashOrdinals[s] lists
	// the 1-based apply ordinals of shard s that crash, in increasing
	// order. Scheduled crashes fire regardless of the probabilistic draws
	// and of MaxPerShard — they are how tests guarantee "every shard
	// crashes at least once".
	CrashOrdinals [][]uint64
	// MaxPerShard caps the probabilistic faults injected per shard
	// (scheduled crashes are exempt); 0 means unlimited.
	MaxPerShard int
}

func (s Spec) validate() error {
	probs := [...]struct {
		name string
		p    float64
	}{
		{"crash", s.CrashProb}, {"stall", s.StallProb}, {"delay", s.DelayProb},
		{"corrupt", s.CorruptProb}, {"hard", s.HardCorruptProb},
	}
	sum := 0.0
	for _, pr := range probs {
		if pr.p < 0 || pr.p > 1 || pr.p != pr.p {
			return fmt.Errorf("faults: %s probability %v outside [0, 1]", pr.name, pr.p)
		}
		sum += pr.p
	}
	if sum > 1 {
		return fmt.Errorf("faults: fault probabilities sum to %v > 1", sum)
	}
	return nil
}

// ParseSpec parses the CLI fault-plan syntax: a comma-separated list of
// key=value clauses, durations attached to rates with '@'.
//
//	seed=42,crash=0.01,stall=0.005@20ms,delay=0.1@200us,corrupt=0.01,hard=0.001,max=3
//
// Every clause is optional; an empty string is a plan that injects nothing.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{}
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, clause := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		rate, dur, hasDur := strings.Cut(val, "@")
		prob := func() (float64, error) { return strconv.ParseFloat(rate, 64) }
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
		case "max":
			spec.MaxPerShard, err = strconv.Atoi(val)
		case "crash":
			spec.CrashProb, err = prob()
		case "stall":
			spec.StallProb, err = prob()
			if err == nil && hasDur {
				spec.StallFor, err = time.ParseDuration(dur)
			}
		case "delay":
			spec.DelayProb, err = prob()
			if err == nil && hasDur {
				spec.DelayFor, err = time.ParseDuration(dur)
			}
		case "corrupt":
			spec.CorruptProb, err = prob()
		case "hard":
			spec.HardCorruptProb, err = prob()
		default:
			return Spec{}, fmt.Errorf("faults: unknown clause key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("faults: clause %q: %v", clause, err)
		}
	}
	if err := spec.validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Decision is one injection verdict.
type Decision struct {
	Op Op
	// Sleep is the stall/delay duration when Op is Stall or Delay.
	Sleep time.Duration
}

// lane is one shard's decision state. Decide is only ever called under that
// shard's lock (it runs inside the supervisor's apply path), so the plain
// fields need no atomics; the ordinal and injection counters are atomic so
// observers can read progress without the lock.
type lane struct {
	r        *rng.RNG
	ord      atomic.Uint64 // 1-based apply ordinal, bumped on attempt 0
	injected atomic.Uint64 // probabilistic faults injected so far
	crashIdx int           // cursor into Spec.CrashOrdinals[shard]
	hard     bool          // current chunk drew HardCorrupt; repeats on retries
}

// Plan is a running fault plan over a fixed shard count. Decide is safe for
// concurrent use across shards (per-shard state only); within one shard the
// pipeline's shard lock serializes it.
type Plan struct {
	spec   Spec
	lanes  []*lane
	counts [numOps]atomic.Uint64
}

// NewPlan builds a plan for the given shard count.
func NewPlan(spec Spec, shards int) (*Plan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("faults: need at least 1 shard, got %d", shards)
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.StallFor <= 0 {
		spec.StallFor = 20 * time.Millisecond
	}
	if spec.DelayFor <= 0 {
		spec.DelayFor = 200 * time.Microsecond
	}
	root := rng.New(spec.Seed)
	p := &Plan{spec: spec, lanes: make([]*lane, shards)}
	for i := range p.lanes {
		p.lanes[i] = &lane{r: root.Split()}
	}
	return p, nil
}

// MustPlan is NewPlan for statically valid specs in tests and experiments.
func MustPlan(spec Spec, shards int) *Plan {
	p, err := NewPlan(spec, shards)
	if err != nil {
		panic(err)
	}
	return p
}

// Decide returns the fault injected before apply attempt `attempt` of the
// next chunk on `shard`. Attempt 0 advances the shard's ordinal and draws;
// retries (attempt > 0) inject nothing except a repeating HardCorrupt.
func (p *Plan) Decide(shard, attempt int) Decision {
	l := p.lanes[shard]
	if attempt > 0 {
		if l.hard {
			p.counts[HardCorrupt].Add(1)
			return Decision{Op: HardCorrupt}
		}
		return Decision{}
	}
	l.hard = false
	ord := l.ord.Add(1)
	if s := p.spec.CrashOrdinals; shard < len(s) {
		for l.crashIdx < len(s[shard]) && s[shard][l.crashIdx] < ord {
			l.crashIdx++ // skip stale entries (unsorted or duplicate ordinals)
		}
		if l.crashIdx < len(s[shard]) && s[shard][l.crashIdx] == ord {
			l.crashIdx++
			p.counts[Crash].Add(1)
			return Decision{Op: Crash}
		}
	}
	sp := p.spec
	if sp.CrashProb == 0 && sp.StallProb == 0 && sp.DelayProb == 0 &&
		sp.CorruptProb == 0 && sp.HardCorruptProb == 0 {
		return Decision{}
	}
	// One uniform draw per ordinal keeps the per-shard decision stream
	// aligned no matter which fault kinds are enabled.
	u := l.r.Float64()
	if sp.MaxPerShard > 0 && l.injected.Load() >= uint64(sp.MaxPerShard) {
		return Decision{}
	}
	d := Decision{}
	switch {
	case u < sp.CrashProb:
		d = Decision{Op: Crash}
	case u < sp.CrashProb+sp.StallProb:
		d = Decision{Op: Stall, Sleep: sp.StallFor}
	case u < sp.CrashProb+sp.StallProb+sp.DelayProb:
		d = Decision{Op: Delay, Sleep: sp.DelayFor}
	case u < sp.CrashProb+sp.StallProb+sp.DelayProb+sp.CorruptProb:
		d = Decision{Op: Corrupt}
	case u < sp.CrashProb+sp.StallProb+sp.DelayProb+sp.CorruptProb+sp.HardCorruptProb:
		d = Decision{Op: HardCorrupt}
		l.hard = true
	default:
		return Decision{}
	}
	l.injected.Add(1)
	p.counts[d.Op].Add(1)
	return d
}

// Count returns how many faults of kind op the plan has injected.
func (p *Plan) Count(op Op) uint64 {
	if op >= numOps {
		return 0
	}
	return p.counts[op].Load()
}

// Total returns the total number of injected faults.
func (p *Plan) Total() uint64 {
	var n uint64
	for i := Op(1); i < numOps; i++ {
		n += p.counts[i].Load()
	}
	return n
}

// Ordinal returns shard s's current apply ordinal (how many chunks have
// been decided on so far).
func (p *Plan) Ordinal(shard int) uint64 { return p.lanes[shard].ord.Load() }

// Shards returns the shard count the plan was built for.
func (p *Plan) Shards() int { return len(p.lanes) }

// PoisonChunk overwrites xs with Poison values, the Corrupt fault's action.
func PoisonChunk(xs []int64) {
	for i := range xs {
		xs[i] = Poison
	}
}

// Poisoned reports whether xs contains a Poison value — the validation gate
// the serving layer runs before applying a chunk when fault injection is
// active.
func Poisoned(xs []int64) bool {
	for _, x := range xs {
		if x == Poison {
			return true
		}
	}
	return false
}
