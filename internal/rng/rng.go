// Package rng provides a deterministic, splittable pseudo-random source used
// throughout the repository.
//
// The adversarial games in the paper are probabilistic processes: both the
// sampler and the adversary flip coins every round, and every experiment
// repeats the game across many independent trials. To make every table in
// DESIGN.md's experiment index reproducible bit-for-bit, all randomness
// flows through this package: an experiment owns a root RNG seeded from the
// command line, and each trial receives an independent stream via Split
// (trial RNGs are pre-split sequentially even when trials run on a worker
// pool, so parallel output matches serial output exactly). The generator is
// PCG-XSL-RR 128/64 (the same family as math/rand/v2's PCG), implemented
// here so that stream splitting is explicit and stable across Go releases.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a PCG-XSL-RR 128/64 generator. The zero value is not valid; use New.
type RNG struct {
	hi, lo uint64 // 128-bit state
}

const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
	incHi = 6364136223846793005
	incLo = 1442695040888963407
)

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.seed(seed, seed^0x9e3779b97f4a7c15)
	return r
}

// NewWithStream returns a generator whose output stream is determined by both
// seed and stream. Distinct stream values yield statistically independent
// sequences for the same seed.
func NewWithStream(seed, stream uint64) *RNG {
	r := &RNG{}
	r.seed(seed, stream)
	return r
}

func (r *RNG) seed(seed, stream uint64) {
	// Standard PCG initialization: state 0, advance, add seed, advance.
	r.hi, r.lo = 0, 0
	r.next()
	r.lo += splitmix(seed)
	r.hi += splitmix(stream)
	r.next()
}

// splitmix is SplitMix64, used to decorrelate raw user seeds.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix64 applies one SplitMix64 step to x: a full-avalanche bijection for
// dispersing structured values deterministically (seed decorrelation here,
// hash-by-value shard routing in internal/shard). It draws no state from
// any generator.
func Mix64(x uint64) uint64 { return splitmix(x) }

// pcgStep is one generator step on explicit state words: it returns the
// advanced 128-bit LCG state and the XSL-RR output of the old state. The
// 128-bit multiply and add lower to single MULX/ADCX-style instructions via
// math/bits. Keeping the step value-typed lets the bulk Fill methods hoist
// the state into registers for a whole buffer instead of reloading it
// through the receiver pointer every draw.
func pcgStep(oldHi, oldLo uint64) (hi, lo, out uint64) {
	// 128-bit multiply of state by mul, then 128-bit add of inc.
	hi, lo = bits.Mul64(oldLo, mulLo)
	hi += oldHi*mulLo + oldLo*mulHi
	lo, carry := bits.Add64(lo, incLo, 0)
	hi = hi + incHi + carry

	// XSL-RR output function on the old state.
	xored := oldHi ^ oldLo
	rot := uint(oldHi >> 58)
	return hi, lo, xored>>rot | xored<<((64-rot)&63)
}

// next advances the 128-bit LCG state and returns the previous state
// passed through the XSL-RR output permutation.
func (r *RNG) next() uint64 {
	hi, lo, out := pcgStep(r.hi, r.lo)
	r.hi, r.lo = hi, lo
	return out
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 { return r.next() }

// State exports the generator's 128-bit internal state for snapshots. A
// generator restored with SetState produces exactly the sequence the
// original would have produced from this point on.
func (r *RNG) State() (hi, lo uint64) { return r.hi, r.lo }

// SetState overwrites the generator's internal state with a value previously
// obtained from State.
func (r *RNG) SetState(hi, lo uint64) { r.hi, r.lo = hi, lo }

// Split returns a new generator statistically independent of r. Splitting is
// deterministic: the child stream is derived from two draws of the parent, so
// a fixed root seed yields a fixed tree of generators.
func (r *RNG) Split() *RNG {
	return NewWithStream(r.next(), r.next()|1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's unbiased method.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Rejection sampling on the high multiply.
	for {
		hi, lo := bits.Mul64(r.next(), n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials. It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return saturateGeom(math.Floor(math.Log(u) / math.Log(1-p)))
}

// GeometricInv is Geometric with the reciprocal log precomputed: invLogQ
// must equal 1/ln(1-p) for the desired success probability p in (0, 1).
// Hot batch-ingest loops (Bernoulli gap-skipping) call this once per
// admitted element, so hoisting the logarithm out of the loop matters.
func (r *RNG) GeometricInv(invLogQ float64) int64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return saturateGeom(math.Floor(math.Log(u) * invLogQ))
}

// FillUniform64 fills buf with uniformly distributed 64-bit values. It
// draws exactly len(buf) sequential generator steps: the call leaves r in
// the same state as len(buf) Uint64 calls would, so bulk and per-call
// consumers of one generator interleave bit-identically. The generator
// state lives in locals for the whole buffer, which is what makes the bulk
// path cheaper than a Uint64 loop on the ingest hot path.
func (r *RNG) FillUniform64(buf []uint64) {
	hi, lo := r.hi, r.lo
	for i := range buf {
		hi, lo, buf[i] = pcgStep(hi, lo)
	}
	r.hi, r.lo = hi, lo
}

// FillFloat64 fills buf with uniform values in [0, 1), drawing exactly
// len(buf) sequential steps — bit-identical to len(buf) Float64 calls.
func (r *RNG) FillFloat64(buf []float64) {
	hi, lo := r.hi, r.lo
	for i := range buf {
		var u uint64
		hi, lo, u = pcgStep(hi, lo)
		buf[i] = float64(u>>11) / (1 << 53)
	}
	r.hi, r.lo = hi, lo
}

// FillGeometricInv fills buf with geometric gap-skip counts in one pass:
// buf[i] is the number of failures before the i-th success in
// Bernoulli(p) trials, with invLogQ = 1/ln(1-p) precomputed exactly as for
// GeometricInv. The draw sequence is bit-identical to len(buf) GeometricInv
// calls (one nonzero uniform per entry, zero-rejection included), so
// batch-ingest loops can pre-draw a run of Bernoulli admissions and still
// replay byte-for-byte against the per-call path.
func (r *RNG) FillGeometricInv(invLogQ float64, buf []int64) {
	hi, lo := r.hi, r.lo
	for i := range buf {
		var u float64
		for {
			var x uint64
			hi, lo, x = pcgStep(hi, lo)
			u = float64(x>>11) / (1 << 53)
			if u != 0 {
				break
			}
		}
		buf[i] = saturateGeom(math.Floor(math.Log(u) * invLogQ))
	}
	r.hi, r.lo = hi, lo
}

// saturateGeom converts a floored geometric draw to int64, saturating at
// MaxInt64: for microscopic p the exact draw overflows int64, and a
// saturated skip is indistinguishable from it for any realizable stream.
func saturateGeom(f float64) int64 {
	if f >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(f)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf returns a value in [1, n] with probability proportional to rank^-s.
// It uses inverse-CDF over a precomputed table-free harmonic approximation
// for small n, falling back to rejection for large n. For the workload sizes
// in this repository (n <= 2^24) the simple inversion loop is fast enough
// only for small n, so Zipf is provided through the ZipfGen type instead.
type ZipfGen struct {
	n   int64
	s   float64
	cdf []float64 // cumulative probabilities, len n (only for n <= zipfTableMax)
}

const zipfTableMax = 1 << 20

// NewZipf constructs a Zipf(s) generator over [1, n]. For n beyond the table
// limit it panics; experiments use universes within the limit when Zipfian
// workloads are requested.
func NewZipf(n int64, s float64) *ZipfGen {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if n > zipfTableMax {
		panic("rng: Zipf table too large")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += math.Pow(float64(i), -s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZipfGen{n: n, s: s, cdf: cdf}
}

// Draw returns a Zipf-distributed value in [1, n].
func (z *ZipfGen) Draw(r *RNG) int64 {
	u := r.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo + 1)
}
