package rng

import (
	"math"
	"testing"
)

// The bulk Fill methods replace per-call draws on the batch-ingest hot path.
// Their contract is exact: filling a buffer must consume precisely one
// generator step per emitted value (plus zero-rejection redraws for the
// geometric), leaving the generator in the same state as the per-call loop.
// These tests pin that bit-identity, including across chunk-boundary splits
// of the same logical sequence, so bulk and per-call consumers can be mixed
// freely without perturbing any golden table in the repository.

// chunkSplits covers degenerate, prime-sized, and power-of-two chunkings.
var chunkSplits = [][]int{
	{64},
	{1, 1, 1, 61},
	{3, 7, 13, 41},
	{32, 32},
	{63, 1},
}

func TestFillUniform64MatchesUint64(t *testing.T) {
	for _, split := range chunkSplits {
		a := New(12345)
		b := New(12345)
		var bulk, calls []uint64
		for _, n := range split {
			buf := make([]uint64, n)
			a.FillUniform64(buf)
			bulk = append(bulk, buf...)
		}
		for range bulk {
			calls = append(calls, b.Uint64())
		}
		for i := range bulk {
			if bulk[i] != calls[i] {
				t.Fatalf("split %v draw %d: bulk %#x, per-call %#x", split, i, bulk[i], calls[i])
			}
		}
		assertSameState(t, a, b)
	}
}

func TestFillFloat64MatchesFloat64(t *testing.T) {
	for _, split := range chunkSplits {
		a := New(777)
		b := New(777)
		var bulk []float64
		for _, n := range split {
			buf := make([]float64, n)
			a.FillFloat64(buf)
			bulk = append(bulk, buf...)
		}
		for i, v := range bulk {
			if w := b.Float64(); v != w {
				t.Fatalf("split %v draw %d: bulk %v, per-call %v", split, i, v, w)
			}
		}
		assertSameState(t, a, b)
	}
}

func TestFillGeometricInvMatchesGeometricInv(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.5, 0.9} {
		invLogQ := 1 / math.Log1p(-p)
		for _, split := range chunkSplits {
			a := New(31)
			b := New(31)
			var bulk []int64
			for _, n := range split {
				buf := make([]int64, n)
				a.FillGeometricInv(invLogQ, buf)
				bulk = append(bulk, buf...)
			}
			for i, v := range bulk {
				if w := b.GeometricInv(invLogQ); v != w {
					t.Fatalf("p=%v split %v draw %d: bulk %d, per-call %d", p, split, i, v, w)
				}
			}
			assertSameState(t, a, b)
		}
	}
}

// TestGoldenFillGeometricInv pins literal values (and the exact generator
// state after the fill), in the style of the package's other golden
// sequences: any change to the bulk geometric path shows up here first.
func TestGoldenFillGeometricInv(t *testing.T) {
	want := []int64{120, 71, 101, 34, 6, 253, 70, 8, 45, 50}
	const wantHi, wantLo uint64 = 0x6f42c6d0d8b5b98a, 0xf8b9faee3d1b984b
	r := New(424242)
	buf := make([]int64, len(want))
	r.FillGeometricInv(1/math.Log1p(-0.01), buf)
	for i, w := range want {
		if buf[i] != w {
			t.Fatalf("FillGeometricInv draw %d = %d, want %d", i, buf[i], w)
		}
	}
	hi, lo := r.State()
	if hi != wantHi || lo != wantLo {
		t.Fatalf("state after fill = %#x %#x, want %#x %#x", hi, lo, wantHi, wantLo)
	}
}

func assertSameState(t *testing.T, a, b *RNG) {
	t.Helper()
	ahi, alo := a.State()
	bhi, blo := b.State()
	if ahi != bhi || alo != blo {
		t.Fatalf("generator states diverged: bulk (%#x,%#x) vs per-call (%#x,%#x)", ahi, alo, bhi, blo)
	}
}
