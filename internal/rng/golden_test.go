package rng

import (
	"math"
	"testing"
)

// The golden sequences below were captured from the original hand-rolled
// 128-bit arithmetic (schoolbook mul128/add64) before it was replaced with
// math/bits.Mul64/Add64 intrinsics. Every generator seeded anywhere in the
// repository depends on these exact bits, so the intrinsic swap must not
// change a single output: these tests pin the stream forever.

func TestGoldenSequenceNew(t *testing.T) {
	want := []uint64{
		0x75d2e5bdf6cf3fd, 0x5706037afcfded1, 0xe43279ba266c775d,
		0xb2fa3be088de94b1, 0x7878a0a526e32f61, 0xd54d9130a436de4b,
		0x124e0174a9d74aa1, 0x54d6fc853deeda09, 0x5d99088d515d2f86,
		0x5cdbdf06ae263e00, 0x838611e7325ef3fd, 0x8b9003d4487f3002,
	}
	r := New(12345)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("New(12345) draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestGoldenSequenceNewWithStream(t *testing.T) {
	want := []uint64{
		0x4bc551c644fb9670, 0x855f3738d8d72ea5, 0xa7b5b3179c209aeb,
		0x30e82f67cabab62d, 0x5949103b7430c7db, 0x90039ff05f5a58d8,
		0x9e3d5232a5d4b80, 0xc77097e365fbd866,
	}
	r := NewWithStream(99, 7)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("NewWithStream(99, 7) draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestGoldenSequenceSplit(t *testing.T) {
	want := []uint64{
		0xa352086f2738b876, 0x7735faa0a5b960b0, 0xd4a5c2fded837937,
		0x8d6db953ad3860af, 0x14e89de21899000b, 0x14dd20df43745ef2,
	}
	c := New(0).Split()
	for i, w := range want {
		if got := c.Uint64(); got != w {
			t.Fatalf("New(0).Split() draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestGoldenSequenceUint64n(t *testing.T) {
	// Exercises the Lemire rejection path (bits.Mul64 high word).
	want := []uint64{15029, 333233, 707498, 488809, 240250, 66034, 504727, 978609}
	r := New(2020)
	for i, w := range want {
		if got := r.Uint64n(1000003); got != w {
			t.Fatalf("Uint64n draw %d = %d, want %d", i, got, w)
		}
	}
}

func TestGoldenSequenceFloat64(t *testing.T) {
	want := []float64{
		0.8497747194101226, 0.2763374157411276, 0.06590987795963288,
		0.2192286835781705, 0.8272445437104065, 0.907115835586531,
	}
	r := New(555)
	for i, w := range want {
		if got := r.Float64(); got != w {
			t.Fatalf("Float64 draw %d = %v, want %v", i, got, w)
		}
	}
}

// TestGeometricInvMatchesGeometric checks that the precomputed-reciprocal
// variant consumes the same uniforms and lands on the same (or adjacent,
// when the two floating-point formulations round a boundary differently)
// skip counts as Geometric across rates and seeds.
func TestGeometricInvMatchesGeometric(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.5, 0.9} {
		invLogQ := 1 / math.Log1p(-p)
		a := New(31)
		b := New(31)
		for i := 0; i < 2000; i++ {
			g := a.Geometric(p)
			gi := b.GeometricInv(invLogQ)
			if d := g - gi; d < -1 || d > 1 {
				t.Fatalf("p=%v draw %d: Geometric=%d GeometricInv=%d", p, i, g, gi)
			}
		}
	}
}

func TestGeometricInvMean(t *testing.T) {
	const p = 0.02
	invLogQ := 1 / math.Log1p(-p)
	r := New(77)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(r.GeometricInv(invLogQ))
	}
	mean := sum / n
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("GeometricInv mean %v, want ~%v", mean, want)
	}
}
